package embrace

import (
	"context"
	"fmt"
	"time"

	"embrace/internal/checkpoint"
	"embrace/internal/comm"
	"embrace/internal/serve"
)

// ---------------------------------------------------------------------------
// Serving
// ---------------------------------------------------------------------------

// Embedding partitioning schemes for serving (§4.1.1 applied to inference).
const (
	// ServeRowHash shards full embedding rows by token-id hash.
	ServeRowHash = serve.PartRowHash
	// ServeColumn gives every rank a 1/N column slice of every row —
	// EmbRace's balanced layout.
	ServeColumn = serve.PartColumn
	// ServeConsistent shards full rows on a consistent-hash ring: like
	// ServeRowHash one rank owns each row, but ownership stays stable when
	// the rank set resizes.
	ServeConsistent = serve.PartConsistent
)

// ServeConfig describes a serving deployment booted from a checkpoint.
type ServeConfig struct {
	// Ranks is the number of serving ranks (default 1); every rank holds an
	// embedding shard, and the first Drivers ranks also front the cluster.
	Ranks int
	// Drivers is how many ranks run their own ingress — admission queue,
	// micro-batcher, hot-row LRU (default 1, clamped to Ranks). Concurrent
	// drivers serve independently and never collide: each one's cross-rank
	// exchanges ride its own tag plane.
	Drivers int
	// Partition is ServeRowHash (default), ServeColumn, or ServeConsistent.
	Partition string
	// CacheRows bounds each driver's hot-row LRU cache; 0 disables it.
	CacheRows int
	// Replicate bounds the replicated hot set shared by every driver; 0
	// disables hot-shard replication. Rows the cluster keeps seeing are
	// promoted into it and served by every ingress without touching the
	// fabric; Reload invalidates all replicas.
	Replicate int
	// ReplicatePromote is how many accesses promote a row (default 3).
	ReplicatePromote int
	// TCP serves over real localhost TCP sockets instead of the in-process
	// fabric — the configuration the scale benchmark measures. Incompatible
	// with ChaosSeed.
	TCP bool
	// MaxBatch and BatchWindow control request micro-batching (defaults 32
	// and 200µs): the front end coalesces up to MaxBatch requests arriving
	// within the window and dedups their ids before touching the shards.
	MaxBatch    int
	BatchWindow time.Duration
	// QueueDepth bounds the admission queue (default 256); a full queue
	// fails fast with a typed overload error.
	QueueDepth int
	// ChaosSeed, when non-zero, serves over the deterministic
	// fault-injecting fabric (see TrainConfig.ChaosSeed); the self-healing
	// collectives keep responses bit-identical.
	ChaosSeed int64
	// Trace enables per-rank span recording.
	Trace bool
	// Compress selects the wire codec for the inter-rank row-fetch AlltoAll:
	// "" ships raw index/value streams, "lossless" (alias "delta-raw")
	// delta-varint encodes them and keeps responses bit-identical. Lossy
	// modes are rejected — serving must return the checkpoint's exact rows.
	Compress string
}

func (c ServeConfig) internal() (serve.Config, error) {
	cfg := serve.Config{
		Ranks:       c.Ranks,
		Drivers:     c.Drivers,
		Partition:   c.Partition,
		CacheRows:   c.CacheRows,
		HotRows:     c.Replicate,
		HotPromote:  c.ReplicatePromote,
		MaxBatch:    c.MaxBatch,
		BatchWindow: c.BatchWindow,
		QueueDepth:  c.QueueDepth,
		TCP:         c.TCP,
		Trace:       c.Trace,
	}
	codec, err := sparseCodecFor(c.Compress, 0, 0)
	if err != nil {
		return serve.Config{}, err
	}
	if codec != nil && !codec.Lossless() {
		return serve.Config{}, fmt.Errorf("embrace: serving requires a lossless compression mode, got %q", c.Compress)
	}
	cfg.Codec = codec
	if c.ChaosSeed != 0 {
		plan := comm.MaskableChaosPlan(c.ChaosSeed)
		cfg.Chaos = &plan
	}
	return cfg, nil
}

// Server is a live multi-rank inference deployment. Lookup and Predict are
// safe for concurrent use; stop it with Close.
type Server struct {
	c *serve.Cluster
}

// Serve boots a serving cluster from a checkpoint file written by Train
// (TrainConfig.CheckpointPath). The embedding table is partitioned across
// the ranks, the dense trunk replicated, and the returned server answers
// immediately.
func Serve(checkpointPath string, cfg ServeConfig) (*Server, error) {
	ck, err := checkpoint.LoadFile(checkpointPath)
	if err != nil {
		return nil, err
	}
	icfg, err := cfg.internal()
	if err != nil {
		return nil, err
	}
	c, err := serve.New(ck, icfg)
	if err != nil {
		return nil, err
	}
	return &Server{c: c}, nil
}

// Lookup resolves the embedding rows of ids, in order (duplicates allowed).
// ctx's deadline becomes the request deadline.
func (s *Server) Lookup(ctx context.Context, ids []int64) ([][]float32, error) {
	return s.c.Lookup(ctx, ids)
}

// Predict mean-pools the window's embedding rows, runs the trunk forward,
// and returns the argmax next token with its probability — bit-identical to
// the training model's forward pass over the served checkpoint.
func (s *Server) Predict(ctx context.Context, window []int64) (int64, float32, error) {
	return s.c.Predict(ctx, window)
}

// Reload atomically swaps in a new checkpoint with zero downtime: in-flight
// batches finish on the old snapshot, the swap happens between batches on
// every rank, and the hot-row cache is invalidated. After Reload returns,
// responses are exactly what a fresh Serve of the new checkpoint would give.
func (s *Server) Reload(checkpointPath string) error {
	ck, err := checkpoint.LoadFile(checkpointPath)
	if err != nil {
		return err
	}
	return s.c.Reload(ck)
}

// Close shuts the deployment down; pending requests fail with a typed
// closed error. Idempotent.
func (s *Server) Close() { s.c.Close() }

// ServeStats is a snapshot of a server's counters. It is the cluster-wide
// aggregate: per-driver counters summed and latency histograms merged
// exactly. DriverStats exposes one ingress's slice of it.
type ServeStats struct {
	// Drivers is how many ingresses the snapshot covers.
	Drivers int
	// Requests admitted, split into Lookups and Predicts.
	Requests, Lookups, Predicts int64
	// Batches processed; Exchanges is how many conscripted remote ranks.
	Batches, Exchanges int64
	// Coalesced counts duplicate ids removed by within-batch dedup.
	Coalesced int64
	// Packed counts rows packed into cross-rank exchange payloads; a
	// workload the drivers satisfy locally (own shard, cache, or hot
	// replicas) keeps it 0.
	Packed int64
	// Overloaded counts fast-failed admissions; Expired deadline drops;
	// Reloads completed checkpoint swaps.
	Overloaded, Expired, Reloads int64
	// CacheHits/CacheMisses/CacheEvictions describe the per-driver LRU
	// caches (summed); CacheHitRate is hits over lookups.
	CacheHits, CacheMisses, CacheEvictions int64
	CacheHitRate                           float64
	// HotResident is how many rows the replicated hot set currently holds;
	// HotHits/HotMisses count replica lookups and HotHitRate their ratio.
	HotResident, HotHits, HotMisses int64
	HotHitRate                      float64
	// LatencyP50/P95/P99 digest request latency (admission to reply).
	LatencyP50, LatencyP95, LatencyP99 time.Duration
}

func statsFrom(st serve.Stats) ServeStats {
	return ServeStats{
		Drivers:        st.Drivers,
		Requests:       st.Requests,
		Lookups:        st.Lookups,
		Predicts:       st.Predicts,
		Batches:        st.Batches,
		Exchanges:      st.Exchanges,
		Coalesced:      st.Coalesced,
		Packed:         st.Packed,
		Overloaded:     st.Overloaded,
		Expired:        st.Expired,
		Reloads:        st.Reloads,
		CacheHits:      st.Cache.Hits,
		CacheMisses:    st.Cache.Misses,
		CacheEvictions: st.Cache.Evictions,
		CacheHitRate:   st.Cache.HitRate(),
		HotResident:    st.Hot.Resident,
		HotHits:        st.Hot.Hits,
		HotMisses:      st.Hot.Misses,
		HotHitRate:     st.Hot.HitRate(),
		LatencyP50:     time.Duration(st.Latency.P50 * float64(time.Second)),
		LatencyP95:     time.Duration(st.Latency.P95 * float64(time.Second)),
		LatencyP99:     time.Duration(st.Latency.P99 * float64(time.Second)),
	}
}

// Stats snapshots the server's cluster-wide counters.
func (s *Server) Stats() ServeStats { return statsFrom(s.c.Stats()) }

// Drivers returns the number of ingress drivers serving.
func (s *Server) Drivers() int { return s.c.Drivers() }

// DriverStats snapshots one ingress's own counters (cluster-level fields —
// Packed, Reloads, hot set — are zero in this view).
func (s *Server) DriverStats(d int) ServeStats { return statsFrom(s.c.DriverStats(d)) }

// LoadSpec parameterizes a closed-loop Zipf load run against a server: each
// of Clients goroutines issues Requests back-to-back.
type LoadSpec struct {
	// Clients and Requests shape the run (defaults 4 and 100).
	Clients, Requests int
	// IDsPerRequest is the lookup size / predict window (default 4).
	IDsPerRequest int
	// Predict switches the workload from Lookup to Predict.
	Predict bool
	// ZipfS and ZipfV shape the id skew (defaults 1.3, 2).
	ZipfS, ZipfV float64
	// Seed makes the id streams deterministic.
	Seed int64
	// Timeout, when positive, attaches a per-request deadline.
	Timeout time.Duration
}

// DriverLoadResult is one ingress's share of a load run.
type DriverLoadResult struct {
	// Driver is the ingress index; Requests and Errors its traffic.
	Driver           int
	Requests, Errors int64
	// QPS and P50/P99 latency as this driver's clients saw them.
	QPS      float64
	P50, P99 time.Duration
}

// LoadResult reports a completed load run. Top-level numbers aggregate every
// driver (latency percentiles from an exact histogram merge); PerDriver
// breaks the run down by ingress.
type LoadResult struct {
	// Requests issued; Errors failed, with Overloaded and Expired broken out.
	Requests, Errors, Overloaded, Expired int64
	// Elapsed wall clock and completed requests per second.
	Elapsed time.Duration
	QPS     float64
	// P50/P99/Max request latency as the clients saw it.
	P50, P99, Max time.Duration
	// PerDriver has one entry per ingress, in driver order.
	PerDriver []DriverLoadResult
}

// String renders the result for logs.
func (r LoadResult) String() string {
	return fmt.Sprintf("req=%d err=%d qps=%.0f p50=%s p99=%s max=%s drivers=%d",
		r.Requests, r.Errors, r.QPS, r.P50, r.P99, r.Max, len(r.PerDriver))
}

// RunLoad fires the closed-loop workload at the server and reports
// throughput and latency percentiles.
func (s *Server) RunLoad(spec LoadSpec) LoadResult {
	rep := serve.RunLoad(s.c, serve.LoadConfig{
		Clients:       spec.Clients,
		Requests:      spec.Requests,
		IDsPerRequest: spec.IDsPerRequest,
		Predict:       spec.Predict,
		ZipfS:         spec.ZipfS,
		ZipfV:         spec.ZipfV,
		Seed:          spec.Seed,
		Timeout:       spec.Timeout,
	})
	res := LoadResult{
		Requests:   rep.Requests,
		Errors:     rep.Errors,
		Overloaded: rep.Overloaded,
		Expired:    rep.Expired,
		Elapsed:    rep.Elapsed,
		QPS:        rep.QPS,
		P50:        time.Duration(rep.Latency.P50 * float64(time.Second)),
		P99:        time.Duration(rep.Latency.P99 * float64(time.Second)),
		Max:        time.Duration(rep.Latency.Max * float64(time.Second)),
	}
	for _, dl := range rep.PerDriver {
		res.PerDriver = append(res.PerDriver, DriverLoadResult{
			Driver:   dl.Driver,
			Requests: dl.Requests,
			Errors:   dl.Errors,
			QPS:      dl.QPS,
			P50:      time.Duration(dl.Latency.P50 * float64(time.Second)),
			P99:      time.Duration(dl.Latency.P99 * float64(time.Second)),
		})
	}
	return res
}
