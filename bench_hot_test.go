// Hot-path step benchmarks: a persistent 8-rank world runs real training
// steps in lockstep, so ns/op, B/op and allocs/op price the steady-state
// per-step cost of each strategy's embedding exchange — world setup, model
// init and the warm-up step are all outside the timed region. `make
// bench-hot` runs these with -benchmem and records the numbers in
// BENCH_hotpath.json; EXPERIMENTS.md tracks them across PRs.
package embrace_test

import (
	"sync"
	"testing"

	"embrace/internal/collective"
	"embrace/internal/comm"
	"embrace/internal/strategies"
)

// hotBenchRanks is the world size of the hot-path bench — the 8-rank
// configuration the ROADMAP's ≥2× step-time target is measured on.
const hotBenchRanks = 8

// hotBenchConfig is the model shape of the hot-path bench: a vocabulary and
// batch large enough that the sparse exchange dominates, with EmbDim
// divisible by the world size as column partitioning requires.
func hotBenchConfig() strategies.Config {
	return strategies.Config{
		Seed:      7,
		Vocab:     8192,
		EmbDim:    64,
		Hidden:    32,
		Optimizer: strategies.OptAdam,
		LR:        1e-3,
		PSServers: 2,
	}
}

// hotBenchBatch builds rank r's fixed synthetic batch: 8 windows of 16
// tokens each, deterministic in (rank, window, position) so every run —
// before or after a refactor — feeds the identical ids through the exchange.
func hotBenchBatch(r int) (windows [][]int64, targets []int64, next []int64) {
	const nwin, wlen = 8, 16
	windows = make([][]int64, nwin)
	targets = make([]int64, nwin)
	for i := range windows {
		win := make([]int64, wlen)
		for j := range win {
			// A mix of a Zipf-ish hot head and rank-spread tail rows.
			win[j] = int64((r*131 + i*37 + j*j*11) % 8192)
		}
		windows[i] = win
		targets[i] = int64((r*17 + i*29) % 8192)
	}
	next = make([]int64, nwin*wlen)
	for j := range next {
		next[j] = int64((r*257 + j*13) % 8192)
	}
	return windows, targets, next
}

// benchStrategySteps drives b.N lockstep training steps of one strategy
// across a persistent world. Each rank performs one untimed warm-up step
// (growing every pooled buffer to its high-water mark), all ranks
// rendezvous, and only then does the timed region begin.
func benchStrategySteps(b *testing.B, name strategies.Name, sched strategies.SchedMode) {
	b.Helper()
	cfg := hotBenchConfig()
	cfg.Sched = sched
	sh, err := strategies.NewShared(name, cfg, hotBenchRanks)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	ready := make(chan struct{}, hotBenchRanks)
	start := make(chan struct{})
	done := make(chan error, 1)
	var once sync.Once
	go func() {
		done <- comm.RunRanks(hotBenchRanks, func(t comm.Transport) error {
			w, err := strategies.NewWorker(name, collective.NewCommunicator(t), cfg, sh)
			if err != nil {
				return err
			}
			windows, targets, next := hotBenchBatch(t.Rank())
			if _, err := w.Step(0, windows, targets, next); err != nil {
				return err
			}
			ready <- struct{}{}
			<-start
			for i := 0; i < b.N; i++ {
				if _, err := w.Step(i+1, windows, targets, next); err != nil {
					return err
				}
			}
			// Drain any in-flight delayed exchange so allocs/op attributes
			// every step's work inside the timed region symmetrically.
			_, err = w.FullEmbedding()
			once.Do(func() { b.StopTimer() })
			return err
		})
	}()
	for i := 0; i < hotBenchRanks; i++ {
		<-ready
	}
	b.ResetTimer()
	close(start)
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

func BenchmarkHotPathStepEmbRace2D(b *testing.B) {
	benchStrategySteps(b, strategies.EmbRace, strategies.Sched2D)
}

func BenchmarkHotPathStepEmbRaceNoSched(b *testing.B) {
	benchStrategySteps(b, strategies.EmbRace, strategies.SchedNone)
}

func BenchmarkHotPathStepAllGather(b *testing.B) {
	benchStrategySteps(b, strategies.HorovodAllGather, strategies.SchedNone)
}

func BenchmarkHotPathStepParallax(b *testing.B) {
	benchStrategySteps(b, strategies.Parallax, strategies.SchedNone)
}
