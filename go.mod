module embrace

go 1.22
