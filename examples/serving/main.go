// Serving: the full model lifecycle in one program — train a language model
// with EmbRace's hybrid communication, checkpoint it, boot a 4-rank sharded
// inference deployment from the checkpoint, and fire a closed-loop Zipf
// burst at it. The front end coalesces concurrent requests, dedups repeated
// ids, keeps hot embedding rows in an LRU cache, and resolves the rest over
// the same sparse AlltoAll the trainer used — then hot-swaps a further-trained
// checkpoint with zero downtime.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"embrace"
)

func main() {
	log.SetFlags(0)

	dir, err := os.MkdirTemp("", "embrace-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckptA := filepath.Join(dir, "step20.ckpt")
	ckptB := filepath.Join(dir, "step40.ckpt")

	// Train briefly and checkpoint; then train on and checkpoint again so we
	// have a newer model to hot-swap in.
	train := embrace.TrainConfig{
		Strategy: embrace.EmbRace,
		Sched:    embrace.Sched2D,
		Workers:  4,
		Steps:    20,
		Vocab:    1000,
		EmbDim:   16,
		Hidden:   16,
		Adam:     true,
		Seed:     7,
	}
	train.CheckpointPath = ckptA
	if _, err := embrace.Train(train); err != nil {
		log.Fatal(err)
	}
	train.CheckpointPath = ckptB
	train.ResumeFrom = ckptA
	if _, err := embrace.Train(train); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained and checkpointed: %s, %s\n", filepath.Base(ckptA), filepath.Base(ckptB))

	// Serve the first checkpoint across 4 ranks: two ingress drivers front
	// the cluster (each with its own LRU), rows live on a consistent-hash
	// ring, and the hottest rows replicate to every driver.
	srv, err := embrace.Serve(ckptA, embrace.ServeConfig{
		Ranks:     4,
		Drivers:   2,
		Partition: embrace.ServeConsistent,
		CacheRows: 128,
		Replicate: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	tok, prob, err := srv.Predict(context.Background(), []int64{1, 2, 3, 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predict [1 2 3 4] -> token %d (p=%.4f)\n", tok, prob)

	// Zipf burst: 8 closed-loop clients, hot ids repeat, the cache absorbs
	// them. Halfway through, hot-swap the newer checkpoint.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(20 * time.Millisecond)
		if err := srv.Reload(ckptB); err != nil {
			log.Printf("reload: %v", err)
			return
		}
		fmt.Println("hot-swapped step40 checkpoint mid-burst, zero downtime")
	}()
	res := srv.RunLoad(embrace.LoadSpec{
		Clients:  8,
		Requests: 300,
		Seed:     1,
	})
	<-done

	st := srv.Stats()
	fmt.Printf("\nburst: %d requests over %d drivers, %.0f QPS, p99 %s\n",
		res.Requests, st.Drivers, res.QPS, res.P99)
	fmt.Printf("coalescing removed %d duplicate ids across %d batches (%d exchanges)\n",
		st.Coalesced, st.Batches, st.Exchanges)
	fmt.Printf("cache hit rate %.1f%% (%d hits, %d misses); hot set: %d resident, %.1f%% hit rate\n",
		100*st.CacheHitRate, st.CacheHits, st.CacheMisses, st.HotResident, 100*st.HotHitRate)
}
