// Compression: the related-work direction the paper lists as orthogonal to
// EmbRace (§6, gradient compression). Compares dense ring AllReduce against
// Top-K and 8-bit quantized exchanges on real collectives: wire bytes,
// aggregation error, and the effect of error feedback over repeated rounds.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"embrace/internal/collective"
	"embrace/internal/comm"
	"embrace/internal/compress"
)

func main() {
	log.SetFlags(0)
	const (
		workers = 4
		elems   = 4096
	)

	rng := rand.New(rand.NewSource(5))
	inputs := make([][]float32, workers)
	want := make([]float64, elems)
	for r := range inputs {
		inputs[r] = make([]float32, elems)
		for i := range inputs[r] {
			inputs[r][i] = rng.Float32()*2 - 1
			want[i] += float64(inputs[r][i])
		}
	}

	type result struct {
		name  string
		bytes float64 // payload per rank, relative to dense
		err   float64 // max abs aggregation error
	}
	var results []result

	// Dense baseline.
	err := comm.RunRanks(workers, func(t comm.Transport) error {
		cm := collective.NewCommunicator(t)
		buf := append([]float32(nil), inputs[t.Rank()]...)
		if err := cm.AllReduce("dense/grad", 0, buf); err != nil {
			return err
		}
		if t.Rank() == 0 {
			results = append(results, result{"dense ring AllReduce", 1.0, maxErr(buf, want)})
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, c := range []compress.Compressor{compress.Q8{}, compress.TopK{K: elems / 8}} {
		c := c
		err := comm.RunRanks(workers, func(t comm.Transport) error {
			cm := collective.NewCommunicator(t)
			buf := append([]float32(nil), inputs[t.Rank()]...)
			if err := compress.CompressedAllReduce(cm, "compressed/grad", 0, buf, c, nil); err != nil {
				return err
			}
			if t.Rank() == 0 {
				results = append(results, result{c.Name(), c.Ratio(elems), maxErr(buf, want)})
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("aggregating a %d-element gradient across %d workers:\n", elems, workers)
	for _, r := range results {
		fmt.Printf("  %-22s payload %5.1f%% of dense, max aggregation error %.4f\n",
			r.name, r.bytes*100, r.err)
	}

	// Error feedback: repeated Top-K rounds on a FIXED gradient deliver its
	// full mass over time; without feedback, small elements never move.
	fmt.Println("\nerror feedback over 40 rounds of top-1/8 sparsification (one element's share):")
	grad := make([]float32, 64)
	for i := range grad {
		grad[i] = rng.Float32()*0.2 + 0.4 // narrow spread: top-8 is stable
	}
	small := 0
	for i, v := range grad {
		if v < grad[small] {
			small = i
		}
	}
	for _, feedback := range []bool{false, true} {
		var res *compress.Residual
		if feedback {
			res = &compress.Residual{}
		}
		var delivered float64
		for round := 0; round < 40; round++ {
			work := append([]float32(nil), grad...)
			if res != nil {
				work = res.Apply(work)
			}
			p, err := (compress.TopK{K: 8}).Compress(work)
			if err != nil {
				log.Fatal(err)
			}
			if res != nil {
				if err := res.Update(work, p); err != nil {
					log.Fatal(err)
				}
			}
			dec, err := compress.Decompress(p)
			if err != nil {
				log.Fatal(err)
			}
			delivered += float64(dec[small])
		}
		ideal := 40 * float64(grad[small])
		fmt.Printf("  feedback=%-5v smallest element delivered %6.2f of ideal %6.2f (%.0f%%)\n",
			feedback, delivered, ideal, 100*delivered/ideal)
	}
}

func maxErr(got []float32, want []float64) float64 {
	var m float64
	for i := range got {
		if d := math.Abs(float64(got[i]) - want[i]); d > m {
			m = d
		}
	}
	return m
}
