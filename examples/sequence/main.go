// Sequence: data-parallel training of the recurrent model (embedding → GRU
// → softmax) with per-token sparse embedding gradients — the gradient
// structure of the paper's translation models, where every token position
// contributes a row and duplicates abound. The example runs a hand-rolled
// AllGather data-parallel loop over real collectives and prints the
// Algorithm-1 statistics of the actual gradients it ships.
package main

import (
	"fmt"
	"log"
	"sync"

	"embrace"

	"embrace/internal/collective"
	"embrace/internal/comm"
	"embrace/internal/data"
	"embrace/internal/nn"
	"embrace/internal/optim"
	"embrace/internal/sched"
	"embrace/internal/tensor"
)

func main() {
	log.SetFlags(0)
	const (
		workers = 4
		steps   = 25
		vocab   = 400
		embDim  = 12
		hidden  = 16
		window  = 6
	)

	losses := make([]float64, steps)
	var statsMu sync.Mutex
	var rawRows, coalescedRows, priorRows int

	err := comm.RunRanks(workers, func(t comm.Transport) error {
		cm := collective.NewCommunicator(t)
		model := nn.NewSeqModel(11, vocab, embDim, hidden)
		opts := map[string]optim.Optimizer{}
		for _, p := range model.Params() {
			opts[p.Name] = optim.NewAdamDefault(p.Tensor, 0.01)
		}
		embOpt := optim.NewAdamDefault(model.Emb.Table, 0.01)

		gen, err := data.NewGenerator(data.Config{
			VocabSize: vocab, BatchSentences: 12,
			MaxSeqLen: window + 2, MinSeqLen: window + 1,
			ZipfS: 1.6, ZipfV: 3,
		}, 100+int64(t.Rank()))
		if err != nil {
			return err
		}
		loader := data.NewLoader(gen)

		for step := 0; step < steps; step++ {
			batch := loader.Next()
			next := loader.Peek()
			windows := make([][]int64, len(batch.Sentences))
			targets := make([]int64, len(batch.Sentences))
			for i, s := range batch.Sentences {
				windows[i] = s[:window]
				targets[i] = s[window]
			}

			stats, embGrad, dense, err := model.Step(windows, targets)
			if err != nil {
				return err
			}

			// Dense gradients: ring AllReduce, like any dense model.
			for _, p := range model.Params() {
				g := dense[p.Name]
				if err := cm.AllReduce("dense/"+p.Name, step, g.Data()); err != nil {
					return err
				}
				if err := opts[p.Name].StepDense(g); err != nil {
					return err
				}
			}

			// Embedding gradient: Algorithm 1 on the real per-token rows,
			// then sparse AllGather of prior + delayed parts.
			prior, delayed := sched.VerticalSplit(embGrad, embGrad.UniqueIndices(),
				tensor.UniqueInt64(next.Tokens()))
			if t.Rank() == 0 && step == steps-1 {
				statsMu.Lock()
				rawRows = embGrad.NNZ()
				coalescedRows = prior.NNZ() + delayed.NNZ()
				priorRows = prior.NNZ()
				statsMu.Unlock()
			}
			mergedPrior, err := cm.SparseAllGather("emb/prior", step, prior)
			if err != nil {
				return err
			}
			if err := embOpt.StepSparsePartial(mergedPrior, false); err != nil {
				return err
			}
			mergedDelayed, err := cm.SparseAllGather("emb/delayed", step, delayed)
			if err != nil {
				return err
			}
			if err := embOpt.StepSparsePartial(mergedDelayed, true); err != nil {
				return err
			}

			all, err := collective.GatherVia(cm, "trainer/loss", step, 0, stats.Loss)
			if err != nil {
				return err
			}
			if t.Rank() == 0 {
				var sum float64
				for _, l := range all {
					sum += l
				}
				statsMu.Lock()
				losses[step] = sum / float64(len(all))
				statsMu.Unlock()
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("GRU sequence model, 4 workers, per-token sparse gradients + Algorithm 1:")
	for i := 0; i < steps; i += 6 {
		fmt.Printf("  step %3d  loss %.4f\n", i+1, losses[i])
	}
	fmt.Printf("  step %3d  loss %.4f\n", steps, losses[steps-1])
	fmt.Printf("\nlast-step gradient (rank 0): %d raw token rows -> %d coalesced (%d prior, %d delayed)\n",
		rawRows, coalescedRows, priorRows, coalescedRows-priorRows)

	// The same machinery on real text through the public API: a tokenizer
	// is built from the sentences, each worker takes an interleaved shard,
	// and vertical scheduling splits the real per-token gradients.
	text := []string{
		"the old man went to the sea",
		"the sea was calm and the wind was cold",
		"the old man cast his net into the sea",
		"the net came back empty and the man waited",
		"the wind rose and the sea grew rough",
		"the man pulled the net from the rough sea",
		"the cold wind cut through the old net",
		"the sea gave the man a great fish",
	}
	res, err := embrace.TrainSeq(embrace.SeqTrainConfig{
		Workers:        2,
		Steps:          40,
		Window:         5,
		Vocab:          64,
		BatchSentences: 4,
		Vertical:       true,
		Seed:           3,
		Text:           text,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreal text (%d sentences): loss %.3f -> %.3f, final next-word accuracy %.0f%%\n",
		len(text), res.Losses[0], res.Losses[len(res.Losses)-1],
		100*res.Accuracies[len(res.Accuracies)-1])
}
