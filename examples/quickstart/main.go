// Quickstart: train a sparse model with EmbRace's hybrid communication in a
// dozen lines, then compare the result against the Horovod AllGather
// baseline to show that the AlltoAll + 2D-scheduling path is synchronous and
// loss-equivalent.
package main

import (
	"fmt"
	"log"

	"embrace"
)

func main() {
	log.SetFlags(0)

	// Train with EmbRace: column-partitioned embedding, AlltoAll exchange,
	// Vertical Sparse Scheduling, modified Adam.
	embraceRun, err := embrace.Train(embrace.TrainConfig{
		Strategy: embrace.EmbRace,
		Sched:    embrace.Sched2D,
		Workers:  4,
		Steps:    40,
		Adam:     true,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The same job through the strongest sparse baseline.
	baseline, err := embrace.Train(embrace.TrainConfig{
		Strategy: embrace.HorovodAllGather,
		Workers:  4,
		Steps:    40,
		Adam:     true,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("step   EmbRace-loss   AllGather-loss")
	for i := 0; i < len(embraceRun.Losses); i += 8 {
		fmt.Printf("%4d %14.4f %16.4f\n", i+1, embraceRun.Losses[i], baseline.Losses[i])
	}
	fmt.Printf("\nfinal PPL: EmbRace %.2f vs AllGather %.2f (synchronous training, identical math)\n",
		embraceRun.FinalPPL, baseline.FinalPPL)
}
