// Translation: the GNMT-8 workload of the paper's evaluation. Simulates
// end-to-end training throughput of every strategy on both clusters at
// 4/8/16 GPUs — the GNMT-8 panels of Figure 7 — and the 4->16 scaling curve
// of Figure 10.
package main

import (
	"fmt"
	"log"

	"embrace"
)

func main() {
	log.SetFlags(0)
	const model = "GNMT-8"

	for _, gpu := range []embrace.GPU{embrace.RTX3090, embrace.RTX2080} {
		fmt.Printf("%s on %s (tokens/sec):\n", model, gpu)
		for _, gpus := range []int{4, 8, 16} {
			fmt.Printf("  %2d GPUs:", gpus)
			var best, emb float64
			for _, s := range embrace.Strategies() {
				sched := embrace.SchedNone
				if s == embrace.EmbRace {
					sched = embrace.Sched2D
				}
				res, err := embrace.Simulate(embrace.SimJob{
					Model: model, GPU: gpu, GPUs: gpus, Strategy: s, Sched: sched,
				})
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf(" %s=%.0f", s, res.TokensPerSec)
				if s == embrace.EmbRace {
					emb = res.TokensPerSec
				} else if res.TokensPerSec > best {
					best = res.TokensPerSec
				}
			}
			fmt.Printf("  -> EmbRace %.2fx\n", emb/best)
		}
	}

	fmt.Println("\nScaling on RTX3090 (relative to own 4-GPU throughput):")
	base := map[embrace.Strategy]float64{}
	for _, gpus := range []int{4, 8, 16} {
		fmt.Printf("  %2d GPUs:", gpus)
		for _, s := range []embrace.Strategy{embrace.HorovodAllReduce, embrace.EmbRace} {
			sched := embrace.SchedNone
			if s == embrace.EmbRace {
				sched = embrace.Sched2D
			}
			res, err := embrace.Simulate(embrace.SimJob{
				Model: model, GPU: embrace.RTX3090, GPUs: gpus, Strategy: s, Sched: sched,
			})
			if err != nil {
				log.Fatal(err)
			}
			if gpus == 4 {
				base[s] = res.TokensPerSec
			}
			fmt.Printf("  %s %.2fx", s, res.TokensPerSec/base[s])
		}
		fmt.Printf("  (ideal %.1fx)\n", float64(gpus)/4)
	}
}
