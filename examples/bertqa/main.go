// Bertqa: the BERT-base fine-tuning workload — the paper's least
// embedding-dominated model and its hardest case for EmbRace (1.02-1.06x on
// RTX3090, where backward passes already hide dense communication). Shows
// the Computation Stall breakdown of Figure 8 and the ablation of Figure 9
// for this model.
package main

import (
	"fmt"
	"log"

	"embrace"
)

func main() {
	log.SetFlags(0)
	const model = "BERT-base"

	fmt.Printf("%s — Computation Stall at 16 GPUs (ms):\n", model)
	for _, gpu := range []embrace.GPU{embrace.RTX3090, embrace.RTX2080} {
		var embStall float64
		fmt.Printf("  %s:\n", gpu)
		for _, s := range embrace.Strategies() {
			sched := embrace.SchedNone
			if s == embrace.EmbRace {
				sched = embrace.Sched2D
			}
			res, err := embrace.Simulate(embrace.SimJob{
				Model: model, GPU: gpu, GPUs: 16, Strategy: s, Sched: sched,
			})
			if err != nil {
				log.Fatal(err)
			}
			if s == embrace.EmbRace {
				embStall = res.StallSeconds
			}
			fmt.Printf("    %-18s stall %7.1fms of %7.1fms step\n",
				s, res.StallSeconds*1e3, res.StepSeconds*1e3)
		}
		fmt.Printf("    (EmbRace stall %.1fms is the Figure-8 normalization unit)\n", embStall*1e3)
	}

	fmt.Printf("\n%s — ablation at 16 RTX3090 GPUs (step ms):\n", model)
	for _, cfg := range []struct {
		label string
		strat embrace.Strategy
		sched embrace.SchedLevel
	}{
		{"Horovod AllGather", embrace.HorovodAllGather, embrace.SchedNone},
		{"EmbRace w/o scheduling", embrace.EmbRace, embrace.SchedNone},
		{"EmbRace + horizontal", embrace.EmbRace, embrace.SchedHorizontal},
		{"EmbRace + 2D", embrace.EmbRace, embrace.Sched2D},
	} {
		res, err := embrace.Simulate(embrace.SimJob{
			Model: model, GPU: embrace.RTX3090, GPUs: 16,
			Strategy: cfg.strat, Sched: cfg.sched,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s %7.1fms\n", cfg.label, res.StepSeconds*1e3)
	}

	// A small real fine-tuning-shaped run: subword-sized vocabulary,
	// heavier token reuse, Adam.
	res, err := embrace.Train(embrace.TrainConfig{
		Strategy:       embrace.EmbRace,
		Sched:          embrace.Sched2D,
		Workers:        4,
		Steps:          30,
		Vocab:          800,
		EmbDim:         24,
		Hidden:         48,
		BatchSentences: 8,
		Adam:           true,
		Seed:           11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreal training: loss %.3f -> %.3f (final PPL %.1f)\n",
		res.Losses[0], res.Losses[len(res.Losses)-1], res.FinalPPL)
}
