// Languagemodel: the LM workload — the paper's most embedding-dominated
// model (97.3% sparse parameters). Shows the two things that make EmbRace
// shine here: the Figure-4 style communication sweep of the sparse gradient,
// and the Table-3 payload reductions Vertical Sparse Scheduling achieves on
// real Zipf batches, ending with a real training run under EmbRace.
package main

import (
	"fmt"
	"log"
	"os"

	"embrace"
)

func main() {
	log.SetFlags(0)

	// Table 3 + sparsity on the real synthetic workload.
	if err := embrace.RunExperiment("table3", os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// The LM panels of Figure 7: dense strategies collapse, AllGather and
	// Parallax compete, EmbRace wins — most dramatically on RTX2080 where
	// the baselines' full embedding tables do not fit in GPU memory but
	// EmbRace's 1/N column shards do.
	for _, gpu := range []embrace.GPU{embrace.RTX3090, embrace.RTX2080} {
		fmt.Printf("LM on %s, 16 GPUs (tokens/sec):\n", gpu)
		var best, emb float64
		for _, s := range embrace.Strategies() {
			sched := embrace.SchedNone
			if s == embrace.EmbRace {
				sched = embrace.Sched2D
			}
			res, err := embrace.Simulate(embrace.SimJob{
				Model: "LM", GPU: gpu, GPUs: 16, Strategy: s, Sched: sched,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-18s %10.0f tok/s (stall %.1fms)\n", s, res.TokensPerSec, res.StallSeconds*1e3)
			if s == embrace.EmbRace {
				emb = res.TokensPerSec
			} else if res.TokensPerSec > best {
				best = res.TokensPerSec
			}
		}
		fmt.Printf("  EmbRace speedup over best baseline: %.2fx\n\n", emb/best)
	}

	// Real training with an LM-shaped micro model: big-ish vocabulary,
	// Adam, full 2D scheduling.
	res, err := embrace.Train(embrace.TrainConfig{
		Strategy: embrace.EmbRace,
		Sched:    embrace.Sched2D,
		Workers:  4,
		Steps:    30,
		Vocab:    5000,
		EmbDim:   32,
		Hidden:   32,
		Adam:     true,
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("real training: loss %.3f -> %.3f over %d steps (final PPL %.1f)\n",
		res.Losses[0], res.Losses[len(res.Losses)-1], len(res.Losses), res.FinalPPL)
}
