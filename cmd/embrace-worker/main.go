// Command embrace-worker runs ONE rank of a distributed training job in its
// own OS process, meshing with its peers over TCP — real multi-process
// distributed training with EmbRace's hybrid communication.
//
// Start one process per rank with the same peer list, e.g. a 4-rank local
// cluster:
//
//	embrace-worker -rank 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	embrace-worker -rank 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	embrace-worker -rank 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	embrace-worker -rank 3 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//
// Only the peer-to-peer strategies run multi-process (horovod-allreduce,
// horovod-allgather, embrace); the PS baselines need process-shared server
// state and are single-process only.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"embrace/internal/comm"
	"embrace/internal/data"
	"embrace/internal/strategies"
	"embrace/internal/trainer"
)

func main() {
	log.SetFlags(0)

	var (
		rank     = flag.Int("rank", 0, "this process's rank")
		peers    = flag.String("peers", "", "comma-separated host:port list, one per rank, in rank order")
		strategy = flag.String("strategy", "embrace", "horovod-allreduce | horovod-allgather | embrace")
		sched    = flag.String("sched", "2d", "embrace scheduling: none | 2d")
		steps    = flag.Int("steps", 30, "training steps")
		vocab    = flag.Int("vocab", 2000, "vocabulary size")
		embDim   = flag.Int("dim", 32, "embedding dimension (divisible by world size)")
		hidden   = flag.Int("hidden", 32, "hidden width")
		batch    = flag.Int("batch", 16, "sentences per worker per step")
		adam     = flag.Bool("adam", true, "use Adam")
		lr       = flag.Float64("lr", 0.01, "learning rate")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if *peers == "" || len(addrs) < 1 {
		log.Fatal("need -peers host:port,host:port,... (one per rank)")
	}
	log.SetPrefix(fmt.Sprintf("rank %d: ", *rank))

	node, err := comm.NewTCPNode(*rank, addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	log.Printf("mesh connected (%d ranks)", node.Size())

	sm := strategies.SchedNone
	if *sched == "2d" {
		sm = strategies.Sched2D
	}
	opt := strategies.OptSGD
	if *adam {
		opt = strategies.OptAdam
	}
	job := trainer.Job{
		Strategy: strategies.Name(*strategy),
		Workers:  len(addrs),
		Steps:    *steps,
		Window:   4,
		Model: strategies.Config{
			Seed:      *seed,
			Vocab:     *vocab,
			EmbDim:    *embDim,
			Hidden:    *hidden,
			Optimizer: opt,
			LR:        float32(*lr),
			Sched:     sm,
		},
		Data: data.Config{
			VocabSize:      *vocab,
			BatchSentences: *batch,
			MaxSeqLen:      10,
			MinSeqLen:      6,
			ZipfS:          1.5,
			ZipfV:          4,
		},
		DataSeed: *seed + 1,
	}
	res, err := trainer.RunWorker(job, node)
	if err != nil {
		log.Fatal(err)
	}
	if *rank == 0 {
		for i := 0; i < len(res.Losses); i += 5 {
			log.Printf("step %4d loss %.4f acc %.3f", i+1, res.Losses[i], res.Accuracies[i])
		}
		last := len(res.Losses) - 1
		log.Printf("done: final loss %.4f, %.2f MB communicated by this rank",
			res.Losses[last], float64(res.Comm.PayloadBytes)/1e6)
	} else {
		log.Printf("done")
	}
}
