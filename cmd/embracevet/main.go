// Command embracevet runs the repo's custom static analyzers over the
// module and reports violations of its concurrency, determinism,
// tag-discipline, allocation, arena-lifetime, and collective-schedule
// invariants.
//
// Usage:
//
//	go run ./cmd/embracevet ./...
//	go run ./cmd/embracevet -json ./... > embracevet.json
//	go run ./cmd/embracevet ./internal/collective ./internal/sched
//
// Each pattern is a directory path relative to the module root; a trailing
// /... recurses. All matched packages are loaded into one program first, so
// the interprocedural analyzers (arenalife, commdiverge) see cross-package
// contracts and call-graph facts regardless of which directories were
// named.
//
// Findings print as file:line:col: message (analyzer). With -json, every
// diagnostic — including suppressed ones — prints as one JSON object per
// line ({"file","line","col","analyzer","message","suppressed"}) on stdout,
// and a per-analyzer finding/timing summary goes to stderr. A finding is
// suppressed by a justified directive on its line or the line above:
//
//	//embrace:allow <analyzer> <why this exception is safe>
//
// Exit codes:
//
//	0  no findings (suppressed findings do not count)
//	1  at least one non-suppressed finding
//	2  usage, load, or typecheck error
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"embrace/internal/analysis"
	"embrace/internal/analysis/arenalife"
	"embrace/internal/analysis/commdiverge"
	"embrace/internal/analysis/determinism"
	"embrace/internal/analysis/hotalloc"
	"embrace/internal/analysis/locksend"
	"embrace/internal/analysis/rawtag"
	"embrace/internal/analysis/sliceret"
)

var analyzers = []*analysis.Analyzer{
	rawtag.Analyzer,
	determinism.Analyzer,
	locksend.Analyzer,
	sliceret.Analyzer,
	hotalloc.Analyzer,
	arenalife.Analyzer,
	commdiverge.Analyzer,
}

// jsonDiag is the -json wire form of one diagnostic.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON diagnostic per line on stdout and a per-analyzer summary on stderr")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, module, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	dirs, err := expand(root, patterns)
	if err != nil {
		fatal(err)
	}

	loader := analysis.NewLoader([]analysis.Root{{Prefix: module, Dir: root}})
	var units []*analysis.Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			fatal(err)
		}
		importPath := module
		if rel != "." {
			importPath = module + "/" + filepath.ToSlash(rel)
		}
		loaded, err := loader.LoadDir(dir, importPath, true)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", importPath, err))
		}
		units = append(units, loaded...)
	}

	runner := analysis.NewRunner(analyzers, loader.Fset, units)
	enc := json.NewEncoder(os.Stdout)
	found := false
	for _, unit := range units {
		diags, err := runner.Check(unit)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", unit.Path, err))
		}
		for _, d := range diags {
			pos := loader.Fset.Position(d.Pos)
			file := pos.Filename
			if r, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(r, "..") {
				file = r
			}
			if *jsonOut {
				if err := enc.Encode(jsonDiag{
					File: file, Line: pos.Line, Col: pos.Column,
					Analyzer: d.Analyzer, Message: d.Message, Suppressed: d.Suppressed,
				}); err != nil {
					fatal(err)
				}
			} else if !d.Suppressed {
				fmt.Printf("%s:%d:%d: %s (%s)\n", file, pos.Line, pos.Column, d.Message, d.Analyzer)
			}
			if !d.Suppressed {
				found = true
			}
		}
	}
	if *jsonOut {
		summarize(runner)
	}
	if found {
		os.Exit(1)
	}
}

// summarize prints the per-analyzer finding/timing table on stderr.
func summarize(runner *analysis.Runner) {
	names := make([]string, 0, len(runner.Stats))
	for name := range runner.Stats {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "%-12s %9s %11s %10s\n", "analyzer", "findings", "suppressed", "elapsed")
	for _, name := range names {
		s := runner.Stats[name]
		fmt.Fprintf(os.Stderr, "%-12s %9d %11d %10s\n", name, s.Findings, s.Suppressed, s.Elapsed.Round(10*time.Microsecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "embracevet:", err)
	os.Exit(2)
}

// moduleRoot finds the enclosing go.mod from the working directory and
// returns its directory and module path.
func moduleRoot() (dir, module string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// expand resolves ./pkg and ./... style patterns to package directories,
// skipping testdata fixtures, vendored code, and dot-directories.
func expand(root string, patterns []string) ([]string, error) {
	set := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			if hasGoFiles(base) {
				set[base] = true
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				set[path] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	dirs := make([]string, 0, len(set))
	for d := range set {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}
