// Command embracevet runs the repo's custom static analyzers over the
// module and reports violations of its concurrency, determinism, and
// tag-discipline invariants.
//
// Usage:
//
//	go run ./cmd/embracevet ./...
//	go run ./cmd/embracevet ./internal/collective ./internal/sched
//
// Each pattern is a directory path relative to the module root; a trailing
// /... recurses. Findings print as file:line:col: message (analyzer) and the
// exit status is 1 when any finding survives. A finding is suppressed by a
// justified directive on its line or the line above:
//
//	//embrace:allow <analyzer> <why this exception is safe>
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"embrace/internal/analysis"
	"embrace/internal/analysis/determinism"
	"embrace/internal/analysis/hotalloc"
	"embrace/internal/analysis/locksend"
	"embrace/internal/analysis/rawtag"
	"embrace/internal/analysis/sliceret"
)

var analyzers = []*analysis.Analyzer{
	rawtag.Analyzer,
	determinism.Analyzer,
	locksend.Analyzer,
	sliceret.Analyzer,
	hotalloc.Analyzer,
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, module, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "embracevet:", err)
		os.Exit(2)
	}
	dirs, err := expand(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "embracevet:", err)
		os.Exit(2)
	}

	loader := analysis.NewLoader([]analysis.Root{{Prefix: module, Dir: root}})
	found := false
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "embracevet:", err)
			os.Exit(2)
		}
		importPath := module
		if rel != "." {
			importPath = module + "/" + filepath.ToSlash(rel)
		}
		units, err := loader.LoadDir(dir, importPath, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "embracevet: %s: %v\n", importPath, err)
			os.Exit(2)
		}
		for _, unit := range units {
			diags, err := analysis.Run(analyzers, unit, loader.Fset)
			if err != nil {
				fmt.Fprintf(os.Stderr, "embracevet: %s: %v\n", unit.Path, err)
				os.Exit(2)
			}
			for _, d := range diags {
				pos := loader.Fset.Position(d.Pos)
				file := pos.Filename
				if r, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(r, "..") {
					file = r
				}
				fmt.Printf("%s:%d:%d: %s (%s)\n", file, pos.Line, pos.Column, d.Message, d.Analyzer)
				found = true
			}
		}
	}
	if found {
		os.Exit(1)
	}
}

// moduleRoot finds the enclosing go.mod from the working directory and
// returns its directory and module path.
func moduleRoot() (dir, module string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// expand resolves ./pkg and ./... style patterns to package directories,
// skipping testdata fixtures, vendored code, and dot-directories.
func expand(root string, patterns []string) ([]string, error) {
	set := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			if hasGoFiles(base) {
				set[base] = true
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				set[path] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	dirs := make([]string, 0, len(set))
	for d := range set {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}
