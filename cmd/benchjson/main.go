// Command benchjson converts `go test -bench` text output on stdin into a
// JSON report, so benchmark numbers land in a file diffable across PRs
// instead of scrolling away in a terminal. Only benchmark result lines are
// parsed; everything else (PASS, ok, log noise) is ignored.
//
// Usage:
//
//	go test -run '^$' -bench HotPathStep -benchmem . | go run ./cmd/benchjson -out BENCH_hotpath.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line. AllocedBytesPerOp and AllocsPerOp are
// present only when the run used -benchmem.
type result struct {
	Name              string  `json:"name"`
	Procs             int     `json:"procs"`
	Iterations        int64   `json:"iterations"`
	NsPerOp           float64 `json:"ns_per_op"`
	AllocedBytesPerOp int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp       int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric columns (e.g. raw_over_wire from
	// the compression bench), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // tee: keep the human-readable output visible
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}

// parseLine matches one `BenchmarkName-P  iters  ns/op [B/op allocs/op]`
// line. The -P GOMAXPROCS suffix is split off into Procs.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
		return result{}, false
	}
	name, procs := fields[0], 1
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return result{}, false
	}
	r := result{Name: name, Procs: procs, Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		switch unit := fields[i+1]; unit {
		case "B/op":
			if v, err := strconv.ParseInt(fields[i], 10, 64); err == nil {
				r.AllocedBytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(fields[i], 10, 64); err == nil {
				r.AllocsPerOp = v
			}
		default:
			// Custom b.ReportMetric columns are floats with bench-chosen units.
			if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
	}
	return r, true
}
