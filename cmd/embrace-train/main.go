// Command embrace-train runs real distributed training — N in-process ranks
// with genuine collective communication — under any of the paper's five
// strategies, printing the loss curve.
//
// Usage:
//
//	embrace-train -strategy embrace -sched 2d -workers 4 -steps 50 -adam
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"embrace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("embrace-train: ")

	var (
		strategy = flag.String("strategy", "embrace", "byteps | horovod-allreduce | horovod-allgather | parallax | embrace")
		sched    = flag.String("sched", "2d", "embrace scheduling: none | 2d")
		workers  = flag.Int("workers", 4, "number of ranks")
		steps    = flag.Int("steps", 50, "training steps")
		vocab    = flag.Int("vocab", 2000, "vocabulary size")
		embDim   = flag.Int("dim", 32, "embedding dimension (divisible by workers)")
		hidden   = flag.Int("hidden", 32, "hidden layer width")
		batch    = flag.Int("batch", 16, "sentences per worker per step")
		adam     = flag.Bool("adam", true, "use Adam (false = SGD)")
		lr       = flag.Float64("lr", 0.01, "learning rate")
		seed     = flag.Int64("seed", 1, "random seed")
		overTCP  = flag.Bool("tcp", false, "run collectives over loopback TCP sockets")
		ckpt     = flag.String("checkpoint", "", "save final parameters to this file")
		resume   = flag.String("resume", "", "warm-start from a checkpoint written with the same configuration")
		every    = flag.Int("every", 5, "print loss every N steps")
		comp     = flag.String("compress", "", "embedding AlltoAll wire codec: \"\" | lossless | lossy")
		epsP     = flag.Float64("eps-prior", 0, "lossy codec error bound for prior rows (0 = default 1e-4)")
		epsD     = flag.Float64("eps-delayed", 0, "lossy codec error bound for delayed rows (0 = default 1e-3)")

		chaosSeed   = flag.Int64("chaos-seed", 0, "train over a seeded fault-injecting transport (0 = off)")
		elastic     = flag.Bool("elastic", false, "run under the elastic supervisor: crash -> shrink -> resume (DESIGN.md §13)")
		ckptEvery   = flag.Int("ckpt-every", 0, "elastic snapshot cadence in steps (0 = default 5)")
		rejoin      = flag.Bool("rejoin", false, "elastic: readmit recovered ranks at full world size")
		rejoinAfter = flag.Int("rejoin-after", 0, "steps the shrunk world trains before readmitting (0 = ckpt cadence)")
		crashRank   = flag.Int("crash-rank", 0, "elastic: rank to crash deterministically")
		crashStep   = flag.Int("crash-step", 0, "elastic: step at which crash-rank dies (0 = no injected crash)")
		elasticOut  = flag.String("elastic-report", "", "write the elastic epoch/recovery-latency report as JSON to this file")
	)
	flag.Parse()

	res, err := embrace.Train(embrace.TrainConfig{
		Strategy:               embrace.Strategy(*strategy),
		Sched:                  embrace.SchedLevel(*sched),
		Workers:                *workers,
		Steps:                  *steps,
		Vocab:                  *vocab,
		EmbDim:                 *embDim,
		Hidden:                 *hidden,
		BatchSentences:         *batch,
		Adam:                   *adam,
		LR:                     float32(*lr),
		Seed:                   *seed,
		OverTCP:                *overTCP,
		CheckpointPath:         *ckpt,
		ResumeFrom:             *resume,
		Compress:               *comp,
		CompressEpsPrior:       float32(*epsP),
		CompressEpsDelayed:     float32(*epsD),
		ChaosSeed:              *chaosSeed,
		Elastic:                *elastic,
		ElasticCheckpointEvery: *ckptEvery,
		ElasticRejoin:          *rejoin,
		ElasticRejoinAfter:     *rejoinAfter,
		CrashRank:              *crashRank,
		CrashStep:              *crashStep,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strategy=%s sched=%s workers=%d\n", *strategy, *sched, *workers)
	if *elastic {
		fmt.Printf("elastic: %d recoveries across %d world epochs\n", res.Recoveries, len(res.Elastic))
		for _, ep := range res.Elastic {
			fmt.Printf("  epoch %d: %d workers, steps [%d,%d) -> %s", ep.Epoch, ep.Workers, ep.StartStep, ep.EndStep, ep.End)
			if len(ep.Crashed) > 0 {
				fmt.Printf(" (crashed ranks %v)", ep.Crashed)
			}
			if ep.RecoverySeconds > 0 {
				fmt.Printf(", recovered in %.3fs", ep.RecoverySeconds)
			}
			fmt.Println()
		}
		if *elasticOut != "" {
			report := struct {
				Recoveries int                    `json:"recoveries"`
				Epochs     []embrace.ElasticEpoch `json:"epochs"`
				FinalPPL   float64                `json:"final_ppl"`
			}{res.Recoveries, res.Elastic, res.FinalPPL}
			buf, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*elasticOut, append(buf, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("elastic report written to %s\n", *elasticOut)
		}
	}
	for i, loss := range res.Losses {
		if (i+1)%*every == 0 || i == 0 || i == len(res.Losses)-1 {
			fmt.Printf("step %4d  loss %.4f\n", i+1, loss)
		}
	}
	fmt.Printf("final PPL %.2f over %d trained tokens\n", res.FinalPPL, res.TokensTrained)
	fmt.Printf("communication: %.2f MB in %d messages\n", float64(res.CommBytes)/1e6, res.CommMessages)
	var raw, wire int64
	for _, t := range res.CommPerOp {
		if t.RawBytes > 0 {
			raw += t.RawBytes
			wire += t.Bytes
		}
	}
	if raw > 0 {
		fmt.Printf("compression (%s): %.2f MB raw -> %.2f MB wire (%.2fx)\n",
			*comp, float64(raw)/1e6, float64(wire)/1e6, float64(raw)/float64(wire))
	}
}
