// Command embrace-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	embrace-bench                 # run every experiment
//	embrace-bench -exp fig7       # run one experiment
//	embrace-bench -list           # list experiment ids
//	embrace-bench -model GNMT-8 -gpu RTX2080 -gpus 16   # one simulation cell
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"embrace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("embrace-bench: ")

	var (
		exp      = flag.String("exp", "", "experiment id to run (empty = all)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		model    = flag.String("model", "", "simulate a single cell for this model instead of running experiments")
		gpu      = flag.String("gpu", "RTX3090", "GPU kind for -model (RTX3090 or RTX2080)")
		gpus     = flag.Int("gpus", 16, "total GPUs for -model")
		traceOut = flag.String("trace", "", "with -model: write a Chrome trace of the EmbRace timeline to this file")
		asJSON   = flag.Bool("json", false, "with -exp: emit structured JSON instead of text")
		outDir   = flag.String("out", "", "write every experiment's text and JSON artifacts into this directory")
	)
	flag.Parse()

	switch {
	case *outDir != "":
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, id := range embrace.ExperimentIDs() {
			txt, err := os.Create(filepath.Join(*outDir, id+".txt"))
			if err != nil {
				log.Fatal(err)
			}
			if err := embrace.RunExperiment(id, txt); err != nil {
				log.Fatal(err)
			}
			txt.Close()
			js, err := os.Create(filepath.Join(*outDir, id+".json"))
			if err != nil {
				log.Fatal(err)
			}
			if err := embrace.RunExperimentJSON(id, js); err != nil {
				log.Fatal(err)
			}
			js.Close()
			fmt.Printf("wrote %s.{txt,json}\n", filepath.Join(*outDir, id))
		}
	case *list:
		for _, id := range embrace.ExperimentIDs() {
			title, _ := embrace.ExperimentTitle(id)
			fmt.Printf("%-8s %s\n", id, title)
		}
	case *model != "":
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			err = embrace.SimulateTrace(embrace.SimJob{
				Model: *model, GPU: embrace.GPU(*gpu), GPUs: *gpus,
				Strategy: embrace.EmbRace, Sched: embrace.Sched2D,
			}, f)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s (open in chrome://tracing or Perfetto)\n", *traceOut)
		}
		fmt.Printf("%s on %d x %s (tokens/sec, stall ms):\n", *model, *gpus, *gpu)
		for _, s := range embrace.Strategies() {
			sched := embrace.SchedNone
			if s == embrace.EmbRace {
				sched = embrace.Sched2D
			}
			res, err := embrace.Simulate(embrace.SimJob{
				Model:    *model,
				GPU:      embrace.GPU(*gpu),
				GPUs:     *gpus,
				Strategy: s,
				Sched:    sched,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-18s %10.0f tok/s  step %6.1fms  stall %6.1fms\n",
				s, res.TokensPerSec, res.StepSeconds*1e3, res.StallSeconds*1e3)
		}
	case *exp != "":
		run := embrace.RunExperiment
		if *asJSON {
			run = embrace.RunExperimentJSON
		}
		if err := run(*exp, os.Stdout); err != nil {
			log.Fatal(err)
		}
	default:
		if err := embrace.RunAllExperiments(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
