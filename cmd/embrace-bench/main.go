// Command embrace-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	embrace-bench                 # run every experiment
//	embrace-bench -exp fig7       # run one experiment
//	embrace-bench -list           # list experiment ids
//	embrace-bench -model GNMT-8 -gpu RTX2080 -gpus 16   # one simulation cell
//	embrace-bench -chaos 42       # chaos resilience demo under this fault seed
//	embrace-bench -traceout trace.json   # trace a real 4-rank EmbRace run
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"embrace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("embrace-bench: ")

	var (
		exp      = flag.String("exp", "", "experiment id to run (empty = all)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		model    = flag.String("model", "", "simulate a single cell for this model instead of running experiments")
		gpu      = flag.String("gpu", "RTX3090", "GPU kind for -model (RTX3090 or RTX2080)")
		gpus     = flag.Int("gpus", 16, "total GPUs for -model")
		traceOut = flag.String("trace", "", "with -model: write a Chrome trace of the EmbRace timeline to this file")
		asJSON   = flag.Bool("json", false, "with -exp: emit structured JSON instead of text")
		outDir   = flag.String("out", "", "write every experiment's text and JSON artifacts into this directory")
		chaos    = flag.Int64("chaos", 0, "run the chaos resilience demo under this fault seed (0 = off)")
		realOut  = flag.String("traceout", "", "run a real 4-rank EmbRace training job and write its measured Chrome trace to this file")
	)
	flag.Parse()

	switch {
	case *realOut != "":
		if err := runTraceDemo(*realOut); err != nil {
			log.Fatal(err)
		}
	case *chaos != 0:
		if err := runChaosDemo(*chaos); err != nil {
			log.Fatal(err)
		}
	case *outDir != "":
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, id := range embrace.ExperimentIDs() {
			txt, err := os.Create(filepath.Join(*outDir, id+".txt"))
			if err != nil {
				log.Fatal(err)
			}
			if err := embrace.RunExperiment(id, txt); err != nil {
				log.Fatal(err)
			}
			txt.Close()
			js, err := os.Create(filepath.Join(*outDir, id+".json"))
			if err != nil {
				log.Fatal(err)
			}
			if err := embrace.RunExperimentJSON(id, js); err != nil {
				log.Fatal(err)
			}
			js.Close()
			fmt.Printf("wrote %s.{txt,json}\n", filepath.Join(*outDir, id))
		}
	case *list:
		for _, id := range embrace.ExperimentIDs() {
			title, _ := embrace.ExperimentTitle(id)
			fmt.Printf("%-8s %s\n", id, title)
		}
	case *model != "":
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			err = embrace.SimulateTrace(embrace.SimJob{
				Model: *model, GPU: embrace.GPU(*gpu), GPUs: *gpus,
				Strategy: embrace.EmbRace, Sched: embrace.Sched2D,
			}, f)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s (open in chrome://tracing or Perfetto)\n", *traceOut)
		}
		fmt.Printf("%s on %d x %s (tokens/sec, stall ms):\n", *model, *gpus, *gpu)
		for _, s := range embrace.Strategies() {
			sched := embrace.SchedNone
			if s == embrace.EmbRace {
				sched = embrace.Sched2D
			}
			res, err := embrace.Simulate(embrace.SimJob{
				Model:    *model,
				GPU:      embrace.GPU(*gpu),
				GPUs:     *gpus,
				Strategy: s,
				Sched:    sched,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-18s %10.0f tok/s  step %6.1fms  stall %6.1fms\n",
				s, res.TokensPerSec, res.StepSeconds*1e3, res.StallSeconds*1e3)
		}
	case *exp != "":
		run := embrace.RunExperiment
		if *asJSON {
			run = embrace.RunExperimentJSON
		}
		if err := run(*exp, os.Stdout); err != nil {
			log.Fatal(err)
		}
	default:
		if err := embrace.RunAllExperiments(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

// runTraceDemo trains a small 4-rank EmbRace 2D job with span recording on
// and writes the measured timeline as Chrome trace JSON: one process per
// rank, the delayed-gradient AlltoAll on its own background lane overlapping
// the next step's compute — the paper's §4.2.2 overlap, measured rather than
// simulated.
func runTraceDemo(path string) error {
	cfg := embrace.TrainConfig{
		Strategy:  embrace.EmbRace,
		Sched:     embrace.Sched2D,
		Workers:   4,
		Steps:     8,
		Vocab:     2000,
		EmbDim:    32,
		Hidden:    32,
		Adam:      true,
		Seed:      7,
		TracePath: path,
	}
	res, err := embrace.Train(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("traced %d-rank EmbRace run: %d steps, final ppl %.2f\n",
		cfg.Workers, cfg.Steps, res.FinalPPL)
	phases := make([]string, 0, len(res.PhaseSeconds))
	for name := range res.PhaseSeconds {
		phases = append(phases, name)
	}
	sort.Slice(phases, func(i, j int) bool {
		return res.PhaseSeconds[phases[i]] > res.PhaseSeconds[phases[j]]
	})
	fmt.Println("time by phase (summed over ranks):")
	for _, name := range phases {
		fmt.Printf("  %-22s %8.3fms\n", name, res.PhaseSeconds[name]*1e3)
	}
	fmt.Printf("wrote %s (open in Perfetto or chrome://tracing)\n", path)
	return nil
}

// runChaosDemo trains the same small EmbRace job twice — once clean, once
// over a fault-injecting transport seeded by `seed` — and verifies the loss
// curves match exactly: the self-healing collectives must mask every
// injected fault.
func runChaosDemo(seed int64) error {
	cfg := embrace.TrainConfig{
		Strategy: embrace.EmbRace,
		Sched:    embrace.Sched2D,
		Workers:  4,
		Steps:    8,
		Vocab:    500,
		EmbDim:   16,
		Hidden:   16,
		Seed:     7,
	}
	clean, err := embrace.Train(cfg)
	if err != nil {
		return fmt.Errorf("fault-free run: %w", err)
	}
	cfg.ChaosSeed = seed
	chaotic, err := embrace.Train(cfg)
	if err != nil {
		return fmt.Errorf("chaos run (seed %d): %w", seed, err)
	}

	fmt.Printf("chaos resilience demo: %d workers, %d steps, fault seed %d\n",
		cfg.Workers, cfg.Steps, seed)
	fmt.Printf("%-6s %-14s %-14s\n", "step", "clean loss", "chaos loss")
	mismatch := 0
	for i := range clean.Losses {
		marker := ""
		if clean.Losses[i] != chaotic.Losses[i] {
			marker = "  <- DIVERGED"
			mismatch++
		}
		fmt.Printf("%-6d %-14.8f %-14.8f%s\n", i, clean.Losses[i], chaotic.Losses[i], marker)
	}
	fmt.Printf("faults masked: %d (fatal: %d)\n", chaotic.FaultsMasked, chaotic.FaultsFatal)
	if mismatch > 0 {
		return fmt.Errorf("chaos run diverged from fault-free at %d of %d steps", mismatch, len(clean.Losses))
	}
	fmt.Println("verdict: bit-identical loss curve under injected faults")
	return nil
}
