// Command embrace-serve boots a sharded inference deployment from a
// checkpoint written by embrace-train, fires a closed-loop Zipf load at it,
// and prints throughput, latency percentiles, and cache effectiveness.
//
// Usage:
//
//	embrace-train -steps 30 -checkpoint /tmp/model.ckpt
//	embrace-serve -checkpoint /tmp/model.ckpt -ranks 4 -cache 256
//	embrace-serve -checkpoint /tmp/model.ckpt -ranks 4 -drivers 4 \
//	    -partition consistent-hash -replicate 256 -tcp
//
// With -drivers N the first N ranks each run their own ingress (independent
// admission, batching, LRU) and the load clients spread across them;
// -replicate adds the shared hot-shard replica set every ingress serves
// locally. With -compare it runs the identical workload twice — hot-row
// cache on, then off — and prints both reports side by side.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"embrace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("embrace-serve: ")

	var (
		ckpt      = flag.String("checkpoint", "", "checkpoint file to serve (required)")
		ranks     = flag.Int("ranks", 4, "number of serving ranks")
		drivers   = flag.Int("drivers", 1, "ingress drivers (each rank < drivers runs its own front end)")
		part      = flag.String("partition", embrace.ServeRowHash, "embedding partition: row-hash | consistent-hash | column")
		cache     = flag.Int("cache", 256, "per-driver hot-row LRU cache capacity (0 disables)")
		replicate = flag.Int("replicate", 0, "replicated hot-set capacity shared by all drivers (0 disables)")
		tcp       = flag.Bool("tcp", false, "serve over real localhost TCP sockets instead of the in-process fabric")
		batch     = flag.Int("batch", 32, "max requests coalesced per micro-batch")
		window    = flag.Duration("window", 200*time.Microsecond, "micro-batch collection window")
		queue     = flag.Int("queue", 256, "admission queue depth")
		reload    = flag.String("reload", "", "checkpoint to hot-swap in halfway through the load run")
		compare   = flag.Bool("compare", false, "run the workload with cache on then off and compare")

		clients = flag.Int("clients", 8, "closed-loop load clients")
		reqs    = flag.Int("requests", 500, "requests per client")
		perReq  = flag.Int("ids", 4, "ids per lookup / predict window size")
		predict = flag.Bool("predict", false, "issue Predict requests instead of Lookup")
		zipfS   = flag.Float64("zipf-s", 1.3, "Zipf skew exponent (s > 1)")
		zipfV   = flag.Float64("zipf-v", 2, "Zipf offset (v >= 1)")
		seed    = flag.Int64("seed", 1, "load-generator seed")
		timeout = flag.Duration("timeout", 0, "per-request deadline (0 = none)")
	)
	flag.Parse()

	if *ckpt == "" {
		log.Fatal("-checkpoint is required (write one with embrace-train -checkpoint)")
	}

	cfg := embrace.ServeConfig{
		Ranks:       *ranks,
		Drivers:     *drivers,
		Partition:   *part,
		CacheRows:   *cache,
		Replicate:   *replicate,
		TCP:         *tcp,
		MaxBatch:    *batch,
		BatchWindow: *window,
		QueueDepth:  *queue,
	}
	spec := embrace.LoadSpec{
		Clients:       *clients,
		Requests:      *reqs,
		IDsPerRequest: *perReq,
		Predict:       *predict,
		ZipfS:         *zipfS,
		ZipfV:         *zipfV,
		Seed:          *seed,
		Timeout:       *timeout,
	}

	if *compare {
		on := runOnce(*ckpt, cfg, spec, "")
		off := cfg
		off.CacheRows = 0
		offRes := runOnce(*ckpt, off, spec, "")
		fmt.Printf("\n%-10s %10s %12s %12s %12s %10s\n",
			"cache", "qps", "p50", "p99", "max", "hit-rate")
		fmt.Printf("%-10s %10.0f %12s %12s %12s %9.1f%%\n",
			fmt.Sprintf("on(%d)", cfg.CacheRows), on.load.QPS, on.load.P50, on.load.P99, on.load.Max,
			100*on.stats.CacheHitRate)
		fmt.Printf("%-10s %10.0f %12s %12s %12s %9.1f%%\n",
			"off", offRes.load.QPS, offRes.load.P50, offRes.load.P99, offRes.load.Max,
			100*offRes.stats.CacheHitRate)
		return
	}

	runOnce(*ckpt, cfg, spec, *reload)
}

type result struct {
	load  embrace.LoadResult
	stats embrace.ServeStats
}

func runOnce(ckpt string, cfg embrace.ServeConfig, spec embrace.LoadSpec, reload string) result {
	srv, err := embrace.Serve(ckpt, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	fabric := "in-process"
	if cfg.TCP {
		fabric = "tcp"
	}
	fmt.Printf("serving %s: ranks=%d drivers=%d partition=%s fabric=%s cache=%d replicate=%d batch=%d/%s\n",
		ckpt, cfg.Ranks, cfg.Drivers, cfg.Partition, fabric, cfg.CacheRows, cfg.Replicate, cfg.MaxBatch, cfg.BatchWindow)

	done := make(chan struct{})
	if reload != "" {
		go func() {
			defer close(done)
			time.Sleep(50 * time.Millisecond)
			if err := srv.Reload(reload); err != nil {
				log.Printf("reload: %v", err)
				return
			}
			fmt.Printf("hot-swapped %s with zero downtime\n", reload)
		}()
	} else {
		close(done)
	}

	res := srv.RunLoad(spec)
	<-done
	st := srv.Stats()

	fmt.Printf("load: %s\n", res)
	for _, dl := range res.PerDriver {
		fmt.Printf("  driver %d: req=%d err=%d qps=%.0f p50=%s p99=%s\n",
			dl.Driver, dl.Requests, dl.Errors, dl.QPS, dl.P50, dl.P99)
	}
	fmt.Printf("serve: batches=%d exchanges=%d packed=%d coalesced=%d overloaded=%d expired=%d reloads=%d\n",
		st.Batches, st.Exchanges, st.Packed, st.Coalesced, st.Overloaded, st.Expired, st.Reloads)
	fmt.Printf("cache: hits=%d misses=%d evictions=%d hit-rate=%.1f%%\n",
		st.CacheHits, st.CacheMisses, st.CacheEvictions, 100*st.CacheHitRate)
	if st.HotResident > 0 || st.HotHits > 0 {
		fmt.Printf("hot-set: resident=%d hits=%d misses=%d hit-rate=%.1f%%\n",
			st.HotResident, st.HotHits, st.HotMisses, 100*st.HotHitRate)
	}
	fmt.Printf("latency: p50=%s p95=%s p99=%s\n", st.LatencyP50, st.LatencyP95, st.LatencyP99)
	return result{load: res, stats: st}
}
