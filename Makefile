GO ?= go

# bench-comm benchmark filter; override with e.g. `make bench-comm BENCH=AllToAll`.
BENCH ?= AllReduce64MB

# chaos seed sweep offset; override with e.g. `make chaos CHAOS_SEED=20260806`.
CHAOS_SEED ?= 1

.PHONY: build test lint check race bench-comm bench-hot bench-compress bench-serve-scale chaos elastic trace-demo serve-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## lint: go vet plus embracevet, the repo's seven analyzers (tag discipline,
## determinism, lock-over-send, slice aliasing contracts, hot-path
## allocations, arena lifetimes, collective-schedule divergence). See
## DESIGN.md § Static analysis; `-json` emits the machine-readable stream.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/embracevet ./...

## check: lint the whole module and race-test everything (the Communicator's
## pooled buffers and pipelined ring segments are the code most exposed to
## data races, but the trainer and scheduler fan out goroutines too).
check: lint
	$(GO) test -race ./...

race: check

bench-comm:
	$(GO) test -run XXX -bench $(BENCH) -benchtime 5x .

## bench-hot: the steady-state hot-path step bench — an 8-rank world runs
## real lockstep training steps per strategy with allocation accounting, and
## the parsed numbers (ns/op, B/op, allocs/op) land in BENCH_hotpath.json
## for diffing across PRs. EXPERIMENTS.md § "Hot-path rebuild" tracks them.
bench-hot:
	$(GO) test -run '^$$' -bench HotPathStep -benchtime 30x -benchmem . \
		| $(GO) run ./cmd/benchjson -out BENCH_hotpath.json

## bench-compress: the wire-compression bench — the 8-rank Zipf hot-path
## workload re-runs with the embedding AlltoAll in each wire mode (raw,
## lossless delta-varint, dual-level lossy quantization) and reports bytes on
## the wire next to step time and final loss. BENCH_compress.json records the
## parsed table; EXPERIMENTS.md § "Sparse wire compression" tracks it.
bench-compress:
	$(GO) test -run '^$$' -bench CompressExchange -benchtime 30x -benchmem . \
		| $(GO) run ./cmd/benchjson -out BENCH_compress.json

## bench-serve-scale: the multi-driver serving scale bench — a 4-rank
## cluster over real TCP serves a weak-scaled closed-loop Zipf workload with
## 1, 2, and 4 ingress drivers; qps / p50 / p99 / hot-set hit rate per
## driver count land in BENCH_serve_scale.json for diffing across PRs.
## EXPERIMENTS.md § "Multi-driver serving" tracks the scaling curve.
bench-serve-scale:
	$(GO) test -run '^$$' -bench ServeScale -benchtime 5x . \
		| $(GO) run ./cmd/benchjson -out BENCH_serve_scale.json

## chaos: the deterministic fault-injection suite (DESIGN.md §8) under the
## race detector — every collective and an end-to-end training job must be
## bit-identical to the fault-free run while the chaos transport delays,
## duplicates, reorders and drops their messages. CHAOS_SEED offsets the
## seed sweep so CI shards cover disjoint fault schedules.
chaos:
	EMBRACE_CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -timeout 5m -count=1 \
		-run 'Chaos|Maskable|Crash|Fault' \
		./internal/comm ./internal/collective ./internal/trainer

## elastic: the crash-shrink-rejoin suite (DESIGN.md §13) under the race
## detector — the elastic supervisor must stitch a bit-identical trajectory
## through rank crash, world shrink, and full-size rejoin — followed by a
## CLI demo run whose per-epoch recovery-latency report lands in
## ELASTIC_recovery.json for CI to archive. CHAOS_SEED offsets the seeds.
elastic:
	EMBRACE_CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -timeout 10m -count=1 \
		-run 'Elastic|Salvage|FaultAttribution|FaultErrors|Readmit|Leave|Epoch|ColumnShard|Remap|MaskedBytes|CompressionRatio' \
		./internal/comm ./internal/collective ./internal/trainer \
		./internal/partition ./internal/checkpoint ./internal/metrics
	$(GO) run ./cmd/embrace-train -elastic -workers 4 -dim 12 -steps 9 \
		-ckpt-every 3 -rejoin -rejoin-after 2 -crash-rank 3 -crash-step 4 \
		-chaos-seed $(CHAOS_SEED) -adam=false -elastic-report ELASTIC_recovery.json

## trace-demo: trace a real 4-rank EmbRace training run and write trace.json
## (Chrome trace-event format; open in Perfetto or chrome://tracing). The
## delayed-gradient AlltoAll appears on its own background lane, overlapping
## the next step's compute — §4.2.2 measured rather than simulated.
trace-demo:
	$(GO) run ./cmd/embrace-bench -traceout trace.json

## serve-demo: train a checkpoint, boot a 4-rank sharded inference
## deployment from it, and run the cache-on vs cache-off Zipf comparison
## (DESIGN.md §10). Cache-on must win p50 — the hot-row LRU turns the Zipf
## head into front-end-local reads.
serve-demo:
	$(GO) run ./cmd/embrace-train -steps 20 -workers 4 -vocab 1000 -dim 16 \
		-hidden 16 -checkpoint serve-demo.ckpt
	$(GO) run ./cmd/embrace-serve -checkpoint serve-demo.ckpt -ranks 4 \
		-cache 512 -clients 8 -requests 500 -zipf-s 1.6 -compare
	rm -f serve-demo.ckpt
