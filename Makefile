GO ?= go

.PHONY: build test check race bench-comm

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## check: vet the whole module and race-test the communication layers
## (the Communicator's pooled buffers and pipelined ring segments are the
## code most exposed to data races).
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/collective/... ./internal/comm/...

race: check

bench-comm:
	$(GO) test -run XXX -bench AllReduce64MB -benchtime 5x .
