GO ?= go

# bench-comm benchmark filter; override with e.g. `make bench-comm BENCH=AllToAll`.
BENCH ?= AllReduce64MB

.PHONY: build test lint check race bench-comm

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## lint: go vet plus embracevet, the repo's own analyzers (tag discipline,
## determinism, lock-over-send, slice aliasing contracts). See DESIGN.md
## § Static analysis.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/embracevet ./...

## check: lint the whole module and race-test everything (the Communicator's
## pooled buffers and pipelined ring segments are the code most exposed to
## data races, but the trainer and scheduler fan out goroutines too).
check: lint
	$(GO) test -race ./...

race: check

bench-comm:
	$(GO) test -run XXX -bench $(BENCH) -benchtime 5x .
