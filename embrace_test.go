package embrace_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"embrace"
)

func TestStrategiesAndModels(t *testing.T) {
	if len(embrace.Strategies()) != 5 {
		t.Fatalf("want 5 strategies, got %d", len(embrace.Strategies()))
	}
	models := embrace.Models()
	want := []string{"LM", "GNMT-8", "Transformer", "BERT-base"}
	if len(models) != len(want) {
		t.Fatalf("models = %v", models)
	}
	for i, m := range models {
		if m != want[i] {
			t.Fatalf("models[%d] = %s, want %s", i, m, want[i])
		}
	}
}

func TestSimulateBasics(t *testing.T) {
	res, err := embrace.Simulate(embrace.SimJob{
		Model: "GNMT-8", GPU: embrace.RTX3090, GPUs: 8,
		Strategy: embrace.EmbRace, Sched: embrace.Sched2D,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StepSeconds <= 0 || res.TokensPerSec <= 0 || res.StallSeconds < 0 {
		t.Fatalf("bad result %+v", res)
	}
	if res.StepSeconds < res.ComputeSeconds {
		t.Fatal("step cannot be shorter than compute")
	}
}

func TestSimulateValidation(t *testing.T) {
	bad := []embrace.SimJob{
		{Model: "nope", GPU: embrace.RTX3090, GPUs: 8, Strategy: embrace.EmbRace},
		{Model: "LM", GPU: "GTX1080", GPUs: 8, Strategy: embrace.EmbRace},
		{Model: "LM", GPU: embrace.RTX3090, GPUs: 8, Strategy: "carrier-pigeon"},
		{Model: "LM", GPU: embrace.RTX3090, GPUs: 8, Strategy: embrace.EmbRace, Sched: "3d"},
		{Model: "LM", GPU: embrace.RTX3090, GPUs: 0, Strategy: embrace.EmbRace},
	}
	for i, job := range bad {
		if _, err := embrace.Simulate(job); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestSimulateEmbRaceWinsHeadline(t *testing.T) {
	// The headline claim through the public API: EmbRace beats the best
	// baseline on LM at 16 RTX2080s by roughly 2x.
	var best, emb float64
	for _, s := range embrace.Strategies() {
		sched := embrace.SchedNone
		if s == embrace.EmbRace {
			sched = embrace.Sched2D
		}
		res, err := embrace.Simulate(embrace.SimJob{
			Model: "LM", GPU: embrace.RTX2080, GPUs: 16, Strategy: s, Sched: sched,
		})
		if err != nil {
			t.Fatal(err)
		}
		if s == embrace.EmbRace {
			emb = res.TokensPerSec
		} else if res.TokensPerSec > best {
			best = res.TokensPerSec
		}
	}
	if ratio := emb / best; ratio < 1.8 || ratio > 2.8 {
		t.Fatalf("LM@16xRTX2080 speedup %.2fx, want ~2x (paper: 1.99-2.41x)", ratio)
	}
}

func TestTrainAllStrategiesAgree(t *testing.T) {
	results := map[embrace.Strategy]*embrace.TrainResult{}
	for _, s := range embrace.Strategies() {
		cfg := embrace.TrainConfig{
			Strategy: s,
			Workers:  4,
			Steps:    6,
			Vocab:    60,
			EmbDim:   8,
			Hidden:   8,
			Adam:     true,
			Seed:     5,
		}
		if s == embrace.EmbRace {
			cfg.Sched = embrace.Sched2D
		}
		res, err := embrace.Train(cfg)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if len(res.Losses) != 6 || res.FinalPPL <= 1 {
			t.Fatalf("%s: bad result %+v", s, res)
		}
		results[s] = res
	}
	ref := results[embrace.HorovodAllGather]
	for s, res := range results {
		for i := range ref.Losses {
			d := res.Losses[i] - ref.Losses[i]
			if d > 1e-4 || d < -1e-4 {
				t.Fatalf("%s diverged from AllGather at step %d: %v vs %v", s, i, res.Losses[i], ref.Losses[i])
			}
		}
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := embrace.Train(embrace.TrainConfig{Strategy: "nope", Workers: 2, Steps: 2}); err == nil {
		t.Fatal("expected unknown-strategy error")
	}
	if _, err := embrace.Train(embrace.TrainConfig{Workers: 3, Steps: 2, EmbDim: 8}); err == nil {
		t.Fatal("expected divisibility error")
	}
}

func TestRunExperimentThroughFacade(t *testing.T) {
	ids := embrace.ExperimentIDs()
	if len(ids) != 16 {
		t.Fatalf("want 16 experiments, got %v", ids)
	}
	title, err := embrace.ExperimentTitle("table2")
	if err != nil || !strings.Contains(title, "Table 2") {
		t.Fatalf("title %q err %v", title, err)
	}
	var buf bytes.Buffer
	if err := embrace.RunExperiment("table1", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LM") || !strings.Contains(buf.String(), "97.2") {
		t.Fatalf("table1 output missing LM row: %s", buf.String())
	}
	if err := embrace.RunExperiment("nope", &buf); err == nil {
		t.Fatal("expected unknown experiment error")
	}
}

func TestTrainSeqThroughFacade(t *testing.T) {
	res, err := embrace.TrainSeq(embrace.SeqTrainConfig{
		Workers:  2,
		Steps:    8,
		Vertical: true,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != 8 || res.FinalPPL <= 1 || res.CommBytes <= 0 {
		t.Fatalf("bad result %+v", res)
	}
	if res.Losses[7] >= res.Losses[0] {
		t.Fatalf("seq loss did not decrease: %v -> %v", res.Losses[0], res.Losses[7])
	}
	if _, err := embrace.TrainSeq(embrace.SeqTrainConfig{Workers: 0, Steps: 1}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestEstimateCommCost(t *testing.T) {
	c, err := embrace.EstimateCommCost(0.1, 252.5, 16, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	// The §4.1.2 ordering for sparse tensors at scale.
	if !(c.AllToAll < c.PS && c.PS < c.AllGather && c.AllGather < c.AllReduce) {
		t.Fatalf("cost ordering wrong: %+v", c)
	}
	bad := []struct {
		a, m float64
		w, n int
		g    float64
	}{
		{-0.1, 100, 4, 1, 100},
		{1.5, 100, 4, 1, 100},
		{0.5, 0, 4, 1, 100},
		{0.5, 100, 0, 1, 100},
		{0.5, 100, 4, 0, 100},
		{0.5, 100, 4, 1, 0},
	}
	for i, b := range bad {
		if _, err := embrace.EstimateCommCost(b.a, b.m, b.w, b.n, b.g); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	base := embrace.TrainConfig{
		Strategy: embrace.EmbRace,
		Sched:    embrace.Sched2D,
		Workers:  2,
		Steps:    8,
		Vocab:    50,
		EmbDim:   8,
		Hidden:   8,
		Adam:     false, // SGD: stateless, so resume is exact
		LR:       0.05,
		Seed:     31,
	}
	straight, err := embrace.Train(base)
	if err != nil {
		t.Fatal(err)
	}

	first := base
	first.Steps = 5
	first.CheckpointPath = path
	if _, err := embrace.Train(first); err != nil {
		t.Fatal(err)
	}
	second := base
	second.Steps = 3
	second.ResumeFrom = path
	resumed, err := embrace.Train(second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if resumed.Losses[i] != straight.Losses[5+i] {
			t.Fatalf("resumed loss[%d] %v != straight loss[%d] %v",
				i, resumed.Losses[i], 5+i, straight.Losses[5+i])
		}
	}
	if _, err := embrace.Train(embrace.TrainConfig{
		Strategy: embrace.EmbRace, Workers: 2, Steps: 1, ResumeFrom: filepath.Join(dir, "missing"),
	}); err == nil {
		t.Fatal("expected missing-checkpoint error")
	}
}
