// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) from this repository's substrates. Each experiment has a
// Run function returning structured results plus a renderer that prints
// paper-style rows, and the registry maps experiment ids (table1, fig7, ...)
// to runners for the embrace-bench CLI.
//
// Absolute numbers come from simulators rather than the authors' testbed, so
// EXPERIMENTS.md compares shapes — orderings, ratios, crossovers — against
// the published values.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner executes one experiment and writes its rendered output.
type Runner func(w io.Writer) error

// registry maps experiment ids to runners.
var registry = map[string]struct {
	Title string
	Run   Runner
}{
	"table1": {"Table 1: model and embedding sizes", RenderTable1},
	"table2": {"Table 2: analytic communication costs", RenderTable2},
	"table3": {"Table 3: vertical-scheduling gradient sizes", RenderTable3},
	"fig1":   {"Figure 1: sparse data movement, AllReduce vs AllGather", RenderFigure1},
	"fig4":   {"Figure 4: embedding communication vs sparsity", RenderFigure4},
	"fig5":   {"Figure 5: module dependency graph under hybrid communication", RenderFigure5},
	"fig6":   {"Figure 6: execution timelines per scheduling mode", RenderFigure6},
	"fig7":   {"Figure 7: end-to-end training throughput", RenderFigure7},
	"fig8":   {"Figure 8: computation stall, normalized", RenderFigure8},
	"fig9":   {"Figure 9: ablation of EmbRace optimizations", RenderFigure9},
	"fig10":  {"Figure 10: scaling efficiency", RenderFigure10},
	"fig11":  {"Figure 11: convergence, EmbRace vs AllGather", RenderFigure11},
	"partition": {
		"Ablation: row-wise vs column-wise embedding partitioning (§4.1.1)",
		RenderPartitionAblation,
	},
	"giant": {
		"Extension: giant-model (LM-XL) scale sweep (conclusion)",
		RenderGiant,
	},
	"bandwidth": {
		"Extension: inter-node bandwidth sensitivity",
		RenderBandwidth,
	},
	"batch": {
		"Extension: batch-size sensitivity (§5.3 mechanism)",
		RenderBatch,
	},
}

// IDs returns the experiment ids in a stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns the human title of an experiment id.
func Title(id string) (string, error) {
	e, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return e.Title, nil
}

// Run executes the experiment with the given id, writing rendered output.
func Run(id string, w io.Writer) error {
	e, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	fmt.Fprintf(w, "=== %s ===\n", e.Title)
	return e.Run(w)
}

// RunAll executes every experiment in id order.
func RunAll(w io.Writer) error {
	for _, id := range IDs() {
		if err := Run(id, w); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
