package experiments

import (
	"fmt"
	"io"

	"embrace/internal/modelzoo"
	"embrace/internal/simnet"
)

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Model        string
	ModelMB      float64
	EmbeddingMB  float64
	RatioPercent float64
}

// RunTable1 computes model/embedding sizes from the model zoo.
func RunTable1() []Table1Row {
	models := modelzoo.All()
	rows := make([]Table1Row, 0, len(models))
	for _, m := range models {
		rows = append(rows, Table1Row{
			Model:        m.Name,
			ModelMB:      m.TotalBytes() / 1e6,
			EmbeddingMB:  m.EmbBytesTotal() / 1e6,
			RatioPercent: m.EmbRatio() * 100,
		})
	}
	return rows
}

// RenderTable1 prints Table 1 in the paper's layout.
func RenderTable1(w io.Writer) error {
	fmt.Fprintf(w, "%-12s %12s %14s %8s\n", "Model", "Model Size", "Embedding Size", "Ratio")
	for _, r := range RunTable1() {
		fmt.Fprintf(w, "%-12s %10.1fMB %12.1fMB %7.2f%%\n", r.Model, r.ModelMB, r.EmbeddingMB, r.RatioPercent)
	}
	return nil
}

// Table2Row pairs a communication approach with its analytic overhead
// formula and a numeric evaluation at a reference configuration.
type Table2Row struct {
	Approach string
	Formula  string
	// Seconds at the reference point (α=0.1, M=252.5 MB, N=16, n=4,
	// B=12.5 GB/s, β=15 µs) — the GNMT-8 embedding on the 16-GPU cluster.
	Seconds float64
}

// RunTable2 evaluates the Table-2 cost formulas at the reference point.
func RunTable2() []Table2Row {
	const (
		alpha = 0.1
		m     = 252.5e6
		n     = 16
		nodes = 4
		b     = 12.5e9
		beta  = 15e-6
	)
	return []Table2Row{
		{"AlltoAll", "2(N-1)(aM/(N*B)+b)", simnet.AllToAllCost(alpha, m, n, b, beta)},
		{"AllReduce", "2(N-1)(M/(N*B)+b)", simnet.AllReduceCost(m, n, b, beta)},
		{"PS", "2N(aM/(S*B)+b), S=n", simnet.PSCost(alpha, m, n, nodes, b, beta)},
		{"AllGather", "(N-1)(aM/B+b)", simnet.AllGatherCost(alpha, m, n, b, beta)},
	}
}

// RenderTable2 prints the formulas and their reference evaluations.
func RenderTable2(w io.Writer) error {
	fmt.Fprintf(w, "%-10s %-24s %14s\n", "Approach", "Overhead", "@reference")
	for _, r := range RunTable2() {
		fmt.Fprintf(w, "%-10s %-24s %12.2fms\n", r.Approach, r.Formula, r.Seconds*1e3)
	}
	fmt.Fprintln(w, "reference: a=0.1, M=252.5MB, N=16, n=S=4, B=12.5GB/s, b=15us")
	return nil
}

// Table3Row is one row of the paper's Table 3: average sparse embedding
// gradient sizes (MB) through Vertical Sparse Scheduling.
type Table3Row struct {
	Model                               string
	OriginalMB, CoalescedMB, PriorityMB float64
	SparsityPercent                     float64
}

// RunTable3 measures the Algorithm-1 gradient statistics of every model at
// the RTX3090 batch sizes (the batch sizes Table 3 quotes).
func RunTable3() ([]Table3Row, error) {
	models := modelzoo.All()
	rows := make([]Table3Row, 0, len(models))
	for _, m := range models {
		st, err := m.MeasureGradStats(modelzoo.RTX3090, 20, 42)
		if err != nil {
			return nil, err
		}
		k := float64(m.EmbTables)
		rows = append(rows, Table3Row{
			Model:           m.Name,
			OriginalMB:      st.RawBytes * k / 1e6,
			CoalescedMB:     st.CoalescedBytes * k / 1e6,
			PriorityMB:      st.PriorBytes * k / 1e6,
			SparsityPercent: (1 - st.Alpha) * 100,
		})
	}
	return rows, nil
}

// RenderTable3 prints Table 3 in the paper's layout, plus the §4.1.2
// per-model sparsity the same workload produces.
func RenderTable3(w io.Writer) error {
	rows, err := RunTable3()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %10s %11s %12s %10s\n", "Model", "Original", "Coalesced", "Prioritized", "Sparsity")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8.1fMB %9.1fMB %10.1fMB %9.1f%%\n",
			r.Model, r.OriginalMB, r.CoalescedMB, r.PriorityMB, r.SparsityPercent)
	}
	return nil
}
