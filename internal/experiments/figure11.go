package experiments

import (
	"fmt"
	"io"
	"math"

	"embrace/internal/data"
	"embrace/internal/nn"
	"embrace/internal/strategies"
	"embrace/internal/trainer"
)

// Figure11Point is one sampled point of a convergence curve: panel (a)
// tracks perplexity, panel (b) top-1 next-token accuracy (the repo's
// stand-in for the paper's BLEU score).
type Figure11Point struct {
	Step       int
	EmbRacePPL float64
	GatherPPL  float64
	EmbRaceAcc float64
	GatherAcc  float64
}

// Figure11Result holds the convergence comparison of §5.7: EmbRace with
// full 2D scheduling and the modified Adam vs Horovod AllGather with plain
// Adam, trained with real arithmetic on identical data.
type Figure11Result struct {
	Steps      int
	Workers    int
	Points     []Figure11Point
	FinalDelta float64 // |EmbRace - AllGather| final PPL gap
	MaxDelta   float64 // largest PPL gap along the curves
}

// figure11Job builds the real-training job of the convergence experiment: a
// down-scaled LM-like task (Zipf next-token prediction through a pooled
// embedding) small enough to train in seconds yet exercising every code
// path of the §5.7 claim.
func figure11Job(strategy strategies.Name, sched strategies.SchedMode, steps int) trainer.Job {
	return trainer.Job{
		Strategy: strategy,
		Workers:  4,
		Steps:    steps,
		Window:   4,
		Model: strategies.Config{
			Seed:      2024,
			Vocab:     600,
			EmbDim:    16,
			Hidden:    24,
			Optimizer: strategies.OptAdam,
			LR:        0.01,
			Sched:     sched,
			PSServers: 2,
		},
		Data: data.Config{
			VocabSize:      600,
			BatchSentences: 24,
			MaxSeqLen:      8,
			MinSeqLen:      6,
			ZipfS:          1.5,
			ZipfV:          4,
		},
		DataSeed: 99,
	}
}

// RunFigure11 trains both systems for `steps` iterations and samples PPL
// every `every` steps.
func RunFigure11(steps, every int) (*Figure11Result, error) {
	if steps < every || every < 1 {
		return nil, fmt.Errorf("experiments: bad sampling steps=%d every=%d", steps, every)
	}
	emb, err := trainer.Run(figure11Job(strategies.EmbRace, strategies.Sched2D, steps))
	if err != nil {
		return nil, fmt.Errorf("embrace run: %w", err)
	}
	gather, err := trainer.Run(figure11Job(strategies.HorovodAllGather, strategies.SchedNone, steps))
	if err != nil {
		return nil, fmt.Errorf("allgather run: %w", err)
	}
	res := &Figure11Result{Steps: steps, Workers: 4}
	for s := every - 1; s < steps; s += every {
		p := Figure11Point{
			Step:       s + 1,
			EmbRacePPL: nn.Perplexity(emb.Losses[s]),
			GatherPPL:  nn.Perplexity(gather.Losses[s]),
			EmbRaceAcc: emb.Accuracies[s],
			GatherAcc:  gather.Accuracies[s],
		}
		res.Points = append(res.Points, p)
		if d := math.Abs(p.EmbRacePPL - p.GatherPPL); d > res.MaxDelta {
			res.MaxDelta = d
		}
	}
	last := res.Points[len(res.Points)-1]
	res.FinalDelta = math.Abs(last.EmbRacePPL - last.GatherPPL)
	return res, nil
}

// RenderFigure11 prints the PPL-vs-steps curves side by side.
func RenderFigure11(w io.Writer) error {
	res, err := RunFigure11(60, 5)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "(a) PPL and (b) top-1 accuracy vs steps, %d workers, real training\n", res.Workers)
	fmt.Fprintf(w, "(modified Adam vs plain Adam):\n")
	fmt.Fprintf(w, "  %6s %12s %12s %12s %12s\n", "step", "EmbRace-PPL", "Gather-PPL", "EmbRace-acc", "Gather-acc")
	for _, p := range res.Points {
		fmt.Fprintf(w, "  %6d %12.2f %12.2f %12.3f %12.3f\n",
			p.Step, p.EmbRacePPL, p.GatherPPL, p.EmbRaceAcc, p.GatherAcc)
	}
	fmt.Fprintf(w, "final PPL gap %.4f, max gap along curve %.4f\n", res.FinalDelta, res.MaxDelta)
	return nil
}
