package experiments

import (
	"fmt"
	"io"

	"embrace/internal/modelzoo"
	"embrace/internal/perfsim"
)

// GiantRow is one scale point of the giant-model extension experiment.
type GiantRow struct {
	GPUs          int
	BestBaseline  perfsim.Strategy
	BaselineStep  float64
	EmbRaceStep   float64
	SpeedupVsBest float64
}

// RunGiant extrapolates the end-to-end comparison to the LM-XL extension
// model (12.4 GB of embeddings, conclusion's "giant NLP models") on RTX3090
// clusters of 16, 32 and 64 GPUs. Every baseline must host the full
// embedding replicas in CPU memory; EmbRace's 1/N column shards stay on
// device, so its advantage should grow with scale.
func RunGiant() ([]GiantRow, error) {
	m := modelzoo.LMXL()
	var out []GiantRow
	for _, gpus := range []int{16, 32, 64} {
		st, err := m.MeasureGradStats(modelzoo.RTX3090, 8, 42)
		if err != nil {
			return nil, err
		}
		cl, err := modelzoo.NewCluster(modelzoo.RTX3090, gpus)
		if err != nil {
			return nil, err
		}
		est, err := cl.Estimator()
		if err != nil {
			return nil, err
		}
		row := GiantRow{GPUs: gpus, BaselineStep: -1}
		for _, strat := range []perfsim.Strategy{perfsim.StratBytePS, perfsim.StratAllReduce, perfsim.StratAllGather, perfsim.StratParallax} {
			met, _, err := perfsim.RunJob(m.PerfSpec(modelzoo.RTX3090, st, false), strat, perfsim.SchedDefault, est, 6)
			if err != nil {
				return nil, err
			}
			if row.BaselineStep < 0 || met.StepTime < row.BaselineStep {
				row.BaselineStep = met.StepTime
				row.BestBaseline = strat
			}
		}
		met, _, err := perfsim.RunJob(m.PerfSpec(modelzoo.RTX3090, st, true), perfsim.StratEmbRace, perfsim.Sched2D, est, 6)
		if err != nil {
			return nil, err
		}
		row.EmbRaceStep = met.StepTime
		row.SpeedupVsBest = row.BaselineStep / row.EmbRaceStep
		out = append(out, row)
	}
	return out, nil
}

// RenderGiant prints the giant-model scale sweep.
func RenderGiant(w io.Writer) error {
	rows, err := RunGiant()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "LM-XL (12.4 GB embeddings) on RTX3090 clusters — conclusion's giant-model claim:")
	for _, r := range rows {
		fmt.Fprintf(w, "  %2d GPUs: EmbRace %6.1fms vs best baseline (%s) %7.1fms -> %.2fx\n",
			r.GPUs, r.EmbRaceStep*1e3, r.BestBaseline, r.BaselineStep*1e3, r.SpeedupVsBest)
	}
	return nil
}
