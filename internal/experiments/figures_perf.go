package experiments

import (
	"fmt"
	"io"

	"embrace/internal/modelzoo"
	"embrace/internal/perfsim"
)

// strategyOrder is the presentation order of Figure 7's bars.
var strategyOrder = []perfsim.Strategy{
	perfsim.StratBytePS,
	perfsim.StratAllReduce,
	perfsim.StratAllGather,
	perfsim.StratParallax,
	perfsim.StratEmbRace,
}

// runStrategy simulates one (model, cluster, strategy) cell and returns its
// steady-state metrics. EmbRace runs with full 2D scheduling unless a mode
// override is given.
func runStrategy(m *modelzoo.Model, gpu modelzoo.GPUKind, gpus int, strat perfsim.Strategy, mode perfsim.SchedMode) (perfsim.StepMetrics, error) {
	st, err := m.MeasureGradStats(gpu, 10, 42)
	if err != nil {
		return perfsim.StepMetrics{}, err
	}
	cl, err := modelzoo.NewCluster(gpu, gpus)
	if err != nil {
		return perfsim.StepMetrics{}, err
	}
	est, err := cl.Estimator()
	if err != nil {
		return perfsim.StepMetrics{}, err
	}
	spec := m.PerfSpec(gpu, st, strat == perfsim.StratEmbRace)
	met, _, err := perfsim.RunJob(spec, strat, mode, est, 6)
	return met, err
}

// tokensPerStep returns the non-pad training tokens one step consumes
// across all workers — the numerator of the paper's tokens/sec metric.
func tokensPerStep(m *modelzoo.Model, gpu modelzoo.GPUKind, gpus int) (float64, error) {
	st, err := m.MeasureGradStats(gpu, 10, 42)
	if err != nil {
		return 0, err
	}
	// RawRows counts tokens including padding; the non-pad share tracks
	// the average sentence fill. Using raw rows keeps the metric
	// proportional to true tokens/sec, which is all the normalized
	// figures need.
	return st.RawRows * float64(gpus), nil
}

// Figure7Cell is one bar of Figure 7.
type Figure7Cell struct {
	Strategy      perfsim.Strategy
	StepSeconds   float64
	TokensPerSec  float64
	SpeedupVsBest float64 // filled on the EmbRace cell: EmbRace vs best baseline
}

// Figure7Group is one (model, cluster, GPU count) cluster of bars.
type Figure7Group struct {
	Model string
	GPU   modelzoo.GPUKind
	GPUs  int
	Cells []Figure7Cell
}

// RunFigure7 simulates the full end-to-end grid: 4 models x 2 clusters x
// {4, 8, 16} GPUs x 5 strategies.
func RunFigure7() ([]Figure7Group, error) {
	var out []Figure7Group
	for _, gpu := range []modelzoo.GPUKind{modelzoo.RTX3090, modelzoo.RTX2080} {
		for _, m := range modelzoo.All() {
			for _, gpus := range []int{4, 8, 16} {
				g := Figure7Group{Model: m.Name, GPU: gpu, GPUs: gpus}
				toks, err := tokensPerStep(m, gpu, gpus)
				if err != nil {
					return nil, err
				}
				bestBaseline := 0.0
				var embrace float64
				for _, strat := range strategyOrder {
					mode := perfsim.SchedDefault
					if strat == perfsim.StratEmbRace {
						mode = perfsim.Sched2D
					}
					met, err := runStrategy(m, gpu, gpus, strat, mode)
					if err != nil {
						return nil, err
					}
					tput := toks / met.StepTime
					g.Cells = append(g.Cells, Figure7Cell{
						Strategy:     strat,
						StepSeconds:  met.StepTime,
						TokensPerSec: tput,
					})
					if strat == perfsim.StratEmbRace {
						embrace = tput
					} else if tput > bestBaseline {
						bestBaseline = tput
					}
				}
				g.Cells[len(g.Cells)-1].SpeedupVsBest = embrace / bestBaseline
				out = append(out, g)
			}
		}
	}
	return out, nil
}

// RenderFigure7 prints the throughput grid with EmbRace speedups.
func RenderFigure7(w io.Writer) error {
	groups, err := RunFigure7()
	if err != nil {
		return err
	}
	lastHeader := ""
	for _, g := range groups {
		header := fmt.Sprintf("%s on %s", g.Model, g.GPU)
		if header != lastHeader {
			fmt.Fprintf(w, "%s (tokens/sec):\n", header)
			lastHeader = header
		}
		fmt.Fprintf(w, "  %2d GPUs:", g.GPUs)
		for _, c := range g.Cells {
			fmt.Fprintf(w, "  %s=%.0f", shortName(c.Strategy), c.TokensPerSec)
		}
		fmt.Fprintf(w, "  | EmbRace %.2fx over best baseline\n", g.Cells[len(g.Cells)-1].SpeedupVsBest)
	}
	return nil
}

func shortName(s perfsim.Strategy) string {
	switch s {
	case perfsim.StratBytePS:
		return "BytePS"
	case perfsim.StratAllReduce:
		return "AllReduce"
	case perfsim.StratAllGather:
		return "AllGather"
	case perfsim.StratParallax:
		return "Parallax"
	case perfsim.StratEmbRace:
		return "EmbRace"
	}
	return "?"
}

// Figure8Row is one model's normalized computation-stall comparison on a
// 16-GPU cluster.
type Figure8Row struct {
	Model string
	GPU   modelzoo.GPUKind
	// StallVsEmbRace maps strategy -> stall normalized by EmbRace's stall
	// (EmbRace itself is 1.0).
	StallVsEmbRace map[perfsim.Strategy]float64
	EmbRaceStallMS float64
}

// RunFigure8 measures Computation Stall (§5.4) for every strategy on both
// 16-GPU clusters and normalizes by EmbRace.
func RunFigure8() ([]Figure8Row, error) {
	var out []Figure8Row
	for _, gpu := range []modelzoo.GPUKind{modelzoo.RTX3090, modelzoo.RTX2080} {
		for _, m := range modelzoo.All() {
			row := Figure8Row{Model: m.Name, GPU: gpu, StallVsEmbRace: map[perfsim.Strategy]float64{}}
			embrace, err := runStrategy(m, gpu, 16, perfsim.StratEmbRace, perfsim.Sched2D)
			if err != nil {
				return nil, err
			}
			row.EmbRaceStallMS = embrace.Stall * 1e3
			for _, strat := range strategyOrder {
				if strat == perfsim.StratEmbRace {
					row.StallVsEmbRace[strat] = 1
					continue
				}
				met, err := runStrategy(m, gpu, 16, strat, perfsim.SchedDefault)
				if err != nil {
					return nil, err
				}
				row.StallVsEmbRace[strat] = met.Stall / embrace.Stall
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// RenderFigure8 prints normalized stalls per cluster.
func RenderFigure8(w io.Writer) error {
	rows, err := RunFigure8()
	if err != nil {
		return err
	}
	last := modelzoo.GPUKind(-1)
	for _, r := range rows {
		if r.GPU != last {
			fmt.Fprintf(w, "16x %s — computation stall normalized by EmbRace:\n", r.GPU)
			last = r.GPU
		}
		fmt.Fprintf(w, "  %-12s", r.Model)
		for _, strat := range strategyOrder {
			fmt.Fprintf(w, " %s=%.2f", shortName(strat), r.StallVsEmbRace[strat])
		}
		fmt.Fprintf(w, "  (EmbRace stall %.1fms)\n", r.EmbRaceStallMS)
	}
	return nil
}

// Figure9Row is one model's ablation bars, normalized by Horovod AllGather.
type Figure9Row struct {
	Model string
	GPUs  int
	// Normalized training speed (tokens/sec over AllGather's).
	AllGather, AllReduce, NoSched, Horizontal, TwoD float64
}

// RunFigure9 runs the §5.5 ablation on RTX3090 clusters of the given size:
// hybrid communication alone (EmbRace w/o scheduling), plus horizontal, plus
// full 2D — all normalized by Horovod AllGather.
func RunFigure9(gpus int) ([]Figure9Row, error) {
	var out []Figure9Row
	for _, m := range modelzoo.All() {
		ag, err := runStrategy(m, modelzoo.RTX3090, gpus, perfsim.StratAllGather, perfsim.SchedDefault)
		if err != nil {
			return nil, err
		}
		ar, err := runStrategy(m, modelzoo.RTX3090, gpus, perfsim.StratAllReduce, perfsim.SchedDefault)
		if err != nil {
			return nil, err
		}
		noSched, err := runStrategy(m, modelzoo.RTX3090, gpus, perfsim.StratEmbRace, perfsim.SchedDefault)
		if err != nil {
			return nil, err
		}
		hor, err := runStrategy(m, modelzoo.RTX3090, gpus, perfsim.StratEmbRace, perfsim.SchedHorizontal)
		if err != nil {
			return nil, err
		}
		twoD, err := runStrategy(m, modelzoo.RTX3090, gpus, perfsim.StratEmbRace, perfsim.Sched2D)
		if err != nil {
			return nil, err
		}
		base := 1 / ag.StepTime
		out = append(out, Figure9Row{
			Model:      m.Name,
			GPUs:       gpus,
			AllGather:  1,
			AllReduce:  (1 / ar.StepTime) / base,
			NoSched:    (1 / noSched.StepTime) / base,
			Horizontal: (1 / hor.StepTime) / base,
			TwoD:       (1 / twoD.StepTime) / base,
		})
	}
	return out, nil
}

// RenderFigure9 prints the ablation for 16 and 4 GPUs.
func RenderFigure9(w io.Writer) error {
	for _, gpus := range []int{16, 4} {
		rows, err := RunFigure9(gpus)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d RTX3090 GPUs — training speed normalized by Horovod AllGather:\n", gpus)
		fmt.Fprintf(w, "  %-12s %9s %9s %12s %11s %8s\n",
			"Model", "AllGather", "AllReduce", "EmbRace-w/o", "+Horizontal", "+2D")
		for _, r := range rows {
			fmt.Fprintf(w, "  %-12s %9.2f %9.2f %12.2f %11.2f %8.2f\n",
				r.Model, r.AllGather, r.AllReduce, r.NoSched, r.Horizontal, r.TwoD)
		}
	}
	return nil
}

// Figure10Row reports scaling from 4 to `GPUs` RTX3090s for EmbRace and the
// best-scaling baseline, against ideal linear scaling.
type Figure10Row struct {
	Model    string
	GPUs     int
	Baseline perfsim.Strategy
	// Throughputs normalized by the same strategy's 4-GPU throughput.
	EmbRaceScale, BaselineScale, Ideal float64
}

// RunFigure10 reproduces the §5.6 scaling comparison: Horovod AllReduce is
// the scalability competitor for GNMT-8/Transformer/BERT, Parallax for LM.
func RunFigure10() ([]Figure10Row, error) {
	var out []Figure10Row
	for _, m := range modelzoo.All() {
		baseline := perfsim.StratAllReduce
		if m.Name == "LM" {
			baseline = perfsim.StratParallax
		}
		base4E, err := runStrategy(m, modelzoo.RTX3090, 4, perfsim.StratEmbRace, perfsim.Sched2D)
		if err != nil {
			return nil, err
		}
		base4B, err := runStrategy(m, modelzoo.RTX3090, 4, baseline, perfsim.SchedDefault)
		if err != nil {
			return nil, err
		}
		for _, gpus := range []int{8, 16} {
			e, err := runStrategy(m, modelzoo.RTX3090, gpus, perfsim.StratEmbRace, perfsim.Sched2D)
			if err != nil {
				return nil, err
			}
			b, err := runStrategy(m, modelzoo.RTX3090, gpus, baseline, perfsim.SchedDefault)
			if err != nil {
				return nil, err
			}
			out = append(out, Figure10Row{
				Model:         m.Name,
				GPUs:          gpus,
				Baseline:      baseline,
				EmbRaceScale:  base4E.StepTime / e.StepTime * float64(gpus) / 4,
				BaselineScale: base4B.StepTime / b.StepTime * float64(gpus) / 4,
				Ideal:         float64(gpus) / 4,
			})
		}
	}
	return out, nil
}

// RenderFigure10 prints the scaling table.
func RenderFigure10(w io.Writer) error {
	rows, err := RunFigure10()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "RTX3090 scaling vs ideal (throughput relative to own 4-GPU run):\n")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s %2d GPUs: EmbRace %.2fx, %s %.2fx, ideal %.1fx\n",
			r.Model, r.GPUs, r.EmbRaceScale, shortName(r.Baseline), r.BaselineScale, r.Ideal)
	}
	return nil
}
