package experiments

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"embrace/internal/modelzoo"
	"embrace/internal/perfsim"
)

func TestRegistryRunsEverything(t *testing.T) {
	ids := IDs()
	if len(ids) != 16 {
		t.Fatalf("expected 16 experiments, have %d: %v", len(ids), ids)
	}
	for _, id := range ids {
		if _, err := Title(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Title("nope"); err == nil {
		t.Fatal("expected unknown-id error")
	}
	if err := Run("nope", io.Discard); err == nil {
		t.Fatal("expected unknown-id error")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := RunTable1()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Model != "LM" || rows[0].RatioPercent < 97 || rows[0].RatioPercent > 98 {
		t.Fatalf("LM row %+v", rows[0])
	}
	// Ratio ordering of the paper: LM > GNMT-8 > Transformer > BERT-base.
	for i := 1; i < len(rows); i++ {
		if rows[i].RatioPercent >= rows[i-1].RatioPercent {
			t.Fatalf("ratio ordering broken at %s", rows[i].Model)
		}
	}
}

func TestTable2Ordering(t *testing.T) {
	rows := RunTable2()
	byName := map[string]float64{}
	for _, r := range rows {
		if r.Seconds <= 0 {
			t.Fatalf("%s: non-positive cost", r.Approach)
		}
		byName[r.Approach] = r.Seconds
	}
	// At the sparse reference point AlltoAll must be cheapest and dense
	// AllReduce the most expensive of the collective family (§4.1.2).
	if !(byName["AlltoAll"] < byName["PS"] && byName["AlltoAll"] < byName["AllGather"] && byName["AlltoAll"] < byName["AllReduce"]) {
		t.Fatalf("AlltoAll must win at the reference point: %v", byName)
	}
}

func TestTable3ReductionsHold(t *testing.T) {
	rows, err := RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !(r.PriorityMB < r.CoalescedMB && r.CoalescedMB < r.OriginalMB) {
			t.Fatalf("%s: reductions not monotone: %+v", r.Model, r)
		}
		if r.SparsityPercent <= 0 || r.SparsityPercent >= 100 {
			t.Fatalf("%s: sparsity %v", r.Model, r.SparsityPercent)
		}
	}
}

func TestFigure1VolumesAndAgreement(t *testing.T) {
	r, err := RunFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if !r.ResultsAgree {
		t.Fatal("AllReduce and AllGather disagreed on the sum")
	}
	if r.DenseZerosTransmited <= 0 {
		t.Fatal("dense aggregation should move zeros")
	}
	for _, b := range r.SparseBytesPerRank {
		if b >= r.DenseBytesPerRank {
			t.Fatal("sparse payload should undercut dense payload in the example")
		}
	}
}

func TestFigure4Crossovers(t *testing.T) {
	topoA, topoB := Figure4Topologies()

	// (a) 2 nodes x 4 GPUs: the paper reports AlltoAll winning "when the
	// sparsity is greater than 40%" — so it must be fastest strictly above
	// the 40% point, and the AllReduce crossover must sit in (20%, 60%).
	a, err := RunFigure4(topoA)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range a {
		if p.Sparsity > 0.4 {
			if p.AllToAllMS >= p.AllReduceMS || p.AllToAllMS >= p.AllGatherMS || p.AllToAllMS >= p.PSMS {
				t.Fatalf("(a) sparsity %.0f%%: AlltoAll not fastest: %+v", p.Sparsity*100, p)
			}
		}
		if p.Sparsity <= 0.2 && p.AllToAllMS < p.AllReduceMS {
			t.Fatalf("(a) sparsity %.0f%%: crossover too early (AlltoAll %.1f < AllReduce %.1f)",
				p.Sparsity*100, p.AllToAllMS, p.AllReduceMS)
		}
		if p.OmniReduceMS != 0 {
			t.Fatal("(a) OmniReduce must be unavailable on multi-GPU nodes")
		}
	}

	// (b) 4 nodes x 1 GPU: AlltoAll best at every sparsity; OmniReduce
	// decreasing with sparsity but never below AlltoAll.
	b, err := RunFigure4(topoB)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range b {
		if p.AllToAllMS > p.AllReduceMS || p.AllToAllMS > p.AllGatherMS || p.AllToAllMS > p.PSMS || p.AllToAllMS > p.OmniReduceMS {
			t.Fatalf("(b) sparsity %.0f%%: AlltoAll not fastest: %+v", p.Sparsity*100, p)
		}
		if i > 0 && p.OmniReduceMS > b[i-1].OmniReduceMS {
			t.Fatal("(b) OmniReduce must improve with sparsity")
		}
	}
}

func TestFigure6StallImproves(t *testing.T) {
	tls, err := RunFigure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tls) != 3 {
		t.Fatalf("%d timelines", len(tls))
	}
	def, twoD := tls[0].Metrics, tls[2].Metrics
	if twoD.StepTime > def.StepTime+1e-12 {
		t.Fatalf("2D step (%v) must not exceed default (%v)", twoD.StepTime, def.StepTime)
	}
}

func TestFigure7EmbRaceAlwaysWins(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid is slow-ish under -short")
	}
	groups, err := RunFigure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2*4*3 {
		t.Fatalf("%d groups", len(groups))
	}
	for _, g := range groups {
		last := g.Cells[len(g.Cells)-1]
		if last.Strategy != perfsim.StratEmbRace {
			t.Fatal("EmbRace must be the last cell")
		}
		if last.SpeedupVsBest < 1.0 {
			t.Errorf("%s@%s/%d: EmbRace speedup %.3f < 1", g.Model, g.GPU, g.GPUs, last.SpeedupVsBest)
		}
		if last.SpeedupVsBest > 3.0 {
			t.Errorf("%s@%s/%d: speedup %.2f implausibly high", g.Model, g.GPU, g.GPUs, last.SpeedupVsBest)
		}
	}
}

func TestFigure8StallRatiosAtLeastOne(t *testing.T) {
	rows, err := RunFigure8()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for strat, ratio := range r.StallVsEmbRace {
			if ratio < 1.0-1e-9 {
				t.Errorf("%s@%s: %v stall ratio %.3f < 1 (EmbRace must have the least stall)",
					r.Model, r.GPU, strat, ratio)
			}
		}
		if r.EmbRaceStallMS < 0 {
			t.Errorf("%s@%s: negative stall", r.Model, r.GPU)
		}
	}
}

func TestFigure9AblationMonotone(t *testing.T) {
	for _, gpus := range []int{4, 16} {
		rows, err := RunFigure9(gpus)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			// Hybrid communication alone must already beat AllGather, and
			// full 2D must be at least as good as no scheduling.
			if r.NoSched < 1.0 {
				t.Errorf("%d GPUs %s: hybrid comm below AllGather (%.3f)", gpus, r.Model, r.NoSched)
			}
			if r.TwoD < r.NoSched-1e-9 {
				t.Errorf("%d GPUs %s: 2D (%.3f) below no-sched (%.3f)", gpus, r.Model, r.TwoD, r.NoSched)
			}
		}
	}
}

func TestFigure10ScalingBounds(t *testing.T) {
	rows, err := RunFigure10()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.EmbRaceScale <= 1.0 || r.EmbRaceScale > r.Ideal+1e-9 {
			t.Errorf("%s@%d: EmbRace scaling %.2f out of (1, %.1f]", r.Model, r.GPUs, r.EmbRaceScale, r.Ideal)
		}
		if r.BaselineScale <= 0 {
			t.Errorf("%s@%d: baseline scaling %.2f", r.Model, r.GPUs, r.BaselineScale)
		}
	}
	// LM must use Parallax as the §5.6 competitor.
	for _, r := range rows {
		if r.Model == "LM" && r.Baseline != perfsim.StratParallax {
			t.Errorf("LM baseline = %v, want Parallax", r.Baseline)
		}
	}
}

func TestFigure11ConvergenceIdentical(t *testing.T) {
	res, err := RunFigure11(20, 5)
	if err != nil {
		t.Fatal(err)
	}
	// §5.7: the modified Adam keeps EmbRace's split updates exactly
	// equivalent, so both curves coincide to float precision.
	if res.MaxDelta > 1e-6 {
		t.Fatalf("convergence curves diverge by %v", res.MaxDelta)
	}
	// And training must actually make progress.
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.EmbRacePPL >= first.EmbRacePPL {
		t.Fatalf("PPL did not improve: %v -> %v", first.EmbRacePPL, last.EmbRacePPL)
	}
	if _, err := RunFigure11(2, 5); err == nil {
		t.Fatal("expected sampling validation error")
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every experiment")
	}
	for _, id := range IDs() {
		var buf bytes.Buffer
		if err := Run(id, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() < 40 {
			t.Fatalf("%s: suspiciously short output %q", id, buf.String())
		}
		if !strings.Contains(buf.String(), "===") {
			t.Fatalf("%s: missing header", id)
		}
	}
}

func TestTokensPerStepScalesWithWorkers(t *testing.T) {
	m := modelzoo.All()[0]
	t4, err := tokensPerStep(m, modelzoo.RTX3090, 4)
	if err != nil {
		t.Fatal(err)
	}
	t16, err := tokensPerStep(m, modelzoo.RTX3090, 16)
	if err != nil {
		t.Fatal(err)
	}
	if t16 != 4*t4 {
		t.Fatalf("tokens/step must scale linearly with workers: %v vs %v", t4, t16)
	}
}

func TestPartitionAblationShape(t *testing.T) {
	rows, err := RunPartitionAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if len(r.Stats) != 3 {
			t.Fatalf("%s: %d schemes", r.Model, len(r.Stats))
		}
		// Column-wise must be perfectly balanced and best; row-range worst.
		if r.Stats[0].Scheme != "column-wise" || r.Stats[0].Imbalance > 1.0+1e-9 {
			t.Fatalf("%s: best scheme %+v", r.Model, r.Stats[0])
		}
		if r.Stats[2].Scheme != "row-range" || r.Stats[2].Imbalance < 2 {
			t.Fatalf("%s: row-range should be severely imbalanced: %+v", r.Model, r.Stats[2])
		}
	}
}

func TestFigure11AccuracyPanel(t *testing.T) {
	res, err := RunFigure11(30, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.EmbRaceAcc < 0 || p.EmbRaceAcc > 1 || p.GatherAcc < 0 || p.GatherAcc > 1 {
			t.Fatalf("accuracy out of range: %+v", p)
		}
		if p.EmbRaceAcc != p.GatherAcc {
			t.Fatalf("accuracy curves must coincide (synchronous equivalence): %+v", p)
		}
	}
	// Training must beat uniform guessing by the end.
	last := res.Points[len(res.Points)-1]
	if last.EmbRaceAcc <= 1.0/600 {
		t.Fatalf("final accuracy %v no better than chance", last.EmbRaceAcc)
	}
}

func TestGiantModelExtension(t *testing.T) {
	rows, err := RunGiant()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// The giant model is the paper conclusion's strongest case: with
		// 12.4 GB embeddings only EmbRace keeps its parameters on device,
		// and the win should be at least 2x at every scale.
		if r.SpeedupVsBest < 2.0 {
			t.Errorf("%d GPUs: speedup %.2fx below the giant-model expectation", r.GPUs, r.SpeedupVsBest)
		}
		if r.EmbRaceStep <= 0 || r.BaselineStep <= r.EmbRaceStep {
			t.Errorf("%d GPUs: bad steps %+v", r.GPUs, r)
		}
	}
}

func TestBandwidthSensitivityShape(t *testing.T) {
	rows, err := RunBandwidth()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Slower networks must increase EmbRace's relative advantage.
	for i := 1; i < len(rows); i++ {
		if rows[i].InterGbps <= rows[i-1].InterGbps {
			t.Fatal("rows must be sorted by bandwidth")
		}
		if rows[i].SpeedupVsBest > rows[i-1].SpeedupVsBest+0.02 {
			t.Fatalf("speedup should not grow with bandwidth: %.2f Gbps %.3fx -> %.2f Gbps %.3fx",
				rows[i-1].InterGbps, rows[i-1].SpeedupVsBest, rows[i].InterGbps, rows[i].SpeedupVsBest)
		}
	}
	if rows[0].SpeedupVsBest < 1.2 {
		t.Fatalf("at 25 Gbps EmbRace should win clearly, got %.2fx", rows[0].SpeedupVsBest)
	}
}

func TestBatchSensitivityShape(t *testing.T) {
	rows, err := RunBatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Larger batches hide more communication, so the small-batch end must
	// beat the large-batch end clearly (§5.3's BERT story); small wiggles
	// in the deeply comm-bound regime are allowed.
	first, last := rows[0], rows[len(rows)-1]
	if first.SpeedupVsBest < last.SpeedupVsBest+0.1 {
		t.Fatalf("batch %d speedup %.3fx should clearly exceed batch %d speedup %.3fx",
			first.BatchSentences, first.SpeedupVsBest, last.BatchSentences, last.SpeedupVsBest)
	}
	for _, r := range rows {
		if r.SpeedupVsBest < 1.0 {
			t.Fatalf("batch %d: EmbRace below baseline (%.3fx)", r.BatchSentences, r.SpeedupVsBest)
		}
	}
}

func TestRunJSONAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, id := range IDs() {
		var buf bytes.Buffer
		if err := RunJSON(id, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var parsed map[string]any
		if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
			t.Fatalf("%s: invalid JSON: %v", id, err)
		}
		if parsed["experiment"] != id || parsed["result"] == nil {
			t.Fatalf("%s: malformed envelope %v", id, parsed)
		}
	}
	if err := RunJSON("nope", io.Discard); err == nil {
		t.Fatal("expected unknown-id error")
	}
}

func TestStructuredRegistryMatchesTextRegistry(t *testing.T) {
	for _, id := range IDs() {
		if _, ok := structured[id]; !ok {
			t.Errorf("experiment %s has no structured runner", id)
		}
	}
	if len(structured) != len(IDs()) {
		t.Errorf("structured registry has %d entries, text registry %d", len(structured), len(IDs()))
	}
}

func TestFigure5GraphStructure(t *testing.T) {
	edges, err := RunFigure5()
	if err != nil {
		t.Fatal(err)
	}
	has := func(from, to string) bool {
		for _, e := range edges {
			if e.From == from && e.To == to {
				return true
			}
		}
		return false
	}
	// The load-bearing dependencies of the paper's Figure 5:
	// BP produces the gradient exchanges...
	if !has("bp:Encoder Blocks", "allreduce:Encoder Blocks") {
		t.Error("missing BP -> dense AllReduce edge")
	}
	// ...Algorithm 1 gates the embedding exchanges...
	if !has("vsched:algorithm1", "a2a-prior:Encoder Embedding") {
		t.Error("missing vsched -> prior AlltoAll edge")
	}
	// ...the lookup AlltoAll feeds the embedding FP...
	if !has("a2a-data:Encoder Embedding", "fp:Encoder Embedding") {
		t.Error("missing Emb Data -> FP edge")
	}
	// ...and dense FP waits on its own AllReduce.
	if !has("allreduce:Decoder Blocks", "fp:Decoder Blocks") {
		t.Error("missing AllReduce -> dense FP edge")
	}
}
