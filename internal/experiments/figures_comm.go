package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"embrace/internal/collective"
	"embrace/internal/comm"
	"embrace/internal/modelzoo"
	"embrace/internal/perfsim"
	"embrace/internal/simnet"
	"embrace/internal/tensor"
)

// Figure1Result reports the data volumes a sparse gradient generates under
// dense AllReduce vs sparse AllGather on a small world, verified against
// actually running both collectives to the same result.
type Figure1Result struct {
	Ranks                int
	DenseBytesPerRank    int
	SparseBytesPerRank   []int
	AllReduceWireBytes   int // total bytes each rank transmits (ring)
	AllGatherWireBytes   []int
	ResultsAgree         bool
	DenseZerosTransmited int
}

// RunFigure1 builds the Figure-1 example: 3 processes each holding a sparse
// gradient over a 6x2 embedding, aggregated once as dense AllReduce and once
// as sparse AllGather; both must yield the same dense sum.
func RunFigure1() (*Figure1Result, error) {
	const (
		ranks = 3
		rows  = 6
		dim   = 2
	)
	rng := rand.New(rand.NewSource(11))
	locals := make([]*tensor.Sparse, ranks)
	want := tensor.NewDense(rows, dim)
	for r := range locals {
		nnz := 1 + rng.Intn(2)
		idx := make([]int64, nnz)
		vals := make([]float32, nnz*dim)
		for i := range idx {
			idx[i] = int64(rng.Intn(rows))
		}
		for i := range vals {
			vals[i] = float32(rng.Intn(9) + 1)
		}
		s, err := tensor.NewSparse(rows, dim, idx, vals)
		if err != nil {
			return nil, err
		}
		locals[r] = s
		s.AddToDense(want, 1)
	}

	res := &Figure1Result{
		Ranks:             ranks,
		DenseBytesPerRank: rows * dim * tensor.BytesPerElem,
	}
	for _, s := range locals {
		res.SparseBytesPerRank = append(res.SparseBytesPerRank, s.SizeBytes())
		res.AllGatherWireBytes = append(res.AllGatherWireBytes, (ranks-1)*s.SizeBytes())
		res.DenseZerosTransmited += rows*dim - s.Coalesce().NNZ()*dim
	}
	// Ring AllReduce moves 2(N-1)/N of the dense buffer per rank.
	res.AllReduceWireBytes = 2 * (ranks - 1) * res.DenseBytesPerRank / ranks

	agree := true
	err := comm.RunRanks(ranks, func(t comm.Transport) error {
		cm := collective.NewCommunicator(t)
		dense := locals[t.Rank()].ToDense()
		if err := cm.AllReduce("fig1/dense", 0, dense.Data()); err != nil {
			return err
		}
		gathered, err := cm.SparseAllGather("fig1/sparse", 0, locals[t.Rank()])
		if err != nil {
			return err
		}
		if !dense.AllClose(want, 1e-5) || !gathered.ToDense().AllClose(want, 1e-5) {
			agree = false
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.ResultsAgree = agree
	return res, nil
}

// RenderFigure1 prints the Figure-1 volume comparison.
func RenderFigure1(w io.Writer) error {
	r, err := RunFigure1()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "3-process sparse aggregation over a 6x2 embedding gradient\n")
	fmt.Fprintf(w, "AllReduce (dense):  %d bytes/rank on the wire, %d zero elements moved\n",
		r.AllReduceWireBytes, r.DenseZerosTransmited)
	for i, b := range r.AllGatherWireBytes {
		fmt.Fprintf(w, "AllGather rank %d:   %d bytes on the wire (local sparse payload %d)\n",
			i, b, r.SparseBytesPerRank[i])
	}
	fmt.Fprintf(w, "both collectives produce the identical dense sum: %v\n", r.ResultsAgree)
	return nil
}

// Figure4Point is one (sparsity, scheme) sample of the Figure-4 sweep.
type Figure4Point struct {
	Sparsity float64
	// Milliseconds per full gradient exchange per scheme; zero entries
	// mean the scheme is unavailable on the topology (OmniReduce off
	// multi-GPU nodes).
	AllToAllMS, AllReduceMS, AllGatherMS, PSMS, OmniReduceMS float64
}

// RunFigure4 sweeps embedding-gradient communication time against sparsity
// for the GNMT-8 embedding (252.5 MB) on the given topology, mirroring
// Figure 4(a) (2 nodes x 4 GPUs) and 4(b) (4 nodes x 1 GPU).
func RunFigure4(topo simnet.Topology) ([]Figure4Point, error) {
	est, err := simnet.NewEstimator(topo)
	if err != nil {
		return nil, err
	}
	const embBytes = 252.5e6
	var out []Figure4Point
	for _, sparsity := range []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99} {
		alpha := 1 - sparsity
		payload := alpha * embBytes
		p := Figure4Point{
			Sparsity: sparsity,
			// AlltoAll and AllGather run on the sparse payload; EmbRace
			// performs two AlltoAlls per step (§4.1.2 compares one
			// gradient aggregation, so a pair is charged consistently
			// with the 2x in the AllReduce/PS round trips).
			AllToAllMS:  est.AllToAllPair(payload) * 1e3,
			AllReduceMS: est.RingAllReduce(embBytes) * 1e3,
			AllGatherMS: est.AllGather(payload) * 1e3,
			PSMS:        est.PS(payload) * 1e3,
		}
		if topo.WorkersPerNode == 1 {
			om, err := est.OmniReduce(embBytes, alpha)
			if err != nil {
				return nil, err
			}
			p.OmniReduceMS = om * 1e3
		}
		out = append(out, p)
	}
	return out, nil
}

// Figure4Topologies returns the two topologies of Figure 4: (a) 2 nodes with
// 4 RTX3090 GPUs each, (b) 4 nodes with 1 RTX3090 GPU each.
func Figure4Topologies() (a, b simnet.Topology) {
	cl8, _ := modelzoo.NewCluster(modelzoo.RTX3090, 8)
	a = cl8.Topology()
	b = a
	b.Nodes, b.WorkersPerNode = 4, 1
	return a, b
}

// RenderFigure4 prints both Figure-4 sweeps.
func RenderFigure4(w io.Writer) error {
	topoA, topoB := Figure4Topologies()
	for _, cfg := range []struct {
		label string
		topo  simnet.Topology
	}{
		{"(a) 2 nodes x 4 RTX3090", topoA},
		{"(b) 4 nodes x 1 RTX3090", topoB},
	} {
		points, err := RunFigure4(cfg.topo)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s — GNMT-8 embedding (252.5 MB), ms per exchange\n", cfg.label)
		header := fmt.Sprintf("%8s %10s %10s %10s %10s", "sparsity", "AlltoAll", "AllReduce", "AllGather", "PS")
		if cfg.topo.WorkersPerNode == 1 {
			header += fmt.Sprintf(" %11s", "OmniReduce")
		}
		fmt.Fprintln(w, header)
		for _, p := range points {
			line := fmt.Sprintf("%7.0f%% %10.1f %10.1f %10.1f %10.1f",
				p.Sparsity*100, p.AllToAllMS, p.AllReduceMS, p.AllGatherMS, p.PSMS)
			if cfg.topo.WorkersPerNode == 1 {
				line += fmt.Sprintf(" %11.1f", p.OmniReduceMS)
			}
			fmt.Fprintln(w, line)
		}
	}
	return nil
}

// Figure6Timeline is the rendered task timeline of one scheduling mode.
type Figure6Timeline struct {
	Mode     string
	Metrics  perfsim.StepMetrics
	Timeline *perfsim.Timeline
}

// RunFigure6 simulates the GNMT-8 step timeline on 16 RTX3090 GPUs under
// the three scheduling regimes of Figure 6: default FIFO, Block-level
// Horizontal, and full 2D.
func RunFigure6() ([]Figure6Timeline, error) {
	m, err := modelzoo.ByName("GNMT-8")
	if err != nil {
		return nil, err
	}
	st, err := m.MeasureGradStats(modelzoo.RTX3090, 10, 42)
	if err != nil {
		return nil, err
	}
	cl, err := modelzoo.NewCluster(modelzoo.RTX3090, 16)
	if err != nil {
		return nil, err
	}
	est, err := cl.Estimator()
	if err != nil {
		return nil, err
	}
	spec := m.PerfSpec(modelzoo.RTX3090, st, true)
	out := make([]Figure6Timeline, 0, 3)
	for _, mode := range []struct {
		name string
		m    perfsim.SchedMode
	}{
		{"(a) default FIFO", perfsim.SchedDefault},
		{"(b) horizontal", perfsim.SchedHorizontal},
		{"(c) 2D", perfsim.Sched2D},
	} {
		met, tl, err := perfsim.RunJob(spec, perfsim.StratEmbRace, mode.m, est, 5)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure6Timeline{Mode: mode.name, Metrics: met, Timeline: tl})
	}
	return out, nil
}

// RenderFigure6 prints one steady-state step of each timeline, one line per
// task, with stream and interval.
func RenderFigure6(w io.Writer) error {
	tls, err := RunFigure6()
	if err != nil {
		return err
	}
	for _, tl := range tls {
		fmt.Fprintf(w, "%s — step %.1fms, stall %.1fms\n", tl.Mode,
			tl.Metrics.StepTime*1e3, tl.Metrics.Stall*1e3)
		// Show the steady-state step (step 2).
		var t0 float64 = -1
		for _, task := range tl.Timeline.Tasks {
			if task.Step != 2 {
				continue
			}
			if t0 < 0 {
				t0 = task.Start
			}
			stream := "compute"
			if task.Res == perfsim.Network {
				stream = "network"
			}
			fmt.Fprintf(w, "  %-7s %9.2f -> %9.2f ms  %s\n",
				stream, (task.Start-t0)*1e3, (task.End-t0)*1e3, task.Name)
		}
		fmt.Fprintln(w, strings.Repeat("-", 56))
	}
	return nil
}
