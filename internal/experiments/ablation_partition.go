package experiments

import (
	"fmt"
	"io"

	"embrace/internal/data"
	"embrace/internal/modelzoo"
	"embrace/internal/partition"
)

// PartitionRow reports the load-balance ablation of §4.1.1 for one model:
// how each embedding-partitioning scheme distributes lookup work over 8
// shards under the model's real batch statistics.
type PartitionRow struct {
	Model string
	Stats []partition.Stats
}

// RunPartitionAblation evaluates row-range, row-hash and column-wise
// partitioning on every model's workload with 8 shards — the design-choice
// ablation behind the paper's column-wise decision.
func RunPartitionAblation() ([]PartitionRow, error) {
	const shards = 8
	var out []PartitionRow
	for _, m := range modelzoo.All() {
		gen, err := data.NewGenerator(m.WorkloadConfig(modelzoo.RTX3090), 42)
		if err != nil {
			return nil, err
		}
		batches := make([][]int64, 10)
		for i := range batches {
			batches[i] = gen.NextBatch().Tokens()
		}
		stats, err := partition.Compare(batches, m.Vocab, shards)
		if err != nil {
			return nil, err
		}
		out = append(out, PartitionRow{Model: m.Name, Stats: stats})
	}
	return out, nil
}

// RenderPartitionAblation prints per-model imbalance factors. The imbalance
// factor directly scales the embedding AlltoAll time (the exchange finishes
// when the hottest shard finishes), so column-wise's 1.0 is the §4.1.1
// "balance loads naturally" claim made quantitative.
func RenderPartitionAblation(w io.Writer) error {
	rows, err := RunPartitionAblation()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "embedding-lookup load imbalance over 8 shards (max/mean; 1.0 = perfect):")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s", r.Model)
		for _, s := range r.Stats {
			fmt.Fprintf(w, "  %s=%.2f", s.Scheme, s.Imbalance)
		}
		fmt.Fprintln(w)
	}
	return nil
}
