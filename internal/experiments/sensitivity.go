package experiments

import (
	"fmt"
	"io"

	"embrace/internal/modelzoo"
	"embrace/internal/perfsim"
	"embrace/internal/simnet"
)

// BandwidthRow is one point of the network-bandwidth sensitivity sweep.
type BandwidthRow struct {
	InterGbps     float64
	EmbRaceStep   float64
	BaselineStep  float64
	SpeedupVsBest float64
}

// RunBandwidth sweeps the inter-node bandwidth for GNMT-8 on 16 RTX3090s:
// the slower the network, the more communication-bound training becomes and
// the more EmbRace's traffic reduction matters. (Beyond the paper, which
// fixes 100 Gbps; this quantifies the sensitivity of its conclusions.)
func RunBandwidth() ([]BandwidthRow, error) {
	m, err := modelzoo.ByName("GNMT-8")
	if err != nil {
		return nil, err
	}
	st, err := m.MeasureGradStats(modelzoo.RTX3090, 8, 42)
	if err != nil {
		return nil, err
	}
	cl, err := modelzoo.NewCluster(modelzoo.RTX3090, 16)
	if err != nil {
		return nil, err
	}
	var out []BandwidthRow
	for _, gbps := range []float64{25, 50, 100, 200} {
		topo := cl.Topology()
		topo.InterBW = gbps / 8 * 1e9
		est, err := simnet.NewEstimator(topo)
		if err != nil {
			return nil, err
		}
		best := -1.0
		for _, strat := range []perfsim.Strategy{perfsim.StratBytePS, perfsim.StratAllReduce, perfsim.StratAllGather, perfsim.StratParallax} {
			met, _, err := perfsim.RunJob(m.PerfSpec(modelzoo.RTX3090, st, false), strat, perfsim.SchedDefault, est, 6)
			if err != nil {
				return nil, err
			}
			if best < 0 || met.StepTime < best {
				best = met.StepTime
			}
		}
		met, _, err := perfsim.RunJob(m.PerfSpec(modelzoo.RTX3090, st, true), perfsim.StratEmbRace, perfsim.Sched2D, est, 6)
		if err != nil {
			return nil, err
		}
		out = append(out, BandwidthRow{
			InterGbps:     gbps,
			EmbRaceStep:   met.StepTime,
			BaselineStep:  best,
			SpeedupVsBest: best / met.StepTime,
		})
	}
	return out, nil
}

// RenderBandwidth prints the bandwidth sweep.
func RenderBandwidth(w io.Writer) error {
	rows, err := RunBandwidth()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "GNMT-8 @ 16x RTX3090, inter-node bandwidth sweep:")
	for _, r := range rows {
		fmt.Fprintf(w, "  %4.0f Gbps: EmbRace %6.1fms vs best baseline %6.1fms -> %.2fx\n",
			r.InterGbps, r.EmbRaceStep*1e3, r.BaselineStep*1e3, r.SpeedupVsBest)
	}
	return nil
}

// BatchRow is one point of the batch-size sensitivity sweep.
type BatchRow struct {
	BatchSentences int
	SpeedupVsBest  float64
}

// RunBatch sweeps BERT-base's per-worker batch on 16 RTX3090s. Larger
// batches lengthen the backward pass, hiding more communication and
// shrinking EmbRace's edge — the §5.3 explanation of why BERT gains little
// on RTX3090 (batch 32) but much on RTX2080 (batch 4), isolated from the
// GPU change.
func RunBatch() ([]BatchRow, error) {
	base, err := modelzoo.ByName("BERT-base")
	if err != nil {
		return nil, err
	}
	cl, err := modelzoo.NewCluster(modelzoo.RTX3090, 16)
	if err != nil {
		return nil, err
	}
	est, err := cl.Estimator()
	if err != nil {
		return nil, err
	}
	var out []BatchRow
	for _, batch := range []int{4, 8, 16, 32} {
		m, err := base.WithBatch(modelzoo.RTX3090, batch)
		if err != nil {
			return nil, err
		}
		st, err := m.MeasureGradStats(modelzoo.RTX3090, 8, 42)
		if err != nil {
			return nil, err
		}
		best := -1.0
		for _, strat := range []perfsim.Strategy{perfsim.StratBytePS, perfsim.StratAllReduce, perfsim.StratAllGather, perfsim.StratParallax} {
			met, _, err := perfsim.RunJob(m.PerfSpec(modelzoo.RTX3090, st, false), strat, perfsim.SchedDefault, est, 6)
			if err != nil {
				return nil, err
			}
			if best < 0 || met.StepTime < best {
				best = met.StepTime
			}
		}
		met, _, err := perfsim.RunJob(m.PerfSpec(modelzoo.RTX3090, st, true), perfsim.StratEmbRace, perfsim.Sched2D, est, 6)
		if err != nil {
			return nil, err
		}
		out = append(out, BatchRow{BatchSentences: batch, SpeedupVsBest: best / met.StepTime})
	}
	return out, nil
}

// RenderBatch prints the batch sweep.
func RenderBatch(w io.Writer) error {
	rows, err := RunBatch()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "BERT-base @ 16x RTX3090, per-worker batch sweep (EmbRace vs best baseline):")
	for _, r := range rows {
		fmt.Fprintf(w, "  batch %3d: %.2fx\n", r.BatchSentences, r.SpeedupVsBest)
	}
	return nil
}
