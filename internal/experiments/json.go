package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"embrace/internal/perfsim"
)

// structured maps experiment ids to runners returning marshalable results,
// so downstream tooling (plotting scripts, CI dashboards) can consume the
// same data the text renderers print.
var structured = map[string]func() (any, error){
	"table1": func() (any, error) { return RunTable1(), nil },
	"table2": func() (any, error) { return RunTable2(), nil },
	"table3": func() (any, error) { return RunTable3() },
	"fig1":   func() (any, error) { return RunFigure1() },
	"fig4": func() (any, error) {
		a, b := Figure4Topologies()
		pa, err := RunFigure4(a)
		if err != nil {
			return nil, err
		}
		pb, err := RunFigure4(b)
		if err != nil {
			return nil, err
		}
		return map[string][]Figure4Point{"2x4": pa, "4x1": pb}, nil
	},
	"fig5": func() (any, error) { return RunFigure5() },
	"fig6": func() (any, error) {
		tls, err := RunFigure6()
		if err != nil {
			return nil, err
		}
		// Timelines carry internal pointers; export mode + metrics + tasks.
		type task struct {
			Name       string
			Step       int
			Network    bool
			Start, End float64
		}
		type entry struct {
			Mode    string
			Metrics perfsim.StepMetrics
			Tasks   []task
		}
		out := make([]entry, 0, len(tls))
		for _, tl := range tls {
			e := entry{Mode: tl.Mode, Metrics: tl.Metrics}
			for _, t := range tl.Timeline.Tasks {
				e.Tasks = append(e.Tasks, task{
					Name: t.Name, Step: t.Step,
					Network: t.Res == perfsim.Network,
					Start:   t.Start, End: t.End,
				})
			}
			out = append(out, e)
		}
		return out, nil
	},
	"fig7": func() (any, error) { return RunFigure7() },
	"fig8": func() (any, error) { return RunFigure8() },
	"fig9": func() (any, error) {
		r16, err := RunFigure9(16)
		if err != nil {
			return nil, err
		}
		r4, err := RunFigure9(4)
		if err != nil {
			return nil, err
		}
		return map[string][]Figure9Row{"16": r16, "4": r4}, nil
	},
	"fig10":     func() (any, error) { return RunFigure10() },
	"fig11":     func() (any, error) { return RunFigure11(60, 5) },
	"partition": func() (any, error) { return RunPartitionAblation() },
	"giant":     func() (any, error) { return RunGiant() },
	"bandwidth": func() (any, error) { return RunBandwidth() },
	"batch":     func() (any, error) { return RunBatch() },
}

// RunJSON executes the experiment and writes its structured results as
// indented JSON.
func RunJSON(id string, w io.Writer) error {
	run, ok := structured[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	result, err := run()
	if err != nil {
		return fmt.Errorf("%s: %w", id, err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"experiment": id, "result": result})
}
