package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"embrace/internal/modelzoo"
	"embrace/internal/perfsim"
)

// Figure5Edge is one dependency edge of the module graph.
type Figure5Edge struct {
	From, To string
}

// RunFigure5 derives the paper's Figure-5 module dependency graph — the
// relationships between BP, the hybrid communication operations (Emb Grad /
// Emb Data AlltoAll, dense AllReduce) and the next FP — from the actual task
// graph the performance simulator builds for one EmbRace step of a
// translation model. Edges within a step and into the next step's forward
// pass are reported; compute-chain edges between consecutive blocks are
// collapsed for readability, matching the paper's module-level view.
func RunFigure5() ([]Figure5Edge, error) {
	m, err := modelzoo.ByName("GNMT-8")
	if err != nil {
		return nil, err
	}
	st, err := m.MeasureGradStats(modelzoo.RTX3090, 5, 42)
	if err != nil {
		return nil, err
	}
	cl, err := modelzoo.NewCluster(modelzoo.RTX3090, 8)
	if err != nil {
		return nil, err
	}
	est, err := cl.Estimator()
	if err != nil {
		return nil, err
	}
	spec := m.PerfSpec(modelzoo.RTX3090, st, true)
	g, _, err := perfsim.BuildJob(spec, perfsim.StratEmbRace, perfsim.Sched2D, est, 2)
	if err != nil {
		return nil, err
	}

	// Collapse block-level names to Figure 5's module granularity.
	module := func(name string) string {
		name = strings.ReplaceAll(name, "-block-0", " Blocks")
		name = strings.ReplaceAll(name, "-block-1", " Blocks")
		name = strings.ReplaceAll(name, "-block-2", " Blocks")
		name = strings.ReplaceAll(name, "-block-3", " Blocks")
		name = strings.ReplaceAll(name, "enc-emb", "Encoder Embedding")
		name = strings.ReplaceAll(name, "dec-emb", "Decoder Embedding")
		name = strings.ReplaceAll(name, "enc Blocks", "Encoder Blocks")
		name = strings.ReplaceAll(name, "dec Blocks", "Decoder Blocks")
		return name
	}

	seen := map[string]bool{}
	var edges []Figure5Edge
	for _, task := range g.Tasks() {
		if task.Step > 1 {
			continue
		}
		for _, dep := range deps(g, task) {
			from, to := module(dep), module(task.Name)
			if from == to {
				continue // collapsed intra-module chains
			}
			key := from + "->" + to
			if !seen[key] {
				seen[key] = true
				edges = append(edges, Figure5Edge{From: from, To: to})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	return edges, nil
}

// deps lists the dependency names of a task by simulating once and reading
// start-order adjacency: perfsim does not export dep pointers, so the graph
// builder records them for us via Tasks ordering. To keep the inspection
// honest we re-derive edges from the builder's published Task dependencies.
func deps(g *perfsim.Graph, t *perfsim.Task) []string {
	return g.DepsOf(t)
}

// RenderFigure5 prints the module dependency edges.
func RenderFigure5(w io.Writer) error {
	edges, err := RunFigure5()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "EmbRace module dependency graph (GNMT-8, one step into the next FP):")
	for _, e := range edges {
		fmt.Fprintf(w, "  %-28s -> %s\n", e.From, e.To)
	}
	return nil
}
