package strategies

import (
	"fmt"

	"embrace/internal/collective"
	"embrace/internal/nn"
	"embrace/internal/optim"
	"embrace/internal/tensor"
	"embrace/internal/trace"
)

// embraceWorker implements the paper's contribution in real-execution mode.
//
// The embedding table is column-wise partitioned (§4.1.1): rank s owns
// columns [s*dim/N, (s+1)*dim/N) of every vocabulary row, so every shard
// sees every word and load balance is batch-independent. One training step:
//
//  1. AllGather the token windows of every rank ("gathered training data",
//     the D_cur of Algorithm 1).
//  2. Each shard looks up its columns of the pooled embedding for every
//     rank's batch, then the first AlltoAll routes the partial lookups so
//     each rank assembles the full-width pooled activations of its own
//     batch — embedding forward via model parallelism.
//  3. The dense trunk runs forward/backward locally; its gradients use ring
//     AllReduce like any dense model (the hybrid of §4.1.3).
//  4. The pooled-activation gradient becomes per-token sparse rows,
//     column-sliced per destination shard — the raw, uncoalesced gradient
//     Algorithm 1 starts from.
//  5. With Sched2D, each rank partitions its rows against the gathered next
//     batch before communicating: the prior part travels through an
//     immediate AlltoAll and is applied at once (modified optimizer,
//     final=false); the delayed part travels through a background AlltoAll
//     that overlaps subsequent work and is harvested — applied with
//     final=true — at the start of the next step (§4.2.2, §5.7). Without
//     Sched2D a single whole-gradient AlltoAll feeds a whole update.
type embraceWorker struct {
	cm  *collective.Communicator
	cfg Config
	rec *trace.Recorder // per-rank span recorder; nil disables tracing

	shard     *nn.Embedding // [vocab x dim/N], this rank's columns
	trunk     *nn.Trunk
	trunkOpts map[string]optim.Optimizer
	embOpt    optim.Optimizer
	dimShard  int

	// delayed is the in-flight background exchange of the previous step's
	// delayed gradients (§4.2.2: "the communications of delayed gradients
	// could be performed later"). It is harvested — exchanged gradient
	// applied with the modified optimizer's final call — at the start of
	// the next step, before any of its rows can be read again.
	delayed chan delayedResult

	hot hotScratch
}

// hotScratch owns every reusable buffer of the steady-state step: the raw
// sparse gradient, the per-shard column slices, the prior/delayed split, the
// sorted next-batch sets, the exchange arenas and the coalesce targets. Each
// buffer grows to its high-water mark on the first step and is then reused,
// so steady-state gradient packing, splitting, exchanging and coalescing
// allocate nothing — the discipline the hotalloc analyzer enforces.
//
// The background delayed exchange overlaps the next step's foreground, so it
// gets its own arena and coalesce scratch (bg*); harvestDelayed joins the
// goroutine before any foreground buffer it read (the delayed split) is
// rewritten.
type hotScratch struct {
	rows        tensor.Sparse   // raw uncoalesced pooled gradient (PoolBackwardInto)
	send        []tensor.Sparse // per-destination-shard column slices
	sendPtrs    []*tensor.Sparse
	prior       []tensor.Sparse // prior part of each send shard
	priorPtrs   []*tensor.Sparse
	delayed     []tensor.Sparse // delayed part of each send shard
	delayedPtrs []*tensor.Sparse

	// myNext is double-buffered: the gathered next-batch slice travels by
	// reference through the in-process transport, and although every peer
	// has consumed step k's slice before this rank can reach step k+1's
	// rewrite (the step-k+1 token gather is a rendezvous), alternating
	// buffers keeps the invariant local instead of resting on that global
	// ordering argument.
	myNext  [2][]int64
	flip    int
	nextAll []int64 // merged sorted next ids of all ranks

	arena collective.SparseShards // foreground exchange (whole or prior)
	coal  tensor.Sparse           // foreground coalesce target
	sort  tensor.SortScratch

	bgArena collective.SparseShards // background delayed exchange
	bgCoal  tensor.Sparse
	bgSort  tensor.SortScratch
}

// init sizes the fixed-world-size slices once; everything else grows lazily.
func (h *hotScratch) init(n int) {
	h.send = make([]tensor.Sparse, n)
	h.prior = make([]tensor.Sparse, n)
	h.delayed = make([]tensor.Sparse, n)
	h.sendPtrs = make([]*tensor.Sparse, n)
	h.priorPtrs = make([]*tensor.Sparse, n)
	h.delayedPtrs = make([]*tensor.Sparse, n)
	for i := 0; i < n; i++ {
		h.sendPtrs[i] = &h.send[i]
		h.priorPtrs[i] = &h.prior[i]
		h.delayedPtrs[i] = &h.delayed[i]
	}
}

// delayedResult carries the background AlltoAll's outcome.
type delayedResult struct {
	grad *tensor.Sparse
	err  error
}

func newEmbRaceWorker(cm *collective.Communicator, cfg Config, rec *trace.Recorder, embShard *tensor.Dense) *embraceWorker {
	n := cm.Size()
	dimShard := cfg.EmbDim / n
	// Build the same full model every baseline starts from (warm-start
	// overrides included), then keep only this rank's column shard, so
	// cross-strategy equivalence holds exactly. A caller-provided shard
	// (WithEmbShard, shape-checked by NewWorker) replaces the slice — the
	// elastic restore path, where each rank gets its remapped columns from
	// a checkpoint and nobody holds the full table — and is copied so
	// training never writes through to the caller's tensor.
	full := newInitialModel(cfg)
	shardTable := tensor.NewDense(cfg.Vocab, dimShard)
	if embShard != nil {
		copy(shardTable.Data(), embShard.Data())
	} else {
		lo := cm.Rank() * dimShard
		for r := 0; r < cfg.Vocab; r++ {
			copy(shardTable.Row(r), full.Emb.Table.Row(r)[lo:lo+dimShard])
		}
	}
	w := &embraceWorker{
		cm:        cm,
		cfg:       cfg,
		rec:       rec,
		shard:     &nn.Embedding{Table: shardTable},
		trunk:     full.Trunk,
		trunkOpts: trunkOptimizers(cfg, full.Trunk),
		embOpt:    newOptimizer(cfg, shardTable),
		dimShard:  dimShard,
	}
	w.hot.init(n)
	return w
}

func (w *embraceWorker) Strategy() Name { return EmbRace }

func (w *embraceWorker) Trunk() *nn.Trunk { return w.trunk }

// harvestDelayed joins the previous step's background delayed exchange and
// applies it as the final part of that step's split update. It must run
// before the optimizer's next logical step begins. step labels the span of
// the step doing the harvesting (pass -1 outside the step loop).
func (w *embraceWorker) harvestDelayed(step int) error {
	if w.delayed == nil {
		return nil
	}
	sp := w.rec.Begin(trace.TrackCompute, SpanHarvestDelayed, step)
	defer sp.End()
	res := <-w.delayed
	w.delayed = nil
	if res.err != nil {
		return fmt.Errorf("delayed exchange: %w", res.err)
	}
	if adam, ok := w.embOpt.(*optim.Adam); ok {
		if err := adam.StepSparsePartial(res.grad, true); err != nil {
			return fmt.Errorf("delayed update: %w", err)
		}
		return nil
	}
	if err := w.embOpt.StepSparse(res.grad); err != nil {
		return fmt.Errorf("delayed update: %w", err)
	}
	return nil
}

//embrace:hotpath
func (w *embraceWorker) Step(step int, windows [][]int64, targets []int64, nextTokens []int64) (nn.StepStats, error) {
	n := w.cm.Size()
	h := &w.hot

	// (0) The previous step's delayed gradients have been traveling in the
	// background; apply them before their rows can be read again.
	if err := w.harvestDelayed(step); err != nil {
		return nn.StepStats{}, err
	}

	// (1) Gather every rank's token windows.
	allWindows, err := collective.AllGatherVia(w.cm, OpTokens, step, windows)
	if err != nil {
		return nn.StepStats{}, fmt.Errorf("token gather: %w", err)
	}

	// (2) Shard-side lookup for every rank, then AlltoAll the partial
	// pooled activations (the "Emb Data" exchange of Figure 5).
	sp := w.rec.Begin(trace.TrackCompute, SpanLookup, step)
	partials := make([]*tensor.Dense, n) //embrace:allow hotalloc lookups travel by reference in-process; reuse would race with peers
	for p := 0; p < n; p++ {
		partials[p] = w.shard.PoolLookup(allWindows[p])
	}
	sp.End()
	sp = w.rec.Begin(trace.TrackCompute, SpanEmbExchange, step)
	colParts, err := collective.AllToAllVia(w.cm, OpEmbData, step, partials)
	if err != nil {
		return nn.StepStats{}, fmt.Errorf("embedding data alltoall: %w", err)
	}
	pooled := tensor.NewDense(len(windows), w.cfg.EmbDim)
	for s := 0; s < n; s++ {
		part := colParts[s] // my batch's columns owned by shard s
		if part.Dim(0) != len(windows) || part.Dim(1) != w.dimShard {
			return nn.StepStats{}, fmt.Errorf("embrace: shard %d returned %v, want [%d x %d]",
				s, part.Shape(), len(windows), w.dimShard)
		}
		lo := s * w.dimShard
		for i := 0; i < len(windows); i++ {
			copy(pooled.Row(i)[lo:lo+w.dimShard], part.Row(i))
		}
	}
	sp.End()

	// (3) Dense trunk forward/backward + ring AllReduce (hybrid comm).
	sp = w.rec.Begin(trace.TrackCompute, SpanFP, step)
	loss, cache, err := w.trunk.Forward(pooled, targets)
	if err != nil {
		return nn.StepStats{}, err
	}
	sp.End()
	stats := nn.StepStats{Loss: loss, Correct: cache.Correct(), Count: len(targets)}
	sp = w.rec.Begin(trace.TrackCompute, SpanBP, step)
	grads := w.trunk.Backward(cache)
	sp.End()
	for _, g := range grads.Dense() {
		sp := w.rec.Begin(trace.TrackCompute, SpanDense(g.Name), step)
		if err := w.cm.AllReduce(OpDense(g.Name), step, g.Tensor.Data()); err != nil {
			return nn.StepStats{}, fmt.Errorf("trunk %s: %w", g.Name, err)
		}
		if err := w.trunkOpts[g.Name].StepDense(g.Tensor); err != nil {
			return nn.StepStats{}, fmt.Errorf("trunk %s update: %w", g.Name, err)
		}
		sp.End()
	}

	// (4) Convert the pooled gradient into per-token sparse rows and
	// column-slice them per destination shard (the "Emb Grad" exchange of
	// Figure 5). PoolBackward keeps one row per token occurrence, which is
	// exactly the uncoalesced gradient Algorithm 1 starts from.
	local := w.shardOf(windows, grads.Pooled) // my batch, sliced per shard

	// (5a) Without vertical scheduling: one whole-gradient arena exchange,
	// then a whole update. The arena's merged view is exactly the
	// sender-ordered concatenation the legacy SparseAllToAll + Concat path
	// produced, and CoalesceInto sums it in the same order Coalesce would —
	// the update is bit-identical, it just reuses last step's buffers.
	if w.cfg.Sched != Sched2D {
		sp = w.rec.Begin(trace.TrackCompute, SpanEmbExchange, step)
		if err := w.cm.AlltoAllSparseCodec(OpEmbGrad, step, local, &h.arena, w.cfg.Codec, collective.RowsWhole); err != nil {
			return nn.StepStats{}, fmt.Errorf("embedding grad alltoall: %w", err)
		}
		raw := h.arena.Merged().CoalesceInto(&h.coal, &h.sort)
		sp.End()
		sp = w.rec.Begin(trace.TrackCompute, SpanEmbUpdate, step)
		if err := w.embOpt.StepSparse(raw); err != nil {
			return nn.StepStats{}, fmt.Errorf("embedding update: %w", err)
		}
		sp.End()
		return stats, nil
	}

	// (5b) Vertical Sparse Scheduling, split BEFORE communication: rows of
	// the prefetched next batch (gathered across ranks) form the prior
	// part, exchanged and applied immediately; the rest is exchanged by a
	// background goroutine and harvested at the start of the next step.
	my := h.myNext[h.flip][:0]
	my = append(my, nextTokens...)
	tensor.SortInt64(my)
	my = tensor.UniqueSorted(my)
	h.myNext[h.flip] = my
	h.flip ^= 1
	allNext, err := collective.AllGatherVia(w.cm, OpNextBatch, step, my)
	if err != nil {
		return nn.StepStats{}, fmt.Errorf("next-batch gather: %w", err)
	}
	h.nextAll = h.nextAll[:0]
	for _, ns := range allNext {
		h.nextAll = append(h.nextAll, ns...)
	}
	tensor.SortInt64(h.nextAll)

	sp = w.rec.Begin(trace.TrackCompute, SpanVSplit, step)
	for s := 0; s < n; s++ {
		local[s].PartitionSortedInto(h.nextAll, &h.prior[s], &h.delayed[s])
	}
	sp.End()
	sp = w.rec.Begin(trace.TrackCompute, SpanPriorExchange, step)
	if err := w.cm.AlltoAllSparseCodec(OpEmbGrad, step, h.priorPtrs, &h.arena, w.cfg.Codec, collective.RowsPrior); err != nil {
		return nn.StepStats{}, fmt.Errorf("prior grad alltoall: %w", err)
	}
	prior := h.arena.Merged().CoalesceInto(&h.coal, &h.sort)
	sp.End()
	sp = w.rec.Begin(trace.TrackCompute, SpanPriorUpdate, step)
	if adam, ok := w.embOpt.(*optim.Adam); ok {
		if err := adam.StepSparsePartial(prior, false); err != nil {
			return nn.StepStats{}, fmt.Errorf("prior update: %w", err)
		}
	} else if err := w.embOpt.StepSparse(prior); err != nil {
		return nn.StepStats{}, fmt.Errorf("prior update: %w", err)
	}
	sp.End()

	// Background delayed exchange, overlapping whatever comes next. Its span
	// lives on the background track so it cannot interleave with the
	// foreground lanes' events — this is the overlap §4.2.2 promises, visible
	// directly on the timeline. It owns the bg* scratch exclusively: the
	// goroutine is joined (harvestDelayed) before the delayed split it reads
	// or the coalesce target it fills can be touched again.
	done := make(chan delayedResult, 1) //embrace:allow hotalloc one-shot join channel per in-flight exchange
	w.delayed = done
	go func() { //embrace:allow hotalloc the overlap of §4.2.2 is a real goroutine per step
		bg := w.rec.Begin(trace.TrackBackground, SpanDelayedExchange, step)
		if err := w.cm.AlltoAllSparseCodec(OpEmbDelayed, step, h.delayedPtrs, &h.bgArena, w.cfg.Codec, collective.RowsDelayed); err != nil {
			bg.End()
			done <- delayedResult{err: err}
			return
		}
		grad := h.bgArena.Merged().CoalesceInto(&h.bgCoal, &h.bgSort)
		bg.End()
		done <- delayedResult{grad: grad}
	}()
	return stats, nil
}

// shardOf converts this rank's pooled-activation gradient into the N
// column-sliced sparse gradients the AlltoAll routes: slot s holds the rows
// of this rank's tokens restricted to shard s's columns. The rows and the
// slices live in the worker's hot scratch and are valid until the next call.
//
//embrace:hotpath
func (w *embraceWorker) shardOf(windows [][]int64, gradPooled *tensor.Dense) []*tensor.Sparse {
	h := &w.hot
	nn.PoolBackwardInto(w.cfg.Vocab, w.cfg.EmbDim, windows, gradPooled, &h.rows)
	for s := range h.send {
		h.rows.ColumnSliceInto(s*w.dimShard, (s+1)*w.dimShard, &h.send[s])
	}
	return h.sendPtrs
}

// FullEmbedding reassembles the complete table from every rank's column
// shard. All ranks must call it together (it is a collective). Any in-flight
// delayed update is applied first so the gathered table is complete. The tag
// comes from a Communicator ticket — an out-of-band sequence number all
// ranks advance symmetrically — rather than a magic step value, so repeated
// gathers can never collide with training-step tags or each other.
func (w *embraceWorker) FullEmbedding() (*tensor.Dense, error) {
	if err := w.harvestDelayed(-1); err != nil {
		return nil, err
	}
	shards, err := collective.AllGatherVia(w.cm, OpGatherEmb, w.cm.Ticket(OpGatherEmb), w.shard.Table)
	if err != nil {
		return nil, err
	}
	full := tensor.NewDense(w.cfg.Vocab, w.cfg.EmbDim)
	for s, sh := range shards {
		lo := s * w.dimShard
		for r := 0; r < w.cfg.Vocab; r++ {
			copy(full.Row(r)[lo:lo+w.dimShard], sh.Row(r))
		}
	}
	return full, nil
}
