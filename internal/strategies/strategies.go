// Package strategies implements the five distributed training strategies the
// paper evaluates (§5.2.3), all in real-execution mode: every rank is a
// goroutine holding real tensors, and gradients actually move through the
// collective/PS substrates.
//
//   - HorovodAllReduce: every gradient, embeddings included, is aggregated
//     densely with ring AllReduce.
//   - HorovodAllGather: dense gradients use AllReduce; embedding gradients
//     stay sparse and are aggregated with AllGather.
//   - BytePS: every gradient goes through dense parameter servers (BytePS
//     treats sparse tensors as dense; its ByteScheduler priority scheduling
//     is a timing concern modeled by internal/perfsim).
//   - Parallax: embedding gradients go to a sparse parameter server, dense
//     gradients use AllReduce.
//   - EmbRace: embeddings are column-wise partitioned across ranks (model
//     parallelism); lookup results and gradients travel by AlltoAll, dense
//     gradients by AllReduce (§4.1), optionally with Vertical Sparse
//     Scheduling and the modified Adam (§4.2.2, §5.7).
//
// All strategies are synchronous, so with identical seeds and batches they
// must produce identical parameters — the equivalence property the trainer
// tests enforce.
package strategies

import (
	"fmt"

	"embrace/internal/collective"
	"embrace/internal/nn"
	"embrace/internal/optim"
	"embrace/internal/ps"
	"embrace/internal/tensor"
	"embrace/internal/trace"
)

// Name identifies a strategy.
type Name string

// The strategy names, matching the paper's baseline list.
const (
	HorovodAllReduce Name = "horovod-allreduce"
	HorovodAllGather Name = "horovod-allgather"
	BytePS           Name = "byteps"
	Parallax         Name = "parallax"
	EmbRace          Name = "embrace"
)

// AllNames lists every strategy in the paper's comparison order.
func AllNames() []Name {
	return []Name{BytePS, HorovodAllReduce, HorovodAllGather, Parallax, EmbRace}
}

// SchedMode selects EmbRace's scheduling level for the ablation study
// (Figure 9). Horizontal scheduling changes only timing, which the
// performance simulator models; in real-execution mode the observable
// difference is the vertical split and its modified-Adam update.
type SchedMode int

const (
	// SchedNone applies each embedding gradient as one whole update
	// ("EmbRace w/o Scheduling").
	SchedNone SchedMode = iota
	// Sched2D runs Algorithm 1: coalesce, split against the prefetched
	// next batch, apply prior and delayed parts separately.
	Sched2D
)

// OptimizerKind selects the parameter-update rule.
type OptimizerKind string

// Supported optimizers.
const (
	OptSGD  OptimizerKind = "sgd"
	OptAdam OptimizerKind = "adam"
)

// Config describes one real-execution training job.
type Config struct {
	// Seed controls all parameter initialization; every rank derives the
	// same initial model from it.
	Seed int64
	// Vocab, EmbDim, Hidden size the nn.Model.
	Vocab, EmbDim, Hidden int
	// Optimizer selects the update rule for every parameter.
	Optimizer OptimizerKind
	// LR is the learning rate.
	LR float32
	// Sched selects EmbRace's scheduling mode; ignored by baselines.
	Sched SchedMode
	// PSServers is the logical server shard count for PS strategies.
	PSServers int
	// InitEmbedding and InitTrunk, when set, override the seed-derived
	// initial parameters — the warm-start hook checkpoint resume uses.
	// InitTrunk keys follow Trunk.Params ("w1", "b1", "w2", "b2").
	InitEmbedding *tensor.Dense
	InitTrunk     map[string]*tensor.Dense
	// Codec, when non-nil, compresses the embedding-gradient AlltoAll
	// streams of the EmbRace strategy (whole, prior and delayed exchanges;
	// baselines ignore it). Under Sched2D the prior exchange is encoded with
	// the prior row class and the background delayed exchange with the
	// delayed one, so dual-level codecs apply their tighter bound where it
	// matters. Lossless codecs keep training bit-identical to the raw wire;
	// lossy ones trade a per-element error bound for wire bytes.
	Codec collective.SparseCodec
}

// Validate reports configuration errors. workers is the world size the
// config will run under.
func (c Config) Validate(workers int) error {
	if c.Vocab < 2 || c.EmbDim < 1 || c.Hidden < 1 {
		return fmt.Errorf("strategies: bad model dims vocab=%d emb=%d hidden=%d", c.Vocab, c.EmbDim, c.Hidden)
	}
	if c.LR <= 0 {
		return fmt.Errorf("strategies: learning rate must be positive, got %g", c.LR)
	}
	switch c.Optimizer {
	case OptSGD, OptAdam:
	default:
		return fmt.Errorf("strategies: unknown optimizer %q", c.Optimizer)
	}
	if workers <= 0 {
		return fmt.Errorf("strategies: workers must be positive, got %d", workers)
	}
	if c.EmbDim%workers != 0 {
		return fmt.Errorf("strategies: EmbDim %d not divisible by %d workers (column-wise partitioning)", c.EmbDim, workers)
	}
	if c.PSServers < 0 {
		return fmt.Errorf("strategies: negative PSServers %d", c.PSServers)
	}
	if c.InitEmbedding != nil &&
		(c.InitEmbedding.Dims() != 2 || c.InitEmbedding.Dim(0) != c.Vocab || c.InitEmbedding.Dim(1) != c.EmbDim) {
		return fmt.Errorf("strategies: InitEmbedding shape %v != [%d x %d]",
			c.InitEmbedding.Shape(), c.Vocab, c.EmbDim)
	}
	return nil
}

// newInitialModel builds the starting model: seed-derived, with any
// warm-start overrides applied. Every strategy (and the PS servers) uses it
// so all replicas and shards begin identical.
func newInitialModel(cfg Config) *nn.Model {
	m := nn.NewModel(cfg.Seed, cfg.Vocab, cfg.EmbDim, cfg.Hidden)
	if cfg.InitEmbedding != nil {
		copy(m.Emb.Table.Data(), cfg.InitEmbedding.Data())
	}
	for _, p := range m.Trunk.Params() {
		if init, ok := cfg.InitTrunk[p.Name]; ok && init.Len() == p.Tensor.Len() {
			copy(p.Tensor.Data(), init.Data())
		}
	}
	return m
}

// Worker is one rank's strategy instance.
type Worker interface {
	// Strategy returns the strategy name.
	Strategy() Name
	// Step trains on one batch: windows/targets are this rank's training
	// pairs; nextTokens are the token ids of this rank's prefetched next
	// batch (used only by EmbRace's vertical scheduling). Returns the
	// rank-local batch metrics.
	Step(step int, windows [][]int64, targets []int64, nextTokens []int64) (nn.StepStats, error)
	// FullEmbedding returns this rank's view of the complete embedding
	// table. Collective for EmbRace (shards are gathered), local otherwise.
	FullEmbedding() (*tensor.Dense, error)
	// Trunk returns the rank's dense trunk parameters.
	Trunk() *nn.Trunk
}

// Shared holds state that must be created once per world and handed to all
// ranks — the parameter servers of the PS strategies. Collective strategies
// need no shared state beyond the transport.
type Shared struct {
	sparseEmb *ps.ShardedSparse
	denseEmb  *ps.Dense
	trunkSrvs map[string]*ps.Dense
}

// Logical operation names: every collective of a step runs under one of
// these through the Communicator, which allocates collision-free tag ranges
// per (op, step). Several collectives can be in flight concurrently without
// crosstalk, and traffic is attributed per logical op by the metrics
// observer. The trainer and examples reuse the same names so the tag space
// has a single owner.
const (
	// OpTokens gathers every rank's token windows (EmbRace step 1).
	OpTokens = "emb/tokens"
	// OpEmbData is the pooled-activation AlltoAll ("Emb Data", Figure 5).
	OpEmbData = "emb/data"
	// OpEmbGrad is the embedding-gradient exchange — AlltoAll for EmbRace,
	// AllGather/AllReduce for the Horovod baselines.
	OpEmbGrad = "emb/grad"
	// OpEmbDelayed is the background delayed-gradient AlltoAll (§4.2.2).
	OpEmbDelayed = "emb/delayed"
	// OpEmbPrior is the immediate prior-gradient exchange of Algorithm 1's
	// split (used by the sequence trainer, where prior and delayed parts
	// travel as separate AllGathers).
	OpEmbPrior = "emb/prior"
	// OpNextBatch gathers the prefetched next-batch token ids (Algorithm 1).
	OpNextBatch = "emb/next-batch"
	// OpGatherEmb reassembles the full embedding table from column shards;
	// it runs out-of-band via Communicator tickets, not step numbers.
	OpGatherEmb = "emb/gather-table"
	// OpStats gathers per-rank step metrics at rank 0.
	OpStats = "trainer/stats"
)

// OpDense names the dense-gradient AllReduce of one trunk parameter.
func OpDense(param string) string { return "dense/" + param }

// Span names: the phases every worker marks on its per-rank trace.Recorder
// (compute track unless noted). Stable strings, because PhaseSeconds
// aggregates by them and the trace tests assert ordering between them.
// All timing flows through the recorder's injected clock — this package
// stays inside the embracevet determinism analyzer's coverage and never
// reads the wall clock itself.
const (
	// SpanFP / SpanBP are the dense trunk's forward and backward passes;
	// SpanFPBP is the fused step of workers whose model runs both in one
	// call (the data-parallel baselines).
	SpanFP   = "fp"
	SpanBP   = "bp"
	SpanFPBP = "fp+bp"
	// SpanLookup is EmbRace's shard-side embedding lookup plus the
	// assembly of the pooled activations from the AlltoAll'd columns.
	SpanLookup = "emb/lookup"
	// SpanEmbExchange is the blocking embedding-gradient exchange (whole
	// gradient for the baselines and un-scheduled EmbRace).
	SpanEmbExchange = "xchg/emb"
	// SpanPriorExchange / SpanDelayedExchange are Algorithm 1's two
	// exchanges: prior blocks the step loop, delayed runs on its own
	// goroutine and lands on trace.TrackBackground — the overlap §4.2.2
	// claims, now visible.
	SpanPriorExchange   = "xchg/prior"
	SpanDelayedExchange = "xchg/delayed"
	// SpanHarvestDelayed is the wait-and-apply of the previous step's
	// delayed exchange at the top of a step.
	SpanHarvestDelayed = "sched/harvest-delayed"
	// SpanVSplit is the prior/delayed partition of Algorithm 1.
	SpanVSplit = "sched/vsplit"
	// SpanEmbUpdate / SpanPriorUpdate are the embedding optimizer calls.
	SpanEmbUpdate   = "opt/emb"
	SpanPriorUpdate = "opt/prior"
	// SpanPSPush / SpanPSPull are the parameter-server round trips of the
	// PS strategies.
	SpanPSPush = "ps/push"
	SpanPSPull = "ps/pull"
)

// SpanDense names the blocking AllReduce-and-update of one trunk parameter.
func SpanDense(param string) string { return "xchg/dense:" + param }

// WorkerOption configures a strategy worker beyond its Config.
type WorkerOption func(*workerExtras)

// workerExtras holds the per-rank extras threaded into workers.
type workerExtras struct {
	rec      *trace.Recorder
	embShard *tensor.Dense
}

// WithRecorder threads a per-rank span recorder through the worker: every
// step phase (FP/BP, embedding exchanges, prior/delayed scheduling, PS
// round trips) is marked on it. A nil recorder disables tracing at the
// cost of one pointer compare per phase.
func WithRecorder(rec *trace.Recorder) WorkerOption {
	return func(e *workerExtras) { e.rec = rec }
}

// WithEmbShard hands an EmbRace worker its [vocab x EmbDim/N] embedding
// column shard directly instead of slicing it out of the full (seed-derived
// or InitEmbedding) table — the per-rank warm start of an elastic world
// rebuild, where each survivor restores exactly its new columns from the
// last checkpoint without any rank materializing the full table. The shard
// is copied, never aliased, so the caller's tensor (typically a checkpoint
// slice shared across ranks) stays untouched by training. Rejected by
// non-EmbRace strategies, which have no column shards.
func WithEmbShard(shard *tensor.Dense) WorkerOption {
	return func(e *workerExtras) { e.embShard = shard }
}

// newOptimizer binds the configured optimizer kind to a parameter.
func newOptimizer(cfg Config, param *tensor.Dense) optim.Optimizer {
	switch cfg.Optimizer {
	case OptAdam:
		return optim.NewAdamDefault(param, cfg.LR)
	default:
		return optim.NewSGD(param, cfg.LR)
	}
}

// trunkOptimizers builds one optimizer per trunk parameter.
func trunkOptimizers(cfg Config, t *nn.Trunk) map[string]optim.Optimizer {
	out := make(map[string]optim.Optimizer, 4)
	for _, p := range t.Params() {
		out[p.Name] = newOptimizer(cfg, p.Tensor)
	}
	return out
}

// NewShared creates the shared (server-side) state a strategy needs for a
// world of `workers` ranks. The returned Shared is passed to every
// NewWorker call of the job.
func NewShared(name Name, cfg Config, workers int) (*Shared, error) {
	if err := cfg.Validate(workers); err != nil {
		return nil, err
	}
	servers := cfg.PSServers
	if servers == 0 {
		servers = 1
	}
	sh := &Shared{}
	switch name {
	case Parallax:
		// The servers own the authoritative embedding, row-sharded across
		// S concurrent shards, seeded identically to the workers' replicas.
		m := newInitialModel(cfg)
		srv, err := ps.NewShardedSparse(m.Emb.Table,
			func(p *tensor.Dense) optim.Optimizer { return newOptimizer(cfg, p) },
			workers, servers)
		if err != nil {
			return nil, err
		}
		sh.sparseEmb = srv
	case BytePS:
		m := newInitialModel(cfg)
		srv, err := ps.NewDense(m.Emb.Table, newOptimizer(cfg, m.Emb.Table), workers)
		if err != nil {
			return nil, err
		}
		sh.denseEmb = srv
		sh.trunkSrvs = make(map[string]*ps.Dense, 4)
		for _, p := range m.Trunk.Params() {
			ds, err := ps.NewDense(p.Tensor, newOptimizer(cfg, p.Tensor), workers)
			if err != nil {
				return nil, err
			}
			sh.trunkSrvs[p.Name] = ds
		}
	case HorovodAllReduce, HorovodAllGather, EmbRace:
		// No server-side state.
	default:
		return nil, fmt.Errorf("strategies: unknown strategy %q", name)
	}
	return sh, nil
}

// NewWorker creates rank `cm.Rank()`'s worker for the named strategy. All
// collectives of the worker run through cm, which owns tag allocation (and,
// when configured, chunked pipelining and per-op traffic attribution).
// Options thread per-rank extras — a trace.Recorder via WithRecorder — that
// cannot live in the job-wide Config.
func NewWorker(name Name, cm *collective.Communicator, cfg Config, sh *Shared, opts ...WorkerOption) (Worker, error) {
	if err := cfg.Validate(cm.Size()); err != nil {
		return nil, err
	}
	if sh == nil {
		sh = &Shared{}
	}
	var extras workerExtras
	for _, o := range opts {
		o(&extras)
	}
	rec := extras.rec
	if extras.embShard != nil {
		if name != EmbRace {
			return nil, fmt.Errorf("strategies: WithEmbShard applies only to embrace, not %s", name)
		}
		want := cfg.EmbDim / cm.Size()
		if extras.embShard.Dims() != 2 || extras.embShard.Dim(0) != cfg.Vocab || extras.embShard.Dim(1) != want {
			return nil, fmt.Errorf("strategies: WithEmbShard shape %v != [%d x %d]",
				extras.embShard.Shape(), cfg.Vocab, want)
		}
	}
	switch name {
	case HorovodAllReduce:
		return newAllReduceWorker(cm, cfg, rec), nil
	case HorovodAllGather:
		return newAllGatherWorker(cm, cfg, rec), nil
	case Parallax:
		if sh.sparseEmb == nil {
			return nil, fmt.Errorf("strategies: parallax needs shared sparse PS state")
		}
		return newParallaxWorker(cm, cfg, sh.sparseEmb, rec), nil
	case BytePS:
		if sh.denseEmb == nil || sh.trunkSrvs == nil {
			return nil, fmt.Errorf("strategies: byteps needs shared dense PS state")
		}
		return newBytePSWorker(cm, cfg, sh, rec), nil
	case EmbRace:
		return newEmbRaceWorker(cm, cfg, rec, extras.embShard), nil
	default:
		return nil, fmt.Errorf("strategies: unknown strategy %q", name)
	}
}
