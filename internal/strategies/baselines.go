package strategies

import (
	"fmt"

	"embrace/internal/collective"
	"embrace/internal/nn"
	"embrace/internal/optim"
	"embrace/internal/ps"
	"embrace/internal/tensor"
	"embrace/internal/trace"
)

// replicaWorker is the shared core of the data-parallel baselines: a full
// model replica per rank plus worker-side optimizers. Only the gradient
// exchange differs between them.
type replicaWorker struct {
	cm        *collective.Communicator
	cfg       Config
	rec       *trace.Recorder // per-rank span recorder; nil disables tracing
	model     *nn.Model
	trunkOpts map[string]optim.Optimizer
	embOpt    optim.Optimizer
}

func newReplicaWorker(cm *collective.Communicator, cfg Config, rec *trace.Recorder) *replicaWorker {
	m := newInitialModel(cfg)
	return &replicaWorker{
		cm:        cm,
		cfg:       cfg,
		rec:       rec,
		model:     m,
		trunkOpts: trunkOptimizers(cfg, m.Trunk),
		embOpt:    newOptimizer(cfg, m.Emb.Table),
	}
}

// modelStep runs the replica's fused forward/backward under a span.
func (w *replicaWorker) modelStep(step int, windows [][]int64, targets []int64) (nn.StepStats, *tensor.Sparse, *nn.TrunkGrads, error) {
	sp := w.rec.Begin(trace.TrackCompute, SpanFPBP, step)
	stats, embGrad, grads, err := w.model.Step(windows, targets)
	sp.End()
	return stats, embGrad, grads, err
}

func (w *replicaWorker) Trunk() *nn.Trunk { return w.model.Trunk }

func (w *replicaWorker) FullEmbedding() (*tensor.Dense, error) {
	return w.model.Emb.Table, nil
}

// allReduceTrunk sums the trunk gradients across ranks in place and applies
// them, the dense path every baseline except BytePS shares. Each block's
// exchange-and-update is one span, so the per-block AllReduce cadence of
// §4.2.1 is visible on the timeline.
func (w *replicaWorker) allReduceTrunk(step int, grads *nn.TrunkGrads) error {
	for _, g := range grads.Dense() {
		sp := w.rec.Begin(trace.TrackCompute, SpanDense(g.Name), step)
		if err := w.cm.AllReduce(OpDense(g.Name), step, g.Tensor.Data()); err != nil {
			return fmt.Errorf("trunk %s: %w", g.Name, err)
		}
		if err := w.trunkOpts[g.Name].StepDense(g.Tensor); err != nil {
			return fmt.Errorf("trunk %s update: %w", g.Name, err)
		}
		sp.End()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Horovod AllReduce: sparse treated as dense (§5.2.3 baseline ii).
// ---------------------------------------------------------------------------

type allReduceWorker struct {
	*replicaWorker
}

func newAllReduceWorker(cm *collective.Communicator, cfg Config, rec *trace.Recorder) *allReduceWorker {
	return &allReduceWorker{newReplicaWorker(cm, cfg, rec)}
}

func (w *allReduceWorker) Strategy() Name { return HorovodAllReduce }

func (w *allReduceWorker) Step(step int, windows [][]int64, targets []int64, _ []int64) (nn.StepStats, error) {
	stats, embGrad, grads, err := w.modelStep(step, windows, targets)
	if err != nil {
		return nn.StepStats{}, err
	}
	// The embedding gradient is scattered to dense format and AllReduced
	// whole — zeros included, the waste Figure 1(a) illustrates.
	sp := w.rec.Begin(trace.TrackCompute, SpanEmbExchange, step)
	dense := embGrad.ToDense()
	if err := w.cm.AllReduce(OpEmbGrad, step, dense.Data()); err != nil {
		return nn.StepStats{}, fmt.Errorf("embedding allreduce: %w", err)
	}
	sp.End()
	sp = w.rec.Begin(trace.TrackCompute, SpanEmbUpdate, step)
	if err := w.embOpt.StepDense(dense); err != nil {
		return nn.StepStats{}, fmt.Errorf("embedding update: %w", err)
	}
	sp.End()
	if err := w.allReduceTrunk(step, grads); err != nil {
		return nn.StepStats{}, err
	}
	return stats, nil
}

// ---------------------------------------------------------------------------
// Horovod AllGather: sparse embedding gradients, dense AllReduce
// (§5.2.3 baseline iii).
// ---------------------------------------------------------------------------

type allGatherWorker struct {
	*replicaWorker
}

func newAllGatherWorker(cm *collective.Communicator, cfg Config, rec *trace.Recorder) *allGatherWorker {
	return &allGatherWorker{newReplicaWorker(cm, cfg, rec)}
}

func (w *allGatherWorker) Strategy() Name { return HorovodAllGather }

func (w *allGatherWorker) Step(step int, windows [][]int64, targets []int64, _ []int64) (nn.StepStats, error) {
	stats, embGrad, grads, err := w.modelStep(step, windows, targets)
	if err != nil {
		return nn.StepStats{}, err
	}
	sp := w.rec.Begin(trace.TrackCompute, SpanEmbExchange, step)
	merged, err := w.cm.SparseAllGather(OpEmbGrad, step, embGrad)
	if err != nil {
		return nn.StepStats{}, fmt.Errorf("embedding allgather: %w", err)
	}
	sp.End()
	sp = w.rec.Begin(trace.TrackCompute, SpanEmbUpdate, step)
	if err := w.embOpt.StepSparse(merged); err != nil {
		return nn.StepStats{}, fmt.Errorf("embedding update: %w", err)
	}
	sp.End()
	if err := w.allReduceTrunk(step, grads); err != nil {
		return nn.StepStats{}, err
	}
	return stats, nil
}

// ---------------------------------------------------------------------------
// Parallax: sparse PS for embeddings + AllReduce for dense
// (§5.2.3 baseline iv).
// ---------------------------------------------------------------------------

type parallaxWorker struct {
	*replicaWorker
	srv *ps.ShardedSparse

	// Steady-state scratch: the batch's unique-row working set, the pulled
	// rows, and the push-side bucketing buffers, all reused across steps.
	need   []int64
	pulled tensor.Sparse
	push   ps.PushScratch
}

func newParallaxWorker(cm *collective.Communicator, cfg Config, srv *ps.ShardedSparse, rec *trace.Recorder) *parallaxWorker {
	return &parallaxWorker{replicaWorker: newReplicaWorker(cm, cfg, rec), srv: srv}
}

func (w *parallaxWorker) Strategy() Name { return Parallax }

func (w *parallaxWorker) Step(step int, windows [][]int64, targets []int64, _ []int64) (nn.StepStats, error) {
	// Pull the authoritative values of exactly the rows this batch reads —
	// the frequent GPU<->server row traffic §5.3 blames for Parallax's
	// memory-copy overhead.
	sp := w.rec.Begin(trace.TrackCompute, SpanPSPull, step)
	w.need = w.need[:0]
	for _, win := range windows {
		w.need = append(w.need, win...)
	}
	tensor.SortInt64(w.need)
	w.need = tensor.UniqueSorted(w.need)
	if err := w.srv.PullRowsInto(w.need, &w.pulled); err != nil {
		return nn.StepStats{}, fmt.Errorf("embedding pull: %w", err)
	}
	for i, ix := range w.pulled.Indices {
		copy(w.model.Emb.Table.Row(int(ix)), w.pulled.Row(i))
	}
	sp.End()

	stats, embGrad, grads, err := w.modelStep(step, windows, targets)
	if err != nil {
		return nn.StepStats{}, err
	}
	sp = w.rec.Begin(trace.TrackCompute, SpanPSPush, step)
	if err := w.srv.PushAndWaitWith(embGrad, &w.push); err != nil {
		return nn.StepStats{}, fmt.Errorf("embedding push: %w", err)
	}
	sp.End()
	if err := w.allReduceTrunk(step, grads); err != nil {
		return nn.StepStats{}, err
	}
	return stats, nil
}

func (w *parallaxWorker) FullEmbedding() (*tensor.Dense, error) {
	dst := tensor.NewDense(w.cfg.Vocab, w.cfg.EmbDim)
	if err := w.srv.PullAll(dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// ---------------------------------------------------------------------------
// BytePS: everything through dense parameter servers (§5.2.3 baseline i).
// ---------------------------------------------------------------------------

type bytePSWorker struct {
	*replicaWorker
	embSrv    *ps.Dense
	trunkSrvs map[string]*ps.Dense
}

func newBytePSWorker(cm *collective.Communicator, cfg Config, sh *Shared, rec *trace.Recorder) *bytePSWorker {
	return &bytePSWorker{
		replicaWorker: newReplicaWorker(cm, cfg, rec),
		embSrv:        sh.denseEmb,
		trunkSrvs:     sh.trunkSrvs,
	}
}

func (w *bytePSWorker) Strategy() Name { return BytePS }

func (w *bytePSWorker) Step(step int, windows [][]int64, targets []int64, _ []int64) (nn.StepStats, error) {
	stats, embGrad, grads, err := w.modelStep(step, windows, targets)
	if err != nil {
		return nn.StepStats{}, err
	}
	// BytePS treats the sparse gradient as dense (§5.2.3).
	sp := w.rec.Begin(trace.TrackCompute, SpanPSPush, step)
	if err := w.embSrv.PushAndWait(embGrad.ToDense()); err != nil {
		return nn.StepStats{}, fmt.Errorf("embedding push: %w", err)
	}
	for _, g := range grads.Dense() {
		srv := w.trunkSrvs[g.Name]
		if err := srv.PushAndWait(g.Tensor); err != nil {
			return nn.StepStats{}, fmt.Errorf("trunk %s push: %w", g.Name, err)
		}
	}
	sp.End()
	sp = w.rec.Begin(trace.TrackCompute, SpanPSPull, step)
	if err := w.embSrv.Pull(w.model.Emb.Table); err != nil {
		return nn.StepStats{}, fmt.Errorf("embedding pull: %w", err)
	}
	for _, p := range w.model.Trunk.Params() {
		if err := w.trunkSrvs[p.Name].Pull(p.Tensor); err != nil {
			return nn.StepStats{}, fmt.Errorf("trunk %s pull: %w", p.Name, err)
		}
	}
	sp.End()
	return stats, nil
}

func (w *bytePSWorker) FullEmbedding() (*tensor.Dense, error) {
	dst := tensor.NewDense(w.cfg.Vocab, w.cfg.EmbDim)
	if err := w.embSrv.Pull(dst); err != nil {
		return nil, err
	}
	return dst, nil
}
