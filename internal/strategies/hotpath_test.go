package strategies

import (
	"math"
	"sync"
	"testing"

	"embrace/internal/collective"
	"embrace/internal/comm"
	"embrace/internal/tensor"
)

// batchFor builds rank r's deterministic batch for step s: two windows and
// their targets, all derived arithmetically so every world size and chaos
// seed sees the same data.
func batchFor(r, s, vocab int) ([][]int64, []int64) {
	v := int64(vocab)
	base := int64(r*7+s*13) % v
	windows := [][]int64{
		{base, (base + 3) % v, (base + 5) % v, (base + 5) % v},
		{(base + 1) % v, (base + 8) % v, (base + 2) % v},
	}
	targets := []int64{(base + 2) % v, (base + 11) % v}
	return windows, targets
}

func flatten(windows [][]int64) []int64 {
	var out []int64
	for _, w := range windows {
		out = append(out, w...)
	}
	return out
}

// runEmbRaceTraining drives `steps` EmbRace steps on every rank of an n-rank
// world under the given runner and returns the per-rank loss history plus
// rank 0's final gathered embedding table.
func runEmbRaceTraining(t *testing.T, n, steps int, cfg Config, run func(int, func(comm.Transport) error) error) ([][]float64, *tensor.Dense) {
	t.Helper()
	losses := make([][]float64, n)
	var emb *tensor.Dense
	var mu sync.Mutex
	err := run(n, func(tr comm.Transport) error {
		r := tr.Rank()
		w, err := NewWorker(EmbRace, collective.NewCommunicator(tr), cfg, nil)
		if err != nil {
			return err
		}
		hist := make([]float64, 0, steps)
		for s := 0; s < steps; s++ {
			windows, targets := batchFor(r, s, cfg.Vocab)
			nextWindows, _ := batchFor(r, s+1, cfg.Vocab)
			stats, err := w.Step(s, windows, targets, flatten(nextWindows))
			if err != nil {
				return err
			}
			hist = append(hist, stats.Loss)
		}
		full, err := w.FullEmbedding()
		if err != nil {
			return err
		}
		mu.Lock()
		losses[r] = hist
		if r == 0 {
			emb = full
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return losses, emb
}

// The rebuilt hot path (arena exchange, self-send elision, reused scratch)
// must be invisible to training: under every maskable chaos plan, every world
// size trains bit-identically to a fault-free world. Adam + Sched2D is the
// deepest path — split updates, the modified step counter, and the background
// delayed exchange all in play.
func TestEmbRaceChaosTrainingEquivalenceAcrossWorldSizes(t *testing.T) {
	const steps = 4
	cfg := Config{
		Seed: 3, Vocab: 36, EmbDim: 24, Hidden: 4,
		Optimizer: OptAdam, LR: 0.05, Sched: Sched2D, PSServers: 1,
	}
	for _, n := range []int{2, 3, 4, 8} {
		wantLosses, wantEmb := runEmbRaceTraining(t, n, steps, cfg, comm.RunRanks)
		for seed := int64(1); seed <= 3; seed++ {
			run := func(n int, fn func(comm.Transport) error) error {
				return comm.RunRanksChaos(n, comm.MaskableChaosPlan(seed), fn)
			}
			gotLosses, gotEmb := runEmbRaceTraining(t, n, steps, cfg, run)
			for r := 0; r < n; r++ {
				for s := 0; s < steps; s++ {
					if math.Float64bits(gotLosses[r][s]) != math.Float64bits(wantLosses[r][s]) {
						t.Fatalf("n=%d seed=%d rank=%d step=%d: loss %v under chaos, %v clean",
							n, seed, r, s, gotLosses[r][s], wantLosses[r][s])
					}
				}
			}
			wd, gd := wantEmb.Data(), gotEmb.Data()
			for i := range wd {
				if math.Float32bits(wd[i]) != math.Float32bits(gd[i]) {
					t.Fatalf("n=%d seed=%d: embedding diverged at element %d: %v vs %v",
						n, seed, i, gd[i], wd[i])
				}
			}
		}
	}
}

// measureStepAllocs runs a single-rank EmbRace world, warms the scratch
// buffers up, and returns the steady-state allocations per Step call.
func measureStepAllocs(t *testing.T, cfg Config) float64 {
	t.Helper()
	var got float64
	err := comm.RunRanks(1, func(tr comm.Transport) error {
		w, err := NewWorker(EmbRace, collective.NewCommunicator(tr), cfg, nil)
		if err != nil {
			return err
		}
		step := 0
		do := func() {
			windows, targets := batchFor(0, step, cfg.Vocab)
			nextWindows, _ := batchFor(0, step+1, cfg.Vocab)
			if _, err := w.Step(step, windows, targets, flatten(nextWindows)); err != nil {
				panic(err)
			}
			step++
		}
		for i := 0; i < 3; i++ { // grow every buffer to its high-water mark
			do()
		}
		got = testing.AllocsPerRun(30, do)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// Steady-state alloc budgets for a full EmbRace step. The sparse hot path —
// gradient build, column packing, split, exchange, coalesce, update — now
// allocates nothing; what remains is the step's fixed overhead (collective
// out-slices, trunk gradient tensors, the per-step background goroutine and
// its join channel). The budgets are regression tripwires a little above the
// measured counts: reintroducing even one per-row or per-shard allocation in
// the sparse path shows up as tens of allocations and trips them.
func TestEmbRaceStepSteadyStateAllocBudget(t *testing.T) {
	base := Config{
		Seed: 3, Vocab: 36, EmbDim: 8, Hidden: 4,
		Optimizer: OptAdam, LR: 0.05, PSServers: 1,
	}
	noSched := base
	if got := measureStepAllocs(t, noSched); got > 80 {
		t.Errorf("no-sched steady-state step makes %v allocations, budget 80", got)
	}
	sched := base
	sched.Sched = Sched2D
	if got := measureStepAllocs(t, sched); got > 90 {
		t.Errorf("sched2d steady-state step makes %v allocations, budget 90", got)
	}
}
