package strategies

import (
	"math"
	"runtime/debug"
	"sync"
	"testing"

	"embrace/internal/collective"
	"embrace/internal/comm"
	"embrace/internal/compress"
)

// assertTrainingEqual compares two runEmbRaceTraining outcomes bit for bit —
// every rank's loss history and the rank-0 full embedding.
func assertTrainingEqual(t *testing.T, label string, wantLosses, gotLosses [][]float64, wantEmb, gotEmb interface{ Data() []float32 }) {
	t.Helper()
	for r := range wantLosses {
		for s := range wantLosses[r] {
			if math.Float64bits(gotLosses[r][s]) != math.Float64bits(wantLosses[r][s]) {
				t.Fatalf("%s: rank=%d step=%d: loss %v vs %v", label, r, s, gotLosses[r][s], wantLosses[r][s])
			}
		}
	}
	wd, gd := wantEmb.Data(), gotEmb.Data()
	for i := range wd {
		if math.Float32bits(wd[i]) != math.Float32bits(gd[i]) {
			t.Fatalf("%s: embedding diverged at element %d: %v vs %v", label, i, gd[i], wd[i])
		}
	}
}

// Lossless compression extends the chaos equivalence matrix: with the
// delta-varint codec on both the prior and the delayed exchanges, training
// stays bit-identical to the uncompressed fault-free reference — clean and
// under every maskable chaos plan, across world sizes.
func TestEmbRaceCompressedTrainingEquivalenceAcrossWorldSizes(t *testing.T) {
	const steps = 4
	cfg := Config{
		Seed: 3, Vocab: 36, EmbDim: 24, Hidden: 4,
		Optimizer: OptAdam, LR: 0.05, Sched: Sched2D, PSServers: 1,
	}
	compressed := cfg
	compressed.Codec = compress.DeltaRaw{}
	for _, n := range []int{2, 3, 4, 8} {
		wantLosses, wantEmb := runEmbRaceTraining(t, n, steps, cfg, comm.RunRanks)
		gotLosses, gotEmb := runEmbRaceTraining(t, n, steps, compressed, comm.RunRanks)
		assertTrainingEqual(t, "lossless clean", wantLosses, gotLosses, wantEmb, gotEmb)
		for seed := int64(1); seed <= 3; seed++ {
			run := func(n int, fn func(comm.Transport) error) error {
				return comm.RunRanksChaos(n, comm.MaskableChaosPlan(seed), fn)
			}
			gotLosses, gotEmb := runEmbRaceTraining(t, n, steps, compressed, run)
			assertTrainingEqual(t, "lossless chaos", wantLosses, gotLosses, wantEmb, gotEmb)
		}
	}
}

// Lossy compression is deterministic: the quantization grid depends only on
// the configured bounds and the data, so a chaotic fabric reproduces the
// fault-free lossy run bit for bit.
func TestEmbRaceLossyCompressedDeterministicUnderChaos(t *testing.T) {
	const steps, n = 4, 4
	q, err := compress.NewDualQuant(1e-4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Seed: 3, Vocab: 36, EmbDim: 24, Hidden: 4,
		Optimizer: OptAdam, LR: 0.05, Sched: Sched2D, PSServers: 1,
		Codec: q,
	}
	wantLosses, wantEmb := runEmbRaceTraining(t, n, steps, cfg, comm.RunRanks)
	for seed := int64(1); seed <= 3; seed++ {
		run := func(n int, fn func(comm.Transport) error) error {
			return comm.RunRanksChaos(n, comm.MaskableChaosPlan(seed), fn)
		}
		gotLosses, gotEmb := runEmbRaceTraining(t, n, steps, cfg, run)
		assertTrainingEqual(t, "lossy chaos vs lossy clean", wantLosses, gotLosses, wantEmb, gotEmb)
	}
}

// measureTwoRankStepAllocs is the two-rank sibling of measureStepAllocs:
// single-rank worlds elide every send, so only a real multi-rank world
// pushes shards through the codec. Rank 1 runs the exact call count
// AllocsPerRun issues on rank 0 (one warm-up plus the measured runs) to stay
// in lockstep; GC is parked so sync.Pool contents survive the measurement.
func measureTwoRankStepAllocs(t *testing.T, cfg Config) float64 {
	t.Helper()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const warm, runs = 3, 30
	var got float64
	var mu sync.Mutex
	err := comm.RunRanks(2, func(tr comm.Transport) error {
		r := tr.Rank()
		w, err := NewWorker(EmbRace, collective.NewCommunicator(tr), cfg, nil)
		if err != nil {
			return err
		}
		step := 0
		do := func() {
			windows, targets := batchFor(r, step, cfg.Vocab)
			nextWindows, _ := batchFor(r, step+1, cfg.Vocab)
			if _, err := w.Step(step, windows, targets, flatten(nextWindows)); err != nil {
				panic(err)
			}
			step++
		}
		for i := 0; i < warm; i++ {
			do()
		}
		if r == 0 {
			n := testing.AllocsPerRun(runs, do)
			mu.Lock()
			got = n
			mu.Unlock()
			return nil
		}
		for i := 0; i < 1+runs; i++ {
			do()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// The codec path must hold the steady-state allocation line: a compressed
// two-rank step allocates no more than the uncompressed step it replaces
// (it ships one pooled byte payload per peer where raw ships two slices).
func TestEmbRaceCompressedStepAllocParity(t *testing.T) {
	base := Config{
		Seed: 3, Vocab: 36, EmbDim: 8, Hidden: 4,
		Optimizer: OptAdam, LR: 0.05, Sched: Sched2D, PSServers: 1,
	}
	raw := measureTwoRankStepAllocs(t, base)
	q, err := compress.NewDualQuant(1e-4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		codec collective.SparseCodec
	}{{"delta-raw", compress.DeltaRaw{}}, {"dualq", q}} {
		cfg := base
		cfg.Codec = tc.codec
		got := measureTwoRankStepAllocs(t, cfg)
		if got > raw {
			t.Errorf("%s: compressed step makes %v allocs, raw step %v — codec path must not regress", tc.name, got, raw)
		} else {
			t.Logf("%s: %v allocs/step (raw %v)", tc.name, got, raw)
		}
	}
}
