package strategies

import (
	"sync"
	"testing"

	"embrace/internal/collective"
	"embrace/internal/comm"
)

func validConfig() Config {
	return Config{
		Seed:      1,
		Vocab:     30,
		EmbDim:    8,
		Hidden:    4,
		Optimizer: OptSGD,
		LR:        0.1,
		PSServers: 1,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := validConfig().Validate(4); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		mutate  func(*Config)
		workers int
	}{
		{func(c *Config) { c.Vocab = 1 }, 4},
		{func(c *Config) { c.EmbDim = 0 }, 4},
		{func(c *Config) { c.Hidden = 0 }, 4},
		{func(c *Config) { c.LR = 0 }, 4},
		{func(c *Config) { c.Optimizer = "rmsprop" }, 4},
		{func(c *Config) {}, 0},
		{func(c *Config) { c.EmbDim = 10 }, 4}, // not divisible
		{func(c *Config) { c.PSServers = -1 }, 4},
	}
	for i, tc := range cases {
		c := validConfig()
		tc.mutate(&c)
		if err := c.Validate(tc.workers); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestAllNamesCoverFiveStrategies(t *testing.T) {
	names := AllNames()
	if len(names) != 5 {
		t.Fatalf("%d strategies", len(names))
	}
	seen := map[Name]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []Name{BytePS, HorovodAllReduce, HorovodAllGather, Parallax, EmbRace} {
		if !seen[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestNewSharedPerStrategy(t *testing.T) {
	cfg := validConfig()
	for _, name := range AllNames() {
		sh, err := NewShared(name, cfg, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		switch name {
		case Parallax:
			if sh.sparseEmb == nil {
				t.Fatal("parallax needs a sparse server")
			}
		case BytePS:
			if sh.denseEmb == nil || len(sh.trunkSrvs) != 4 {
				t.Fatal("byteps needs dense servers")
			}
		default:
			if sh.sparseEmb != nil || sh.denseEmb != nil {
				t.Fatalf("%s should have no server state", name)
			}
		}
	}
	if _, err := NewShared("nope", cfg, 4); err == nil {
		t.Fatal("expected unknown-strategy error")
	}
	bad := cfg
	bad.EmbDim = 9
	if _, err := NewShared(EmbRace, bad, 4); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestNewWorkerValidation(t *testing.T) {
	cfg := validConfig()
	err := comm.RunRanks(2, func(tr comm.Transport) error {
		if _, err := NewWorker("nope", collective.NewCommunicator(tr), cfg, nil); err == nil {
			t.Error("expected unknown-strategy error")
		}
		// PS strategies need their shared state.
		if _, err := NewWorker(Parallax, collective.NewCommunicator(tr), cfg, nil); err == nil {
			t.Error("parallax must demand shared state")
		}
		if _, err := NewWorker(BytePS, collective.NewCommunicator(tr), cfg, &Shared{}); err == nil {
			t.Error("byteps must demand shared state")
		}
		// Collective strategies tolerate nil shared state.
		if _, err := NewWorker(HorovodAllGather, collective.NewCommunicator(tr), cfg, nil); err != nil {
			t.Errorf("allgather: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Drive a single EmbRace step directly (without the trainer) and verify the
// assembled pooled activations equal a locally computed full-model lookup.
func TestEmbRaceStepMatchesLocalModel(t *testing.T) {
	cfg := validConfig()
	const workers = 4
	windows := map[int][][]int64{
		0: {{1, 2, 3, 4}},
		1: {{5, 6, 7, 8}},
		2: {{9, 9, 1, 2}},
		3: {{3, 3, 3, 3}},
	}
	targets := map[int][]int64{0: {5}, 1: {9}, 2: {4}, 3: {7}}

	losses := make([]float64, workers)
	var mu sync.Mutex
	err := comm.RunRanks(workers, func(tr comm.Transport) error {
		w, err := NewWorker(EmbRace, collective.NewCommunicator(tr), cfg, nil)
		if err != nil {
			return err
		}
		stats, err := w.Step(0, windows[tr.Rank()], targets[tr.Rank()], []int64{1})
		if err != nil {
			return err
		}
		mu.Lock()
		losses[tr.Rank()] = stats.Loss
		mu.Unlock()
		_, err = w.FullEmbedding() // collective; keeps ranks aligned
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	// Each rank's loss must equal the loss a single-process model computes
	// on that rank's batch from the same seed (the AlltoAll lookup is just
	// a distributed implementation of the same forward pass).
	for r := 0; r < workers; r++ {
		err := comm.RunRanks(1, func(tr comm.Transport) error {
			w, err := NewWorker(HorovodAllGather, collective.NewCommunicator(tr), Config{
				Seed: cfg.Seed, Vocab: cfg.Vocab, EmbDim: cfg.EmbDim, Hidden: cfg.Hidden,
				Optimizer: OptSGD, LR: cfg.LR, PSServers: 1,
			}, nil)
			if err != nil {
				return err
			}
			stats, err := w.Step(0, windows[r], targets[r], nil)
			if err != nil {
				return err
			}
			if diff := stats.Loss - losses[r]; diff > 1e-5 || diff < -1e-5 {
				t.Errorf("rank %d: embrace loss %v vs local %v", r, losses[r], stats.Loss)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestWorkerStrategyNames(t *testing.T) {
	cfg := validConfig()
	for _, name := range AllNames() {
		sh, err := NewShared(name, cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		err = comm.RunRanks(2, func(tr comm.Transport) error {
			w, err := NewWorker(name, collective.NewCommunicator(tr), cfg, sh)
			if err != nil {
				return err
			}
			if w.Strategy() != name {
				t.Errorf("Strategy() = %s, want %s", w.Strategy(), name)
			}
			if w.Trunk() == nil {
				t.Error("nil trunk")
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestNoTagCollisionsAcrossStrategies(t *testing.T) {
	// Run every strategy for 3 real steps over shared per-rank Communicators
	// (EmbRace with 2D scheduling, so the background delayed exchange and the
	// out-of-band FullEmbedding ticket both register their ops), then verify
	// that every (op, step) pair the run touched maps to a distinct tag.
	// This is the regression test for the old hand-numbered tag spaces,
	// where an out-of-band gather reused step arithmetic (tag(1<<20, ...))
	// and could collide with a long enough training run.
	const workers, steps = 2, 3
	cfg := validConfig()
	cfg.Sched = Sched2D
	cms := make([]*collective.Communicator, workers)
	windows := [][][]int64{{{1, 2, 3, 4}}, {{5, 6, 7, 8}}}
	targets := [][]int64{{5}, {9}}

	for _, name := range AllNames() {
		sh, err := NewShared(name, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		err = comm.RunRanks(workers, func(tr comm.Transport) error {
			r := tr.Rank()
			if cms[r] == nil {
				cms[r] = collective.NewCommunicator(tr)
			}
			// Communicators carry no transport-topology state beyond the
			// rank, so reusing the tag table across worlds is safe here and
			// is exactly what accumulates all strategies' ops into one space.
			cm := collective.NewCommunicator(tr)
			w, err := NewWorker(name, cm, cfg, sh)
			if err != nil {
				return err
			}
			for s := 0; s < steps; s++ {
				if _, err := w.Step(s, windows[r], targets[r], []int64{1, 2}); err != nil {
					return err
				}
				// Mirror the ops into the shared per-rank communicator.
				for _, op := range cm.Ops() {
					if _, err := cms[r].Tag(op, s); err != nil {
						return err
					}
				}
			}
			_, err = w.FullEmbedding()
			return err
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	for r, cm := range cms {
		ops := cm.Ops()
		if len(ops) == 0 {
			t.Fatalf("rank %d registered no ops", r)
		}
		seen := map[int]string{}
		for _, op := range ops {
			for s := 0; s <= steps; s++ { // steps plus one ticket's worth
				tg, err := cm.Tag(op, s)
				if err != nil {
					t.Fatal(err)
				}
				key := op + "@" + string(rune('0'+s))
				if prev, ok := seen[tg]; ok {
					t.Fatalf("rank %d: tag %d shared by %s and %s", r, tg, prev, key)
				}
				seen[tg] = key
			}
		}
	}
}
