package strategies

import (
	"sync"
	"testing"

	"embrace/internal/comm"
)

func validConfig() Config {
	return Config{
		Seed:      1,
		Vocab:     30,
		EmbDim:    8,
		Hidden:    4,
		Optimizer: OptSGD,
		LR:        0.1,
		PSServers: 1,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := validConfig().Validate(4); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		mutate  func(*Config)
		workers int
	}{
		{func(c *Config) { c.Vocab = 1 }, 4},
		{func(c *Config) { c.EmbDim = 0 }, 4},
		{func(c *Config) { c.Hidden = 0 }, 4},
		{func(c *Config) { c.LR = 0 }, 4},
		{func(c *Config) { c.Optimizer = "rmsprop" }, 4},
		{func(c *Config) {}, 0},
		{func(c *Config) { c.EmbDim = 10 }, 4}, // not divisible
		{func(c *Config) { c.PSServers = -1 }, 4},
	}
	for i, tc := range cases {
		c := validConfig()
		tc.mutate(&c)
		if err := c.Validate(tc.workers); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestAllNamesCoverFiveStrategies(t *testing.T) {
	names := AllNames()
	if len(names) != 5 {
		t.Fatalf("%d strategies", len(names))
	}
	seen := map[Name]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []Name{BytePS, HorovodAllReduce, HorovodAllGather, Parallax, EmbRace} {
		if !seen[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestNewSharedPerStrategy(t *testing.T) {
	cfg := validConfig()
	for _, name := range AllNames() {
		sh, err := NewShared(name, cfg, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		switch name {
		case Parallax:
			if sh.sparseEmb == nil {
				t.Fatal("parallax needs a sparse server")
			}
		case BytePS:
			if sh.denseEmb == nil || len(sh.trunkSrvs) != 4 {
				t.Fatal("byteps needs dense servers")
			}
		default:
			if sh.sparseEmb != nil || sh.denseEmb != nil {
				t.Fatalf("%s should have no server state", name)
			}
		}
	}
	if _, err := NewShared("nope", cfg, 4); err == nil {
		t.Fatal("expected unknown-strategy error")
	}
	bad := cfg
	bad.EmbDim = 9
	if _, err := NewShared(EmbRace, bad, 4); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestNewWorkerValidation(t *testing.T) {
	cfg := validConfig()
	err := comm.RunRanks(2, func(tr comm.Transport) error {
		if _, err := NewWorker("nope", tr, cfg, nil); err == nil {
			t.Error("expected unknown-strategy error")
		}
		// PS strategies need their shared state.
		if _, err := NewWorker(Parallax, tr, cfg, nil); err == nil {
			t.Error("parallax must demand shared state")
		}
		if _, err := NewWorker(BytePS, tr, cfg, &Shared{}); err == nil {
			t.Error("byteps must demand shared state")
		}
		// Collective strategies tolerate nil shared state.
		if _, err := NewWorker(HorovodAllGather, tr, cfg, nil); err != nil {
			t.Errorf("allgather: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Drive a single EmbRace step directly (without the trainer) and verify the
// assembled pooled activations equal a locally computed full-model lookup.
func TestEmbRaceStepMatchesLocalModel(t *testing.T) {
	cfg := validConfig()
	const workers = 4
	windows := map[int][][]int64{
		0: {{1, 2, 3, 4}},
		1: {{5, 6, 7, 8}},
		2: {{9, 9, 1, 2}},
		3: {{3, 3, 3, 3}},
	}
	targets := map[int][]int64{0: {5}, 1: {9}, 2: {4}, 3: {7}}

	losses := make([]float64, workers)
	var mu sync.Mutex
	err := comm.RunRanks(workers, func(tr comm.Transport) error {
		w, err := NewWorker(EmbRace, tr, cfg, nil)
		if err != nil {
			return err
		}
		stats, err := w.Step(0, windows[tr.Rank()], targets[tr.Rank()], []int64{1})
		if err != nil {
			return err
		}
		mu.Lock()
		losses[tr.Rank()] = stats.Loss
		mu.Unlock()
		_, err = w.FullEmbedding() // collective; keeps ranks aligned
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	// Each rank's loss must equal the loss a single-process model computes
	// on that rank's batch from the same seed (the AlltoAll lookup is just
	// a distributed implementation of the same forward pass).
	for r := 0; r < workers; r++ {
		err := comm.RunRanks(1, func(tr comm.Transport) error {
			w, err := NewWorker(HorovodAllGather, tr, Config{
				Seed: cfg.Seed, Vocab: cfg.Vocab, EmbDim: cfg.EmbDim, Hidden: cfg.Hidden,
				Optimizer: OptSGD, LR: cfg.LR, PSServers: 1,
			}, nil)
			if err != nil {
				return err
			}
			stats, err := w.Step(0, windows[r], targets[r], nil)
			if err != nil {
				return err
			}
			if diff := stats.Loss - losses[r]; diff > 1e-5 || diff < -1e-5 {
				t.Errorf("rank %d: embrace loss %v vs local %v", r, losses[r], stats.Loss)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestWorkerStrategyNames(t *testing.T) {
	cfg := validConfig()
	for _, name := range AllNames() {
		sh, err := NewShared(name, cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		err = comm.RunRanks(2, func(tr comm.Transport) error {
			w, err := NewWorker(name, tr, cfg, sh)
			if err != nil {
				return err
			}
			if w.Strategy() != name {
				t.Errorf("Strategy() = %s, want %s", w.Strategy(), name)
			}
			if w.Trunk() == nil {
				t.Error("nil trunk")
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestTagSpacesDisjoint(t *testing.T) {
	// Tags of different ops in the same step, and of adjacent steps, must
	// never collide — that is what keeps concurrent collectives isolated.
	seen := map[int]bool{}
	for step := 0; step < 50; step++ {
		for op := 1; op < tagCount; op++ {
			tg := tag(step, op)
			if seen[tg] {
				t.Fatalf("tag collision at step %d op %d", step, op)
			}
			seen[tg] = true
		}
	}
}
