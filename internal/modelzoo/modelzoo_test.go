package modelzoo

import (
	"math"
	"testing"

	"embrace/internal/perfsim"
)

func relErr(got, want float64) float64 { return math.Abs(got-want) / want }

// Table 1 of the paper, in MB.
var table1 = map[string]struct{ total, emb, ratio float64 }{
	"LM":          {3186.5, 3099.5, 0.9727},
	"GNMT-8":      {739.1, 252.5, 0.3416},
	"Transformer": {1067.5, 263.4, 0.2467},
	"BERT-base":   {417.7, 89.4, 0.2142},
}

func TestTable1ModelSizes(t *testing.T) {
	for _, m := range All() {
		want, ok := table1[m.Name]
		if !ok {
			t.Fatalf("unexpected model %q", m.Name)
		}
		if e := relErr(m.TotalBytes()/1e6, want.total); e > 0.01 {
			t.Errorf("%s total = %.1f MB, want %.1f (err %.3f)", m.Name, m.TotalBytes()/1e6, want.total, e)
		}
		if e := relErr(m.EmbBytesTotal()/1e6, want.emb); e > 0.01 {
			t.Errorf("%s emb = %.1f MB, want %.1f", m.Name, m.EmbBytesTotal()/1e6, want.emb)
		}
		if e := relErr(m.EmbRatio(), want.ratio); e > 0.01 {
			t.Errorf("%s ratio = %.4f, want %.4f", m.Name, m.EmbRatio(), want.ratio)
		}
	}
}

// Table 3 of the paper (MB, per model aggregate over embedding tables) and
// the §4.1.2 per-model gradient densities.
var table3 = map[string]struct {
	orig, coal, prior float64
	alpha             float64
}{
	"LM":          {8.7, 6.9, 2.6, 0.003},
	"GNMT-8":      {26.0, 12.2, 5.8, 0.103},
	"Transformer": {35.2, 16.6, 8.9, 0.134},
	"BERT-base":   {36.0, 5.5, 3.2, 0.403},
}

func TestTable3GradientSizes(t *testing.T) {
	for _, m := range All() {
		want := table3[m.Name]
		st, err := m.MeasureGradStats(RTX3090, 20, 42)
		if err != nil {
			t.Fatal(err)
		}
		k := float64(m.EmbTables)
		if e := relErr(st.RawBytes*k/1e6, want.orig); e > 0.05 {
			t.Errorf("%s original = %.1f MB, want %.1f", m.Name, st.RawBytes*k/1e6, want.orig)
		}
		if e := relErr(st.CoalescedBytes*k/1e6, want.coal); e > 0.10 {
			t.Errorf("%s coalesced = %.1f MB, want %.1f", m.Name, st.CoalescedBytes*k/1e6, want.coal)
		}
		if e := relErr(st.PriorBytes*k/1e6, want.prior); e > 0.15 {
			t.Errorf("%s prior = %.1f MB, want %.1f", m.Name, st.PriorBytes*k/1e6, want.prior)
		}
		if e := relErr(st.Alpha, want.alpha); e > 0.10 {
			t.Errorf("%s alpha = %.4f, want %.4f", m.Name, st.Alpha, want.alpha)
		}
	}
}

func TestGradStatsInvariants(t *testing.T) {
	for _, m := range All() {
		for _, gpu := range []GPUKind{RTX3090, RTX2080} {
			st, err := m.MeasureGradStats(gpu, 5, 7)
			if err != nil {
				t.Fatal(err)
			}
			if st.CoalescedRows > st.RawRows {
				t.Errorf("%s@%s: coalesced %v > raw %v", m.Name, gpu, st.CoalescedRows, st.RawRows)
			}
			if st.PriorRows > st.CoalescedRows {
				t.Errorf("%s@%s: prior %v > coalesced %v", m.Name, gpu, st.PriorRows, st.CoalescedRows)
			}
			if math.Abs(st.PriorBytes+st.DelayedBytes-st.CoalescedBytes) > 1 {
				t.Errorf("%s@%s: prior+delayed != coalesced", m.Name, gpu)
			}
			if st.Alpha <= 0 || st.Alpha >= 1 {
				t.Errorf("%s@%s: alpha = %v", m.Name, gpu, st.Alpha)
			}
		}
	}
}

func TestMeasureGradStatsValidation(t *testing.T) {
	if _, err := LM().MeasureGradStats(RTX3090, 0, 1); err == nil {
		t.Fatal("expected samples error")
	}
}

func TestNewCluster(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		c, err := NewCluster(RTX3090, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if c.N() != n {
			t.Fatalf("n=%d: N() = %d", n, c.N())
		}
		if n >= 4 && c.WorkersPerNode != 4 {
			t.Fatalf("n=%d: workers/node = %d", n, c.WorkersPerNode)
		}
		if err := c.Topology().Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := NewCluster(RTX3090, 0); err == nil {
		t.Fatal("expected error for 0 GPUs")
	}
	if _, err := NewCluster(RTX3090, 6); err == nil {
		t.Fatal("expected error for partial nodes")
	}
}

func TestClusterEstimator(t *testing.T) {
	c, _ := NewCluster(RTX2080, 8)
	est, err := c.Estimator()
	if err != nil {
		t.Fatal(err)
	}
	if est.Topo.Nodes != 2 || est.Topo.WorkersPerNode != 4 {
		t.Fatalf("topology %+v", est.Topo)
	}
	if est.Topo.HostBW <= 0 || est.Topo.ShmBW <= 0 {
		t.Fatal("host/shm bandwidths must be set")
	}
}

func TestStepComputeScaling(t *testing.T) {
	for _, m := range All() {
		fast := m.StepCompute(RTX3090)
		slow := m.StepCompute(RTX2080)
		if fast <= 0 || slow <= 0 {
			t.Fatalf("%s: non-positive compute", m.Name)
		}
		// The 2080 is slower per token; only models that also shrink the
		// batch a lot can end up with a shorter absolute step.
		if m.Batch(RTX2080) == m.Batch(RTX3090) && slow <= fast {
			t.Errorf("%s: same batch but 2080 (%v) not slower than 3090 (%v)", m.Name, slow, fast)
		}
	}
}

func TestPerfSpecConstruction(t *testing.T) {
	for _, m := range All() {
		st, err := m.MeasureGradStats(RTX3090, 5, 3)
		if err != nil {
			t.Fatal(err)
		}
		spec := m.PerfSpec(RTX3090, st, false)
		emb, dense := 0, 0
		for _, b := range spec.Blocks {
			switch b.Kind {
			case perfsim.EmbeddingBlock:
				emb++
				if b.GradBytes <= 0 || b.PriorBytes <= 0 || b.LookupBytes <= 0 {
					t.Errorf("%s: embedding block %s missing stats", m.Name, b.Name)
				}
			case perfsim.DenseBlock:
				dense++
				if b.FwdDur <= 0 || b.BwdDur <= 0 {
					t.Errorf("%s: dense block %s has non-positive compute", m.Name, b.Name)
				}
			}
		}
		if emb != m.EmbTables || dense != m.DenseBlocks {
			t.Errorf("%s: spec has %d emb, %d dense blocks", m.Name, emb, dense)
		}
		if math.Abs(spec.UsefulCompute()-m.StepCompute(RTX3090)) > 1e-9 {
			t.Errorf("%s: spec compute %v != step compute %v", m.Name, spec.UsefulCompute(), m.StepCompute(RTX3090))
		}
	}
}

func TestLMOnRTX2080CPUPenaltyOnlyForBaselines(t *testing.T) {
	m := LM()
	st, err := m.MeasureGradStats(RTX2080, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	baseline := m.PerfSpec(RTX2080, st, false)
	embrace := m.PerfSpec(RTX2080, st, true)
	if baseline.UsefulCompute() <= embrace.UsefulCompute() {
		t.Fatal("CPU-hosted embeddings must slow the full-replica baselines")
	}
	if baseline.SparseApplyBW >= embrace.SparseApplyBW {
		t.Fatal("host-resident apply must be slower than device apply")
	}
	// On the 3090 (everything fits), both layouts cost the same compute.
	st3090, _ := m.MeasureGradStats(RTX3090, 5, 3)
	b := m.PerfSpec(RTX3090, st3090, false)
	e := m.PerfSpec(RTX3090, st3090, true)
	if math.Abs(b.UsefulCompute()-e.UsefulCompute()) > 1e-12 {
		t.Fatal("3090 compute must not depend on strategy")
	}
}

// End-to-end shape check of the headline result: on every cluster and every
// model, EmbRace (2D) must be the fastest strategy, and the speedup over the
// best baseline must be largest for LM on RTX2080 and smallest for BERT-base
// on RTX3090, as in Figure 7.
func TestFigure7HeadlineShape(t *testing.T) {
	speedup := func(m *Model, gpu GPUKind, gpus int) float64 {
		st, err := m.MeasureGradStats(gpu, 8, 42)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := NewCluster(gpu, gpus)
		if err != nil {
			t.Fatal(err)
		}
		est, err := cl.Estimator()
		if err != nil {
			t.Fatal(err)
		}
		best := 0.0
		for _, s := range []perfsim.Strategy{perfsim.StratBytePS, perfsim.StratAllReduce, perfsim.StratAllGather, perfsim.StratParallax} {
			met, _, err := perfsim.RunJob(m.PerfSpec(gpu, st, false), s, perfsim.SchedDefault, est, 6)
			if err != nil {
				t.Fatal(err)
			}
			if tput := 1 / met.StepTime; tput > best {
				best = tput
			}
		}
		met, _, err := perfsim.RunJob(m.PerfSpec(gpu, st, true), perfsim.StratEmbRace, perfsim.Sched2D, est, 6)
		if err != nil {
			t.Fatal(err)
		}
		return (1 / met.StepTime) / best
	}

	for _, gpu := range []GPUKind{RTX3090, RTX2080} {
		for _, m := range All() {
			s := speedup(m, gpu, 16)
			if s < 1.0 {
				t.Errorf("%s@%s: EmbRace slower than best baseline (%.3fx)", m.Name, gpu, s)
			}
		}
	}
	lm2080 := speedup(LM(), RTX2080, 16)
	bert3090 := speedup(BERTBase(), RTX3090, 16)
	if lm2080 < 1.8 {
		t.Errorf("LM@RTX2080 speedup %.2fx, paper band is ~2x+", lm2080)
	}
	if bert3090 > 1.10 {
		t.Errorf("BERT@RTX3090 speedup %.2fx, paper band is 1.02-1.06x", bert3090)
	}
	if lm2080 <= bert3090 {
		t.Error("LM@2080 must gain more than BERT@3090")
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("GNMT-8")
	if err != nil || m.Name != "GNMT-8" {
		t.Fatalf("ByName: %v %v", m, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestLMXLExtensionModel(t *testing.T) {
	m := LMXL()
	if m.EmbBytesTotal() < 12e9 {
		t.Fatalf("LM-XL embeddings only %.1f GB", m.EmbBytesTotal()/1e9)
	}
	if m.EmbRatio() < 0.95 {
		t.Fatalf("LM-XL must be embedding-dominated, ratio %.3f", m.EmbRatio())
	}
	// Giant model is an extension, not part of the paper's Table 1 set.
	for _, paper := range All() {
		if paper.Name == m.Name {
			t.Fatal("LM-XL must not be in the paper model list")
		}
	}
	st, err := m.MeasureGradStats(RTX3090, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Alpha >= 0.01 {
		t.Fatalf("LM-XL alpha %.4f should be extremely sparse", st.Alpha)
	}
	// Full replicas exceed both GPUs; shards do not.
	for _, gpu := range []GPUKind{RTX3090, RTX2080} {
		baseline := m.PerfSpec(gpu, st, false)
		shard := m.PerfSpec(gpu, st, true)
		if baseline.SparseApplyBW >= shard.SparseApplyBW {
			t.Fatalf("%s: baseline apply must be host-bound", gpu)
		}
	}
}

func TestWithBatch(t *testing.T) {
	base := BERTBase()
	scaled, err := base.WithBatch(RTX3090, 8)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Batch(RTX3090) != 8 {
		t.Fatalf("batch = %d", scaled.Batch(RTX3090))
	}
	if base.Batch(RTX3090) != 32 {
		t.Fatal("WithBatch must not mutate the original")
	}
	if scaled.Batch(RTX2080) != base.Batch(RTX2080) {
		t.Fatal("other GPU batches must be unchanged")
	}
	// Compute must scale with the batch.
	if scaled.StepCompute(RTX3090) >= base.StepCompute(RTX3090) {
		t.Fatal("smaller batch must shorten the step")
	}
	if _, err := base.WithBatch(RTX3090, 0); err == nil {
		t.Fatal("expected batch validation error")
	}
}
