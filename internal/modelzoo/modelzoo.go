// Package modelzoo describes the four NLP models and two GPU clusters of the
// paper's evaluation (§5.2) in the terms the simulators need: parameter
// sizes (Table 1), per-cluster batch shapes, synthetic-workload parameters
// calibrated to reproduce the gradient-size statistics of Table 3 and the
// per-model sparsities quoted in §4.1.2, and per-block compute budgets.
//
// Absolute compute times are rough GPU-era figures (the substitution note in
// DESIGN.md applies); what the experiments depend on is their ratio to the
// communication times from internal/simnet, which the calibration tests pin.
package modelzoo

import (
	"fmt"

	"embrace/internal/data"
	"embrace/internal/perfsim"
	"embrace/internal/simnet"
	"embrace/internal/tensor"
)

// GPUKind selects one of the paper's two cluster types.
type GPUKind int

// The paper's GPUs.
const (
	RTX3090 GPUKind = iota
	RTX2080
)

// String returns the GPU name.
func (g GPUKind) String() string {
	if g == RTX2080 {
		return "RTX2080"
	}
	return "RTX3090"
}

// gpuTraits holds per-GPU hardware constants.
type gpuTraits struct {
	// speed is compute throughput relative to the RTX3090.
	speed float64
	// intraBW is the point-to-point bandwidth between two GPUs of one node.
	intraBW float64
	// hostBW is the effective throughput of a CPU parameter-server
	// process (RAM staging plus the server-side sparse update), the
	// Parallax bottleneck of §5.3.
	hostBW float64
	// shmBW is BytePS's shared-memory staging bandwidth (§5.3).
	shmBW float64
	// applyBW is the rate at which a worker scatters received sparse
	// gradient rows into a device-resident table.
	applyBW float64
	// memGB bounds what fits on the device (the LM embeddings exceed the
	// RTX2080's 8 GB and move to host memory, §5.3).
	memGB float64
}

var traits = map[GPUKind]gpuTraits{
	// 4 GPUs share the node; PCIe 4.0-class local path; six DDR4 DIMMs.
	RTX3090: {speed: 1.0, intraBW: 11e9, hostBW: 1.2e9, shmBW: 3.0e9, applyBW: 5e9, memGB: 24},
	// Older PCIe 3.0-class path, ~40% of the 3090's throughput, and only
	// three DIMMs per node.
	RTX2080: {speed: 0.40, intraBW: 6e9, hostBW: 0.8e9, shmBW: 1.8e9, applyBW: 2e9, memGB: 8},
}

// interBW is the 100 Gbps InfiniBand NIC both clusters share (§5.2.1).
const interBW = 12.5e9

// msgLatency is the per-message startup cost β.
const msgLatency = 15e-6

// workersPerNode matches the paper's servers: four GPUs per node.
const workersPerNode = 4

// Cluster is a concrete topology of one GPU kind.
type Cluster struct {
	GPU            GPUKind
	Nodes          int
	WorkersPerNode int
}

// NewCluster builds the paper's cluster shape for a total GPU count: GPUs
// fill 4-GPU nodes (4 -> 1 node, 8 -> 2 nodes, 16 -> 4 nodes).
func NewCluster(gpu GPUKind, totalGPUs int) (Cluster, error) {
	if totalGPUs <= 0 {
		return Cluster{}, fmt.Errorf("modelzoo: totalGPUs must be positive, got %d", totalGPUs)
	}
	w := workersPerNode
	if totalGPUs < w {
		w = totalGPUs
	}
	if totalGPUs%w != 0 {
		return Cluster{}, fmt.Errorf("modelzoo: %d GPUs do not fill %d-GPU nodes", totalGPUs, w)
	}
	return Cluster{GPU: gpu, Nodes: totalGPUs / w, WorkersPerNode: w}, nil
}

// Topology converts the cluster to a simnet topology.
func (c Cluster) Topology() simnet.Topology {
	return simnet.Topology{
		Nodes:          c.Nodes,
		WorkersPerNode: c.WorkersPerNode,
		IntraBW:        traits[c.GPU].intraBW,
		InterBW:        interBW,
		Latency:        msgLatency,
		HostBW:         traits[c.GPU].hostBW,
		ShmBW:          traits[c.GPU].shmBW,
	}
}

// N returns the total worker count.
func (c Cluster) N() int { return c.Nodes * c.WorkersPerNode }

// Estimator returns a simnet estimator over the cluster topology.
func (c Cluster) Estimator() (*simnet.Estimator, error) {
	return simnet.NewEstimator(c.Topology())
}

// batchShape is the per-worker batch geometry on one GPU kind.
type batchShape struct {
	sentences int
	minSeq    int
	maxSeq    int
}

// Model describes one paper model.
type Model struct {
	// Name as the paper uses it.
	Name string
	// EmbTables is the number of embedding tables (LM's input and softmax
	// embeddings, the encoder/decoder tables of the translation models,
	// BERT's single table).
	EmbTables int
	// Vocab and EmbDim size each table; chosen so table sizes match the
	// paper's Table 1.
	Vocab, EmbDim int
	// DenseBlocks is the number of uniform dense modules (§4.2.1 notes
	// NLP blocks have even compute/parameter loads).
	DenseBlocks int
	// DenseBytesTotal is the total dense parameter size.
	DenseBytesTotal float64
	// computeRef is the per-step FP+BP time on an RTX3090 at the 3090
	// batch size, in seconds.
	computeRef float64
	// batches gives the per-GPU batch geometry (§5.2.2).
	batches map[GPUKind]batchShape
	// refBatch pins the compute-calibration reference (the paper's
	// RTX3090 batch) even when WithBatch rescales batches.
	refBatch batchShape
	// zipfS and zipfV shape the synthetic corpus; calibrated to Table 3.
	zipfS, zipfV float64
	// embOnCPU marks GPU kinds whose memory cannot hold the embeddings,
	// forcing host placement with slower embedding compute (§5.3, LM on
	// RTX2080).
	embOnCPU map[GPUKind]bool
}

// EmbBytesPerTable returns one embedding table's size in bytes.
func (m *Model) EmbBytesPerTable() float64 {
	return float64(m.Vocab) * float64(m.EmbDim) * tensor.BytesPerElem
}

// EmbBytesTotal returns the total embedding parameter size (Table 1,
// "Embedding Size").
func (m *Model) EmbBytesTotal() float64 {
	return float64(m.EmbTables) * m.EmbBytesPerTable()
}

// TotalBytes returns the model size (Table 1, "Model Size").
func (m *Model) TotalBytes() float64 { return m.EmbBytesTotal() + m.DenseBytesTotal }

// EmbRatio returns the embedding share of parameters (Table 1, "Ratio").
func (m *Model) EmbRatio() float64 { return m.EmbBytesTotal() / m.TotalBytes() }

// Batch returns the per-worker sentence count on the GPU kind.
func (m *Model) Batch(gpu GPUKind) int { return m.batches[gpu].sentences }

// WorkloadConfig returns the synthetic data configuration for one embedding
// table's traffic on the GPU kind.
func (m *Model) WorkloadConfig(gpu GPUKind) data.Config {
	b := m.batches[gpu]
	return data.Config{
		VocabSize:      m.Vocab,
		BatchSentences: b.sentences,
		MaxSeqLen:      b.maxSeq,
		MinSeqLen:      b.minSeq,
		ZipfS:          m.zipfS,
		ZipfV:          m.zipfV,
	}
}

// rowBytes is the wire size of one sparse gradient row.
func (m *Model) rowBytes() float64 {
	return float64(m.EmbDim)*tensor.BytesPerElem + 8
}

// GradStats aggregates the Algorithm-1 gradient statistics of one embedding
// table, averaged over sampled batches. All byte figures are per table per
// worker per step.
type GradStats struct {
	// Row counts, averaged.
	RawRows, CoalescedRows, PriorRows float64
	// Byte sizes at the model's row width.
	RawBytes, CoalescedBytes, PriorBytes, DelayedBytes float64
	// Alpha is the paper's gradient density: raw rows over vocabulary
	// (§4.1.2 quotes 1-Alpha as the per-model sparsity).
	Alpha float64
	// LookupBytes is the embedding activation payload: raw rows times the
	// dense row size (no index overhead on activations).
	LookupBytes float64
}

// MeasureGradStats samples the synthetic workload and evaluates Algorithm
// 1's set arithmetic over consecutive batches.
func (m *Model) MeasureGradStats(gpu GPUKind, samples int, seed int64) (GradStats, error) {
	if samples < 1 {
		return GradStats{}, fmt.Errorf("modelzoo: samples must be positive, got %d", samples)
	}
	gen, err := data.NewGenerator(m.WorkloadConfig(gpu), seed)
	if err != nil {
		return GradStats{}, err
	}
	loader := data.NewLoader(gen)
	var st GradStats
	for i := 0; i < samples; i++ {
		cur := loader.Next()
		bs := data.ComputeBatchStats(cur, loader.Peek())
		st.RawRows += float64(bs.OriginalRows)
		st.CoalescedRows += float64(bs.CoalescedRows)
		st.PriorRows += float64(bs.PriorRows)
	}
	inv := 1 / float64(samples)
	st.RawRows *= inv
	st.CoalescedRows *= inv
	st.PriorRows *= inv
	rb := m.rowBytes()
	st.RawBytes = st.RawRows * rb
	st.CoalescedBytes = st.CoalescedRows * rb
	st.PriorBytes = st.PriorRows * rb
	st.DelayedBytes = st.CoalescedBytes - st.PriorBytes
	st.Alpha = st.RawRows / float64(m.Vocab)
	st.LookupBytes = st.RawRows * float64(m.EmbDim) * tensor.BytesPerElem
	return st, nil
}

// computeShares splits the model's per-step compute budget.
const (
	// embComputeShare is each embedding table's share of FP (and of BP):
	// lookups are cheap next to the dense blocks.
	embComputeShare = 0.02
	// cpuEmbPenalty multiplies embedding compute when the table lives in
	// host memory (LM on RTX2080): every lookup and update crosses PCIe
	// and runs host-side.
	cpuEmbPenalty = 30.0
	// fwdShare of the step's compute is forward; BP costs the rest
	// (roughly 1:2, the usual FP:BP ratio).
	fwdShare = 1.0 / 3.0
)

// StepCompute returns the model's per-step FP+BP compute time on the GPU
// kind, scaling the RTX3090 reference by batch volume and GPU speed.
func (m *Model) StepCompute(gpu GPUKind) float64 {
	ref := m.refBatch
	if ref.sentences == 0 {
		ref = m.batches[RTX3090]
	}
	cur := m.batches[gpu]
	refTokens := float64(ref.sentences * ref.maxSeq)
	curTokens := float64(cur.sentences * cur.maxSeq)
	t := m.computeRef * (curTokens / refTokens) / traits[gpu].speed
	return t
}

// PerfSpec builds the perfsim model description for the GPU kind using the
// measured gradient statistics. forEmbRace selects EmbRace's memory layout:
// its column-partitioned shard is 1/N of the table and fits in device
// memory even where the full table does not (LM on RTX2080, §5.3), so the
// CPU-placement penalty applies only to the full-replica baselines.
func (m *Model) PerfSpec(gpu GPUKind, st GradStats, forEmbRace bool) *perfsim.ModelSpec {
	step := m.StepCompute(gpu)
	fwd := step * fwdShare
	bwd := step - fwd

	embOnCPU := m.embOnCPU[gpu] && !forEmbRace
	// The dense budget is carved out at the GPU-resident embedding share;
	// a CPU-hosted embedding then inflates only its own time (extra host
	// work cannot shrink the dense kernels).
	embFwd := fwd * embComputeShare
	embBwd := bwd * embComputeShare
	denseFwd := (fwd - float64(m.EmbTables)*embFwd) / float64(m.DenseBlocks)
	denseBwd := (bwd - float64(m.EmbTables)*embBwd) / float64(m.DenseBlocks)
	if embOnCPU {
		embFwd *= cpuEmbPenalty
		embBwd *= cpuEmbPenalty
	}
	denseBytes := m.DenseBytesTotal / float64(m.DenseBlocks)

	embBlock := func(name string) perfsim.BlockSpec {
		return perfsim.BlockSpec{
			Name:         name,
			Kind:         perfsim.EmbeddingBlock,
			ParamBytes:   m.EmbBytesPerTable(),
			FwdDur:       embFwd,
			BwdDur:       embBwd,
			LookupBytes:  st.LookupBytes,
			GradBytes:    st.CoalescedBytes,
			RawGradBytes: st.RawBytes,
			PriorBytes:   st.PriorBytes,
			DelayedBytes: st.DelayedBytes,
		}
	}
	denseBlock := func(name string) perfsim.BlockSpec {
		return perfsim.BlockSpec{
			Name:       name,
			Kind:       perfsim.DenseBlock,
			ParamBytes: denseBytes,
			FwdDur:     denseFwd,
			BwdDur:     denseBwd,
		}
	}

	var blocks []perfsim.BlockSpec
	switch m.EmbTables {
	case 2:
		// Translation layout (Figure 5): encoder embedding, encoder
		// blocks, decoder embedding, decoder blocks. The LM's input and
		// softmax embeddings map onto the same structure.
		half := m.DenseBlocks / 2
		blocks = append(blocks, embBlock("enc-emb"))
		for i := 0; i < half; i++ {
			blocks = append(blocks, denseBlock(fmt.Sprintf("enc-block-%d", i)))
		}
		blocks = append(blocks, embBlock("dec-emb"))
		for i := half; i < m.DenseBlocks; i++ {
			blocks = append(blocks, denseBlock(fmt.Sprintf("dec-block-%d", i-half)))
		}
	default:
		blocks = append(blocks, embBlock("emb"))
		for i := 0; i < m.DenseBlocks; i++ {
			blocks = append(blocks, denseBlock(fmt.Sprintf("block-%d", i)))
		}
	}

	// Algorithm 1's set arithmetic costs roughly a sort+intersect over the
	// raw rows; charge a small compute-stream slice scaled to GPU speed.
	vsched := 1.5e-3 / traits[gpu].speed

	// Received sparse rows are scattered into the table at device speed,
	// unless the table lives in host memory (LM on RTX2080).
	applyBW := traits[gpu].applyBW
	if embOnCPU {
		applyBW = traits[gpu].hostBW
	}

	return &perfsim.ModelSpec{
		Name:          fmt.Sprintf("%s@%s", m.Name, gpu),
		Blocks:        blocks,
		VSchedDur:     vsched,
		SparseApplyBW: applyBW,
	}
}

// ---------------------------------------------------------------------------
// The four paper models (Table 1 sizes; §5.2.2 batch shapes).
// ---------------------------------------------------------------------------

const mb = 1e6

// LM is the big-LSTM language model (Jozefowicz et al.) trained on LM1B:
// two ~1.55 GB embedding tables dominate its 3.19 GB of parameters (97.3%).
func LM() *Model {
	return &Model{
		Name:            "LM",
		EmbTables:       2,
		Vocab:           756714,
		EmbDim:          512,
		DenseBlocks:     2,
		DenseBytesTotal: 87.0 * mb,
		computeRef:      0.060,
		batches: map[GPUKind]batchShape{
			RTX3090: {sentences: 128, minSeq: 17, maxSeq: 17},
			RTX2080: {sentences: 128, minSeq: 17, maxSeq: 17},
		},
		zipfS:    4.0,
		zipfV:    4096,
		embOnCPU: map[GPUKind]bool{RTX2080: true},
	}
}

// GNMT8 is the 8-layer GNMT translation model on WMT-16 En-De.
func GNMT8() *Model {
	return &Model{
		Name:            "GNMT-8",
		EmbTables:       2,
		Vocab:           30818,
		EmbDim:          1024,
		DenseBlocks:     8,
		DenseBytesTotal: 486.6 * mb,
		computeRef:      0.220,
		batches: map[GPUKind]batchShape{
			RTX3090: {sentences: 128, minSeq: 15, maxSeq: 25},
			RTX2080: {sentences: 32, minSeq: 15, maxSeq: 25},
		},
		zipfS: 2.6,
		zipfV: 1024,
	}
}

// Transformer is the big Transformer on WMT-14 En-De (batched by max
// tokens: 5120 on RTX3090, 500 on RTX2080).
func Transformer() *Model {
	return &Model{
		Name:            "Transformer",
		EmbTables:       2,
		Vocab:           32147,
		EmbDim:          1024,
		DenseBlocks:     12,
		DenseBytesTotal: 804.1 * mb,
		computeRef:      0.200,
		batches: map[GPUKind]batchShape{
			RTX3090: {sentences: 134, minSeq: 20, maxSeq: 32}, // ~5120 max tokens
			RTX2080: {sentences: 16, minSeq: 20, maxSeq: 32},  // ~500 max tokens
		},
		zipfS: 5.0,
		zipfV: 4096,
	}
}

// BERTBase is BERT-base fine-tuning on SQuAD question answering.
func BERTBase() *Model {
	return &Model{
		Name:            "BERT-base",
		EmbTables:       1,
		Vocab:           29101,
		EmbDim:          768,
		DenseBlocks:     12,
		DenseBytesTotal: 328.3 * mb,
		computeRef:      0.230,
		batches: map[GPUKind]batchShape{
			RTX3090: {sentences: 32, minSeq: 180, maxSeq: 365},
			RTX2080: {sentences: 4, minSeq: 180, maxSeq: 365},
		},
		zipfS: 2.3,
		zipfV: 256,
	}
}

// All returns the four models in the paper's Table-1 order.
func All() []*Model {
	return []*Model{LM(), GNMT8(), Transformer(), BERTBase()}
}

// ByName returns the model with the given name.
func ByName(name string) (*Model, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("modelzoo: unknown model %q", name)
}

// LMXL is the "giant NLP model" extension the paper's conclusion points to
// ("EmbRace could benefit sparse communications in giant NLP models training
// as well"): an LM scaled ~4x, whose 12.4 GB of embeddings exceed even the
// RTX3090's memory for full replicas — only EmbRace's column shards fit on
// device. It is not part of the paper's evaluation; the `giant` experiment
// extrapolates the Figure-7 comparison to it at 16-64 GPUs.
func LMXL() *Model {
	return &Model{
		Name:            "LM-XL",
		EmbTables:       2,
		Vocab:           1513428, // 2x the LM vocabulary
		EmbDim:          1024,    // 2x the LM width
		DenseBlocks:     4,
		DenseBytesTotal: 350.0 * mb,
		computeRef:      0.240,
		batches: map[GPUKind]batchShape{
			RTX3090: {sentences: 128, minSeq: 17, maxSeq: 17},
			RTX2080: {sentences: 64, minSeq: 17, maxSeq: 17},
		},
		zipfS: 4.0,
		zipfV: 8192,
		// 12.4 GB of embeddings exceed both GPUs' memory; replicas live on
		// the host for every baseline.
		embOnCPU: map[GPUKind]bool{RTX3090: true, RTX2080: true},
	}
}

// WithBatch returns a copy of the model whose per-worker batch on the given
// GPU kind is scaled to `sentences` (sequence lengths unchanged). Used by
// the batch-size sensitivity ablation: the paper attributes BERT's small
// RTX3090 gains and large RTX2080 gains to exactly this knob (§5.3).
func (m *Model) WithBatch(gpu GPUKind, sentences int) (*Model, error) {
	if sentences <= 0 {
		return nil, fmt.Errorf("modelzoo: batch must be positive, got %d", sentences)
	}
	clone := *m
	if clone.refBatch.sentences == 0 {
		clone.refBatch = m.batches[RTX3090]
	}
	clone.batches = make(map[GPUKind]batchShape, len(m.batches))
	for k, v := range m.batches {
		clone.batches[k] = v
	}
	b := clone.batches[gpu]
	b.sentences = sentences
	clone.batches[gpu] = b
	return &clone, nil
}
