package sched

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"embrace/internal/tensor"
)

func TestFIFOOrder(t *testing.T) {
	q := NewFIFO()
	for i := 0; i < 5; i++ {
		q.Push(&Op{Name: fmt.Sprint(i), Priority: 100 - i}) // priorities ignored
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 5; i++ {
		op := q.Pop()
		if op.Name != fmt.Sprint(i) {
			t.Fatalf("pop %d = %s", i, op.Name)
		}
	}
	if q.Pop() != nil {
		t.Fatal("empty pop must be nil")
	}
}

func TestFIFOPopReleasesSlot(t *testing.T) {
	// Regression: Pop used to reslice without clearing the vacated slot, so
	// the backing array kept every popped op — and the gradient tensors its
	// Execute closure captures — alive until the queue itself was collected.
	q := NewFIFO()
	for i := 0; i < 4; i++ {
		q.Push(&Op{Name: fmt.Sprint(i)})
	}
	backing := q.ops[:cap(q.ops)]
	for i := 0; i < 3; i++ {
		if op := q.Pop(); op == nil || op.Name != fmt.Sprint(i) {
			t.Fatalf("pop %d = %v", i, op)
		}
		if backing[i] != nil {
			t.Fatalf("pop %d left the op pinned in the backing array", i)
		}
	}
	if q.Pop() == nil {
		t.Fatal("pop 3")
	}
	if q.ops != nil {
		t.Fatal("draining the queue must release the backing array")
	}
	// The queue stays usable after the nil reset.
	q.Push(&Op{Name: "again"})
	if op := q.Pop(); op == nil || op.Name != "again" {
		t.Fatalf("post-drain pop = %v", op)
	}
}

func TestPriorityQueueOrder(t *testing.T) {
	q := NewPriorityQueue()
	q.Push(&Op{Name: "dense-late", Priority: PriorityDenseBase + 5})
	q.Push(&Op{Name: "delayed", Priority: PriorityEmbeddingDelayed})
	q.Push(&Op{Name: "prior", Priority: PriorityEmbeddingPrior})
	q.Push(&Op{Name: "dense-early", Priority: PriorityDenseBase})
	want := []string{"prior", "dense-early", "dense-late", "delayed"}
	for i, w := range want {
		op := q.Pop()
		if op == nil || op.Name != w {
			t.Fatalf("pop %d = %v, want %s", i, op, w)
		}
	}
	if q.Pop() != nil {
		t.Fatal("empty pop must be nil")
	}
}

func TestPriorityQueueFIFOWithinPriority(t *testing.T) {
	q := NewPriorityQueue()
	for i := 0; i < 10; i++ {
		q.Push(&Op{Name: fmt.Sprint(i), Priority: 7})
	}
	for i := 0; i < 10; i++ {
		if got := q.Pop().Name; got != fmt.Sprint(i) {
			t.Fatalf("tie-break violated at %d: got %s", i, got)
		}
	}
}

// Property: the priority queue is a sorting machine — popping everything
// yields ops sorted by (priority, arrival).
func TestPriorityQueueSortsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewPriorityQueue()
		n := 1 + rng.Intn(100)
		for i := 0; i < n; i++ {
			q.Push(&Op{Priority: rng.Intn(10), seq: 0})
		}
		prev := -1
		prevSeq := -1
		for {
			op := q.Pop()
			if op == nil {
				break
			}
			if op.Priority < prev {
				return false
			}
			if op.Priority == prev && op.seq < prevSeq {
				return false
			}
			prev, prevSeq = op.Priority, op.seq
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockPriorities(t *testing.T) {
	p := BlockPriorities(4)
	if len(p) != 4 {
		t.Fatalf("len = %d", len(p))
	}
	for i := 1; i < len(p); i++ {
		if p[i] <= p[i-1] {
			t.Fatal("priorities must increase with forward order")
		}
	}
	// The bands must nest: prior < dense < delayed.
	if !(PriorityEmbeddingPrior < p[0] && p[3] < PriorityEmbeddingDelayed) {
		t.Fatal("band ordering broken")
	}
}

func TestVerticalSplitMatchesAlgorithm1(t *testing.T) {
	// Current batch tokens {1,2,2,5}, next batch {2,5,7}.
	// i_prior = {2,5}, i_delayed = {1}.
	g, err := tensor.NewSparse(10, 1,
		[]int64{1, 2, 2, 5},
		[]float32{10, 20, 21, 50})
	if err != nil {
		t.Fatal(err)
	}
	cur := tensor.UniqueInt64([]int64{1, 2, 2, 5})
	next := tensor.UniqueInt64([]int64{2, 5, 7})
	prior, delayed := VerticalSplit(g, cur, next)
	if prior.NNZ() != 2 || prior.Indices[0] != 2 || prior.Indices[1] != 5 {
		t.Fatalf("prior indices = %v", prior.Indices)
	}
	if prior.Vals[0] != 41 { // coalesced 20+21
		t.Fatalf("prior row 2 = %v, want coalesced 41", prior.Vals[0])
	}
	if delayed.NNZ() != 1 || delayed.Indices[0] != 1 {
		t.Fatalf("delayed indices = %v", delayed.Indices)
	}
}

// Property: prior ∪ delayed == coalesce(G), disjoint, and the dense
// projections agree — the Algorithm-1 invariant.
func TestVerticalSplitInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 30
		nnz := 1 + rng.Intn(50)
		idx := make([]int64, nnz)
		vals := make([]float32, nnz)
		for i := range idx {
			idx[i] = int64(rng.Intn(rows))
			vals[i] = rng.Float32()
		}
		g, err := tensor.NewSparse(rows, 1, idx, vals)
		if err != nil {
			return false
		}
		next := make([]int64, rng.Intn(20))
		for i := range next {
			next[i] = int64(rng.Intn(rows))
		}
		cur := g.UniqueIndices()
		nextU := tensor.UniqueInt64(next)
		prior, delayed := VerticalSplit(g, cur, nextU)
		// Disjoint.
		pset := tensor.ToSet(prior.Indices)
		for _, ix := range delayed.Indices {
			if _, ok := pset[ix]; ok {
				return false
			}
		}
		// Prior rows must all be in the next batch.
		nset := tensor.ToSet(nextU)
		for _, ix := range prior.Indices {
			if _, ok := nset[ix]; !ok {
				return false
			}
		}
		// Delayed rows must not be in the next batch.
		for _, ix := range delayed.Indices {
			if _, ok := nset[ix]; ok {
				return false
			}
		}
		// Union reconstructs the coalesced gradient.
		merged, err := tensor.Concat(prior, delayed)
		if err != nil {
			return false
		}
		return merged.ToDense().AllClose(g.ToDense(), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureSplitSizes(t *testing.T) {
	g, _ := tensor.NewSparse(10, 2,
		[]int64{1, 1, 3},
		[]float32{1, 1, 2, 2, 3, 3})
	sz := MeasureSplit(g, g.UniqueIndices(), []int64{3})
	rowBytes := 8 + 2*tensor.BytesPerElem
	if sz.OriginalBytes != 3*rowBytes {
		t.Fatalf("original = %d", sz.OriginalBytes)
	}
	if sz.CoalescedBytes != 2*rowBytes {
		t.Fatalf("coalesced = %d", sz.CoalescedBytes)
	}
	if sz.PriorBytes != rowBytes || sz.DelayedBytes != rowBytes {
		t.Fatalf("prior/delayed = %d/%d", sz.PriorBytes, sz.DelayedBytes)
	}
}

func TestEngineExecutesAll(t *testing.T) {
	e := NewEngine(NewPriorityQueue())
	defer e.Close()
	var mu sync.Mutex
	var got []string
	for i := 0; i < 20; i++ {
		name := fmt.Sprint(i)
		e.Enqueue(&Op{Name: name, Priority: 1, Execute: func() error {
			mu.Lock()
			got = append(got, name)
			mu.Unlock()
			return nil
		}})
	}
	if errs := e.Wait(); len(errs) != 0 {
		t.Fatal(errs)
	}
	if len(got) != 20 {
		t.Fatalf("executed %d of 20", len(got))
	}
}

func TestEnginePriorityOrderWhenPreloaded(t *testing.T) {
	// Enqueue everything before the first op can run by blocking the
	// engine with a gate op; the rest must then run in priority order.
	e := NewEngine(NewPriorityQueue())
	defer e.Close()
	gate := make(chan struct{})
	e.Enqueue(&Op{Name: "gate", Priority: -1, Execute: func() error {
		<-gate
		return nil
	}})
	var mu sync.Mutex
	var got []int
	for _, p := range []int{5, 1, 3, 2, 4} {
		p := p
		e.Enqueue(&Op{Priority: p, Execute: func() error {
			mu.Lock()
			got = append(got, p)
			mu.Unlock()
			return nil
		}})
	}
	close(gate)
	if errs := e.Wait(); len(errs) != 0 {
		t.Fatal(errs)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("priority order violated: %v", got)
		}
	}
}

func TestEngineCollectsErrors(t *testing.T) {
	e := NewEngine(NewFIFO())
	defer e.Close()
	e.Enqueue(&Op{Execute: func() error { return fmt.Errorf("boom") }})
	e.Enqueue(&Op{Execute: func() error { return nil }})
	errs := e.Wait()
	if len(errs) != 1 || errs[0].Error() != "boom" {
		t.Fatalf("errs = %v", errs)
	}
	// Errors must be consumed by Wait.
	if errs := e.Wait(); len(errs) != 0 {
		t.Fatalf("second Wait returned %v", errs)
	}
}

func TestEngineCloseIsIdempotentViaEnqueueAfterClose(t *testing.T) {
	e := NewEngine(NewFIFO())
	e.Close()
	// Enqueue after close must be a no-op, not a panic.
	e.Enqueue(&Op{Execute: func() error { return nil }})
}

func TestEngineNilExecuteOk(t *testing.T) {
	e := NewEngine(NewFIFO())
	defer e.Close()
	e.Enqueue(&Op{Name: "sim-only"})
	if errs := e.Wait(); len(errs) != 0 {
		t.Fatal(errs)
	}
}
