// Package sched implements the communication scheduling machinery of §4.2:
// the FIFO queue of default DL frameworks, the priority queue EmbRace
// replaces it with, block-level priority assignment from the forward-pass
// dependency order (Block-level Horizontal Scheduling), and Algorithm 1
// (Vertical Sparse Scheduling), which splits a coalesced embedding gradient
// into prior and delayed parts using the prefetched next batch.
package sched

import (
	"container/heap"
	"sync"

	"embrace/internal/tensor"
)

// Op is one communication operation awaiting execution. Lower Priority runs
// sooner; ties break by enqueue order (Seq), which makes the FIFO queue a
// special case of a priority queue where every priority is equal.
type Op struct {
	// Name identifies the operation for timelines and debugging, e.g.
	// "allreduce:decoder-block-3" or "alltoall:enc-emb-prior".
	Name string
	// Priority orders execution; lower runs first.
	Priority int
	// Bytes is the payload size, used by the performance simulator.
	Bytes float64
	// Execute performs the operation in real-execution mode; nil for
	// simulation-only ops.
	Execute func() error

	seq int
}

// Queue is the interface shared by the FIFO and priority disciplines.
type Queue interface {
	// Push adds an operation.
	Push(*Op)
	// Pop removes and returns the next operation to run, or nil if empty.
	Pop() *Op
	// Len returns the number of queued operations.
	Len() int
}

// FIFO executes operations strictly in arrival order — the default
// scheduling of popular DL frameworks (§2.3, Figure 6a).
type FIFO struct {
	ops []*Op
}

// NewFIFO returns an empty FIFO queue.
func NewFIFO() *FIFO { return &FIFO{} }

func (q *FIFO) Push(op *Op) { q.ops = append(q.ops, op) }

func (q *FIFO) Pop() *Op {
	if len(q.ops) == 0 {
		return nil
	}
	op := q.ops[0]
	// Nil the vacated slot: reslicing alone keeps the popped op — and the
	// gradient tensors its Execute closure captures — reachable through the
	// backing array for as long as the queue lives.
	q.ops[0] = nil
	q.ops = q.ops[1:]
	if len(q.ops) == 0 {
		q.ops = nil // release the fully drained backing array too
	}
	return op
}

func (q *FIFO) Len() int { return len(q.ops) }

// PriorityQueue pops the lowest-priority-value operation first, breaking
// ties by arrival order. It is the queue EmbRace's communication thread
// drains (§5.1).
type PriorityQueue struct {
	h   opHeap
	seq int
}

// NewPriorityQueue returns an empty priority queue.
func NewPriorityQueue() *PriorityQueue { return &PriorityQueue{} }

func (q *PriorityQueue) Push(op *Op) {
	op.seq = q.seq
	q.seq++
	heap.Push(&q.h, op)
}

func (q *PriorityQueue) Pop() *Op {
	if q.h.Len() == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Op)
}

func (q *PriorityQueue) Len() int { return q.h.Len() }

type opHeap []*Op

func (h opHeap) Len() int { return len(h) }
func (h opHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority < h[j].Priority
	}
	return h[i].seq < h[j].seq
}
func (h opHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *opHeap) Push(x any)   { *h = append(*h, x.(*Op)) }
func (h *opHeap) Pop() any {
	old := *h
	n := len(old)
	op := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return op
}

// Compile-time checks.
var (
	_ Queue = (*FIFO)(nil)
	_ Queue = (*PriorityQueue)(nil)
)

// ---------------------------------------------------------------------------
// Block-level Horizontal Scheduling (§4.2.1)
// ---------------------------------------------------------------------------

// Priority bands. Within a band, block priorities follow the forward
// dependency order so a block's gradients arrive just before its FP needs
// them. The prior embedding rows (needed by the very next FP) outrank
// everything; delayed rows run dead last.
const (
	// PriorityEmbeddingPrior is the band for Algorithm 1 prior gradients
	// and the embedding-data AlltoAll that next FP blocks on.
	PriorityEmbeddingPrior = 0
	// PriorityDenseBase is the base band for dense blocks; block i in
	// forward order gets PriorityDenseBase + i.
	PriorityDenseBase = 100
	// PriorityEmbeddingDelayed is the band for delayed embedding rows,
	// which may finish any time before the next iteration's update.
	PriorityEmbeddingDelayed = 1 << 20
)

// BlockPriorities assigns a priority to each of n dense blocks listed in
// forward order: earlier-FP blocks get smaller values so their gradient
// communication is overlapped first and their next FP can start earliest
// (Figure 6b).
func BlockPriorities(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = PriorityDenseBase + i
	}
	return out
}

// ---------------------------------------------------------------------------
// Vertical Sparse Scheduling (Algorithm 1)
// ---------------------------------------------------------------------------

// VerticalSplit implements Algorithm 1. Given the raw (possibly duplicate-
// laden) sparse gradient G, the unique token ids of this worker's current
// batch D_u, and the token ids of the prefetched next batch D_next, it
// returns the coalesced prior gradient (rows also needed by the next
// iteration's FP) and the coalesced delayed gradient (the rest).
//
// Invariants (tested): prior and delayed are disjoint, and together they
// contain exactly the coalesced form of G.
func VerticalSplit(g *tensor.Sparse, curUnique, nextUnique []int64) (prior, delayed *tensor.Sparse) {
	coalesced := g.Coalesce()                         // line 2
	iPrior := tensor.Intersect(curUnique, nextUnique) // line 4: sorted
	prior, delayed = coalesced.Partition(iPrior)      // lines 6-7
	return prior, delayed
}

// SplitSizes reports the payload sizes Algorithm 1 produces, the quantities
// behind Table 3's coalesced and prioritized columns.
type SplitSizes struct {
	OriginalBytes  int
	CoalescedBytes int
	PriorBytes     int
	DelayedBytes   int
}

// MeasureSplit runs VerticalSplit and reports the resulting sizes.
func MeasureSplit(g *tensor.Sparse, curUnique, nextUnique []int64) SplitSizes {
	prior, delayed := VerticalSplit(g, curUnique, nextUnique)
	return SplitSizes{
		OriginalBytes:  g.SizeBytes(),
		CoalescedBytes: prior.SizeBytes() + delayed.SizeBytes(),
		PriorBytes:     prior.SizeBytes(),
		DelayedBytes:   delayed.SizeBytes(),
	}
}

// ---------------------------------------------------------------------------
// Communication engine (the "communication thread" of §5.1)
// ---------------------------------------------------------------------------

// Engine drains a queue on a dedicated goroutine, executing operations in
// queue order. The trainer's backward hooks enqueue operations as gradients
// become ready (wait-free backpropagation); the engine decides the order the
// network sees them in — FIFO for the baselines, priority for EmbRace.
type Engine struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  Queue
	closed bool
	active int // ops currently executing
	errs   []error
	done   chan struct{}
}

// NewEngine starts an engine over q. Close it to stop the worker.
func NewEngine(q Queue) *Engine {
	e := &Engine{queue: q, done: make(chan struct{})}
	e.cond = sync.NewCond(&e.mu)
	go e.run()
	return e
}

// Enqueue schedules op. It never blocks.
func (e *Engine) Enqueue(op *Op) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.queue.Push(op)
	e.cond.Broadcast()
}

// Wait blocks until every enqueued operation has finished executing and
// returns any execution errors accumulated since the last Wait.
func (e *Engine) Wait() []error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.queue.Len() > 0 || e.active > 0 {
		e.cond.Wait()
	}
	errs := e.errs
	e.errs = nil
	return errs
}

// Close stops the engine after in-flight work completes. Safe to call once.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	<-e.done
}

func (e *Engine) run() {
	defer close(e.done)
	for {
		e.mu.Lock()
		for e.queue.Len() == 0 && !e.closed {
			e.cond.Wait()
		}
		if e.queue.Len() == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		op := e.queue.Pop()
		e.active++
		e.mu.Unlock()

		var err error
		if op.Execute != nil {
			err = op.Execute()
		}

		e.mu.Lock()
		e.active--
		if err != nil {
			e.errs = append(e.errs, err)
		}
		e.cond.Broadcast()
		e.mu.Unlock()
	}
}
