package sched_test

import (
	"fmt"

	"embrace/internal/sched"
	"embrace/internal/tensor"
)

// VerticalSplit is Algorithm 1: coalesce the raw gradient, then split it
// against the prefetched next batch.
func ExampleVerticalSplit() {
	raw, _ := tensor.NewSparse(100, 1,
		[]int64{7, 7, 3, 9},
		[]float32{1, 1, 5, 9})
	current := raw.UniqueIndices()
	next := []int64{7, 42} // prefetched next-batch tokens
	prior, delayed := sched.VerticalSplit(raw, current, next)
	fmt.Println("prior rows:", prior.Indices, "value:", prior.Vals)
	fmt.Println("delayed rows:", delayed.Indices)
	// Output:
	// prior rows: [7] value: [2]
	// delayed rows: [3 9]
}

// The priority queue drains embedding-prior traffic before dense blocks and
// delayed traffic last — the §4.2 ordering.
func ExamplePriorityQueue() {
	q := sched.NewPriorityQueue()
	q.Push(&sched.Op{Name: "dense-block-2", Priority: sched.PriorityDenseBase + 2})
	q.Push(&sched.Op{Name: "emb-delayed", Priority: sched.PriorityEmbeddingDelayed})
	q.Push(&sched.Op{Name: "emb-prior", Priority: sched.PriorityEmbeddingPrior})
	q.Push(&sched.Op{Name: "dense-block-0", Priority: sched.PriorityDenseBase})
	for q.Len() > 0 {
		fmt.Println(q.Pop().Name)
	}
	// Output:
	// emb-prior
	// dense-block-0
	// dense-block-2
	// emb-delayed
}
