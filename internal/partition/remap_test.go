package partition

import "testing"

// checkTiling asserts the universal Remap contract: the moves tile
// [0, extent) exactly (no gap, no overlap, in order), every move's source
// span lies inside the old owner's range and its destination span inside
// the new owner's, per the supplied ownership oracle.
func checkTiling(t *testing.T, moves []ShardMove, extent int, oldOwner, newOwner func(pos int) int) {
	t.Helper()
	pos := 0
	for i, m := range moves {
		if m.Lo != pos {
			t.Fatalf("move %d starts at %d, want %d (gap or overlap)", i, m.Lo, pos)
		}
		if m.Hi <= m.Lo {
			t.Fatalf("move %d empty: [%d, %d)", i, m.Lo, m.Hi)
		}
		for p := m.Lo; p < m.Hi; p++ {
			if got := oldOwner(p); got != m.From {
				t.Fatalf("move %d: position %d owned by old shard %d, move says From=%d", i, p, got, m.From)
			}
			if got := newOwner(p); got != m.To {
				t.Fatalf("move %d: position %d owned by new shard %d, move says To=%d", i, p, got, m.To)
			}
		}
		pos = m.Hi
	}
	if pos != extent {
		t.Fatalf("moves cover [0, %d), want [0, %d)", pos, extent)
	}
}

func columnOwner(dim, n int) func(pos int) int {
	return func(pos int) int {
		for r := 0; r < n; r++ {
			lo, hi := (ColumnWise{}).Range(dim, n, r)
			if pos >= lo && pos < hi {
				return r
			}
		}
		return -1
	}
}

func TestColumnWiseRemapTilesExactly(t *testing.T) {
	cases := []struct{ dim, oldN, newN int }{
		{8, 4, 3},   // the elastic shrink shape
		{8, 3, 4},   // and the rejoin growth back
		{56, 8, 7},  // world-size-8 shrink
		{12, 4, 4},  // no resize: all moves are self-sends
		{7, 3, 2},   // uneven columns on both sides
		{5, 5, 1},   // collapse to one shard
		{5, 1, 5},   // explode from one shard
		{64, 2, 16}, // large growth
	}
	for _, tc := range cases {
		moves := ColumnWise{}.Remap(tc.dim, tc.oldN, tc.newN)
		checkTiling(t, moves, tc.dim, columnOwner(tc.dim, tc.oldN), columnOwner(tc.dim, tc.newN))
		if tc.oldN == tc.newN {
			for _, m := range moves {
				if m.From != m.To {
					t.Fatalf("dim %d same-size remap produced a real move %+v", tc.dim, m)
				}
			}
		}
	}
}

// The elastic fast path: spans with From == To stay resident on their
// surviving rank. For the canonical 4 -> 3 shrink of an 8-wide table, shard
// 0's first two columns never travel.
func TestColumnWiseRemapElidesResidentSpans(t *testing.T) {
	moves := ColumnWise{}.Remap(8, 4, 3)
	resident := 0
	for _, m := range moves {
		if m.From == m.To {
			resident += m.Hi - m.Lo
		}
	}
	if resident == 0 {
		t.Fatal("4 -> 3 shrink of 8 columns should keep some spans resident")
	}
	// Shard 0 owns [0,2) in both tilings ([0,2) of 4, [0,3) of 3).
	m := moves[0]
	if m.From != 0 || m.To != 0 || m.Lo != 0 || m.Hi < 2 {
		t.Fatalf("first move %+v should keep shard 0's head columns in place", m)
	}
}

func TestColumnWiseRemapDegenerate(t *testing.T) {
	for _, tc := range []struct{ dim, oldN, newN int }{
		{0, 3, 2}, {-1, 3, 2}, {8, 0, 2}, {8, 3, 0}, {8, -1, 2},
	} {
		if moves := (ColumnWise{}).Remap(tc.dim, tc.oldN, tc.newN); moves != nil {
			t.Fatalf("Remap(%d, %d, %d) = %v, want nil", tc.dim, tc.oldN, tc.newN, moves)
		}
	}
}

func TestRowRangeRemapAgreesWithOwner(t *testing.T) {
	for _, tc := range []struct{ vocab, oldN, newN int }{
		{100, 4, 3}, {100, 3, 4}, {17, 5, 2}, {40, 8, 8},
	} {
		p := RowRange{Vocab: tc.vocab}
		moves := p.Remap(tc.oldN, tc.newN)
		checkTiling(t, moves, tc.vocab,
			func(pos int) int { return p.Owner(int64(pos), tc.oldN) },
			func(pos int) int { return p.Owner(int64(pos), tc.newN) })
	}
}

func TestRowHashRemapAgreesWithOwner(t *testing.T) {
	for _, tc := range []struct{ vocab, oldN, newN int }{
		{40, 4, 3}, {40, 3, 4}, {13, 5, 2},
	} {
		moves := RowHash{}.Remap(tc.vocab, tc.oldN, tc.newN)
		checkTiling(t, moves, tc.vocab,
			func(pos int) int { return RowHash{}.Owner(int64(pos), tc.oldN) },
			func(pos int) int { return RowHash{}.Owner(int64(pos), tc.newN) })
		// Hashing scatters ownership: runs must be maximal (two adjacent
		// moves never share the same From/To pair).
		for i := 1; i < len(moves); i++ {
			if moves[i].From == moves[i-1].From && moves[i].To == moves[i-1].To {
				t.Fatalf("moves %d and %d should have merged: %+v %+v", i-1, i, moves[i-1], moves[i])
			}
		}
	}
}
