// Package partition analyzes the embedding partitioning choice of §4.1.1.
//
// The paper argues: row-wise partitioning splits words (whole vectors), and
// because word frequencies are Zipfian some shards are hit far more often,
// unbalancing the AlltoAll; column-wise partitioning gives every shard the
// whole vocabulary and a 1/N slice of every vector, so per-shard load equals
// the batch size regardless of which words appear. This package quantifies
// that argument on real batches: each scheme maps a batch of token lookups
// to per-shard payloads, and the imbalance factor (max shard load over mean
// shard load) bounds the AlltoAll slowdown, since the exchange completes
// when the hottest shard finishes.
package partition

import (
	"fmt"
	"sort"
)

// Scheme assigns embedding-lookup work to shards.
type Scheme interface {
	// Name identifies the scheme.
	Name() string
	// ShardLoads returns, for one batch of token ids, the lookup payload
	// each of the n shards must serve, in units of full embedding rows
	// (a column shard serving one token counts 1/n).
	ShardLoads(tokens []int64, n int) []float64
}

// RowRange partitions rows into n contiguous vocabulary ranges — the
// natural row-wise split. With frequency-sorted vocabularies (ids assigned
// by descending frequency, as tokenizers do) the shard owning the head of
// the vocabulary serves almost every lookup.
type RowRange struct {
	// Vocab is the vocabulary size the ranges divide.
	Vocab int
}

// Name implements Scheme.
func (RowRange) Name() string { return "row-range" }

// Owner returns the shard in [0, n) holding token tok's full embedding row,
// clamping out-of-vocabulary ids the same way ShardLoads does.
func (p RowRange) Owner(tok int64, n int) int {
	per := int64(p.Vocab+n-1) / int64(n)
	shard := int(tok / per)
	if shard < 0 {
		shard = 0
	}
	if shard >= n {
		shard = n - 1
	}
	return shard
}

// ShardLoads implements Scheme.
func (p RowRange) ShardLoads(tokens []int64, n int) []float64 {
	loads := make([]float64, n)
	per := int64(p.Vocab+n-1) / int64(n)
	for _, tok := range tokens {
		// Divide in int64 (an id above MaxInt32 must not wrap on 32-bit
		// ints) and clamp out-of-vocabulary ids — negative sentinels to the
		// first shard, oversized ids to the last — instead of indexing out
		// of range.
		shard := int(tok / per)
		if shard < 0 {
			shard = 0
		}
		if shard >= n {
			shard = n - 1
		}
		loads[shard]++
	}
	return loads
}

// RowHash partitions rows by token id modulo n — row-wise with hashing.
// Hashing spreads the head across shards but cannot split a single hot
// token (the pad token, "the", ...), so per-batch imbalance persists.
type RowHash struct{}

// Name implements Scheme.
func (RowHash) Name() string { return "row-hash" }

// Owner returns the shard in [0, n) holding token tok's full embedding row.
// Serving uses this to route lookup requests; it is the same mapping
// ShardLoads counts with, so measured imbalance predicts serving hotspots.
func (RowHash) Owner(tok int64, n int) int { return hashShard(tok, n) }

// ShardLoads implements Scheme.
func (RowHash) ShardLoads(tokens []int64, n int) []float64 {
	loads := make([]float64, n)
	for _, tok := range tokens {
		loads[hashShard(tok, n)]++
	}
	return loads
}

// hashShard maps a token id to a shard in [0, n). Go's % keeps the
// dividend's sign, so negative ids (padding sentinels, masked positions)
// need normalizing — a bare loads[int(tok)%n] panics on them. The modulus
// runs in int64 so ids past MaxInt32 don't wrap on 32-bit ints either.
func hashShard(tok int64, n int) int {
	s := int(tok % int64(n))
	if s < 0 {
		s += n
	}
	return s
}

// ColumnWise is EmbRace's choice: every shard holds every row's 1/n column
// slice, so each lookup costs exactly 1/n on every shard.
type ColumnWise struct{}

// Name implements Scheme.
func (ColumnWise) Name() string { return "column-wise" }

// Range returns the half-open column interval [lo, hi) of a dim-wide
// embedding vector that shard r of n owns. The first dim%n shards take one
// extra column, so the intervals tile [0, dim) exactly and any two callers
// (the shard slicing its table, the front-end reassembling a row) agree on
// the layout by construction.
func (ColumnWise) Range(dim, n, r int) (lo, hi int) {
	per, extra := dim/n, dim%n
	lo = r*per + min(r, extra)
	hi = lo + per
	if r < extra {
		hi++
	}
	return lo, hi
}

// ShardLoads implements Scheme.
func (ColumnWise) ShardLoads(tokens []int64, n int) []float64 {
	loads := make([]float64, n)
	per := float64(len(tokens)) / float64(n)
	for i := range loads {
		loads[i] = per
	}
	return loads
}

// ShardMove is one span of embedding state that must travel when a world
// resizes: the half-open interval [Lo, Hi) moves from shard From of the old
// world to shard To of the new one. For ColumnWise the interval indexes
// columns (every row's slice moves together); for the row schemes it indexes
// vocabulary rows. Moves with From == To are the self-send elision of the
// AlltoAll applied to resharding: the span is already resident, so a
// surviving rank keeps it in place and its values stay bit-exact through the
// remap — no serialize/deserialize round trip can perturb them.
type ShardMove struct {
	From, To int
	Lo, Hi   int
}

// Remap plans the column movement when a dim-wide ColumnWise layout resizes
// from oldN to newN shards: the intersections of the old and new Range
// tilings, ordered by column. Every column appears in exactly one move, so
// applying the plan to the old shards reproduces the new tiling exactly.
func (c ColumnWise) Remap(dim, oldN, newN int) []ShardMove {
	return remapIntervals(dim, oldN, newN, c.Range)
}

// Remap plans the row movement when a RowRange layout resizes from oldN to
// newN shards, in the same intersection form as ColumnWise.Remap but over
// vocabulary rows.
func (p RowRange) Remap(oldN, newN int) []ShardMove {
	rng := func(vocab, n, r int) (int, int) {
		per := (vocab + n - 1) / n
		lo := r * per
		hi := min(lo+per, vocab)
		if lo > vocab {
			lo = vocab
		}
		return lo, hi
	}
	return remapIntervals(p.Vocab, oldN, newN, rng)
}

// Remap plans the row movement when a RowHash layout over `vocab` rows
// resizes from oldN to newN shards. Hashing scatters ownership, so instead
// of interval intersections the plan lists maximal runs of consecutive rows
// sharing the same (old owner, new owner) pair — contiguous spans a bulk
// copy can move, degenerating to single rows in the worst case.
func (RowHash) Remap(vocab, oldN, newN int) []ShardMove {
	var out []ShardMove
	for row := 0; row < vocab; {
		from := hashShard(int64(row), oldN)
		to := hashShard(int64(row), newN)
		hi := row + 1
		for hi < vocab && hashShard(int64(hi), oldN) == from && hashShard(int64(hi), newN) == to {
			hi++
		}
		out = append(out, ShardMove{From: from, To: to, Lo: row, Hi: hi})
		row = hi
	}
	return out
}

// remapIntervals intersects two contiguous tilings of [0, extent): the moves
// are the maximal spans with constant (old owner, new owner), in order.
func remapIntervals(extent, oldN, newN int, rng func(extent, n, r int) (lo, hi int)) []ShardMove {
	if extent <= 0 || oldN <= 0 || newN <= 0 {
		return nil
	}
	ownerAt := func(n, pos int) int {
		for r := 0; r < n; r++ {
			lo, hi := rng(extent, n, r)
			if pos >= lo && pos < hi {
				return r
			}
		}
		return n - 1
	}
	endAt := func(n, r int) int {
		_, hi := rng(extent, n, r)
		return hi
	}
	var out []ShardMove
	for pos := 0; pos < extent; {
		from := ownerAt(oldN, pos)
		to := ownerAt(newN, pos)
		hi := min(endAt(oldN, from), endAt(newN, to))
		if hi <= pos { // degenerate empty range; cannot happen with tilings
			hi = pos + 1
		}
		out = append(out, ShardMove{From: from, To: to, Lo: pos, Hi: hi})
		pos = hi
	}
	return out
}

// Stats summarizes the load balance of one scheme over sampled batches.
type Stats struct {
	Scheme string
	// Imbalance is max shard load over mean shard load, averaged over
	// batches; 1.0 is perfect balance. The AlltoAll finishes when the
	// hottest shard finishes, so this factor directly scales the sparse
	// exchange time.
	Imbalance float64
	// MaxShare is the hottest shard's average fraction of total load
	// (1/n under perfect balance).
	MaxShare float64
}

// Measure evaluates a scheme over a series of batches on n shards.
func Measure(s Scheme, batches [][]int64, n int) (Stats, error) {
	if n <= 0 {
		return Stats{}, fmt.Errorf("partition: shards must be positive, got %d", n)
	}
	if len(batches) == 0 {
		return Stats{}, fmt.Errorf("partition: no batches")
	}
	st := Stats{Scheme: s.Name()}
	for _, batch := range batches {
		if len(batch) == 0 {
			return Stats{}, fmt.Errorf("partition: empty batch")
		}
		loads := s.ShardLoads(batch, n)
		var total, maxLoad float64
		for _, l := range loads {
			total += l
			if l > maxLoad {
				maxLoad = l
			}
		}
		mean := total / float64(n)
		st.Imbalance += maxLoad / mean
		st.MaxShare += maxLoad / total
	}
	inv := 1 / float64(len(batches))
	st.Imbalance *= inv
	st.MaxShare *= inv
	return st, nil
}

// Compare measures every scheme on the same batches and returns the stats
// sorted by imbalance (best first).
func Compare(batches [][]int64, vocab, n int) ([]Stats, error) {
	schemes := []Scheme{ColumnWise{}, RowHash{}, RowRange{Vocab: vocab}}
	out := make([]Stats, 0, len(schemes))
	for _, s := range schemes {
		st, err := Measure(s, batches, n)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Imbalance < out[j].Imbalance })
	return out, nil
}
