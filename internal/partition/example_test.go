package partition_test

import (
	"fmt"

	"embrace/internal/partition"
)

// Column-wise partitioning balances perfectly regardless of token skew,
// while contiguous row-wise partitioning concentrates load on the shard
// holding the frequency-sorted vocabulary head (§4.1.1).
func ExampleMeasure() {
	// A batch hammering the vocabulary head (hot tokens 0..9 of 1000).
	batch := make([]int64, 100)
	for i := range batch {
		batch[i] = int64(i % 10)
	}
	col, _ := partition.Measure(partition.ColumnWise{}, [][]int64{batch}, 4)
	row, _ := partition.Measure(partition.RowRange{Vocab: 1000}, [][]int64{batch}, 4)
	fmt.Printf("column-wise imbalance %.1f, row-range imbalance %.1f\n",
		col.Imbalance, row.Imbalance)
	// Output:
	// column-wise imbalance 1.0, row-range imbalance 4.0
}
