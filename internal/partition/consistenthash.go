package partition

import (
	"sort"
	"sync"
)

// ConsistentHash places embedding rows on a consistent-hash ring: every
// shard projects Vnodes points onto a 64-bit ring, and a token is owned by
// the shard whose point follows the token's hash clockwise. Like RowHash it
// is row-wise (whole vectors, one owner per token), but ownership is stable
// under resizing: growing the ring from n to n+1 shards moves only the
// ~1/(n+1) of tokens that land in the new shard's arcs, where modulo hashing
// reshuffles almost everything. That stability is what lets a serving plane
// add or drop drivers without invalidating nearly every replica and cache
// entry — the placement analogue of Parallax's observation that hot sparse
// parameters deserve different treatment than the cold tail.
type ConsistentHash struct {
	// Vnodes is the number of ring points per shard (default 64). More
	// points smooth the arc lengths — expected per-shard load imbalance
	// falls roughly with 1/sqrt(Vnodes) — at the cost of a larger ring.
	Vnodes int
}

// DefaultVnodes is the ring density used when Vnodes is unset.
const DefaultVnodes = 64

// Name implements Scheme.
func (ConsistentHash) Name() string { return "consistent-hash" }

func (c ConsistentHash) vnodes() int {
	if c.Vnodes <= 0 {
		return DefaultVnodes
	}
	return c.Vnodes
}

// ringPoint is one shard's projection onto the ring.
type ringPoint struct {
	hash  uint64
	shard int
}

// ring is the sorted point set for one (shards, vnodes) pair. Rings are
// pure functions of that pair, so they are built once and cached; lookups
// after the first cost one binary search and no allocation.
type ring struct {
	points []ringPoint
}

// ringKey identifies a cached ring.
type ringKey struct {
	shards, vnodes int
}

// rings caches built rings. sync.Map fits the access pattern exactly: one
// store per (shards, vnodes) pair ever, then read-only lookups from many
// goroutines (every serving driver routes through Owner).
var rings sync.Map

func ringFor(shards, vnodes int) *ring {
	key := ringKey{shards, vnodes}
	if r, ok := rings.Load(key); ok {
		return r.(*ring)
	}
	pts := make([]ringPoint, 0, shards*vnodes)
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			// Seed each point from (shard, vnode) so the ring is a pure
			// function of the pair — no global state, no ordering effects.
			h := splitmix64(uint64(s)<<32 | uint64(v))
			pts = append(pts, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		// Ties (vanishingly rare) break by shard so the ring is total.
		return pts[i].shard < pts[j].shard
	})
	r := &ring{points: pts}
	actual, _ := rings.LoadOrStore(key, r)
	return actual.(*ring)
}

// owner returns the shard of the first ring point at or clockwise of h.
func (r *ring) owner(h uint64) int {
	pts := r.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= h })
	if i == len(pts) {
		i = 0 // wrap past the top of the ring
	}
	return pts[i].shard
}

// splitmix64 is the finalizer-quality mixer the chaos transport also derives
// its per-stream generators from (reimplemented here: partition depends on
// nothing). It is bijective on uint64, so distinct tokens never collapse
// before the ring search.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Owner returns the shard in [0, n) holding token tok's full embedding row.
// Negative ids (padding sentinels) hash like any other value — the uint64
// conversion is a bijection, so no clamping or sign normalization is needed.
func (c ConsistentHash) Owner(tok int64, n int) int {
	if n <= 1 {
		return 0
	}
	return ringFor(n, c.vnodes()).owner(splitmix64(uint64(tok)))
}

// ShardLoads implements Scheme.
func (c ConsistentHash) ShardLoads(tokens []int64, n int) []float64 {
	loads := make([]float64, n)
	if n <= 0 {
		return loads
	}
	r := ringFor(n, c.vnodes())
	for _, tok := range tokens {
		loads[r.owner(splitmix64(uint64(tok)))]++
	}
	return loads
}

// Moved reports the fraction of the sampled tokens whose owner changes when
// the ring resizes from oldN to newN shards — the disruption a serving
// plane's replicas and caches absorb on a driver-set resize. For modulo
// hashing this approaches 1; for the ring it approaches |newN-oldN|/max.
func (c ConsistentHash) Moved(tokens []int64, oldN, newN int) float64 {
	if len(tokens) == 0 {
		return 0
	}
	moved := 0
	for _, tok := range tokens {
		if c.Owner(tok, oldN) != c.Owner(tok, newN) {
			moved++
		}
	}
	return float64(moved) / float64(len(tokens))
}
