package partition

import (
	"math"
	"testing"
	"testing/quick"

	"embrace/internal/data"
)

func zipfBatches(t *testing.T, vocab, batches, tokensPer int) [][]int64 {
	t.Helper()
	gen, err := data.NewGenerator(data.Config{
		VocabSize:      vocab,
		BatchSentences: tokensPer / 10,
		MaxSeqLen:      10,
		MinSeqLen:      10,
		ZipfS:          1.8,
		ZipfV:          2,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]int64, batches)
	for i := range out {
		out[i] = gen.NextBatch().Tokens()
	}
	return out
}

func TestColumnWisePerfectBalance(t *testing.T) {
	batches := zipfBatches(t, 1000, 5, 200)
	st, err := Measure(ColumnWise{}, batches, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Imbalance-1.0) > 1e-9 {
		t.Fatalf("column-wise imbalance = %v, want exactly 1", st.Imbalance)
	}
	if math.Abs(st.MaxShare-1.0/8) > 1e-9 {
		t.Fatalf("column-wise max share = %v, want 1/8", st.MaxShare)
	}
}

func TestRowRangeSuffersOnFrequencySortedVocab(t *testing.T) {
	// Our generator assigns low ids to frequent words (Zipf), matching
	// frequency-sorted tokenizer vocabularies, so contiguous row ranges
	// concentrate nearly all lookups on shard 0 — the §4.1.1 argument.
	batches := zipfBatches(t, 1000, 5, 200)
	st, err := Measure(RowRange{Vocab: 1000}, batches, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.Imbalance < 4 {
		t.Fatalf("row-range imbalance = %v, expected severe (>4x on 8 shards)", st.Imbalance)
	}
}

func TestRowHashBetterThanRangeWorseThanColumn(t *testing.T) {
	batches := zipfBatches(t, 1000, 5, 200)
	rng, _ := Measure(RowRange{Vocab: 1000}, batches, 8)
	hash, _ := Measure(RowHash{}, batches, 8)
	col, _ := Measure(ColumnWise{}, batches, 8)
	if !(col.Imbalance < hash.Imbalance && hash.Imbalance < rng.Imbalance) {
		t.Fatalf("expected column (%v) < hash (%v) < range (%v)",
			col.Imbalance, hash.Imbalance, rng.Imbalance)
	}
}

func TestShardLoadsConserveWork(t *testing.T) {
	// Property: every scheme distributes exactly len(tokens) row-units.
	f := func(seed int64) bool {
		n := int(seed%7+7)%7 + 2 // 2..8
		tokens := make([]int64, 50+int(seed%50+50)%50)
		for i := range tokens {
			tokens[i] = int64((int(seed) + i*7) % 1000)
			if tokens[i] < 0 {
				tokens[i] += 1000
			}
		}
		for _, s := range []Scheme{ColumnWise{}, RowHash{}, RowRange{Vocab: 1000}} {
			loads := s.ShardLoads(tokens, n)
			if len(loads) != n {
				return false
			}
			var total float64
			for _, l := range loads {
				if l < 0 {
					return false
				}
				total += l
			}
			if math.Abs(total-float64(len(tokens))) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShardLoadsHostileTokenIDs(t *testing.T) {
	// Regression: RowHash indexed loads[int(tok)%n], which is negative for
	// negative ids (padding sentinels, masked positions) and panicked;
	// RowRange divided the raw id the same way. Both must tolerate any
	// int64 id, including ones past MaxInt32.
	schemes := []Scheme{RowHash{}, RowRange{Vocab: 1000}, ColumnWise{}}
	cases := []struct {
		name   string
		tokens []int64
		n      int
	}{
		{"negative ids", []int64{-1, -2, -7, 3}, 4},
		{"most negative id", []int64{math.MinInt64}, 3},
		{"past MaxInt32", []int64{1 << 40, (1 << 40) + 1}, 4},
		{"mixed extremes", []int64{math.MinInt64, -1, 0, 5, math.MaxInt64}, 5},
	}
	for _, c := range cases {
		for _, s := range schemes {
			loads := s.ShardLoads(c.tokens, c.n) // must not panic
			if len(loads) != c.n {
				t.Fatalf("%s/%s: %d shards, want %d", s.Name(), c.name, len(loads), c.n)
			}
			var total float64
			for i, l := range loads {
				if l < 0 {
					t.Fatalf("%s/%s: negative load %f on shard %d", s.Name(), c.name, l, i)
				}
				total += l
			}
			if math.Abs(total-float64(len(c.tokens))) > 1e-9 {
				t.Fatalf("%s/%s: total load %f, want %d", s.Name(), c.name, total, len(c.tokens))
			}
		}
	}
	// Hashing must still agree with the plain modulus on ordinary ids.
	loads := RowHash{}.ShardLoads([]int64{0, 1, 2, 5, 9}, 4)
	want := []float64{1, 3, 1, 0}
	for i := range want {
		if loads[i] != want[i] {
			t.Fatalf("RowHash loads = %v, want %v", loads, want)
		}
	}
	// A negative id and its normalized counterpart land on the same shard:
	// -3 mod 4 == 1.
	loads = RowHash{}.ShardLoads([]int64{-3}, 4)
	if loads[1] != 1 {
		t.Fatalf("RowHash(-3) loads = %v, want shard 1", loads)
	}
}

func TestMeasureValidation(t *testing.T) {
	if _, err := Measure(ColumnWise{}, [][]int64{{1}}, 0); err == nil {
		t.Fatal("expected shards error")
	}
	if _, err := Measure(ColumnWise{}, nil, 4); err == nil {
		t.Fatal("expected empty-batches error")
	}
	if _, err := Measure(ColumnWise{}, [][]int64{{}}, 4); err == nil {
		t.Fatal("expected empty-batch error")
	}
}

func TestCompareSortsByImbalance(t *testing.T) {
	batches := zipfBatches(t, 1000, 3, 200)
	stats, err := Compare(batches, 1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("%d stats", len(stats))
	}
	if stats[0].Scheme != "column-wise" {
		t.Fatalf("best scheme = %s, want column-wise", stats[0].Scheme)
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].Imbalance < stats[i-1].Imbalance {
			t.Fatal("not sorted by imbalance")
		}
	}
}

func TestSchemeNames(t *testing.T) {
	if ColumnWise.Name(ColumnWise{}) != "column-wise" ||
		RowHash.Name(RowHash{}) != "row-hash" ||
		(RowRange{}).Name() != "row-range" {
		t.Fatal("unexpected scheme names")
	}
}

func TestRowHashOwnerMatchesShardLoads(t *testing.T) {
	// Owner is the routing twin of ShardLoads: summing Owner assignments must
	// reproduce the load vector exactly, including for negative and huge ids.
	tokens := []int64{0, 1, 2, 3, -1, -7, 1 << 40, 9999999999999}
	for _, n := range []int{1, 2, 4, 7} {
		loads := RowHash{}.ShardLoads(tokens, n)
		counted := make([]float64, n)
		for _, tok := range tokens {
			o := RowHash{}.Owner(tok, n)
			if o < 0 || o >= n {
				t.Fatalf("Owner(%d, %d) = %d out of range", tok, n, o)
			}
			counted[o]++
		}
		for s := range loads {
			if counted[s] != loads[s] {
				t.Fatalf("n=%d shard %d: Owner count %v != ShardLoads %v", n, s, counted, loads)
			}
		}
	}
}

func TestRowRangeOwnerMatchesShardLoads(t *testing.T) {
	p := RowRange{Vocab: 100}
	tokens := []int64{0, 1, 49, 50, 99, 100, 150, -3, 1 << 40}
	for _, n := range []int{1, 3, 4} {
		loads := p.ShardLoads(tokens, n)
		counted := make([]float64, n)
		for _, tok := range tokens {
			o := p.Owner(tok, n)
			if o < 0 || o >= n {
				t.Fatalf("Owner(%d, %d) = %d out of range", tok, n, o)
			}
			counted[o]++
		}
		for s := range loads {
			if counted[s] != loads[s] {
				t.Fatalf("n=%d shard %d: Owner count %v != ShardLoads %v", n, s, counted, loads)
			}
		}
	}
}

func TestColumnWiseRangeTiles(t *testing.T) {
	for _, tc := range []struct{ dim, n int }{{8, 4}, {10, 4}, {7, 3}, {5, 8}, {1, 1}, {16, 1}} {
		next := 0
		for r := 0; r < tc.n; r++ {
			lo, hi := ColumnWise{}.Range(tc.dim, tc.n, r)
			if lo != next {
				t.Fatalf("dim=%d n=%d r=%d: lo %d leaves gap after %d", tc.dim, tc.n, r, lo, next)
			}
			if hi < lo {
				t.Fatalf("dim=%d n=%d r=%d: inverted range [%d,%d)", tc.dim, tc.n, r, lo, hi)
			}
			next = hi
		}
		if next != tc.dim {
			t.Fatalf("dim=%d n=%d: ranges cover %d columns", tc.dim, tc.n, next)
		}
	}
}
