package partition

import (
	"testing"
)

// TestConsistentHashOwnerDeterministic pins the property serving relies on:
// Owner is a pure function of (token, shards) — every rank building a shard
// and every driver routing a request agree on placement with no shared state.
func TestConsistentHashOwnerDeterministic(t *testing.T) {
	ch := ConsistentHash{}
	for _, n := range []int{1, 2, 3, 4, 8, 16} {
		for tok := int64(-5); tok < 200; tok++ {
			a := ch.Owner(tok, n)
			b := ch.Owner(tok, n)
			if a != b {
				t.Fatalf("Owner(%d, %d) unstable: %d then %d", tok, n, a, b)
			}
			if a < 0 || a >= n {
				t.Fatalf("Owner(%d, %d) = %d outside [0, %d)", tok, n, a, n)
			}
		}
	}
	// Distinct Vnodes settings are distinct rings, not cache collisions.
	coarse := ConsistentHash{Vnodes: 1}
	differ := false
	for tok := int64(0); tok < 1000; tok++ {
		if coarse.Owner(tok, 4) != ch.Owner(tok, 4) {
			differ = true
			break
		}
	}
	if !differ {
		t.Error("Vnodes=1 and default rings agree on every token — ring cache is conflating keys")
	}
}

// TestConsistentHashBalance checks the ring spreads a uniform token
// population acceptably: with the default vnode density no shard should own
// more than ~2x its fair share.
func TestConsistentHashBalance(t *testing.T) {
	tokens := make([]int64, 20000)
	for i := range tokens {
		tokens[i] = int64(i)
	}
	for _, n := range []int{2, 4, 8} {
		loads := ConsistentHash{}.ShardLoads(tokens, n)
		if len(loads) != n {
			t.Fatalf("n=%d: got %d loads", n, len(loads))
		}
		fair := float64(len(tokens)) / float64(n)
		var total float64
		for s, l := range loads {
			total += l
			if l > 2*fair {
				t.Errorf("n=%d shard %d owns %.0f tokens, over 2x fair share %.0f", n, s, l, fair)
			}
			if l == 0 {
				t.Errorf("n=%d shard %d owns nothing", n, s)
			}
		}
		if total != float64(len(tokens)) {
			t.Errorf("n=%d: loads sum to %.0f, want %d", n, total, len(tokens))
		}
	}
}

// TestConsistentHashMinimalDisruption is the reason the ring exists: growing
// the shard set moves only the tokens the new shard captures. Modulo hashing
// (RowHash) reshuffles nearly everything on the same resize.
func TestConsistentHashMinimalDisruption(t *testing.T) {
	tokens := make([]int64, 10000)
	for i := range tokens {
		tokens[i] = int64(i * 3)
	}
	ch := ConsistentHash{}
	moved := ch.Moved(tokens, 4, 5)
	// Expected ~1/5; allow generous slack for ring-arc variance.
	if moved > 0.40 {
		t.Errorf("ring 4->5 moved %.1f%% of tokens, want ~20%%", 100*moved)
	}
	if moved == 0 {
		t.Error("ring 4->5 moved nothing — new shard owns no arcs")
	}
	// Tokens that do not move must be the overwhelming majority; contrast
	// with modulo hashing, which keeps only ~1/5 in place.
	kept := 0
	for _, tok := range tokens {
		if (RowHash{}).Owner(tok, 4) == (RowHash{}).Owner(tok, 5) {
			kept++
		}
	}
	modMoved := 1 - float64(kept)/float64(len(tokens))
	if moved >= modMoved {
		t.Errorf("ring moved %.1f%%, modulo moved %.1f%% — ring lost its selling point", 100*moved, 100*modMoved)
	}
}

// TestConsistentHashScheme runs the scheme through Measure like the others,
// so the §4.1.1 imbalance harness covers it too.
func TestConsistentHashScheme(t *testing.T) {
	batch := make([]int64, 512)
	for i := range batch {
		batch[i] = int64(i)
	}
	st, err := Measure(ConsistentHash{}, [][]int64{batch}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scheme != "consistent-hash" {
		t.Errorf("scheme name %q", st.Scheme)
	}
	if st.Imbalance < 1 {
		t.Errorf("imbalance %v below 1 — arithmetic broken", st.Imbalance)
	}
}
