package tensor

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func mustSparse(t *testing.T, numRows, dim int, idx []int64, vals []float32) *Sparse {
	t.Helper()
	s, err := NewSparse(numRows, dim, idx, vals)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randomSparse builds a random, possibly duplicate-laden sparse tensor.
func randomSparse(rng *rand.Rand, numRows, dim, nnz int) *Sparse {
	idx := make([]int64, nnz)
	vals := make([]float32, nnz*dim)
	for i := range idx {
		idx[i] = int64(rng.Intn(numRows))
	}
	for i := range vals {
		vals[i] = rng.Float32()*2 - 1
	}
	s, _ := NewSparse(numRows, dim, idx, vals)
	return s
}

func TestNewSparseValidation(t *testing.T) {
	if _, err := NewSparse(4, 2, []int64{0, 1}, []float32{1, 2, 3}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := NewSparse(4, 2, []int64{4}, []float32{1, 2}); err == nil {
		t.Fatal("expected out-of-range index error")
	}
	if _, err := NewSparse(4, 2, []int64{-1}, []float32{1, 2}); err == nil {
		t.Fatal("expected negative index error")
	}
}

func TestCoalesceMergesDuplicates(t *testing.T) {
	s := mustSparse(t, 10, 2,
		[]int64{3, 1, 3, 1},
		[]float32{1, 2, 10, 20, 3, 4, 30, 40})
	c := s.Coalesce()
	if !c.IsCoalesced() {
		t.Fatal("result must be coalesced")
	}
	if c.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", c.NNZ())
	}
	if c.Indices[0] != 1 || c.Indices[1] != 3 {
		t.Fatalf("indices = %v, want sorted [1 3]", c.Indices)
	}
	if c.Row(0)[0] != 40 || c.Row(0)[1] != 60 {
		t.Fatalf("row 1 = %v, want [40 60]", c.Row(0))
	}
	if c.Row(1)[0] != 4 || c.Row(1)[1] != 6 {
		t.Fatalf("row 3 = %v, want [4 6]", c.Row(1))
	}
}

func TestCoalesceEmptyAndIdempotent(t *testing.T) {
	e := EmptySparse(5, 3)
	if e.Coalesce() != e {
		t.Fatal("coalescing a coalesced tensor should be a no-op")
	}
	s := mustSparse(t, 5, 1, []int64{2, 2}, []float32{1, 1})
	c := s.Coalesce()
	if c.Coalesce() != c {
		t.Fatal("Coalesce must be idempotent")
	}
}

// Property: ToDense is invariant under Coalesce.
func TestCoalescePreservesDenseProjection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSparse(rng, 20, 3, rng.Intn(40))
		return s.ToDense().AllClose(s.Coalesce().ToDense(), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: after Coalesce, indices are strictly increasing (sorted unique).
func TestCoalesceSortedUniqueProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomSparse(rng, 15, 2, rng.Intn(50)).Coalesce()
		for i := 1; i < len(c.Indices); i++ {
			if c.Indices[i] <= c.Indices[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionInvariants(t *testing.T) {
	// Property: Partition(prior) yields disjoint parts covering the input,
	// which is the correctness condition for Algorithm 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSparse(rng, 30, 2, rng.Intn(60)).Coalesce()
		var prior []int64
		for _, ix := range s.Indices {
			if rng.Intn(2) == 0 {
				prior = append(prior, ix) // Indices are sorted: prior stays sorted
			}
		}
		in, out := s.Partition(prior)
		if in.NNZ()+out.NNZ() != s.NNZ() {
			return false
		}
		for _, ix := range in.Indices {
			if !ContainsSorted(prior, ix) {
				return false
			}
		}
		for _, ix := range out.Indices {
			if ContainsSorted(prior, ix) {
				return false
			}
		}
		// The two parts must reassemble to the original dense projection.
		merged, err := Concat(in, out)
		if err != nil {
			return false
		}
		return merged.ToDense().AllClose(s.ToDense(), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexSelect(t *testing.T) {
	s := mustSparse(t, 10, 1, []int64{1, 5, 7}, []float32{10, 50, 70})
	sel := s.IndexSelect([]int64{5, 7, 9})
	if sel.NNZ() != 2 || sel.Indices[0] != 5 || sel.Indices[1] != 7 {
		t.Fatalf("IndexSelect got %v", sel.Indices)
	}
	if sel.Vals[0] != 50 || sel.Vals[1] != 70 {
		t.Fatalf("IndexSelect vals %v", sel.Vals)
	}
}

func TestColumnSlice(t *testing.T) {
	s := mustSparse(t, 4, 4, []int64{0, 2}, []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
	})
	c := s.ColumnSlice(1, 3)
	if c.Dim != 2 {
		t.Fatalf("Dim = %d, want 2", c.Dim)
	}
	if c.Row(0)[0] != 2 || c.Row(0)[1] != 3 || c.Row(1)[0] != 6 || c.Row(1)[1] != 7 {
		t.Fatalf("ColumnSlice rows = %v", c.Vals)
	}
	// Column slices across all shards must reassemble the original rows.
	left := s.ColumnSlice(0, 2)
	right := s.ColumnSlice(2, 4)
	for i := range s.Indices {
		for j := 0; j < 2; j++ {
			if left.Row(i)[j] != s.Row(i)[j] || right.Row(i)[j] != s.Row(i)[j+2] {
				t.Fatal("column shards do not reassemble original")
			}
		}
	}
}

func TestColumnSlicePanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EmptySparse(3, 4).ColumnSlice(2, 5)
}

func TestToDenseAndAddToDense(t *testing.T) {
	s := mustSparse(t, 3, 2, []int64{1, 1}, []float32{1, 2, 3, 4})
	d := s.ToDense()
	if d.At(1, 0) != 4 || d.At(1, 1) != 6 {
		t.Fatalf("ToDense row 1 = %v %v", d.At(1, 0), d.At(1, 1))
	}
	if d.At(0, 0) != 0 || d.At(2, 1) != 0 {
		t.Fatal("untouched rows must stay zero")
	}
	s.AddToDense(d, -1)
	if d.At(1, 0) != 0 || d.At(1, 1) != 0 {
		t.Fatal("AddToDense with scale -1 must cancel")
	}
}

func TestFromDenseRows(t *testing.T) {
	d, _ := FromSlice([]float32{0, 1, 10, 11, 20, 21}, 3, 2)
	s := FromDenseRows(d, []int64{2, 0})
	if s.NNZ() != 2 || s.Row(0)[0] != 20 || s.Row(1)[1] != 1 {
		t.Fatalf("FromDenseRows got %v / %v", s.Indices, s.Vals)
	}
}

func TestConcat(t *testing.T) {
	a := mustSparse(t, 5, 1, []int64{0}, []float32{1})
	b := mustSparse(t, 5, 1, []int64{3}, []float32{2})
	c, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 2 || c.Indices[1] != 3 {
		t.Fatalf("Concat got %v", c.Indices)
	}
	bad := mustSparse(t, 5, 2, []int64{0}, []float32{1, 2})
	if _, err := Concat(a, bad); err == nil {
		t.Fatal("expected dim mismatch error")
	}
	if _, err := Concat(); err == nil {
		t.Fatal("expected empty concat error")
	}
}

func TestDensityAndSizes(t *testing.T) {
	s := mustSparse(t, 100, 4, []int64{1, 1, 7}, make([]float32, 12))
	if got := s.Density(); got != 0.02 {
		t.Fatalf("Density = %v, want 0.02 (2 unique of 100)", got)
	}
	if s.SizeBytes() != 3*8+12*4 {
		t.Fatalf("SizeBytes = %d", s.SizeBytes())
	}
	if s.DenseSizeBytes() != 100*4*4 {
		t.Fatalf("DenseSizeBytes = %d", s.DenseSizeBytes())
	}
}

func TestUniqueIntersectDifference(t *testing.T) {
	u := UniqueInt64([]int64{5, 1, 5, 3, 1})
	if len(u) != 3 || u[0] != 1 || u[1] != 3 || u[2] != 5 {
		t.Fatalf("UniqueInt64 = %v", u)
	}
	a := []int64{1, 3, 5, 7}
	b := []int64{3, 4, 5, 8}
	in := Intersect(a, b)
	if len(in) != 2 || in[0] != 3 || in[1] != 5 {
		t.Fatalf("Intersect = %v", in)
	}
	diff := Difference(a, b)
	if len(diff) != 2 || diff[0] != 1 || diff[1] != 7 {
		t.Fatalf("Difference = %v", diff)
	}
	if got := Intersect(nil, b); len(got) != 0 {
		t.Fatalf("Intersect(nil,b) = %v", got)
	}
	if got := Difference(a, nil); len(got) != len(a) {
		t.Fatalf("Difference(a,nil) = %v", got)
	}
}

// Property: Intersect ∪ Difference partitions the left operand.
func TestIntersectDifferencePartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []int64 {
			n := rng.Intn(30)
			xs := make([]int64, n)
			for i := range xs {
				xs[i] = int64(rng.Intn(40))
			}
			return UniqueInt64(xs)
		}
		a, b := mk(), mk()
		in, diff := Intersect(a, b), Difference(a, b)
		merged := append(append([]int64(nil), in...), diff...)
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		if len(merged) != len(a) {
			return false
		}
		for i := range a {
			if merged[i] != a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneSparseIndependence(t *testing.T) {
	s := mustSparse(t, 5, 1, []int64{2}, []float32{7})
	c := s.Clone()
	c.Vals[0] = 9
	c.Indices[0] = 3
	if s.Vals[0] != 7 || s.Indices[0] != 2 {
		t.Fatal("Clone must not share storage")
	}
}

func TestGobRoundTripDense(t *testing.T) {
	orig := Full(3.5, 2, 3)
	orig.Set(-1, 1, 2)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(orig); err != nil {
		t.Fatal(err)
	}
	var got Dense
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.AllClose(orig, 0) || got.Dim(0) != 2 || got.Dim(1) != 3 {
		t.Fatalf("round trip mismatch: %v", got.Shape())
	}
}

func TestGobRoundTripSparsePreservesCoalesced(t *testing.T) {
	s := mustSparse(t, 10, 2, []int64{3, 3, 1}, []float32{1, 2, 3, 4, 5, 6})
	c := s.Coalesce()
	for _, in := range []*Sparse{s, c} {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(in); err != nil {
			t.Fatal(err)
		}
		var got Sparse
		if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
			t.Fatal(err)
		}
		if got.IsCoalesced() != in.IsCoalesced() {
			t.Fatal("coalesced flag not preserved")
		}
		if !got.ToDense().AllClose(in.ToDense(), 0) {
			t.Fatal("values not preserved")
		}
	}
}

func TestGobDecodeRejectsCorrupt(t *testing.T) {
	// A sparse tensor claiming more values than indices*dim must fail.
	bad := sparseWireForTest(5, 2, []int64{1}, []float32{1, 2, 3})
	var got Sparse
	if err := got.GobDecode(bad); err == nil {
		t.Fatal("expected length mismatch error")
	}
	badIdx := sparseWireForTest(5, 2, []int64{9}, []float32{1, 2})
	if err := got.GobDecode(badIdx); err == nil {
		t.Fatal("expected range error")
	}
}

// sparseWireForTest builds raw gob bytes for a (possibly invalid) sparse
// tensor, bypassing NewSparse validation.
func sparseWireForTest(rows, dim int, idx []int64, vals []float32) []byte {
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(struct {
		NumRows   int
		Dim       int
		Indices   []int64
		Vals      []float32
		Coalesced bool
	}{rows, dim, idx, vals, false})
	return buf.Bytes()
}
