package tensor

// This file is the vectorized row-bucketing core of the hot-path rebuild:
// sort-free counting-sort bucketing of int64 row ids by destination rank,
// binary-search range bucketing against sorted rank boundaries, and the
// allocation-free int64 sort/search primitives the in-place Sparse variants
// build on. Everything here writes into caller-owned (or receiver-owned)
// buffers that grow to a high-water mark and are then reused, so steady-state
// calls allocate nothing — the property the `hotalloc` analyzer enforces on
// the marked functions.

// SearchInt64 returns the smallest i in [0, len(xs)] with xs[i] >= x — the
// lower-bound binary search (searchsorted-left). xs must be sorted ascending.
// It is a hand-rolled loop rather than sort.Search so hot callers pay no
// closure indirection.
//
//embrace:hotpath
func SearchInt64(xs []int64, x int64) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ContainsSorted reports whether x occurs in the ascending-sorted slice xs.
// Duplicates in xs are harmless; it is pure membership.
//
//embrace:hotpath
func ContainsSorted(xs []int64, x int64) bool {
	i := SearchInt64(xs, x)
	return i < len(xs) && xs[i] == x
}

// SortInt64 sorts xs ascending in place without allocating: median-of-three
// quicksort with an insertion-sort cutoff. Equal elements are
// indistinguishable, so the missing stability is unobservable.
//
//embrace:hotpath
func SortInt64(xs []int64) {
	for len(xs) > 12 {
		// Median-of-three pivot, placed at xs[0].
		m := len(xs) / 2
		hi := len(xs) - 1
		if xs[m] < xs[0] {
			xs[m], xs[0] = xs[0], xs[m]
		}
		if xs[hi] < xs[0] {
			xs[hi], xs[0] = xs[0], xs[hi]
		}
		if xs[hi] < xs[m] {
			xs[hi], xs[m] = xs[m], xs[hi]
		}
		pivot := xs[m]
		i, j := 0, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, loop on the larger: O(log n) stack.
		if j < len(xs)-i {
			SortInt64(xs[:j+1])
			xs = xs[i:]
		} else {
			SortInt64(xs[i:])
			xs = xs[:j+1]
		}
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// UniqueSorted compacts consecutive duplicates of an ascending-sorted slice
// in place and returns the shortened prefix. Combined with SortInt64 it is
// the allocation-free form of UniqueInt64.
//
//embrace:hotpath
func UniqueSorted(xs []int64) []int64 {
	if len(xs) == 0 {
		return xs
	}
	w := 1
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[w-1] {
			xs[w] = xs[i]
			w++
		}
	}
	return xs[:w]
}

// RowBucketer groups row ids by destination rank with a stable two-pass
// counting sort, the vectorized replacement for the per-step map/append
// bucketing the strategies used to do (SNIPPETS.md Snippet 1's searchsorted
// pattern). One Bucket call yields, in receiver-owned buffers:
//
//	Counts()[d]   — how many ids go to destination d
//	Offsets()[d]  — where bucket d starts in the grouped order (exclusive
//	                prefix sums; Offsets() has ndst+1 entries, so bucket d is
//	                the half-open range [Offsets()[d], Offsets()[d+1]))
//	Perm()[k]     — the original position of the k-th id in grouped order;
//	                within a bucket, original order is preserved (stable)
//
// Callers walk Perm() bucket by bucket to pack per-destination index/value
// streams without ever building a map. The buffers grow to a high-water mark
// on first use and are reused on every later call, so steady-state bucketing
// allocates nothing. A RowBucketer is not safe for concurrent use.
//
//embrace:arena
type RowBucketer struct {
	counts []int
	offs   []int
	dest   []int32
	perm   []int32
}

// Counts returns the per-destination id counts of the last Bucket call.
//
// aliases: the returned slice is the bucketer's scratch — valid until the
// next Bucket call.
//
//embrace:arena
func (b *RowBucketer) Counts() []int { return b.counts }

// Offsets returns the exclusive prefix sums of Counts, with ndst+1 entries.
//
// aliases: the returned slice is the bucketer's scratch — valid until the
// next Bucket call.
//
//embrace:arena
func (b *RowBucketer) Offsets() []int { return b.offs }

// Perm returns the stable destination-grouped permutation of the last Bucket
// call: Perm()[k] is the index into the original ids of the k-th grouped id.
//
// aliases: the returned slice is the bucketer's scratch — valid until the
// next Bucket call.
//
//embrace:arena
func (b *RowBucketer) Perm() []int32 { return b.perm }

// Bucket groups ids by destOf(id), which must return a value in [0, ndst).
//
//embrace:hotpath
//embrace:arena reuse b
func (b *RowBucketer) Bucket(ids []int64, ndst int, destOf func(int64) int) {
	b.ensure(len(ids), ndst)
	counts := b.counts
	for i := range counts {
		counts[i] = 0
	}
	dest := b.dest
	for i, id := range ids {
		d := destOf(id)
		dest[i] = int32(d)
		counts[d]++
	}
	b.scatter(ids)
}

// BucketRanges groups ids by binary search against sorted range boundaries:
// id belongs to destination d when bounds[d] <= id < bounds[d+1], so
// len(bounds)-1 is the destination count. This is the rank-boundary
// bucketing of a contiguously row-partitioned table.
//
//embrace:hotpath
//embrace:arena reuse b
func (b *RowBucketer) BucketRanges(ids []int64, bounds []int64) {
	ndst := len(bounds) - 1
	b.ensure(len(ids), ndst)
	counts := b.counts
	for i := range counts {
		counts[i] = 0
	}
	dest := b.dest
	inner := bounds[1:ndst] // the ndst-1 interior boundaries
	for i, id := range ids {
		d := SearchInt64(inner, id+1) // upper bound: first boundary > id
		dest[i] = int32(d)
		counts[d]++
	}
	b.scatter(ids)
}

// scatter turns b.counts/b.dest into offsets and the stable permutation —
// pass two of the counting sort.
//
//embrace:hotpath
func (b *RowBucketer) scatter(ids []int64) {
	offs := b.offs
	run := 0
	for d, c := range b.counts {
		offs[d] = run
		run += c
	}
	offs[len(b.counts)] = run
	// next[d] tracks the write cursor of bucket d; reuse the perm tail as
	// cursor storage is not possible (it is the output), so walk offs twice:
	// cursors live in counts' prefix image and are rebuilt from offs below.
	perm := b.perm
	cursor := b.dest[len(ids):cap(b.dest)] // spare capacity beyond the ids
	cursor = cursor[:len(b.counts)]
	for d := range cursor {
		cursor[d] = int32(offs[d])
	}
	for i := range ids {
		d := b.dest[i]
		perm[cursor[d]] = int32(i)
		cursor[d]++
	}
}

// ensure grows the scratch buffers to hold n ids across ndst destinations.
// Growth happens only until the high-water mark is reached; it is the cold
// half of the bucketer, deliberately unmarked.
func (b *RowBucketer) ensure(n, ndst int) {
	if cap(b.counts) < ndst {
		b.counts = make([]int, ndst)
	}
	b.counts = b.counts[:ndst]
	if cap(b.offs) < ndst+1 {
		b.offs = make([]int, ndst+1)
	}
	b.offs = b.offs[:ndst+1]
	// dest carries n destinations plus ndst write cursors in its tail.
	if cap(b.dest) < n+ndst {
		b.dest = make([]int32, n+ndst)
	}
	b.dest = b.dest[:n]
	if cap(b.perm) < n {
		b.perm = make([]int32, n)
	}
	b.perm = b.perm[:n]
}
