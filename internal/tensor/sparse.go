package tensor

import (
	"fmt"
	"sort"
)

// Sparse is a row-sparse COO tensor representing the gradient of an
// embedding matrix of logical shape [NumRows x Dim].
//
// Indices[i] is the embedding row the i-th stored row belongs to; its values
// occupy Vals[i*Dim : (i+1)*Dim]. Duplicate indices are permitted (PyTorch
// calls such a tensor "uncoalesced"); Coalesce merges them by summation,
// which is step 2 of the paper's Algorithm 1.
type Sparse struct {
	// NumRows is the number of rows of the logical dense matrix (the
	// vocabulary size for an embedding gradient).
	NumRows int
	// Dim is the width of each row (the embedding dimension).
	Dim int
	// Indices holds the logical row index of each stored row.
	Indices []int64
	// Vals holds the stored rows back to back; len(Vals) == len(Indices)*Dim.
	Vals []float32

	coalesced bool
}

// NewSparse builds a sparse tensor from an index list and a packed value
// buffer. It returns an error if the buffer length disagrees with the index
// count or any index is out of range.
func NewSparse(numRows, dim int, indices []int64, vals []float32) (*Sparse, error) {
	if len(vals) != len(indices)*dim {
		return nil, fmt.Errorf("tensor: sparse vals length %d != %d indices * dim %d", len(vals), len(indices), dim)
	}
	for _, ix := range indices {
		if ix < 0 || ix >= int64(numRows) {
			return nil, fmt.Errorf("tensor: sparse index %d out of range [0,%d)", ix, numRows)
		}
	}
	return &Sparse{NumRows: numRows, Dim: dim, Indices: indices, Vals: vals}, nil
}

// EmptySparse returns a sparse tensor with no stored rows.
func EmptySparse(numRows, dim int) *Sparse {
	return &Sparse{NumRows: numRows, Dim: dim, coalesced: true}
}

// NNZ returns the number of stored rows (including duplicates).
func (s *Sparse) NNZ() int { return len(s.Indices) }

// SizeBytes returns the communication payload size of the sparse tensor:
// 8 bytes per index plus the packed float32 rows. This is the αM quantity in
// the paper's Table 2 cost analysis.
func (s *Sparse) SizeBytes() int { return len(s.Indices)*8 + len(s.Vals)*BytesPerElem }

// DenseSizeBytes returns the size the same gradient would occupy in dense
// format (the M of Table 2), i.e. NumRows*Dim elements.
func (s *Sparse) DenseSizeBytes() int { return s.NumRows * s.Dim * BytesPerElem }

// Density returns the fraction of logical rows stored after coalescing —
// the α of the paper's analysis. Sparsity is 1-Density.
func (s *Sparse) Density() float64 {
	if s.NumRows == 0 {
		return 0
	}
	seen := make(map[int64]struct{}, len(s.Indices))
	for _, ix := range s.Indices {
		seen[ix] = struct{}{}
	}
	return float64(len(seen)) / float64(s.NumRows)
}

// Row returns a view of the i-th stored row.
//
// aliases: the returned slice is a window into Vals — mutations are visible
// to the sparse tensor.
func (s *Sparse) Row(i int) []float32 { return s.Vals[i*s.Dim : (i+1)*s.Dim] }

// Clone returns a deep copy.
func (s *Sparse) Clone() *Sparse {
	c := &Sparse{
		NumRows:   s.NumRows,
		Dim:       s.Dim,
		Indices:   append([]int64(nil), s.Indices...),
		Vals:      append([]float32(nil), s.Vals...),
		coalesced: s.coalesced,
	}
	return c
}

// IsCoalesced reports whether the tensor is known to have unique, sorted
// indices. A freshly built tensor is assumed uncoalesced unless proven
// otherwise.
func (s *Sparse) IsCoalesced() bool { return s.coalesced }

// Coalesce returns a new sparse tensor with sorted unique indices, where the
// values of duplicate rows have been summed. This is the COALESCE step of
// Algorithm 1; Table 3's "Coalesced Grad Size" column is SizeBytes of the
// result.
func (s *Sparse) Coalesce() *Sparse {
	if s.coalesced {
		return s
	}
	if len(s.Indices) == 0 {
		return &Sparse{NumRows: s.NumRows, Dim: s.Dim, coalesced: true}
	}
	order := make([]int, len(s.Indices))
	for i := range order {
		order[i] = i
	}
	// Stable sort: duplicate rows are summed in their original order, so a
	// gradient split into parts and coalesced part-wise sums in exactly the
	// order the whole gradient would — which keeps EmbRace's prior/delayed
	// updates bit-identical to whole updates.
	sort.SliceStable(order, func(a, b int) bool { return s.Indices[order[a]] < s.Indices[order[b]] })

	outIdx := make([]int64, 0, len(s.Indices))
	outVals := make([]float32, 0, len(s.Vals))
	for _, src := range order {
		ix := s.Indices[src]
		row := s.Row(src)
		if n := len(outIdx); n > 0 && outIdx[n-1] == ix {
			dst := outVals[(n-1)*s.Dim : n*s.Dim]
			for j, v := range row {
				dst[j] += v
			}
			continue
		}
		outIdx = append(outIdx, ix)
		outVals = append(outVals, row...)
	}
	return &Sparse{NumRows: s.NumRows, Dim: s.Dim, Indices: outIdx, Vals: outVals, coalesced: true}
}

// IndexSelect returns the stored rows whose logical index occurs in keep,
// preserving the receiver's row order. keep must be sorted ascending
// (duplicates are harmless); membership is a binary search, so no per-call
// map needs to be built. It corresponds to INDEX_SELECT in Algorithm 1. The
// receiver should be coalesced for the Algorithm-1 use, but any sparse
// tensor is accepted.
func (s *Sparse) IndexSelect(keep []int64) *Sparse {
	outIdx := make([]int64, 0, len(keep))
	outVals := make([]float32, 0, len(keep)*s.Dim)
	for i, ix := range s.Indices {
		if ContainsSorted(keep, ix) {
			outIdx = append(outIdx, ix)
			outVals = append(outVals, s.Row(i)...)
		}
	}
	return &Sparse{NumRows: s.NumRows, Dim: s.Dim, Indices: outIdx, Vals: outVals, coalesced: s.coalesced}
}

// Partition splits the receiver into the rows whose index occurs in prior
// and the rest. prior must be sorted ascending (duplicates are harmless);
// membership is a binary search. The two results are disjoint and together
// contain every stored row of the receiver — the invariant Algorithm 1
// depends on. PartitionSortedInto is the buffer-reusing form.
func (s *Sparse) Partition(prior []int64) (in, out *Sparse) {
	in = &Sparse{NumRows: s.NumRows, Dim: s.Dim, coalesced: s.coalesced}
	out = &Sparse{NumRows: s.NumRows, Dim: s.Dim, coalesced: s.coalesced}
	s.PartitionSortedInto(prior, in, out)
	return in, out
}

// ColumnSlice returns a sparse tensor containing columns [lo, hi) of every
// stored row. This implements the column-wise partitioning of §4.1.1: worker
// k of N receives ColumnSlice(k*Dim/N, (k+1)*Dim/N) of an embedding gradient
// during the gradient AlltoAll.
func (s *Sparse) ColumnSlice(lo, hi int) *Sparse {
	if lo < 0 || hi > s.Dim || lo > hi {
		panic(fmt.Sprintf("tensor: column slice [%d,%d) out of range for dim %d", lo, hi, s.Dim))
	}
	w := hi - lo
	vals := make([]float32, len(s.Indices)*w)
	for i := range s.Indices {
		copy(vals[i*w:(i+1)*w], s.Row(i)[lo:hi])
	}
	return &Sparse{
		NumRows:   s.NumRows,
		Dim:       w,
		Indices:   append([]int64(nil), s.Indices...),
		Vals:      vals,
		coalesced: s.coalesced,
	}
}

// ToDense scatters the sparse tensor into a dense [NumRows x Dim] matrix,
// summing duplicate rows.
func (s *Sparse) ToDense() *Dense {
	d := NewDense(s.NumRows, s.Dim)
	s.AddToDense(d, 1)
	return d
}

// AddToDense scatter-adds scale * rows into the dense matrix d, which must
// have shape [NumRows x Dim]. This is the sparse parameter-update primitive
// used by the optimizers.
func (s *Sparse) AddToDense(d *Dense, scale float32) {
	if d.Dims() != 2 || d.Dim(0) != s.NumRows || d.Dim(1) != s.Dim {
		panic(fmt.Sprintf("tensor: AddToDense target %v incompatible with sparse [%d x %d]", d.Shape(), s.NumRows, s.Dim))
	}
	for i, ix := range s.Indices {
		dst := d.Row(int(ix))
		row := s.Row(i)
		for j, v := range row {
			dst[j] += scale * v
		}
	}
}

// Concat appends the stored rows of o to s and returns the (uncoalesced)
// result. Both operands must agree on NumRows and Dim. It is the merge step
// used when a worker receives gradient shards from every peer.
func Concat(parts ...*Sparse) (*Sparse, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("tensor: Concat of no parts")
	}
	first := parts[0]
	total := 0
	for _, p := range parts {
		if p.NumRows != first.NumRows || p.Dim != first.Dim {
			return nil, fmt.Errorf("tensor: Concat shape mismatch [%d x %d] vs [%d x %d]",
				p.NumRows, p.Dim, first.NumRows, first.Dim)
		}
		total += len(p.Indices)
	}
	idx := make([]int64, 0, total)
	vals := make([]float32, 0, total*first.Dim)
	for _, p := range parts {
		idx = append(idx, p.Indices...)
		vals = append(vals, p.Vals...)
	}
	return &Sparse{NumRows: first.NumRows, Dim: first.Dim, Indices: idx, Vals: vals}, nil
}

// FromDenseRows gathers the given logical rows of a dense [NumRows x Dim]
// matrix into a sparse tensor. It is the inverse of ToDense restricted to
// the selected rows, used by embedding lookups.
func FromDenseRows(d *Dense, rows []int64) *Sparse {
	dim := d.Dim(1)
	vals := make([]float32, len(rows)*dim)
	for i, r := range rows {
		copy(vals[i*dim:(i+1)*dim], d.Row(int(r)))
	}
	return &Sparse{NumRows: d.Dim(0), Dim: dim, Indices: append([]int64(nil), rows...), Vals: vals}
}

// UniqueIndices returns the sorted set of logical row indices present in s.
// It corresponds to the UNIQUE step of Algorithm 1.
func (s *Sparse) UniqueIndices() []int64 {
	return UniqueInt64(s.Indices)
}

// UniqueInt64 returns the sorted distinct values of xs.
func UniqueInt64(xs []int64) []int64 {
	if len(xs) == 0 {
		return nil
	}
	out := append([]int64(nil), xs...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// Intersect returns the sorted intersection of two sorted unique slices.
// Algorithm 1 line 4 (i_prior = D_u ∩ D_next) is computed with it.
func Intersect(a, b []int64) []int64 {
	out := make([]int64, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Difference returns the sorted elements of a not present in b; both inputs
// must be sorted unique slices. Algorithm 1 line 5 (i_delayed = D_u \ i_prior).
func Difference(a, b []int64) []int64 {
	out := make([]int64, 0, len(a))
	i, j := 0, 0
	for i < len(a) {
		for j < len(b) && b[j] < a[i] {
			j++
		}
		if j >= len(b) || b[j] != a[i] {
			out = append(out, a[i])
		}
		i++
	}
	return out
}

// ToSet converts a slice of indices into a membership set.
func ToSet(xs []int64) map[int64]struct{} {
	m := make(map[int64]struct{}, len(xs))
	for _, x := range xs {
		m[x] = struct{}{}
	}
	return m
}

// String renders a short description of the sparse tensor.
func (s *Sparse) String() string {
	return fmt.Sprintf("Sparse[%dx%d](%d rows, %d bytes, coalesced=%v)",
		s.NumRows, s.Dim, len(s.Indices), s.SizeBytes(), s.coalesced)
}
