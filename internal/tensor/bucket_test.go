package tensor

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// referenceBuckets is the naive map/append bucketing the RowBucketer
// replaces: per-destination slices of original positions, in input order.
func referenceBuckets(ids []int64, ndst int, destOf func(int64) int) [][]int32 {
	out := make([][]int32, ndst)
	for i, id := range ids {
		d := destOf(id)
		out[d] = append(out[d], int32(i))
	}
	return out
}

func checkAgainstReference(t *testing.T, b *RowBucketer, ids []int64, ref [][]int32) {
	t.Helper()
	offs := b.Offsets()
	if len(offs) != len(ref)+1 || offs[0] != 0 || offs[len(ref)] != len(ids) {
		t.Fatalf("offsets %v for %d ids, %d destinations", offs, len(ids), len(ref))
	}
	for d, want := range ref {
		if b.Counts()[d] != len(want) {
			t.Fatalf("dest %d: count %d, want %d", d, b.Counts()[d], len(want))
		}
		got := b.Perm()[offs[d]:offs[d+1]]
		if len(got) != len(want) {
			t.Fatalf("dest %d: bucket size %d, want %d", d, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("dest %d pos %d: perm %d, want %d (stability violated)", d, k, got[k], want[k])
			}
		}
	}
}

func TestRowBucketerMatchesMapBucketing(t *testing.T) {
	var b RowBucketer
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		ndst := 1 + rng.Intn(9)
		ids := make([]int64, n)
		for i := range ids {
			ids[i] = int64(rng.Intn(500))
		}
		destOf := func(id int64) int { return int(id) % ndst }
		b.Bucket(ids, ndst, destOf)
		checkAgainstReference(t, &b, ids, referenceBuckets(ids, ndst, destOf))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketRangesMatchesSearchsorted(t *testing.T) {
	var b RowBucketer
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ndst := 1 + rng.Intn(7)
		vocab := int64(40 * ndst)
		// Sorted boundaries covering [0, vocab): bounds[0]=0, bounds[ndst]=vocab.
		bounds := make([]int64, ndst+1)
		for d := 1; d < ndst; d++ {
			bounds[d] = rng.Int63n(vocab)
		}
		bounds[ndst] = vocab
		sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
		ids := make([]int64, rng.Intn(150))
		for i := range ids {
			ids[i] = rng.Int63n(vocab)
		}
		destOf := func(id int64) int {
			for d := 0; d < ndst; d++ {
				if id >= bounds[d] && id < bounds[d+1] {
					return d
				}
			}
			t.Fatalf("id %d outside bounds %v", id, bounds)
			return -1
		}
		b.BucketRanges(ids, bounds)
		checkAgainstReference(t, &b, ids, referenceBuckets(ids, ndst, destOf))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRowBucketerSteadyStateAllocs(t *testing.T) {
	var b RowBucketer
	ids := make([]int64, 512)
	rng := rand.New(rand.NewSource(3))
	for i := range ids {
		ids[i] = int64(rng.Intn(4096))
	}
	destOf := func(id int64) int { return int(id % 8) }
	b.Bucket(ids, 8, destOf) // warm-up grows to the high-water mark
	if n := testing.AllocsPerRun(50, func() { b.Bucket(ids, 8, destOf) }); n != 0 {
		t.Fatalf("steady-state Bucket allocates %v times", n)
	}
	bounds := []int64{0, 512, 1024, 2048, 4096}
	b.BucketRanges(ids, bounds)
	if n := testing.AllocsPerRun(50, func() { b.BucketRanges(ids, bounds) }); n != 0 {
		t.Fatalf("steady-state BucketRanges allocates %v times", n)
	}
}

func TestSearchInt64(t *testing.T) {
	xs := []int64{2, 4, 4, 9}
	cases := []struct {
		x    int64
		want int
	}{{1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 3}, {9, 3}, {10, 4}}
	for _, c := range cases {
		if got := SearchInt64(xs, c.x); got != c.want {
			t.Errorf("SearchInt64(%v, %d) = %d, want %d", xs, c.x, got, c.want)
		}
	}
	if SearchInt64(nil, 5) != 0 {
		t.Error("empty slice should return 0")
	}
	if !ContainsSorted(xs, 4) || ContainsSorted(xs, 5) {
		t.Error("ContainsSorted membership wrong")
	}
}

func TestSortInt64MatchesSortSlice(t *testing.T) {
	f := func(xs []int64) bool {
		mine := append([]int64(nil), xs...)
		ref := append([]int64(nil), xs...)
		SortInt64(mine)
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		for i := range mine {
			if mine[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Adversarial shapes for the quicksort: sorted, reversed, constant, long.
	long := make([]int64, 5000)
	for i := range long {
		long[i] = int64((i * 7919) % 1000)
	}
	for _, xs := range [][]int64{
		{5, 4, 3, 2, 1, 0, -1, -2, -3, -4, -5, -6, -7, -8},
		{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
		long,
	} {
		SortInt64(xs)
		for i := 1; i < len(xs); i++ {
			if xs[i-1] > xs[i] {
				t.Fatalf("not sorted at %d", i)
			}
		}
	}
}

func TestUniqueSortedMatchesUniqueInt64(t *testing.T) {
	f := func(xs []int64) bool {
		want := UniqueInt64(xs)
		got := append([]int64(nil), xs...)
		SortInt64(got)
		got = UniqueSorted(got)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortAndSearchSteadyStateAllocs(t *testing.T) {
	xs := make([]int64, 1024)
	rng := rand.New(rand.NewSource(9))
	fill := func() {
		for i := range xs {
			xs[i] = rng.Int63n(1 << 20)
		}
	}
	fill()
	if n := testing.AllocsPerRun(20, func() {
		fill()
		SortInt64(xs)
		UniqueSorted(xs)
	}); n != 0 {
		t.Fatalf("SortInt64+UniqueSorted allocates %v times", n)
	}
}
