// Package tensor provides the dense and sparse tensor types used throughout
// the EmbRace reproduction.
//
// Dense tensors are flat float32 buffers with an explicit shape, mirroring the
// contiguous multi-dimensional arrays most DNN parameters are stored as.
// Sparse tensors use a row-oriented COO layout (index list plus a value row
// per index), which is the natural representation of embedding gradients:
// only the rows touched by a batch are present (see paper §2.1).
package tensor

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// BytesPerElem is the size of one tensor element. The whole reproduction uses
// float32 everywhere, as the paper's PyTorch models do.
const BytesPerElem = 4

// Dense is a contiguous float32 tensor with an explicit shape.
//
// The zero value is an empty tensor. All arithmetic helpers operate in place
// on the receiver unless documented otherwise, so callers control allocation.
type Dense struct {
	shape []int
	data  []float32
}

// NewDense allocates a zeroed dense tensor with the given shape.
// It panics if any dimension is negative.
func NewDense(shape ...int) *Dense {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Dense{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a dense tensor of the given shape. The slice is
// used directly, not copied. It returns an error if the element count does
// not match the shape.
func FromSlice(data []float32, shape ...int) (*Dense, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("tensor: shape %v wants %d elements, got %d", shape, n, len(data))
	}
	return &Dense{shape: append([]int(nil), shape...), data: data}, nil
}

// Full returns a dense tensor of the given shape with every element set to v.
func Full(v float32, shape ...int) *Dense {
	t := NewDense(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// RandDense returns a dense tensor with elements drawn uniformly from
// [-scale, scale) using rng. Deterministic given the rng.
func RandDense(rng *rand.Rand, scale float32, shape ...int) *Dense {
	t := NewDense(shape...)
	for i := range t.data {
		t.data[i] = (rng.Float32()*2 - 1) * scale
	}
	return t
}

// Shape returns the tensor's shape.
//
// aliases: the returned slice is the tensor's own shape descriptor and must
// not be mutated.
func (t *Dense) Shape() []int { return t.shape }

// Dims returns the number of dimensions.
func (t *Dense) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Dense) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Dense) Len() int { return len(t.data) }

// SizeBytes returns the in-memory payload size, the quantity the paper's
// communication cost model denotes M.
func (t *Dense) SizeBytes() int { return len(t.data) * BytesPerElem }

// Data returns the underlying flat buffer.
//
// aliases: the returned slice is the tensor's storage — mutations are visible
// to the tensor; this is how collectives operate on tensors without copying.
func (t *Dense) Data() []float32 { return t.data }

// At returns the element at the given multi-dimensional index.
func (t *Dense) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-dimensional index.
func (t *Dense) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Dense) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", x, i, t.shape[i]))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Row returns a view of row r of a 2-D tensor.
//
// aliases: the returned slice is a window into the tensor's storage —
// mutations are visible to the tensor.
func (t *Dense) Row(r int) []float32 {
	if len(t.shape) != 2 {
		panic("tensor: Row requires a 2-D tensor")
	}
	d := t.shape[1]
	return t.data[r*d : (r+1)*d]
}

// Clone returns a deep copy.
func (t *Dense) Clone() *Dense {
	c := &Dense{shape: append([]int(nil), t.shape...), data: make([]float32, len(t.data))}
	copy(c.data, t.data)
	return c
}

// Zero sets every element to zero.
func (t *Dense) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Dense) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// ErrShapeMismatch is returned by binary operations whose operands disagree
// in shape.
var ErrShapeMismatch = errors.New("tensor: shape mismatch")

func (t *Dense) sameShape(o *Dense) error {
	if len(t.data) != len(o.data) {
		return fmt.Errorf("%w: %v vs %v", ErrShapeMismatch, t.shape, o.shape)
	}
	return nil
}

// Add accumulates o into t element-wise.
func (t *Dense) Add(o *Dense) error {
	if err := t.sameShape(o); err != nil {
		return err
	}
	for i, v := range o.data {
		t.data[i] += v
	}
	return nil
}

// Sub subtracts o from t element-wise.
func (t *Dense) Sub(o *Dense) error {
	if err := t.sameShape(o); err != nil {
		return err
	}
	for i, v := range o.data {
		t.data[i] -= v
	}
	return nil
}

// Scale multiplies every element by s.
func (t *Dense) Scale(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AXPY computes t += a*x, the classic BLAS primitive.
func (t *Dense) AXPY(a float32, x *Dense) error {
	if err := t.sameShape(x); err != nil {
		return err
	}
	for i, v := range x.data {
		t.data[i] += a * v
	}
	return nil
}

// Sum returns the sum of all elements in float64 to limit rounding drift.
func (t *Dense) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Dot returns the inner product of two equally shaped tensors.
func (t *Dense) Dot(o *Dense) (float64, error) {
	if err := t.sameShape(o); err != nil {
		return 0, err
	}
	var s float64
	for i, v := range t.data {
		s += float64(v) * float64(o.data[i])
	}
	return s, nil
}

// Norm2 returns the Euclidean norm.
func (t *Dense) Norm2() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// AllClose reports whether t and o agree element-wise within tol.
func (t *Dense) AllClose(o *Dense, tol float64) bool {
	if len(t.data) != len(o.data) {
		return false
	}
	for i, v := range t.data {
		if math.Abs(float64(v)-float64(o.data[i])) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest element-wise absolute difference between t
// and o. It panics on shape mismatch; use AllClose for a checked comparison.
func (t *Dense) MaxAbsDiff(o *Dense) float64 {
	if len(t.data) != len(o.data) {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var m float64
	for i, v := range t.data {
		d := math.Abs(float64(v) - float64(o.data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// CountNonZero returns the number of elements that are exactly non-zero.
// The paper's density α of a gradient is CountNonZero rows over total rows;
// see Sparse.Density for the row-level variant.
func (t *Dense) CountNonZero() int {
	n := 0
	for _, v := range t.data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Reshape returns a view of t with a new shape covering the same elements.
func (t *Dense) Reshape(shape ...int) (*Dense, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("%w: cannot reshape %v to %v", ErrShapeMismatch, t.shape, shape)
	}
	return &Dense{shape: append([]int(nil), shape...), data: t.data}, nil
}

// String renders a short human-readable description.
func (t *Dense) String() string {
	return fmt.Sprintf("Dense%v(%d elems, %d bytes)", t.shape, len(t.data), t.SizeBytes())
}
