package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseShapeAndLen(t *testing.T) {
	d := NewDense(3, 4)
	if d.Len() != 12 {
		t.Fatalf("Len = %d, want 12", d.Len())
	}
	if d.Dims() != 2 || d.Dim(0) != 3 || d.Dim(1) != 4 {
		t.Fatalf("bad shape %v", d.Shape())
	}
	if d.SizeBytes() != 48 {
		t.Fatalf("SizeBytes = %d, want 48", d.SizeBytes())
	}
}

func TestFromSlice(t *testing.T) {
	d, err := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", d.At(1, 2))
	}
	if _, err := FromSlice([]float32{1, 2}, 3); err == nil {
		t.Fatal("expected error for mismatched slice length")
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	d := NewDense(2, 3, 4)
	d.Set(7.5, 1, 2, 3)
	if got := d.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// The stored offset must follow row-major layout.
	if d.Data()[1*12+2*4+3] != 7.5 {
		t.Fatal("Set did not land at row-major offset")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 2).At(2, 0)
}

func TestRowView(t *testing.T) {
	d, _ := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	r := d.Row(1)
	r[0] = 99
	if d.At(1, 0) != 99 {
		t.Fatal("Row must alias storage")
	}
}

func TestAddSubScaleAXPY(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3}, 3)
	b, _ := FromSlice([]float32{4, 5, 6}, 3)
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	want := []float32{5, 7, 9}
	for i, v := range a.Data() {
		if v != want[i] {
			t.Fatalf("Add[%d] = %v, want %v", i, v, want[i])
		}
	}
	if err := a.Sub(b); err != nil {
		t.Fatal(err)
	}
	a.Scale(2)
	if a.Data()[2] != 6 {
		t.Fatalf("Scale got %v", a.Data())
	}
	if err := a.AXPY(0.5, b); err != nil {
		t.Fatal(err)
	}
	if a.Data()[0] != 2+2 {
		t.Fatalf("AXPY got %v", a.Data())
	}
	c := NewDense(4)
	if err := a.Add(c); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestSumDotNorm(t *testing.T) {
	a, _ := FromSlice([]float32{3, 4}, 2)
	if a.Sum() != 7 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	d, err := a.Dot(a)
	if err != nil || d != 25 {
		t.Fatalf("Dot = %v err %v", d, err)
	}
	if math.Abs(a.Norm2()-5) > 1e-12 {
		t.Fatalf("Norm2 = %v", a.Norm2())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Full(1, 4)
	b := a.Clone()
	b.Data()[0] = 42
	if a.Data()[0] != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestAllCloseAndMaxAbsDiff(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2}, 2)
	b, _ := FromSlice([]float32{1.0001, 2}, 2)
	if !a.AllClose(b, 1e-3) {
		t.Fatal("expected close")
	}
	if a.AllClose(b, 1e-6) {
		t.Fatal("expected not close")
	}
	if d := a.MaxAbsDiff(b); d < 9e-5 || d > 2e-4 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
}

func TestReshape(t *testing.T) {
	a := Full(1, 2, 6)
	b, err := a.Reshape(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	b.Set(5, 0, 0)
	if a.At(0, 0) != 5 {
		t.Fatal("Reshape must share storage")
	}
	if _, err := a.Reshape(5); err == nil {
		t.Fatal("expected reshape error")
	}
}

func TestCountNonZero(t *testing.T) {
	a, _ := FromSlice([]float32{0, 1, 0, 2}, 4)
	if a.CountNonZero() != 2 {
		t.Fatalf("CountNonZero = %d", a.CountNonZero())
	}
}

func TestRandDenseDeterministic(t *testing.T) {
	a := RandDense(rand.New(rand.NewSource(1)), 0.5, 10)
	b := RandDense(rand.New(rand.NewSource(1)), 0.5, 10)
	if !a.AllClose(b, 0) {
		t.Fatal("same seed must give same tensor")
	}
	for _, v := range a.Data() {
		if v < -0.5 || v >= 0.5 {
			t.Fatalf("value %v out of [-0.5, 0.5)", v)
		}
	}
}

// Property: Add is commutative up to float rounding on small values.
func TestAddCommutativeProperty(t *testing.T) {
	f := func(xs []float32) bool {
		if len(xs) == 0 {
			return true
		}
		a, _ := FromSlice(append([]float32(nil), xs...), len(xs))
		b := RandDense(rand.New(rand.NewSource(int64(len(xs)))), 1, len(xs))
		a1 := a.Clone()
		_ = a1.Add(b)
		b1 := b.Clone()
		_ = b1.Add(a)
		return a1.AllClose(b1, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Scale distributes over Add: s*(a+b) == s*a + s*b.
func TestScaleDistributesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(64) + 1
		a := RandDense(rng, 1, n)
		b := RandDense(rng, 1, n)
		s := rng.Float32()
		lhs := a.Clone()
		_ = lhs.Add(b)
		lhs.Scale(s)
		ra := a.Clone()
		ra.Scale(s)
		rb := b.Clone()
		rb.Scale(s)
		_ = ra.Add(rb)
		return lhs.AllClose(ra, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
