package tensor

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Wire encoding for the tensor types, used by the TCP transport. Dense keeps
// its fields unexported, so it provides explicit GobEncode/GobDecode; Sparse
// additionally round-trips its coalesced flag, which gob would otherwise
// drop.

type denseWire struct {
	Shape []int
	Data  []float32
}

// GobEncode implements gob.GobEncoder.
func (t *Dense) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(denseWire{Shape: t.shape, Data: t.data}); err != nil {
		return nil, fmt.Errorf("tensor: encoding dense: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (t *Dense) GobDecode(b []byte) error {
	var w denseWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return fmt.Errorf("tensor: decoding dense: %w", err)
	}
	n := 1
	for _, d := range w.Shape {
		if d < 0 {
			return fmt.Errorf("tensor: decoded negative dimension %d", d)
		}
		n *= d
	}
	if n != len(w.Data) {
		return fmt.Errorf("tensor: decoded shape %v wants %d elements, got %d", w.Shape, n, len(w.Data))
	}
	t.shape = w.Shape
	t.data = w.Data
	return nil
}

type sparseWire struct {
	NumRows   int
	Dim       int
	Indices   []int64
	Vals      []float32
	Coalesced bool
}

// GobEncode implements gob.GobEncoder.
func (s *Sparse) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	w := sparseWire{
		NumRows:   s.NumRows,
		Dim:       s.Dim,
		Indices:   s.Indices,
		Vals:      s.Vals,
		Coalesced: s.coalesced,
	}
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("tensor: encoding sparse: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (s *Sparse) GobDecode(b []byte) error {
	var w sparseWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return fmt.Errorf("tensor: decoding sparse: %w", err)
	}
	if len(w.Vals) != len(w.Indices)*w.Dim {
		return fmt.Errorf("tensor: decoded sparse vals %d != %d indices * dim %d",
			len(w.Vals), len(w.Indices), w.Dim)
	}
	for _, ix := range w.Indices {
		if ix < 0 || ix >= int64(w.NumRows) {
			return fmt.Errorf("tensor: decoded sparse index %d out of range [0,%d)", ix, w.NumRows)
		}
	}
	s.NumRows = w.NumRows
	s.Dim = w.Dim
	s.Indices = w.Indices
	s.Vals = w.Vals
	s.coalesced = w.Coalesced
	return nil
}
