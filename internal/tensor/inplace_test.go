package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bitsEqual compares two sparse tensors for exact bit equality of indices
// and values — the equivalence the in-place variants must provide.
func bitsEqual(a, b *Sparse) bool {
	if a.NumRows != b.NumRows || a.Dim != b.Dim || len(a.Indices) != len(b.Indices) {
		return false
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			return false
		}
	}
	for i := range a.Vals {
		if math.Float32bits(a.Vals[i]) != math.Float32bits(b.Vals[i]) {
			return false
		}
	}
	return true
}

func TestCoalesceIntoBitIdenticalToCoalesce(t *testing.T) {
	var dst Sparse
	var sc SortScratch
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSparse(rng, 25, 3, rng.Intn(80))
		want := s.Coalesce()
		got := s.CoalesceInto(&dst, &sc)
		return got.IsCoalesced() && bitsEqual(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCoalesceIntoOnCoalescedInput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := randomSparse(rng, 20, 2, 30).Coalesce()
	var dst Sparse
	var sc SortScratch
	if got := s.CoalesceInto(&dst, &sc); !bitsEqual(s, got) {
		t.Fatal("coalesced input must copy through unchanged")
	}
}

func TestCoalesceIntoAliasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dst == s")
		}
	}()
	s := &Sparse{NumRows: 2, Dim: 1, Indices: []int64{0}, Vals: []float32{1}}
	s.CoalesceInto(s, &SortScratch{})
}

func TestPartitionSortedIntoBitIdentical(t *testing.T) {
	var in, out Sparse
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSparse(rng, 30, 2, rng.Intn(60))
		var prior []int64
		for ix := int64(0); ix < 30; ix++ {
			if rng.Intn(3) == 0 {
				prior = append(prior, ix)
			}
		}
		wantIn, wantOut := s.Partition(prior)
		s.PartitionSortedInto(prior, &in, &out)
		return bitsEqual(wantIn, &in) && bitsEqual(wantOut, &out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendToMatchesConcat(t *testing.T) {
	var acc Sparse
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parts := make([]*Sparse, 1+rng.Intn(5))
		for i := range parts {
			parts[i] = randomSparse(rng, 12, 2, rng.Intn(20))
		}
		want, err := Concat(parts...)
		if err != nil {
			return false
		}
		acc.Reset()
		for _, p := range parts {
			if err := p.AppendTo(&acc); err != nil {
				return false
			}
		}
		return bitsEqual(want, &acc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendToShapeMismatch(t *testing.T) {
	a := &Sparse{NumRows: 4, Dim: 2, Indices: []int64{1}, Vals: []float32{1, 2}}
	b := &Sparse{NumRows: 4, Dim: 3}
	var acc Sparse
	if err := a.AppendTo(&acc); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendTo(&acc); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestColumnSliceIntoBitIdentical(t *testing.T) {
	var dst Sparse
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 2 + rng.Intn(6)
		s := randomSparse(rng, 20, dim, rng.Intn(30))
		lo := rng.Intn(dim)
		hi := lo + rng.Intn(dim-lo+1)
		want := s.ColumnSlice(lo, hi)
		s.ColumnSliceInto(lo, hi, &dst)
		return bitsEqual(want, &dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The headline property of the in-place layer: after the first call grows
// every buffer to its high-water mark, the whole pack/split/merge/coalesce
// pipeline allocates nothing.
func TestInPlacePipelineSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := randomSparse(rng, 512, 8, 300)
	prior := make([]int64, 0, 256)
	for ix := int64(0); ix < 512; ix += 2 {
		prior = append(prior, ix)
	}
	var in, out, col, acc, coal Sparse
	var sc SortScratch
	step := func() {
		s.ColumnSliceInto(2, 6, &col)
		col.PartitionSortedInto(prior, &in, &out)
		acc.Reset()
		_ = in.AppendTo(&acc)
		_ = out.AppendTo(&acc)
		acc.CoalesceInto(&coal, &sc)
	}
	step() // warm-up
	if n := testing.AllocsPerRun(50, step); n != 0 {
		t.Fatalf("steady-state in-place pipeline allocates %v times", n)
	}
}
