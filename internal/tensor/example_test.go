package tensor_test

import (
	"fmt"

	"embrace/internal/tensor"
)

// Coalescing merges duplicate gradient rows by summation — the first step
// of the paper's Algorithm 1.
func ExampleSparse_Coalesce() {
	g, _ := tensor.NewSparse(10, 2,
		[]int64{3, 1, 3},
		[]float32{1, 1, 2, 2, 10, 10})
	c := g.Coalesce()
	fmt.Println("rows:", c.NNZ(), "indices:", c.Indices)
	fmt.Println("row 3 summed:", c.Row(1))
	// Output:
	// rows: 2 indices: [1 3]
	// row 3 summed: [11 11]
}

// Partition implements Algorithm 1's prior/delayed split: rows whose index
// appears in the next batch ship first.
func ExampleSparse_Partition() {
	g, _ := tensor.NewSparse(10, 1, []int64{2, 5, 7}, []float32{20, 50, 70})
	nextBatch := []int64{5, 7} // sorted token ids of the prefetched batch
	prior, delayed := g.Partition(nextBatch)
	fmt.Println("prior:", prior.Indices, "delayed:", delayed.Indices)
	// Output:
	// prior: [5 7] delayed: [2]
}

// Column slicing is §4.1.1's partitioning: shard k of N owns columns
// [k*D/N, (k+1)*D/N) of every vocabulary row.
func ExampleSparse_ColumnSlice() {
	g, _ := tensor.NewSparse(4, 4, []int64{1}, []float32{1, 2, 3, 4})
	shard0 := g.ColumnSlice(0, 2)
	shard1 := g.ColumnSlice(2, 4)
	fmt.Println(shard0.Row(0), shard1.Row(0))
	// Output:
	// [1 2] [3 4]
}
