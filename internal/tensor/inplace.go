package tensor

import "fmt"

// In-place, buffer-reusing variants of Coalesce/Partition/Concat/ColumnSlice.
// Each writes into a destination Sparse whose Indices/Vals backing arrays are
// kept across calls and grown only to their high-water mark, turning the
// allocating originals into cold-path fallbacks. All variants are
// bit-identical to their originals: they perform the same per-element float
// operations in the same order, which the equivalence tests assert.

// SortScratch holds the reusable order buffers of CoalesceInto's stable sort.
// The zero value is ready to use. Not safe for concurrent use.
type SortScratch struct {
	order []int32
	tmp   []int32
}

// stableOrder fills sc.order with the stable ascending-by-idx permutation of
// [0, len(idx)) using an allocation-free bottom-up merge sort. A stable
// sort's output permutation is unique, so this matches sort.SliceStable
// exactly — the property Coalesce's summation-order contract rests on.
//
//embrace:hotpath
func stableOrder(idx []int64, sc *SortScratch) []int32 {
	n := len(idx)
	sc.ensure(n)
	src, dst := sc.order, sc.tmp
	for i := range src[:n] {
		src[i] = int32(i)
	}
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				// <= keeps the left run first on ties: stability.
				if idx[src[i]] <= idx[src[j]] {
					dst[k] = src[i]
					i++
				} else {
					dst[k] = src[j]
					j++
				}
				k++
			}
			for i < mid {
				dst[k] = src[i]
				i++
				k++
			}
			for j < hi {
				dst[k] = src[j]
				j++
				k++
			}
		}
		src, dst = dst, src
	}
	sc.order, sc.tmp = src, dst
	return src[:n]
}

// ensure grows the scratch to n entries — the cold growth path.
func (sc *SortScratch) ensure(n int) {
	if cap(sc.order) < n {
		sc.order = make([]int32, n)
		sc.tmp = make([]int32, n)
	}
	sc.order = sc.order[:cap(sc.order)]
	sc.tmp = sc.tmp[:cap(sc.tmp)]
}

// CoalesceInto writes the coalesced form of s into dst, reusing dst's
// backing arrays, and returns dst. It sums duplicate rows in their original
// order exactly as Coalesce does, so the result is bit-identical. dst must
// not be s. If s is already coalesced its rows are copied through unchanged.
//
//embrace:hotpath
func (s *Sparse) CoalesceInto(dst *Sparse, sc *SortScratch) *Sparse {
	if dst == s {
		panic("tensor: CoalesceInto aliases its receiver")
	}
	dst.NumRows, dst.Dim = s.NumRows, s.Dim
	dst.Indices = dst.Indices[:0]
	dst.Vals = dst.Vals[:0]
	dst.coalesced = true
	if len(s.Indices) == 0 {
		return dst
	}
	if s.coalesced {
		dst.Indices = append(dst.Indices, s.Indices...)
		dst.Vals = append(dst.Vals, s.Vals...)
		return dst
	}
	order := stableOrder(s.Indices, sc)
	dim := s.Dim
	for _, src := range order {
		ix := s.Indices[src]
		row := s.Vals[int(src)*dim : int(src+1)*dim]
		if n := len(dst.Indices); n > 0 && dst.Indices[n-1] == ix {
			acc := dst.Vals[(n-1)*dim : n*dim]
			for j, v := range row {
				acc[j] += v
			}
			continue
		}
		dst.Indices = append(dst.Indices, ix)
		dst.Vals = append(dst.Vals, row...)
	}
	return dst
}

// AppendTo appends s's stored rows to dst, the in-place form of Concat:
// appending every shard in sender order into one reused destination yields
// exactly Concat's result without the per-step allocation. dst becomes
// uncoalesced. Shapes must match unless dst is empty of rows and unshaped.
//
//embrace:hotpath
func (s *Sparse) AppendTo(dst *Sparse) error {
	if dst.NumRows == 0 && dst.Dim == 0 {
		dst.NumRows, dst.Dim = s.NumRows, s.Dim
	}
	if dst.NumRows != s.NumRows || dst.Dim != s.Dim {
		return fmt.Errorf("tensor: AppendTo shape mismatch [%d x %d] vs [%d x %d]",
			s.NumRows, s.Dim, dst.NumRows, dst.Dim)
	}
	dst.Indices = append(dst.Indices, s.Indices...)
	dst.Vals = append(dst.Vals, s.Vals...)
	dst.coalesced = false
	return nil
}

// Reset empties the receiver's stored rows while keeping its backing arrays,
// so a reused accumulation target starts each step from the same
// high-water-mark capacity. The logical shape is cleared too; the first
// AppendTo restores it.
//
//embrace:hotpath
func (s *Sparse) Reset() {
	s.NumRows, s.Dim = 0, 0
	s.Indices = s.Indices[:0]
	s.Vals = s.Vals[:0]
	s.coalesced = false
}

// PartitionSortedInto splits s by sorted-slice membership into two reused
// destinations: rows whose index occurs in prior go to in, the rest to out.
// It is the buffer-reusing form of Partition and bit-identical to it (both
// preserve the receiver's row order and copy values untouched).
//
//embrace:hotpath
func (s *Sparse) PartitionSortedInto(prior []int64, in, out *Sparse) {
	in.NumRows, in.Dim, in.coalesced = s.NumRows, s.Dim, s.coalesced
	out.NumRows, out.Dim, out.coalesced = s.NumRows, s.Dim, s.coalesced
	in.Indices = in.Indices[:0]
	in.Vals = in.Vals[:0]
	out.Indices = out.Indices[:0]
	out.Vals = out.Vals[:0]
	dim := s.Dim
	for i, ix := range s.Indices {
		row := s.Vals[i*dim : (i+1)*dim]
		if ContainsSorted(prior, ix) {
			in.Indices = append(in.Indices, ix)
			in.Vals = append(in.Vals, row...)
		} else {
			out.Indices = append(out.Indices, ix)
			out.Vals = append(out.Vals, row...)
		}
	}
}

// ColumnSliceInto writes columns [lo, hi) of every stored row into dst,
// reusing dst's backing arrays — the in-place form of ColumnSlice used to
// pack per-shard column streams without per-step allocation.
//
//embrace:hotpath
func (s *Sparse) ColumnSliceInto(lo, hi int, dst *Sparse) {
	if lo < 0 || hi > s.Dim || lo > hi {
		panic(fmt.Sprintf("tensor: column slice [%d,%d) out of range for dim %d", lo, hi, s.Dim))
	}
	w := hi - lo
	dst.NumRows, dst.Dim, dst.coalesced = s.NumRows, w, s.coalesced
	dst.Indices = append(dst.Indices[:0], s.Indices...)
	dst.Vals = dst.Vals[:0]
	srcDim := s.Dim
	for i := range s.Indices {
		dst.Vals = append(dst.Vals, s.Vals[i*srcDim+lo:i*srcDim+hi]...)
	}
}
