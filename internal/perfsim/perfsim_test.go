package perfsim

import (
	"math"
	"strings"
	"testing"

	"embrace/internal/simnet"
)

func TestSimulateSerialChain(t *testing.T) {
	g := NewGraph()
	a := g.Add("a", 0, Compute, 2)
	b := g.Add("b", 0, Compute, 3, a)
	tl, err := Simulate(g, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if a.Start != 0 || a.End != 2 || b.Start != 2 || b.End != 5 {
		t.Fatalf("chain times a=[%v,%v] b=[%v,%v]", a.Start, a.End, b.Start, b.End)
	}
	if tl.Makespan != 5 {
		t.Fatalf("makespan = %v", tl.Makespan)
	}
}

func TestSimulateResourcesOverlap(t *testing.T) {
	// Independent compute and network tasks run concurrently.
	g := NewGraph()
	g.Add("c", 0, Compute, 4)
	g.Add("n", 0, Network, 4)
	tl, err := Simulate(g, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Makespan != 4 {
		t.Fatalf("makespan = %v, want 4 (full overlap)", tl.Makespan)
	}
}

func TestSimulateResourceExclusive(t *testing.T) {
	// Two network tasks must serialize even without dependencies.
	g := NewGraph()
	g.Add("n1", 0, Network, 3)
	g.Add("n2", 0, Network, 2)
	tl, err := Simulate(g, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Makespan != 5 {
		t.Fatalf("makespan = %v, want 5 (serialized)", tl.Makespan)
	}
}

func TestSimulatePriorityPolicy(t *testing.T) {
	// A compute gate releases three network ops at once; under Priority
	// the lowest value must run first, under FIFO the enqueue order wins.
	build := func() (*Graph, *Task, *Task, *Task) {
		g := NewGraph()
		gate := g.Add("gate", 0, Compute, 1)
		n1 := g.Add("n-late", 0, Network, 1, gate)
		n1.Priority = 9
		n2 := g.Add("n-early", 0, Network, 1, gate)
		n2.Priority = 1
		n3 := g.Add("n-mid", 0, Network, 1, gate)
		n3.Priority = 5
		return g, n1, n2, n3
	}
	g, n1, n2, n3 := build()
	if _, err := Simulate(g, Priority); err != nil {
		t.Fatal(err)
	}
	if !(n2.Start < n3.Start && n3.Start < n1.Start) {
		t.Fatalf("priority order violated: %v %v %v", n2.Start, n3.Start, n1.Start)
	}
	g, n1, n2, n3 = build()
	if _, err := Simulate(g, FIFO); err != nil {
		t.Fatal(err)
	}
	if !(n1.Start < n2.Start && n2.Start < n3.Start) {
		t.Fatalf("FIFO order violated: %v %v %v", n1.Start, n2.Start, n3.Start)
	}
}

func TestSimulateDetectsCycle(t *testing.T) {
	g := NewGraph()
	a := g.Add("a", 0, Compute, 1)
	b := g.Add("b", 0, Compute, 1, a)
	g.AddDep(a, b)
	if _, err := Simulate(g, FIFO); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestMeasureStallAccounting(t *testing.T) {
	// Three identical steps: compute 2s, then a 3s network op that blocks
	// the next step's compute. Steady step time = 5s, useful = 2s, stall = 3s.
	g := NewGraph()
	var prevComm *Task
	var prevCompute *Task
	for s := 0; s < 3; s++ {
		c := g.Add("fp+bp", s, Compute, 2, prevCompute, prevComm)
		n := g.Add("comm", s, Network, 3, c)
		prevComm, prevCompute = n, c
	}
	tl, err := Simulate(g, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tl.Measure(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.StepTime-5) > 1e-9 || math.Abs(m.UsefulCompute-2) > 1e-9 || math.Abs(m.Stall-3) > 1e-9 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestMeasureAuxComputeCountsAsStall(t *testing.T) {
	g := NewGraph()
	var prev *Task
	for s := 0; s < 3; s++ {
		c := g.Add("fp+bp", s, Compute, 2, prev)
		aux := g.Add("vsched", s, Compute, 1, c)
		aux.AuxCompute = true
		prev = aux
	}
	tl, err := Simulate(g, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tl.Measure(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.StepTime-3) > 1e-9 || math.Abs(m.Stall-1) > 1e-9 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestMeasureRequiresThreeSteps(t *testing.T) {
	g := NewGraph()
	g.Add("a", 0, Compute, 1)
	tl, _ := Simulate(g, FIFO)
	if _, err := tl.Measure(2); err == nil {
		t.Fatal("expected error")
	}
}

// ---------------------------------------------------------------------------
// BuildJob integration tests on a toy sparse model.
// ---------------------------------------------------------------------------

const testMB = 1e6

func toySpec() *ModelSpec {
	return &ModelSpec{
		Name: "toy-translation",
		Blocks: []BlockSpec{
			{Name: "enc-emb", Kind: EmbeddingBlock, ParamBytes: 120 * testMB,
				LookupBytes: 10 * testMB, GradBytes: 8 * testMB, RawGradBytes: 14 * testMB,
				PriorBytes: 4 * testMB, DelayedBytes: 4 * testMB,
				FwdDur: 0.001, BwdDur: 0.002},
			{Name: "enc-block", Kind: DenseBlock, ParamBytes: 40 * testMB, FwdDur: 0.010, BwdDur: 0.020},
			{Name: "dec-emb", Kind: EmbeddingBlock, ParamBytes: 120 * testMB,
				LookupBytes: 10 * testMB, GradBytes: 8 * testMB, RawGradBytes: 14 * testMB,
				PriorBytes: 4 * testMB, DelayedBytes: 4 * testMB,
				FwdDur: 0.001, BwdDur: 0.002},
			{Name: "dec-block", Kind: DenseBlock, ParamBytes: 40 * testMB, FwdDur: 0.010, BwdDur: 0.020},
		},
		VSchedDur: 0.0005,
	}
}

func toyEstimator(t *testing.T) *simnet.Estimator {
	t.Helper()
	est, err := simnet.NewEstimator(simnet.Topology{
		Nodes: 2, WorkersPerNode: 4,
		IntraBW: 10e9, InterBW: 12.5e9, Latency: 10e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func runToy(t *testing.T, strat Strategy, mode SchedMode) StepMetrics {
	t.Helper()
	m, _, err := RunJob(toySpec(), strat, mode, toyEstimator(t), 6)
	if err != nil {
		t.Fatalf("%v/%v: %v", strat, mode, err)
	}
	return m
}

func TestBuildJobValidation(t *testing.T) {
	est := toyEstimator(t)
	if _, _, err := BuildJob(&ModelSpec{Name: "empty"}, StratAllReduce, SchedDefault, est, 3); err == nil {
		t.Fatal("expected error for empty model")
	}
	if _, _, err := BuildJob(toySpec(), StratAllReduce, SchedDefault, est, 0); err == nil {
		t.Fatal("expected error for zero steps")
	}
}

func TestAllStrategiesSimulate(t *testing.T) {
	for _, strat := range []Strategy{StratAllReduce, StratAllGather, StratBytePS, StratParallax, StratEmbRace} {
		m := runToy(t, strat, SchedDefault)
		if m.StepTime <= 0 || m.Stall < 0 {
			t.Fatalf("%v: metrics %+v", strat, m)
		}
		if m.StepTime < m.UsefulCompute-1e-12 {
			t.Fatalf("%v: step time below compute floor: %+v", strat, m)
		}
	}
}

func TestSparseStrategiesBeatDenseOnSparseModel(t *testing.T) {
	dense := runToy(t, StratAllReduce, SchedDefault)
	gather := runToy(t, StratAllGather, SchedDefault)
	embrace := runToy(t, StratEmbRace, Sched2D)
	if gather.StepTime >= dense.StepTime {
		t.Fatalf("AllGather (%v) should beat dense AllReduce (%v) on a sparse model",
			gather.StepTime, dense.StepTime)
	}
	if embrace.StepTime >= gather.StepTime {
		t.Fatalf("EmbRace (%v) should beat AllGather (%v)", embrace.StepTime, gather.StepTime)
	}
}

func TestSchedulingMonotonicallyHelps(t *testing.T) {
	def := runToy(t, StratEmbRace, SchedDefault)
	hor := runToy(t, StratEmbRace, SchedHorizontal)
	twoD := runToy(t, StratEmbRace, Sched2D)
	const tol = 1e-12
	if hor.StepTime > def.StepTime+tol {
		t.Fatalf("horizontal (%v) slower than default (%v)", hor.StepTime, def.StepTime)
	}
	if twoD.StepTime > hor.StepTime+tol {
		t.Fatalf("2D (%v) slower than horizontal (%v)", twoD.StepTime, hor.StepTime)
	}
	if twoD.StepTime >= def.StepTime {
		t.Fatalf("2D (%v) should strictly beat default (%v) on this comm-bound model",
			twoD.StepTime, def.StepTime)
	}
}

func TestEmbRaceReducesStall(t *testing.T) {
	gather := runToy(t, StratAllGather, SchedDefault)
	embrace := runToy(t, StratEmbRace, Sched2D)
	if embrace.Stall >= gather.Stall {
		t.Fatalf("EmbRace stall (%v) should be below AllGather stall (%v)",
			embrace.Stall, gather.Stall)
	}
}

func TestUsefulComputeIndependentOfStrategy(t *testing.T) {
	spec := toySpec()
	want := spec.UsefulCompute()
	for _, strat := range []Strategy{StratAllReduce, StratAllGather, StratEmbRace} {
		m := runToy(t, strat, Sched2D)
		if math.Abs(m.UsefulCompute-want) > 1e-12 {
			t.Fatalf("%v: useful compute %v, want %v", strat, m.UsefulCompute, want)
		}
	}
}

func TestTimelineContainsExpectedOps(t *testing.T) {
	_, tl, err := RunJob(toySpec(), StratEmbRace, Sched2D, toyEstimator(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	var sawPrior, sawDelayed, sawData, sawVsched, sawAllReduce bool
	for _, task := range tl.Tasks {
		switch {
		case strings.HasPrefix(task.Name, "a2a-prior:"):
			sawPrior = true
		case strings.HasPrefix(task.Name, "a2a-delayed:"):
			sawDelayed = true
		case strings.HasPrefix(task.Name, "a2a-data:"):
			sawData = true
		case strings.HasPrefix(task.Name, "vsched:"):
			sawVsched = true
		case strings.HasPrefix(task.Name, "allreduce:"):
			sawAllReduce = true
		}
	}
	if !sawPrior || !sawDelayed || !sawData || !sawVsched || !sawAllReduce {
		t.Fatalf("missing ops: prior=%v delayed=%v data=%v vsched=%v allreduce=%v",
			sawPrior, sawDelayed, sawData, sawVsched, sawAllReduce)
	}
}

func TestDelayedGradsDoNotBlockNextFP(t *testing.T) {
	// In the 2D timeline, the embedding FP of step s+1 must be able to
	// start before the delayed ops of step s have finished.
	_, tl, err := RunJob(toySpec(), StratEmbRace, Sched2D, toyEstimator(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	var fpStart, delayedEnd float64
	for _, task := range tl.Tasks {
		if task.Step == 2 && task.Name == "fp:enc-emb" {
			fpStart = task.Start
		}
		if task.Step == 1 && task.Name == "a2a-delayed:enc-emb" {
			delayedEnd = task.End
		}
	}
	if fpStart == 0 || delayedEnd == 0 {
		t.Fatal("marker tasks not found")
	}
	if fpStart >= delayedEnd {
		t.Fatalf("fp waited for delayed grads: fp@%v delayed-end@%v", fpStart, delayedEnd)
	}
}

// Property: every (strategy, mode) timeline on the toy model satisfies the
// structural invariants — durations respected, streams exclusive, no task
// ahead of its dependencies.
func TestTimelinesValidate(t *testing.T) {
	for _, strat := range []Strategy{StratAllReduce, StratAllGather, StratBytePS, StratParallax, StratEmbRace} {
		for _, mode := range []SchedMode{SchedDefault, SchedHorizontal, Sched2D} {
			_, tl, err := RunJob(toySpec(), strat, mode, toyEstimator(t), 5)
			if err != nil {
				t.Fatalf("%v/%v: %v", strat, mode, err)
			}
			if err := tl.Validate(); err != nil {
				t.Fatalf("%v/%v: %v", strat, mode, err)
			}
		}
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	g := NewGraph()
	a := g.Add("a", 0, Compute, 2)
	b := g.Add("b", 0, Compute, 2)
	tl, err := Simulate(g, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the timeline: force overlap on the compute stream.
	b.Start, b.End = a.Start, a.Start+b.Dur
	if err := tl.Validate(); err == nil {
		t.Fatal("expected overlap error")
	}
}

func TestStrategyStrings(t *testing.T) {
	names := map[Strategy]string{
		StratAllReduce: "Horovod AllReduce",
		StratAllGather: "Horovod AllGather",
		StratBytePS:    "BytePS",
		StratParallax:  "Parallax",
		StratEmbRace:   "EmbRace",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if Strategy(99).String() == "" {
		t.Fatal("unknown strategy should still stringify")
	}
}

func TestMeasureNetworkBusy(t *testing.T) {
	// Per step: compute 2s then a 2s network op blocking the next compute.
	// Steady step = 4s with the network busy half the time.
	g := NewGraph()
	var prevComm, prevCompute *Task
	for s := 0; s < 3; s++ {
		c := g.Add("fp+bp", s, Compute, 2, prevCompute, prevComm)
		n := g.Add("comm", s, Network, 2, c)
		prevComm, prevCompute = n, c
	}
	tl, err := Simulate(g, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tl.Measure(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.NetworkBusy-0.5) > 1e-9 {
		t.Fatalf("NetworkBusy = %v, want 0.5", m.NetworkBusy)
	}
}
