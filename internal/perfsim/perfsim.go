// Package perfsim is the discrete-event performance simulator behind the
// paper's timing experiments (Figures 6-10).
//
// The paper's clusters run N identical workers in lockstep; data-parallel
// synchronous training therefore has a symmetric per-worker timeline, which
// is exactly what the paper's own Figure 6 draws: one serial compute stream
// (FP and BP kernels) and one serial communication stream (the NCCL channel
// the communication thread feeds), with dependencies between them. This
// package simulates that two-resource timeline: compute tasks run in the
// program order the scheduling mode dictates, communication tasks are chosen
// from the ready set by the queue discipline (FIFO for the baselines, the
// priority queue for EmbRace and ByteScheduler), and collective durations
// come from the topology-aware cost model in internal/simnet.
package perfsim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Resource identifies which serial execution stream a task occupies.
type Resource int

// The two streams of the Figure-6 timelines.
const (
	Compute Resource = iota
	Network
	numResources
)

// Task is one box on the timeline.
type Task struct {
	// Name identifies the task for timeline rendering.
	Name string
	// Step is the training iteration the task belongs to.
	Step int
	// Res is the stream the task occupies.
	Res Resource
	// Dur is the task duration in seconds.
	Dur float64
	// Priority orders ready network tasks under the Priority policy;
	// lower runs first. Ignored for compute tasks and under FIFO.
	Priority int
	// AuxCompute marks compute work that is scheduling overhead rather
	// than model math (the Vertical Sparse Scheduling computation); it
	// counts toward Computation Stall per the paper's §5.4 definition.
	AuxCompute bool

	// Start and End are filled by Simulate.
	Start, End float64

	deps       []*Task
	dependents []*Task
	remaining  int
	readyAt    float64
	seq        int
	done       bool
}

// Graph is a dependency DAG of tasks to simulate.
type Graph struct {
	tasks []*Task
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// Add creates a task that starts only after all deps complete.
func (g *Graph) Add(name string, step int, res Resource, dur float64, deps ...*Task) *Task {
	t := &Task{Name: name, Step: step, Res: res, Dur: dur, seq: len(g.tasks)}
	for _, d := range deps {
		if d != nil {
			t.deps = append(t.deps, d)
		}
	}
	g.tasks = append(g.tasks, t)
	return t
}

// AddDep adds a dependency after creation (used to wire cross-step edges).
func (g *Graph) AddDep(t, dep *Task) {
	if dep != nil {
		t.deps = append(t.deps, dep)
	}
}

// Tasks returns all tasks in creation order.
func (g *Graph) Tasks() []*Task { return g.tasks }

// Policy selects the network queue discipline (§2.3).
type Policy int

// Queue disciplines.
const (
	// FIFO runs communication in ready order — default DL framework
	// behaviour (Figure 6a).
	FIFO Policy = iota
	// Priority runs the lowest Priority value first among ready tasks —
	// the scheduling of EmbRace and ByteScheduler (Figure 6b/6c).
	Priority
)

// Timeline is a completed simulation.
type Timeline struct {
	// Tasks are the simulated tasks with Start/End populated, in start
	// order.
	Tasks []*Task
	// Makespan is the completion time of the last task.
	Makespan float64
}

// readyHeap orders ready network tasks per the policy.
type readyHeap struct {
	tasks  []*Task
	policy Policy
}

func (h *readyHeap) Len() int { return len(h.tasks) }
func (h *readyHeap) Less(i, j int) bool {
	a, b := h.tasks[i], h.tasks[j]
	if h.policy == Priority {
		if a.Priority != b.Priority {
			return a.Priority < b.Priority
		}
	} else if a.readyAt != b.readyAt {
		return a.readyAt < b.readyAt
	}
	return a.seq < b.seq
}
func (h *readyHeap) Swap(i, j int) { h.tasks[i], h.tasks[j] = h.tasks[j], h.tasks[i] }
func (h *readyHeap) Push(x any)    { h.tasks = append(h.tasks, x.(*Task)) }
func (h *readyHeap) Pop() any {
	old := h.tasks
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	h.tasks = old[:n-1]
	return t
}

// completionHeap orders in-flight tasks by end time.
type completionHeap []*Task

func (h completionHeap) Len() int           { return len(h) }
func (h completionHeap) Less(i, j int) bool { return h[i].End < h[j].End }
func (h completionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)        { *h = append(*h, x.(*Task)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Simulate runs the DAG to completion on one compute and one network stream
// and returns the timeline. It returns an error if the graph can make no
// progress (a dependency cycle).
func Simulate(g *Graph, policy Policy) (*Timeline, error) {
	ready := [numResources]*readyHeap{
		{policy: FIFO},   // compute always runs in ready/program order
		{policy: policy}, // network follows the requested discipline
	}
	busy := [numResources]bool{}
	var inflight completionHeap

	for _, t := range g.tasks {
		t.remaining = len(t.deps)
		t.done = false
		for _, d := range t.deps {
			d.dependents = append(d.dependents, t)
		}
	}
	pending := len(g.tasks)
	for _, t := range g.tasks {
		if t.remaining == 0 {
			t.readyAt = 0
			heap.Push(ready[t.Res], t)
		}
	}

	now := 0.0
	start := func(res Resource) {
		if busy[res] || ready[res].Len() == 0 {
			return
		}
		t := heap.Pop(ready[res]).(*Task)
		t.Start = now
		t.End = now + t.Dur
		busy[res] = true
		heap.Push(&inflight, t)
	}

	for pending > 0 {
		start(Compute)
		start(Network)
		if inflight.Len() == 0 {
			return nil, fmt.Errorf("perfsim: deadlock with %d tasks pending (dependency cycle?)", pending)
		}
		t := heap.Pop(&inflight).(*Task)
		now = t.End
		t.done = true
		busy[t.Res] = false
		pending--
		for _, dep := range t.dependents {
			dep.remaining--
			if dep.remaining == 0 {
				dep.readyAt = now
				heap.Push(ready[dep.Res], dep)
			}
		}
	}

	tasks := append([]*Task(nil), g.tasks...)
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].Start != tasks[j].Start {
			return tasks[i].Start < tasks[j].Start
		}
		return tasks[i].seq < tasks[j].seq
	})
	mk := 0.0
	for _, t := range tasks {
		if t.End > mk {
			mk = t.End
		}
	}
	return &Timeline{Tasks: tasks, Makespan: mk}, nil
}

// Validate checks the structural invariants every legal timeline satisfies:
// durations are respected, no resource runs two tasks at once, and no task
// starts before all of its dependencies have finished. The experiment tests
// run it on every simulated timeline.
func (tl *Timeline) Validate() error {
	lastEnd := map[Resource]float64{}
	for _, t := range tl.Tasks {
		if t.End < t.Start {
			return fmt.Errorf("perfsim: task %q ends before it starts", t.Name)
		}
		if math.Abs(t.End-t.Start-t.Dur) > 1e-9 {
			return fmt.Errorf("perfsim: task %q has span %g, duration %g", t.Name, t.End-t.Start, t.Dur)
		}
		if t.Start < lastEnd[t.Res]-1e-9 {
			return fmt.Errorf("perfsim: task %q overlaps a previous task on its stream", t.Name)
		}
		if t.End > lastEnd[t.Res] {
			lastEnd[t.Res] = t.End
		}
		for _, d := range t.deps {
			if t.Start < d.End-1e-9 {
				return fmt.Errorf("perfsim: task %q starts at %g before dependency %q ends at %g",
					t.Name, t.Start, d.Name, d.End)
			}
		}
		if t.End > tl.Makespan+1e-9 {
			return fmt.Errorf("perfsim: task %q ends after the makespan", t.Name)
		}
	}
	return nil
}

// StepMetrics summarizes the steady-state behaviour of a multi-step
// simulation.
type StepMetrics struct {
	// StepTime is the steady-state duration of one training iteration.
	StepTime float64
	// UsefulCompute is the FP+BP compute time per iteration (constant
	// across strategies for a given model and cluster).
	UsefulCompute float64
	// Stall is the Computation Stall of §5.4: step time not covered by
	// useful compute — communication waits plus scheduling computation.
	Stall float64
	// NetworkBusy is the fraction of the steady-state step the network
	// stream spends transferring (1.0 = fully saturated).
	NetworkBusy float64
}

// Measure extracts steady-state metrics from a timeline of `steps`
// iterations. Boundaries are the completion times of each step's last
// compute task; warm-up (first step) and cool-down (last step) are
// discarded. It requires steps >= 3.
func (tl *Timeline) Measure(steps int) (StepMetrics, error) {
	if steps < 3 {
		return StepMetrics{}, fmt.Errorf("perfsim: need >=3 steps for steady-state measurement, got %d", steps)
	}
	bounds := make([]float64, steps)
	useful := make([]float64, steps)
	network := make([]float64, steps)
	for _, t := range tl.Tasks {
		if t.Step < 0 || t.Step >= steps {
			continue
		}
		if t.Res == Network {
			network[t.Step] += t.Dur
			continue
		}
		if t.End > bounds[t.Step] {
			bounds[t.Step] = t.End
		}
		if !t.AuxCompute {
			useful[t.Step] += t.Dur
		}
	}
	stepTime := (bounds[steps-2] - bounds[0]) / float64(steps-2)
	usefulMid := useful[1] // steady-state step
	stall := stepTime - usefulMid
	if stall < -1e-9 {
		return StepMetrics{}, fmt.Errorf("perfsim: negative stall %g (step %g, useful %g)", stall, stepTime, usefulMid)
	}
	busy := 0.0
	if stepTime > 0 {
		busy = network[1] / stepTime
	}
	return StepMetrics{
		StepTime:      stepTime,
		UsefulCompute: usefulMid,
		Stall:         math.Max(0, stall),
		NetworkBusy:   busy,
	}, nil
}

// DepsOf returns the names of t's direct dependencies, for graph inspection
// and the Figure-5 module-dependency rendering.
func (g *Graph) DepsOf(t *Task) []string {
	out := make([]string, 0, len(t.deps))
	for _, d := range t.deps {
		out = append(out, d.Name)
	}
	return out
}
