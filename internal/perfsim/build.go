package perfsim

import (
	"fmt"

	"embrace/internal/sched"
	"embrace/internal/simnet"
)

// BlockKind distinguishes embedding blocks from dense blocks.
type BlockKind int

// Block kinds.
const (
	DenseBlock BlockKind = iota
	EmbeddingBlock
)

// BlockSpec describes one schedulable module of a model (§4.2.1 breaks
// translation models into Encoder Embedding, Encoder Blocks, Decoder
// Embedding, Decoder Blocks; each entry here is one of those units).
type BlockSpec struct {
	// Name identifies the block in timelines.
	Name string
	// Kind selects dense or embedding treatment.
	Kind BlockKind
	// ParamBytes is the dense parameter size M of the block.
	ParamBytes float64
	// FwdDur and BwdDur are the block's compute times on the target GPU.
	FwdDur, BwdDur float64

	// The remaining fields apply to embedding blocks only.

	// LookupBytes is the per-step embedding activation payload (the
	// "Emb Data" AlltoAll of Figure 5): batch tokens x row size.
	LookupBytes float64
	// GradBytes is the coalesced sparse gradient payload (Table 3,
	// "Coalesced Grad Size").
	GradBytes float64
	// RawGradBytes is the uncoalesced gradient payload (Table 3,
	// "Original Grad Size"); baselines that skip coalescing ship this.
	RawGradBytes float64
	// PriorBytes and DelayedBytes are the Algorithm-1 split (Table 3,
	// "Prioritized" and the remainder).
	PriorBytes, DelayedBytes float64
}

// ModelSpec describes a model for performance simulation.
type ModelSpec struct {
	// Name of the model (LM, GNMT-8, ...).
	Name string
	// Blocks in forward order.
	Blocks []BlockSpec
	// VSchedDur is the duration of the Vertical Sparse Scheduling
	// computation (Algorithm 1) per step, charged to the compute stream
	// in the GPU idle time after BP (§4.2.2).
	VSchedDur float64
	// SparseApplyBW is the rate (bytes/s) at which received sparse
	// gradient rows can be scattered into the parameter table. AllGather
	// receives (N-1)x its own payload and must apply all of it before the
	// embedding FP — the per-worker cost that, together with its linear
	// NIC traffic, destroys its scalability. Zero disables apply
	// accounting.
	SparseApplyBW float64
}

// UsefulCompute returns the per-step FP+BP compute time.
func (m *ModelSpec) UsefulCompute() float64 {
	var s float64
	for _, b := range m.Blocks {
		s += b.FwdDur + b.BwdDur
	}
	return s
}

// Strategy selects the communication strategy to simulate.
type Strategy int

// The five strategies of §5.2.3.
const (
	StratAllReduce Strategy = iota
	StratAllGather
	StratBytePS
	StratParallax
	StratEmbRace
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case StratAllReduce:
		return "Horovod AllReduce"
	case StratAllGather:
		return "Horovod AllGather"
	case StratBytePS:
		return "BytePS"
	case StratParallax:
		return "Parallax"
	case StratEmbRace:
		return "EmbRace"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// SchedMode selects EmbRace's scheduling level; baselines ignore it except
// BytePS, whose ByteScheduler always schedules with priorities (§5.2.3).
type SchedMode int

// Scheduling modes of the Figure-9 ablation.
const (
	// SchedDefault is the FIFO queue of Figure 6(a).
	SchedDefault SchedMode = iota
	// SchedHorizontal adds block-priority scheduling and embedding-FP
	// hoisting, Figure 6(b).
	SchedHorizontal
	// Sched2D adds Vertical Sparse Scheduling on top, Figure 6(c).
	Sched2D
)

// bytePSPartBytes is ByteScheduler's tensor partition size; large tensors
// are split into parts this size so high-priority parts can preempt.
const bytePSPartBytes = 4 << 20

// BuildJob constructs the task graph of `steps` training iterations of the
// model under the given strategy and scheduling mode on the topology behind
// est. The returned policy is the queue discipline the strategy uses.
func BuildJob(spec *ModelSpec, strat Strategy, mode SchedMode, est *simnet.Estimator, steps int) (*Graph, Policy, error) {
	if len(spec.Blocks) == 0 {
		return nil, FIFO, fmt.Errorf("perfsim: model %q has no blocks", spec.Name)
	}
	if steps < 1 {
		return nil, FIFO, fmt.Errorf("perfsim: steps must be positive, got %d", steps)
	}
	policy := FIFO
	if strat == StratBytePS || (strat == StratEmbRace && mode != SchedDefault) {
		policy = Priority
	}

	g := NewGraph()
	nb := len(spec.Blocks)

	// Per step bookkeeping, indexed [step][block].
	type stepState struct {
		fpTasks  []*Task
		bpTasks  []*Task
		commDone [][]*Task // network tasks FP(s+1, block) must wait for
		dataA2A  []*Task   // EmbRace: per-block embedding data exchange
		delayed  []*Task   // EmbRace 2D: per-block delayed gradient ops
	}
	states := make([]*stepState, steps)

	// fpOrder returns block indices in compute order for the forward pass.
	// Horizontal scheduling hoists every embedding FP ahead of the dense
	// blocks (§4.2.1: "perform embedding FP in advance").
	fpOrder := func() []int {
		order := make([]int, 0, nb)
		if strat == StratEmbRace && mode != SchedDefault {
			for i, b := range spec.Blocks {
				if b.Kind == EmbeddingBlock {
					order = append(order, i)
				}
			}
			for i, b := range spec.Blocks {
				if b.Kind == DenseBlock {
					order = append(order, i)
				}
			}
			return order
		}
		for i := range spec.Blocks {
			order = append(order, i)
		}
		return order
	}()

	// densePrio maps block index -> priority for priority policies:
	// forward-order bands (§4.2.1), embeddings in the prior band.
	densePrio := make([]int, nb)
	denseIdx := 0
	for i, b := range spec.Blocks {
		if b.Kind == DenseBlock {
			densePrio[i] = sched.PriorityDenseBase + denseIdx
			denseIdx++
		} else {
			densePrio[i] = sched.PriorityEmbeddingPrior
		}
	}

	n := float64(est.Topo.N())

	// applyTask charges the scatter-apply of received sparse rows to the
	// compute stream; the next FP of the block waits on it.
	applyTask := func(s int, name string, bytes float64, after *Task) *Task {
		if spec.SparseApplyBW <= 0 || bytes <= 0 {
			return after
		}
		t := g.Add(fmt.Sprintf("apply:%s", name), s, Compute, bytes/spec.SparseApplyBW, after)
		t.AuxCompute = true
		return t
	}

	// rawBytes is the payload baselines ship: autograd emits uncoalesced
	// sparse gradients, and none of the baselines runs Algorithm 1.
	rawBytes := func(b BlockSpec) float64 {
		if b.RawGradBytes > 0 {
			return b.RawGradBytes
		}
		return b.GradBytes
	}

	// commTasks builds the gradient-exchange ops for block i of step s and
	// returns (tasksFPWaitsOn, delayedOps).
	commTasks := func(s, i int, after *Task) (fpWait []*Task, delayedOps []*Task) {
		b := spec.Blocks[i]
		add := func(name string, dur float64, prio int, deps ...*Task) *Task {
			t := g.Add(name, s, Network, dur, deps...)
			t.Priority = prio
			return t
		}
		switch strat {
		case StratAllReduce:
			t := add(fmt.Sprintf("allreduce:%s", b.Name), est.RingAllReduce(b.ParamBytes), 0, after)
			return []*Task{t}, nil
		case StratAllGather:
			if b.Kind == EmbeddingBlock {
				t := add(fmt.Sprintf("allgather:%s", b.Name), est.AllGather(rawBytes(b)), 0, after)
				// Every worker receives (N-1) peers' rows and must
				// scatter-add them all before the next lookup.
				ap := applyTask(s, b.Name, (n-1)*rawBytes(b), t)
				return []*Task{ap}, nil
			}
			t := add(fmt.Sprintf("allreduce:%s", b.Name), est.RingAllReduce(b.ParamBytes), 0, after)
			return []*Task{t}, nil
		case StratParallax:
			if b.Kind == EmbeddingBlock {
				t := add(fmt.Sprintf("ps-sparse:%s", b.Name), est.PS(rawBytes(b)), 0, after)
				return []*Task{t}, nil
			}
			t := add(fmt.Sprintf("allreduce:%s", b.Name), est.RingAllReduce(b.ParamBytes), 0, after)
			return []*Task{t}, nil
		case StratBytePS:
			// ByteScheduler: partition the tensor and schedule parts by
			// forward-order priority through BytePS's shm-staged PS.
			parts := int(b.ParamBytes/bytePSPartBytes) + 1
			out := make([]*Task, 0, parts)
			per := b.ParamBytes / float64(parts)
			for p := 0; p < parts; p++ {
				t := add(fmt.Sprintf("ps:%s.%d", b.Name, p), est.BytePSDense(per), densePrio[i], after)
				out = append(out, t)
			}
			return out, nil
		case StratEmbRace:
			if b.Kind == DenseBlock {
				prio := 0
				if policy == Priority {
					prio = densePrio[i]
				}
				t := add(fmt.Sprintf("allreduce:%s", b.Name), est.RingAllReduce(b.ParamBytes), prio, after)
				return []*Task{t}, nil
			}
			if mode == Sched2D {
				// Vertical Sparse Scheduling: coalesced gradient split
				// into prior and delayed parts (Algorithm 1). Each shard
				// receives only its own columns (payload/N in total), so
				// the apply before the next FP covers the prior rows only.
				prior := add(fmt.Sprintf("a2a-prior:%s", b.Name), est.AllToAll(b.PriorBytes), sched.PriorityEmbeddingPrior, after)
				del := add(fmt.Sprintf("a2a-delayed:%s", b.Name), est.AllToAll(b.DelayedBytes), sched.PriorityEmbeddingDelayed, after)
				ap := applyTask(s, b.Name, b.PriorBytes, prior)
				return []*Task{ap}, []*Task{del}
			}
			// Without vertical scheduling the raw, uncoalesced gradient
			// ships whole (coalescing is part of Algorithm 1).
			prio := 0
			if policy == Priority {
				prio = sched.PriorityEmbeddingPrior
			}
			t := add(fmt.Sprintf("a2a-grad:%s", b.Name), est.AllToAll(rawBytes(b)), prio, after)
			ap := applyTask(s, b.Name, rawBytes(b), t)
			return []*Task{ap}, nil
		}
		return nil, nil
	}

	// Without a communication scheduler, DL frameworks let the next FP
	// start only once ALL of the previous step's communication has finished
	// (§2.3: "FP computations need to wait for the finish of all
	// communications"). Only ByteScheduler (BytePS) and EmbRace's
	// horizontal/2D modes relax this to per-block dependencies.
	waitAll := strat == StratAllReduce || strat == StratAllGather ||
		strat == StratParallax || (strat == StratEmbRace && mode == SchedDefault)

	var prevComputeTail *Task
	for s := 0; s < steps; s++ {
		st := &stepState{
			commDone: make([][]*Task, nb),
			dataA2A:  make([]*Task, nb),
			delayed:  make([]*Task, nb),
		}
		states[s] = st

		// ---- forward pass ----
		prevFP := prevComputeTail
		st.fpTasks = make([]*Task, nb)
		first := true
		for _, i := range fpOrder {
			b := spec.Blocks[i]
			fp := g.Add(fmt.Sprintf("fp:%s", b.Name), s, Compute, b.FwdDur, prevFP)
			// Parameter freshness: FP waits for the previous step's
			// gradient exchange of this block — or, without a scheduler,
			// the first FP waits for every exchange of the previous step.
			if s > 0 {
				if waitAll && first {
					for j := range spec.Blocks {
						for _, c := range states[s-1].commDone[j] {
							g.AddDep(fp, c)
						}
					}
				}
				for _, c := range states[s-1].commDone[i] {
					g.AddDep(fp, c)
				}
			}
			first = false
			// EmbRace embedding FP consumes the AlltoAll'd lookup results.
			if strat == StratEmbRace && b.Kind == EmbeddingBlock {
				deps := []*Task{}
				if s > 0 {
					deps = states[s-1].commDone[i] // shard update must land first
					// Delayed gradients from two steps back must be
					// applied before rows can be read again.
					if s > 1 && states[s-2].delayed[i] != nil {
						deps = append(deps, states[s-2].delayed[i])
					}
				}
				data := g.Add(fmt.Sprintf("a2a-data:%s", b.Name), s, Network, est.AllToAll(b.LookupBytes), deps...)
				data.Priority = sched.PriorityEmbeddingPrior
				st.dataA2A[i] = data
				g.AddDep(fp, data)
			}
			st.fpTasks[i] = fp
			prevFP = fp
		}

		// ---- backward pass (reverse natural order) ----
		prevBP := prevFP
		st.bpTasks = make([]*Task, nb)
		for i := nb - 1; i >= 0; i-- {
			b := spec.Blocks[i]
			bp := g.Add(fmt.Sprintf("bp:%s", b.Name), s, Compute, b.BwdDur, prevBP)
			st.bpTasks[i] = bp
			prevBP = bp
		}
		computeTail := prevBP

		// EmbRace 2D: the Algorithm-1 computation occupies the compute
		// stream right after BP and gates the embedding gradient ops.
		var vsched *Task
		if strat == StratEmbRace && mode == Sched2D && spec.VSchedDur > 0 {
			vsched = g.Add("vsched:algorithm1", s, Compute, spec.VSchedDur, computeTail)
			vsched.AuxCompute = true
			computeTail = vsched
		}

		// ---- gradient communication ----
		for i := nb - 1; i >= 0; i-- {
			after := st.bpTasks[i]
			if vsched != nil && spec.Blocks[i].Kind == EmbeddingBlock {
				after = vsched // split computed before prior/delayed ship
			}
			fpWait, delayedOps := commTasks(s, i, after)
			st.commDone[i] = fpWait
			if len(delayedOps) > 0 {
				st.delayed[i] = delayedOps[0]
			}
		}

		prevComputeTail = computeTail
	}
	return g, policy, nil
}

// RunJob builds, simulates and measures a job in one call.
func RunJob(spec *ModelSpec, strat Strategy, mode SchedMode, est *simnet.Estimator, steps int) (StepMetrics, *Timeline, error) {
	g, policy, err := BuildJob(spec, strat, mode, est, steps)
	if err != nil {
		return StepMetrics{}, nil, err
	}
	tl, err := Simulate(g, policy)
	if err != nil {
		return StepMetrics{}, nil, err
	}
	m, err := tl.Measure(steps)
	if err != nil {
		return StepMetrics{}, nil, err
	}
	return m, tl, nil
}
