package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tickClock returns a deterministic Clock advancing one microsecond per
// call, plus access to the tick count.
func tickClock() (Clock, *atomic.Int64) {
	var n atomic.Int64
	return func() time.Duration {
		return time.Duration(n.Add(1)) * time.Microsecond
	}, &n
}

func TestRecorderSpans(t *testing.T) {
	clock, _ := tickClock()
	r := NewRecorder(3, WithClock(clock))
	if r.Rank() != 3 {
		t.Fatalf("rank %d", r.Rank())
	}
	sp := r.Begin(TrackCompute, "fp", 7)
	sp.End()
	r.Record(TrackNetwork, "emb/grad", -1, 5*time.Microsecond)

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("%d spans", len(spans))
	}
	if spans[0].Name != "fp" || spans[0].Step != 7 || spans[0].Track != TrackCompute {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[0].Dur != time.Microsecond { // ticks 1 -> 2
		t.Fatalf("span 0 dur %v", spans[0].Dur)
	}
	if spans[1].Dur != 5*time.Microsecond || spans[1].Start != spans[1].End()-5*time.Microsecond {
		t.Fatalf("span 1 = %+v", spans[1])
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Begin(TrackCompute, "fp", 0).End() // must not panic
	r.Record(TrackNetwork, "x", 1, time.Second)
	r.RouteOp("op", TrackBackground)
	r.Sent("op", nil, time.Second)
	r.Received("op", nil, time.Second)
	r.Reset()
	if r.Spans() != nil || r.PhaseSeconds() != nil || r.Rank() != -1 {
		t.Fatal("nil recorder must report nothing")
	}
}

func TestRecorderObserverBridgeRouting(t *testing.T) {
	clock, _ := tickClock()
	r := NewRecorder(0, WithClock(clock))
	r.RouteOp("emb/delayed", TrackBackground)
	r.Sent("emb/delayed", nil, time.Microsecond)
	r.Received("emb/grad", nil, time.Microsecond)
	spans := r.Spans()
	if spans[0].Track != TrackBackground {
		t.Fatalf("routed span on track %d", spans[0].Track)
	}
	if spans[1].Track != TrackNetwork {
		t.Fatalf("default span on track %d", spans[1].Track)
	}
	if spans[0].Step != -1 || spans[1].Step != -1 {
		t.Fatal("observer spans must carry step -1")
	}
}

func TestRecorderClampsNonPositiveDurations(t *testing.T) {
	// A frozen clock yields zero-length spans; they must still export with
	// positive width.
	r := NewRecorder(0, WithClock(func() time.Duration { return time.Millisecond }))
	r.Begin(TrackCompute, "fp", 0).End()
	if d := r.Spans()[0].Dur; d <= 0 {
		t.Fatalf("dur %v", d)
	}
}

func TestRecorderPhaseSeconds(t *testing.T) {
	clock, _ := tickClock()
	r := NewRecorder(0, WithClock(clock))
	r.Record(TrackCompute, "fp", 0, 3*time.Microsecond)
	r.Record(TrackCompute, "fp", 1, 2*time.Microsecond)
	r.Record(TrackNetwork, "emb/grad", -1, 10*time.Microsecond)
	ph := r.PhaseSeconds()
	if got := ph["fp"]; math.Abs(got-5e-6) > 1e-12 {
		t.Fatalf("fp seconds %g", got)
	}
	if got := ph["emb/grad"]; math.Abs(got-10e-6) > 1e-12 {
		t.Fatalf("emb/grad seconds %g", got)
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Begin(TrackBackground, "xchg/delayed", i).End()
			}
		}()
	}
	wg.Wait()
	if n := len(r.Spans()); n != 8*200 {
		t.Fatalf("%d spans", n)
	}
}

func TestSpanOverlaps(t *testing.T) {
	a := Span{Start: 0, Dur: 10}
	b := Span{Start: 5, Dur: 10}
	c := Span{Start: 10, Dur: 10}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("a and b overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Fatal("touching endpoints is not overlap")
	}
}

func TestExportRecordersMultiProcess(t *testing.T) {
	clock, _ := tickClock()
	recs := []*Recorder{
		NewRecorder(0, WithClock(clock)),
		NewRecorder(1, WithClock(clock)),
	}
	for step := 0; step < 2; step++ {
		for _, r := range recs {
			r.Begin(TrackCompute, "fp", step).End()
			r.Record(TrackNetwork, "emb/grad", -1, time.Microsecond)
			r.Record(TrackBackground, "xchg/delayed", step, time.Microsecond)
		}
	}
	var buf bytes.Buffer
	if err := ExportRecorders(&buf, "unit", recs); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.DisplayUnit != "ms" {
		t.Fatalf("display unit %q", parsed.DisplayUnit)
	}
	pids := map[float64]bool{}
	procNames := 0
	for _, e := range parsed.TraceEvents {
		switch e["ph"] {
		case "M":
			if e["name"] == "process_name" {
				procNames++
			}
		case "X":
			pids[e["pid"].(float64)] = true
			if e["dur"].(float64) <= 0 {
				t.Fatalf("non-positive duration in %v", e)
			}
		}
	}
	// One process per rank: distinct pids, one process_name record each.
	if len(pids) != 2 || !pids[1] || !pids[2] {
		t.Fatalf("pids %v, want {1,2}", pids)
	}
	if procNames != 2 {
		t.Fatalf("%d process_name records", procNames)
	}
}

func TestExportRecordersRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportRecorders(&buf, "x", nil); err == nil {
		t.Fatal("expected error for no recorders")
	}
	if err := ExportRecorders(&buf, "x", []*Recorder{nil, nil}); err == nil {
		t.Fatal("expected error for all-nil recorders")
	}
}

func TestCategoryOfSpan(t *testing.T) {
	cases := []struct {
		span Span
		want string
	}{
		{Span{Name: "fp", Track: TrackCompute}, "forward"},
		{Span{Name: "bp", Track: TrackCompute}, "backward"},
		{Span{Name: "emb/grad", Track: TrackNetwork}, "communication"},
		{Span{Name: "xchg/prior", Track: TrackCompute}, "communication"},
		{Span{Name: "ps/push", Track: TrackCompute}, "communication"},
		{Span{Name: "sched/harvest-delayed", Track: TrackCompute}, "scheduling"},
		{Span{Name: "step", Track: TrackCompute}, "compute"},
		{Span{Name: "xchg/delayed", Track: TrackBackground}, "communication"},
	}
	for _, c := range cases {
		if got := categoryOfSpan(c.span); got != c.want {
			t.Fatalf("categoryOfSpan(%q on %d) = %q, want %q", c.span.Name, c.span.Track, got, c.want)
		}
	}
}
