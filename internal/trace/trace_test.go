package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"embrace/internal/perfsim"
	"embrace/internal/simnet"
)

func simpleTimeline(t *testing.T) *perfsim.Timeline {
	t.Helper()
	g := perfsim.NewGraph()
	fp := g.Add("fp:block", 0, perfsim.Compute, 0.010)
	bp := g.Add("bp:block", 0, perfsim.Compute, 0.020, fp)
	comm := g.Add("allreduce:block", 0, perfsim.Network, 0.015, bp)
	aux := g.Add("vsched:algorithm1", 0, perfsim.Compute, 0.001, bp)
	aux.AuxCompute = true
	_ = comm
	tl, err := perfsim.Simulate(g, perfsim.FIFO)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestExportStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := Export(&buf, "test run", simpleTimeline(t)); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.DisplayUnit != "ms" {
		t.Fatalf("display unit %q", parsed.DisplayUnit)
	}
	// 3 metadata + 4 task events.
	if len(parsed.TraceEvents) != 7 {
		t.Fatalf("%d events", len(parsed.TraceEvents))
	}
	cats := map[string]int{}
	for _, e := range parsed.TraceEvents {
		if e["ph"] == "X" {
			cats[e["cat"].(string)]++
			if e["dur"].(float64) <= 0 {
				t.Fatalf("event %v has non-positive duration", e["name"])
			}
		}
	}
	for _, want := range []string{"forward", "backward", "communication", "scheduling"} {
		if cats[want] != 1 {
			t.Fatalf("category %q count %d, cats=%v", want, cats[want], cats)
		}
	}
}

func TestExportNil(t *testing.T) {
	var buf bytes.Buffer
	if err := Export(&buf, "x", nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestExportRealStrategyTimeline(t *testing.T) {
	est, err := simnet.NewEstimator(simnet.Topology{
		Nodes: 2, WorkersPerNode: 4, IntraBW: 10e9, InterBW: 12.5e9, Latency: 1e-5,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := &perfsim.ModelSpec{
		Name: "toy",
		Blocks: []perfsim.BlockSpec{
			{Name: "emb", Kind: perfsim.EmbeddingBlock, ParamBytes: 1e8,
				LookupBytes: 1e7, GradBytes: 8e6, RawGradBytes: 1.4e7,
				PriorBytes: 4e6, DelayedBytes: 4e6, FwdDur: 0.001, BwdDur: 0.002},
			{Name: "block", Kind: perfsim.DenseBlock, ParamBytes: 4e7, FwdDur: 0.01, BwdDur: 0.02},
		},
		VSchedDur: 0.0005,
	}
	_, tl, err := perfsim.RunJob(spec, perfsim.StratEmbRace, perfsim.Sched2D, est, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Export(&buf, "embrace 2d", tl); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("invalid JSON")
	}
	if buf.Len() < 500 {
		t.Fatalf("suspiciously small trace (%d bytes)", buf.Len())
	}
}
