package trace

import (
	"sync"
	"time"
)

// This file is the real-execution half of the package: where trace.go
// exports the *simulated* timelines of internal/perfsim, the Recorder
// records *measured* per-rank timelines from a live training run — the
// instrument that lets a real GNMT-style job and its perfsim prediction
// open side-by-side in Perfetto. The trainer owns one Recorder per rank;
// strategy workers mark their step phases on it, and the collective
// Observer bridge (Sent/Received below) lands every point-to-point message
// of every collective on a network track without touching call sites.

// Track identifies the lane a span occupies within one rank's timeline.
// The integer values double as Chrome trace thread ids, extending the
// perfsim exporter's convention (compute stream = 0, network stream = 1).
type Track int

const (
	// TrackCompute is the rank's step loop: FP/BP, optimizer updates,
	// scheduling work, and the stalls where the loop blocks on a
	// collective.
	TrackCompute Track = iota
	// TrackNetwork carries the point-to-point transfers of the blocking
	// collectives the step loop issues (the Observer auto-spans).
	TrackNetwork
	// TrackBackground carries exchanges that overlap the step loop from
	// their own goroutine — EmbRace's delayed-gradient AlltoAll (§4.2.2).
	// A separate lane keeps ph:"X" spans non-overlapping per track, which
	// Perfetto requires to render complete events correctly.
	TrackBackground
)

// trackNames label the Chrome thread tracks, in Track order.
var trackNames = [...]string{"compute", "network", "network (delayed)"}

// Span is one completed interval on a rank's track.
type Span struct {
	// Name identifies the phase or logical operation, e.g. "fp",
	// "xchg/prior", "emb/delayed". Names are stable keys: PhaseSeconds
	// aggregates by them and the exporter categorizes by their prefix.
	Name string
	// Track is the lane the span occupies.
	Track Track
	// Step is the training step the span belongs to, or -1 when the
	// recorder cannot know it (Observer auto-spans, out-of-band work).
	Step int
	// Start and Dur locate the span on the recorder's clock.
	Start, Dur time.Duration
}

// End returns the instant the span closed.
func (s Span) End() time.Duration { return s.Start + s.Dur }

// Overlaps reports whether two spans intersect in time for a positive
// duration (sharing only an endpoint does not count).
func (s Span) Overlaps(o Span) bool {
	return s.Start < o.End() && o.Start < s.End()
}

// Clock is an injectable monotonic time source: a duration since an
// arbitrary per-recorder epoch. The default reads the wall clock *inside
// this package*, so instrumented packages (trainer, strategies) never call
// time.Now themselves — that keeps them inside the embracevet determinism
// analyzer's coverage, and lets tests inject a deterministic tick counter.
type Clock func() time.Duration

// Recorder is a per-rank, low-overhead span recorder. All methods are safe
// for concurrent use (the delayed-exchange goroutine records concurrently
// with the step loop) and safe on a nil *Recorder, so instrumented code
// needs no "is tracing on?" branches: a nil recorder costs one pointer
// compare per span.
type Recorder struct {
	rank  int
	clock Clock

	mu     sync.Mutex
	spans  []Span
	routes map[string]Track // op name -> track, for Observer auto-spans
}

// RecorderOption configures a Recorder.
type RecorderOption func(*Recorder)

// WithClock injects the recorder's time source; nil keeps the default
// monotonic wall clock.
func WithClock(c Clock) RecorderOption {
	return func(r *Recorder) {
		if c != nil {
			r.clock = c
		}
	}
}

// NewRecorder creates a span recorder for one rank.
func NewRecorder(rank int, opts ...RecorderOption) *Recorder {
	r := &Recorder{rank: rank}
	for _, o := range opts {
		o(r)
	}
	if r.clock == nil {
		r.clock = NewWallClock()
	}
	return r
}

// NewWallClock returns a monotonic wall-clock Clock anchored at the call —
// the same default a Recorder builds for itself, exported for instrumented
// packages that need a duration measurement outside any recorder (the
// elastic trainer times fault-to-recovery latency with one). Keeping the
// time.Now call here preserves the determinism analyzer's guarantee that
// trainer/comm code never reads the wall clock directly.
func NewWallClock() Clock {
	epoch := time.Now()
	return func() time.Duration { return time.Since(epoch) }
}

// Rank returns the rank this recorder belongs to.
func (r *Recorder) Rank() int {
	if r == nil {
		return -1
	}
	return r.rank
}

// RouteOp directs the Observer auto-spans of one logical operation to a
// specific track. The trainer routes the delayed-gradient exchange to
// TrackBackground so its spans — recorded from the background goroutine —
// cannot interleave with the step loop's network spans. Must be called
// before traffic flows; no-op on a nil recorder.
func (r *Recorder) RouteOp(op string, track Track) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.routes == nil {
		r.routes = make(map[string]Track)
	}
	r.routes[op] = track
	r.mu.Unlock()
}

// Active is an open span returned by Begin. It is a value (no allocation);
// End closes it.
type Active struct {
	r     *Recorder
	start time.Duration
	name  string
	track Track
	step  int
}

// Begin opens a span on the given track. On a nil recorder it returns an
// inert Active whose End is a no-op.
func (r *Recorder) Begin(track Track, name string, step int) Active {
	if r == nil {
		return Active{}
	}
	return Active{r: r, start: r.clock(), name: name, track: track, step: step}
}

// End closes the span and commits it to the recorder.
func (a Active) End() {
	if a.r == nil {
		return
	}
	end := a.r.clock()
	a.r.commit(a.track, a.name, a.step, a.start, end-a.start)
}

// Record commits a span that ends now and lasted dur — the shape the
// Observer bridge needs, since blocking times are reported after the fact.
func (r *Recorder) Record(track Track, name string, step int, dur time.Duration) {
	if r == nil {
		return
	}
	end := r.clock()
	r.commit(track, name, step, end-dur, dur)
}

// commit appends the completed span. Durations are clamped to 1ns so every
// exported ph:"X" event has positive width even under a coarse clock.
func (r *Recorder) commit(track Track, name string, step int, start, dur time.Duration) {
	if dur <= 0 {
		dur = 1
	}
	if start < 0 {
		start = 0
	}
	r.mu.Lock()
	r.spans = append(r.spans, Span{Name: name, Track: track, Step: step, Start: start, Dur: dur})
	r.mu.Unlock()
}

// Spans returns a copy of the spans recorded so far.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Reset discards all recorded spans (benchmarks bound memory with it).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = r.spans[:0]
	r.mu.Unlock()
}

// PhaseSeconds sums span durations by span name — the per-phase summary
// behind trainer.Result.PhaseSeconds. Observer auto-spans aggregate under
// their op names ("emb/delayed", "dense/w1", ...), explicit phases under
// theirs ("fp", "xchg/prior", "sched/harvest-delayed", ...).
func (r *Recorder) PhaseSeconds() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64)
	for _, s := range r.spans {
		out[s.Name] += s.Dur.Seconds()
	}
	return out
}

// ---------------------------------------------------------------------------
// Observer bridge.
//
// These two methods make *Recorder satisfy collective.Observer structurally
// (the signatures match; no import needed, so collective stays free of a
// trace dependency and vice versa). A Communicator built with
// collective.WithObserver(rec) — typically through collective.MultiObserver
// so the metrics OpRecorder keeps counting — lands every point-to-point
// message on the network track automatically, named by its logical op.
// ---------------------------------------------------------------------------

// trackOf resolves the track Observer spans of op land on.
func (r *Recorder) trackOf(op string) Track {
	r.mu.Lock()
	t, ok := r.routes[op]
	r.mu.Unlock()
	if !ok {
		return TrackNetwork
	}
	return t
}

// Sent implements collective.Observer: one network span per send, covering
// the time the transport held the caller.
func (r *Recorder) Sent(op string, _ any, blocked time.Duration) {
	if r == nil {
		return
	}
	r.Record(r.trackOf(op), op, -1, blocked)
}

// Received implements collective.Observer: one network span per receive,
// covering the blocked wait — the real-mode analogue of communication
// stall.
func (r *Recorder) Received(op string, _ any, blocked time.Duration) {
	if r == nil {
		return
	}
	r.Record(r.trackOf(op), op, -1, blocked)
}

// CodecOp implements collective.CodecObserver: one span per encoded or
// decoded sparse shard, on the same track as the op's transfers so codec
// time reads in context with the wire time it bought down. Span names are
// "codec/encode:<op>" / "codec/decode:<op>", keeping PhaseSeconds
// aggregation per op and per phase.
func (r *Recorder) CodecOp(op, phase string, _, _ int, d time.Duration) {
	if r == nil {
		return
	}
	r.Record(r.trackOf(op), "codec/"+phase+":"+op, -1, d)
}
