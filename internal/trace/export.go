package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// chromeTrace accumulates trace events and writes the Chrome trace-event
// JSON envelope — the emitter shared by the perfsim exporter (Export) and
// the real-execution exporter (ExportRecorders).
type chromeTrace struct {
	events []any
}

func (c *chromeTrace) add(ev any) { c.events = append(c.events, ev) }

// process emits the metadata records naming one process track and its
// threads. sortIndex orders processes top-to-bottom in the viewer.
func (c *chromeTrace) process(pid int, name string, threads map[int]string) {
	c.add(metadata{Name: "process_name", Phase: "M", PID: pid, Args: map[string]any{"name": name}})
	c.add(metadata{Name: "process_sort_index", Phase: "M", PID: pid, Args: map[string]any{"sort_index": pid}})
	for tid := 0; tid < len(threads); tid++ {
		tname, ok := threads[tid]
		if !ok {
			continue
		}
		c.add(metadata{Name: "thread_name", Phase: "M", PID: pid, TID: tid, Args: map[string]any{"name": tname}})
		c.add(metadata{Name: "thread_sort_index", Phase: "M", PID: pid, TID: tid, Args: map[string]any{"sort_index": tid}})
	}
}

func (c *chromeTrace) write(w io.Writer) error {
	out := struct {
		TraceEvents []any  `json:"traceEvents"`
		DisplayUnit string `json:"displayTimeUnit"`
	}{TraceEvents: c.events, DisplayUnit: "ms"}
	return json.NewEncoder(w).Encode(out)
}

// categoryOfSpan buckets recorded spans for coloring and filtering, the
// real-execution counterpart of categoryOf. Network-lane spans and explicit
// exchange phases are communication; scheduling machinery (Algorithm 1
// splits, the delayed-gradient harvest) is scheduling overhead, mirroring
// perfsim's AuxCompute.
func categoryOfSpan(s Span) string {
	switch {
	case s.Name == "fp" || strings.HasPrefix(s.Name, "fp:"):
		return "forward"
	case s.Name == "bp" || strings.HasPrefix(s.Name, "bp:"):
		return "backward"
	case s.Track != TrackCompute || strings.HasPrefix(s.Name, "xchg/") || strings.HasPrefix(s.Name, "ps/"):
		return "communication"
	case strings.HasPrefix(s.Name, "sched/"):
		return "scheduling"
	default:
		return "compute"
	}
}

// ExportRecorders writes the spans of a real-execution run as Chrome trace
// JSON: one process per rank (pid = rank+1, so multi-rank timelines never
// collapse onto one process track) with compute, network and background-
// exchange threads — the same track structure the perfsim exporter emits,
// so a measured run and its simulated prediction open side-by-side in
// Perfetto. Nil recorders are skipped.
func ExportRecorders(w io.Writer, title string, recs []*Recorder) error {
	if len(recs) == 0 {
		return fmt.Errorf("trace: no recorders")
	}
	var ct chromeTrace
	wrote := false
	for _, r := range recs {
		if r == nil {
			continue
		}
		wrote = true
		pid := r.Rank() + 1
		ct.process(pid, fmt.Sprintf("rank %d — %s", r.Rank(), title), map[int]string{
			int(TrackCompute):    trackNames[TrackCompute],
			int(TrackNetwork):    trackNames[TrackNetwork],
			int(TrackBackground): trackNames[TrackBackground],
		})
		for _, s := range r.Spans() {
			args := map[string]any{}
			if s.Step >= 0 {
				args["step"] = s.Step
			}
			ct.add(event{
				Name:     s.Name,
				Category: categoryOfSpan(s),
				Phase:    "X",
				TS:       float64(s.Start.Nanoseconds()) / 1e3,
				Dur:      max(float64(s.Dur.Nanoseconds())/1e3, 0.001),
				PID:      pid,
				TID:      int(s.Track),
				Args:     args,
			})
		}
	}
	if !wrote {
		return fmt.Errorf("trace: no recorders")
	}
	return ct.write(w)
}
