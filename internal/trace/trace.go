// Package trace turns execution timelines into Chrome trace-event JSON
// (the format consumed by chrome://tracing and Perfetto) — both halves of
// the Figure-6 story:
//
//   - Export renders a *simulated* perfsim.Timeline: one process, compute
//     and network tracks, tasks colored by category (forward, backward,
//     communication, scheduling overhead).
//   - Recorder + ExportRecorders capture a *measured* real-execution run:
//     one Recorder per rank collects begin/end spans from the trainer and
//     strategy workers (plus automatic per-message network spans via the
//     collective Observer bridge), and the exporter emits one process per
//     rank with the same track/category vocabulary, so prediction and
//     measurement open side-by-side in the same viewer.
package trace

import (
	"fmt"
	"io"
	"strings"

	"embrace/internal/perfsim"
)

// event is one Chrome trace "complete" (ph=X) event. Timestamps and
// durations are microseconds.
type event struct {
	Name     string         `json:"name"`
	Category string         `json:"cat"`
	Phase    string         `json:"ph"`
	TS       float64        `json:"ts"`
	Dur      float64        `json:"dur"`
	PID      int            `json:"pid"`
	TID      int            `json:"tid"`
	Args     map[string]any `json:"args,omitempty"`
}

// metadata names the process/thread tracks.
type metadata struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args"`
}

// categoryOf buckets tasks for coloring and filtering in the viewer.
func categoryOf(t *perfsim.Task) string {
	switch {
	case t.AuxCompute:
		return "scheduling"
	case strings.HasPrefix(t.Name, "fp:"):
		return "forward"
	case strings.HasPrefix(t.Name, "bp:"):
		return "backward"
	case t.Res == perfsim.Network:
		return "communication"
	default:
		return "compute"
	}
}

// Export writes tl as Chrome trace JSON. The title names the process track
// (e.g. "GNMT-8 EmbRace 2D @ 16x RTX3090"). The perfsim timeline models one
// representative rank of a lockstep world, so it stays a single process
// (pid 1); real multi-rank runs go through ExportRecorders, which gives
// every rank its own process track.
func Export(w io.Writer, title string, tl *perfsim.Timeline) error {
	if tl == nil {
		return fmt.Errorf("trace: nil timeline")
	}
	var ct chromeTrace
	ct.add(metadata{Name: "process_name", Phase: "M", PID: 1, Args: map[string]any{"name": title}})
	ct.add(metadata{Name: "thread_name", Phase: "M", PID: 1, TID: int(perfsim.Compute), Args: map[string]any{"name": "compute stream"}})
	ct.add(metadata{Name: "thread_name", Phase: "M", PID: 1, TID: int(perfsim.Network), Args: map[string]any{"name": "network stream"}})
	for _, t := range tl.Tasks {
		ct.add(event{
			Name:     t.Name,
			Category: categoryOf(t),
			Phase:    "X",
			TS:       t.Start * 1e6,
			Dur:      t.Dur * 1e6,
			PID:      1,
			TID:      int(t.Res),
			Args: map[string]any{
				"step":     t.Step,
				"priority": t.Priority,
			},
		})
	}
	return ct.write(w)
}
