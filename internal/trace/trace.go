// Package trace exports perfsim timelines in the Chrome trace-event format
// (the JSON consumed by chrome://tracing and Perfetto), turning the
// Figure-6 execution timelines into interactive visualizations: one track
// for the compute stream, one for the network stream, tasks colored by
// category (forward, backward, communication, scheduling overhead).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"embrace/internal/perfsim"
)

// event is one Chrome trace "complete" (ph=X) event. Timestamps and
// durations are microseconds.
type event struct {
	Name     string         `json:"name"`
	Category string         `json:"cat"`
	Phase    string         `json:"ph"`
	TS       float64        `json:"ts"`
	Dur      float64        `json:"dur"`
	PID      int            `json:"pid"`
	TID      int            `json:"tid"`
	Args     map[string]any `json:"args,omitempty"`
}

// metadata names the process/thread tracks.
type metadata struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args"`
}

// categoryOf buckets tasks for coloring and filtering in the viewer.
func categoryOf(t *perfsim.Task) string {
	switch {
	case t.AuxCompute:
		return "scheduling"
	case strings.HasPrefix(t.Name, "fp:"):
		return "forward"
	case strings.HasPrefix(t.Name, "bp:"):
		return "backward"
	case t.Res == perfsim.Network:
		return "communication"
	default:
		return "compute"
	}
}

// Export writes tl as Chrome trace JSON. The title names the process track
// (e.g. "GNMT-8 EmbRace 2D @ 16x RTX3090").
func Export(w io.Writer, title string, tl *perfsim.Timeline) error {
	if tl == nil {
		return fmt.Errorf("trace: nil timeline")
	}
	var out struct {
		TraceEvents []any  `json:"traceEvents"`
		DisplayUnit string `json:"displayTimeUnit"`
	}
	out.DisplayUnit = "ms"
	out.TraceEvents = append(out.TraceEvents,
		metadata{Name: "process_name", Phase: "M", PID: 1, Args: map[string]any{"name": title}},
		metadata{Name: "thread_name", Phase: "M", PID: 1, TID: int(perfsim.Compute), Args: map[string]any{"name": "compute stream"}},
		metadata{Name: "thread_name", Phase: "M", PID: 1, TID: int(perfsim.Network), Args: map[string]any{"name": "network stream"}},
	)
	for _, t := range tl.Tasks {
		out.TraceEvents = append(out.TraceEvents, event{
			Name:     t.Name,
			Category: categoryOf(t),
			Phase:    "X",
			TS:       t.Start * 1e6,
			Dur:      t.Dur * 1e6,
			PID:      1,
			TID:      int(t.Res),
			Args: map[string]any{
				"step":     t.Step,
				"priority": t.Priority,
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
