package compress

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime/debug"
	"testing"
	"testing/quick"

	"embrace/internal/collective"
	"embrace/internal/comm"
	"embrace/internal/tensor"
)

// shardSample is a random sparse shard for the property tests: ragged row
// counts (empties and single rows included), dim down to 1, indices from
// dense small vocabularies up to 2^40-row tables, and values mixing
// gradient-scale floats with zeros, arbitrary bit patterns (denormals and
// NaNs), huge magnitudes and infinities.
type shardSample struct {
	idx  []int64
	vals []float32
	dim  int
}

// Generate implements quick.Generator.
func (shardSample) Generate(r *rand.Rand, _ int) reflect.Value {
	dim := 1 + r.Intn(8)
	rows := r.Intn(33)
	switch r.Intn(8) {
	case 0:
		rows = 0
	case 1:
		rows = 1
	}
	idx := make([]int64, rows)
	vals := make([]float32, rows*dim)
	for i := range idx {
		switch r.Intn(4) {
		case 0:
			idx[i] = int64(r.Intn(64))
		case 1:
			idx[i] = r.Int63n(1 << 20)
		default:
			idx[i] = r.Int63n(1 << 40)
		}
	}
	for i := range vals {
		switch r.Intn(12) {
		case 0:
			vals[i] = float32(math.NaN())
		case 1:
			vals[i] = float32(math.Inf(1))
		case 2:
			vals[i] = float32(math.Inf(-1))
		case 3:
			vals[i] = 0
		case 4:
			vals[i] = math.Float32frombits(r.Uint32())
		case 5:
			vals[i] = (r.Float32()*2 - 1) * 1e30
		default:
			vals[i] = (r.Float32()*2 - 1) * 0.1
		}
	}
	return reflect.ValueOf(shardSample{idx: idx, vals: vals, dim: dim})
}

func mustDualQuant(t *testing.T, prior, delayed float32) DualQuant {
	t.Helper()
	q, err := NewDualQuant(prior, delayed)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// Lossless round trip: decoding DeltaRaw's wire bytes reproduces every index
// and every value bit pattern exactly — NaN and Inf included — and appending
// onto non-empty destination slices preserves their prefix (the arena-append
// contract AlltoAllSparseCodec relies on).
func TestDeltaRawRoundTripQuick(t *testing.T) {
	prefixIdx := []int64{7, 9}
	prefixVals := []float32{1.5, -2.5, 3.5}
	f := func(s shardSample) bool {
		wire := DeltaRaw{}.AppendShard(nil, s.idx, s.vals, s.dim, collective.RowsWhole)
		idx, vals, err := DeltaRaw{}.DecodeShard(wire, len(s.idx), s.dim, append([]int64(nil), prefixIdx...), append([]float32(nil), prefixVals...))
		if err != nil {
			return false
		}
		if len(idx) != len(prefixIdx)+len(s.idx) || len(vals) != len(prefixVals)+len(s.vals) {
			return false
		}
		for i, v := range prefixIdx {
			if idx[i] != v {
				return false
			}
		}
		for i, v := range prefixVals {
			if math.Float32bits(vals[i]) != math.Float32bits(v) {
				return false
			}
		}
		for i, v := range s.idx {
			if idx[len(prefixIdx)+i] != v {
				return false
			}
		}
		for i, v := range s.vals {
			if math.Float32bits(vals[len(prefixVals)+i]) != math.Float32bits(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Lossy round trip: indices are exact, every finite value is within the
// declared per-element epsilon of its original, and non-finite values
// round-trip bit-identically through the raw-row escape.
func TestDualQuantRoundTripQuick(t *testing.T) {
	q := mustDualQuant(t, 1e-4, 1e-3)
	for _, class := range []collective.RowClass{collective.RowsWhole, collective.RowsPrior, collective.RowsDelayed} {
		eps := float64(q.Eps(class))
		f := func(s shardSample) bool {
			wire := q.AppendShard(nil, s.idx, s.vals, s.dim, class)
			idx, vals, err := q.DecodeShard(wire, len(s.idx), s.dim, nil, nil)
			if err != nil {
				return false
			}
			if len(idx) != len(s.idx) || len(vals) != len(s.vals) {
				return false
			}
			for i, v := range s.idx {
				if idx[i] != v {
					return false
				}
			}
			for i, v := range s.vals {
				f64 := float64(v)
				if math.IsNaN(f64) || math.IsInf(f64, 0) {
					if math.Float32bits(vals[i]) != math.Float32bits(v) {
						return false
					}
					continue
				}
				diff := math.Abs(f64 - float64(vals[i]))
				// eps plus float32-rounding slack: converting q*step to
				// float32 can add up to half an ulp of the reconstruction.
				if diff > eps*(1+1e-6)+math.Abs(f64)*1e-6 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
			t.Fatalf("class %d: %v", class, err)
		}
	}
}

// The dual levels are real: the same shard encoded with the delayed class
// ships fewer bytes (coarser grid, smaller quantized magnitudes) and shows a
// larger — but still bounded — reconstruction error than the prior class.
func TestDualQuantDualLevel(t *testing.T) {
	q := mustDualQuant(t, 1e-4, 1e-3)
	rng := rand.New(rand.NewSource(11))
	const rows, dim = 64, 8
	idx := make([]int64, rows)
	vals := make([]float32, rows*dim)
	for i := range idx {
		idx[i] = rng.Int63n(10000)
	}
	for i := range vals {
		vals[i] = (rng.Float32()*2 - 1) * 0.05
	}
	prior := q.AppendShard(nil, idx, vals, dim, collective.RowsPrior)
	delayed := q.AppendShard(nil, idx, vals, dim, collective.RowsDelayed)
	if len(delayed) >= len(prior) {
		t.Errorf("delayed class encodes to %d bytes, prior to %d — looser bound should be smaller", len(delayed), len(prior))
	}
	maxErr := func(wire []byte) float64 {
		_, got, err := q.DecodeShard(wire, rows, dim, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for i := range vals {
			worst = math.Max(worst, math.Abs(float64(vals[i])-float64(got[i])))
		}
		return worst
	}
	ep, ed := maxErr(prior), maxErr(delayed)
	if ep > float64(q.EpsPrior)*(1+1e-6) {
		t.Errorf("prior-class max error %g exceeds EpsPrior %g", ep, q.EpsPrior)
	}
	if ed > float64(q.EpsDelayed)*(1+1e-6) {
		t.Errorf("delayed-class max error %g exceeds EpsDelayed %g", ed, q.EpsDelayed)
	}
	if ed <= float64(q.EpsPrior) {
		t.Errorf("delayed-class max error %g never left the prior bound %g — same grid?", ed, q.EpsPrior)
	}
}

func TestNewDualQuantValidates(t *testing.T) {
	for _, bad := range [][2]float32{{0, 1e-3}, {-1e-4, 1e-3}, {1e-3, 1e-4}, {float32(math.Inf(1)), float32(math.Inf(1))}} {
		if _, err := NewDualQuant(bad[0], bad[1]); err == nil {
			t.Errorf("NewDualQuant(%g, %g) accepted", bad[0], bad[1])
		}
	}
	if _, err := NewDualQuant(1e-4, 1e-4); err != nil {
		t.Errorf("equal bounds rejected: %v", err)
	}
}

// Decoding must never panic or over-read: every truncation of a valid
// payload and a sweep of random byte corruptions either errors or returns a
// well-formed shard of exactly the advertised shape.
func TestSparseDecodeCorruptionSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	q := mustDualQuant(t, 1e-4, 1e-3)
	codecs := []SparseCodec{DeltaRaw{}, q}
	sample := shardSample{}.Generate(rng, 0).Interface().(shardSample)
	for len(sample.idx) < 4 { // ensure a few rows so payloads are non-trivial
		sample = shardSample{}.Generate(rng, 0).Interface().(shardSample)
	}
	rows, dim := len(sample.idx), sample.dim
	for _, codec := range codecs {
		wire := codec.AppendShard(nil, sample.idx, sample.vals, dim, collective.RowsPrior)
		check := func(src []byte, label string) {
			idx, vals, err := codec.DecodeShard(src, rows, dim, nil, nil)
			if err == nil && (len(idx) != rows || len(vals) != rows*dim) {
				t.Fatalf("%s %s: decode returned %d rows, %d values without error", codec.Name(), label, len(idx), len(vals))
			}
		}
		for cut := 0; cut < len(wire); cut++ {
			check(wire[:cut], fmt.Sprintf("truncated@%d", cut))
		}
		for trial := 0; trial < 200; trial++ {
			mut := append([]byte(nil), wire...)
			for flips := 1 + rng.Intn(4); flips > 0; flips-- {
				mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
			}
			check(mut, "mutated")
		}
	}
}

// Satellite: hotalloc-clean codecs must also be measurably allocation-free —
// encode+decode round trips over warmed buffers make zero allocations, the
// same steady-state discipline as the exchange they ride.
func TestCodecSteadyStateZeroAllocs(t *testing.T) {
	const rows, dim = 128, 8
	rng := rand.New(rand.NewSource(31))
	idx := make([]int64, rows)
	vals := make([]float32, rows*dim)
	for i := range idx {
		idx[i] = rng.Int63n(100000)
	}
	for i := range vals {
		vals[i] = (rng.Float32()*2 - 1) * 0.1
	}
	vals[3] = float32(math.NaN()) // keep one raw-escape row in play
	q := mustDualQuant(t, 1e-4, 1e-3)
	for _, codec := range []SparseCodec{DeltaRaw{}, q} {
		scratch := codec.AppendShard(nil, idx, vals, dim, collective.RowsPrior)
		ibuf := make([]int64, 0, rows)
		vbuf := make([]float32, 0, rows*dim)
		do := func() {
			wire := codec.AppendShard(scratch[:0], idx, vals, dim, collective.RowsPrior)
			i2, v2, err := codec.DecodeShard(wire, rows, dim, ibuf[:0], vbuf[:0])
			if err != nil || len(i2) != rows || len(v2) != rows*dim {
				panic("bad round trip")
			}
		}
		if n := testing.AllocsPerRun(100, do); n != 0 {
			t.Errorf("%s: steady-state encode+decode allocates %v times per op", codec.Name(), n)
		}
	}
}

// ---------------------------------------------------------------------------
// Exchange integration: AlltoAllSparseCodec against the raw exchange.
// ---------------------------------------------------------------------------

// codecShards builds rank r's deterministic send shards. Every shard sent by
// rank r carries r's column width — ragged when widths differ per rank, the
// remainder-bearing column-partition case.
func codecShards(seed int64, r, n, rows int, dims []int) []*tensor.Sparse {
	rng := rand.New(rand.NewSource(seed + int64(r)*2029))
	out := make([]*tensor.Sparse, n)
	dim := dims[r]
	for p := 0; p < n; p++ {
		nnz := rng.Intn(9)
		if rng.Intn(4) == 0 {
			nnz = 0
		}
		idx := make([]int64, nnz)
		vals := make([]float32, nnz*dim)
		for i := range idx {
			idx[i] = rng.Int63n(int64(rows))
		}
		for i := range vals {
			switch rng.Intn(16) {
			case 0:
				vals[i] = float32(math.NaN())
			case 1:
				vals[i] = float32(math.Inf(1))
			default:
				vals[i] = (rng.Float32()*2 - 1) * 0.2
			}
		}
		s, err := tensor.NewSparse(rows, dim, idx, vals)
		if err != nil {
			panic(err)
		}
		out[p] = s
	}
	return out
}

// runCodecExchangeEquivalence drives the raw and codec exchanges on every
// rank and checks shard-by-shard agreement: bit-identical for lossless
// codecs, index-exact and epsilon-bounded for lossy ones (self shards are
// bit-identical either way — they never touch the wire).
func runCodecExchangeEquivalence(t *testing.T, n int, seed int64, dims []int, codec SparseCodec, maxErr float64, run func(int, func(comm.Transport) error) error) {
	t.Helper()
	err := run(n, func(tr comm.Transport) error {
		cm := collective.NewCommunicator(tr)
		r := tr.Rank()
		send := codecShards(seed, r, n, 64, dims)
		var raw, enc collective.SparseShards
		if err := cm.AlltoAllSparse("codec/raw", 0, send, &raw); err != nil {
			return err
		}
		if err := cm.AlltoAllSparseCodec("codec/enc", 0, send, &enc, codec, collective.RowsWhole); err != nil {
			return err
		}
		var rv, ev tensor.Sparse
		for p := 0; p < n; p++ {
			raw.ShardView(p, &rv)
			enc.ShardView(p, &ev)
			if len(rv.Indices) != len(ev.Indices) || len(rv.Vals) != len(ev.Vals) || rv.Dim != ev.Dim {
				return fmt.Errorf("rank %d shard %d: shape mismatch", r, p)
			}
			for i := range rv.Indices {
				if rv.Indices[i] != ev.Indices[i] {
					return fmt.Errorf("rank %d shard %d: index %d differs", r, p, i)
				}
			}
			exact := codec.Lossless() || p == r
			for i := range rv.Vals {
				a, b := rv.Vals[i], ev.Vals[i]
				if exact || math.IsNaN(float64(a)) || math.IsInf(float64(a), 0) {
					if math.Float32bits(a) != math.Float32bits(b) {
						return fmt.Errorf("rank %d shard %d: value %d bits differ (%v vs %v)", r, p, i, a, b)
					}
					continue
				}
				if diff := math.Abs(float64(a) - float64(b)); diff > maxErr {
					return fmt.Errorf("rank %d shard %d: value %d error %g exceeds %g", r, p, i, diff, maxErr)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func uniformDims(n, dim int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = dim
	}
	return out
}

func raggedDims(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 2 + i%3 // widths 2, 3, 4 — a remainder-bearing partition
	}
	return out
}

func TestAlltoAllSparseCodecMatchesRawExchange(t *testing.T) {
	q := mustDualQuant(t, 1e-4, 1e-3)
	for _, n := range []int{1, 2, 3, 4} {
		for seed := int64(1); seed <= 3; seed++ {
			for _, dims := range [][]int{uniformDims(n, 3), raggedDims(n)} {
				runCodecExchangeEquivalence(t, n, seed, dims, DeltaRaw{}, 0, comm.RunRanks)
				runCodecExchangeEquivalence(t, n, seed, dims, q, float64(q.EpsPrior)*(1+1e-6), comm.RunRanks)
			}
		}
	}
}

// The codec path inherits the seq-framed self-healing point-to-point, so
// every maskable chaos plan leaves the compressed exchange bit-identical to
// the raw one (lossless) or within the same epsilon (lossy).
func TestAlltoAllSparseCodecUnderChaos(t *testing.T) {
	q := mustDualQuant(t, 1e-4, 1e-3)
	for _, n := range []int{2, 3, 4} {
		for seed := int64(1); seed <= 3; seed++ {
			run := func(n int, fn func(comm.Transport) error) error {
				return comm.RunRanksChaos(n, comm.MaskableChaosPlan(seed), fn)
			}
			runCodecExchangeEquivalence(t, n, seed+40, raggedDims(n), DeltaRaw{}, 0, run)
			runCodecExchangeEquivalence(t, n, seed+40, uniformDims(n, 4), q, float64(q.EpsPrior)*(1+1e-6), run)
		}
	}
}

func TestAlltoAllSparseCodecOverTCP(t *testing.T) {
	runCodecExchangeEquivalence(t, 3, 99, uniformDims(3, 3), DeltaRaw{}, 0, comm.RunRanksTCP)
}

// Steady-state alloc budget for the compressed exchange, the PR-6 discipline
// extended to the codec path: with pools and arenas warm and GC parked, a
// two-rank compressed exchange must not allocate more than the raw exchange
// it replaces (it sends one pooled payload where raw sends two) plus the
// fixed per-op overhead budget.
func TestAlltoAllSparseCodecSteadyStateAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const n, warm, runs = 2, 3, 50
	measure := func(codec SparseCodec) float64 {
		var got float64
		err := comm.RunRanks(n, func(tr comm.Transport) error {
			cm := collective.NewCommunicator(tr)
			send := codecShards(77, tr.Rank(), n, 128, uniformDims(n, 4))
			var arena collective.SparseShards
			step := 0
			do := func() {
				if err := cm.AlltoAllSparseCodec("codec/allocs", step, send, &arena, codec, collective.RowsWhole); err != nil {
					panic(err)
				}
				step++
			}
			if tr.Rank() == 0 {
				for i := 0; i < warm; i++ {
					do()
				}
				got = testing.AllocsPerRun(runs, do)
				return nil
			}
			// AllocsPerRun performs one warm-up call plus `runs` measured
			// calls; stay in lockstep with rank 0.
			for i := 0; i < warm+1+runs; i++ {
				do()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	rawAllocs := measure(nil)
	q := mustDualQuant(t, 1e-4, 1e-3)
	for _, codec := range []SparseCodec{DeltaRaw{}, q} {
		if got := measure(codec); got > rawAllocs {
			t.Errorf("%s: compressed exchange makes %v allocs/op, raw path %v — codec path must not regress", codec.Name(), got, rawAllocs)
		} else {
			t.Logf("%s: %v allocs/op (raw %v)", codec.Name(), got, rawAllocs)
		}
	}
}
