package compress

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"embrace/internal/collective"
	"embrace/internal/comm"
)

func TestTopKKeepsLargest(t *testing.T) {
	src := []float32{0.1, -5, 0.2, 3, -0.05, 4}
	p, err := TopK{K: 3}.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, -5, 0, 3, 0, 4}
	for i := range want {
		if dec[i] != want[i] {
			t.Fatalf("dec[%d] = %v, want %v", i, dec[i], want[i])
		}
	}
}

func TestTopKShortVectorLossless(t *testing.T) {
	src := []float32{1, 2}
	p, _ := TopK{K: 10}.Compress(src)
	dec, _ := Decompress(p)
	for i := range src {
		if dec[i] != src[i] {
			t.Fatal("short vectors must pass through losslessly")
		}
	}
}

func TestTopKValidation(t *testing.T) {
	if _, err := (TopK{K: 0}).Compress([]float32{1}); err == nil {
		t.Fatal("expected K validation error")
	}
}

func TestQ8RoundTripBounds(t *testing.T) {
	// Quantization error is bounded by scale/2 per element.
	rng := rand.New(rand.NewSource(1))
	src := make([]float32, 500)
	for i := range src {
		src[i] = rng.Float32()*20 - 10
	}
	p, err := Q8{}.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(p)
	if err != nil {
		t.Fatal(err)
	}
	bound := float64(p.Scale) * 0.5001
	for i := range src {
		if math.Abs(float64(src[i]-dec[i])) > bound {
			t.Fatalf("elem %d error %v exceeds %v", i, src[i]-dec[i], bound)
		}
	}
}

func TestQ8ZeroVector(t *testing.T) {
	p, err := Q8{}.Compress(make([]float32, 8))
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := Decompress(p)
	for _, v := range dec {
		if v != 0 {
			t.Fatal("zero vector must round trip to zeros")
		}
	}
}

func TestRatios(t *testing.T) {
	if r := (TopK{K: 10}).Ratio(1000); math.Abs(r-0.02) > 1e-9 {
		t.Fatalf("topk ratio = %v", r)
	}
	if r := (Q8{}).Ratio(1000); r > 0.26 || r < 0.25 {
		t.Fatalf("q8 ratio = %v", r)
	}
}

func TestDecompressValidation(t *testing.T) {
	if _, err := Decompress(Payload{Kind: "nope", N: 1}); err == nil {
		t.Fatal("expected kind error")
	}
	if _, err := Decompress(Payload{Kind: "topk", N: 2, Indices: []int32{5}, Values: []float32{1}}); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := Decompress(Payload{Kind: "topk", N: 2, Indices: []int32{0}, Values: nil}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := Decompress(Payload{Kind: "q8", N: 3, Q: []int8{1}}); err == nil {
		t.Fatal("expected q8 length error")
	}
}

func TestCompressedAllReduceQ8(t *testing.T) {
	// Q8 aggregation must approximate the true sum within the combined
	// quantization bound.
	const n, m = 4, 200
	rng := rand.New(rand.NewSource(2))
	inputs := make([][]float32, n)
	want := make([]float64, m)
	for r := range inputs {
		inputs[r] = make([]float32, m)
		for i := range inputs[r] {
			inputs[r][i] = rng.Float32()*2 - 1
			want[i] += float64(inputs[r][i])
		}
	}
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		buf := append([]float32(nil), inputs[tr.Rank()]...)
		if err := CompressedAllReduce(collective.NewCommunicator(tr), "test/q8", 0, buf, Q8{}, nil); err != nil {
			return err
		}
		for i, v := range buf {
			if math.Abs(float64(v)-want[i]) > 0.05 {
				return fmt.Errorf("elem %d: %v vs %v", i, v, want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Error feedback property: with TopK + residual, repeatedly sending the SAME
// gradient eventually delivers its full mass — nothing dropped is lost.
func TestResidualErrorFeedbackConverges(t *testing.T) {
	const m = 32
	rng := rand.New(rand.NewSource(3))
	grad := make([]float32, m)
	for i := range grad {
		grad[i] = rng.Float32() + 0.1
	}
	var res Residual
	c := TopK{K: 4}
	delivered := make([]float64, m)
	for step := 0; step < 60; step++ {
		work := append([]float32(nil), grad...)
		work = res.Apply(work)
		p, err := c.Compress(work)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Update(work, p); err != nil {
			t.Fatal(err)
		}
		dec, _ := Decompress(p)
		for i, v := range dec {
			delivered[i] += float64(v)
		}
	}
	// After S steps the total delivered mass must track S * grad: the gap
	// is bounded by the residual still in flight, which cycles every
	// m/K steps — allow a couple of cycles of slack but no unbounded leak.
	slackCycles := 2.0 * float64(m) / 4.0
	for i := range grad {
		wantTotal := 60 * float64(grad[i])
		if math.Abs(delivered[i]-wantTotal) > float64(grad[i])*slackCycles {
			t.Fatalf("elem %d: delivered %v of %v — error feedback leaking", i, delivered[i], wantTotal)
		}
	}
	// Without error feedback, rarely-selected elements deliver nothing at
	// all — the contrast that motivates the residual.
	var noFeedback float64
	for step := 0; step < 60; step++ {
		p, _ := c.Compress(grad)
		dec, _ := Decompress(p)
		noFeedback += float64(dec[0]) // grad[0] is small, never in the top 4
	}
	idx0InTop := false
	p, _ := c.Compress(grad)
	for _, ix := range p.Indices {
		if ix == 0 {
			idx0InTop = true
		}
	}
	if !idx0InTop && noFeedback != 0 {
		t.Fatal("without feedback, unselected elements should deliver zero")
	}
}

func TestCompressedAllReduceOverTCP(t *testing.T) {
	const n, m = 3, 50
	err := comm.RunRanksTCP(n, func(tr comm.Transport) error {
		buf := make([]float32, m)
		for i := range buf {
			buf[i] = 1
		}
		if err := CompressedAllReduce(collective.NewCommunicator(tr), "tcp/topk", 0, buf, TopK{K: m}, nil); err != nil {
			return err
		}
		for i, v := range buf {
			if v != n {
				return fmt.Errorf("elem %d = %v", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: lossless when K >= len: compressed allreduce == plain sum.
func TestTopKLosslessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(64)
		src := make([]float32, m)
		for i := range src {
			src[i] = rng.Float32()*2 - 1
		}
		p, err := TopK{K: m}.Compress(src)
		if err != nil {
			return false
		}
		dec, err := Decompress(p)
		if err != nil {
			return false
		}
		for i := range src {
			if dec[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
