package compress_test

import (
	"fmt"

	"embrace/internal/compress"
)

// Top-K keeps only the largest-magnitude gradient entries; everything else
// waits in the error-feedback residual for a later round.
func ExampleTopK() {
	grad := []float32{0.1, -5, 0.2, 3, -0.05}
	p, _ := compress.TopK{K: 2}.Compress(grad)
	dec, _ := compress.Decompress(p)
	fmt.Println(dec)
	fmt.Printf("payload %.0f%% of dense\n", 100*compress.TopK{K: 2}.Ratio(len(grad)))
	// Output:
	// [0 -5 0 3 0]
	// payload 80% of dense
}
