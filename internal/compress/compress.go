// Package compress implements the gradient-compression techniques the paper
// lists as orthogonal, complementary communication accelerations (§6,
// direction 3: "reducing messages size with gradient compression", citing
// QSGD and Deep Gradient Compression). Two compressors are provided:
//
//   - TopK: keep the k largest-magnitude elements as a sparse (index, value)
//     list — DGC-style sparsification.
//   - Q8: linear 8-bit quantization with a per-tensor scale — QSGD-style.
//
// CompressedAllReduce aggregates a dense gradient by compressing locally,
// AllGathering the small payloads, and summing the decompressed
// contributions — the exchange pattern compressed gradients force (they are
// not associative under reduction, §2.2). Both compressors are lossy; the
// error-feedback accumulator (Residual) captures what was dropped so it can
// be re-injected into the next step, the standard trick for keeping
// convergence.
package compress

import (
	"fmt"
	"math"
	"sort"

	"embrace/internal/collective"
	"embrace/internal/comm"
)

// Compressor turns a dense vector into a compact payload and back.
type Compressor interface {
	// Name identifies the compressor.
	Name() string
	// Compress encodes src. The returned payload must be routable through
	// comm transports (registered wire type).
	Compress(src []float32) (Payload, error)
	// Ratio estimates payload bytes over dense bytes for a vector of n
	// elements (for reporting).
	Ratio(n int) float64
}

// Payload is a compressed gradient chunk.
type Payload struct {
	// Kind discriminates the compressor ("topk", "q8").
	Kind string
	// N is the dense length.
	N int
	// Indices/Values carry TopK data.
	Indices []int32
	Values  []float32
	// Q carries Q8 data; Scale its dequantization factor.
	Q     []int8
	Scale float32
}

func init() {
	comm.RegisterWireType(Payload{})
}

// Decompress scatters the payload into a dense vector of length p.N.
func Decompress(p Payload) ([]float32, error) {
	out := make([]float32, p.N)
	switch p.Kind {
	case "topk":
		if len(p.Indices) != len(p.Values) {
			return nil, fmt.Errorf("compress: topk payload has %d indices, %d values", len(p.Indices), len(p.Values))
		}
		for i, ix := range p.Indices {
			if ix < 0 || int(ix) >= p.N {
				return nil, fmt.Errorf("compress: topk index %d out of range [0,%d)", ix, p.N)
			}
			out[ix] = p.Values[i]
		}
	case "q8":
		if len(p.Q) != p.N {
			return nil, fmt.Errorf("compress: q8 payload has %d values, want %d", len(p.Q), p.N)
		}
		for i, q := range p.Q {
			out[i] = float32(q) * p.Scale
		}
	default:
		return nil, fmt.Errorf("compress: unknown payload kind %q", p.Kind)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// TopK
// ---------------------------------------------------------------------------

// TopK keeps the K largest-magnitude elements.
type TopK struct {
	// K is the number of elements kept; vectors shorter than K pass
	// through losslessly.
	K int
}

// Name implements Compressor.
func (c TopK) Name() string { return fmt.Sprintf("top%d", c.K) }

// Compress implements Compressor.
func (c TopK) Compress(src []float32) (Payload, error) {
	if c.K <= 0 {
		return Payload{}, fmt.Errorf("compress: top-k needs positive K, got %d", c.K)
	}
	k := c.K
	if k > len(src) {
		k = len(src)
	}
	order := make([]int, len(src))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return math.Abs(float64(src[order[a]])) > math.Abs(float64(src[order[b]]))
	})
	p := Payload{Kind: "topk", N: len(src)}
	p.Indices = make([]int32, k)
	p.Values = make([]float32, k)
	for i := 0; i < k; i++ {
		p.Indices[i] = int32(order[i])
		p.Values[i] = src[order[i]]
	}
	return p, nil
}

// Ratio implements Compressor.
func (c TopK) Ratio(n int) float64 {
	if n == 0 {
		return 1
	}
	k := min(c.K, n)
	return float64(k*(4+4)) / float64(n*4)
}

// ---------------------------------------------------------------------------
// Q8
// ---------------------------------------------------------------------------

// Q8 quantizes to signed 8-bit integers with a per-tensor max-abs scale.
type Q8 struct{}

// Name implements Compressor.
func (Q8) Name() string { return "q8" }

// Compress implements Compressor.
func (Q8) Compress(src []float32) (Payload, error) {
	var maxAbs float32
	for _, v := range src {
		if a := float32(math.Abs(float64(v))); a > maxAbs {
			maxAbs = a
		}
	}
	p := Payload{Kind: "q8", N: len(src), Q: make([]int8, len(src))}
	if maxAbs == 0 {
		p.Scale = 0
		return p, nil
	}
	p.Scale = maxAbs / 127
	inv := 1 / p.Scale
	for i, v := range src {
		q := math.Round(float64(v * inv))
		if q > 127 {
			q = 127
		}
		if q < -127 {
			q = -127
		}
		p.Q[i] = int8(q)
	}
	return p, nil
}

// Ratio implements Compressor.
func (Q8) Ratio(n int) float64 {
	if n == 0 {
		return 1
	}
	return (float64(n) + 4) / float64(n*4)
}

// ---------------------------------------------------------------------------
// Exchange
// ---------------------------------------------------------------------------

// Residual is a per-tensor error-feedback accumulator: the difference
// between what a rank wanted to send and what the compressor kept is added
// back into the next gradient, so nothing is lost permanently.
type Residual struct {
	buf []float32
}

// Apply folds the residual into grad (in place) and returns grad.
func (r *Residual) Apply(grad []float32) []float32 {
	if r.buf == nil {
		r.buf = make([]float32, len(grad))
	}
	if len(r.buf) != len(grad) {
		// Gradient shape changed; drop stale feedback.
		r.buf = make([]float32, len(grad))
	}
	for i := range grad {
		grad[i] += r.buf[i]
	}
	return grad
}

// Update records what the payload failed to carry of the (residual-folded)
// gradient.
func (r *Residual) Update(grad []float32, sent Payload) error {
	dec, err := Decompress(sent)
	if err != nil {
		return err
	}
	for i := range grad {
		r.buf[i] = grad[i] - dec[i]
	}
	return nil
}

// CompressedAllReduce sums buf element-wise across all ranks, moving only
// compressed payloads: each rank compresses its (residual-corrected) vector,
// AllGathers the payloads under (op, step), and sums the decompressed
// contributions. The residual may be nil to disable error feedback.
func CompressedAllReduce(cm *collective.Communicator, op string, step int, buf []float32, c Compressor, res *Residual) error {
	send := buf
	if res != nil {
		send = res.Apply(buf)
	}
	payload, err := c.Compress(send)
	if err != nil {
		return err
	}
	if res != nil {
		if err := res.Update(send, payload); err != nil {
			return err
		}
	}
	gathered, err := collective.AllGatherVia(cm, op, step, payload)
	if err != nil {
		return fmt.Errorf("compress: gathering payloads: %w", err)
	}
	for i := range buf {
		buf[i] = 0
	}
	for _, p := range gathered {
		dec, err := Decompress(p)
		if err != nil {
			return err
		}
		if len(dec) != len(buf) {
			return fmt.Errorf("compress: peer payload length %d != %d", len(dec), len(buf))
		}
		for i, v := range dec {
			buf[i] += v
		}
	}
	return nil
}
