// Sparse wire codecs for the embedding AlltoAll (DESIGN.md §12). The
// embedding-gradient exchange is the paper's dominant communication cost,
// and its payloads are index–value streams, not dense vectors — so the
// dense Compressor path above does not apply. Two codecs cover the two
// regimes:
//
//   - DeltaRaw: lossless. Row ids are sorted-ascending after Coalesce, so
//     delta + zigzag varint encoding collapses the 8-byte indices to ~1
//     byte each (SparCML's index–value stream layout); values ship as raw
//     float32 bit patterns, so training stays bit-identical — NaN and Inf
//     payloads included.
//
//   - DualQuant: lossy, error-bounded. Each value is linearly quantized to
//     round(v/step) with step = 2ε, so every reconstructed element is
//     within ε of the original — the absolute error bound of
//     "Dual-Level Adaptive Lossy Compression". Dual-level: ε is chosen per
//     exchange from the scheduler's prior/delayed row classes — prior rows
//     feed the very next step and get EpsPrior, delayed rows tolerate the
//     looser EpsDelayed. Rows holding non-finite values or magnitudes the
//     quantizer cannot bound fall back to raw float32 bits per row (a flag
//     bit in the row key), so the ε guarantee holds for every finite
//     element and non-finite ones round-trip bit-identically.
//
// Both codecs implement collective.SparseCodec (declared next to the
// exchange so this package can depend on collective, not the reverse) and
// are append-style: encode scratch and decode targets come from the
// Communicator's byte pool and the receive arena, so the compressed hot
// path allocates nothing in steady state.
package compress

import (
	"encoding/binary"
	"math"

	"embrace/internal/collective"
)

// SparseCodec is the sparse-shard wire codec contract. The canonical
// declaration lives in collective (next to AlltoAllSparseCodec); the alias
// keeps this package the home of the implementations.
type SparseCodec = collective.SparseCodec

// zigzag maps signed deltas onto small unsigned varints: 0,-1,1,-2,... ->
// 0,1,2,3,...
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// sparseDecodeError is returned (never panicked) on truncated or corrupt
// payloads, so a byte-flipping fuzzer exercises error paths, not crashes.
type sparseDecodeError string

func (e sparseDecodeError) Error() string { return "compress: " + string(e) }

// ---------------------------------------------------------------------------
// DeltaRaw: lossless delta-varint indices + raw float32 values.
// ---------------------------------------------------------------------------

// DeltaRaw is the lossless sparse codec. Wire layout: one zigzag-varint
// index delta per row (versus the previous row's index, starting from 0),
// then rows*dim raw little-endian float32 bit patterns. Decoding is
// bit-identical to the input for every value, including NaN and ±Inf.
type DeltaRaw struct{}

// Name implements SparseCodec.
func (DeltaRaw) Name() string { return "delta-raw" }

// Lossless implements SparseCodec.
func (DeltaRaw) Lossless() bool { return true }

// AppendShard implements SparseCodec. The row class is irrelevant to a
// lossless codec.
//
//embrace:hotpath
func (DeltaRaw) AppendShard(dst []byte, idx []int64, vals []float32, dim int, _ collective.RowClass) []byte {
	prev := int64(0)
	for _, id := range idx {
		dst = binary.AppendUvarint(dst, zigzag(id-prev))
		prev = id
	}
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// DecodeShard implements SparseCodec.
//
//embrace:hotpath
func (DeltaRaw) DecodeShard(src []byte, rows, dim int, idx []int64, vals []float32) ([]int64, []float32, error) {
	prev := int64(0)
	for r := 0; r < rows; r++ {
		u, n := binary.Uvarint(src)
		if n <= 0 {
			return idx, vals, sparseDecodeError("delta-raw: truncated index stream")
		}
		src = src[n:]
		prev += unzigzag(u)
		idx = append(idx, prev)
	}
	if len(src) != rows*dim*4 {
		return idx, vals, sparseDecodeError("delta-raw: value stream length mismatch")
	}
	for i := 0; i < rows*dim; i++ {
		vals = append(vals, math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:])))
	}
	return idx, vals, nil
}

// ---------------------------------------------------------------------------
// DualQuant: dual-level error-bounded linear quantization.
// ---------------------------------------------------------------------------

// dqMaxQ bounds the quantized magnitude so float64 arithmetic on q*step is
// exact to well under an ulp; rows that would exceed it escape to raw bits.
const dqMaxQ = int64(1) << 31

// DualQuant is the dual-level lossy sparse codec. Every finite decoded
// element is within eps of its original, where eps is EpsPrior for
// RowsWhole/RowsPrior exchanges and EpsDelayed for RowsDelayed ones; rows
// carrying non-finite values or magnitudes beyond the quantizer's range are
// shipped as raw float32 bits and round-trip bit-identically.
//
// Wire layout: 4 bytes of float32 step size (2ε, so the decoder reconstructs
// with the encoder's exact grid), then per row one varint key
// (zigzag(index delta)<<1 | rawFlag) followed by either dim zigzag-varint
// quantized values or dim raw little-endian float32s. Index deltas must fit
// 63 bits — always true for embedding row ids, which are non-negative.
//
// Construct with NewDualQuant, which validates the bounds.
type DualQuant struct {
	// EpsPrior bounds the per-element error of prior-class (and whole,
	// unsplit) exchanges — rows applied to the very next step's lookup.
	EpsPrior float32
	// EpsDelayed bounds delayed-class exchanges; looser, per the dual-level
	// scheme, because a delayed row's error is smoothed by an extra step of
	// optimizer state before it can influence a lookup.
	EpsDelayed float32
}

// NewDualQuant validates 0 < epsPrior <= epsDelayed (both finite) and
// returns the codec.
func NewDualQuant(epsPrior, epsDelayed float32) (DualQuant, error) {
	if !(epsPrior > 0) || math.IsInf(float64(epsPrior), 0) {
		return DualQuant{}, sparseDecodeError("dualq: EpsPrior must be positive and finite")
	}
	if !(epsDelayed >= epsPrior) || math.IsInf(float64(epsDelayed), 0) {
		return DualQuant{}, sparseDecodeError("dualq: EpsDelayed must be >= EpsPrior and finite")
	}
	return DualQuant{EpsPrior: epsPrior, EpsDelayed: epsDelayed}, nil
}

// Name implements SparseCodec.
func (DualQuant) Name() string { return "dualq" }

// Lossless implements SparseCodec.
func (DualQuant) Lossless() bool { return false }

// Eps returns the error bound the codec applies to the given row class.
func (q DualQuant) Eps(class collective.RowClass) float32 {
	if class == collective.RowsDelayed {
		return q.EpsDelayed
	}
	return q.EpsPrior
}

// AppendShard implements SparseCodec.
//
//embrace:hotpath
func (q DualQuant) AppendShard(dst []byte, idx []int64, vals []float32, dim int, class RowClass) []byte {
	if len(idx) == 0 {
		return dst
	}
	// step = 2ε is a power-of-two multiple of ε, so step/2 == ε exactly and
	// round-to-nearest quantization errs by at most ε per element.
	stepF := 2 * q.Eps(class)
	step := float64(stepF)
	dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(stepF))
	prev := int64(0)
	for r, id := range idx {
		row := vals[r*dim : (r+1)*dim]
		raw := uint64(0)
		for _, v := range row {
			f := float64(v)
			if math.IsNaN(f) || math.IsInf(f, 0) || math.Abs(math.Round(f/step)) > float64(dqMaxQ) {
				raw = 1
				break
			}
		}
		dst = binary.AppendUvarint(dst, zigzag(id-prev)<<1|raw)
		prev = id
		if raw == 1 {
			for _, v := range row {
				dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
			}
			continue
		}
		for _, v := range row {
			dst = binary.AppendUvarint(dst, zigzag(int64(math.Round(float64(v)/step))))
		}
	}
	return dst
}

// DecodeShard implements SparseCodec.
//
//embrace:hotpath
func (q DualQuant) DecodeShard(src []byte, rows, dim int, idx []int64, vals []float32) ([]int64, []float32, error) {
	if rows == 0 {
		if len(src) != 0 {
			return idx, vals, sparseDecodeError("dualq: trailing bytes after empty shard")
		}
		return idx, vals, nil
	}
	if len(src) < 4 {
		return idx, vals, sparseDecodeError("dualq: truncated step header")
	}
	step := float64(math.Float32frombits(binary.LittleEndian.Uint32(src)))
	src = src[4:]
	if !(step > 0) || math.IsInf(step, 0) {
		return idx, vals, sparseDecodeError("dualq: invalid step size")
	}
	prev := int64(0)
	for r := 0; r < rows; r++ {
		key, n := binary.Uvarint(src)
		if n <= 0 {
			return idx, vals, sparseDecodeError("dualq: truncated row key")
		}
		src = src[n:]
		prev += unzigzag(key >> 1)
		idx = append(idx, prev)
		if key&1 == 1 {
			if len(src) < dim*4 {
				return idx, vals, sparseDecodeError("dualq: truncated raw row")
			}
			for i := 0; i < dim; i++ {
				vals = append(vals, math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:])))
			}
			src = src[dim*4:]
			continue
		}
		for i := 0; i < dim; i++ {
			u, n := binary.Uvarint(src)
			if n <= 0 {
				return idx, vals, sparseDecodeError("dualq: truncated quantized row")
			}
			src = src[n:]
			vals = append(vals, float32(float64(unzigzag(u))*step))
		}
	}
	if len(src) != 0 {
		return idx, vals, sparseDecodeError("dualq: trailing bytes after shard")
	}
	return idx, vals, nil
}

// Compile-time checks: both codecs satisfy the collective-side contract.
var (
	_ collective.SparseCodec = DeltaRaw{}
	_ collective.SparseCodec = DualQuant{}
)

// RowClass re-exports the collective row classes for callers configuring
// codecs without importing collective.
type RowClass = collective.RowClass
