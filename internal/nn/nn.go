// Package nn implements the real-arithmetic neural network used by the
// convergence experiments (Figure 11) and by the real-execution trainer.
//
// The paper trains full-size NLP models on GPUs; here a compact next-token
// prediction model stands in: a word embedding whose pooled vectors feed a
// two-layer MLP with a softmax cross-entropy head. That is deliberately the
// smallest architecture with the structure EmbRace cares about — a large
// sparse embedding in front of a dense trunk — so every communication
// strategy (AllReduce, AllGather, PS, EmbRace's AlltoAll with column-wise
// model parallelism) exercises its real data path, and the modified-Adam
// convergence claim (§5.7) can be tested with actual arithmetic.
//
// The embedding is split from the dense trunk at the pooled-vector boundary:
// the trunk consumes a [batch x embDim] activation and returns its gradient,
// so the same trunk composes with a locally held full embedding (the
// baselines) or with column-partitioned shards assembled by AlltoAll
// (EmbRace).
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"embrace/internal/tensor"
)

// Embedding is a dense [vocab x dim] lookup table whose gradients are
// row-sparse, the defining property of the models the paper targets (§2.1).
type Embedding struct {
	Table *tensor.Dense
}

// NewEmbedding creates an embedding with uniform Xavier-style init.
func NewEmbedding(rng *rand.Rand, vocab, dim int) *Embedding {
	scale := float32(math.Sqrt(3.0 / float64(dim)))
	return &Embedding{Table: tensor.RandDense(rng, scale, vocab, dim)}
}

// Vocab returns the number of rows.
func (e *Embedding) Vocab() int { return e.Table.Dim(0) }

// Dim returns the embedding width.
func (e *Embedding) Dim() int { return e.Table.Dim(1) }

// PoolLookup returns the mean of the embedding rows of each token window:
// out[i] = mean_j Table[tokens[i][j]]. Shape [len(tokens) x dim].
func (e *Embedding) PoolLookup(tokens [][]int64) *tensor.Dense {
	dim := e.Dim()
	out := tensor.NewDense(len(tokens), dim)
	for i, window := range tokens {
		dst := out.Row(i)
		if len(window) == 0 {
			continue
		}
		inv := 1 / float32(len(window))
		for _, tok := range window {
			src := e.Table.Row(int(tok))
			for d := 0; d < dim; d++ {
				dst[d] += src[d] * inv
			}
		}
	}
	return out
}

// PoolBackward converts the gradient of the pooled vectors into a row-sparse
// embedding gradient: each token of window i receives gradPooled[i]/|window|.
// The result is deliberately uncoalesced — duplicate tokens yield duplicate
// rows — exactly the raw gradient Algorithm 1 starts from.
func (e *Embedding) PoolBackward(tokens [][]int64, gradPooled *tensor.Dense) *tensor.Sparse {
	return PoolBackwardDims(e.Vocab(), e.Dim(), tokens, gradPooled)
}

// PoolBackwardDims is PoolBackward for a logical [vocab x dim] embedding;
// the gradient depends only on the window structure, not the table values,
// so no table is needed.
func PoolBackwardDims(vocab, dim int, tokens [][]int64, gradPooled *tensor.Dense) *tensor.Sparse {
	dst := &tensor.Sparse{}
	PoolBackwardInto(vocab, dim, tokens, gradPooled, dst)
	return dst
}

// PoolBackwardInto is PoolBackwardDims writing into a reused destination:
// dst's backing arrays grow to their high-water mark once and every later
// call appends into them, so the steady-state gradient build allocates
// nothing. Row order and arithmetic are identical to PoolBackwardDims.
//
//embrace:hotpath
func PoolBackwardInto(vocab, dim int, tokens [][]int64, gradPooled *tensor.Dense, dst *tensor.Sparse) {
	dst.Reset()
	dst.NumRows, dst.Dim = vocab, dim
	for i, window := range tokens {
		if len(window) == 0 {
			continue
		}
		inv := 1 / float32(len(window))
		g := gradPooled.Row(i)
		for _, tok := range window {
			if tok < 0 || tok >= int64(vocab) {
				// Tokens are validated upstream by the data generator; an
				// invalid index here is a programming error, not input error.
				panic(fmt.Sprintf("nn: PoolBackward: token %d out of range [0,%d)", tok, vocab))
			}
			dst.Indices = append(dst.Indices, tok)
			for d := 0; d < dim; d++ {
				dst.Vals = append(dst.Vals, g[d]*inv)
			}
		}
	}
}

// Trunk is the dense part of the model: pooled -> Linear -> ReLU -> Linear
// -> softmax cross-entropy over the vocabulary.
type Trunk struct {
	W1 *tensor.Dense // [embDim x hidden]
	B1 *tensor.Dense // [hidden]
	W2 *tensor.Dense // [hidden x vocab]
	B2 *tensor.Dense // [vocab]
}

// NewTrunk creates a trunk with Xavier-style uniform init.
func NewTrunk(rng *rand.Rand, embDim, hidden, vocab int) *Trunk {
	s1 := float32(math.Sqrt(6.0 / float64(embDim+hidden)))
	s2 := float32(math.Sqrt(6.0 / float64(hidden+vocab)))
	return &Trunk{
		W1: tensor.RandDense(rng, s1, embDim, hidden),
		B1: tensor.NewDense(hidden),
		W2: tensor.RandDense(rng, s2, hidden, vocab),
		B2: tensor.NewDense(vocab),
	}
}

// Params returns the trunk's parameter tensors in a stable order, keyed for
// the optimizer and the dense gradient exchange.
func (t *Trunk) Params() []NamedParam {
	return []NamedParam{
		{"w1", t.W1}, {"b1", t.B1}, {"w2", t.W2}, {"b2", t.B2},
	}
}

// NamedParam pairs a parameter tensor with a stable name.
type NamedParam struct {
	Name   string
	Tensor *tensor.Dense
}

// TrunkGrads holds the dense gradients of one backward pass, plus the
// gradient flowing back into the pooled embedding activations.
type TrunkGrads struct {
	W1, B1, W2, B2 *tensor.Dense
	Pooled         *tensor.Dense
}

// Dense returns the trunk gradients in the same stable order as
// Trunk.Params.
func (g *TrunkGrads) Dense() []NamedParam {
	return []NamedParam{
		{"w1", g.W1}, {"b1", g.B1}, {"w2", g.W2}, {"b2", g.B2},
	}
}

// forwardCache keeps the activations Backward needs.
type forwardCache struct {
	pooled  *tensor.Dense
	hidden  *tensor.Dense // post-ReLU
	probs   *tensor.Dense // softmax output
	targets []int64
}

// Correct returns the number of batch rows whose most probable token equals
// the target — the top-1 next-token accuracy used as the translation-score
// stand-in in the Figure-11(b) convergence experiment.
func (c *forwardCache) Correct() int {
	correct := 0
	for i, want := range c.targets {
		row := c.probs.Row(i)
		best := 0
		for v := 1; v < len(row); v++ {
			if row[v] > row[best] {
				best = v
			}
		}
		if int64(best) == want {
			correct++
		}
	}
	return correct
}

// infer runs the trunk's forward arithmetic: pooled -> hidden (post-ReLU)
// -> softmax probabilities. It is the single implementation behind both
// Forward (training, which also needs hidden for Backward) and Infer
// (serving), so a served prediction is bit-identical to what the training
// path would compute from the same activations by construction.
func (t *Trunk) infer(pooled *tensor.Dense) (hidden, probs *tensor.Dense, err error) {
	batch := pooled.Dim(0)
	embDim, hiddenDim := t.W1.Dim(0), t.W1.Dim(1)
	vocab := t.W2.Dim(1)
	if pooled.Dim(1) != embDim {
		return nil, nil, fmt.Errorf("nn: pooled width %d != embDim %d", pooled.Dim(1), embDim)
	}

	// Both matmuls run row-major over contiguous weight rows instead of
	// strided per-element At() calls. The restructure is bit-identical to
	// the naive loops: element (i, j) still accumulates B1[j] then
	// x[k]*W1[k][j] for k ascending (and likewise for W2 over j), so every
	// float is added in exactly the original order.
	hidden = tensor.NewDense(batch, hiddenDim)
	b1 := t.B1.Data()
	for i := 0; i < batch; i++ {
		x := pooled.Row(i)
		h := hidden.Row(i)
		copy(h, b1)
		for k := 0; k < embDim; k++ {
			xk := x[k]
			w1row := t.W1.Row(k)
			for j := 0; j < hiddenDim; j++ {
				h[j] += xk * w1row[j]
			}
		}
		for j := 0; j < hiddenDim; j++ {
			if h[j] < 0 { // ReLU
				h[j] = 0
			}
		}
	}

	probs = tensor.NewDense(batch, vocab)
	b2 := t.B2.Data()
	for i := 0; i < batch; i++ {
		h := hidden.Row(i)
		logits := probs.Row(i)
		copy(logits, b2)
		for j := 0; j < hiddenDim; j++ {
			hj := h[j]
			w2row := t.W2.Row(j)
			for v := 0; v < vocab; v++ {
				logits[v] += hj * w2row[v]
			}
		}
		// Numerically stable softmax.
		maxL := logits[0]
		for _, l := range logits[1:] {
			if l > maxL {
				maxL = l
			}
		}
		var sum float64
		for v := range logits {
			ex := math.Exp(float64(logits[v] - maxL))
			sum += ex
			logits[v] = float32(ex)
		}
		inv := float32(1 / sum)
		for v := range logits {
			logits[v] *= inv
		}
	}
	return hidden, probs, nil
}

// Infer returns the softmax probability distribution for each pooled row,
// shape [batch x vocab] — the inference entry point, with no targets and no
// gradient bookkeeping.
func (t *Trunk) Infer(pooled *tensor.Dense) (*tensor.Dense, error) {
	_, probs, err := t.infer(pooled)
	return probs, err
}

// Forward computes mean cross-entropy loss of the batch. pooled has shape
// [batch x embDim], targets one label per row.
func (t *Trunk) Forward(pooled *tensor.Dense, targets []int64) (float64, *forwardCache, error) {
	batch := pooled.Dim(0)
	if batch != len(targets) {
		return 0, nil, fmt.Errorf("nn: %d pooled rows vs %d targets", batch, len(targets))
	}
	hidden, probs, err := t.infer(pooled)
	if err != nil {
		return 0, nil, err
	}
	var loss float64
	for i := 0; i < batch; i++ {
		p := float64(probs.Row(i)[targets[i]])
		if p < 1e-30 {
			p = 1e-30
		}
		loss -= math.Log(p)
	}
	loss /= float64(batch)
	return loss, &forwardCache{pooled: pooled, hidden: hidden, probs: probs, targets: targets}, nil
}

// Backward computes all trunk gradients and the pooled-activation gradient
// for the cached forward pass. Gradients are means over the batch, matching
// the loss definition.
func (t *Trunk) Backward(c *forwardCache) *TrunkGrads {
	batch := c.pooled.Dim(0)
	embDim, hiddenDim := t.W1.Dim(0), t.W1.Dim(1)
	vocab := t.W2.Dim(1)
	inv := 1 / float32(batch)

	g := &TrunkGrads{
		W1:     tensor.NewDense(embDim, hiddenDim),
		B1:     tensor.NewDense(hiddenDim),
		W2:     tensor.NewDense(hiddenDim, vocab),
		B2:     tensor.NewDense(vocab),
		Pooled: tensor.NewDense(batch, embDim),
	}
	dHidden := make([]float32, hiddenDim)
	dLogits := make([]float32, vocab)
	for i := 0; i < batch; i++ {
		// dLogits = (probs - onehot(target)) / batch
		copy(dLogits, c.probs.Row(i))
		dLogits[c.targets[i]] -= 1
		for v := range dLogits {
			dLogits[v] *= inv
		}
		h := c.hidden.Row(i)
		// W2, B2 grads and dHidden.
		for j := 0; j < hiddenDim; j++ {
			var acc float32
			w2row := g.W2.Row(j)
			tw2 := t.W2.Row(j)
			for v := 0; v < vocab; v++ {
				w2row[v] += h[j] * dLogits[v]
				acc += tw2[v] * dLogits[v]
			}
			if h[j] > 0 { // ReLU mask
				dHidden[j] = acc
			} else {
				dHidden[j] = 0
			}
		}
		b2 := g.B2.Data()
		for v := 0; v < vocab; v++ {
			b2[v] += dLogits[v]
		}
		// W1, B1 grads and dPooled.
		x := c.pooled.Row(i)
		dx := g.Pooled.Row(i)
		b1 := g.B1.Data()
		for k := 0; k < embDim; k++ {
			w1row := g.W1.Row(k)
			tw1 := t.W1.Row(k)
			var acc float32
			for j := 0; j < hiddenDim; j++ {
				w1row[j] += x[k] * dHidden[j]
				acc += tw1[j] * dHidden[j]
			}
			dx[k] = acc
		}
		for j := 0; j < hiddenDim; j++ {
			b1[j] += dHidden[j]
		}
	}
	return g
}

// Model bundles an embedding with a trunk — the baseline (pure data
// parallel) layout where every worker replicates everything.
type Model struct {
	Emb   *Embedding
	Trunk *Trunk
}

// NewModel builds a model with deterministic initialization: two models
// created with the same seed and sizes are bit-identical, which the
// cross-strategy equivalence tests rely on.
func NewModel(seed int64, vocab, embDim, hidden int) *Model {
	rng := rand.New(rand.NewSource(seed))
	return &Model{
		Emb:   NewEmbedding(rng, vocab, embDim),
		Trunk: NewTrunk(rng, embDim, hidden, vocab),
	}
}

// StepStats reports the training metrics of one forward pass.
type StepStats struct {
	// Loss is the mean cross-entropy of the batch.
	Loss float64
	// Correct counts top-1 next-token hits; Count is the batch size.
	Correct, Count int
}

// Step runs forward and backward for one batch of token windows and next-
// token targets, returning the batch metrics, the sparse embedding gradient
// and the dense trunk gradients.
func (m *Model) Step(tokens [][]int64, targets []int64) (StepStats, *tensor.Sparse, *TrunkGrads, error) {
	pooled := m.Emb.PoolLookup(tokens)
	loss, cache, err := m.Trunk.Forward(pooled, targets)
	if err != nil {
		return StepStats{}, nil, nil, err
	}
	grads := m.Trunk.Backward(cache)
	embGrad := m.Emb.PoolBackward(tokens, grads.Pooled)
	stats := StepStats{Loss: loss, Correct: cache.Correct(), Count: len(targets)}
	return stats, embGrad, grads, nil
}

// Perplexity converts a mean cross-entropy loss to the PPL metric the
// paper's Figure 11(a) tracks.
func Perplexity(loss float64) float64 { return math.Exp(loss) }
