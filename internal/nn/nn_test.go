package nn

import (
	"math"
	"math/rand"
	"testing"

	"embrace/internal/tensor"
)

func tinyModel(seed int64) *Model {
	return NewModel(seed, 7, 4, 5)
}

func tinyBatch() ([][]int64, []int64) {
	tokens := [][]int64{{1, 2}, {3, 3}, {0, 5}}
	targets := []int64{2, 4, 6}
	return tokens, targets
}

func TestNewModelDeterministic(t *testing.T) {
	a, b := tinyModel(9), tinyModel(9)
	if !a.Emb.Table.AllClose(b.Emb.Table, 0) || !a.Trunk.W1.AllClose(b.Trunk.W1, 0) {
		t.Fatal("same seed must give identical models")
	}
	c := tinyModel(10)
	if a.Emb.Table.AllClose(c.Emb.Table, 0) {
		t.Fatal("different seeds must differ")
	}
}

func TestPoolLookupMeansRows(t *testing.T) {
	m := tinyModel(1)
	pooled := m.Emb.PoolLookup([][]int64{{2, 4}})
	want := make([]float32, m.Emb.Dim())
	for d := range want {
		want[d] = (m.Emb.Table.At(2, d) + m.Emb.Table.At(4, d)) / 2
	}
	for d, v := range pooled.Row(0) {
		if math.Abs(float64(v-want[d])) > 1e-6 {
			t.Fatalf("pooled[%d] = %v, want %v", d, v, want[d])
		}
	}
}

func TestForwardLossIsFiniteAndPositive(t *testing.T) {
	m := tinyModel(2)
	tokens, targets := tinyBatch()
	stats, _, _, err := m.Step(tokens, targets)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(stats.Loss) || math.IsInf(stats.Loss, 0) || stats.Loss <= 0 {
		t.Fatalf("loss = %v", stats.Loss)
	}
	// Random init: loss should be near log(vocab).
	if stats.Loss > 3*math.Log(7) {
		t.Fatalf("loss %v unreasonably large", stats.Loss)
	}
	if stats.Count != len(targets) || stats.Correct < 0 || stats.Correct > stats.Count {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestForwardValidation(t *testing.T) {
	m := tinyModel(3)
	pooled := tensor.NewDense(2, m.Emb.Dim())
	if _, _, err := m.Trunk.Forward(pooled, []int64{1}); err == nil {
		t.Fatal("expected batch/targets mismatch error")
	}
	bad := tensor.NewDense(1, m.Emb.Dim()+1)
	if _, _, err := m.Trunk.Forward(bad, []int64{1}); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

// Finite-difference check of every trunk gradient and the embedding
// gradient. This is the strongest correctness anchor in the package: if the
// manual backward is right, every strategy built on top inherits correct
// training math.
func TestGradientsMatchFiniteDifferences(t *testing.T) {
	m := tinyModel(4)
	tokens, targets := tinyBatch()

	lossAt := func() float64 {
		pooled := m.Emb.PoolLookup(tokens)
		loss, _, err := m.Trunk.Forward(pooled, targets)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}

	_, embGrad, grads, err := m.Step(tokens, targets)
	if err != nil {
		t.Fatal(err)
	}
	embDense := embGrad.ToDense()

	const eps = 1e-3
	check := func(name string, param *tensor.Dense, analytic *tensor.Dense, idx int) {
		t.Helper()
		orig := param.Data()[idx]
		param.Data()[idx] = orig + eps
		up := lossAt()
		param.Data()[idx] = orig - eps
		down := lossAt()
		param.Data()[idx] = orig
		numeric := (up - down) / (2 * eps)
		got := float64(analytic.Data()[idx])
		if math.Abs(numeric-got) > 5e-3*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, idx, got, numeric)
		}
	}

	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 8; i++ {
		check("W1", m.Trunk.W1, grads.W1, rng.Intn(m.Trunk.W1.Len()))
		check("W2", m.Trunk.W2, grads.W2, rng.Intn(m.Trunk.W2.Len()))
		check("B1", m.Trunk.B1, grads.B1, rng.Intn(m.Trunk.B1.Len()))
		check("B2", m.Trunk.B2, grads.B2, rng.Intn(m.Trunk.B2.Len()))
		check("Emb", m.Emb.Table, embDense, rng.Intn(m.Emb.Table.Len()))
	}
}

func TestPoolBackwardIsUncoalescedPerToken(t *testing.T) {
	m := tinyModel(5)
	tokens := [][]int64{{3, 3, 1}}
	gradPooled := tensor.Full(0.3, 1, m.Emb.Dim())
	g := m.Emb.PoolBackward(tokens, gradPooled)
	if g.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 (one per token incl. duplicate)", g.NNZ())
	}
	if g.IsCoalesced() {
		t.Fatal("raw gradient must be uncoalesced")
	}
	// Each row carries grad/len(window).
	for i := 0; i < g.NNZ(); i++ {
		for _, v := range g.Row(i) {
			if math.Abs(float64(v)-0.1) > 1e-6 {
				t.Fatalf("row %d value %v, want 0.1", i, v)
			}
		}
	}
}

func TestStepGradientOnlyTouchesBatchRows(t *testing.T) {
	m := tinyModel(6)
	tokens, targets := tinyBatch()
	_, embGrad, _, err := m.Step(tokens, targets)
	if err != nil {
		t.Fatal(err)
	}
	touched := tensor.ToSet(embGrad.Indices)
	for _, w := range tokens {
		for _, tok := range w {
			if _, ok := touched[tok]; !ok {
				t.Fatalf("token %d missing from gradient", tok)
			}
		}
	}
	dense := embGrad.ToDense()
	for r := 0; r < m.Emb.Vocab(); r++ {
		if _, ok := touched[int64(r)]; ok {
			continue
		}
		for _, v := range dense.Row(r) {
			if v != 0 {
				t.Fatalf("untouched row %d has gradient", r)
			}
		}
	}
}

func TestLossDecreasesUnderSGD(t *testing.T) {
	// Smoke test that the gradients actually descend: repeated steps on one
	// fixed batch must reduce the loss substantially.
	m := tinyModel(7)
	tokens, targets := tinyBatch()
	firstStats, _, _, err := m.Step(tokens, targets)
	if err != nil {
		t.Fatal(err)
	}
	first := firstStats.Loss
	var last float64
	for i := 0; i < 60; i++ {
		stats, embGrad, grads, err := m.Step(tokens, targets)
		if err != nil {
			t.Fatal(err)
		}
		last = stats.Loss
		const lr = 0.5
		for _, p := range m.Trunk.Params() {
			var g *tensor.Dense
			switch p.Name {
			case "w1":
				g = grads.W1
			case "b1":
				g = grads.B1
			case "w2":
				g = grads.W2
			case "b2":
				g = grads.B2
			}
			if err := p.Tensor.AXPY(-lr, g); err != nil {
				t.Fatal(err)
			}
		}
		embGrad.AddToDense(m.Emb.Table, -lr)
	}
	if last > first/2 {
		t.Fatalf("loss did not descend: %v -> %v", first, last)
	}
}

func TestPerplexity(t *testing.T) {
	if Perplexity(0) != 1 {
		t.Fatal("PPL of zero loss must be 1")
	}
	if math.Abs(Perplexity(math.Log(40))-40) > 1e-9 {
		t.Fatalf("PPL = %v", Perplexity(math.Log(40)))
	}
}

func TestTrunkParamsStableOrder(t *testing.T) {
	m := tinyModel(8)
	names := []string{"w1", "b1", "w2", "b2"}
	for i, p := range m.Trunk.Params() {
		if p.Name != names[i] {
			t.Fatalf("param %d = %s, want %s", i, p.Name, names[i])
		}
	}
	_, _, grads, _ := m.Step(tinyBatch())
	for i, g := range grads.Dense() {
		if g.Name != names[i] {
			t.Fatalf("grad %d = %s, want %s", i, g.Name, names[i])
		}
	}
}

// Infer must return exactly the probabilities Forward computes — serving
// correctness rests on this identity.
func TestInferMatchesForwardProbs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	trunk := NewTrunk(rng, 6, 5, 12)
	pooled := tensor.RandDense(rng, 1, 4, 6)
	targets := []int64{3, 0, 11, 7}

	_, cache, err := trunk.Forward(pooled.Clone(), targets)
	if err != nil {
		t.Fatal(err)
	}
	probs, err := trunk.Infer(pooled.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !probs.AllClose(cache.probs, 0) {
		t.Fatalf("Infer diverged from Forward by %v", probs.MaxAbsDiff(cache.probs))
	}
	// Rows are distributions.
	for i := 0; i < probs.Dim(0); i++ {
		var sum float64
		for _, p := range probs.Row(i) {
			if p < 0 {
				t.Fatal("negative probability")
			}
			sum += float64(p)
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
	// Shape validation still fires.
	if _, err := trunk.Infer(tensor.NewDense(2, 3)); err == nil {
		t.Fatal("expected width mismatch error")
	}
}
