package nn

import (
	"math"
	"math/rand"
	"testing"

	"embrace/internal/tensor"
)

func tinySeq() (*SeqModel, [][]int64, []int64) {
	m := NewSeqModel(5, 9, 3, 4)
	tokens := [][]int64{{1, 2, 3}, {4, 4, 0}, {7, 8, 1}}
	targets := []int64{5, 2, 8}
	return m, tokens, targets
}

func TestGRUForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewGRU(rng, 3, 5)
	x := tensor.RandDense(rng, 1, 2*4, 3) // batch 2, T 4
	h, cache, err := g.Forward(x, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Dim(0) != 2 || h.Dim(1) != 5 {
		t.Fatalf("h shape %v", h.Shape())
	}
	if len(cache.hs) != 5 || len(cache.zs) != 4 {
		t.Fatalf("cache lengths %d %d", len(cache.hs), len(cache.zs))
	}
	if _, _, err := g.Forward(x, 3, 4); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestGRUHiddenBounded(t *testing.T) {
	// GRU states are convex mixes of tanh outputs: |h| <= 1 always.
	rng := rand.New(rand.NewSource(2))
	g := NewGRU(rng, 4, 6)
	x := tensor.RandDense(rng, 3, 5*8, 4)
	h, _, err := g.Forward(x, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range h.Data() {
		if v < -1 || v > 1 {
			t.Fatalf("hidden %v out of [-1,1]", v)
		}
	}
}

func TestSeqModelStepBasics(t *testing.T) {
	m, tokens, targets := tinySeq()
	stats, embGrad, dense, err := m.Step(tokens, targets)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loss <= 0 || math.IsNaN(stats.Loss) {
		t.Fatalf("loss %v", stats.Loss)
	}
	if stats.Count != 3 {
		t.Fatalf("count %d", stats.Count)
	}
	// One sparse row per token position.
	if embGrad.NNZ() != 9 {
		t.Fatalf("embedding grad rows = %d, want 9", embGrad.NNZ())
	}
	// All 11 dense gradients present.
	if len(dense) != 11 {
		t.Fatalf("dense grads = %d, want 11", len(dense))
	}
	for _, p := range m.Params() {
		if dense[p.Name] == nil {
			t.Fatalf("missing grad %s", p.Name)
		}
		if dense[p.Name].Len() != p.Tensor.Len() {
			t.Fatalf("grad %s shape mismatch", p.Name)
		}
	}
}

func TestSeqModelValidation(t *testing.T) {
	m, _, _ := tinySeq()
	if _, _, _, err := m.Step(nil, nil); err == nil {
		t.Fatal("expected empty-batch error")
	}
	if _, _, _, err := m.Step([][]int64{{1, 2}, {3}}, []int64{0, 0}); err == nil {
		t.Fatal("expected unequal-length error")
	}
}

// The BPTT correctness anchor: every parameter gradient and the embedding
// gradient must match central finite differences.
func TestSeqModelGradientsMatchFiniteDifferences(t *testing.T) {
	m, tokens, targets := tinySeq()

	lossAt := func() float64 {
		stats, _, _, err := m.Step(tokens, targets)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Loss
	}

	_, embGrad, dense, err := m.Step(tokens, targets)
	if err != nil {
		t.Fatal(err)
	}
	embDense := embGrad.ToDense()

	const eps = 1e-3
	check := func(name string, param, analytic *tensor.Dense, idx int) {
		t.Helper()
		orig := param.Data()[idx]
		param.Data()[idx] = orig + eps
		up := lossAt()
		param.Data()[idx] = orig - eps
		down := lossAt()
		param.Data()[idx] = orig
		numeric := (up - down) / (2 * eps)
		got := float64(analytic.Data()[idx])
		if math.Abs(numeric-got) > 6e-3*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, idx, got, numeric)
		}
	}

	rng := rand.New(rand.NewSource(3))
	for _, p := range m.Params() {
		for i := 0; i < 5; i++ {
			check(p.Name, p.Tensor, dense[p.Name], rng.Intn(p.Tensor.Len()))
		}
	}
	for i := 0; i < 10; i++ {
		check("emb", m.Emb.Table, embDense, rng.Intn(m.Emb.Table.Len()))
	}
}

func TestSeqModelLearns(t *testing.T) {
	// SGD on a fixed batch must drive the loss down sharply.
	m, tokens, targets := tinySeq()
	var first, last float64
	for i := 0; i < 80; i++ {
		stats, embGrad, dense, err := m.Step(tokens, targets)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = stats.Loss
		}
		last = stats.Loss
		const lr = 0.5
		for _, p := range m.Params() {
			if err := p.Tensor.AXPY(-lr, dense[p.Name]); err != nil {
				t.Fatal(err)
			}
		}
		embGrad.AddToDense(m.Emb.Table, -lr)
	}
	if last > first/3 {
		t.Fatalf("seq model did not learn: %v -> %v", first, last)
	}
}

func TestSeqModelDeterministic(t *testing.T) {
	a := NewSeqModel(7, 10, 4, 5)
	b := NewSeqModel(7, 10, 4, 5)
	if !a.Emb.Table.AllClose(b.Emb.Table, 0) || !a.Cell.Wz.AllClose(b.Cell.Wz, 0) || !a.Wo.AllClose(b.Wo, 0) {
		t.Fatal("same seed must give identical models")
	}
}

func TestGenerate(t *testing.T) {
	m, tokens, targets := tinySeq()
	// Overfit one batch so generation becomes deterministic recall.
	for i := 0; i < 150; i++ {
		_, embGrad, dense, err := m.Step(tokens, targets)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range m.Params() {
			if err := p.Tensor.AXPY(-0.5, dense[p.Name]); err != nil {
				t.Fatal(err)
			}
		}
		embGrad.AddToDense(m.Emb.Table, -0.5)
	}
	got, err := m.Generate(tokens[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tokens[0])+1 {
		t.Fatalf("generated %d tokens", len(got))
	}
	if got[len(got)-1] != targets[0] {
		t.Fatalf("overfit model predicted %d, want %d", got[len(got)-1], targets[0])
	}
	// Longer continuations keep the window sliding without error.
	long, err := m.Generate(tokens[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(long) != len(tokens[0])+10 {
		t.Fatalf("long generation length %d", len(long))
	}
	if _, err := m.Generate(nil, 1); err == nil {
		t.Fatal("expected empty-seed error")
	}
	if _, err := m.Generate([]int64{1}, -1); err == nil {
		t.Fatal("expected negative-steps error")
	}
	if _, err := m.Generate([]int64{999}, 1); err == nil {
		t.Fatal("expected out-of-vocab error")
	}
}
