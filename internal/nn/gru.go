package nn

import (
	"fmt"
	"math"
	"math/rand"

	"embrace/internal/tensor"
)

// GRU is a single-layer gated recurrent unit, the cell family GNMT stacks
// eight deep. Unlike the pooled MLP (Trunk), a recurrent trunk consumes one
// embedding vector per token position, so its embedding gradient has one
// sparse row per token — the exact per-position gradient structure of the
// paper's translation models. Backward is full backpropagation through time,
// checked against finite differences.
//
// Cell equations (z: update gate, r: reset gate, c: candidate):
//
//	z_t = sigmoid(Wz x_t + Uz h_{t-1} + bz)
//	r_t = sigmoid(Wr x_t + Ur h_{t-1} + br)
//	c_t = tanh(Wc x_t + Uc (r_t ⊙ h_{t-1}) + bc)
//	h_t = (1-z_t) ⊙ h_{t-1} + z_t ⊙ c_t
type GRU struct {
	In, Hidden int

	Wz, Wr, Wc *tensor.Dense // [In x Hidden]
	Uz, Ur, Uc *tensor.Dense // [Hidden x Hidden]
	Bz, Br, Bc *tensor.Dense // [Hidden]
}

// NewGRU creates a GRU with Xavier-style init.
func NewGRU(rng *rand.Rand, in, hidden int) *GRU {
	sW := float32(math.Sqrt(6.0 / float64(in+hidden)))
	sU := float32(math.Sqrt(6.0 / float64(2*hidden)))
	return &GRU{
		In: in, Hidden: hidden,
		Wz: tensor.RandDense(rng, sW, in, hidden),
		Wr: tensor.RandDense(rng, sW, in, hidden),
		Wc: tensor.RandDense(rng, sW, in, hidden),
		Uz: tensor.RandDense(rng, sU, hidden, hidden),
		Ur: tensor.RandDense(rng, sU, hidden, hidden),
		Uc: tensor.RandDense(rng, sU, hidden, hidden),
		Bz: tensor.NewDense(hidden),
		Br: tensor.NewDense(hidden),
		Bc: tensor.NewDense(hidden),
	}
}

// Params lists the GRU parameters with stable names.
func (g *GRU) Params() []NamedParam {
	return []NamedParam{
		{"wz", g.Wz}, {"wr", g.Wr}, {"wc", g.Wc},
		{"uz", g.Uz}, {"ur", g.Ur}, {"uc", g.Uc},
		{"bz", g.Bz}, {"br", g.Br}, {"bc", g.Bc},
	}
}

// GRUGrads holds parameter gradients plus the gradient of the input
// sequence (per token position), in the same layout as the input.
type GRUGrads struct {
	Wz, Wr, Wc *tensor.Dense
	Uz, Ur, Uc *tensor.Dense
	Bz, Br, Bc *tensor.Dense
	// X is dLoss/dInput, shape [batch*T x In] (row t*batch... see Forward).
	X *tensor.Dense
}

// Params lists the gradients in the same order as GRU.Params.
func (g *GRUGrads) Params() []NamedParam {
	return []NamedParam{
		{"wz", g.Wz}, {"wr", g.Wr}, {"wc", g.Wc},
		{"uz", g.Uz}, {"ur", g.Ur}, {"uc", g.Uc},
		{"bz", g.Bz}, {"br", g.Br}, {"bc", g.Bc},
	}
}

// gruCache stores per-timestep activations for BPTT.
type gruCache struct {
	batch, T int
	x        *tensor.Dense   // [batch*T x In], row i*T+t is sample i at time t
	hs       []*tensor.Dense // h_0..h_T, each [batch x Hidden]
	zs, rs   []*tensor.Dense // gate activations per t
	cs       []*tensor.Dense // candidates per t
}

func sigmoid(v float32) float32 { return float32(1 / (1 + math.Exp(-float64(v)))) }

// Forward runs the GRU over a [batch*T x In] input (sample-major: row
// i*T+t is sample i's t-th token embedding) and returns the final hidden
// states [batch x Hidden] plus the cache for Backward.
func (g *GRU) Forward(x *tensor.Dense, batch, T int) (*tensor.Dense, *gruCache, error) {
	if x.Dim(0) != batch*T || x.Dim(1) != g.In {
		return nil, nil, fmt.Errorf("nn: gru input %v, want [%d x %d]", x.Shape(), batch*T, g.In)
	}
	c := &gruCache{batch: batch, T: T, x: x}
	h := tensor.NewDense(batch, g.Hidden)
	c.hs = append(c.hs, h.Clone())
	for t := 0; t < T; t++ {
		z := tensor.NewDense(batch, g.Hidden)
		r := tensor.NewDense(batch, g.Hidden)
		cd := tensor.NewDense(batch, g.Hidden)
		hNew := tensor.NewDense(batch, g.Hidden)
		for i := 0; i < batch; i++ {
			xt := x.Row(i*T + t)
			hPrev := h.Row(i)
			zi, ri, ci, hi := z.Row(i), r.Row(i), cd.Row(i), hNew.Row(i)
			for j := 0; j < g.Hidden; j++ {
				var az, ar float32
				for k := 0; k < g.In; k++ {
					az += xt[k] * g.Wz.At(k, j)
					ar += xt[k] * g.Wr.At(k, j)
				}
				for k := 0; k < g.Hidden; k++ {
					az += hPrev[k] * g.Uz.At(k, j)
					ar += hPrev[k] * g.Ur.At(k, j)
				}
				zi[j] = sigmoid(az + g.Bz.Data()[j])
				ri[j] = sigmoid(ar + g.Br.Data()[j])
			}
			for j := 0; j < g.Hidden; j++ {
				var ac float32
				for k := 0; k < g.In; k++ {
					ac += xt[k] * g.Wc.At(k, j)
				}
				for k := 0; k < g.Hidden; k++ {
					ac += ri[k] * hPrev[k] * g.Uc.At(k, j)
				}
				ci[j] = float32(math.Tanh(float64(ac + g.Bc.Data()[j])))
				hi[j] = (1-zi[j])*hPrev[j] + zi[j]*ci[j]
			}
		}
		h = hNew
		c.zs = append(c.zs, z)
		c.rs = append(c.rs, r)
		c.cs = append(c.cs, cd)
		c.hs = append(c.hs, h.Clone())
	}
	return h, c, nil
}

// Backward runs BPTT: given dLoss/dh_T it produces all parameter gradients
// and the input gradient.
func (g *GRU) Backward(c *gruCache, dHT *tensor.Dense) *GRUGrads {
	batch, T := c.batch, c.T
	out := &GRUGrads{
		Wz: tensor.NewDense(g.In, g.Hidden), Wr: tensor.NewDense(g.In, g.Hidden), Wc: tensor.NewDense(g.In, g.Hidden),
		Uz: tensor.NewDense(g.Hidden, g.Hidden), Ur: tensor.NewDense(g.Hidden, g.Hidden), Uc: tensor.NewDense(g.Hidden, g.Hidden),
		Bz: tensor.NewDense(g.Hidden), Br: tensor.NewDense(g.Hidden), Bc: tensor.NewDense(g.Hidden),
		X: tensor.NewDense(batch*T, g.In),
	}
	dh := dHT.Clone() // dLoss/dh_t, updated as t decreases
	for t := T - 1; t >= 0; t-- {
		dhPrev := tensor.NewDense(batch, g.Hidden)
		for i := 0; i < batch; i++ {
			hPrev := c.hs[t].Row(i)
			z, r, cd := c.zs[t].Row(i), c.rs[t].Row(i), c.cs[t].Row(i)
			dhi := dh.Row(i)
			xt := c.x.Row(i*T + t)
			dxi := out.X.Row(i*T + t)
			dhp := dhPrev.Row(i)

			// Per-gate pre-activation gradients.
			dz := make([]float32, g.Hidden)
			dc := make([]float32, g.Hidden)
			for j := 0; j < g.Hidden; j++ {
				// h = (1-z)h_prev + z c
				dz[j] = dhi[j] * (cd[j] - hPrev[j]) * z[j] * (1 - z[j])
				dc[j] = dhi[j] * z[j] * (1 - cd[j]*cd[j])
				dhp[j] += dhi[j] * (1 - z[j])
			}
			// dc flows into Uc(r ⊙ h_prev): compute d(r⊙h_prev) first.
			drh := make([]float32, g.Hidden)
			for k := 0; k < g.Hidden; k++ {
				var acc float32
				for j := 0; j < g.Hidden; j++ {
					acc += g.Uc.At(k, j) * dc[j]
				}
				drh[k] = acc
			}
			dr := make([]float32, g.Hidden)
			for k := 0; k < g.Hidden; k++ {
				dr[k] = drh[k] * hPrev[k] * r[k] * (1 - r[k])
				dhp[k] += drh[k] * r[k]
			}
			// Parameter grads and upstream flows.
			bz, br, bc := out.Bz.Data(), out.Br.Data(), out.Bc.Data()
			for j := 0; j < g.Hidden; j++ {
				bz[j] += dz[j]
				br[j] += dr[j]
				bc[j] += dc[j]
			}
			for k := 0; k < g.In; k++ {
				wz, wr, wc := out.Wz.Row(k), out.Wr.Row(k), out.Wc.Row(k)
				gwz, gwr, gwc := g.Wz.Row(k), g.Wr.Row(k), g.Wc.Row(k)
				var dx float32
				for j := 0; j < g.Hidden; j++ {
					wz[j] += xt[k] * dz[j]
					wr[j] += xt[k] * dr[j]
					wc[j] += xt[k] * dc[j]
					dx += gwz[j]*dz[j] + gwr[j]*dr[j] + gwc[j]*dc[j]
				}
				dxi[k] = dx
			}
			for k := 0; k < g.Hidden; k++ {
				uz, ur, uc := out.Uz.Row(k), out.Ur.Row(k), out.Uc.Row(k)
				guz, gur := g.Uz.Row(k), g.Ur.Row(k)
				var dhFromGates float32
				for j := 0; j < g.Hidden; j++ {
					uz[j] += hPrev[k] * dz[j]
					ur[j] += hPrev[k] * dr[j]
					uc[j] += r[k] * hPrev[k] * dc[j]
					dhFromGates += guz[j]*dz[j] + gur[j]*dr[j]
				}
				dhp[k] += dhFromGates
			}
		}
		dh = dhPrev
	}
	return out
}

// SeqModel is the recurrent counterpart of Model: per-token embedding lookup
// feeds a GRU whose final hidden state predicts the next token through a
// softmax projection. Its embedding gradients have one row per token
// position, exactly like the translation models the paper evaluates.
type SeqModel struct {
	Emb  *Embedding
	Cell *GRU
	// Wo/Bo project the final hidden state to vocabulary logits.
	Wo *tensor.Dense // [Hidden x Vocab]
	Bo *tensor.Dense // [Vocab]
}

// NewSeqModel builds a deterministic SeqModel.
func NewSeqModel(seed int64, vocab, embDim, hidden int) *SeqModel {
	rng := rand.New(rand.NewSource(seed))
	sO := float32(math.Sqrt(6.0 / float64(hidden+vocab)))
	return &SeqModel{
		Emb:  NewEmbedding(rng, vocab, embDim),
		Cell: NewGRU(rng, embDim, hidden),
		Wo:   tensor.RandDense(rng, sO, hidden, vocab),
		Bo:   tensor.NewDense(vocab),
	}
}

// Params lists every dense parameter (GRU + projection).
func (m *SeqModel) Params() []NamedParam {
	out := m.Cell.Params()
	return append(out, NamedParam{"wo", m.Wo}, NamedParam{"bo", m.Bo})
}

// Step trains on one batch of equal-length token windows with next-token
// targets, returning metrics, the (uncoalesced, per-token) sparse embedding
// gradient and the dense gradients keyed like Params.
func (m *SeqModel) Step(tokens [][]int64, targets []int64) (StepStats, *tensor.Sparse, map[string]*tensor.Dense, error) {
	batch := len(tokens)
	if batch == 0 || batch != len(targets) {
		return StepStats{}, nil, nil, fmt.Errorf("nn: seq batch %d vs %d targets", batch, len(targets))
	}
	T := len(tokens[0])
	for _, w := range tokens {
		if len(w) != T {
			return StepStats{}, nil, nil, fmt.Errorf("nn: seq windows must be equal length")
		}
	}
	embDim := m.Emb.Dim()

	// Per-token lookup, sample-major.
	x := tensor.NewDense(batch*T, embDim)
	for i, w := range tokens {
		for t, tok := range w {
			copy(x.Row(i*T+t), m.Emb.Table.Row(int(tok)))
		}
	}
	h, cache, err := m.Cell.Forward(x, batch, T)
	if err != nil {
		return StepStats{}, nil, nil, err
	}

	// Softmax cross-entropy head.
	vocab := m.Wo.Dim(1)
	hidden := m.Wo.Dim(0)
	probs := tensor.NewDense(batch, vocab)
	var loss float64
	correct := 0
	for i := 0; i < batch; i++ {
		hi := h.Row(i)
		logits := probs.Row(i)
		for v := 0; v < vocab; v++ {
			acc := m.Bo.Data()[v]
			for j := 0; j < hidden; j++ {
				acc += hi[j] * m.Wo.At(j, v)
			}
			logits[v] = acc
		}
		maxL := logits[0]
		best := 0
		for v, l := range logits {
			if l > maxL {
				maxL = l
			}
			if l > logits[best] {
				best = v
			}
		}
		if int64(best) == targets[i] {
			correct++
		}
		var sum float64
		for v := range logits {
			e := math.Exp(float64(logits[v] - maxL))
			sum += e
			logits[v] = float32(e)
		}
		inv := float32(1 / sum)
		for v := range logits {
			logits[v] *= inv
		}
		p := float64(logits[targets[i]])
		if p < 1e-30 {
			p = 1e-30
		}
		loss -= math.Log(p)
	}
	loss /= float64(batch)

	// Backward: head, then BPTT, then embedding rows.
	dWo := tensor.NewDense(hidden, vocab)
	dBo := tensor.NewDense(vocab)
	dH := tensor.NewDense(batch, hidden)
	invB := 1 / float32(batch)
	for i := 0; i < batch; i++ {
		dLogits := append([]float32(nil), probs.Row(i)...)
		dLogits[targets[i]] -= 1
		for v := range dLogits {
			dLogits[v] *= invB
		}
		hi := h.Row(i)
		dhi := dH.Row(i)
		bo := dBo.Data()
		for j := 0; j < hidden; j++ {
			wo := dWo.Row(j)
			mwo := m.Wo.Row(j)
			var acc float32
			for v := 0; v < vocab; v++ {
				wo[v] += hi[j] * dLogits[v]
				acc += mwo[v] * dLogits[v]
			}
			dhi[j] = acc
		}
		for v := 0; v < vocab; v++ {
			bo[v] += dLogits[v]
		}
	}
	grads := m.Cell.Backward(cache, dH)

	// Embedding gradient: one sparse row per token position.
	idx := make([]int64, 0, batch*T)
	vals := make([]float32, 0, batch*T*embDim)
	for i, w := range tokens {
		for t, tok := range w {
			idx = append(idx, tok)
			vals = append(vals, grads.X.Row(i*T+t)...)
		}
	}
	embGrad, err := tensor.NewSparse(m.Emb.Vocab(), embDim, idx, vals)
	if err != nil {
		return StepStats{}, nil, nil, fmt.Errorf("nn: seq embedding grad: %w", err)
	}

	dense := map[string]*tensor.Dense{"wo": dWo, "bo": dBo}
	for _, p := range grads.Params() {
		dense[p.Name] = p.Tensor
	}
	return StepStats{Loss: loss, Correct: correct, Count: batch}, embGrad, dense, nil
}

// Generate greedily extends a seed window: the model repeatedly predicts the
// most likely next token and slides the window forward. It is the smallest
// useful inference path for a trained SeqModel (the sequence example decodes
// the result back to text).
func (m *SeqModel) Generate(seed []int64, steps int) ([]int64, error) {
	if len(seed) == 0 {
		return nil, fmt.Errorf("nn: empty seed")
	}
	if steps < 0 {
		return nil, fmt.Errorf("nn: negative steps %d", steps)
	}
	vocab := m.Wo.Dim(1)
	hidden := m.Wo.Dim(0)
	embDim := m.Emb.Dim()
	window := append([]int64(nil), seed...)
	out := append([]int64(nil), seed...)
	for s := 0; s < steps; s++ {
		T := len(window)
		x := tensor.NewDense(T, embDim)
		for t, tok := range window {
			if tok < 0 || tok >= int64(m.Emb.Vocab()) {
				return nil, fmt.Errorf("nn: seed token %d out of vocabulary", tok)
			}
			copy(x.Row(t), m.Emb.Table.Row(int(tok)))
		}
		h, _, err := m.Cell.Forward(x, 1, T)
		if err != nil {
			return nil, err
		}
		best, bestV := 0, float32(0)
		hi := h.Row(0)
		for v := 0; v < vocab; v++ {
			acc := m.Bo.Data()[v]
			for j := 0; j < hidden; j++ {
				acc += hi[j] * m.Wo.At(j, v)
			}
			if v == 0 || acc > bestV {
				best, bestV = v, acc
			}
		}
		next := int64(best)
		out = append(out, next)
		window = append(window[1:], next)
	}
	return out, nil
}
