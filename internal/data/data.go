// Package data generates the synthetic NLP workloads that replace the
// paper's LM1B / WMT / SQuAD datasets.
//
// Two statistics of real corpora drive everything EmbRace exploits, and both
// are reproduced here: word frequencies are Zipf-distributed (so batches
// carry many duplicate tokens and touch a small, skewed subset of the
// vocabulary), and sentences are padded to a uniform length (so the pad
// token repeats heavily). Together they make the embedding gradient sparse
// and highly coalescible (§4.2.2, Table 3).
package data

import (
	"fmt"
	"math/rand"

	"embrace/internal/tensor"
)

// PadID is the token id used for sentence padding; it is part of the
// vocabulary (row 0 of the embedding), as with the tokenizers the paper
// cites: pad positions still produce embedding gradient rows, which is one
// of the duplicate sources Algorithm 1 coalesces away.
const PadID int64 = 0

// Config describes a synthetic corpus.
type Config struct {
	// VocabSize is the number of distinct tokens including the pad token.
	VocabSize int
	// BatchSentences is the number of sentences per batch per worker (the
	// paper's per-worker batch size).
	BatchSentences int
	// MaxSeqLen is the padded sentence length.
	MaxSeqLen int
	// MinSeqLen is the smallest generated sentence length before padding.
	MinSeqLen int
	// ZipfS is the Zipf exponent (>1). Larger values skew harder toward
	// frequent words, increasing duplicates and shrinking the unique set.
	ZipfS float64
	// ZipfV is the Zipf v parameter (>=1); larger values flatten the head.
	ZipfV float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.VocabSize < 2 {
		return fmt.Errorf("data: vocab size %d too small", c.VocabSize)
	}
	if c.BatchSentences <= 0 {
		return fmt.Errorf("data: batch sentences %d must be positive", c.BatchSentences)
	}
	if c.MinSeqLen <= 0 || c.MaxSeqLen < c.MinSeqLen {
		return fmt.Errorf("data: bad sequence length range [%d,%d]", c.MinSeqLen, c.MaxSeqLen)
	}
	if c.ZipfS <= 1 {
		return fmt.Errorf("data: zipf s must exceed 1, got %g", c.ZipfS)
	}
	if c.ZipfV < 1 {
		return fmt.Errorf("data: zipf v must be at least 1, got %g", c.ZipfV)
	}
	return nil
}

// Batch is one padded per-worker training batch.
type Batch struct {
	// Sentences holds BatchSentences rows of MaxSeqLen token ids, padded
	// with PadID.
	Sentences [][]int64
	// NonPad counts real (non-pad) tokens — the paper's throughput metric
	// accumulates exactly these (§5.2.2).
	NonPad int
}

// Tokens returns all token ids of the batch, pads included, in order. Its
// length times the embedding row size is the "Original Grad Size" column of
// Table 3.
func (b *Batch) Tokens() []int64 {
	out := make([]int64, 0, len(b.Sentences)*len(b.Sentences[0]))
	for _, s := range b.Sentences {
		out = append(out, s...)
	}
	return out
}

// TotalTokens returns the token count including padding.
func (b *Batch) TotalTokens() int {
	n := 0
	for _, s := range b.Sentences {
		n += len(s)
	}
	return n
}

// Unique returns the sorted distinct token ids of the batch (the UNIQUE step
// of Algorithm 1). Its length is the coalesced gradient row count.
func (b *Batch) Unique() []int64 {
	return tensor.UniqueInt64(b.Tokens())
}

// Generator produces an endless stream of batches with Zipf-distributed
// tokens. It is deterministic given its seed, so every worker and every
// baseline sees an identical data order when configured identically.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewGenerator validates cfg and creates a generator seeded with seed.
func NewGenerator(cfg Config, seed int64) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	// Token ids 1..VocabSize-1 are real words; 0 is the pad.
	zipf := rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.VocabSize-2))
	return &Generator{cfg: cfg, rng: rng, zipf: zipf}, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// NextBatch synthesizes one batch: each sentence draws a length uniformly
// from [MinSeqLen, MaxSeqLen], fills it with Zipf tokens and pads the rest.
func (g *Generator) NextBatch() *Batch {
	b := &Batch{Sentences: make([][]int64, g.cfg.BatchSentences)}
	for i := range b.Sentences {
		n := g.cfg.MinSeqLen
		if g.cfg.MaxSeqLen > g.cfg.MinSeqLen {
			n += g.rng.Intn(g.cfg.MaxSeqLen - g.cfg.MinSeqLen + 1)
		}
		s := make([]int64, g.cfg.MaxSeqLen)
		for j := 0; j < n; j++ {
			s[j] = 1 + int64(g.zipf.Uint64())
		}
		for j := n; j < g.cfg.MaxSeqLen; j++ {
			s[j] = PadID
		}
		b.Sentences[i] = s
		b.NonPad += n
	}
	return b
}

// Loader wraps a Generator with one batch of lookahead — the data prefetch
// of §4.2.2. Peek exposes the next iteration's batch so Algorithm 1 can
// compute the prior/delayed split before the next forward pass begins.
type Loader struct {
	gen  *Generator
	next *Batch
}

// NewLoader builds a prefetching loader over gen.
func NewLoader(gen *Generator) *Loader {
	return &Loader{gen: gen, next: gen.NextBatch()}
}

// Next returns the current batch and advances the prefetch window.
func (l *Loader) Next() *Batch {
	cur := l.next
	l.next = l.gen.NextBatch()
	return cur
}

// Peek returns the batch the next call to Next will return, without
// consuming it.
func (l *Loader) Peek() *Batch { return l.next }

// BatchStats summarizes the gradient-size effect of Algorithm 1 on a pair of
// consecutive batches: row counts before coalescing, after coalescing, and
// for the prioritized (intersection-with-next) part. Table 3 is these
// numbers scaled by the embedding row size.
type BatchStats struct {
	OriginalRows  int
	CoalescedRows int
	PriorRows     int
	DelayedRows   int
}

// ComputeBatchStats evaluates Algorithm 1's set arithmetic for a current and
// next batch.
func ComputeBatchStats(cur, next *Batch) BatchStats {
	u := cur.Unique()
	prior := tensor.Intersect(u, next.Unique())
	return BatchStats{
		OriginalRows:  cur.TotalTokens(),
		CoalescedRows: len(u),
		PriorRows:     len(prior),
		DelayedRows:   len(u) - len(prior),
	}
}
