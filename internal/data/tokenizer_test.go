package data

import (
	"strings"
	"testing"
)

const corpus = "the cat sat on the mat the cat ran and the dog sat"

func TestBuildTokenizerFrequencyOrder(t *testing.T) {
	tok, err := BuildTokenizer(corpus, 20)
	if err != nil {
		t.Fatal(err)
	}
	// "the" (4x) must get the first word id; then "cat"/"sat" (2x each,
	// alphabetical tie-break).
	if got := tok.Encode("the", 1)[0]; got != firstWordID {
		t.Fatalf("'the' id = %d, want %d", got, firstWordID)
	}
	if got := tok.Encode("cat", 1)[0]; got != firstWordID+1 {
		t.Fatalf("'cat' id = %d, want %d", got, firstWordID+1)
	}
	if got := tok.Encode("sat", 1)[0]; got != firstWordID+2 {
		t.Fatalf("'sat' id = %d, want %d", got, firstWordID+2)
	}
}

func TestBuildTokenizerValidation(t *testing.T) {
	if _, err := BuildTokenizer("", 20); err == nil {
		t.Fatal("expected empty-corpus error")
	}
	if _, err := BuildTokenizer(corpus, 2); err == nil {
		t.Fatal("expected tiny-vocab error")
	}
}

func TestVocabCap(t *testing.T) {
	tok, err := BuildTokenizer(corpus, 5) // pad + unk + 3 words
	if err != nil {
		t.Fatal(err)
	}
	if tok.VocabSize() != 5 {
		t.Fatalf("vocab = %d", tok.VocabSize())
	}
	// A rare word must map to unk under the cap.
	if got := tok.Encode("dog", 1)[0]; got != UnkID {
		t.Fatalf("'dog' id = %d, want unk", got)
	}
}

func TestEncodePadTruncate(t *testing.T) {
	tok, _ := BuildTokenizer(corpus, 20)
	ids := tok.Encode("the cat", 4)
	if len(ids) != 4 || ids[2] != PadID || ids[3] != PadID {
		t.Fatalf("ids = %v", ids)
	}
	ids = tok.Encode("the cat sat on the mat", 3)
	if len(ids) != 3 {
		t.Fatalf("truncated ids = %v", ids)
	}
	for _, id := range ids {
		if id == PadID {
			t.Fatal("truncated encoding must not pad")
		}
	}
}

func TestEncodeUnknownAndCase(t *testing.T) {
	tok, _ := BuildTokenizer(corpus, 20)
	ids := tok.Encode("THE zebra", 2)
	if ids[0] != firstWordID {
		t.Fatal("encoding must be case-insensitive")
	}
	if ids[1] != UnkID {
		t.Fatalf("unknown word id = %d, want unk", ids[1])
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	tok, _ := BuildTokenizer(corpus, 20)
	got := tok.Decode(tok.Encode("the dog ran", 6))
	if got != "the dog ran" {
		t.Fatalf("round trip = %q", got)
	}
	// Pads drop, unknown ids render as <unk>.
	if got := tok.Decode([]int64{PadID, UnkID, 999}); got != "<unk> <unk>" {
		t.Fatalf("decode = %q", got)
	}
}

func TestEncodeBatch(t *testing.T) {
	tok, _ := BuildTokenizer(corpus, 20)
	b, err := tok.EncodeBatch([]string{"the cat sat", "the dog"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Sentences) != 2 || len(b.Sentences[0]) != 5 {
		t.Fatalf("batch shape %dx%d", len(b.Sentences), len(b.Sentences[0]))
	}
	if b.NonPad != 5 {
		t.Fatalf("NonPad = %d, want 5", b.NonPad)
	}
	// The batch feeds the same machinery as the synthetic generator.
	u := b.Unique()
	if len(u) == 0 || u[0] != PadID {
		t.Fatalf("unique = %v", u)
	}
	if _, err := tok.EncodeBatch(nil, 5); err == nil {
		t.Fatal("expected empty-batch error")
	}
	if _, err := tok.EncodeBatch([]string{"x"}, 0); err == nil {
		t.Fatal("expected maxLen error")
	}
}

func TestTokenizerFrequencySortedForPartitioning(t *testing.T) {
	// Property the §4.1.1 analysis relies on: ids sorted by frequency, so
	// low ids are the hot head.
	big := strings.Repeat("alpha ", 50) + strings.Repeat("beta ", 20) + strings.Repeat("gamma ", 5) + "delta"
	tok, err := BuildTokenizer(big, 10)
	if err != nil {
		t.Fatal(err)
	}
	order := []string{"alpha", "beta", "gamma", "delta"}
	for i := 1; i < len(order); i++ {
		a := tok.Encode(order[i-1], 1)[0]
		b := tok.Encode(order[i], 1)[0]
		if a >= b {
			t.Fatalf("%s (%d) should precede %s (%d)", order[i-1], a, order[i], b)
		}
	}
}

func TestTextLoaderShardingAndCycling(t *testing.T) {
	tok, _ := BuildTokenizer(corpus, 20)
	sentences := []string{
		"the cat sat", "the dog ran", "the mat sat", "the cat ran",
		"the dog sat", "the mat ran",
	}
	// Two shards of a 6-sentence corpus, 1 batch of 3 each.
	l0, err := NewTextLoader(tok, sentences, 3, 4, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := NewTextLoader(tok, sentences, 3, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l0.Batches() != 1 || l1.Batches() != 1 {
		t.Fatalf("batches %d %d", l0.Batches(), l1.Batches())
	}
	// Shard 0 holds even-indexed sentences.
	b := l0.Next()
	if got := tok.Decode(b.Sentences[0]); got != "the cat sat" {
		t.Fatalf("shard 0 first = %q", got)
	}
	if got := tok.Decode(l1.Peek().Sentences[0]); got != "the dog ran" {
		t.Fatalf("shard 1 first = %q", got)
	}
	// Cycles: Peek==Next forever on a single-batch shard.
	if l0.Peek() != l0.Next() {
		t.Fatal("prefetch contract broken")
	}
}

func TestNewTextLoaderValidation(t *testing.T) {
	tok, _ := BuildTokenizer(corpus, 20)
	ss := []string{"the cat", "the dog"}
	if _, err := NewTextLoader(tok, ss, 0, 4, 0, 1); err == nil {
		t.Fatal("expected batch error")
	}
	if _, err := NewTextLoader(tok, ss, 1, 0, 0, 1); err == nil {
		t.Fatal("expected maxLen error")
	}
	if _, err := NewTextLoader(tok, ss, 1, 4, 2, 2); err == nil {
		t.Fatal("expected offset error")
	}
	if _, err := NewTextLoader(tok, ss, 5, 4, 0, 1); err == nil {
		t.Fatal("expected too-few-sentences error")
	}
}
