package data

import (
	"testing"
	"testing/quick"

	"embrace/internal/tensor"
)

func testConfig() Config {
	return Config{
		VocabSize:      1000,
		BatchSentences: 16,
		MaxSeqLen:      20,
		MinSeqLen:      5,
		ZipfS:          1.3,
		ZipfV:          2,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.VocabSize = 1 },
		func(c *Config) { c.BatchSentences = 0 },
		func(c *Config) { c.MinSeqLen = 0 },
		func(c *Config) { c.MaxSeqLen = 3; c.MinSeqLen = 5 },
		func(c *Config) { c.ZipfS = 1.0 },
		func(c *Config) { c.ZipfV = 0.5 },
	}
	for i, mutate := range bad {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1, err := NewGenerator(testConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(testConfig(), 42)
	b1, b2 := g1.NextBatch(), g2.NextBatch()
	if b1.NonPad != b2.NonPad {
		t.Fatal("same seed must give same batch")
	}
	for i := range b1.Sentences {
		for j := range b1.Sentences[i] {
			if b1.Sentences[i][j] != b2.Sentences[i][j] {
				t.Fatal("same seed must give same tokens")
			}
		}
	}
	g3, _ := NewGenerator(testConfig(), 43)
	b3 := g3.NextBatch()
	same := true
	for i := range b1.Sentences {
		for j := range b1.Sentences[i] {
			if b1.Sentences[i][j] != b3.Sentences[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestBatchShapeAndPadding(t *testing.T) {
	cfg := testConfig()
	g, _ := NewGenerator(cfg, 1)
	b := g.NextBatch()
	if len(b.Sentences) != cfg.BatchSentences {
		t.Fatalf("batch has %d sentences", len(b.Sentences))
	}
	nonPad := 0
	for _, s := range b.Sentences {
		if len(s) != cfg.MaxSeqLen {
			t.Fatalf("sentence length %d != %d", len(s), cfg.MaxSeqLen)
		}
		// Tokens must be in range, padding only at the tail.
		seenPad := false
		for _, tok := range s {
			if tok < 0 || tok >= int64(cfg.VocabSize) {
				t.Fatalf("token %d out of vocab", tok)
			}
			if tok == PadID {
				seenPad = true
			} else {
				if seenPad {
					t.Fatal("real token after padding started")
				}
				nonPad++
			}
		}
	}
	if nonPad != b.NonPad {
		t.Fatalf("NonPad = %d, counted %d", b.NonPad, nonPad)
	}
	if b.TotalTokens() != cfg.BatchSentences*cfg.MaxSeqLen {
		t.Fatalf("TotalTokens = %d", b.TotalTokens())
	}
}

func TestZipfSkewProducesDuplicates(t *testing.T) {
	// The whole premise of coalescing: a Zipf batch has far fewer unique
	// tokens than total tokens.
	g, _ := NewGenerator(testConfig(), 7)
	b := g.NextBatch()
	u := b.Unique()
	if len(u) >= b.TotalTokens()/2 {
		t.Fatalf("expected heavy duplication, got %d unique of %d", len(u), b.TotalTokens())
	}
}

func TestUniqueSortedAndDeduped(t *testing.T) {
	g, _ := NewGenerator(testConfig(), 9)
	b := g.NextBatch()
	u := b.Unique()
	for i := 1; i < len(u); i++ {
		if u[i] <= u[i-1] {
			t.Fatal("Unique must be sorted strictly increasing")
		}
	}
	set := tensor.ToSet(b.Tokens())
	if len(set) != len(u) {
		t.Fatalf("unique count %d != set size %d", len(u), len(set))
	}
}

func TestLoaderPrefetchSemantics(t *testing.T) {
	g, _ := NewGenerator(testConfig(), 3)
	l := NewLoader(g)
	peeked := l.Peek()
	got := l.Next()
	if peeked != got {
		t.Fatal("Next must return the previously peeked batch")
	}
	if l.Peek() == got {
		t.Fatal("Peek must advance after Next")
	}
	// Loader stream must equal the raw generator stream with same seed.
	g2, _ := NewGenerator(testConfig(), 3)
	want := g2.NextBatch()
	for i := range want.Sentences {
		for j := range want.Sentences[i] {
			if got.Sentences[i][j] != want.Sentences[i][j] {
				t.Fatal("loader must not reorder batches")
			}
		}
	}
}

func TestComputeBatchStatsInvariants(t *testing.T) {
	// Property: coalesced <= original; prior+delayed == coalesced;
	// prior <= |next unique|.
	f := func(seed int64) bool {
		g, err := NewGenerator(testConfig(), seed)
		if err != nil {
			return false
		}
		l := NewLoader(g)
		cur := l.Next()
		next := l.Peek()
		st := ComputeBatchStats(cur, next)
		if st.CoalescedRows > st.OriginalRows {
			return false
		}
		if st.PriorRows+st.DelayedRows != st.CoalescedRows {
			return false
		}
		if st.PriorRows > len(next.Unique()) {
			return false
		}
		return st.PriorRows >= 0 && st.DelayedRows >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchStatsIntersectionIsMeaningful(t *testing.T) {
	// With a skewed Zipf the hot head tokens recur across consecutive
	// batches, so the prior part must be non-empty but smaller than the
	// coalesced set (the Table-3 "Prioritized" column is strictly between
	// zero and the coalesced size).
	g, _ := NewGenerator(testConfig(), 11)
	l := NewLoader(g)
	cur := l.Next()
	st := ComputeBatchStats(cur, l.Peek())
	if st.PriorRows == 0 {
		t.Fatal("expected hot tokens shared across batches")
	}
	if st.PriorRows >= st.CoalescedRows {
		t.Fatal("expected some delayed rows")
	}
}

func TestNewGeneratorRejectsBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.ZipfS = 0.9
	if _, err := NewGenerator(cfg, 1); err == nil {
		t.Fatal("expected error")
	}
}
