package data_test

import (
	"fmt"

	"embrace/internal/data"
)

// The tokenizer assigns ids by descending frequency — the convention the
// partitioning analysis (§4.1.1) and the Zipf workloads both assume.
func ExampleBuildTokenizer() {
	tok, _ := data.BuildTokenizer("the cat sat on the mat the cat ran", 16)
	ids := tok.Encode("the cat ran fast", 6)
	fmt.Println(ids)             // "fast" is OOV -> unk (1); pads fill to 6
	fmt.Println(tok.Decode(ids)) // pads drop on decode
	fmt.Println(tok.VocabSize() > 4)
	// Output:
	// [2 3 6 1 0 0]
	// the cat ran <unk>
	// true
}

// Algorithm 1's statistics over consecutive batches: the coalesced gradient
// is smaller than the raw one, and the prior part smaller still.
func ExampleComputeBatchStats() {
	gen, _ := data.NewGenerator(data.Config{
		VocabSize: 1000, BatchSentences: 16,
		MaxSeqLen: 20, MinSeqLen: 10, ZipfS: 1.5, ZipfV: 2,
	}, 42)
	l := data.NewLoader(gen)
	cur := l.Next()
	st := data.ComputeBatchStats(cur, l.Peek())
	fmt.Println(st.CoalescedRows < st.OriginalRows)
	fmt.Println(st.PriorRows+st.DelayedRows == st.CoalescedRows)
	// Output:
	// true
	// true
}
