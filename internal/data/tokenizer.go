package data

import (
	"fmt"
	"sort"
	"strings"
)

// Tokenizer maps real text to the token-id space the training stack
// consumes — the stand-in for the SentencePiece tokenizer the paper's
// models use (Kudo & Richardson, cited in §4.2.2). Ids are assigned by
// descending corpus frequency, the convention the partition analysis and
// the Zipf generator both assume: low ids are hot.
type Tokenizer struct {
	// byWord maps a word to its id; byID the inverse.
	byWord map[string]int64
	byID   []string
}

// Reserved token ids.
const (
	// PadID (0) pads sentences; UnkID (1) covers out-of-vocabulary words.
	UnkID int64 = 1
	// firstWordID is the first id assigned to corpus words.
	firstWordID int64 = 2
)

// padToken and unkToken are the surface forms of the reserved ids.
const (
	padToken = "<pad>"
	unkToken = "<unk>"
)

// BuildTokenizer learns a vocabulary from a whitespace-tokenized corpus,
// keeping the maxVocab-2 most frequent words (ties broken alphabetically
// for determinism) below the reserved pad/unk ids.
func BuildTokenizer(corpus string, maxVocab int) (*Tokenizer, error) {
	if maxVocab < int(firstWordID)+1 {
		return nil, fmt.Errorf("data: vocab %d too small (need >= %d)", maxVocab, firstWordID+1)
	}
	counts := map[string]int{}
	for _, w := range strings.Fields(corpus) {
		counts[strings.ToLower(w)]++
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("data: empty corpus")
	}
	words := make([]string, 0, len(counts))
	for w := range counts {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		if counts[words[i]] != counts[words[j]] {
			return counts[words[i]] > counts[words[j]]
		}
		return words[i] < words[j]
	})
	keep := maxVocab - int(firstWordID)
	if keep > len(words) {
		keep = len(words)
	}
	t := &Tokenizer{
		byWord: make(map[string]int64, keep),
		byID:   make([]string, int(firstWordID)+keep),
	}
	t.byID[PadID] = padToken
	t.byID[UnkID] = unkToken
	for i, w := range words[:keep] {
		id := firstWordID + int64(i)
		t.byWord[w] = id
		t.byID[id] = w
	}
	return t, nil
}

// VocabSize returns the id-space size including pad and unk.
func (t *Tokenizer) VocabSize() int { return len(t.byID) }

// Encode converts a sentence to token ids, padding or truncating to maxLen.
func (t *Tokenizer) Encode(sentence string, maxLen int) []int64 {
	out := make([]int64, 0, maxLen)
	for _, w := range strings.Fields(sentence) {
		if len(out) == maxLen {
			break
		}
		id, ok := t.byWord[strings.ToLower(w)]
		if !ok {
			id = UnkID
		}
		out = append(out, id)
	}
	for len(out) < maxLen {
		out = append(out, PadID)
	}
	return out
}

// Decode converts token ids back to a space-joined sentence, dropping pads.
func (t *Tokenizer) Decode(ids []int64) string {
	var sb strings.Builder
	for _, id := range ids {
		if id == PadID {
			continue
		}
		word := unkToken
		if id >= 0 && int(id) < len(t.byID) && t.byID[id] != "" {
			word = t.byID[id]
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(word)
	}
	return sb.String()
}

// EncodeBatch turns sentences into a padded training Batch with the given
// maximum length, ready for the trainer.
func (t *Tokenizer) EncodeBatch(sentences []string, maxLen int) (*Batch, error) {
	if len(sentences) == 0 {
		return nil, fmt.Errorf("data: empty batch")
	}
	if maxLen <= 0 {
		return nil, fmt.Errorf("data: maxLen must be positive, got %d", maxLen)
	}
	b := &Batch{Sentences: make([][]int64, len(sentences))}
	for i, s := range sentences {
		ids := t.Encode(s, maxLen)
		b.Sentences[i] = ids
		for _, id := range ids {
			if id != PadID {
				b.NonPad++
			}
		}
	}
	return b, nil
}

// TextLoader streams batches from real tokenized text with one batch of
// lookahead, mirroring Loader's prefetch contract (Peek exposes the next
// batch for Algorithm 1). Sentences cycle endlessly in order, so runs are
// deterministic; rank-striding (offset, stride) partitions one corpus
// across data-parallel workers.
type TextLoader struct {
	batches []*Batch
	pos     int
}

// NewTextLoader tokenizes sentences into fixed batches of `batchSentences`
// padded rows of maxLen, taking every stride-th sentence starting at
// offset (rank r of N passes offset=r, stride=N).
func NewTextLoader(tok *Tokenizer, sentences []string, batchSentences, maxLen, offset, stride int) (*TextLoader, error) {
	if batchSentences <= 0 || maxLen <= 0 {
		return nil, fmt.Errorf("data: need positive batch (%d) and maxLen (%d)", batchSentences, maxLen)
	}
	if stride <= 0 || offset < 0 || offset >= stride {
		return nil, fmt.Errorf("data: bad shard offset=%d stride=%d", offset, stride)
	}
	var mine []string
	for i := offset; i < len(sentences); i += stride {
		mine = append(mine, sentences[i])
	}
	if len(mine) < batchSentences {
		return nil, fmt.Errorf("data: shard has %d sentences, need at least %d", len(mine), batchSentences)
	}
	l := &TextLoader{}
	for start := 0; start+batchSentences <= len(mine); start += batchSentences {
		b, err := tok.EncodeBatch(mine[start:start+batchSentences], maxLen)
		if err != nil {
			return nil, err
		}
		l.batches = append(l.batches, b)
	}
	return l, nil
}

// Next returns the current batch and advances, cycling at the end.
func (l *TextLoader) Next() *Batch {
	b := l.batches[l.pos]
	l.pos = (l.pos + 1) % len(l.batches)
	return b
}

// Peek returns the batch the next Next call will return.
func (l *TextLoader) Peek() *Batch { return l.batches[l.pos] }

// Batches returns the number of distinct batches per epoch.
func (l *TextLoader) Batches() int { return len(l.batches) }
