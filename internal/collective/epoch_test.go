package collective

import (
	"errors"
	"testing"
	"time"

	"embrace/internal/comm"
)

// Epoch planes partition the tag space: the same (op, step) under different
// epochs must never share a tag — the property that lets an elastic rebuild
// ignore a dead world's in-flight frames wholesale.
func TestEpochTagsDisjoint(t *testing.T) {
	w, err := comm.NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	seen := map[int]int{}
	for _, epoch := range []int{0, 1, 2, MaxEpoch} {
		c := NewCommunicator(w.Rank(0), WithEpoch(epoch))
		if c.Epoch() != epoch {
			t.Fatalf("Epoch() = %d, want %d", c.Epoch(), epoch)
		}
		for _, step := range []int{0, 1, MaxStep} {
			tag, err := c.Tag("emb/tokens", step)
			if err != nil {
				t.Fatal(err)
			}
			if prev, ok := seen[tag]; ok {
				t.Fatalf("epoch %d reuses epoch %d's tag %d", epoch, prev, tag)
			}
			seen[tag] = epoch
		}
	}

	// Epoch 0 is the legacy plane: a default Communicator's tags are
	// unchanged, so pre-elastic chaos predicates (TagOf) keep matching.
	legacy := NewCommunicator(w.Rank(0))
	e0 := NewCommunicator(w.Rank(0), WithEpoch(0))
	lt, _ := legacy.Tag("emb/tokens", 5)
	et, _ := e0.Tag("emb/tokens", 5)
	ot, err := TagOf("emb/tokens", 5)
	if err != nil {
		t.Fatal(err)
	}
	if lt != et || lt != ot {
		t.Fatalf("legacy/epoch-0/TagOf disagree: %d %d %d", lt, et, ot)
	}

	c := NewCommunicator(w.Rank(0), WithEpoch(MaxEpoch+1))
	if _, err := c.Tag("emb/tokens", 0); err == nil {
		t.Fatal("expected error for epoch beyond MaxEpoch")
	}
	if _, err := TagOf("emb/tokens", -1); err == nil {
		t.Fatal("expected error for negative step")
	}
	if _, err := TagOf("emb/tokens", MaxStep+1); err == nil {
		t.Fatal("expected error for step beyond MaxStep")
	}
}

// The stale-frame rejection the world-epoch protocol relies on: a frame a
// dead epoch's straggler goroutine left in flight is NEVER matched by the
// rebuilt epoch's receives — it times out instead of being consumed — and
// the new epoch's own traffic flows past it untouched.
func TestEpochRejectsStaleFramesFromOldWorld(t *testing.T) {
	w, err := comm.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// A dead epoch-0 world's straggler: rank 0 sent (op "emb/grad", step 3)
	// just before the fault tore the epoch down.
	old0 := NewCommunicator(w.Rank(0))
	if err := old0.Send("emb/grad", 3, 1, []float32{6, 6, 6}); err != nil {
		t.Fatal(err)
	}

	// The rebuilt world runs in epoch 1. Same op, same step — the stale
	// frame must not satisfy this receive.
	new1 := NewCommunicator(w.Rank(1), WithEpoch(1))
	w.Rank(1).(comm.TimeoutSetter).SetRecvTimeout(100 * time.Millisecond)
	if _, err := new1.Recv("emb/grad", 3, 0); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("stale frame consumed: err = %v, want ErrTimeout", err)
	}

	// New-epoch traffic flows normally with the stale frame still queued.
	new0 := NewCommunicator(w.Rank(0), WithEpoch(1))
	if err := new0.Send("emb/grad", 3, 1, []float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	got, err := new1.Recv("emb/grad", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := got.([]float32)
	if !ok || len(v) != 2 || v[0] != 1 || v[1] != 2 {
		t.Fatalf("new-epoch recv = %v, want [1 2]", got)
	}

	// And the old plane still holds its frame: an epoch-0 receive (a
	// straggler of the dead world draining late) finds it, proving the new
	// epoch really did leave it alone rather than discard it.
	old1 := NewCommunicator(w.Rank(1))
	if got, err := old1.Recv("emb/grad", 3, 0); err != nil {
		t.Fatal(err)
	} else if v := got.([]float32); len(v) != 3 || v[0] != 6 {
		t.Fatalf("old-epoch frame = %v, want [6 6 6]", got)
	}
}

// Collectives rebuilt in a fresh epoch start their sequence streams from
// zero and complete normally — the old epoch's sequence state is per-tag,
// so a new plane means a clean slate (no ErrGap from inherited counters).
func TestEpochCollectivesRunCleanAfterRebuild(t *testing.T) {
	w, err := comm.NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	run := func(epoch int) {
		t.Helper()
		errs := make(chan error, 3)
		for i := 0; i < 3; i++ {
			go func(i int) {
				c := NewCommunicator(w.Rank(i), WithEpoch(epoch))
				parts, err := AllGatherVia(c, "x", 0, []int64{int64(i)})
				if err != nil {
					errs <- err
					return
				}
				for j, p := range parts {
					if len(p) != 1 || p[0] != int64(j) {
						errs <- errors.New("bad gather")
						return
					}
				}
				errs <- c.Barrier("b", 0)
			}(i)
		}
		for i := 0; i < 3; i++ {
			if err := <-errs; err != nil {
				t.Fatalf("epoch %d: %v", epoch, err)
			}
		}
	}
	run(0)
	run(1) // same world, fresh plane: must not trip on epoch 0's sequence state
	run(2)
}
