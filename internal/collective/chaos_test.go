package collective

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"embrace/internal/comm"
)

// The chaos property suite: every collective the Communicator offers, run
// over a fault-injecting fabric sweeping seeds, must produce results
// bit-identical to the fault-free run. The maskable plan duplicates, delays,
// reorders and transiently drops messages; sequence framing and bounded
// retry in the Communicator must absorb all of it.

// chaosSeeds returns the seed sweep. EMBRACE_CHAOS_SEED offsets the whole
// sweep so CI can run disjoint seed ranges without editing the test.
func chaosSeeds(n int) []int64 {
	base := int64(1)
	if s := os.Getenv("EMBRACE_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			base = v
		}
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds
}

// chaosSignature runs every collective op on tr — flat ring AllReduce,
// chunk-pipelined ring AllReduce, Broadcast, AllGather, AllToAll and
// hierarchical AllReduce, each over two steps — and returns the
// concatenation of every result this rank observed. Two fabrics agree iff
// their signatures are bit-identical on every rank.
func chaosSignature(tr comm.Transport) ([]float32, error) {
	n, r := tr.Size(), tr.Rank()
	plain := NewCommunicator(tr)
	chunked := NewCommunicator(tr, WithChunkBytes(8)) // 2-element segments
	var sig []float32

	const m = 23 // odd, so ring chunks and segments come out uneven
	mk := func(k, step int) []float32 {
		buf := make([]float32, m)
		for i := range buf {
			buf[i] = float32(r+1) * float32(i+1) / float32(k+step+1)
		}
		return buf
	}

	for step := 0; step < 2; step++ {
		buf := mk(1, step)
		if err := plain.AllReduce("chaos/allreduce", step, buf); err != nil {
			return nil, fmt.Errorf("allreduce: %w", err)
		}
		sig = append(sig, buf...)

		buf = mk(2, step)
		if err := chunked.AllReduce("chaos/ring-chunked", step, buf); err != nil {
			return nil, fmt.Errorf("chunked allreduce: %w", err)
		}
		sig = append(sig, buf...)

		root := step % n
		buf = mk(3, step)
		if r != root {
			for i := range buf {
				buf[i] = 0
			}
		}
		if err := plain.Broadcast("chaos/bcast", step, root, buf); err != nil {
			return nil, fmt.Errorf("broadcast: %w", err)
		}
		sig = append(sig, buf...)

		parts, err := AllGatherVia(plain, "chaos/allgather", step, mk(4, step))
		if err != nil {
			return nil, fmt.Errorf("allgather: %w", err)
		}
		for _, p := range parts {
			sig = append(sig, p...)
		}

		send := make([][]float32, n)
		for p := range send {
			send[p] = []float32{float32(r*n+p) + 0.25, float32(step) + 0.5}
		}
		got, err := AllToAllVia(plain, "chaos/alltoall", step, send)
		if err != nil {
			return nil, fmt.Errorf("alltoall: %w", err)
		}
		for _, p := range got {
			sig = append(sig, p...)
		}

		wpn := 2
		if n%2 != 0 {
			wpn = 1
		}
		buf = mk(5, step)
		if err := plain.HierarchicalAllReduce("chaos/hier", step, wpn, buf); err != nil {
			return nil, fmt.Errorf("hierarchical: %w", err)
		}
		sig = append(sig, buf...)
	}
	return sig, nil
}

// gatherSignatures runs chaosSignature on every rank of the given world and
// returns the per-rank signatures.
func gatherSignatures(mkRank func(i int) comm.Transport, n int) ([][]float32, error) {
	sigs := make([][]float32, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sigs[i], errs[i] = chaosSignature(mkRank(i))
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sigs, nil
}

func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// waitNoLeak polls until the goroutine count settles back to the baseline.
func waitNoLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestChaosCollectivesBitIdentical(t *testing.T) {
	sizes := []int{2, 3, 4, 8}
	seeds := chaosSeeds(20)
	before := runtime.NumGoroutine()

	for _, n := range sizes {
		// Fault-free reference.
		w, err := comm.NewWorld(n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := gatherSignatures(w.Rank, n)
		w.Close()
		if err != nil {
			t.Fatalf("size %d reference: %v", n, err)
		}

		var totalInjected int64
		for _, seed := range seeds {
			cw, err := comm.NewChaosWorld(n, comm.MaskableChaosPlan(seed))
			if err != nil {
				t.Fatal(err)
			}
			got, err := gatherSignatures(cw.Rank, n)
			if err != nil {
				t.Fatalf("size %d seed %d: %v", n, seed, err)
			}
			for _, c := range cw.Injected() {
				totalInjected += c
			}
			cw.Close()
			for r := range want {
				if !bitsEqual(want[r], got[r]) {
					t.Fatalf("size %d seed %d rank %d: chaos result differs from fault-free", n, seed, r)
				}
			}
		}
		if totalInjected == 0 {
			t.Fatalf("size %d: maskable plans injected no faults across %d seeds — the suite proved nothing", n, len(seeds))
		}
	}
	waitNoLeak(t, before)
}

// A rate-1 duplicate rule doubles literally every message; the dedup layer
// must still deliver exactly one copy of each, in order.
func TestChaosEveryMessageDuplicated(t *testing.T) {
	for _, n := range []int{2, 4} {
		plan := comm.FaultPlan{Seed: 11, Rules: []comm.FaultRule{comm.Rule(comm.FaultDuplicate, 1)}}
		w, err := comm.NewWorld(n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := gatherSignatures(w.Rank, n)
		w.Close()
		if err != nil {
			t.Fatal(err)
		}
		cw, err := comm.NewChaosWorld(n, plan)
		if err != nil {
			t.Fatal(err)
		}
		got, err := gatherSignatures(cw.Rank, n)
		cw.Close()
		if err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		for r := range want {
			if !bitsEqual(want[r], got[r]) {
				t.Fatalf("size %d rank %d: result differs under full duplication", n, r)
			}
		}
	}
}

// A rate-1 transient rule makes every fresh send fail at least once; the
// retry budget must mask all of it without a single surfaced error.
func TestChaosEverySendFailsOnce(t *testing.T) {
	plan := comm.FaultPlan{Seed: 7, Rules: []comm.FaultRule{comm.Rule(comm.FaultTransientSend, 1)}}
	w, err := comm.NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := gatherSignatures(w.Rank, 4)
	w.Close()
	if err != nil {
		t.Fatal(err)
	}
	cw, err := comm.NewChaosWorld(4, plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := gatherSignatures(cw.Rank, 4)
	cw.Close()
	if err != nil {
		t.Fatal(err)
	}
	for r := range want {
		if !bitsEqual(want[r], got[r]) {
			t.Fatalf("rank %d: result differs under permanent transient faults", r)
		}
	}
}

// Masked faults must be visible to the observer: the per-op fault counters
// are how a training run reports what it survived.
func TestChaosFaultsReachObserver(t *testing.T) {
	type faultCount struct {
		mu     sync.Mutex
		masked int
	}
	var fc faultCount
	obs := &countingFaultObserver{onFault: func(op, kind string, masked bool) {
		if masked {
			fc.mu.Lock()
			fc.masked++
			fc.mu.Unlock()
		}
	}}
	plan := comm.FaultPlan{Seed: 3, Rules: []comm.FaultRule{comm.Rule(comm.FaultDuplicate, 1)}}
	cw, err := comm.NewChaosWorld(2, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer cw.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewCommunicator(cw.Rank(i), WithObserver(obs))
			buf := []float32{float32(i + 1), 2, 3}
			if err := c.AllReduce("chaos/obs", 0, buf); err != nil {
				t.Errorf("rank %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if fc.masked == 0 {
		t.Fatal("full duplication masked by the Communicator but never reported to the FaultObserver")
	}
}

// countingFaultObserver implements Observer + FaultObserver for tests.
type countingFaultObserver struct {
	onFault func(op, kind string, masked bool)
}

func (o *countingFaultObserver) Sent(string, any, time.Duration)     {}
func (o *countingFaultObserver) Received(string, any, time.Duration) {}
func (o *countingFaultObserver) Fault(op, kind string, masked bool)  { o.onFault(op, kind, masked) }
