package collective

import (
	"fmt"
	"testing"

	"embrace/internal/comm"
	"embrace/internal/tensor"
)

// The collectives are transport-agnostic; these tests re-run the core
// algorithms over real TCP sockets to prove the claim.

func TestRingAllReduceOverTCP(t *testing.T) {
	const n, m = 4, 100
	err := comm.RunRanksTCP(n, func(tr comm.Transport) error {
		buf := make([]float32, m)
		for i := range buf {
			buf[i] = float32(tr.Rank() + 1)
		}
		if err := NewCommunicator(tr).AllReduce("tcp/allreduce", 0, buf); err != nil {
			return err
		}
		want := float32(n * (n + 1) / 2)
		for i, v := range buf {
			if v != want {
				return fmt.Errorf("rank %d buf[%d]=%v want %v", tr.Rank(), i, v, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllOverTCP(t *testing.T) {
	const n = 4
	err := comm.RunRanksTCP(n, func(tr comm.Transport) error {
		send := make([][]float32, n)
		for p := range send {
			send[p] = []float32{float32(tr.Rank()), float32(p)}
		}
		got, err := AllToAllVia(NewCommunicator(tr), "tcp/alltoall", 0, send)
		if err != nil {
			return err
		}
		for p, v := range got {
			if v[0] != float32(p) || v[1] != float32(tr.Rank()) {
				return fmt.Errorf("rank %d slot %d = %v", tr.Rank(), p, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSparseAllGatherOverTCP(t *testing.T) {
	const n = 3
	const rows, dim = 8, 2
	err := comm.RunRanksTCP(n, func(tr comm.Transport) error {
		local, err := tensor.NewSparse(rows, dim,
			[]int64{int64(tr.Rank()), 7},
			[]float32{1, 1, 2, 2})
		if err != nil {
			return err
		}
		got, err := NewCommunicator(tr).SparseAllGather("tcp/sparse-ag", 0, local)
		if err != nil {
			return err
		}
		dense := got.ToDense()
		// Row 7 received a (2,2) contribution from each of the n ranks.
		if dense.At(7, 0) != float32(2*n) {
			return fmt.Errorf("rank %d: row 7 = %v", tr.Rank(), dense.At(7, 0))
		}
		for r := 0; r < n; r++ {
			if dense.At(r, 0) != 1 {
				return fmt.Errorf("rank %d: row %d = %v", tr.Rank(), r, dense.At(r, 0))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDenseTensorPayloadOverTCP(t *testing.T) {
	// The EmbRace strategy ships *tensor.Dense through AlltoAll; the gob
	// round trip must preserve shape and values.
	const n = 3
	err := comm.RunRanksTCP(n, func(tr comm.Transport) error {
		send := make([]*tensor.Dense, n)
		for p := range send {
			send[p] = tensor.Full(float32(tr.Rank()*10+p), 2, 2)
		}
		got, err := AllToAllVia(NewCommunicator(tr), "tcp/alltoall", 0, send)
		if err != nil {
			return err
		}
		for p, d := range got {
			if d.Dim(0) != 2 || d.Dim(1) != 2 {
				return fmt.Errorf("shape %v", d.Shape())
			}
			if d.At(1, 1) != float32(p*10+tr.Rank()) {
				return fmt.Errorf("rank %d from %d: %v", tr.Rank(), p, d.At(1, 1))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
