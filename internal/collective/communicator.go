package collective

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"embrace/internal/comm"
	"embrace/internal/tensor"
)

// Communicator is a per-rank stateful endpoint for collective operations:
// the architectural move Horovod-style frameworks converged on once per-call
// tagging and per-call buffer allocation stopped scaling. It owns three
// concerns the free functions used to push onto every caller:
//
//   - Tag allocation. Every collective is addressed by a logical operation
//     name plus a step number; the Communicator maps (op, step) to a
//     collision-free transport tag deterministically, so all ranks agree on
//     the tag without negotiation and without hand-maintained tag constants.
//     The mapping is order-independent (a stable hash of the op name), which
//     makes it safe to allocate tags from concurrent goroutines — the hazard
//     that hand-numbered tag spaces kept latent.
//
//   - Chunked pipelining. Dense ring operations split each ring chunk into
//     ChunkBytes-sized segments and keep one segment in flight ahead of the
//     reduction, so the transfer of segment k+1 overlaps the combine of
//     segment k. The default (ChunkBytes == 0) sends each ring chunk whole,
//     preserving the legacy single-message framing. Segmentation splits
//     element ranges, never the per-element summation order, so results are
//     bit-identical for every chunk size.
//
//   - Buffer pooling. Scratch buffers for ring sends are drawn from an
//     internal sync.Pool and recycled when the received copy has been folded
//     into the destination, eliminating the per-send make([]float32, ...) of
//     the free-function paths. Ownership transfers with the message: the
//     receiving rank returns the buffer to its own pool.
//
// A Communicator is safe for concurrent use by one rank's goroutines as long
// as concurrent collectives use distinct op names (or distinct steps), the
// same discipline MPI communicators require. All ranks of a world must issue
// the same logical operations — the SPMD contract every collective already
// has.
type Communicator struct {
	t          comm.Transport
	chunkElems int
	epoch      int // world epoch; offsets every tag into its own plane
	obs        Observer
	faults     FaultObserver // c.obs, when it also counts faults
	codecObs   CodecObserver // c.obs, when it also times codec work

	mu      sync.Mutex
	ops     map[string]int64 // op name -> slot in the tag space
	byIndex map[int64]string // slot -> op name, for collision detection
	tickets map[string]int   // out-of-band sequence numbers per op

	streamMu sync.Mutex
	sends    map[streamKey]*sendStream
	recvs    map[streamKey]*recvStream

	pool   sync.Pool // *[]float32 holding scratch data
	spares sync.Pool // *[]float32 holding empty containers

	poolI64   sync.Pool // *[]int64 holding scratch data (sparse index streams)
	sparesI64 sync.Pool // *[]int64 holding empty containers

	poolB   sync.Pool // *[]byte holding scratch data (compressed wire payloads)
	sparesB sync.Pool // *[]byte holding empty containers
}

// Observer receives per-logical-operation traffic notifications from a
// Communicator. metrics.OpRecorder implements it; the indirection keeps
// collective free of a metrics dependency.
type Observer interface {
	// Sent is called after each point-to-point send of the operation.
	Sent(op string, payload any, blocked time.Duration)
	// Received is called after each point-to-point receive; blocked is the
	// time spent waiting, the real-mode analogue of communication stall.
	Received(op string, payload any, blocked time.Duration)
}

// FaultObserver is the optional extension of Observer for fault accounting.
// When the installed Observer also implements it, the Communicator reports
// every communication fault it sees: masked faults (duplicates dropped,
// reordered frames buffered, transient send failures retried away) and fatal
// ones (dead peers, timeouts, exhausted retry budgets). metrics.OpRecorder
// implements it.
type FaultObserver interface {
	// Fault is called once per fault event on op; masked reports whether the
	// Communicator absorbed it (true) or surfaced an error (false). kind is
	// one of "duplicate", "reorder", "transient", "peer-down", "timeout".
	Fault(op string, kind string, masked bool)
}

// CodecObserver is the optional extension of Observer for wire-codec
// accounting. When the installed Observer also implements it, the
// Communicator reports every shard it encodes or decodes during a compressed
// sparse exchange: how many bytes the raw index/value streams would have
// occupied, how many actually hit the wire, and how long the codec ran.
// metrics.OpRecorder derives per-op compression ratios from it and
// trace.Recorder turns the durations into encode/decode spans.
type CodecObserver interface {
	// CodecOp is called once per encoded or decoded peer shard of op. phase
	// is "encode" or "decode"; rawBytes is the uncompressed index+value
	// footprint, wireBytes the encoded payload length.
	CodecOp(op, phase string, rawBytes, wireBytes int, d time.Duration)
}

// Tag-space layout: tags are epoch<<epochShift + tagBase + opSlot<<stepBits
// + step. The base keeps Communicator tags disjoint from every legacy
// hand-numbered tag space (all below 1<<32); the per-op slot gives each
// logical operation 2^21 step values; the world-epoch bits (zero by default,
// so legacy tags are unchanged) give each rebuild of a world its own
// disjoint tag plane. Requires 64-bit ints (every supported platform).
const (
	stepBits = 21
	// MaxStep is the largest step (or Ticket) value a tag can encode.
	MaxStep = 1<<stepBits - 1
	opSlots = 1 << 30
	tagBase = 1 << 32
	// epochShift places the world-epoch bits above the whole epoch-0 tag
	// space (tagBase + opSlots<<stepBits < 1<<52).
	epochShift = 52
	// MaxEpoch is the largest world epoch a tag can encode while keeping
	// the tag a positive int64. Elastic training consumes one epoch per
	// world rebuild, so the bound is unreachable in practice.
	MaxEpoch = 1<<(63-epochShift) - 1
)

// Option configures a Communicator.
type Option func(*Communicator)

// WithChunkBytes sets the pipelining segment size for dense ring operations.
// Zero or negative keeps the legacy whole-chunk framing.
func WithChunkBytes(n int) Option {
	return func(c *Communicator) {
		if n > 0 {
			c.chunkElems = max(1, n/tensor.BytesPerElem)
		} else {
			c.chunkElems = 0
		}
	}
}

// WithObserver installs a per-operation traffic observer.
func WithObserver(o Observer) Option {
	return func(c *Communicator) { c.obs = o }
}

// WithEpoch places every tag the Communicator allocates in world-epoch e's
// tag plane. Epochs partition the tag space: a Communicator of epoch e+1
// can never receive a frame addressed by an epoch-e Communicator, so after
// an elastic world rebuild the stale in-flight frames of the dead world —
// delayed deliveries, a leaked background exchange's sends — are simply
// never matched, instead of corrupting the rebuilt collectives' sequence
// streams. Epoch 0 (the default) is the legacy tag plane.
func WithEpoch(e int) Option {
	return func(c *Communicator) { c.epoch = e }
}

// NewCommunicator creates the rank-local collective endpoint over t.
func NewCommunicator(t comm.Transport, opts ...Option) *Communicator {
	c := &Communicator{t: t}
	for _, o := range opts {
		o(c)
	}
	c.faults, _ = c.obs.(FaultObserver)
	c.codecObs, _ = c.obs.(CodecObserver)
	return c
}

// Rank returns this participant's rank in [0, Size).
func (c *Communicator) Rank() int { return c.t.Rank() }

// Size returns the world size.
func (c *Communicator) Size() int { return c.t.Size() }

// Transport returns the underlying point-to-point fabric.
func (c *Communicator) Transport() comm.Transport { return c.t }

// opIndex resolves (registering on first use) the op's slot in the tag
// space. The slot is a pure function of the name, so registration order —
// and therefore goroutine interleaving — cannot desynchronize ranks.
func (c *Communicator) opIndex(op string) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx, ok := c.ops[op]; ok {
		return idx, nil
	}
	idx := opSlot(op)
	if prev, ok := c.byIndex[idx]; ok && prev != op {
		return 0, fmt.Errorf("collective: op %q collides with %q in the tag space; rename one", op, prev)
	}
	if c.ops == nil {
		c.ops = make(map[string]int64)
		c.byIndex = make(map[int64]string)
	}
	c.ops[op] = idx
	c.byIndex[idx] = op
	return idx, nil
}

// Tag returns the transport tag of (op, step) in this Communicator's epoch
// plane. Distinct (op, step) pairs map to distinct tags; an unresolvable
// hash collision between op names is reported as an error (astronomically
// unlikely with a 2^30 slot space).
func (c *Communicator) Tag(op string, step int) (int, error) {
	if step < 0 || step > MaxStep {
		return 0, fmt.Errorf("collective: step %d outside [0, %d] for op %q", step, MaxStep, op)
	}
	if c.epoch < 0 || c.epoch > MaxEpoch {
		return 0, fmt.Errorf("collective: world epoch %d outside [0, %d]", c.epoch, MaxEpoch)
	}
	idx, err := c.opIndex(op)
	if err != nil {
		return 0, err
	}
	return c.epoch<<epochShift + tagBase + int(idx)<<stepBits + step, nil
}

// Epoch returns the world epoch this Communicator's tags live in.
func (c *Communicator) Epoch() int { return c.epoch }

// TagOf computes the epoch-0 transport tag of (op, step) without a
// Communicator — the targeting hook chaos plans use to aim a fault at one
// collective of one training step (a FaultRule.Match on FaultPoint.Tag).
// It is the same pure function of the op name every Communicator resolves,
// minus the cross-op collision registry, so it must only feed predicates,
// never tag allocation.
func TagOf(op string, step int) (int, error) {
	if step < 0 || step > MaxStep {
		return 0, fmt.Errorf("collective: step %d outside [0, %d] for op %q", step, MaxStep, op)
	}
	return tagBase + int(opSlot(op))<<stepBits + step, nil
}

// opSlot is the stable hash placing an op name in the tag space.
func opSlot(op string) int64 {
	h := fnv.New64a()
	h.Write([]byte(op))
	return int64(h.Sum64() % opSlots)
}

// Ops returns the op names registered so far, sorted.
func (c *Communicator) Ops() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.ops))
	for op := range c.ops {
		out = append(out, op)
	}
	sort.Strings(out)
	return out
}

// Ticket returns the next out-of-band sequence number for op, for
// collectives that happen outside the training-step cadence (e.g. gathering
// the final embedding table). All ranks must call it symmetrically — the
// same SPMD contract as the collectives themselves — so every rank derives
// the same tag without hand-picked magic step numbers.
func (c *Communicator) Ticket(op string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tickets == nil {
		c.tickets = make(map[string]int)
	}
	n := c.tickets[op]
	c.tickets[op] = n + 1
	return n
}

// ---------------------------------------------------------------------------
// Pooled scratch buffers.
// ---------------------------------------------------------------------------

// getBuf returns a scratch buffer of length n, reusing pooled memory. The
// container pointer is parked in the spares pool so putBuf can return
// received buffers without allocating a new header.
//
//embrace:arena
func (c *Communicator) getBuf(n int) []float32 {
	v, _ := c.pool.Get().(*[]float32)
	if v == nil {
		v = new([]float32)
	}
	buf := *v
	*v = nil
	c.spares.Put(v)
	if cap(buf) < n {
		buf = make([]float32, n)
	}
	return buf[:n]
}

// putBuf recycles a buffer whose contents have been fully consumed. With the
// in-process transport this is typically a buffer a peer's getBuf allocated;
// ownership travels with the message.
//
//embrace:arena reuse buf
func (c *Communicator) putBuf(buf []float32) {
	if cap(buf) == 0 {
		return
	}
	v, _ := c.spares.Get().(*[]float32)
	if v == nil {
		v = new([]float32)
	}
	*v = buf[:cap(buf)]
	c.pool.Put(v)
}

// getBufI64 and putBufI64 are the []int64 twins of getBuf/putBuf, used for
// the index streams of the sparse exchanges. Same ownership discipline: the
// buffer travels with the message and the receiver recycles it into its own
// pool.
//
//embrace:arena
func (c *Communicator) getBufI64(n int) []int64 {
	v, _ := c.poolI64.Get().(*[]int64)
	if v == nil {
		v = new([]int64)
	}
	buf := *v
	*v = nil
	c.sparesI64.Put(v)
	if cap(buf) < n {
		buf = make([]int64, n)
	}
	return buf[:n]
}

//embrace:arena reuse buf
func (c *Communicator) putBufI64(buf []int64) {
	if cap(buf) == 0 {
		return
	}
	v, _ := c.sparesI64.Get().(*[]int64)
	if v == nil {
		v = new([]int64)
	}
	*v = buf[:cap(buf)]
	c.poolI64.Put(v)
}

// getBufB and putBufB are the []byte twins of getBuf/putBuf, used for the
// encoded payloads of the compressed sparse exchanges. getBufB returns a
// zero-length buffer (codecs append into it), so the pool converges on
// high-water-mark capacities after warm-up just like the float pools.
//
//embrace:arena
func (c *Communicator) getBufB() []byte {
	v, _ := c.poolB.Get().(*[]byte)
	if v == nil {
		v = new([]byte)
	}
	buf := *v
	*v = nil
	c.sparesB.Put(v)
	return buf[:0]
}

//embrace:arena reuse buf
func (c *Communicator) putBufB(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	v, _ := c.sparesB.Get().(*[]byte)
	if v == nil {
		v = new([]byte)
	}
	*v = buf[:cap(buf)]
	c.poolB.Put(v)
}

// ---------------------------------------------------------------------------
// Instrumented, self-healing point-to-point.
//
// Every message a Communicator sends is wrapped in a comm.SeqFrame carrying a
// per-(peer, tag) sequence number. The receiver uses it to drop duplicated
// frames and to buffer frames that arrive ahead of their turn, so a fabric
// that duplicates, delays or reorders within a stream (comm.WrapChaos, or a
// real retransmitting network) still yields bit-identical collective results.
// Transient send failures (comm.ErrTransient) are retried with exponential
// backoff up to sendAttempts; everything else surfaces immediately with the
// op name attached.
// ---------------------------------------------------------------------------

const (
	// sendAttempts bounds the retry loop for transient send failures. The
	// chaos transport guarantees bursts no longer than its MaxBurst (default
	// 3) followed by a guaranteed-good send, so this budget masks every
	// transient plan it can generate.
	sendAttempts = 8
	// retryBackoff is the initial sleep between attempts; it doubles each try.
	retryBackoff = 100 * time.Microsecond
)

// streamKey identifies one directed per-tag message stream.
type streamKey struct{ peer, tag int }

// sendStream numbers outgoing frames.
type sendStream struct {
	mu   sync.Mutex
	next int64
}

// recvStream tracks the next expected frame and parks early arrivals.
type recvStream struct {
	mu   sync.Mutex
	next int64
	held map[int64]any // seq -> payload, frames that arrived ahead of turn
}

func (c *Communicator) sendStream(to, tag int) *sendStream {
	c.streamMu.Lock()
	defer c.streamMu.Unlock()
	k := streamKey{to, tag}
	s, ok := c.sends[k]
	if !ok {
		if c.sends == nil {
			c.sends = make(map[streamKey]*sendStream)
		}
		s = &sendStream{}
		c.sends[k] = s
	}
	return s
}

func (c *Communicator) recvStream(from, tag int) *recvStream {
	c.streamMu.Lock()
	defer c.streamMu.Unlock()
	k := streamKey{from, tag}
	s, ok := c.recvs[k]
	if !ok {
		if c.recvs == nil {
			c.recvs = make(map[streamKey]*recvStream)
		}
		s = &recvStream{}
		c.recvs[k] = s
	}
	return s
}

// fault reports a fault event to the observer, when it cares.
func (c *Communicator) fault(op, kind string, masked bool) {
	if c.faults != nil {
		c.faults.Fault(op, kind, masked)
	}
}

// faultKindOf classifies a transport error for fault accounting.
func faultKindOf(err error) string {
	switch {
	case errors.Is(err, comm.ErrPeerDown):
		return "peer-down"
	case errors.Is(err, comm.ErrTimeout):
		return "timeout"
	case errors.Is(err, comm.ErrTransient):
		return "transient"
	default:
		return ""
	}
}

// rawSendOnce performs one framed transport send with observer timing. The
// observer sees the inner payload, not the frame, so byte accounting matches
// what the caller handed over.
func (c *Communicator) rawSendOnce(op string, to, tag int, frame comm.SeqFrame) error {
	if c.obs == nil {
		return c.t.Send(to, tag, frame)
	}
	start := time.Now()
	err := c.t.Send(to, tag, frame)
	c.obs.Sent(op, frame.Payload, time.Since(start))
	return err
}

func (c *Communicator) sendRaw(op string, to, tag int, payload any) error {
	ss := c.sendStream(to, tag)
	ss.mu.Lock()
	seq := ss.next
	ss.next++
	ss.mu.Unlock()
	frame := comm.SeqFrame{Seq: seq, Payload: payload}

	backoff := retryBackoff
	for attempt := 1; ; attempt++ {
		err := c.rawSendOnce(op, to, tag, frame)
		if err == nil {
			return nil
		}
		if !errors.Is(err, comm.ErrTransient) {
			if kind := faultKindOf(err); kind != "" {
				c.fault(op, kind, false)
			}
			return fmt.Errorf("collective: %s send to rank %d: %w", op, to, err)
		}
		if attempt >= sendAttempts {
			c.fault(op, "transient", false)
			return fmt.Errorf("collective: %s send to rank %d: %d attempts exhausted: %w", op, to, attempt, err)
		}
		c.fault(op, "transient", true)
		time.Sleep(backoff)
		backoff *= 2
	}
}

// recvRaw returns the next in-order payload of the (from, tag) stream,
// absorbing duplicated and early frames. Unframed payloads (from peers not
// using a Communicator) pass through untouched.
func (c *Communicator) recvRaw(op string, from, tag int) (any, error) {
	rs := c.recvStream(from, tag)
	for {
		rs.mu.Lock()
		if v, ok := rs.held[rs.next]; ok {
			delete(rs.held, rs.next)
			rs.next++
			rs.mu.Unlock()
			return v, nil
		}
		rs.mu.Unlock()

		// The transport call happens with no lock held: a blocked receive
		// must never pin stream state.
		var payload any
		var err error
		if c.obs == nil {
			payload, err = c.t.Recv(from, tag)
		} else {
			start := time.Now()
			payload, err = c.t.Recv(from, tag)
			if f, ok := payload.(comm.SeqFrame); ok {
				c.obs.Received(op, f.Payload, time.Since(start))
			} else {
				c.obs.Received(op, payload, time.Since(start))
			}
		}
		if err != nil {
			if kind := faultKindOf(err); kind != "" {
				c.fault(op, kind, false)
			}
			return nil, fmt.Errorf("collective: %s recv from rank %d: %w", op, from, err)
		}
		f, ok := payload.(comm.SeqFrame)
		if !ok {
			return payload, nil
		}

		rs.mu.Lock()
		switch {
		case f.Seq < rs.next:
			// Already delivered: a duplicated frame. Drop it.
			rs.mu.Unlock()
			c.fault(op, "duplicate", true)
		case f.Seq > rs.next:
			// Ahead of turn: park it and keep receiving.
			if rs.held == nil {
				rs.held = make(map[int64]any)
			}
			rs.held[f.Seq] = f.Payload
			rs.mu.Unlock()
			c.fault(op, "reorder", true)
		default:
			rs.next++
			rs.mu.Unlock()
			return f.Payload, nil
		}
	}
}

// Send delivers payload to rank `to` under the tag of (op, step) — the
// point-to-point escape hatch for protocols (like coord's negotiation) that
// need raw messaging inside a Communicator-allocated tag range.
func (c *Communicator) Send(op string, step, to int, payload any) error {
	tag, err := c.Tag(op, step)
	if err != nil {
		return err
	}
	return c.sendRaw(op, to, tag, payload)
}

// Recv blocks until rank `from`'s message under (op, step) arrives.
func (c *Communicator) Recv(op string, step, from int) (any, error) {
	tag, err := c.Tag(op, step)
	if err != nil {
		return nil, err
	}
	return c.recvRaw(op, from, tag)
}

// ---------------------------------------------------------------------------
// Dense ring collectives: chunked, pipelined, pooled.
// ---------------------------------------------------------------------------

// segCount returns the number of pipelined segments an n-element ring chunk
// is split into. Always at least one, so sender and receiver exchange a
// message even for empty chunks (the legacy framing).
func (c *Communicator) segCount(n int) int {
	if c.chunkElems <= 0 || n <= c.chunkElems {
		return 1
	}
	return (n + c.chunkElems - 1) / c.chunkElems
}

// ringExchange performs one ring step: it streams chunk [slo, shi) of buf to
// `right` while receiving chunk [rlo, rhi) from `left`, both split into
// pipelined segments. Segment k+1 is on the wire before segment k is
// combined, so transfer overlaps reduction. combine folds each received
// segment into its destination slice.
func (c *Communicator) ringExchange(op string, tag, right, left int, buf []float32, slo, shi, rlo, rhi int, combine func(dst, src []float32)) error {
	ss := c.segCount(shi - slo)
	rs := c.segCount(rhi - rlo)
	sent := 0
	sendSeg := func() error {
		a, b := chunkBounds(shi-slo, ss, sent)
		seg := c.getBuf(b - a)
		copy(seg, buf[slo+a:slo+b])
		sent++
		return c.sendRaw(op, right, tag, seg)
	}
	// Prime the pipeline before blocking on the first receive.
	if err := sendSeg(); err != nil {
		return fmt.Errorf("ring send: %w", err)
	}
	for k := 0; k < rs; k++ {
		if sent < ss {
			if err := sendSeg(); err != nil {
				return fmt.Errorf("ring send: %w", err)
			}
		}
		payload, err := c.recvRaw(op, left, tag)
		if err != nil {
			return fmt.Errorf("ring recv: %w", err)
		}
		in, ok := payload.([]float32)
		if !ok {
			return fmt.Errorf("collective: %s: unexpected payload %T", op, payload)
		}
		a, b := chunkBounds(rhi-rlo, rs, k)
		if len(in) != b-a {
			return fmt.Errorf("collective: %s: segment size %d != %d", op, len(in), b-a)
		}
		combine(buf[rlo+a:rlo+b], in)
		c.putBuf(in)
	}
	for sent < ss {
		if err := sendSeg(); err != nil {
			return fmt.Errorf("ring send: %w", err)
		}
	}
	return nil
}

// ringReduceScatter is phase 1 of ring AllReduce under an explicit tag:
// after it returns, chunk `rank` of buf holds the op-reduction across all
// ranks. Returns the [lo, hi) bounds of the rank's reduced chunk.
func (c *Communicator) ringReduceScatter(op string, tag int, buf []float32, rop ReduceOp) (lo, hi int, err error) {
	n, r := c.t.Size(), c.t.Rank()
	lo, hi = chunkBounds(len(buf), n, r)
	if n == 1 {
		return lo, hi, nil
	}
	right := (r + 1) % n
	left := (r - 1 + n) % n
	for s := 0; s < n-1; s++ {
		sendChunk := ((r-s-1)%n + 2*n) % n
		recvChunk := ((r-s-2)%n + 2*n) % n
		slo, shi := chunkBounds(len(buf), n, sendChunk)
		rlo, rhi := chunkBounds(len(buf), n, recvChunk)
		if err := c.ringExchange(op, tag, right, left, buf, slo, shi, rlo, rhi, rop.apply); err != nil {
			return 0, 0, fmt.Errorf("reduce-scatter step %d: %w", s, err)
		}
	}
	return lo, hi, nil
}

// ringAllReduce is the full two-phase ring under an explicit tag.
func (c *Communicator) ringAllReduce(op string, tag int, buf []float32, rop ReduceOp) error {
	n, r := c.t.Size(), c.t.Rank()
	if n == 1 {
		return nil
	}
	if _, _, err := c.ringReduceScatter(op, tag, buf, rop); err != nil {
		return err
	}
	right := (r + 1) % n
	left := (r - 1 + n) % n
	for s := 0; s < n-1; s++ {
		sendChunk := ((r-s)%n + n) % n
		recvChunk := ((r-s-1)%n + n) % n
		slo, shi := chunkBounds(len(buf), n, sendChunk)
		rlo, rhi := chunkBounds(len(buf), n, recvChunk)
		err := c.ringExchange(op, tag, right, left, buf, slo, shi, rlo, rhi,
			func(dst, src []float32) { copy(dst, src) })
		if err != nil {
			return fmt.Errorf("allgather step %d: %w", s, err)
		}
	}
	return nil
}

// AllReduce sums buf element-wise across all ranks in place with the
// bandwidth-optimal ring algorithm, chunk-pipelined per the Communicator's
// ChunkBytes and drawing scratch buffers from the pool.
func (c *Communicator) AllReduce(op string, step int, buf []float32) error {
	return c.AllReduceWith(op, step, buf, Sum)
}

// AllReduceWith is AllReduce generalized over the reduction operator.
func (c *Communicator) AllReduceWith(op string, step int, buf []float32, rop ReduceOp) error {
	tag, err := c.Tag(op, step)
	if err != nil {
		return err
	}
	return c.ringAllReduce(op, tag, buf, rop)
}

// ReduceScatter runs phase 1 of ring AllReduce: after it returns, chunk
// `rank` of buf holds the element-wise sum across all ranks; other chunks
// hold partial garbage. Returns the rank's reduced chunk bounds.
func (c *Communicator) ReduceScatter(op string, step int, buf []float32) (lo, hi int, err error) {
	tag, err := c.Tag(op, step)
	if err != nil {
		return 0, 0, err
	}
	return c.ringReduceScatter(op, tag, buf, Sum)
}

// broadcastOn copies root's buf into every rank's buf under an explicit tag.
// Unlike the legacy shared-payload broadcast, each receiver gets its own
// pooled copy so buffers stay recyclable.
func broadcastOn(c *Communicator, op string, tag, root int, buf []float32) error {
	n := c.t.Size()
	if n == 1 {
		return nil
	}
	if c.t.Rank() == root {
		for p := 0; p < n; p++ {
			if p == root {
				continue
			}
			out := c.getBuf(len(buf))
			copy(out, buf)
			if err := c.sendRaw(op, p, tag, out); err != nil {
				return fmt.Errorf("broadcast send: %w", err)
			}
		}
		return nil
	}
	payload, err := c.recvRaw(op, root, tag)
	if err != nil {
		return fmt.Errorf("broadcast recv: %w", err)
	}
	src, ok := payload.([]float32)
	if !ok {
		return fmt.Errorf("collective: broadcast payload %T", payload)
	}
	if len(src) != len(buf) {
		return fmt.Errorf("collective: broadcast length %d != local %d", len(src), len(buf))
	}
	copy(buf, src)
	c.putBuf(src)
	return nil
}

// Broadcast copies root's buf into every rank's buf.
func (c *Communicator) Broadcast(op string, step, root int, buf []float32) error {
	tag, err := c.Tag(op, step)
	if err != nil {
		return err
	}
	return broadcastOn(c, op, tag, root, buf)
}

// barrierOn blocks until every rank has entered, under an explicit tag.
func barrierOn(c *Communicator, op string, tag int) error {
	n := c.t.Size()
	if n == 1 {
		return nil
	}
	if c.t.Rank() == 0 {
		for p := 1; p < n; p++ {
			if _, err := c.recvRaw(op, p, tag); err != nil {
				return fmt.Errorf("barrier fan-in: %w", err)
			}
		}
		for p := 1; p < n; p++ {
			if err := c.sendRaw(op, p, tag, struct{}{}); err != nil {
				return fmt.Errorf("barrier fan-out: %w", err)
			}
		}
		return nil
	}
	if err := c.sendRaw(op, 0, tag, struct{}{}); err != nil {
		return fmt.Errorf("barrier fan-in: %w", err)
	}
	if _, err := c.recvRaw(op, 0, tag); err != nil {
		return fmt.Errorf("barrier fan-out: %w", err)
	}
	return nil
}

// Barrier blocks until every rank has entered it.
func (c *Communicator) Barrier(op string, step int) error {
	tag, err := c.Tag(op, step)
	if err != nil {
		return err
	}
	return barrierOn(c, op, tag)
}

// ---------------------------------------------------------------------------
// Generic exchanges. Methods cannot be generic in Go, so these are package
// functions taking the Communicator first.
// ---------------------------------------------------------------------------

// allGatherOn is the flat all-to-all-pairs gather under an explicit tag.
func allGatherOn[T any](c *Communicator, op string, tag int, local T) ([]T, error) {
	n, r := c.t.Size(), c.t.Rank()
	out := make([]T, n)
	out[r] = local
	for p := 0; p < n; p++ {
		if p == r {
			continue
		}
		if err := c.sendRaw(op, p, tag, local); err != nil {
			return nil, fmt.Errorf("allgather send to %d: %w", p, err)
		}
	}
	for p := 0; p < n; p++ {
		if p == r {
			continue
		}
		payload, err := c.recvRaw(op, p, tag)
		if err != nil {
			return nil, fmt.Errorf("allgather recv from %d: %w", p, err)
		}
		v, ok := payload.(T)
		if !ok {
			return nil, fmt.Errorf("collective: allgather type %T from rank %d", payload, p)
		}
		out[p] = v
	}
	return out, nil
}

// AllGatherVia collects one value from every rank under (op, step) and
// returns them indexed by rank.
func AllGatherVia[T any](c *Communicator, op string, step int, local T) ([]T, error) {
	tag, err := c.Tag(op, step)
	if err != nil {
		return nil, err
	}
	return allGatherOn(c, op, tag, local)
}

// allToAllOn routes send[p] to rank p under an explicit tag.
func allToAllOn[T any](c *Communicator, op string, tag int, send []T) ([]T, error) {
	n, r := c.t.Size(), c.t.Rank()
	if len(send) != n {
		return nil, fmt.Errorf("collective: alltoall wants %d send parts, got %d", n, len(send))
	}
	out := make([]T, n)
	out[r] = send[r]
	for p := 0; p < n; p++ {
		if p == r {
			continue
		}
		if err := c.sendRaw(op, p, tag, send[p]); err != nil {
			return nil, fmt.Errorf("alltoall send to %d: %w", p, err)
		}
	}
	for p := 0; p < n; p++ {
		if p == r {
			continue
		}
		payload, err := c.recvRaw(op, p, tag)
		if err != nil {
			return nil, fmt.Errorf("alltoall recv from %d: %w", p, err)
		}
		v, ok := payload.(T)
		if !ok {
			return nil, fmt.Errorf("collective: alltoall type %T from rank %d", payload, p)
		}
		out[p] = v
	}
	return out, nil
}

// AllToAllVia sends send[p] to rank p under (op, step) and returns the
// received values indexed by sender.
func AllToAllVia[T any](c *Communicator, op string, step int, send []T) ([]T, error) {
	tag, err := c.Tag(op, step)
	if err != nil {
		return nil, err
	}
	return allToAllOn(c, op, tag, send)
}

// gatherOn collects one value per rank at root under an explicit tag.
func gatherOn[T any](c *Communicator, op string, tag, root int, local T) ([]T, error) {
	n, r := c.t.Size(), c.t.Rank()
	if r != root {
		if err := c.sendRaw(op, root, tag, local); err != nil {
			return nil, fmt.Errorf("gather send: %w", err)
		}
		return nil, nil
	}
	out := make([]T, n)
	out[r] = local
	for p := 0; p < n; p++ {
		if p == r {
			continue
		}
		payload, err := c.recvRaw(op, p, tag)
		if err != nil {
			return nil, fmt.Errorf("gather recv from %d: %w", p, err)
		}
		v, ok := payload.(T)
		if !ok {
			return nil, fmt.Errorf("collective: gather type %T from rank %d", payload, p)
		}
		out[p] = v
	}
	return out, nil
}

// GatherVia collects one value from every rank at root under (op, step);
// non-root ranks receive a nil slice.
func GatherVia[T any](c *Communicator, op string, step, root int, local T) ([]T, error) {
	tag, err := c.Tag(op, step)
	if err != nil {
		return nil, err
	}
	return gatherOn(c, op, tag, root, local)
}

// ---------------------------------------------------------------------------
// Sparse collectives.
// ---------------------------------------------------------------------------

// SparseAllGather aggregates a row-sparse gradient: every rank contributes
// its local sparse tensor and receives the concatenation of all of them.
func (c *Communicator) SparseAllGather(op string, step int, local *tensor.Sparse) (*tensor.Sparse, error) {
	parts, err := AllGatherVia(c, op, step, local)
	if err != nil {
		return nil, err
	}
	return tensor.Concat(parts...)
}

// SparseAllToAll routes sparse shards: shard[p] of the local gradient goes
// to rank p, and the received shards are returned indexed by sender. The
// shard count must equal the world size.
func (c *Communicator) SparseAllToAll(op string, step int, shards []*tensor.Sparse) ([]*tensor.Sparse, error) {
	return AllToAllVia(c, op, step, shards)
}
