package collective

import "time"

// multiObserver fans every Observer callback out to several observers, so a
// Communicator can feed the metrics OpRecorder and a trace Recorder (or any
// other consumer) from the single WithObserver hook. Fault events forward
// only to the members that implement FaultObserver.
type multiObserver struct {
	obs    []Observer
	faults []FaultObserver
	codecs []CodecObserver
}

// MultiObserver combines observers into one. Nil entries are dropped; with
// zero or one live observer the trivial value is returned, so the fast path
// (one observer, no fan-out indirection) is preserved.
func MultiObserver(os ...Observer) Observer {
	m := &multiObserver{}
	for _, o := range os {
		if o == nil {
			continue
		}
		m.obs = append(m.obs, o)
		if f, ok := o.(FaultObserver); ok {
			m.faults = append(m.faults, f)
		}
		if cc, ok := o.(CodecObserver); ok {
			m.codecs = append(m.codecs, cc)
		}
	}
	switch len(m.obs) {
	case 0:
		return nil
	case 1:
		return m.obs[0]
	}
	return m
}

// Sent implements Observer.
func (m *multiObserver) Sent(op string, payload any, blocked time.Duration) {
	for _, o := range m.obs {
		o.Sent(op, payload, blocked)
	}
}

// Received implements Observer.
func (m *multiObserver) Received(op string, payload any, blocked time.Duration) {
	for _, o := range m.obs {
		o.Received(op, payload, blocked)
	}
}

// Fault implements FaultObserver, forwarding to the members that count
// faults.
func (m *multiObserver) Fault(op string, kind string, masked bool) {
	for _, f := range m.faults {
		f.Fault(op, kind, masked)
	}
}

// CodecOp implements CodecObserver, forwarding to the members that account
// codec work.
func (m *multiObserver) CodecOp(op, phase string, rawBytes, wireBytes int, d time.Duration) {
	for _, cc := range m.codecs {
		cc.CodecOp(op, phase, rawBytes, wireBytes, d)
	}
}

// Compile-time checks.
var (
	_ Observer      = (*multiObserver)(nil)
	_ FaultObserver = (*multiObserver)(nil)
	_ CodecObserver = (*multiObserver)(nil)
)
