// Package collective implements the collective communication primitives the
// paper's hybrid architecture is built from: ring AllReduce and ReduceScatter
// for dense gradients, AllGather for sparse baselines, and AlltoAll for the
// EmbRace embedding exchange (§2.2, §4.1).
//
// The API is the stateful Communicator, which owns tag allocation
// (collision-free per logical op name and step), chunked pipelining of dense
// ring transfers, and pooled scratch buffers. Every collective is addressed
// by (op, step): all ranks of a comm.Transport world issue the same logical
// operation with the same name and step, and the call returns on each rank
// once that rank's part is complete. Concurrent collectives on one
// Communicator must use distinct op names or distinct steps. Generic
// exchanges (AllGatherVia, AllToAllVia, GatherVia) are package functions
// taking the Communicator first, because Go methods cannot be generic.
//
// The pre-Communicator free functions that took hand-picked integer tags are
// gone; the rawtag analyzer (cmd/embracevet) keeps them from coming back.
package collective

import (
	"embrace/internal/comm"
	"embrace/internal/tensor"
)

func init() {
	// Tensor payloads must be registered for the TCP transport's gob
	// framing; the in-process transport ignores registration.
	comm.RegisterWireType(&tensor.Dense{})
	comm.RegisterWireType(&tensor.Sparse{})
	comm.RegisterWireType([]*tensor.Dense{})
	comm.RegisterWireType([]*tensor.Sparse{})
}

// chunkBounds returns the [lo, hi) element range of chunk i when n elements
// are split into `parts` nearly equal chunks (the ring AllReduce layout).
func chunkBounds(n, parts, i int) (lo, hi int) {
	base := n / parts
	rem := n % parts
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// ReduceOp is an element-wise, associative, commutative reduction.
type ReduceOp int

// Supported reductions. Sum aggregates gradients; Max/Min aggregate metrics
// (e.g. the slowest rank's step time or the worst loss).
const (
	Sum ReduceOp = iota
	Max
	Min
)

func (op ReduceOp) apply(dst []float32, src []float32) {
	switch op {
	case Max:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case Min:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	default:
		for i, v := range src {
			dst[i] += v
		}
	}
}
