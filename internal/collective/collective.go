// Package collective implements the collective communication primitives the
// paper's hybrid architecture is built from: ring AllReduce and ReduceScatter
// for dense gradients, AllGather for sparse baselines, and AlltoAll for the
// EmbRace embedding exchange (§2.2, §4.1).
//
// The primary API is the stateful Communicator, which owns tag allocation
// (collision-free per logical op name and step), chunked pipelining of dense
// ring transfers, and pooled scratch buffers. The free functions in this file
// are thin legacy wrappers over a throwaway Communicator: all ranks of a
// comm.Transport world call the same function with the same hand-picked tag,
// and the call returns on each rank once that rank's part is complete.
// Distinct concurrent operations must use distinct tags. New code should use
// a Communicator and logical op names instead.
package collective

import (
	"embrace/internal/comm"
	"embrace/internal/tensor"
)

func init() {
	// Tensor payloads must be registered for the TCP transport's gob
	// framing; the in-process transport ignores registration.
	comm.RegisterWireType(&tensor.Dense{})
	comm.RegisterWireType(&tensor.Sparse{})
	comm.RegisterWireType([]*tensor.Dense{})
	comm.RegisterWireType([]*tensor.Sparse{})
}

// chunkBounds returns the [lo, hi) element range of chunk i when n elements
// are split into `parts` nearly equal chunks (the ring AllReduce layout).
func chunkBounds(n, parts, i int) (lo, hi int) {
	base := n / parts
	rem := n % parts
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// Barrier blocks until every rank has entered it. It is a flat fan-in to
// rank 0 followed by a fan-out, costing O(N) messages — fine for the handful
// of per-step synchronization points the trainer needs.
func Barrier(t comm.Transport, tag int) error {
	return barrierOn(NewCommunicator(t), "legacy/barrier", tag)
}

// Broadcast copies root's buf into every rank's buf. Buffers must have equal
// length on all ranks.
func Broadcast(t comm.Transport, tag, root int, buf []float32) error {
	return broadcastOn(NewCommunicator(t), "legacy/broadcast", tag, root, buf)
}

// ReduceScatter performs the first phase of ring AllReduce: after it returns,
// every rank's chunk `rank` of buf holds the element-wise sum across all
// ranks. Other chunks hold partial garbage and must not be read. It returns
// the [lo, hi) bounds of the rank's reduced chunk.
func ReduceScatter(t comm.Transport, tag int, buf []float32) (lo, hi int, err error) {
	return NewCommunicator(t).ringReduceScatter("legacy/reduce-scatter", tag, buf, Sum)
}

// RingAllReduce sums buf element-wise across all ranks in place, using the
// bandwidth-optimal two-phase ring algorithm (Patarasuk & Yuan), the same
// algorithm NCCL and Horovod use for dense gradients. Each rank moves
// 2(N-1)/N of the buffer, matching the Table-2 AllReduce cost
// 2(N-1)(M/(N·B)+β).
func RingAllReduce(t comm.Transport, tag int, buf []float32) error {
	return NewCommunicator(t).ringAllReduce("legacy/allreduce", tag, buf, Sum)
}

// RingAllReduceOp is RingAllReduce generalized over the reduction operator.
// Sum matches RingAllReduce exactly.
func RingAllReduceOp(t comm.Transport, tag int, buf []float32, op ReduceOp) error {
	return NewCommunicator(t).ringAllReduce("legacy/allreduce-op", tag, buf, op)
}

// AllGather collects one value from every rank and returns them indexed by
// rank. Values are exchanged directly between every pair — the flat pattern
// whose cost the paper models as (N-1)(αM/B+β), i.e. poor scalability in N
// (§4.1.2). The local value is placed in the result without copying.
func AllGather[T any](t comm.Transport, tag int, local T) ([]T, error) {
	return allGatherOn(NewCommunicator(t), "legacy/allgather", tag, local)
}

// AllToAll sends send[p] to rank p and returns the values received, indexed
// by sender. It is the redistribution primitive of §4.1.1: each rank
// exchanges a 1/N-sized slice with every peer, so the total cost is
// 2(N-1)(αM/(N·B)+β) for the paper's pair of embedding AlltoAlls. The local
// slot transfers without communication.
func AllToAll[T any](t comm.Transport, tag int, send []T) ([]T, error) {
	return allToAllOn(NewCommunicator(t), "legacy/alltoall", tag, send)
}

// Gather collects one value from every rank at root; non-root ranks receive
// a nil slice. Used for metric aggregation in the trainer.
func Gather[T any](t comm.Transport, tag, root int, local T) ([]T, error) {
	return gatherOn(NewCommunicator(t), "legacy/gather", tag, root, local)
}

// SparseAllGather aggregates a row-sparse gradient the way Horovod's
// AllGather strategy does (§2.2): every rank contributes its local sparse
// tensor, receives everyone else's, and concatenates them into one
// (uncoalesced) gradient equivalent to the element-wise sum of all locals.
func SparseAllGather(t comm.Transport, tag int, local *tensor.Sparse) (*tensor.Sparse, error) {
	parts, err := AllGather(t, tag, local)
	if err != nil {
		return nil, err
	}
	return tensor.Concat(parts...)
}

// SparseAllToAll routes sparse shards: shard[p] of the local gradient goes to
// rank p, and the received shards are returned indexed by sender. EmbRace
// uses it with column-sliced gradients so each rank ends up with every
// worker's contribution to its own embedding columns.
func SparseAllToAll(t comm.Transport, tag int, shards []*tensor.Sparse) ([]*tensor.Sparse, error) {
	return AllToAll(t, tag, shards)
}

// ReduceOp is an element-wise, associative, commutative reduction.
type ReduceOp int

// Supported reductions. Sum aggregates gradients; Max/Min aggregate metrics
// (e.g. the slowest rank's step time or the worst loss).
const (
	Sum ReduceOp = iota
	Max
	Min
)

func (op ReduceOp) apply(dst []float32, src []float32) {
	switch op {
	case Max:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case Min:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	default:
		for i, v := range src {
			dst[i] += v
		}
	}
}
