// Package collective implements the collective communication primitives the
// paper's hybrid architecture is built from: ring AllReduce and ReduceScatter
// for dense gradients, AllGather for sparse baselines, and AlltoAll for the
// EmbRace embedding exchange (§2.2, §4.1).
//
// Every operation is SPMD: all ranks of a comm.Transport world call the same
// function with the same tag, and the call returns on each rank once that
// rank's part is complete. Distinct concurrent operations must use distinct
// tags; the trainer derives tags from (step, tensor-id) so the communication
// thread can keep several collectives in flight, as Horovod does.
package collective

import (
	"fmt"

	"embrace/internal/comm"
	"embrace/internal/tensor"
)

func init() {
	// Tensor payloads must be registered for the TCP transport's gob
	// framing; the in-process transport ignores registration.
	comm.RegisterWireType(&tensor.Dense{})
	comm.RegisterWireType(&tensor.Sparse{})
	comm.RegisterWireType([]*tensor.Dense{})
	comm.RegisterWireType([]*tensor.Sparse{})
}

// chunkBounds returns the [lo, hi) element range of chunk i when n elements
// are split into `parts` nearly equal chunks (the ring AllReduce layout).
func chunkBounds(n, parts, i int) (lo, hi int) {
	base := n / parts
	rem := n % parts
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// Barrier blocks until every rank has entered it. It is a flat fan-in to
// rank 0 followed by a fan-out, costing O(N) messages — fine for the handful
// of per-step synchronization points the trainer needs.
func Barrier(t comm.Transport, tag int) error {
	n := t.Size()
	if n == 1 {
		return nil
	}
	if t.Rank() == 0 {
		for p := 1; p < n; p++ {
			if _, err := t.Recv(p, tag); err != nil {
				return fmt.Errorf("barrier fan-in: %w", err)
			}
		}
		for p := 1; p < n; p++ {
			if err := t.Send(p, tag, struct{}{}); err != nil {
				return fmt.Errorf("barrier fan-out: %w", err)
			}
		}
		return nil
	}
	if err := t.Send(0, tag, struct{}{}); err != nil {
		return fmt.Errorf("barrier fan-in: %w", err)
	}
	if _, err := t.Recv(0, tag); err != nil {
		return fmt.Errorf("barrier fan-out: %w", err)
	}
	return nil
}

// Broadcast copies root's buf into every rank's buf. Buffers must have equal
// length on all ranks.
func Broadcast(t comm.Transport, tag, root int, buf []float32) error {
	n := t.Size()
	if n == 1 {
		return nil
	}
	if t.Rank() == root {
		// The payload is shared read-only by receivers, so send a copy once.
		out := append([]float32(nil), buf...)
		for p := 0; p < n; p++ {
			if p == root {
				continue
			}
			if err := t.Send(p, tag, out); err != nil {
				return fmt.Errorf("broadcast send: %w", err)
			}
		}
		return nil
	}
	payload, err := t.Recv(root, tag)
	if err != nil {
		return fmt.Errorf("broadcast recv: %w", err)
	}
	src := payload.([]float32)
	if len(src) != len(buf) {
		return fmt.Errorf("collective: broadcast length %d != local %d", len(src), len(buf))
	}
	copy(buf, src)
	return nil
}

// ReduceScatter performs the first phase of ring AllReduce: after it returns,
// every rank's chunk `rank` of buf holds the element-wise sum across all
// ranks. Other chunks hold partial garbage and must not be read. It returns
// the [lo, hi) bounds of the rank's reduced chunk.
func ReduceScatter(t comm.Transport, tag int, buf []float32) (lo, hi int, err error) {
	n, r := t.Size(), t.Rank()
	lo, hi = chunkBounds(len(buf), n, r)
	if n == 1 {
		return lo, hi, nil
	}
	right := (r + 1) % n
	left := (r - 1 + n) % n
	// At step s, rank r forwards chunk (r-s-1) mod n and accumulates into
	// chunk (r-s-2) mod n; after n-1 steps its own chunk r is complete.
	for s := 0; s < n-1; s++ {
		sendChunk := ((r-s-1)%n + 2*n) % n
		recvChunk := ((r-s-2)%n + 2*n) % n
		slo, shi := chunkBounds(len(buf), n, sendChunk)
		out := append([]float32(nil), buf[slo:shi]...)
		if err := t.Send(right, tag, out); err != nil {
			return 0, 0, fmt.Errorf("reduce-scatter send step %d: %w", s, err)
		}
		payload, err := t.Recv(left, tag)
		if err != nil {
			return 0, 0, fmt.Errorf("reduce-scatter recv step %d: %w", s, err)
		}
		in := payload.([]float32)
		rlo, rhi := chunkBounds(len(buf), n, recvChunk)
		if len(in) != rhi-rlo {
			return 0, 0, fmt.Errorf("collective: reduce-scatter chunk size %d != %d", len(in), rhi-rlo)
		}
		dst := buf[rlo:rhi]
		for i, v := range in {
			dst[i] += v
		}
	}
	return lo, hi, nil
}

// RingAllReduce sums buf element-wise across all ranks in place, using the
// bandwidth-optimal two-phase ring algorithm (Patarasuk & Yuan), the same
// algorithm NCCL and Horovod use for dense gradients. Each rank moves
// 2(N-1)/N of the buffer, matching the Table-2 AllReduce cost
// 2(N-1)(M/(N·B)+β).
func RingAllReduce(t comm.Transport, tag int, buf []float32) error {
	n, r := t.Size(), t.Rank()
	if n == 1 {
		return nil
	}
	if _, _, err := ReduceScatter(t, tag, buf); err != nil {
		return err
	}
	// Phase 2: ring allgather of the reduced chunks. At step s, rank r sends
	// chunk (r-s) mod n, which it completed in phase 1 (s=0) or just
	// received (s>0), and receives chunk (r-s-1) mod n from the left.
	right := (r + 1) % n
	left := (r - 1 + n) % n
	for s := 0; s < n-1; s++ {
		sendChunk := ((r-s)%n + n) % n
		recvChunk := ((r-s-1)%n + n) % n
		slo, shi := chunkBounds(len(buf), n, sendChunk)
		out := append([]float32(nil), buf[slo:shi]...)
		if err := t.Send(right, tag, out); err != nil {
			return fmt.Errorf("allreduce gather send step %d: %w", s, err)
		}
		payload, err := t.Recv(left, tag)
		if err != nil {
			return fmt.Errorf("allreduce gather recv step %d: %w", s, err)
		}
		in := payload.([]float32)
		rlo, rhi := chunkBounds(len(buf), n, recvChunk)
		if len(in) != rhi-rlo {
			return fmt.Errorf("collective: allgather chunk size %d != %d", len(in), rhi-rlo)
		}
		copy(buf[rlo:rhi], in)
	}
	return nil
}

// AllGather collects one value from every rank and returns them indexed by
// rank. Values are exchanged directly between every pair — the flat pattern
// whose cost the paper models as (N-1)(αM/B+β), i.e. poor scalability in N
// (§4.1.2). The local value is placed in the result without copying.
func AllGather[T any](t comm.Transport, tag int, local T) ([]T, error) {
	n, r := t.Size(), t.Rank()
	out := make([]T, n)
	out[r] = local
	for p := 0; p < n; p++ {
		if p == r {
			continue
		}
		if err := t.Send(p, tag, local); err != nil {
			return nil, fmt.Errorf("allgather send to %d: %w", p, err)
		}
	}
	for p := 0; p < n; p++ {
		if p == r {
			continue
		}
		payload, err := t.Recv(p, tag)
		if err != nil {
			return nil, fmt.Errorf("allgather recv from %d: %w", p, err)
		}
		v, ok := payload.(T)
		if !ok {
			return nil, fmt.Errorf("collective: allgather type %T from rank %d", payload, p)
		}
		out[p] = v
	}
	return out, nil
}

// AllToAll sends send[p] to rank p and returns the values received, indexed
// by sender. It is the redistribution primitive of §4.1.1: each rank
// exchanges a 1/N-sized slice with every peer, so the total cost is
// 2(N-1)(αM/(N·B)+β) for the paper's pair of embedding AlltoAlls. The local
// slot transfers without communication.
func AllToAll[T any](t comm.Transport, tag int, send []T) ([]T, error) {
	n, r := t.Size(), t.Rank()
	if len(send) != n {
		return nil, fmt.Errorf("collective: alltoall wants %d send parts, got %d", n, len(send))
	}
	out := make([]T, n)
	out[r] = send[r]
	for p := 0; p < n; p++ {
		if p == r {
			continue
		}
		if err := t.Send(p, tag, send[p]); err != nil {
			return nil, fmt.Errorf("alltoall send to %d: %w", p, err)
		}
	}
	for p := 0; p < n; p++ {
		if p == r {
			continue
		}
		payload, err := t.Recv(p, tag)
		if err != nil {
			return nil, fmt.Errorf("alltoall recv from %d: %w", p, err)
		}
		v, ok := payload.(T)
		if !ok {
			return nil, fmt.Errorf("collective: alltoall type %T from rank %d", payload, p)
		}
		out[p] = v
	}
	return out, nil
}

// Gather collects one value from every rank at root; non-root ranks receive
// a nil slice. Used for metric aggregation in the trainer.
func Gather[T any](t comm.Transport, tag, root int, local T) ([]T, error) {
	n, r := t.Size(), t.Rank()
	if r != root {
		if err := t.Send(root, tag, local); err != nil {
			return nil, fmt.Errorf("gather send: %w", err)
		}
		return nil, nil
	}
	out := make([]T, n)
	out[r] = local
	for p := 0; p < n; p++ {
		if p == r {
			continue
		}
		payload, err := t.Recv(p, tag)
		if err != nil {
			return nil, fmt.Errorf("gather recv from %d: %w", p, err)
		}
		v, ok := payload.(T)
		if !ok {
			return nil, fmt.Errorf("collective: gather type %T from rank %d", payload, p)
		}
		out[p] = v
	}
	return out, nil
}

// SparseAllGather aggregates a row-sparse gradient the way Horovod's
// AllGather strategy does (§2.2): every rank contributes its local sparse
// tensor, receives everyone else's, and concatenates them into one
// (uncoalesced) gradient equivalent to the element-wise sum of all locals.
func SparseAllGather(t comm.Transport, tag int, local *tensor.Sparse) (*tensor.Sparse, error) {
	parts, err := AllGather(t, tag, local)
	if err != nil {
		return nil, err
	}
	return tensor.Concat(parts...)
}

// SparseAllToAll routes sparse shards: shard[p] of the local gradient goes to
// rank p, and the received shards are returned indexed by sender. EmbRace
// uses it with column-sliced gradients so each rank ends up with every
// worker's contribution to its own embedding columns.
func SparseAllToAll(t comm.Transport, tag int, shards []*tensor.Sparse) ([]*tensor.Sparse, error) {
	return AllToAll(t, tag, shards)
}

// ReduceOp is an element-wise, associative, commutative reduction.
type ReduceOp int

// Supported reductions. Sum aggregates gradients; Max/Min aggregate metrics
// (e.g. the slowest rank's step time or the worst loss).
const (
	Sum ReduceOp = iota
	Max
	Min
)

func (op ReduceOp) apply(dst []float32, src []float32) {
	switch op {
	case Max:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case Min:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	default:
		for i, v := range src {
			dst[i] += v
		}
	}
}

// RingAllReduceOp is RingAllReduce generalized over the reduction operator.
// Sum matches RingAllReduce exactly.
func RingAllReduceOp(t comm.Transport, tag int, buf []float32, op ReduceOp) error {
	n, r := t.Size(), t.Rank()
	if n == 1 {
		return nil
	}
	right := (r + 1) % n
	left := (r - 1 + n) % n
	// Phase 1: reduce-scatter with op.
	for s := 0; s < n-1; s++ {
		sendChunk := ((r-s-1)%n + 2*n) % n
		recvChunk := ((r-s-2)%n + 2*n) % n
		slo, shi := chunkBounds(len(buf), n, sendChunk)
		out := append([]float32(nil), buf[slo:shi]...)
		if err := t.Send(right, tag, out); err != nil {
			return fmt.Errorf("allreduce-op rs send step %d: %w", s, err)
		}
		payload, err := t.Recv(left, tag)
		if err != nil {
			return fmt.Errorf("allreduce-op rs recv step %d: %w", s, err)
		}
		in := payload.([]float32)
		rlo, rhi := chunkBounds(len(buf), n, recvChunk)
		if len(in) != rhi-rlo {
			return fmt.Errorf("collective: allreduce-op chunk %d != %d", len(in), rhi-rlo)
		}
		op.apply(buf[rlo:rhi], in)
	}
	// Phase 2: allgather the reduced chunks.
	for s := 0; s < n-1; s++ {
		sendChunk := ((r-s)%n + n) % n
		recvChunk := ((r-s-1)%n + n) % n
		slo, shi := chunkBounds(len(buf), n, sendChunk)
		out := append([]float32(nil), buf[slo:shi]...)
		if err := t.Send(right, tag, out); err != nil {
			return fmt.Errorf("allreduce-op ag send step %d: %w", s, err)
		}
		payload, err := t.Recv(left, tag)
		if err != nil {
			return fmt.Errorf("allreduce-op ag recv step %d: %w", s, err)
		}
		in := payload.([]float32)
		rlo, rhi := chunkBounds(len(buf), n, recvChunk)
		if len(in) != rhi-rlo {
			return fmt.Errorf("collective: allreduce-op chunk %d != %d", len(in), rhi-rlo)
		}
		copy(buf[rlo:rhi], in)
	}
	return nil
}
