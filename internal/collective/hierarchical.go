package collective

import (
	"fmt"

	"embrace/internal/comm"
)

// Hierarchical (topology-aware) AllReduce, the related-work optimization the
// paper cites as orthogonal to EmbRace (§6: "applying topology-aware
// hierarchical collective communication"). On a cluster of n nodes with w
// workers each, a flat ring crosses the slow inter-node links 2(N-1) times;
// the hierarchical variant reduces inside each node first, runs the
// inter-node exchange once per node, and broadcasts back — trading ring
// optimality for far fewer slow-link crossings. It composes with EmbRace's
// dense path: any strategy can aggregate its dense gradients this way.
//
// Ranks are grouped node-contiguously: node k owns ranks
// [k*w, (k+1)*w), matching how modelzoo lays clusters out.

// tag offsets for the three phases; callers reserve one tag and the phases
// derive disjoint subspaces from it.
const (
	hierPhaseReduce = iota
	hierPhaseInter
	hierPhaseBcast
	hierPhases
)

// HierarchicalAllReduce sums buf element-wise across all ranks in place
// using the three-phase node-aware algorithm: (1) intra-node reduce to the
// node leader, (2) ring AllReduce among leaders, (3) intra-node broadcast.
// workersPerNode must divide the world size. With workersPerNode == 1 it
// degenerates to a flat ring AllReduce.
func HierarchicalAllReduce(t comm.Transport, tag, workersPerNode int, buf []float32) error {
	n, r := t.Size(), t.Rank()
	if workersPerNode <= 0 {
		return fmt.Errorf("collective: workersPerNode must be positive, got %d", workersPerNode)
	}
	if n%workersPerNode != 0 {
		return fmt.Errorf("collective: world size %d not divisible by %d workers/node", n, workersPerNode)
	}
	if n == 1 {
		return nil
	}
	if workersPerNode == 1 {
		return RingAllReduce(t, tag*hierPhases+hierPhaseInter, buf)
	}

	leader := (r / workersPerNode) * workersPerNode
	baseTag := tag * hierPhases

	// Phase 1: intra-node reduce to the leader.
	if r == leader {
		for p := leader + 1; p < leader+workersPerNode; p++ {
			payload, err := t.Recv(p, baseTag+hierPhaseReduce)
			if err != nil {
				return fmt.Errorf("hier reduce recv from %d: %w", p, err)
			}
			in := payload.([]float32)
			if len(in) != len(buf) {
				return fmt.Errorf("collective: hier reduce length %d != %d", len(in), len(buf))
			}
			for i, v := range in {
				buf[i] += v
			}
		}
	} else {
		out := append([]float32(nil), buf...)
		if err := t.Send(leader, baseTag+hierPhaseReduce, out); err != nil {
			return fmt.Errorf("hier reduce send: %w", err)
		}
	}

	// Phase 2: leaders exchange node sums. Every rank participates in the
	// transport world, but only leaders carry payload; non-leaders skip.
	if r == leader {
		if err := leaderRingAllReduce(t, baseTag+hierPhaseInter, workersPerNode, buf); err != nil {
			return err
		}
		// Phase 3: broadcast the result back within the node.
		out := append([]float32(nil), buf...)
		for p := leader + 1; p < leader+workersPerNode; p++ {
			if err := t.Send(p, baseTag+hierPhaseBcast, out); err != nil {
				return fmt.Errorf("hier bcast send to %d: %w", p, err)
			}
		}
		return nil
	}
	payload, err := t.Recv(leader, baseTag+hierPhaseBcast)
	if err != nil {
		return fmt.Errorf("hier bcast recv: %w", err)
	}
	in := payload.([]float32)
	if len(in) != len(buf) {
		return fmt.Errorf("collective: hier bcast length %d != %d", len(in), len(buf))
	}
	copy(buf, in)
	return nil
}

// leaderRingAllReduce runs a ring AllReduce among the node leaders (ranks
// 0, w, 2w, ...) of the world.
func leaderRingAllReduce(t comm.Transport, tag, workersPerNode int, buf []float32) error {
	nodes := t.Size() / workersPerNode
	if nodes == 1 {
		return nil
	}
	me := t.Rank() / workersPerNode
	right := ((me + 1) % nodes) * workersPerNode
	left := ((me - 1 + nodes) % nodes) * workersPerNode

	// Reduce-scatter among leaders.
	for s := 0; s < nodes-1; s++ {
		sendChunk := ((me-s-1)%nodes + 2*nodes) % nodes
		recvChunk := ((me-s-2)%nodes + 2*nodes) % nodes
		slo, shi := chunkBounds(len(buf), nodes, sendChunk)
		out := append([]float32(nil), buf[slo:shi]...)
		if err := t.Send(right, tag, out); err != nil {
			return fmt.Errorf("leader rs send step %d: %w", s, err)
		}
		payload, err := t.Recv(left, tag)
		if err != nil {
			return fmt.Errorf("leader rs recv step %d: %w", s, err)
		}
		in := payload.([]float32)
		rlo, rhi := chunkBounds(len(buf), nodes, recvChunk)
		if len(in) != rhi-rlo {
			return fmt.Errorf("collective: leader rs chunk %d != %d", len(in), rhi-rlo)
		}
		dst := buf[rlo:rhi]
		for i, v := range in {
			dst[i] += v
		}
	}
	// All-gather among leaders.
	for s := 0; s < nodes-1; s++ {
		sendChunk := ((me-s)%nodes + nodes) % nodes
		recvChunk := ((me-s-1)%nodes + nodes) % nodes
		slo, shi := chunkBounds(len(buf), nodes, sendChunk)
		out := append([]float32(nil), buf[slo:shi]...)
		if err := t.Send(right, tag, out); err != nil {
			return fmt.Errorf("leader ag send step %d: %w", s, err)
		}
		payload, err := t.Recv(left, tag)
		if err != nil {
			return fmt.Errorf("leader ag recv step %d: %w", s, err)
		}
		in := payload.([]float32)
		rlo, rhi := chunkBounds(len(buf), nodes, recvChunk)
		if len(in) != rhi-rlo {
			return fmt.Errorf("collective: leader ag chunk %d != %d", len(in), rhi-rlo)
		}
		copy(buf[rlo:rhi], in)
	}
	return nil
}
