package collective

import (
	"fmt"
)

// Hierarchical (topology-aware) AllReduce, the related-work optimization the
// paper cites as orthogonal to EmbRace (§6: "applying topology-aware
// hierarchical collective communication"). On a cluster of n nodes with w
// workers each, a flat ring crosses the slow inter-node links 2(N-1) times;
// the hierarchical variant reduces inside each node first, runs the
// inter-node exchange once per node, and broadcasts back — trading ring
// optimality for far fewer slow-link crossings. It composes with EmbRace's
// dense path: any strategy can aggregate its dense gradients this way.
//
// Ranks are grouped node-contiguously: node k owns ranks
// [k*w, (k+1)*w), matching how modelzoo lays clusters out.

// hierarchical phase names; each phase gets its own op so the Communicator's
// collision-checked tag allocation keeps the three message streams disjoint.
const (
	hierOpReduce = "/hier-reduce"
	hierOpInter  = "/hier-inter"
	hierOpBcast  = "/hier-bcast"
)

// HierarchicalAllReduce sums buf element-wise across all ranks in place
// using the three-phase node-aware algorithm: (1) intra-node reduce to the
// node leader, (2) ring AllReduce among leaders, (3) intra-node broadcast.
// workersPerNode must divide the world size. With workersPerNode == 1 it
// degenerates to a flat ring AllReduce.
func (c *Communicator) HierarchicalAllReduce(op string, step, workersPerNode int, buf []float32) error {
	n, r := c.t.Size(), c.t.Rank()
	if workersPerNode <= 0 {
		return fmt.Errorf("collective: workersPerNode must be positive, got %d", workersPerNode)
	}
	if n%workersPerNode != 0 {
		return fmt.Errorf("collective: world size %d not divisible by %d workers/node", n, workersPerNode)
	}
	if n == 1 {
		return nil
	}
	if workersPerNode == 1 {
		return c.AllReduce(op, step, buf)
	}

	leader := (r / workersPerNode) * workersPerNode
	reduceOp := op + hierOpReduce
	reduceTag, err := c.Tag(reduceOp, step)
	if err != nil {
		return err
	}
	bcastOp := op + hierOpBcast
	bcastTag, err := c.Tag(bcastOp, step)
	if err != nil {
		return err
	}

	// Phase 1: intra-node reduce to the leader.
	if r == leader {
		for p := leader + 1; p < leader+workersPerNode; p++ {
			payload, err := c.recvRaw(reduceOp, p, reduceTag)
			if err != nil {
				return fmt.Errorf("hier reduce recv from %d: %w", p, err)
			}
			in, ok := payload.([]float32)
			if !ok {
				return fmt.Errorf("collective: hier reduce payload %T", payload)
			}
			if len(in) != len(buf) {
				return fmt.Errorf("collective: hier reduce length %d != %d", len(in), len(buf))
			}
			for i, v := range in {
				buf[i] += v
			}
			c.putBuf(in)
		}
	} else {
		out := c.getBuf(len(buf))
		copy(out, buf)
		if err := c.sendRaw(reduceOp, leader, reduceTag, out); err != nil {
			return fmt.Errorf("hier reduce send: %w", err)
		}
	}

	// Phase 2: leaders exchange node sums. Every rank participates in the
	// transport world, but only leaders carry payload; non-leaders skip.
	if r == leader {
		interOp := op + hierOpInter
		interTag, err := c.Tag(interOp, step)
		if err != nil {
			return err
		}
		if err := c.leaderRingAllReduce(interOp, interTag, workersPerNode, buf); err != nil {
			return err
		}
		// Phase 3: broadcast the result back within the node.
		for p := leader + 1; p < leader+workersPerNode; p++ {
			out := c.getBuf(len(buf))
			copy(out, buf)
			if err := c.sendRaw(bcastOp, p, bcastTag, out); err != nil {
				return fmt.Errorf("hier bcast send to %d: %w", p, err)
			}
		}
		return nil
	}
	payload, err := c.recvRaw(bcastOp, leader, bcastTag)
	if err != nil {
		return fmt.Errorf("hier bcast recv: %w", err)
	}
	in, ok := payload.([]float32)
	if !ok {
		return fmt.Errorf("collective: hier bcast payload %T", payload)
	}
	if len(in) != len(buf) {
		return fmt.Errorf("collective: hier bcast length %d != %d", len(in), len(buf))
	}
	copy(buf, in)
	c.putBuf(in)
	return nil
}

// leaderRingAllReduce runs a ring AllReduce among the node leaders (ranks
// 0, w, 2w, ...) of the world, under an explicit tag.
func (c *Communicator) leaderRingAllReduce(op string, tag, workersPerNode int, buf []float32) error {
	nodes := c.t.Size() / workersPerNode
	if nodes == 1 {
		return nil
	}
	me := c.t.Rank() / workersPerNode
	right := ((me + 1) % nodes) * workersPerNode
	left := ((me - 1 + nodes) % nodes) * workersPerNode

	exchange := func(phase string, s, sendChunk, recvChunk int, combine func(dst, src []float32)) error {
		slo, shi := chunkBounds(len(buf), nodes, sendChunk)
		out := c.getBuf(shi - slo)
		copy(out, buf[slo:shi])
		if err := c.sendRaw(op, right, tag, out); err != nil {
			return fmt.Errorf("leader %s send step %d: %w", phase, s, err)
		}
		payload, err := c.recvRaw(op, left, tag)
		if err != nil {
			return fmt.Errorf("leader %s recv step %d: %w", phase, s, err)
		}
		in, ok := payload.([]float32)
		if !ok {
			return fmt.Errorf("collective: leader %s payload %T", phase, payload)
		}
		rlo, rhi := chunkBounds(len(buf), nodes, recvChunk)
		if len(in) != rhi-rlo {
			return fmt.Errorf("collective: leader %s chunk %d != %d", phase, len(in), rhi-rlo)
		}
		combine(buf[rlo:rhi], in)
		c.putBuf(in)
		return nil
	}

	// Reduce-scatter among leaders.
	for s := 0; s < nodes-1; s++ {
		sendChunk := ((me-s-1)%nodes + 2*nodes) % nodes
		recvChunk := ((me-s-2)%nodes + 2*nodes) % nodes
		err := exchange("rs", s, sendChunk, recvChunk, Sum.apply)
		if err != nil {
			return err
		}
	}
	// All-gather among leaders.
	for s := 0; s < nodes-1; s++ {
		sendChunk := ((me-s)%nodes + nodes) % nodes
		recvChunk := ((me-s-1)%nodes + nodes) % nodes
		err := exchange("ag", s, sendChunk, recvChunk,
			func(dst, src []float32) { copy(dst, src) })
		if err != nil {
			return err
		}
	}
	return nil
}
