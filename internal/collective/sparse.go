package collective

import (
	"fmt"

	"embrace/internal/comm"
	"embrace/internal/tensor"
)

// AlltoAllSparse is the zero-steady-state-allocation sparse exchange of the
// hot-path rebuild. Instead of shipping *tensor.Sparse values and
// concatenating the results (SparseAllToAll + tensor.Concat, which allocates
// a fresh tensor per shard per step), each peer stream is sent as a
// length-prefixed header followed by the raw index and value slices drawn
// from the Communicator's buffer pools, and every received stream is copied
// straight into a caller-owned SparseShards arena. The arena's backing
// arrays grow to a high-water mark and are then reused forever.
//
// Streams ride sendRaw/recvRaw, so they inherit the seq-framing, duplicate
// suppression, reorder parking and transient-send retry of every other
// collective — chaos self-healing holds unchanged, which the chaos
// equivalence tests assert.
//
// The self shard never touches the wire, the observer, or the pooled wire
// buffers: rank r's own rows are copied directly into the arena at sender
// position r (self-send elision).

// sparseStreamHeader announces one AlltoAllSparse peer stream: how many rows
// follow and how many values each row carries (senders may hold different
// column widths, e.g. a remainder-bearing column partition). Zero rows means
// the index/value messages are omitted entirely.
type sparseStreamHeader struct {
	Rows int32
	Dim  int32
}

func init() {
	comm.RegisterWireType(sparseStreamHeader{})
}

// SparseShards is the reusable receive arena of AlltoAllSparse. Shards are
// stored back to back in sender order, so when every sender shares one column
// width the arena itself is the concatenation tensor.Concat would have
// produced — Merged() exposes it without copying, and ShardView slices out
// one sender's rows. Senders may also carry different widths (a
// remainder-bearing column partition); ShardView stays exact then, while
// Merged()'s single-dim view is meaningless and must not be used. The arena
// is owned by one exchange call site and must not be shared between
// concurrent exchanges; its contents are valid until the next AlltoAllSparse
// call that fills it.
//
//embrace:arena
type SparseShards struct {
	merged tensor.Sparse
	ends   []int   // ends[p] = exclusive row end of sender p's shard
	vends  []int   // vends[p] = exclusive value end of sender p's shard
	dims   []int32 // dims[p] = sender p's column width
}

// Merged returns the concatenation of all received shards in sender order —
// bit-identical to tensor.Concat over SparseAllToAll's results. Only
// meaningful when every sender shares the receiver's column width.
//
// aliases: the returned tensor is a view of the arena, valid until the next
// exchange into it.
//
//embrace:arena
func (a *SparseShards) Merged() *tensor.Sparse { return &a.merged }

// Senders returns the number of shards held (the world size of the exchange).
func (a *SparseShards) Senders() int { return len(a.ends) }

// ShardView makes dst a view of sender p's rows inside the arena. No data is
// copied; dst shares the arena's backing arrays and is valid until the next
// exchange into the arena.
//
//embrace:hotpath
//embrace:arena dst
func (a *SparseShards) ShardView(p int, dst *tensor.Sparse) {
	lo, vlo := 0, 0
	if p > 0 {
		lo, vlo = a.ends[p-1], a.vends[p-1]
	}
	hi, vhi := a.ends[p], a.vends[p]
	dst.NumRows, dst.Dim = a.merged.NumRows, int(a.dims[p])
	dst.Indices = a.merged.Indices[lo:hi:hi]
	dst.Vals = a.merged.Vals[vlo:vhi:vhi]
}

// reset prepares the arena for an n-sender exchange of numRows-row shards,
// keeping its backing arrays. dim is the receiver's own width, the default
// for senders until their streams say otherwise.
func (a *SparseShards) reset(n, numRows, dim int) {
	if cap(a.ends) < n {
		a.ends = make([]int, n)
		a.vends = make([]int, n)
		a.dims = make([]int32, n)
	}
	a.ends = a.ends[:n]
	a.vends = a.vends[:n]
	a.dims = a.dims[:n]
	a.merged.Reset()
	a.merged.NumRows, a.merged.Dim = numRows, dim
}

// appendShard copies one received (or self) stream into the arena.
//
//embrace:hotpath
func (a *SparseShards) appendShard(p int, dim int32, idx []int64, vals []float32) {
	a.merged.Indices = append(a.merged.Indices, idx...)
	a.merged.Vals = append(a.merged.Vals, vals...)
	a.ends[p] = len(a.merged.Indices)
	a.vends[p] = len(a.merged.Vals)
	a.dims[p] = dim
}

// AlltoAllSparse routes shard send[p] to rank p and fills arena with the
// received shards in sender order. Senders may carry different column widths
// (each stream's header says its own); when every sender matches the
// receiver's width the merged arena is bit-identical to
// tensor.Concat(SparseAllToAll(...)). Per-sender views come from ShardView
// either way.
//
//embrace:hotpath
//embrace:arena reuse arena
func (c *Communicator) AlltoAllSparse(op string, step int, send []*tensor.Sparse, arena *SparseShards) error {
	n, r := c.t.Size(), c.t.Rank()
	if len(send) != n {
		return fmt.Errorf("collective: alltoallsparse wants %d send parts, got %d", n, len(send))
	}
	tag, err := c.Tag(op, step)
	if err != nil {
		return err
	}
	numRows, dim := send[r].NumRows, send[r].Dim

	// Send phase: every peer gets a header, then — when non-empty — the
	// index and value streams in pooled wire buffers. Ownership of the
	// buffers travels with the message; the receiver recycles them. The
	// self shard is skipped entirely.
	for p := 0; p < n; p++ {
		if p == r {
			continue
		}
		sh := send[p]
		if err := c.sendRaw(op, p, tag, sparseStreamHeader{Rows: int32(len(sh.Indices)), Dim: int32(sh.Dim)}); err != nil {
			return fmt.Errorf("alltoallsparse header to %d: %w", p, err)
		}
		if len(sh.Indices) == 0 {
			continue
		}
		ibuf := c.getBufI64(len(sh.Indices))
		copy(ibuf, sh.Indices)
		if err := c.sendRaw(op, p, tag, ibuf); err != nil {
			return fmt.Errorf("alltoallsparse indices to %d: %w", p, err)
		}
		vbuf := c.getBuf(len(sh.Vals))
		copy(vbuf, sh.Vals)
		if err := c.sendRaw(op, p, tag, vbuf); err != nil {
			return fmt.Errorf("alltoallsparse values to %d: %w", p, err)
		}
	}

	// Receive phase, in sender order, so the arena is the sender-ordered
	// concatenation. Rank r's own shard is copied in at its position
	// without ever having been packed.
	arena.reset(n, numRows, dim)
	for p := 0; p < n; p++ {
		if p == r {
			arena.appendShard(p, int32(send[r].Dim), send[r].Indices, send[r].Vals)
			continue
		}
		payload, err := c.recvRaw(op, p, tag)
		if err != nil {
			return fmt.Errorf("alltoallsparse header from %d: %w", p, err)
		}
		hdr, ok := payload.(sparseStreamHeader)
		if !ok {
			return fmt.Errorf("collective: alltoallsparse header type %T from rank %d", payload, p)
		}
		if hdr.Rows == 0 {
			arena.appendShard(p, hdr.Dim, nil, nil)
			continue
		}
		payload, err = c.recvRaw(op, p, tag)
		if err != nil {
			return fmt.Errorf("alltoallsparse indices from %d: %w", p, err)
		}
		idx, ok := payload.([]int64)
		if !ok {
			return fmt.Errorf("collective: alltoallsparse index type %T from rank %d", payload, p)
		}
		payload, err = c.recvRaw(op, p, tag)
		if err != nil {
			return fmt.Errorf("alltoallsparse values from %d: %w", p, err)
		}
		vals, ok := payload.([]float32)
		if !ok {
			return fmt.Errorf("collective: alltoallsparse value type %T from rank %d", payload, p)
		}
		if len(idx) != int(hdr.Rows) || len(vals) != int(hdr.Rows)*int(hdr.Dim) {
			return fmt.Errorf("collective: alltoallsparse stream from rank %d: %d indices, %d values, header %d rows x dim %d",
				p, len(idx), len(vals), hdr.Rows, hdr.Dim)
		}
		arena.appendShard(p, hdr.Dim, idx, vals)
		c.putBufI64(idx)
		c.putBuf(vals)
	}
	return nil
}
