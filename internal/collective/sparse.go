package collective

import (
	"fmt"
	"time"

	"embrace/internal/comm"
	"embrace/internal/tensor"
)

// AlltoAllSparse is the zero-steady-state-allocation sparse exchange of the
// hot-path rebuild. Instead of shipping *tensor.Sparse values and
// concatenating the results (SparseAllToAll + tensor.Concat, which allocates
// a fresh tensor per shard per step), each peer stream is sent as a
// length-prefixed header followed by the raw index and value slices drawn
// from the Communicator's buffer pools, and every received stream is copied
// straight into a caller-owned SparseShards arena. The arena's backing
// arrays grow to a high-water mark and are then reused forever.
//
// Streams ride sendRaw/recvRaw, so they inherit the seq-framing, duplicate
// suppression, reorder parking and transient-send retry of every other
// collective — chaos self-healing holds unchanged, which the chaos
// equivalence tests assert.
//
// The self shard never touches the wire, the observer, or the pooled wire
// buffers: rank r's own rows are copied directly into the arena at sender
// position r (self-send elision).

// RowClass tells a SparseCodec which scheduling class the rows of a shard
// belong to, so dual-level codecs can pick their error bound from the
// prior/delayed split the EmbRace scheduler already maintains (§4.2.2):
// prior rows feed the very next step's lookup and get the tighter bound,
// delayed rows are harvested a step later and tolerate the looser one.
type RowClass uint8

const (
	// RowsWhole marks an unsplit exchange (no scheduler, or serving row
	// fetches). Codecs treat it like RowsPrior: the conservative bound.
	RowsWhole RowClass = iota
	// RowsPrior marks rows of the prefetched next batch, exchanged and
	// applied immediately.
	RowsPrior
	// RowsDelayed marks rows exchanged by the background goroutine and
	// folded in at the next step's start.
	RowsDelayed
)

// SparseCodec compresses one peer shard of a sparse exchange into a wire
// payload and back. It is declared here, next to the exchange that uses it,
// so internal/compress can provide implementations without an import cycle
// (compress already imports collective for the dense allreduce path) — the
// same structural-interface move that lets trace.Recorder satisfy Observer.
//
// Both methods are append-style and must not allocate in steady state: dst
// and the decode targets come from pooled or arena-backed memory that grows
// to a high-water mark. DecodeShard appends exactly rows indices and
// rows*dim values onto idx and vals and returns the extended slices; it must
// bounds-check src and return an error (never panic) on truncated or
// corrupt payloads.
type SparseCodec interface {
	// Name identifies the codec in logs, benches and config errors.
	Name() string
	// Lossless reports whether decode reproduces every value bit-identically.
	Lossless() bool
	// AppendShard encodes rows of width dim onto dst and returns it.
	AppendShard(dst []byte, idx []int64, vals []float32, dim int, class RowClass) []byte
	// DecodeShard decodes rows of width dim from src, appending onto idx and
	// vals.
	DecodeShard(src []byte, rows, dim int, idx []int64, vals []float32) ([]int64, []float32, error)
}

func init() {
	// Compressed payloads must survive the gob-encoded TCP transport too.
	comm.RegisterWireType([]byte{})
}

// sparseStreamHeader announces one AlltoAllSparse peer stream: how many rows
// follow and how many values each row carries (senders may hold different
// column widths, e.g. a remainder-bearing column partition). Zero rows means
// the index/value messages are omitted entirely.
type sparseStreamHeader struct {
	Rows int32
	Dim  int32
}

func init() {
	comm.RegisterWireType(sparseStreamHeader{})
}

// SparseShards is the reusable receive arena of AlltoAllSparse. Shards are
// stored back to back in sender order, so when every sender shares one column
// width the arena itself is the concatenation tensor.Concat would have
// produced — Merged() exposes it without copying, and ShardView slices out
// one sender's rows. Senders may also carry different widths (a
// remainder-bearing column partition); ShardView stays exact then, while
// Merged()'s single-dim view is meaningless and must not be used. The arena
// is owned by one exchange call site and must not be shared between
// concurrent exchanges; its contents are valid until the next AlltoAllSparse
// call that fills it.
//
//embrace:arena
type SparseShards struct {
	merged tensor.Sparse
	ends   []int   // ends[p] = exclusive row end of sender p's shard
	vends  []int   // vends[p] = exclusive value end of sender p's shard
	dims   []int32 // dims[p] = sender p's column width
}

// Merged returns the concatenation of all received shards in sender order —
// bit-identical to tensor.Concat over SparseAllToAll's results. Only
// meaningful when every sender shares the receiver's column width.
//
// aliases: the returned tensor is a view of the arena, valid until the next
// exchange into it.
//
//embrace:arena
func (a *SparseShards) Merged() *tensor.Sparse { return &a.merged }

// Senders returns the number of shards held (the world size of the exchange).
func (a *SparseShards) Senders() int { return len(a.ends) }

// ShardView makes dst a view of sender p's rows inside the arena. No data is
// copied; dst shares the arena's backing arrays and is valid until the next
// exchange into the arena.
//
//embrace:hotpath
//embrace:arena dst
func (a *SparseShards) ShardView(p int, dst *tensor.Sparse) {
	lo, vlo := 0, 0
	if p > 0 {
		lo, vlo = a.ends[p-1], a.vends[p-1]
	}
	hi, vhi := a.ends[p], a.vends[p]
	dst.NumRows, dst.Dim = a.merged.NumRows, int(a.dims[p])
	dst.Indices = a.merged.Indices[lo:hi:hi]
	dst.Vals = a.merged.Vals[vlo:vhi:vhi]
}

// reset prepares the arena for an n-sender exchange of numRows-row shards,
// keeping its backing arrays. dim is the receiver's own width, the default
// for senders until their streams say otherwise.
func (a *SparseShards) reset(n, numRows, dim int) {
	if cap(a.ends) < n {
		a.ends = make([]int, n)
		a.vends = make([]int, n)
		a.dims = make([]int32, n)
	}
	a.ends = a.ends[:n]
	a.vends = a.vends[:n]
	a.dims = a.dims[:n]
	a.merged.Reset()
	a.merged.NumRows, a.merged.Dim = numRows, dim
}

// appendShard copies one received (or self) stream into the arena.
//
//embrace:hotpath
func (a *SparseShards) appendShard(p int, dim int32, idx []int64, vals []float32) {
	a.merged.Indices = append(a.merged.Indices, idx...)
	a.merged.Vals = append(a.merged.Vals, vals...)
	a.ends[p] = len(a.merged.Indices)
	a.vends[p] = len(a.merged.Vals)
	a.dims[p] = dim
}

// appendDecoded decodes one received wire payload straight onto the arena's
// backing arrays — the codec's decode scratch IS the arena, so the
// compressed path keeps the zero-steady-state-allocation property of the raw
// one.
//
//embrace:hotpath
func (a *SparseShards) appendDecoded(p int, rows int, dim int32, src []byte, codec SparseCodec) error {
	lo, vlo := len(a.merged.Indices), len(a.merged.Vals)
	idx, vals, err := codec.DecodeShard(src, rows, int(dim), a.merged.Indices, a.merged.Vals)
	if err != nil {
		return err
	}
	if len(idx)-lo != rows || len(vals)-vlo != rows*int(dim) {
		return fmt.Errorf("collective: codec %s decoded %d rows, %d values; header %d rows x dim %d",
			codec.Name(), len(idx)-lo, len(vals)-vlo, rows, dim)
	}
	a.merged.Indices = idx
	a.merged.Vals = vals
	a.ends[p] = len(a.merged.Indices)
	a.vends[p] = len(a.merged.Vals)
	a.dims[p] = dim
	return nil
}

// sparseRawBytes is the uncompressed wire footprint of a shard: 8 bytes per
// index, 4 per value — what AlltoAllSparse would have shipped.
func sparseRawBytes(rows, dim int) int { return rows * (8 + 4*dim) }

// AlltoAllSparse routes shard send[p] to rank p and fills arena with the
// received shards in sender order. Senders may carry different column widths
// (each stream's header says its own); when every sender matches the
// receiver's width the merged arena is bit-identical to
// tensor.Concat(SparseAllToAll(...)). Per-sender views come from ShardView
// either way.
//
//embrace:hotpath
//embrace:arena reuse arena
func (c *Communicator) AlltoAllSparse(op string, step int, send []*tensor.Sparse, arena *SparseShards) error {
	n, r := c.t.Size(), c.t.Rank()
	if len(send) != n {
		return fmt.Errorf("collective: alltoallsparse wants %d send parts, got %d", n, len(send))
	}
	tag, err := c.Tag(op, step)
	if err != nil {
		return err
	}
	numRows, dim := send[r].NumRows, send[r].Dim

	// Send phase: every peer gets a header, then — when non-empty — the
	// index and value streams in pooled wire buffers. Ownership of the
	// buffers travels with the message; the receiver recycles them. The
	// self shard is skipped entirely.
	for p := 0; p < n; p++ {
		if p == r {
			continue
		}
		sh := send[p]
		if err := c.sendRaw(op, p, tag, sparseStreamHeader{Rows: int32(len(sh.Indices)), Dim: int32(sh.Dim)}); err != nil {
			return fmt.Errorf("alltoallsparse header to %d: %w", p, err)
		}
		if len(sh.Indices) == 0 {
			continue
		}
		ibuf := c.getBufI64(len(sh.Indices))
		copy(ibuf, sh.Indices)
		if err := c.sendRaw(op, p, tag, ibuf); err != nil {
			return fmt.Errorf("alltoallsparse indices to %d: %w", p, err)
		}
		vbuf := c.getBuf(len(sh.Vals))
		copy(vbuf, sh.Vals)
		if err := c.sendRaw(op, p, tag, vbuf); err != nil {
			return fmt.Errorf("alltoallsparse values to %d: %w", p, err)
		}
	}

	// Receive phase, in sender order, so the arena is the sender-ordered
	// concatenation. Rank r's own shard is copied in at its position
	// without ever having been packed.
	arena.reset(n, numRows, dim)
	for p := 0; p < n; p++ {
		if p == r {
			arena.appendShard(p, int32(send[r].Dim), send[r].Indices, send[r].Vals)
			continue
		}
		payload, err := c.recvRaw(op, p, tag)
		if err != nil {
			return fmt.Errorf("alltoallsparse header from %d: %w", p, err)
		}
		hdr, ok := payload.(sparseStreamHeader)
		if !ok {
			return fmt.Errorf("collective: alltoallsparse header type %T from rank %d", payload, p)
		}
		if hdr.Rows == 0 {
			arena.appendShard(p, hdr.Dim, nil, nil)
			continue
		}
		payload, err = c.recvRaw(op, p, tag)
		if err != nil {
			return fmt.Errorf("alltoallsparse indices from %d: %w", p, err)
		}
		idx, ok := payload.([]int64)
		if !ok {
			return fmt.Errorf("collective: alltoallsparse index type %T from rank %d", payload, p)
		}
		payload, err = c.recvRaw(op, p, tag)
		if err != nil {
			return fmt.Errorf("alltoallsparse values from %d: %w", p, err)
		}
		vals, ok := payload.([]float32)
		if !ok {
			return fmt.Errorf("collective: alltoallsparse value type %T from rank %d", payload, p)
		}
		if len(idx) != int(hdr.Rows) || len(vals) != int(hdr.Rows)*int(hdr.Dim) {
			return fmt.Errorf("collective: alltoallsparse stream from rank %d: %d indices, %d values, header %d rows x dim %d",
				p, len(idx), len(vals), hdr.Rows, hdr.Dim)
		}
		arena.appendShard(p, hdr.Dim, idx, vals)
		c.putBufI64(idx)
		c.putBuf(vals)
	}
	return nil
}

// AlltoAllSparseCodec is AlltoAllSparse with an opt-in wire codec: each
// non-empty peer shard is encoded into one pooled []byte payload instead of
// the raw index/value pair, and each received payload is decoded straight
// into the arena. A nil codec delegates to the raw exchange, so call sites
// can thread an optional codec without branching.
//
// Everything else is unchanged from AlltoAllSparse: the self shard never
// touches the wire (and is therefore never quantized by a lossy codec —
// rank r's own rows stay exact), streams ride the same seq-framed
// self-healing point-to-point, and senders may carry ragged column widths.
// class tells dual-level codecs which error bound applies to every row of
// this exchange. When the Communicator's observer implements CodecObserver,
// each encoded and decoded shard is reported with its raw vs wire footprint
// and codec latency.
//
//embrace:hotpath
//embrace:arena reuse arena
func (c *Communicator) AlltoAllSparseCodec(op string, step int, send []*tensor.Sparse, arena *SparseShards, codec SparseCodec, class RowClass) error {
	if codec == nil {
		return c.AlltoAllSparse(op, step, send, arena)
	}
	n, r := c.t.Size(), c.t.Rank()
	if len(send) != n {
		return fmt.Errorf("collective: alltoallsparse wants %d send parts, got %d", n, len(send))
	}
	tag, err := c.Tag(op, step)
	if err != nil {
		return err
	}
	numRows, dim := send[r].NumRows, send[r].Dim

	// Send phase: header, then — when non-empty — one encoded payload drawn
	// from the byte pool. Ownership travels with the message; the receiver
	// recycles the buffer into its own pool.
	for p := 0; p < n; p++ {
		if p == r {
			continue
		}
		sh := send[p]
		if err := c.sendRaw(op, p, tag, sparseStreamHeader{Rows: int32(len(sh.Indices)), Dim: int32(sh.Dim)}); err != nil {
			return fmt.Errorf("alltoallsparse header to %d: %w", p, err)
		}
		if len(sh.Indices) == 0 {
			continue
		}
		var start time.Time
		if c.codecObs != nil {
			start = time.Now()
		}
		wire := codec.AppendShard(c.getBufB(), sh.Indices, sh.Vals, sh.Dim, class)
		if c.codecObs != nil {
			c.codecObs.CodecOp(op, "encode", sparseRawBytes(len(sh.Indices), sh.Dim), len(wire), time.Since(start))
		}
		if err := c.sendRaw(op, p, tag, wire); err != nil {
			return fmt.Errorf("alltoallsparse payload to %d: %w", p, err)
		}
	}

	// Receive phase, in sender order. Rank r's own shard is copied in raw at
	// its position — self-send elision, never encoded.
	arena.reset(n, numRows, dim)
	for p := 0; p < n; p++ {
		if p == r {
			arena.appendShard(p, int32(send[r].Dim), send[r].Indices, send[r].Vals)
			continue
		}
		payload, err := c.recvRaw(op, p, tag)
		if err != nil {
			return fmt.Errorf("alltoallsparse header from %d: %w", p, err)
		}
		hdr, ok := payload.(sparseStreamHeader)
		if !ok {
			return fmt.Errorf("collective: alltoallsparse header type %T from rank %d", payload, p)
		}
		if hdr.Rows == 0 {
			arena.appendShard(p, hdr.Dim, nil, nil)
			continue
		}
		payload, err = c.recvRaw(op, p, tag)
		if err != nil {
			return fmt.Errorf("alltoallsparse payload from %d: %w", p, err)
		}
		wire, ok := payload.([]byte)
		if !ok {
			return fmt.Errorf("collective: alltoallsparse payload type %T from rank %d", payload, p)
		}
		var start time.Time
		if c.codecObs != nil {
			start = time.Now()
		}
		if err := arena.appendDecoded(p, int(hdr.Rows), hdr.Dim, wire, codec); err != nil {
			return fmt.Errorf("alltoallsparse decode from %d: %w", p, err)
		}
		if c.codecObs != nil {
			c.codecObs.CodecOp(op, "decode", sparseRawBytes(int(hdr.Rows), int(hdr.Dim)), len(wire), time.Since(start))
		}
		c.putBufB(wire)
	}
	return nil
}
