package collective

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"embrace/internal/comm"
	"embrace/internal/tensor"
)

// randShards builds rank r's deterministic send shards for an n-rank
// exchange: per destination a random (possibly empty) [rows x dim] sparse
// shard, including deliberate empties so the zero-row header path is hit.
func randShards(seed int64, r, n, rows, dim int) []*tensor.Sparse {
	rng := rand.New(rand.NewSource(seed + int64(r)*1013))
	out := make([]*tensor.Sparse, n)
	for p := 0; p < n; p++ {
		nnz := rng.Intn(7)
		if rng.Intn(4) == 0 {
			nnz = 0
		}
		idx := make([]int64, nnz)
		vals := make([]float32, nnz*dim)
		for i := range idx {
			idx[i] = rng.Int63n(int64(rows))
		}
		for i := range vals {
			vals[i] = rng.Float32()*2 - 1
		}
		s, err := tensor.NewSparse(rows, dim, idx, vals)
		if err != nil {
			panic(err)
		}
		out[p] = s
	}
	return out
}

func sparseBitsEqual(a, b *tensor.Sparse) bool {
	if a.NumRows != b.NumRows || a.Dim != b.Dim || len(a.Indices) != len(b.Indices) || len(a.Vals) != len(b.Vals) {
		return false
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			return false
		}
	}
	for i := range a.Vals {
		if math.Float32bits(a.Vals[i]) != math.Float32bits(b.Vals[i]) {
			return false
		}
	}
	return true
}

// runAlltoAllSparseEquivalence drives both exchanges on every rank of an
// n-rank world and asserts the arena path is bit-identical to the legacy
// SparseAllToAll + Concat path, shard by shard and merged.
func runAlltoAllSparseEquivalence(t *testing.T, n int, seed int64, run func(int, func(comm.Transport) error) error) {
	t.Helper()
	err := run(n, func(tr comm.Transport) error {
		cm := NewCommunicator(tr)
		send := randShards(seed, tr.Rank(), n, 64, 3)
		// Two exchanges under distinct ops so tags cannot collide.
		want, err := cm.SparseAllToAll("sparse/legacy", 0, send)
		if err != nil {
			return err
		}
		wantMerged, err := tensor.Concat(want...)
		if err != nil {
			return err
		}
		var arena SparseShards
		if err := cm.AlltoAllSparse("sparse/arena", 0, send, &arena); err != nil {
			return err
		}
		if !sparseBitsEqual(wantMerged, arena.Merged()) {
			return fmt.Errorf("rank %d: merged arena differs from Concat(SparseAllToAll)", tr.Rank())
		}
		var view tensor.Sparse
		for p := 0; p < n; p++ {
			arena.ShardView(p, &view)
			if !sparseBitsEqual(want[p], &view) {
				return fmt.Errorf("rank %d: shard view %d differs", tr.Rank(), p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoAllSparseMatchesLegacyPath(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		for seed := int64(1); seed <= 4; seed++ {
			runAlltoAllSparseEquivalence(t, n, seed, comm.RunRanks)
		}
	}
}

func TestAlltoAllSparseUnderChaos(t *testing.T) {
	// The streams ride the seq-framed self-healing point-to-point, so every
	// maskable fault plan must leave results bit-identical.
	for _, n := range []int{2, 3, 4, 8} {
		for seed := int64(1); seed <= 5; seed++ {
			run := func(n int, fn func(comm.Transport) error) error {
				return comm.RunRanksChaos(n, comm.MaskableChaosPlan(seed), fn)
			}
			runAlltoAllSparseEquivalence(t, n, seed+100, run)
		}
	}
}

func TestAlltoAllSparseOverTCP(t *testing.T) {
	runAlltoAllSparseEquivalence(t, 4, 77, comm.RunRanksTCP)
}

// byteCountObserver tallies the wire traffic per op, element-wise.
type byteCountObserver struct {
	mu        sync.Mutex
	sentRows  int // int64 index elements sent
	sentVals  int // float32 value elements sent
	sentMsgs  int
	headerCnt int
}

func (o *byteCountObserver) Sent(op string, payload any, _ time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.sentMsgs++
	switch p := payload.(type) {
	case []int64:
		o.sentRows += len(p)
	case []float32:
		o.sentVals += len(p)
	case sparseStreamHeader:
		o.headerCnt++
	}
}

func (o *byteCountObserver) Received(string, any, time.Duration) {}

// Self shards must never be packed or observed: the observer's byte counts
// must equal exactly the non-self shard payloads, and nothing else.
func TestAlltoAllSparseSelfSendElided(t *testing.T) {
	const n, rows, dim = 4, 32, 2
	obs := make([]*byteCountObserver, n)
	sends := make([][]*tensor.Sparse, n)
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		r := tr.Rank()
		o := &byteCountObserver{}
		obs[r] = o
		cm := NewCommunicator(tr, WithObserver(o))
		send := randShards(9, r, n, rows, dim)
		sends[r] = send
		var arena SparseShards
		return cm.AlltoAllSparse("sparse/elide", 0, send, &arena)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		wantRows, wantVals, wantStreams := 0, 0, 0
		for p := 0; p < n; p++ {
			if p == r {
				continue // the self shard must contribute nothing
			}
			wantRows += len(sends[r][p].Indices)
			wantVals += len(sends[r][p].Vals)
			if len(sends[r][p].Indices) > 0 {
				wantStreams++
			}
		}
		o := obs[r]
		if o.headerCnt != n-1 {
			t.Errorf("rank %d: %d headers observed, want %d (one per non-self peer)", r, o.headerCnt, n-1)
		}
		if o.sentRows != wantRows || o.sentVals != wantVals {
			t.Errorf("rank %d: observed %d rows / %d vals on the wire, want %d / %d — self shard leaked into pack",
				r, o.sentRows, o.sentVals, wantRows, wantVals)
		}
		if o.sentMsgs != (n-1)+2*wantStreams {
			t.Errorf("rank %d: %d messages, want %d", r, o.sentMsgs, (n-1)+2*wantStreams)
		}
	}
}

// Steady state: after the warm-up call grows the arena and pools to their
// high-water marks, a single-rank exchange (pure arena path, no goroutine
// scheduling noise) allocates nothing.
func TestAlltoAllSparseSteadyStateAllocs(t *testing.T) {
	err := comm.RunRanks(1, func(tr comm.Transport) error {
		cm := NewCommunicator(tr)
		send := randShards(5, 0, 1, 128, 4)
		var arena SparseShards
		step := 0
		do := func() {
			if err := cm.AlltoAllSparse("sparse/allocs", step, send, &arena); err != nil {
				panic(err)
			}
			step++
		}
		do() // warm-up
		if n := testing.AllocsPerRun(50, do); n != 0 {
			return fmt.Errorf("steady-state AlltoAllSparse allocates %v times", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
