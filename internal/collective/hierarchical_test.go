package collective

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"embrace/internal/comm"
)

func TestHierarchicalAllReduceMatchesFlat(t *testing.T) {
	for _, cfg := range []struct{ n, w int }{
		{1, 1}, {2, 1}, {4, 2}, {4, 4}, {8, 4}, {12, 4}, {9, 3},
	} {
		for _, m := range []int{1, 7, 100} {
			inputs := make([][]float32, cfg.n)
			want := make([]float64, m)
			rng := rand.New(rand.NewSource(int64(cfg.n*100 + m)))
			for r := range inputs {
				inputs[r] = make([]float32, m)
				for i := range inputs[r] {
					inputs[r][i] = rng.Float32()*2 - 1
					want[i] += float64(inputs[r][i])
				}
			}
			err := comm.RunRanks(cfg.n, func(tr comm.Transport) error {
				buf := append([]float32(nil), inputs[tr.Rank()]...)
				if err := NewCommunicator(tr).HierarchicalAllReduce("test/hier", 0, cfg.w, buf); err != nil {
					return err
				}
				for i, v := range buf {
					if math.Abs(float64(v)-want[i]) > 1e-4 {
						return fmt.Errorf("n=%d w=%d m=%d rank %d elem %d: %v vs %v",
							cfg.n, cfg.w, m, tr.Rank(), i, v, want[i])
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestHierarchicalAllReduceValidation(t *testing.T) {
	err := comm.RunRanks(4, func(tr comm.Transport) error {
		buf := make([]float32, 4)
		c := NewCommunicator(tr)
		if err := c.HierarchicalAllReduce("test/hier", 0, 0, buf); err == nil {
			return fmt.Errorf("expected workersPerNode error")
		}
		if err := c.HierarchicalAllReduce("test/hier", 0, 3, buf); err == nil {
			return fmt.Errorf("expected divisibility error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: hierarchical and flat ring AllReduce agree on random inputs.
func TestHierarchicalEqualsRingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 1 + rng.Intn(3)
		w := 1 + rng.Intn(3)
		n := nodes * w
		m := 1 + rng.Intn(50)
		inputs := make([][]float32, n)
		for r := range inputs {
			inputs[r] = make([]float32, m)
			for i := range inputs[r] {
				inputs[r][i] = rng.Float32()
			}
		}
		flat := make([][]float32, n)
		hier := make([][]float32, n)
		err := comm.RunRanks(n, func(tr comm.Transport) error {
			c := NewCommunicator(tr)
			a := append([]float32(nil), inputs[tr.Rank()]...)
			if err := c.AllReduce("test/flat", 0, a); err != nil {
				return err
			}
			b := append([]float32(nil), inputs[tr.Rank()]...)
			if err := c.HierarchicalAllReduce("test/hier", 0, w, b); err != nil {
				return err
			}
			flat[tr.Rank()], hier[tr.Rank()] = a, b
			return nil
		})
		if err != nil {
			return false
		}
		for r := range flat {
			for i := range flat[r] {
				if math.Abs(float64(flat[r][i]-hier[r][i])) > 1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchicalOverTCP(t *testing.T) {
	const n, w, m = 4, 2, 32
	err := comm.RunRanksTCP(n, func(tr comm.Transport) error {
		buf := make([]float32, m)
		for i := range buf {
			buf[i] = 1
		}
		if err := NewCommunicator(tr).HierarchicalAllReduce("tcp/hier", 0, w, buf); err != nil {
			return err
		}
		for i, v := range buf {
			if v != n {
				return fmt.Errorf("elem %d = %v", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
