package collective

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"embrace/internal/comm"
	"embrace/internal/tensor"
)

func TestChunkBounds(t *testing.T) {
	// 10 elements over 4 parts -> sizes 3,3,2,2 covering [0,10).
	wantLo := []int{0, 3, 6, 8}
	wantHi := []int{3, 6, 8, 10}
	for i := 0; i < 4; i++ {
		lo, hi := chunkBounds(10, 4, i)
		if lo != wantLo[i] || hi != wantHi[i] {
			t.Fatalf("chunk %d = [%d,%d), want [%d,%d)", i, lo, hi, wantLo[i], wantHi[i])
		}
	}
	// Fewer elements than parts: some chunks empty, still a partition.
	total := 0
	for i := 0; i < 8; i++ {
		lo, hi := chunkBounds(3, 8, i)
		total += hi - lo
	}
	if total != 3 {
		t.Fatalf("chunks cover %d elements, want 3", total)
	}
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		var mu sync.Mutex
		arrived := 0
		err := comm.RunRanks(n, func(tr comm.Transport) error {
			mu.Lock()
			arrived++
			mu.Unlock()
			if err := NewCommunicator(tr).Barrier("test/barrier", 0); err != nil {
				return err
			}
			mu.Lock()
			defer mu.Unlock()
			if arrived != n {
				return fmt.Errorf("rank %d passed barrier with only %d arrived", tr.Rank(), arrived)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBroadcast(t *testing.T) {
	const n = 4
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		buf := make([]float32, 5)
		if tr.Rank() == 2 {
			for i := range buf {
				buf[i] = float32(i + 1)
			}
		}
		if err := NewCommunicator(tr).Broadcast("test/bcast", 0, 2, buf); err != nil {
			return err
		}
		for i, v := range buf {
			if v != float32(i+1) {
				return fmt.Errorf("rank %d buf[%d]=%v", tr.Rank(), i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastSingleRank(t *testing.T) {
	err := comm.RunRanks(1, func(tr comm.Transport) error {
		buf := []float32{1, 2}
		return NewCommunicator(tr).Broadcast("test/bcast", 0, 0, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRingAllReduceSumsAcrossRanks(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		for _, m := range []int{1, 2, n - 1, n, n + 1, 64, 1000} {
			if m <= 0 {
				continue
			}
			err := comm.RunRanks(n, func(tr comm.Transport) error {
				buf := make([]float32, m)
				for i := range buf {
					buf[i] = float32(tr.Rank()*m + i)
				}
				if err := NewCommunicator(tr).AllReduce("test/allreduce", 0, buf); err != nil {
					return err
				}
				for i, v := range buf {
					// sum over r of r*m+i = m*n(n-1)/2 + n*i
					want := float32(m*n*(n-1)/2 + n*i)
					if v != want {
						return fmt.Errorf("n=%d m=%d rank %d buf[%d]=%v want %v",
							n, m, tr.Rank(), i, v, want)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

// Property: ring AllReduce equals locally computed sum for random tensors.
func TestRingAllReduceMatchesSequentialSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		m := 1 + rng.Intn(200)
		inputs := make([][]float32, n)
		want := make([]float64, m)
		for r := range inputs {
			inputs[r] = make([]float32, m)
			for i := range inputs[r] {
				inputs[r][i] = rng.Float32()*2 - 1
				want[i] += float64(inputs[r][i])
			}
		}
		err := comm.RunRanks(n, func(tr comm.Transport) error {
			buf := append([]float32(nil), inputs[tr.Rank()]...)
			if err := NewCommunicator(tr).AllReduce("test/allreduce", 0, buf); err != nil {
				return err
			}
			for i, v := range buf {
				if math.Abs(float64(v)-want[i]) > 1e-4 {
					return fmt.Errorf("elem %d: %v vs %v", i, v, want[i])
				}
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterOwnChunk(t *testing.T) {
	const n, m = 4, 10
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		buf := make([]float32, m)
		for i := range buf {
			buf[i] = float32(tr.Rank() + 1) // sum across ranks = 1+2+3+4 = 10
		}
		lo, hi, err := NewCommunicator(tr).ReduceScatter("test/rs", 0, buf)
		if err != nil {
			return err
		}
		wantLo, wantHi := chunkBounds(m, n, tr.Rank())
		if lo != wantLo || hi != wantHi {
			return fmt.Errorf("bounds [%d,%d), want [%d,%d)", lo, hi, wantLo, wantHi)
		}
		for i := lo; i < hi; i++ {
			if buf[i] != 10 {
				return fmt.Errorf("rank %d chunk elem %d = %v, want 10", tr.Rank(), i, buf[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherOrderAndValues(t *testing.T) {
	const n = 5
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		got, err := AllGatherVia(NewCommunicator(tr), "test/allgather", 0, fmt.Sprintf("rank-%d", tr.Rank()))
		if err != nil {
			return err
		}
		for p, v := range got {
			if v != fmt.Sprintf("rank-%d", p) {
				return fmt.Errorf("slot %d = %q", p, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllIsTransposition(t *testing.T) {
	// Rank r sends value r*10+p to rank p; so rank p must receive p from
	// sender r as r*10+p. AllToAll is exactly a matrix transpose.
	const n = 6
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		send := make([]int, n)
		for p := range send {
			send[p] = tr.Rank()*10 + p
		}
		got, err := AllToAllVia(NewCommunicator(tr), "test/alltoall", 0, send)
		if err != nil {
			return err
		}
		for p, v := range got {
			if v != p*10+tr.Rank() {
				return fmt.Errorf("rank %d slot %d = %d, want %d", tr.Rank(), p, v, p*10+tr.Rank())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: AllToAll applied twice restores the original send matrix.
func TestAllToAllInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		vals := make([][]int, n)
		for r := range vals {
			vals[r] = make([]int, n)
			for p := range vals[r] {
				vals[r][p] = rng.Int()
			}
		}
		err := comm.RunRanks(n, func(tr comm.Transport) error {
			c := NewCommunicator(tr)
			once, err := AllToAllVia(c, "test/alltoall", 0, vals[tr.Rank()])
			if err != nil {
				return err
			}
			twice, err := AllToAllVia(c, "test/alltoall", 1, once)
			if err != nil {
				return err
			}
			for p := range twice {
				if twice[p] != vals[tr.Rank()][p] {
					return fmt.Errorf("not an involution at %d", p)
				}
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllSizeValidation(t *testing.T) {
	err := comm.RunRanks(2, func(tr comm.Transport) error {
		_, err := AllToAllVia(NewCommunicator(tr), "test/alltoall", 0, []int{1}) // wrong length on a 2-rank world
		if err == nil {
			return fmt.Errorf("expected size error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherToRoot(t *testing.T) {
	const n = 4
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		got, err := GatherVia(NewCommunicator(tr), "test/gather", 0, 0, tr.Rank()*2)
		if err != nil {
			return err
		}
		if tr.Rank() != 0 {
			if got != nil {
				return fmt.Errorf("non-root got %v", got)
			}
			return nil
		}
		for p, v := range got {
			if v != p*2 {
				return fmt.Errorf("root slot %d = %d", p, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSparseAllGatherEqualsSum(t *testing.T) {
	// Each rank holds a sparse gradient; the gathered+concatenated tensor
	// must project to the same dense matrix as summing every rank's dense
	// projection — the semantic equivalence of Figure 1(b).
	const n = 3
	const rows, dim = 12, 2
	locals := make([]*tensor.Sparse, n)
	want := tensor.NewDense(rows, dim)
	rng := rand.New(rand.NewSource(7))
	for r := range locals {
		nnz := 3 + rng.Intn(4)
		idx := make([]int64, nnz)
		vals := make([]float32, nnz*dim)
		for i := range idx {
			idx[i] = int64(rng.Intn(rows))
		}
		for i := range vals {
			vals[i] = rng.Float32()
		}
		s, err := tensor.NewSparse(rows, dim, idx, vals)
		if err != nil {
			t.Fatal(err)
		}
		locals[r] = s
		s.AddToDense(want, 1)
	}
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		got, err := NewCommunicator(tr).SparseAllGather("test/sparse-ag", 0, locals[tr.Rank()])
		if err != nil {
			return err
		}
		if !got.ToDense().AllClose(want, 1e-4) {
			return fmt.Errorf("rank %d: gathered sparse != dense sum", tr.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSparseAllToAllRoutesShards(t *testing.T) {
	const n = 3
	const rows = 6
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		shards := make([]*tensor.Sparse, n)
		for p := range shards {
			s, err := tensor.NewSparse(rows, 1,
				[]int64{int64(tr.Rank())}, []float32{float32(p)})
			if err != nil {
				return err
			}
			shards[p] = s
		}
		got, err := NewCommunicator(tr).SparseAllToAll("test/sparse-a2a", 0, shards)
		if err != nil {
			return err
		}
		for p, s := range got {
			// shard from sender p must carry index p and value = my rank.
			if s.Indices[0] != int64(p) || s.Vals[0] != float32(tr.Rank()) {
				return fmt.Errorf("rank %d from %d: idx %d val %v",
					tr.Rank(), p, s.Indices[0], s.Vals[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCollectivesDistinctTags(t *testing.T) {
	// Two allreduces in flight on different op names must not interfere — the
	// property the scheduler's communication thread relies on.
	const n, m = 4, 32
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		c := NewCommunicator(tr)
		a := make([]float32, m)
		b := make([]float32, m)
		for i := range a {
			a[i] = 1
			b[i] = 2
		}
		var wg sync.WaitGroup
		var errA, errB error
		wg.Add(2)
		go func() { defer wg.Done(); errA = c.AllReduce("test/concurrent-a", 0, a) }()
		go func() { defer wg.Done(); errB = c.AllReduce("test/concurrent-b", 0, b) }()
		wg.Wait()
		if errA != nil || errB != nil {
			return fmt.Errorf("errs: %v %v", errA, errB)
		}
		for i := range a {
			if a[i] != float32(n) || b[i] != float32(2*n) {
				return fmt.Errorf("interference: a[%d]=%v b[%d]=%v", i, a[i], i, b[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRingAllReduceOpMaxMin(t *testing.T) {
	const n, m = 5, 17
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		mx := make([]float32, m)
		mn := make([]float32, m)
		for i := range mx {
			mx[i] = float32(tr.Rank()*m + i)
			mn[i] = float32(tr.Rank()*m + i)
		}
		c := NewCommunicator(tr)
		if err := c.AllReduceWith("test/max", 0, mx, Max); err != nil {
			return err
		}
		if err := c.AllReduceWith("test/min", 0, mn, Min); err != nil {
			return err
		}
		for i := 0; i < m; i++ {
			if mx[i] != float32((n-1)*m+i) {
				return fmt.Errorf("max[%d] = %v", i, mx[i])
			}
			if mn[i] != float32(i) {
				return fmt.Errorf("min[%d] = %v", i, mn[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: AllReduceWith(Sum) matches AllReduce bit-for-bit.
func TestRingAllReduceOpSumMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(100)
		inputs := make([][]float32, n)
		for r := range inputs {
			inputs[r] = make([]float32, m)
			for i := range inputs[r] {
				inputs[r][i] = rng.Float32()
			}
		}
		err := comm.RunRanks(n, func(tr comm.Transport) error {
			c := NewCommunicator(tr)
			a := append([]float32(nil), inputs[tr.Rank()]...)
			b := append([]float32(nil), inputs[tr.Rank()]...)
			if err := c.AllReduce("test/sum-plain", 0, a); err != nil {
				return err
			}
			if err := c.AllReduceWith("test/sum-op", 0, b, Sum); err != nil {
				return err
			}
			for i := range a {
				if a[i] != b[i] {
					return fmt.Errorf("mismatch at %d", i)
				}
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
