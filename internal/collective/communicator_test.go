package collective

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"embrace/internal/comm"
	"embrace/internal/tensor"
)

func TestCommunicatorTagsDisjointAcrossOpsAndSteps(t *testing.T) {
	w, err := comm.NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c := NewCommunicator(w.Rank(0))
	seen := map[int]string{}
	for _, op := range []string{"dense/w1", "dense/w2", "emb/grad", "emb/data", "stats"} {
		for step := 0; step < 100; step++ {
			tag, err := c.Tag(op, step)
			if err != nil {
				t.Fatal(err)
			}
			if prev, ok := seen[tag]; ok {
				t.Fatalf("tag %d assigned to both %q step and %q step %d", tag, prev, op, step)
			}
			seen[tag] = op
			if tag < tagBase {
				t.Fatalf("tag %d of %q below the Communicator tag base; would collide with legacy tags", tag, op)
			}
		}
	}
	if got := len(c.Ops()); got != 5 {
		t.Fatalf("Ops() reports %d ops, want 5", got)
	}
}

func TestCommunicatorTagDeterministicAcrossRanksAndOrder(t *testing.T) {
	// Ranks may register ops in different orders (e.g. a background delayed
	// exchange racing the foreground step); tags must still agree.
	w, err := comm.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	a := NewCommunicator(w.Rank(0))
	b := NewCommunicator(w.Rank(1))
	ops := []string{"alpha", "beta", "gamma"}
	tagsA := map[string]int{}
	for _, op := range ops {
		tag, err := a.Tag(op, 7)
		if err != nil {
			t.Fatal(err)
		}
		tagsA[op] = tag
	}
	for i := len(ops) - 1; i >= 0; i-- { // reverse registration order
		tag, err := b.Tag(ops[i], 7)
		if err != nil {
			t.Fatal(err)
		}
		if tag != tagsA[ops[i]] {
			t.Fatalf("op %q: rank0 tag %d != rank1 tag %d", ops[i], tagsA[ops[i]], tag)
		}
	}
}

func TestCommunicatorTagStepRange(t *testing.T) {
	w, err := comm.NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c := NewCommunicator(w.Rank(0))
	if _, err := c.Tag("op", -1); err == nil {
		t.Fatal("negative step must be rejected")
	}
	if _, err := c.Tag("op", MaxStep+1); err == nil {
		t.Fatal("step beyond MaxStep must be rejected")
	}
	if _, err := c.Tag("op", MaxStep); err != nil {
		t.Fatalf("MaxStep must be accepted: %v", err)
	}
}

func TestCommunicatorTicketAdvancesPerOp(t *testing.T) {
	w, err := comm.NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c := NewCommunicator(w.Rank(0))
	if c.Ticket("gather-emb") != 0 || c.Ticket("gather-emb") != 1 {
		t.Fatal("tickets must count from 0 per op")
	}
	if c.Ticket("other") != 0 {
		t.Fatal("tickets must be independent per op")
	}
}

func TestCommunicatorAllReduceMatchesLegacy(t *testing.T) {
	const n, m = 4, 1003
	want := make([]float32, m)
	bufs := make([][]float32, n)
	for r := 0; r < n; r++ {
		rng := rand.New(rand.NewSource(int64(r + 1)))
		bufs[r] = make([]float32, m)
		for i := range bufs[r] {
			bufs[r][i] = rng.Float32() - 0.5
			want[i] += bufs[r][i]
		}
	}
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		c := NewCommunicator(tr)
		return c.AllReduce("grad", 3, bufs[tr.Rank()])
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		for i := range want {
			if diff := bufs[r][i] - want[i]; diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("rank %d elem %d: got %g want %g", r, i, bufs[r][i], want[i])
			}
		}
	}
}

// TestChunkedAllReduceEqualsUnchunked is the satellite property test: for
// random world sizes, buffer lengths, and ChunkBytes from one element up to
// the whole buffer, the chunk-pipelined ring AllReduce must produce exactly
// the unchunked result on every rank. Chunking splits element ranges, never
// the summation order, so the comparison is bitwise.
func TestChunkedAllReduceEqualsUnchunked(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, chunkRaw uint8) bool {
		n := 2 + int(nRaw)%4       // world size 2..5
		m := 1 + int(mRaw)%257     // buffer length 1..257
		rng := rand.New(rand.NewSource(seed))
		// ChunkBytes ∈ {1 element … whole buffer}.
		chunkBytes := (1 + int(chunkRaw)%m) * tensor.BytesPerElem

		ref := make([][]float32, n)
		chunked := make([][]float32, n)
		for r := 0; r < n; r++ {
			ref[r] = make([]float32, m)
			for i := range ref[r] {
				ref[r][i] = rng.Float32()*2 - 1
			}
			chunked[r] = append([]float32(nil), ref[r]...)
		}
		if err := comm.RunRanks(n, func(tr comm.Transport) error {
			return NewCommunicator(tr).AllReduce("prop", 0, ref[tr.Rank()])
		}); err != nil {
			t.Logf("unchunked: %v", err)
			return false
		}
		if err := comm.RunRanks(n, func(tr comm.Transport) error {
			c := NewCommunicator(tr, WithChunkBytes(chunkBytes))
			return c.AllReduce("prop", 0, chunked[tr.Rank()])
		}); err != nil {
			t.Logf("chunked: %v", err)
			return false
		}
		for r := 0; r < n; r++ {
			for i := range ref[r] {
				if ref[r][i] != chunked[r][i] {
					t.Logf("n=%d m=%d chunkBytes=%d rank %d elem %d: %g != %g",
						n, m, chunkBytes, r, i, chunked[r][i], ref[r][i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkedAllReduceWithMaxMin(t *testing.T) {
	const n, m = 3, 37
	for _, op := range []ReduceOp{Max, Min} {
		bufs := make([][]float32, n)
		want := make([]float32, m)
		for r := 0; r < n; r++ {
			rng := rand.New(rand.NewSource(int64(100*r) + int64(op)))
			bufs[r] = make([]float32, m)
			for i := range bufs[r] {
				bufs[r][i] = rng.Float32()*10 - 5
			}
		}
		copy(want, bufs[0])
		for r := 1; r < n; r++ {
			op.apply(want, bufs[r])
		}
		err := comm.RunRanks(n, func(tr comm.Transport) error {
			c := NewCommunicator(tr, WithChunkBytes(2*tensor.BytesPerElem))
			return c.AllReduceWith("metric", 0, bufs[tr.Rank()], op)
		})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < n; r++ {
			for i := range want {
				if bufs[r][i] != want[i] {
					t.Fatalf("op %d rank %d elem %d: got %g want %g", op, r, i, bufs[r][i], want[i])
				}
			}
		}
	}
}

func TestCommunicatorBroadcastAndBarrier(t *testing.T) {
	const n, m = 4, 65
	bufs := make([][]float32, n)
	for r := 0; r < n; r++ {
		bufs[r] = make([]float32, m)
		if r == 2 {
			for i := range bufs[r] {
				bufs[r][i] = float32(i) + 0.5
			}
		}
	}
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		c := NewCommunicator(tr)
		if err := c.Barrier("sync", 0); err != nil {
			return err
		}
		return c.Broadcast("weights", 1, 2, bufs[tr.Rank()])
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		for i := range bufs[r] {
			if bufs[r][i] != float32(i)+0.5 {
				t.Fatalf("rank %d elem %d: got %g", r, i, bufs[r][i])
			}
		}
	}
}

func TestCommunicatorReduceScatterChunked(t *testing.T) {
	const n, m = 4, 41
	want := make([]float32, m)
	bufs := make([][]float32, n)
	for r := 0; r < n; r++ {
		bufs[r] = make([]float32, m)
		for i := range bufs[r] {
			bufs[r][i] = float32(r*m + i)
			want[i] += bufs[r][i]
		}
	}
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		c := NewCommunicator(tr, WithChunkBytes(3*tensor.BytesPerElem))
		lo, hi, err := c.ReduceScatter("rs", 0, bufs[tr.Rank()])
		if err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			if bufs[tr.Rank()][i] != want[i] {
				t.Errorf("rank %d elem %d: got %g want %g", tr.Rank(), i, bufs[tr.Rank()][i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCommunicatorSparseAllToAllShardMismatch is the satellite error-path
// test: a shard slice whose length differs from the world size must be
// rejected before any message is sent.
func TestCommunicatorSparseAllToAllShardMismatch(t *testing.T) {
	const n = 3
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		c := NewCommunicator(tr)
		shards := make([]*tensor.Sparse, n-1) // one short
		for i := range shards {
			s, err := tensor.NewSparse(4, 2, []int64{0}, make([]float32, 2))
			if err != nil {
				return err
			}
			shards[i] = s
		}
		_, err := c.SparseAllToAll("emb/grad", 0, shards)
		if err == nil {
			t.Error("mismatched shard count must fail")
			return nil
		}
		if !strings.Contains(err.Error(), "send parts") {
			t.Errorf("unexpected error: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommunicatorSparseRoundTrip(t *testing.T) {
	const n = 3
	results := make([]*tensor.Sparse, n)
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		c := NewCommunicator(tr)
		local, err := tensor.NewSparse(6, 2, []int64{int64(tr.Rank())},
			[]float32{float32(tr.Rank()), 1})
		if err != nil {
			return err
		}
		got, err := c.SparseAllGather("emb/grad", 5, local)
		if err != nil {
			return err
		}
		results[tr.Rank()] = got
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range results {
		if s.NNZ() != n {
			t.Fatalf("rank %d gathered %d rows, want %d", r, s.NNZ(), n)
		}
	}
}

func TestCommunicatorGenericExchanges(t *testing.T) {
	const n = 4
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		c := NewCommunicator(tr)
		r := tr.Rank()
		gathered, err := AllGatherVia(c, "tokens", 0, []int64{int64(r)})
		if err != nil {
			return err
		}
		for p, v := range gathered {
			if len(v) != 1 || v[0] != int64(p) {
				t.Errorf("rank %d allgather slot %d = %v", r, p, v)
			}
		}
		send := make([][]int64, n)
		for p := range send {
			send[p] = []int64{int64(r*10 + p)}
		}
		routed, err := AllToAllVia(c, "route", 0, send)
		if err != nil {
			return err
		}
		for p, v := range routed {
			if len(v) != 1 || v[0] != int64(p*10+r) {
				t.Errorf("rank %d alltoall slot %d = %v", r, p, v)
			}
		}
		atRoot, err := GatherVia(c, "stats", 0, 0, int64(r))
		if err != nil {
			return err
		}
		if r == 0 {
			for p, v := range atRoot {
				if v != int64(p) {
					t.Errorf("gather slot %d = %d", p, v)
				}
			}
		} else if atRoot != nil {
			t.Errorf("rank %d: non-root gather must return nil", r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCommunicatorConcurrentCollectives exercises the buffer pool from
// concurrent goroutines per rank — the EmbRace pattern of a background
// delayed exchange overlapping the foreground step. Run under -race this
// also certifies the pool is race-clean (satellite CI target).
func TestCommunicatorConcurrentCollectives(t *testing.T) {
	const n, m, rounds = 3, 129, 8
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		c := NewCommunicator(tr, WithChunkBytes(16*tensor.BytesPerElem))
		var wg sync.WaitGroup
		errs := make(chan error, 2)
		for _, op := range []string{"fg/grad", "bg/delayed"} {
			wg.Add(1)
			go func(op string) {
				defer wg.Done()
				for step := 0; step < rounds; step++ {
					buf := make([]float32, m)
					for i := range buf {
						buf[i] = 1
					}
					if err := c.AllReduce(op, step, buf); err != nil {
						errs <- err
						return
					}
					for i := range buf {
						if buf[i] != n {
							errs <- errTest{op, step, i, buf[i]}
							return
						}
					}
				}
			}(op)
		}
		wg.Wait()
		close(errs)
		return <-errs
	})
	if err != nil {
		t.Fatal(err)
	}
}

type errTest struct {
	op         string
	step, elem int
	got        float32
}

func (e errTest) Error() string {
	return e.op + ": wrong sum"
}

func TestCommunicatorP2PSendRecv(t *testing.T) {
	const n = 2
	err := comm.RunRanks(n, func(tr comm.Transport) error {
		c := NewCommunicator(tr)
		if tr.Rank() == 0 {
			return c.Send("ctl", 4, 1, []int64{42})
		}
		payload, err := c.Recv("ctl", 4, 0)
		if err != nil {
			return err
		}
		v, ok := payload.([]int64)
		if !ok || v[0] != 42 {
			t.Errorf("payload = %v", payload)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
