package serve

import (
	"fmt"
	"testing"
)

func row(v float32) []float32 { return []float32{v, v + 1} }

// TestHotSetPromotionDemotion walks a row through the promote path and a
// colder resident through demotion.
func TestHotSetPromotionDemotion(t *testing.T) {
	h := newHotSet(2, 3)
	rows := map[int64][]float32{1: row(1), 2: row(2), 3: row(3)}

	// Two touches: below threshold, nothing resident.
	h.touchAll([]int64{1, 2}, rows)
	h.touchAll([]int64{1, 2}, rows)
	if h.resident() != 0 {
		t.Fatalf("resident = %d before threshold", h.resident())
	}
	if _, ok := h.get(1); ok {
		t.Fatal("unpromoted row served from hot set")
	}

	// Third touch promotes both.
	h.touchAll([]int64{1, 2}, rows)
	if h.resident() != 2 {
		t.Fatalf("resident = %d, want 2", h.resident())
	}
	got, ok := h.get(1)
	if !ok || got[0] != 1 {
		t.Fatalf("hot get(1) = %v, %v", got, ok)
	}

	// Row 3 gets hotter than row 2 (never touched again): it must displace
	// the coldest resident once it crosses the threshold at a full set.
	for i := 0; i < 5; i++ {
		h.touchAll([]int64{1, 3}, rows)
	}
	if _, ok := h.get(3); !ok {
		t.Fatal("hotter row 3 not promoted into full set")
	}
	if _, ok := h.get(2); ok {
		t.Fatal("coldest resident 2 survived demotion")
	}
	st := h.snapshot()
	if st.Promotions != 3 || st.Demotions != 1 {
		t.Fatalf("promotions=%d demotions=%d, want 3, 1", st.Promotions, st.Demotions)
	}
	if st.Resident != 2 {
		t.Fatalf("resident = %d", st.Resident)
	}
}

// TestHotSetNoDemotionForEqualHeat proves a candidate no hotter than every
// resident does not churn the set.
func TestHotSetNoDemotionForEqualHeat(t *testing.T) {
	h := newHotSet(1, 2)
	rows := map[int64][]float32{1: row(1), 2: row(2)}
	h.touchAll([]int64{1}, rows)
	h.touchAll([]int64{1}, rows) // 1 resident at freq 2
	h.touchAll([]int64{2}, rows)
	h.touchAll([]int64{2}, rows) // 2 reaches freq 2 == resident's: no churn
	if _, ok := h.get(1); !ok {
		t.Fatal("resident demoted by an equally-hot candidate")
	}
	if _, ok := h.get(2); ok {
		t.Fatal("equal-heat candidate promoted into full set")
	}
}

// TestHotSetInvalidate proves reload flushes every replica and the tracker.
func TestHotSetInvalidate(t *testing.T) {
	h := newHotSet(4, 1)
	rows := map[int64][]float32{7: row(7)}
	h.touchAll([]int64{7}, rows)
	if _, ok := h.get(7); !ok {
		t.Fatal("promote-after-one row not resident")
	}
	h.invalidate()
	if h.resident() != 0 {
		t.Fatalf("resident = %d after invalidate", h.resident())
	}
	if _, ok := h.get(7); ok {
		t.Fatal("stale replica served after invalidate")
	}
	// The tracker restarted too: one touch is again enough only because
	// promote==1; at promote>1 the count must restart from zero.
	st := h.snapshot()
	if st.Invalidations != 1 {
		t.Fatalf("invalidations = %d", st.Invalidations)
	}
}

// TestHotSetAging proves the frequency table stays bounded and decays.
func TestHotSetAging(t *testing.T) {
	h := newHotSet(1, 1000000) // promotion unreachable: isolate the tracker
	h.tracked = 8
	rows := map[int64][]float32{}
	ids := make([]int64, 9)
	for i := range ids {
		ids[i] = int64(i)
	}
	h.touchAll(ids, rows) // 9 entries > 8 tracked: halving drops all (freq 1 -> 0)
	h.mu.RLock()
	n := len(h.freq)
	h.mu.RUnlock()
	if n != 0 {
		t.Fatalf("freq table holds %d entries after aging, want 0", n)
	}
}

// TestHotSetCopies proves promoted rows are private copies: mutating the
// source after promotion must not reach the replica.
func TestHotSetCopies(t *testing.T) {
	h := newHotSet(1, 1)
	src := row(5)
	h.touchAll([]int64{5}, map[int64][]float32{5: src})
	src[0] = -99
	got, ok := h.get(5)
	if !ok || got[0] != 5 {
		t.Fatalf("replica aliases its source: %v, %v", got, ok)
	}
}

// TestHotSetNil proves the disabled (nil) hot set is inert everywhere the
// serving path touches it.
func TestHotSetNil(t *testing.T) {
	var h *hotSet
	if _, ok := h.get(1); ok {
		t.Fatal("nil hot set hit")
	}
	h.touchAll([]int64{1}, nil)
	h.invalidate()
	if h.resident() != 0 {
		t.Fatal("nil hot set resident")
	}
	if st := h.snapshot(); st != (HotStats{}) {
		t.Fatalf("nil snapshot %+v", st)
	}
	if newHotSet(0, 3) != nil {
		t.Fatal("zero-capacity hot set not disabled")
	}
}

// TestHotStatsHitRate covers the rate arithmetic.
func TestHotStatsHitRate(t *testing.T) {
	if r := (HotStats{}).HitRate(); r != 0 {
		t.Fatalf("empty hit rate %v", r)
	}
	if r := (HotStats{Hits: 3, Misses: 1}).HitRate(); r != 0.75 {
		t.Fatalf("hit rate %v, want 0.75", r)
	}
}

// TestHotSetConcurrent hammers the set from several goroutines under -race.
func TestHotSetConcurrent(t *testing.T) {
	h := newHotSet(8, 2)
	rows := map[int64][]float32{}
	for id := int64(0); id < 32; id++ {
		rows[id] = row(float32(id))
	}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			ids := make([]int64, 4)
			for i := 0; i < 200; i++ {
				for k := range ids {
					ids[k] = int64((g + i + k) % 32)
				}
				h.touchAll(ids, rows)
				for _, id := range ids {
					if got, ok := h.get(id); ok {
						if want := rows[id]; got[0] != want[0] || got[1] != want[1] {
							panic(fmt.Sprintf("hot row %d corrupted: %v", id, got))
						}
					}
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if h.resident() > 8 {
		t.Fatalf("resident %d exceeds capacity", h.resident())
	}
}
