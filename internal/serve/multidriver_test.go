package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"embrace/internal/comm"
	"embrace/internal/nn"
)

// TestMultiDriverExactness is the driver-set acceptance test: with 4 ranks,
// every partition scheme, and drivers in {1, 2, 4}, concurrent traffic round-
// robined across all ingresses — caching, hot-shard replication, batching,
// and dedup all on — must stay bit-identical to the single-rank, cache-free
// forward pass, including across a mid-suite checkpoint reload. Drivers == 1
// is the single-driver baseline; the larger driver sets must be
// indistinguishable from it response-for-response.
func TestMultiDriverExactness(t *testing.T) {
	mA := nn.NewModel(31, testVocab, testDim, testHid)
	mB := nn.NewModel(32, testVocab, testDim, testHid)
	refA, refB := reference{mA}, reference{mB}
	ckA, ckB := ckptOf(mA, 10), ckptOf(mB, 20)

	for _, part := range []string{PartRowHash, PartConsistent, PartColumn} {
		for _, drivers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/drivers=%d", part, drivers), func(t *testing.T) {
				c, err := New(ckA, Config{
					Ranks:       4,
					Drivers:     drivers,
					Partition:   part,
					CacheRows:   16,
					HotRows:     16,
					HotPromote:  2,
					MaxBatch:    8,
					BatchWindow: time.Millisecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				if c.Drivers() != drivers {
					t.Fatalf("Drivers() = %d, want %d", c.Drivers(), drivers)
				}

				check := func(ref reference, tag string) {
					var wg sync.WaitGroup
					errs := make(chan error, 2*len(requestSet()))
					for i, ids := range requestSet() {
						// Half the traffic pins a specific ingress, half goes
						// through the cluster round-robin — both entry points
						// must agree with the reference.
						r := c.RouterAt(i % drivers)
						wg.Add(1)
						go func(ids []int64) {
							defer wg.Done()
							got, err := r.Lookup(context.Background(), ids)
							if err != nil {
								errs <- fmt.Errorf("%s: lookup %v: %w", tag, ids, err)
								return
							}
							if !rowsEqual(got, ref.lookup(ids)) {
								errs <- fmt.Errorf("%s: lookup %v not bit-identical", tag, ids)
							}
						}(ids)
						wg.Add(1)
						go func(ids []int64) {
							defer wg.Done()
							tok, prob, err := c.Predict(context.Background(), ids)
							if err != nil {
								errs <- fmt.Errorf("%s: predict %v: %w", tag, ids, err)
								return
							}
							wantTok, wantProb := ref.predict(ids)
							if tok != wantTok || prob != wantProb {
								errs <- fmt.Errorf("%s: predict %v = (%d, %g), want (%d, %g)",
									tag, ids, tok, prob, wantTok, wantProb)
							}
						}(ids)
					}
					wg.Wait()
					close(errs)
					for err := range errs {
						t.Error(err)
					}
				}

				check(refA, "ckptA")
				st := c.Stats()
				if st.Drivers != drivers {
					t.Errorf("Stats().Drivers = %d, want %d", st.Drivers, drivers)
				}
				if st.Coalesced == 0 {
					t.Error("dedup never coalesced a duplicate id")
				}
				if st.Hot.Promotions == 0 {
					t.Error("Zipf-ish workload promoted nothing into the hot set")
				}

				if err := c.Reload(ckB); err != nil {
					t.Fatalf("reload: %v", err)
				}
				check(refB, "ckptB")
				st = c.Stats()
				if st.Reloads != 1 {
					t.Errorf("reloads = %d", st.Reloads)
				}
				if st.Hot.Invalidations != 1 {
					t.Errorf("hot invalidations = %d, want 1", st.Hot.Invalidations)
				}
				if err := c.Err(); err != nil {
					t.Fatalf("cluster error: %v", err)
				}
			})
		}
	}
}

// TestStatsAggregateMerge is the satellite-1 unit check: Cluster.Stats must
// equal the hand-computed sum of every driver's DriverStats — counters
// summed field by field, histogram counts additive — so the cluster-wide
// view is a true aggregate, not rank 0's view wearing a new name.
func TestStatsAggregateMerge(t *testing.T) {
	const drivers = 4
	m := nn.NewModel(33, testVocab, testDim, testHid)
	c, err := New(ckptOf(m, 1), Config{
		Ranks:       4,
		Drivers:     drivers,
		Partition:   PartConsistent,
		CacheRows:   8,
		MaxBatch:    4,
		BatchWindow: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Uneven, deterministic per-driver load so the per-driver counters are
	// actually distinct: driver d gets d+1 rounds of lookups plus d predicts.
	ctx := context.Background()
	for d := 0; d < drivers; d++ {
		r := c.RouterAt(d)
		for round := 0; round <= d; round++ {
			for _, ids := range [][]int64{{1, 2, 3}, {1, 1, 7, 7}, {int64(10 + d)}} {
				if _, err := r.Lookup(ctx, ids); err != nil {
					t.Fatal(err)
				}
			}
		}
		for p := 0; p < d; p++ {
			if _, _, err := r.Predict(ctx, []int64{1, 2, 3, 4}); err != nil {
				t.Fatal(err)
			}
		}
	}

	var sum Stats
	for d := 0; d < drivers; d++ {
		ds := c.DriverStats(d)
		if ds.Drivers != 1 {
			t.Errorf("DriverStats(%d).Drivers = %d, want 1", d, ds.Drivers)
		}
		wantReq := int64(3*(d+1) + d)
		if ds.Requests != wantReq {
			t.Errorf("driver %d requests = %d, want %d", d, ds.Requests, wantReq)
		}
		sum.Requests += ds.Requests
		sum.Lookups += ds.Lookups
		sum.Predicts += ds.Predicts
		sum.Batches += ds.Batches
		sum.Exchanges += ds.Exchanges
		sum.Coalesced += ds.Coalesced
		sum.LocalRows += ds.LocalRows
		sum.RemoteRows += ds.RemoteRows
		sum.Overloaded += ds.Overloaded
		sum.Expired += ds.Expired
		sum.Cache.Hits += ds.Cache.Hits
		sum.Cache.Misses += ds.Cache.Misses
		sum.Cache.Evictions += ds.Cache.Evictions
		sum.Latency.Count += ds.Latency.Count
		sum.QueueWait.Count += ds.QueueWait.Count
	}

	agg := c.Stats()
	if agg.Requests != sum.Requests || agg.Lookups != sum.Lookups || agg.Predicts != sum.Predicts {
		t.Errorf("request counters: agg {%d %d %d}, hand-summed {%d %d %d}",
			agg.Requests, agg.Lookups, agg.Predicts, sum.Requests, sum.Lookups, sum.Predicts)
	}
	if agg.Batches != sum.Batches || agg.Exchanges != sum.Exchanges || agg.Coalesced != sum.Coalesced {
		t.Errorf("batch counters: agg {%d %d %d}, hand-summed {%d %d %d}",
			agg.Batches, agg.Exchanges, agg.Coalesced, sum.Batches, sum.Exchanges, sum.Coalesced)
	}
	if agg.LocalRows != sum.LocalRows || agg.RemoteRows != sum.RemoteRows {
		t.Errorf("row counters: agg {%d %d}, hand-summed {%d %d}",
			agg.LocalRows, agg.RemoteRows, sum.LocalRows, sum.RemoteRows)
	}
	if agg.Cache != sum.Cache {
		t.Errorf("cache counters: agg %+v, hand-summed %+v", agg.Cache, sum.Cache)
	}
	if agg.Latency.Count != sum.Latency.Count {
		t.Errorf("merged latency count = %d, hand-summed %d", agg.Latency.Count, sum.Latency.Count)
	}
	if agg.QueueWait.Count != sum.QueueWait.Count {
		t.Errorf("merged queue-wait count = %d, hand-summed %d", agg.QueueWait.Count, sum.QueueWait.Count)
	}
	if agg.Requests == 0 || agg.Latency.Count == 0 {
		t.Fatal("degenerate test: no traffic recorded")
	}
	// The merged p50 must lie within the per-driver extremes — a sanity bound
	// that catches merging summaries instead of histograms.
	lo, hi := math.Inf(1), math.Inf(-1)
	for d := 0; d < drivers; d++ {
		ds := c.DriverStats(d)
		if ds.Latency.P50 < lo {
			lo = ds.Latency.P50
		}
		if ds.Latency.P50 > hi {
			hi = ds.Latency.P50
		}
	}
	if agg.Latency.P50 < lo || agg.Latency.P50 > hi {
		t.Errorf("merged p50 %v outside per-driver p50 range [%v, %v]", agg.Latency.P50, lo, hi)
	}
}

// TestMultiDriverReloadConsistency is the satellite-2 regression: after
// Reload returns, EVERY ingress — each with its own warmed LRU, plus the
// shared hot set — serves the new checkpoint. No stale row on any driver,
// and concurrent traffic through the reload never blends checkpoints.
func TestMultiDriverReloadConsistency(t *testing.T) {
	const drivers = 4
	mA := nn.NewModel(34, testVocab, testDim, testHid)
	mB := nn.NewModel(35, testVocab, testDim, testHid)
	refA, refB := reference{mA}, reference{mB}

	c, err := New(ckptOf(mA, 1), Config{
		Ranks:       4,
		Drivers:     drivers,
		Partition:   PartConsistent,
		CacheRows:   32,
		HotRows:     32,
		HotPromote:  1, // promote on first sight: maximal staleness surface
		MaxBatch:    8,
		BatchWindow: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ids := []int64{1, 2, 3, 9, 27, 40, 63}
	wantA, wantB := refA.lookup(ids), refB.lookup(ids)

	// Warm every driver's LRU and the shared hot set with ckptA rows.
	for d := 0; d < drivers; d++ {
		for i := 0; i < 3; i++ {
			got, err := c.RouterAt(d).Lookup(context.Background(), ids)
			if err != nil {
				t.Fatal(err)
			}
			if !rowsEqual(got, wantA) {
				t.Fatalf("warmup via driver %d not ckptA", d)
			}
		}
	}
	if c.Stats().Hot.Resident == 0 {
		t.Fatal("warmup promoted nothing — the stale-replica surface is empty")
	}

	// Concurrent traffic on every ingress across the reload: responses must
	// be entirely old or entirely new, never a blend.
	stop := make(chan struct{})
	errs := make(chan error, 4*drivers)
	var wg sync.WaitGroup
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := c.RouterAt(d).Lookup(context.Background(), ids)
				if err != nil {
					errs <- fmt.Errorf("driver %d: %w", d, err)
					return
				}
				if !rowsEqual(got, wantA) && !rowsEqual(got, wantB) {
					errs <- fmt.Errorf("driver %d blended checkpoints mid-reload", d)
					return
				}
			}
		}(d)
	}
	time.Sleep(2 * time.Millisecond)
	if err := c.Reload(ckptOf(mB, 2)); err != nil {
		t.Fatalf("reload: %v", err)
	}

	// After Reload returns: every ingress, including its warmed caches and
	// the hot set, must serve only ckptB.
	for d := 0; d < drivers; d++ {
		for i := 0; i < 3; i++ { // repeats re-check via re-warmed cache/hot paths
			got, err := c.RouterAt(d).Lookup(context.Background(), ids)
			if err != nil {
				t.Fatal(err)
			}
			if !rowsEqual(got, wantB) {
				t.Fatalf("driver %d served a stale (ckptA) row after reload", d)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := c.Stats(); st.Hot.Invalidations != 1 {
		t.Errorf("hot invalidations = %d, want 1", st.Hot.Invalidations)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cluster error: %v", err)
	}
}

// TestMultiDriverUnderChaos extends the chaos bit-identity suite to a driver
// set: with two concurrent ingresses over the maskable plan (delays,
// duplicates, reorders, transient failures), every response on every driver
// stays bit-identical and a reload under fire leaves no stale row anywhere.
func TestMultiDriverUnderChaos(t *testing.T) {
	mA := nn.NewModel(36, testVocab, testDim, testHid)
	mB := nn.NewModel(37, testVocab, testDim, testHid)
	refA, refB := reference{mA}, reference{mB}

	for _, seed := range []int64{1, 2} {
		for _, part := range []string{PartRowHash, PartConsistent} {
			plan := comm.MaskableChaosPlan(seed)
			c, err := New(ckptOf(mA, 1), Config{
				Ranks:       4,
				Drivers:     2,
				Partition:   part,
				CacheRows:   8,
				HotRows:     8,
				HotPromote:  2,
				MaxBatch:    4,
				BatchWindow: 200 * time.Microsecond,
				Chaos:       &plan,
			})
			if err != nil {
				t.Fatal(err)
			}
			sweep := func(ref reference, tag string) {
				for i, ids := range requestSet() {
					r := c.RouterAt(i % 2)
					got, err := r.Lookup(context.Background(), ids)
					if err != nil {
						t.Fatalf("seed %d %s %s: driver %d lookup %v: %v", seed, part, tag, i%2, ids, err)
					}
					if !rowsEqual(got, ref.lookup(ids)) {
						t.Fatalf("seed %d %s %s: driver %d lookup %v diverged", seed, part, tag, i%2, ids)
					}
				}
			}
			sweep(refA, "ckptA")
			if err := c.Reload(ckptOf(mB, 2)); err != nil {
				t.Fatalf("seed %d %s: reload under chaos: %v", seed, part, err)
			}
			sweep(refB, "ckptB")
			if err := c.Err(); err != nil {
				t.Fatalf("seed %d %s: cluster error: %v", seed, part, err)
			}
			c.Close()
		}
	}
}

// TestDriverCrashIsolated is the satellite-3 crash check: killing one driver
// rank surfaces as typed comm.ErrPeerDown on that driver's in-flight
// requests — every one is answered, none hang — while the surviving driver
// keeps serving everything its own shard can satisfy, and Close still tears
// the cluster down cleanly.
func TestDriverCrashIsolated(t *testing.T) {
	const ranks = 2
	m := nn.NewModel(38, testVocab, testDim, testHid)
	ref := reference{m}

	// Rank 1 (driver 1) dies on its first send. Nothing sends at boot, so
	// the crash fires exactly when driver 1 first conscripts an exchange.
	plan := comm.FaultPlan{Seed: 1, Rules: []comm.FaultRule{
		{Kind: comm.FaultCrash, Rate: 1, From: 1, To: comm.AnyRank},
	}}
	c, err := New(ckptOf(m, 1), Config{
		Ranks:       ranks,
		Drivers:     2,
		Partition:   PartRowHash,
		MaxBatch:    8,
		BatchWindow: time.Millisecond,
		Chaos:       &plan,
		RecvTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	var mine, theirs []int64 // rank-0-owned vs rank-1-owned
	for id := int64(0); id < testVocab; id++ {
		if rowOwner(PartRowHash, id, ranks) == 0 {
			mine = append(mine, id)
		} else {
			theirs = append(theirs, id)
		}
	}

	// Several concurrent in-flight requests on driver 1, all needing rank-0
	// rows: the ctl broadcast is driver 1's first send, so it crashes, and
	// every request must come back with the typed error — promptly.
	const inflight = 4
	got := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			_, err := c.RouterAt(1).Lookup(context.Background(), mine[:3])
			got <- err
		}()
	}
	for i := 0; i < inflight; i++ {
		select {
		case err := <-got:
			if !errors.Is(err, comm.ErrPeerDown) {
				t.Errorf("crashed-driver request error = %v, want comm.ErrPeerDown", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("request on crashed driver hung instead of failing")
		}
	}

	// The surviving driver's own rows still serve — the crash did not wedge
	// the other ingress.
	res, err := c.RouterAt(0).Lookup(context.Background(), mine[:4])
	if err != nil {
		t.Fatalf("surviving driver failed on its own rows: %v", err)
	}
	if !rowsEqual(res, ref.lookup(mine[:4])) {
		t.Fatal("surviving driver served wrong rows after peer crash")
	}

	// A remote fetch from the survivor needs the dead rank and must fail
	// typed too, not hang.
	if _, err := c.RouterAt(0).Lookup(context.Background(), theirs[:1]); err == nil {
		t.Fatal("survivor fetched rows from a crashed rank")
	}

	done := make(chan struct{})
	go func() { c.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close wedged after driver crash")
	}
}

// TestHotSetServesWithoutFabric is the replication fast-path proof: once the
// hot rows are promoted, a hot-row-only workload — on EVERY driver, cache
// disabled so only the replicas can answer — adds nothing to Packed and runs
// no exchanges. Replicated rows serve without touching the fabric.
func TestHotSetServesWithoutFabric(t *testing.T) {
	const drivers = 2
	m := nn.NewModel(39, testVocab, testDim, testHid)
	ref := reference{m}

	c, err := New(ckptOf(m, 1), Config{
		Ranks:       4,
		Drivers:     drivers,
		Partition:   PartConsistent,
		CacheRows:   0, // LRUs off: replicas are the only local copies
		HotRows:     16,
		HotPromote:  1,
		MaxBatch:    8,
		BatchWindow: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	hot := []int64{3, 7, 11, 42}
	// Warm once through driver 0: these fetches may exchange and pack.
	if _, err := c.RouterAt(0).Lookup(context.Background(), hot); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hot.Resident != int64(len(hot)) {
		t.Fatalf("hot residents = %d after warmup, want %d", st.Hot.Resident, len(hot))
	}
	packedBefore, exchangesBefore := st.Packed, st.Exchanges

	// Hot-only load on both drivers: zero new packing, zero new exchanges.
	for round := 0; round < 10; round++ {
		for d := 0; d < drivers; d++ {
			got, err := c.RouterAt(d).Lookup(context.Background(), hot)
			if err != nil {
				t.Fatal(err)
			}
			if !rowsEqual(got, ref.lookup(hot)) {
				t.Fatalf("driver %d hot-set rows not bit-identical", d)
			}
		}
	}
	st = c.Stats()
	if st.Packed != packedBefore {
		t.Errorf("hot-only load packed %d rows over the fabric, want 0", st.Packed-packedBefore)
	}
	if st.Exchanges != exchangesBefore {
		t.Errorf("hot-only load ran %d exchanges, want 0", st.Exchanges-exchangesBefore)
	}
	if st.Hot.Hits == 0 {
		t.Error("hot-only load recorded no replica hits")
	}
	if hr := st.Hot.HitRate(); hr < 0.5 {
		t.Errorf("hot hit rate %.2f, want >= 0.5 on a hot-only workload", hr)
	}
}

// TestMultiDriverTCP boots the driver set over the real TCP fabric — the
// configuration the scale benchmark measures — and checks bit-identity and
// the multi-driver load generator's per-driver report.
func TestMultiDriverTCP(t *testing.T) {
	m := nn.NewModel(40, testVocab, testDim, testHid)
	ref := reference{m}
	c, err := New(ckptOf(m, 1), Config{
		Ranks:       2,
		Drivers:     2,
		Partition:   PartConsistent,
		CacheRows:   16,
		HotRows:     16,
		MaxBatch:    8,
		BatchWindow: 200 * time.Microsecond,
		TCP:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i, ids := range requestSet()[:12] {
		got, err := c.RouterAt(i % 2).Lookup(context.Background(), ids)
		if err != nil {
			t.Fatalf("tcp lookup %v: %v", ids, err)
		}
		if !rowsEqual(got, ref.lookup(ids)) {
			t.Fatalf("tcp lookup %v diverged", ids)
		}
	}

	rep := RunLoad(c, LoadConfig{Clients: 4, Requests: 25, IDsPerRequest: 3, Seed: 99})
	if rep.Requests != 100 || rep.Errors != 0 {
		t.Fatalf("load report %+v", rep)
	}
	if len(rep.PerDriver) != 2 {
		t.Fatalf("per-driver entries = %d, want 2", len(rep.PerDriver))
	}
	var sum int64
	for _, dl := range rep.PerDriver {
		if dl.Requests != 50 {
			t.Errorf("driver %d requests = %d, want 50", dl.Driver, dl.Requests)
		}
		sum += dl.Latency.Count
	}
	if sum != rep.Latency.Count {
		t.Errorf("per-driver latency counts sum to %d, merged report has %d", sum, rep.Latency.Count)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cluster error: %v", err)
	}
}

// TestChaosRejectsTCP pins the config guard: fault injection wraps the
// in-process world, so combining it with the TCP fabric must be refused.
func TestChaosRejectsTCP(t *testing.T) {
	m := nn.NewModel(41, testVocab, testDim, testHid)
	plan := comm.MaskableChaosPlan(1)
	if _, err := New(ckptOf(m, 1), Config{Ranks: 2, TCP: true, Chaos: &plan}); err == nil {
		t.Fatal("chaos over TCP accepted")
	}
}
