package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"embrace/internal/metrics"
)

// LoadConfig parameterizes a closed-loop load run: Clients goroutines each
// issue Requests back-to-back (a new request the moment the previous one
// answers), drawing ids from the Zipf distribution that models real lookup
// traffic. Closed-loop load measures the system's sustainable throughput
// rather than an arrival-rate fiction.
//
// With a multi-driver cluster, client cl pins to ingress cl mod Drivers —
// the external-load-balancer model — so every driver sees its own closed
// loop and the merged report measures the whole serving plane.
type LoadConfig struct {
	// Clients is the number of concurrent closed-loop clients (default 4).
	Clients int
	// Requests is how many requests each client issues (default 100).
	Requests int
	// IDsPerRequest is the lookup size / predict window (default 4).
	IDsPerRequest int
	// Predict switches the workload from Lookup to Predict requests.
	Predict bool
	// ZipfS and ZipfV shape the id skew (defaults 1.3 and 2, matching the
	// synthetic training corpus).
	ZipfS, ZipfV float64
	// Vocab bounds the drawn ids; 0 uses the serving vocabulary.
	Vocab int
	// Seed makes each client's id stream deterministic (client i uses
	// Seed+i), so two runs against different configurations see identical
	// request sequences.
	Seed int64
	// Timeout, when positive, attaches a per-request deadline.
	Timeout time.Duration
}

func (l LoadConfig) withDefaults(vocab int) LoadConfig {
	if l.Clients <= 0 {
		l.Clients = 4
	}
	if l.Requests <= 0 {
		l.Requests = 100
	}
	if l.IDsPerRequest <= 0 {
		l.IDsPerRequest = 4
	}
	if l.ZipfS <= 1 {
		l.ZipfS = 1.3
	}
	if l.ZipfV < 1 {
		l.ZipfV = 2
	}
	if l.Vocab <= 0 || l.Vocab > vocab {
		l.Vocab = vocab
	}
	return l
}

// DriverLoad is one ingress's share of a load run.
type DriverLoad struct {
	// Driver is the ingress rank the clients pinned to.
	Driver int
	// Requests issued through this driver; Errors (with Overloaded and
	// Expired broken out) how many failed.
	Requests, Errors, Overloaded, Expired int64
	// QPS is this driver's completed requests over the run's wall clock.
	QPS float64
	// Latency digests this driver's per-request latency.
	Latency metrics.Summary
}

// LoadReport summarizes one load run. The top-level numbers aggregate the
// whole serving plane: counters summed, per-driver latency histograms merged
// exactly (metrics.Histogram.Merge), so the combined percentiles carry no
// averaging error.
type LoadReport struct {
	// Requests issued; Errors how many failed, with Overloaded and Expired
	// broken out of that count.
	Requests, Errors, Overloaded, Expired int64
	// Elapsed is the wall-clock span of the run; QPS the completed
	// (non-error) requests per second over it.
	Elapsed time.Duration
	QPS     float64
	// Latency digests per-request latency as observed by the clients,
	// merged across all drivers.
	Latency metrics.Summary
	// PerDriver breaks the run down by ingress, one entry per driver.
	PerDriver []DriverLoad
}

// String renders the report for benchmark logs.
func (r LoadReport) String() string {
	return fmt.Sprintf("req=%d err=%d (overloaded=%d expired=%d) elapsed=%s qps=%.0f drivers=%d lat{%s}",
		r.Requests, r.Errors, r.Overloaded, r.Expired,
		r.Elapsed.Round(time.Millisecond), r.QPS, len(r.PerDriver), r.Latency)
}

// driverTally accumulates one ingress's share of the run. The histogram is
// concurrency-safe; the counters are folded under the tally mutex.
type driverTally struct {
	mu                        sync.Mutex
	requests, errs, over, exp int64
	lat                       *metrics.Histogram
}

// RunLoad fires cfg's closed-loop workload at the cluster, client cl pinned
// to driver cl mod Drivers, and reports merged plus per-driver throughput
// and latency. It is synchronous: it returns when every client has finished.
func RunLoad(c *Cluster, cfg LoadConfig) LoadReport {
	cfg = cfg.withDefaults(c.vocab)
	drivers := c.Drivers()
	tallies := make([]*driverTally, drivers)
	for d := range tallies {
		tallies[d] = &driverTally{lat: metrics.NewHistogram()}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for cl := 0; cl < cfg.Clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			tally := tallies[cl%drivers]
			router := c.RouterAt(cl % drivers)
			rng := rand.New(rand.NewSource(cfg.Seed + int64(cl)))
			zipf := rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Vocab-1))
			ids := make([]int64, cfg.IDsPerRequest)
			var nerr, nover, nexp int64
			for i := 0; i < cfg.Requests; i++ {
				for k := range ids {
					ids[k] = int64(zipf.Uint64())
				}
				ctx := context.Background()
				var cancel context.CancelFunc
				if cfg.Timeout > 0 {
					ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
				}
				t0 := time.Now()
				var err error
				if cfg.Predict {
					_, _, err = router.Predict(ctx, ids)
				} else {
					_, err = router.Lookup(ctx, ids)
				}
				if cancel != nil {
					cancel()
				}
				if err != nil {
					nerr++
					switch {
					case errors.Is(err, ErrOverloaded):
						nover++
					case errors.Is(err, ErrDeadline):
						nexp++
					}
					continue
				}
				tally.lat.ObserveDuration(time.Since(t0))
			}
			tally.mu.Lock()
			tally.requests += int64(cfg.Requests)
			tally.errs += nerr
			tally.over += nover
			tally.exp += nexp
			tally.mu.Unlock()
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)

	merged := metrics.NewHistogram()
	rep := LoadReport{Elapsed: elapsed, PerDriver: make([]DriverLoad, drivers)}
	for d, tally := range tallies {
		tally.mu.Lock()
		dl := DriverLoad{
			Driver:     d,
			Requests:   tally.requests,
			Errors:     tally.errs,
			Overloaded: tally.over,
			Expired:    tally.exp,
			Latency:    tally.lat.Summary(),
		}
		tally.mu.Unlock()
		if elapsed > 0 {
			dl.QPS = float64(dl.Requests-dl.Errors) / elapsed.Seconds()
		}
		rep.PerDriver[d] = dl
		rep.Requests += dl.Requests
		rep.Errors += dl.Errors
		rep.Overloaded += dl.Overloaded
		rep.Expired += dl.Expired
		merged.Merge(tally.lat)
	}
	rep.Latency = merged.Summary()
	if elapsed > 0 {
		rep.QPS = float64(rep.Requests-rep.Errors) / elapsed.Seconds()
	}
	return rep
}
