package serve

import (
	"context"
	"testing"
	"time"

	"embrace/internal/comm"
	"embrace/internal/compress"
	"embrace/internal/nn"
)

// TestServingUnderChaos wraps the serving fabric in the maskable chaos plan
// (delays, duplicates, reorders, transient send failures) and proves every
// response stays bit-identical to the fault-free reference: the Communicator
// self-heals faults below the serving protocol, so clients cannot tell a
// lossy fabric from a clean one.
func TestServingUnderChaos(t *testing.T) {
	m := nn.NewModel(21, testVocab, testDim, testHid)
	ref := reference{m}
	ck := ckptOf(m, 1)

	anyInjected := false
	for _, seed := range []int64{1, 2, 3} {
		for _, part := range []string{PartRowHash, PartColumn} {
			plan := comm.MaskableChaosPlan(seed)
			c, err := New(ck, Config{
				Ranks:       4,
				Partition:   part,
				CacheRows:   0, // cache off: every request exercises the fabric
				MaxBatch:    4,
				BatchWindow: 200 * time.Microsecond,
				Chaos:       &plan,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, ids := range requestSet() {
				got, err := c.Lookup(context.Background(), ids)
				if err != nil {
					t.Fatalf("seed %d %s: lookup %v: %v", seed, part, ids, err)
				}
				if !rowsEqual(got, ref.lookup(ids)) {
					t.Fatalf("seed %d %s: lookup %v diverged under chaos", seed, part, ids)
				}
				tok, prob, err := c.Predict(context.Background(), ids)
				if err != nil {
					t.Fatalf("seed %d %s: predict %v: %v", seed, part, ids, err)
				}
				wantTok, wantProb := ref.predict(ids)
				if tok != wantTok || prob != wantProb {
					t.Fatalf("seed %d %s: predict %v diverged under chaos", seed, part, ids)
				}
			}
			if err := c.Err(); err != nil {
				t.Fatalf("seed %d %s: cluster error: %v", seed, part, err)
			}
			inj := c.FaultsInjected()
			for _, n := range inj {
				if n > 0 {
					anyInjected = true
				}
			}
			c.Close()
		}
	}
	if !anyInjected {
		t.Fatal("no faults were injected across any seed — the chaos plans exercised nothing")
	}
}

// TestServingCompressedUnderChaos layers the lossless wire codec on top of
// the chaotic fabric: the inter-rank row-fetch AlltoAll ships delta-varint
// compressed shards, and responses stay bit-identical to the fault-free,
// uncompressed reference under every maskable plan and both partitions.
func TestServingCompressedUnderChaos(t *testing.T) {
	m := nn.NewModel(24, testVocab, testDim, testHid)
	ref := reference{m}
	ck := ckptOf(m, 1)

	for _, seed := range []int64{1, 2, 3} {
		for _, part := range []string{PartRowHash, PartColumn} {
			plan := comm.MaskableChaosPlan(seed)
			c, err := New(ck, Config{
				Ranks:       4,
				Partition:   part,
				CacheRows:   0,
				MaxBatch:    4,
				BatchWindow: 200 * time.Microsecond,
				Chaos:       &plan,
				Codec:       compress.DeltaRaw{},
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, ids := range requestSet() {
				got, err := c.Lookup(context.Background(), ids)
				if err != nil {
					t.Fatalf("seed %d %s: lookup %v: %v", seed, part, ids, err)
				}
				if !rowsEqual(got, ref.lookup(ids)) {
					t.Fatalf("seed %d %s: compressed lookup %v diverged", seed, part, ids)
				}
			}
			if err := c.Err(); err != nil {
				t.Fatalf("seed %d %s: cluster error: %v", seed, part, err)
			}
			c.Close()
		}
	}
}

// TestServingUnderChaosWithCacheAndReload runs the full production path —
// cache on, concurrent load, a reload mid-run — over the chaotic fabric.
func TestServingUnderChaosWithCacheAndReload(t *testing.T) {
	mA := nn.NewModel(22, testVocab, testDim, testHid)
	mB := nn.NewModel(23, testVocab, testDim, testHid)
	refA, refB := reference{mA}, reference{mB}

	plan := comm.MaskableChaosPlan(9)
	c, err := New(ckptOf(mA, 1), Config{
		Ranks:       4,
		Partition:   PartRowHash,
		CacheRows:   16,
		MaxBatch:    8,
		BatchWindow: 200 * time.Microsecond,
		Chaos:       &plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, ids := range requestSet() {
		got, err := c.Lookup(context.Background(), ids)
		if err != nil {
			t.Fatal(err)
		}
		if !rowsEqual(got, refA.lookup(ids)) {
			t.Fatalf("chaos+cache: lookup %v diverged", ids)
		}
	}
	if err := c.Reload(ckptOf(mB, 2)); err != nil {
		t.Fatalf("reload under chaos: %v", err)
	}
	for _, ids := range requestSet() {
		got, err := c.Lookup(context.Background(), ids)
		if err != nil {
			t.Fatal(err)
		}
		if !rowsEqual(got, refB.lookup(ids)) {
			t.Fatalf("chaos post-reload: lookup %v served stale data", ids)
		}
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cluster error: %v", err)
	}
}
