package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"embrace/internal/metrics"
	"embrace/internal/partition"
	"embrace/internal/tensor"
	"embrace/internal/trace"
)

// Typed serving errors. Callers branch on these with errors.Is.
var (
	// ErrOverloaded is returned at admission when the bounded queue is full:
	// the request fails fast instead of queuing unboundedly.
	ErrOverloaded = errors.New("serve: overloaded (admission queue full)")
	// ErrDeadline is returned when a request's deadline passes before the
	// driver computes its answer. Expired requests are dropped before the
	// exchange, so they never occupy an exchange slot.
	ErrDeadline = errors.New("serve: deadline exceeded")
	// ErrClosed is returned for requests that race or follow Close.
	ErrClosed = errors.New("serve: cluster closed")
)

// reqKind discriminates the two request types.
type reqKind int

const (
	kindLookup reqKind = iota
	kindPredict
)

// request is one admitted unit of work, owned by the driver after admission.
type request struct {
	kind     reqKind
	ids      []int64 // lookup: rows to fetch; predict: the token window
	deadline time.Time
	admitted time.Time
	done     chan response
}

// response carries a request's result back to its submitter.
type response struct {
	rows  [][]float32 // lookup
	token int64       // predict: argmax token
	prob  float32     // predict: its probability
	err   error
}

// reloadReq asks a driver to join the reload rendezvous between batches.
// The checkpoint itself travels via Cluster.pending, set before fan-out.
type reloadReq struct {
	done chan error
}

// Router is one driver's front end: it admits concurrent Lookup and Predict
// calls into that driver's bounded queue, where the driver goroutine
// micro-batches them. Each Router owns its admission queue, deadline gate,
// hot-row LRU, and stat block — drivers share nothing on the request path
// except the read-mostly hot set and their ranks' shards. All methods are
// safe for concurrent use.
type Router struct {
	c        *Cluster
	driver   int // the driver's rank == its tag plane
	queue    chan *request
	reloadCh chan *reloadReq
	cache    *lruCache // nil when caching is disabled
	ctr      counters

	closedMu chan struct{} // closed exactly once by close(); nil-check via select
}

func newRouter(c *Cluster, driver, depth int) *Router {
	r := &Router{
		c:        c,
		driver:   driver,
		queue:    make(chan *request, depth),
		reloadCh: make(chan *reloadReq),
		closedMu: make(chan struct{}),
	}
	r.ctr.latency = metrics.NewHistogram()
	r.ctr.queueWait = metrics.NewHistogram()
	r.cache = newLRUCache(c.cfg.CacheRows, &r.ctr.cache)
	return r
}

// Driver returns the rank this router fronts.
func (r *Router) Driver() int { return r.driver }

func (r *Router) close() { close(r.closedMu) }

func (r *Router) closed() bool {
	select {
	case <-r.closedMu:
		return true
	default:
		return false
	}
}

// driverStats snapshots this driver's own counters as a Stats value.
// Cluster-level fields (Packed, Reloads, Hot, CommPerOp) stay zero.
func (r *Router) driverStats() Stats {
	return Stats{
		Drivers:    1,
		Requests:   r.ctr.requests.Load(),
		Lookups:    r.ctr.lookups.Load(),
		Predicts:   r.ctr.predicts.Load(),
		Batches:    r.ctr.batches.Load(),
		Exchanges:  r.ctr.exchanges.Load(),
		Coalesced:  r.ctr.coalesced.Load(),
		LocalRows:  r.ctr.localRows.Load(),
		RemoteRows: r.ctr.remoteRows.Load(),
		Overloaded: r.ctr.overloaded.Load(),
		Expired:    r.ctr.expired.Load(),
		Cache:      r.ctr.cache.Snapshot(),
		Latency:    r.ctr.latency.Summary(),
		QueueWait:  r.ctr.queueWait.Summary(),
	}
}

// Lookup resolves the embedding row of every id, in order, including
// duplicates. The returned rows are private copies. Fails fast with
// ErrOverloaded when the admission queue is full and with ErrDeadline when
// ctx's deadline expires before the rows are resolved.
func (r *Router) Lookup(ctx context.Context, ids []int64) ([][]float32, error) {
	resp := r.do(ctx, &request{kind: kindLookup, ids: ids})
	return resp.rows, resp.err
}

// Predict mean-pools the window's embedding rows, runs the trunk, and
// returns the argmax next token with its probability — arithmetic identical
// to the training model's forward pass over the same checkpoint.
func (r *Router) Predict(ctx context.Context, window []int64) (int64, float32, error) {
	resp := r.do(ctx, &request{kind: kindPredict, ids: window})
	return resp.token, resp.prob, resp.err
}

// do admits one request and waits for its reply.
func (r *Router) do(ctx context.Context, req *request) response {
	for _, id := range req.ids {
		if id < 0 || id >= int64(r.c.vocab) {
			return response{err: fmt.Errorf("serve: id %d outside vocab [0, %d)", id, r.c.vocab)}
		}
	}
	if r.closed() {
		return response{err: ErrClosed}
	}
	if err := ctx.Err(); err != nil {
		return response{err: fmt.Errorf("%w: %v", ErrDeadline, err)}
	}
	if dl, ok := ctx.Deadline(); ok {
		req.deadline = dl
	}
	req.admitted = time.Now()
	req.done = make(chan response, 1)
	select {
	case r.queue <- req:
	default:
		r.ctr.overloaded.Add(1)
		return response{err: ErrOverloaded}
	}
	r.ctr.requests.Add(1)
	if req.kind == kindLookup {
		r.ctr.lookups.Add(1)
	} else {
		r.ctr.predicts.Add(1)
	}
	// The driver answers every admitted request, including during shutdown,
	// so this receive always completes.
	resp := <-req.done
	r.ctr.latency.ObserveDuration(time.Since(req.admitted))
	return resp
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

// driverLoop is a driver rank's life on its own plane: collect a micro-batch
// from its router, resolve it, reply; interleave reloads between batches; on
// Close, flush and release the plane's followers.
func (c *Cluster) driverLoop(n *node) {
	r := c.routers[n.plane]
	for {
		select {
		case <-c.closeCh:
			c.shutdown(n, r)
			return
		case rr := <-r.reloadCh:
			rr.done <- c.driverReload(n, r)
		case req := <-r.queue:
			batch := c.collectBatch(r, req)
			c.processBatch(n, r, batch)
		}
	}
}

// collectBatch waits up to BatchWindow for more requests after the first,
// capped at MaxBatch — the micro-batching that makes within-batch dedup (and
// the single exchange per batch) worth having.
func (c *Cluster) collectBatch(r *Router, first *request) []*request {
	batch := []*request{first}
	if c.cfg.MaxBatch == 1 {
		return batch
	}
	timer := time.NewTimer(c.cfg.BatchWindow)
	defer timer.Stop()
	for len(batch) < c.cfg.MaxBatch {
		select {
		case req := <-r.queue:
			batch = append(batch, req)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// shutdown releases the plane's followers and answers everything still
// queued on this driver.
func (c *Cluster) shutdown(n *node, r *Router) {
	if err := c.broadcastCtl(n, ctlShutdown); err != nil {
		c.fail(fmt.Errorf("serve: driver %d shutdown broadcast: %w", n.plane, err))
	}
	for {
		select {
		case req := <-r.queue:
			req.done <- response{err: ErrClosed}
		case rr := <-r.reloadCh:
			rr.done <- ErrClosed
		default:
			return
		}
	}
}

// driverReload conscripts this plane into the cluster-wide reload: broadcast
// ctlReload to the plane's followers, join the rendezvous (whose last
// arrival rebuilds every rank and flushes the hot set), then drop this
// driver's now-stale cache.
func (c *Cluster) driverReload(n *node, r *Router) error {
	if err := c.broadcastCtl(n, ctlReload); err != nil {
		return fmt.Errorf("serve: driver %d reload broadcast: %w", n.plane, err)
	}
	if err := c.reloadRendezvous(n); err != nil {
		return err
	}
	r.cacheClear()
	return nil
}

// processBatch answers one micro-batch: drop expired requests, dedup ids,
// resolve rows (cache, hot set, local shard, exchange), then compute and
// reply.
func (c *Cluster) processBatch(n *node, r *Router, batch []*request) {
	r.ctr.batches.Add(1)
	tr := c.tracers[n.rank]
	now := time.Now()
	r.ctr.queueWait.ObserveDuration(now.Sub(batch[0].admitted))
	tr.Record(trace.TrackCompute, "serve/queue-wait", -1, now.Sub(batch[0].admitted))

	// Deadline gate: an expired request is answered now and excluded, so it
	// never occupies an exchange slot.
	live := batch[:0]
	for _, req := range batch {
		if !req.deadline.IsZero() && now.After(req.deadline) {
			r.ctr.expired.Add(1)
			req.done <- response{err: ErrDeadline}
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return
	}

	// Coalesce: the union of all ids, deduplicated in first-seen order.
	var need []int64
	seen := make(map[int64]struct{})
	total := 0
	for _, req := range live {
		for _, id := range req.ids {
			total++
			if _, ok := seen[id]; !ok {
				seen[id] = struct{}{}
				need = append(need, id)
			}
		}
	}
	r.ctr.coalesced.Add(int64(total - len(need)))

	rows, err := c.resolve(n, r, need)
	if err != nil {
		c.fail(err)
		for _, req := range live {
			req.done <- response{err: err}
		}
		return
	}

	c.reply(n, live, rows)
}

// resolve maps each unique id to its full embedding row: this driver's LRU
// first, then the cluster-wide replicated hot set, and only for what's left
// the shards (conscripting the plane when remote rows are involved). Every
// access feeds the hot set's frequency tracker, so rows any driver keeps
// seeing get promoted into replicas all drivers serve locally.
func (c *Cluster) resolve(n *node, r *Router, need []int64) (map[int64][]float32, error) {
	rows := make(map[int64][]float32, len(need))
	var miss []int64
	for _, id := range need {
		if row, ok := r.cacheGet(id); ok {
			rows[id] = row
			continue
		}
		if row, ok := c.hot.get(id); ok {
			rows[id] = row
			continue
		}
		miss = append(miss, id)
	}
	if len(miss) > 0 {
		tr := c.tracers[n.rank]
		span := tr.Begin(trace.TrackCompute, "serve/xchg", -1)
		fetched, err := c.fetchRows(n, r, miss)
		span.End()
		if err != nil {
			return nil, err
		}
		for id, row := range fetched {
			rows[id] = row
			r.cachePut(id, row)
		}
	}
	// One frequency update per batch over the deduplicated set, with every
	// resolved value in hand for promotion. Hot-set rows are bit-exact copies
	// of what this lookup path just served, so replica hits on any driver
	// return exactly what a shard fetch would.
	c.hot.touchAll(need, rows)
	return rows, nil
}

// fetchRows resolves misses from the shards. The row schemes route each id
// to its owner and skip the cross-rank exchange entirely when this driver's
// rank owns every miss; column-wise asks every rank for its column slice of
// every miss and reassembles (single-rank clusters short-circuit to a local
// fetch).
func (c *Cluster) fetchRows(n *node, r *Router, miss []int64) (map[int64][]float32, error) {
	ranks := c.cfg.Ranks
	reqLists := make([][]int64, ranks)
	switch c.cfg.Partition {
	case PartRowHash, PartConsistent:
		for _, id := range miss {
			owner := rowOwner(c.cfg.Partition, id, ranks)
			reqLists[owner] = append(reqLists[owner], id)
		}
	case PartColumn:
		for p := 0; p < ranks; p++ {
			reqLists[p] = miss
		}
	}

	remote := 0
	for p := 0; p < ranks; p++ {
		if p != n.rank {
			remote += len(reqLists[p])
		}
	}
	r.ctr.localRows.Add(int64(len(reqLists[n.rank])))
	r.ctr.remoteRows.Add(int64(remote))

	// Local fast path: every missed row lives in the driver's own shard, so
	// resolve straight from shard storage — no sparse packing, no exchange,
	// no follower conscription. Stats().Packed staying 0 is the observable
	// form of this elision.
	if remote == 0 {
		out := make(map[int64][]float32, len(reqLists[n.rank]))
		n.rs.mu.RLock()
		for _, id := range reqLists[n.rank] {
			src, err := n.rs.shard.payload(id)
			if err != nil {
				n.rs.mu.RUnlock()
				return nil, err
			}
			out[id] = append([]float32(nil), src...)
		}
		n.rs.mu.RUnlock()
		return out, nil
	}

	if err := c.broadcastCtl(n, ctlExchange); err != nil {
		return nil, fmt.Errorf("serve: driver %d exchange broadcast: %w", n.plane, err)
	}
	r.ctr.exchanges.Add(1)
	arena, err := c.exchange(n, reqLists)
	if err != nil {
		return nil, fmt.Errorf("serve: driver %d exchange: %w", n.plane, err)
	}

	out := make(map[int64][]float32, len(miss))
	var recv tensor.Sparse
	switch c.cfg.Partition {
	case PartRowHash, PartConsistent:
		// Sender p's arena shard holds reqLists[p]'s rows in request order.
		for p := 0; p < ranks; p++ {
			arena.ShardView(p, &recv)
			for k, id := range reqLists[p] {
				out[id] = append([]float32(nil), recv.Row(k)...)
			}
		}
	case PartColumn:
		// Every rank answered the same miss list with its column slice;
		// reassemble each row at the deterministic column offsets.
		for k, id := range miss {
			row := make([]float32, c.embDim)
			for p := 0; p < ranks; p++ {
				lo, hi := (partition.ColumnWise{}).Range(c.embDim, ranks, p)
				arena.ShardView(p, &recv)
				copy(row[lo:hi], recv.Row(k))
			}
			out[id] = row
		}
	}
	return out, nil
}

// reply computes each live request's answer from the resolved rows. All
// predict requests share one batched trunk forward; Infer is row-independent,
// so batching preserves bit-identity with a per-request forward.
func (c *Cluster) reply(n *node, live []*request, rows map[int64][]float32) {
	var predicts []*request
	for _, req := range live {
		if req.kind == kindPredict {
			predicts = append(predicts, req)
			continue
		}
		out := make([][]float32, len(req.ids))
		for i, id := range req.ids {
			out[i] = append([]float32(nil), rows[id]...)
		}
		req.done <- response{rows: out}
	}
	if len(predicts) == 0 {
		return
	}

	tr := c.tracers[n.rank]
	span := tr.Begin(trace.TrackCompute, "serve/fwd", -1)
	defer span.End()

	// Mean-pool each window with exactly nn.Embedding.PoolLookup's
	// arithmetic: accumulate row*inv in window order.
	pooled := tensor.NewDense(len(predicts), c.embDim)
	for i, req := range predicts {
		dst := pooled.Row(i)
		if len(req.ids) == 0 {
			continue
		}
		inv := 1 / float32(len(req.ids))
		for _, tok := range req.ids {
			src := rows[tok]
			for d := 0; d < c.embDim; d++ {
				dst[d] += src[d] * inv
			}
		}
	}
	n.rs.mu.RLock()
	trunk := n.rs.trunk
	n.rs.mu.RUnlock()
	probs, err := trunk.Infer(pooled)
	if err != nil {
		for _, req := range predicts {
			req.done <- response{err: err}
		}
		return
	}
	for i, req := range predicts {
		row := probs.Row(i)
		best := 0
		for v := 1; v < len(row); v++ {
			if row[v] > row[best] {
				best = v
			}
		}
		req.done <- response{token: int64(best), prob: row[best]}
	}
}
