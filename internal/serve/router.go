package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"embrace/internal/checkpoint"
	"embrace/internal/partition"
	"embrace/internal/tensor"
	"embrace/internal/trace"
)

// Typed serving errors. Callers branch on these with errors.Is.
var (
	// ErrOverloaded is returned at admission when the bounded queue is full:
	// the request fails fast instead of queuing unboundedly.
	ErrOverloaded = errors.New("serve: overloaded (admission queue full)")
	// ErrDeadline is returned when a request's deadline passes before the
	// driver computes its answer. Expired requests are dropped before the
	// exchange, so they never occupy an exchange slot.
	ErrDeadline = errors.New("serve: deadline exceeded")
	// ErrClosed is returned for requests that race or follow Close.
	ErrClosed = errors.New("serve: cluster closed")
)

// reqKind discriminates the two request types.
type reqKind int

const (
	kindLookup reqKind = iota
	kindPredict
)

// request is one admitted unit of work, owned by the driver after admission.
type request struct {
	kind     reqKind
	ids      []int64 // lookup: rows to fetch; predict: the token window
	deadline time.Time
	admitted time.Time
	done     chan response
}

// response carries a request's result back to its submitter.
type response struct {
	rows  [][]float32 // lookup
	token int64       // predict: argmax token
	prob  float32     // predict: its probability
	err   error
}

// reloadReq asks the driver to swap checkpoints between batches.
type reloadReq struct {
	ck   *checkpoint.Checkpoint
	done chan error
}

// Router is the cluster's front end: it admits concurrent Lookup and Predict
// calls into a bounded queue the driver micro-batches. All methods are safe
// for concurrent use.
type Router struct {
	c        *Cluster
	queue    chan *request
	reloadCh chan *reloadReq
	cache    *lruCache // nil when caching is disabled

	closedMu chan struct{} // closed exactly once by close(); nil-check via select
}

func newRouter(c *Cluster, depth int) *Router {
	return &Router{
		c:        c,
		queue:    make(chan *request, depth),
		reloadCh: make(chan *reloadReq),
		cache:    newLRUCache(c.cfg.CacheRows, &c.stats.cache),
		closedMu: make(chan struct{}),
	}
}

func (r *Router) close() { close(r.closedMu) }

func (r *Router) closed() bool {
	select {
	case <-r.closedMu:
		return true
	default:
		return false
	}
}

// Lookup resolves the embedding row of every id, in order, including
// duplicates. The returned rows are private copies. Fails fast with
// ErrOverloaded when the admission queue is full and with ErrDeadline when
// ctx's deadline expires before the rows are resolved.
func (r *Router) Lookup(ctx context.Context, ids []int64) ([][]float32, error) {
	resp := r.do(ctx, &request{kind: kindLookup, ids: ids})
	return resp.rows, resp.err
}

// Predict mean-pools the window's embedding rows, runs the trunk, and
// returns the argmax next token with its probability — arithmetic identical
// to the training model's forward pass over the same checkpoint.
func (r *Router) Predict(ctx context.Context, window []int64) (int64, float32, error) {
	resp := r.do(ctx, &request{kind: kindPredict, ids: window})
	return resp.token, resp.prob, resp.err
}

// do admits one request and waits for its reply.
func (r *Router) do(ctx context.Context, req *request) response {
	for _, id := range req.ids {
		if id < 0 || id >= int64(r.c.vocab) {
			return response{err: fmt.Errorf("serve: id %d outside vocab [0, %d)", id, r.c.vocab)}
		}
	}
	if r.closed() {
		return response{err: ErrClosed}
	}
	if err := ctx.Err(); err != nil {
		return response{err: fmt.Errorf("%w: %v", ErrDeadline, err)}
	}
	if dl, ok := ctx.Deadline(); ok {
		req.deadline = dl
	}
	req.admitted = time.Now()
	req.done = make(chan response, 1)
	select {
	case r.queue <- req:
	default:
		r.c.stats.overloaded.Add(1)
		return response{err: ErrOverloaded}
	}
	r.c.stats.requests.Add(1)
	if req.kind == kindLookup {
		r.c.stats.lookups.Add(1)
	} else {
		r.c.stats.predicts.Add(1)
	}
	// The driver answers every admitted request, including during shutdown,
	// so this receive always completes.
	resp := <-req.done
	r.c.stats.latency.ObserveDuration(time.Since(req.admitted))
	return resp
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

// driverLoop is rank 0's life: collect a micro-batch, resolve it, reply;
// interleave reloads between batches; on Close, flush and release followers.
func (c *Cluster) driverLoop(n *node) {
	for {
		select {
		case <-c.closeCh:
			c.shutdown(n)
			return
		case rr := <-c.router.reloadCh:
			rr.done <- c.driverReload(n, rr.ck)
		case req := <-c.router.queue:
			batch := c.collectBatch(req)
			c.processBatch(n, batch)
		}
	}
}

// collectBatch waits up to BatchWindow for more requests after the first,
// capped at MaxBatch — the micro-batching that makes within-batch dedup (and
// the single exchange per batch) worth having.
func (c *Cluster) collectBatch(first *request) []*request {
	batch := []*request{first}
	if c.cfg.MaxBatch == 1 {
		return batch
	}
	timer := time.NewTimer(c.cfg.BatchWindow)
	defer timer.Stop()
	for len(batch) < c.cfg.MaxBatch {
		select {
		case req := <-c.router.queue:
			batch = append(batch, req)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// shutdown releases followers and answers everything still queued.
func (c *Cluster) shutdown(n *node) {
	if err := c.broadcastCtl(n, ctlShutdown); err != nil {
		c.fail(fmt.Errorf("serve: shutdown broadcast: %w", err))
	}
	for {
		select {
		case req := <-c.router.queue:
			req.done <- response{err: ErrClosed}
		case rr := <-c.router.reloadCh:
			rr.done <- ErrClosed
		default:
			return
		}
	}
}

// driverReload validates nothing (Reload did), hands the checkpoint to every
// rank, rebuilds, barriers, and drops the now-stale cache.
func (c *Cluster) driverReload(n *node, ck *checkpoint.Checkpoint) error {
	c.pendingMu.Lock()
	c.pending = ck
	c.pendingMu.Unlock()
	if err := c.broadcastCtl(n, ctlReload); err != nil {
		return fmt.Errorf("serve: reload broadcast: %w", err)
	}
	if err := c.doReloadOn(n); err != nil {
		return err
	}
	c.router.cacheClear()
	c.stats.reloads.Add(1)
	return nil
}

// processBatch answers one micro-batch: drop expired requests, dedup ids,
// resolve rows (cache, local shard, exchange), then compute and reply.
func (c *Cluster) processBatch(n *node, batch []*request) {
	c.stats.batches.Add(1)
	tr := c.tracers[0]
	now := time.Now()
	c.stats.queueWait.ObserveDuration(now.Sub(batch[0].admitted))
	tr.Record(trace.TrackCompute, "serve/queue-wait", -1, now.Sub(batch[0].admitted))

	// Deadline gate: an expired request is answered now and excluded, so it
	// never occupies an exchange slot.
	live := batch[:0]
	for _, req := range batch {
		if !req.deadline.IsZero() && now.After(req.deadline) {
			c.stats.expired.Add(1)
			req.done <- response{err: ErrDeadline}
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return
	}

	// Coalesce: the union of all ids, deduplicated in first-seen order.
	var need []int64
	seen := make(map[int64]struct{})
	total := 0
	for _, req := range live {
		for _, id := range req.ids {
			total++
			if _, ok := seen[id]; !ok {
				seen[id] = struct{}{}
				need = append(need, id)
			}
		}
	}
	c.stats.coalesced.Add(int64(total - len(need)))

	rows, err := c.resolve(n, need)
	if err != nil {
		c.fail(err)
		for _, req := range live {
			req.done <- response{err: err}
		}
		return
	}

	c.reply(n, live, rows)
}

// resolve maps each unique id to its full embedding row, consulting the
// cache first and conscripting the other ranks only for what's left.
func (c *Cluster) resolve(n *node, need []int64) (map[int64][]float32, error) {
	rows := make(map[int64][]float32, len(need))
	var miss []int64
	for _, id := range need {
		if row, ok := c.router.cacheGet(id); ok {
			rows[id] = row
			continue
		}
		miss = append(miss, id)
	}
	if len(miss) == 0 {
		return rows, nil
	}

	tr := c.tracers[0]
	span := tr.Begin(trace.TrackCompute, "serve/xchg", -1)
	fetched, err := c.fetchRows(n, miss)
	span.End()
	if err != nil {
		return nil, err
	}
	for id, row := range fetched {
		rows[id] = row
		c.router.cachePut(id, row)
	}
	return rows, nil
}

// fetchRows resolves cache misses from the shards. Row-hash routes each id
// to its owner and skips the cross-rank exchange entirely when rank 0 owns
// every miss; column-wise asks every rank for its column slice of every miss
// and reassembles (single-rank clusters short-circuit to a local fetch).
func (c *Cluster) fetchRows(n *node, miss []int64) (map[int64][]float32, error) {
	ranks := c.cfg.Ranks
	reqLists := make([][]int64, ranks)
	switch c.cfg.Partition {
	case PartRowHash:
		for _, id := range miss {
			owner := n.shard.owner(id)
			reqLists[owner] = append(reqLists[owner], id)
		}
	case PartColumn:
		for p := 0; p < ranks; p++ {
			reqLists[p] = miss
		}
	}

	remote := 0
	for p := 1; p < ranks; p++ {
		remote += len(reqLists[p])
	}
	c.stats.localRows.Add(int64(len(reqLists[0])))
	c.stats.remoteRows.Add(int64(remote))

	// Local fast path: every missed row lives in the driver's own shard, so
	// resolve straight from shard storage — no sparse packing, no exchange,
	// no follower conscription. Stats().Packed staying 0 is the observable
	// form of this elision.
	if remote == 0 {
		out := make(map[int64][]float32, len(reqLists[0]))
		for _, id := range reqLists[0] {
			src, err := n.shard.payload(id)
			if err != nil {
				return nil, err
			}
			out[id] = append([]float32(nil), src...)
		}
		return out, nil
	}

	if err := c.broadcastCtl(n, ctlExchange); err != nil {
		return nil, fmt.Errorf("serve: exchange broadcast: %w", err)
	}
	c.stats.exchanges.Add(1)
	arena, err := c.exchange(n, reqLists)
	if err != nil {
		return nil, fmt.Errorf("serve: exchange: %w", err)
	}

	out := make(map[int64][]float32, len(miss))
	var recv tensor.Sparse
	switch c.cfg.Partition {
	case PartRowHash:
		// Sender p's arena shard holds reqLists[p]'s rows in request order.
		for p := 0; p < ranks; p++ {
			arena.ShardView(p, &recv)
			for k, id := range reqLists[p] {
				out[id] = append([]float32(nil), recv.Row(k)...)
			}
		}
	case PartColumn:
		// Every rank answered the same miss list with its column slice;
		// reassemble each row at the deterministic column offsets.
		for k, id := range miss {
			row := make([]float32, c.embDim)
			for p := 0; p < ranks; p++ {
				lo, hi := (partition.ColumnWise{}).Range(c.embDim, ranks, p)
				arena.ShardView(p, &recv)
				copy(row[lo:hi], recv.Row(k))
			}
			out[id] = row
		}
	}
	return out, nil
}

// reply computes each live request's answer from the resolved rows. All
// predict requests share one batched trunk forward; Infer is row-independent,
// so batching preserves bit-identity with a per-request forward.
func (c *Cluster) reply(n *node, live []*request, rows map[int64][]float32) {
	var predicts []*request
	for _, req := range live {
		if req.kind == kindPredict {
			predicts = append(predicts, req)
			continue
		}
		out := make([][]float32, len(req.ids))
		for i, id := range req.ids {
			out[i] = append([]float32(nil), rows[id]...)
		}
		req.done <- response{rows: out}
	}
	if len(predicts) == 0 {
		return
	}

	tr := c.tracers[0]
	span := tr.Begin(trace.TrackCompute, "serve/fwd", -1)
	defer span.End()

	// Mean-pool each window with exactly nn.Embedding.PoolLookup's
	// arithmetic: accumulate row*inv in window order.
	pooled := tensor.NewDense(len(predicts), c.embDim)
	for i, req := range predicts {
		dst := pooled.Row(i)
		if len(req.ids) == 0 {
			continue
		}
		inv := 1 / float32(len(req.ids))
		for _, tok := range req.ids {
			src := rows[tok]
			for d := 0; d < c.embDim; d++ {
				dst[d] += src[d] * inv
			}
		}
	}
	probs, err := n.trunk.Infer(pooled)
	if err != nil {
		for _, req := range predicts {
			req.done <- response{err: err}
		}
		return
	}
	for i, req := range predicts {
		row := probs.Row(i)
		best := 0
		for v := 1; v < len(row); v++ {
			if row[v] > row[best] {
				best = v
			}
		}
		req.done <- response{token: int64(best), prob: row[best]}
	}
}
