package serve

import (
	"context"
	"testing"
	"time"

	"embrace/internal/nn"
	"embrace/internal/partition"
)

// TestDriverOwnedLookupFastPath pins the zero-pack fast path: under the
// row-hash partition, a workload made entirely of driver-owned ids must
// resolve straight from rank 0's shard storage — no exchange rounds, no rows
// packed into sparse payloads anywhere in the cluster — while still returning
// bit-identical rows. One remote-owned id then flips every one of those
// counters, proving they measure what they claim.
func TestDriverOwnedLookupFastPath(t *testing.T) {
	const ranks = 3
	m := nn.NewModel(5, testVocab, testDim, testHid)
	ref := reference{m}

	c, err := New(ckptOf(m, 1), Config{
		Ranks:     ranks,
		Partition: PartRowHash,
		// Cache off so local resolution is exercised by the shard fast
		// path itself, not masked by front-end hits.
		CacheRows:   0,
		MaxBatch:    8,
		BatchWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var mine, theirs []int64
	for id := int64(0); id < testVocab; id++ {
		if (partition.RowHash{}).Owner(id, ranks) == 0 {
			mine = append(mine, id)
		} else {
			theirs = append(theirs, id)
		}
	}
	if len(mine) == 0 || len(theirs) == 0 {
		t.Fatalf("degenerate ownership split: %d driver-owned, %d remote", len(mine), len(theirs))
	}

	ctx := context.Background()
	for start := 0; start < len(mine); start += 4 {
		end := min(start+4, len(mine))
		ids := mine[start:end]
		got, err := c.Lookup(ctx, ids)
		if err != nil {
			t.Fatal(err)
		}
		if !rowsEqual(got, ref.lookup(ids)) {
			t.Fatalf("driver-owned lookup %v returned wrong rows", ids)
		}
	}

	st := c.Stats()
	if st.Exchanges != 0 {
		t.Errorf("driver-owned workload ran %d exchanges, want 0", st.Exchanges)
	}
	if st.Packed != 0 {
		t.Errorf("driver-owned workload packed %d rows, want 0", st.Packed)
	}
	if st.LocalRows == 0 {
		t.Error("driver-owned workload resolved no local rows")
	}
	if st.RemoteRows != 0 {
		t.Errorf("driver-owned workload counted %d remote rows, want 0", st.RemoteRows)
	}

	// One remote-owned id forces the conscripted exchange and its packing.
	remote := theirs[:1]
	got, err := c.Lookup(ctx, remote)
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEqual(got, ref.lookup(remote)) {
		t.Fatalf("remote lookup %v returned wrong rows", remote)
	}
	st = c.Stats()
	if st.Exchanges == 0 {
		t.Error("remote-owned lookup ran no exchange")
	}
	if st.Packed == 0 {
		t.Error("remote-owned lookup packed no rows")
	}
	if st.RemoteRows == 0 {
		t.Error("remote-owned lookup counted no remote rows")
	}
}
