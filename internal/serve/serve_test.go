package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"embrace/internal/checkpoint"
	"embrace/internal/metrics"
	"embrace/internal/nn"
	"embrace/internal/tensor"
)

// ckptOf snapshots a model into the facade's checkpoint layout.
func ckptOf(m *nn.Model, step int) *checkpoint.Checkpoint {
	ck := &checkpoint.Checkpoint{
		Step:   step,
		Params: map[string]*tensor.Dense{"emb": m.Emb.Table.Clone()},
	}
	for _, p := range m.Trunk.Params() {
		ck.Params[p.Name] = p.Tensor.Clone()
	}
	return ck
}

// reference computes the single-rank, cache-free ground truth directly from
// the model: embedding rows for lookups, PoolLookup+Infer+argmax for
// predicts — the forward pass serving must reproduce bit-for-bit.
type reference struct{ m *nn.Model }

func (r reference) lookup(ids []int64) [][]float32 {
	out := make([][]float32, len(ids))
	for i, id := range ids {
		out[i] = append([]float32(nil), r.m.Emb.Table.Row(int(id))...)
	}
	return out
}

func (r reference) predict(window []int64) (int64, float32) {
	pooled := r.m.Emb.PoolLookup([][]int64{window})
	probs, err := r.m.Trunk.Infer(pooled)
	if err != nil {
		panic(err)
	}
	row := probs.Row(0)
	best := 0
	for v := 1; v < len(row); v++ {
		if row[v] > row[best] {
			best = v
		}
	}
	return int64(best), row[best]
}

func rowsEqual(a, b [][]float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				return false
			}
		}
	}
	return true
}

const (
	testVocab = 64
	testDim   = 6
	testHid   = 5
)

// requestSet is the deterministic workload the exactness tests replay: a mix
// of single ids, duplicate-heavy lookups (dedup fodder), and windows.
func requestSet() [][]int64 {
	sets := [][]int64{
		{1}, {2}, {3, 3, 3}, {1, 2, 3, 4, 5}, {63}, {0, 63, 31},
		{7, 7, 1, 1, 2}, {40, 41, 42}, {5}, {1},
	}
	for i := 0; i < 30; i++ {
		sets = append(sets, []int64{int64(i % testVocab), int64((i * 7) % testVocab), 1})
	}
	return sets
}

// TestServingExactness is the 4-rank acceptance test: with caching on and
// batching/dedup on, under both partitioning schemes, every Lookup and
// Predict response is bit-identical to the single-rank, cache-disabled
// forward pass over the same checkpoint — including across a mid-load
// checkpoint reload.
func TestServingExactness(t *testing.T) {
	mA := nn.NewModel(1, testVocab, testDim, testHid)
	mB := nn.NewModel(2, testVocab, testDim, testHid)
	refA, refB := reference{mA}, reference{mB}
	ckA, ckB := ckptOf(mA, 10), ckptOf(mB, 20)

	for _, part := range []string{PartRowHash, PartColumn} {
		t.Run(part, func(t *testing.T) {
			c, err := New(ckA, Config{
				Ranks:       4,
				Partition:   part,
				CacheRows:   16,
				MaxBatch:    8,
				BatchWindow: time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			check := func(ref reference, tag string) {
				// Concurrent submissions so micro-batching and dedup engage.
				var wg sync.WaitGroup
				errs := make(chan error, 2*len(requestSet()))
				for _, ids := range requestSet() {
					wg.Add(1)
					go func(ids []int64) {
						defer wg.Done()
						got, err := c.Lookup(context.Background(), ids)
						if err != nil {
							errs <- fmt.Errorf("%s: lookup %v: %w", tag, ids, err)
							return
						}
						if !rowsEqual(got, ref.lookup(ids)) {
							errs <- fmt.Errorf("%s: lookup %v not bit-identical", tag, ids)
						}
					}(ids)
					wg.Add(1)
					go func(ids []int64) {
						defer wg.Done()
						tok, prob, err := c.Predict(context.Background(), ids)
						if err != nil {
							errs <- fmt.Errorf("%s: predict %v: %w", tag, ids, err)
							return
						}
						wantTok, wantProb := ref.predict(ids)
						if tok != wantTok || prob != wantProb {
							errs <- fmt.Errorf("%s: predict %v = (%d, %g), want (%d, %g)",
								tag, ids, tok, prob, wantTok, wantProb)
						}
					}(ids)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Error(err)
				}
			}

			check(refA, "ckptA")
			st := c.Stats()
			if st.Coalesced == 0 {
				t.Error("dedup never coalesced a duplicate id")
			}
			if st.Cache.Hits == 0 {
				t.Error("cache never hit despite repeated hot ids")
			}

			// Zero-downtime reload: afterwards every response must be the new
			// checkpoint's, exactly as a cold boot from ckB computes it.
			if err := c.Reload(ckB); err != nil {
				t.Fatalf("reload: %v", err)
			}
			check(refB, "ckptB")
			if got := c.Stats().Reloads; got != 1 {
				t.Errorf("reloads = %d", got)
			}
			if err := c.Err(); err != nil {
				t.Fatalf("cluster error: %v", err)
			}
		})
	}
}

// TestReloadMidLoad drives concurrent traffic through a reload: every
// response must be entirely from the old checkpoint or entirely from the new
// one — never a mix — and traffic after Reload returns must be all-new.
func TestReloadMidLoad(t *testing.T) {
	mA := nn.NewModel(3, testVocab, testDim, testHid)
	mB := nn.NewModel(4, testVocab, testDim, testHid)
	refA, refB := reference{mA}, reference{mB}

	c, err := New(ckptOf(mA, 1), Config{
		Ranks:       4,
		Partition:   PartRowHash,
		CacheRows:   8,
		MaxBatch:    4,
		BatchWindow: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ids := []int64{1, 2, 3, 9, 27}
	wantA, wantB := refA.lookup(ids), refB.lookup(ids)

	stop := make(chan struct{})
	errs := make(chan error, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := c.Lookup(context.Background(), ids)
				if err != nil {
					errs <- err
					return
				}
				if !rowsEqual(got, wantA) && !rowsEqual(got, wantB) {
					errs <- errors.New("mid-reload response mixes checkpoints")
					return
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	if err := c.Reload(ckptOf(mB, 2)); err != nil {
		t.Fatalf("reload: %v", err)
	}
	// After Reload returns, only ckptB answers are acceptable.
	got, err := c.Lookup(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEqual(got, wantB) {
		t.Fatal("post-reload response is not the new checkpoint's")
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestReloadEqualsColdRestart proves the equivalence the reload protocol
// promises: a reloaded cluster answers exactly like one cold-booted from the
// new checkpoint.
func TestReloadEqualsColdRestart(t *testing.T) {
	mA := nn.NewModel(5, testVocab, testDim, testHid)
	mB := nn.NewModel(6, testVocab, testDim, testHid)
	cfg := Config{Ranks: 3, Partition: PartColumn, CacheRows: 8, MaxBatch: 4, BatchWindow: 100 * time.Microsecond}

	warm, err := New(ckptOf(mA, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	// Touch rows so the cache is populated with ckptA data, then reload.
	if _, err := warm.Lookup(context.Background(), []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := warm.Reload(ckptOf(mB, 2)); err != nil {
		t.Fatal(err)
	}

	cold, err := New(ckptOf(mB, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()

	for _, ids := range requestSet() {
		w, err := warm.Lookup(context.Background(), ids)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cold.Lookup(context.Background(), ids)
		if err != nil {
			t.Fatal(err)
		}
		if !rowsEqual(w, cl) {
			t.Fatalf("reloaded and cold clusters disagree on %v", ids)
		}
		wt, wp, err := warm.Predict(context.Background(), ids)
		if err != nil {
			t.Fatal(err)
		}
		ct, cp, err := cold.Predict(context.Background(), ids)
		if err != nil {
			t.Fatal(err)
		}
		if wt != ct || wp != cp {
			t.Fatalf("reloaded and cold predictions disagree on %v", ids)
		}
	}
}

// TestOverloaded proves admission fails fast with the typed error when the
// queue is full, without blocking.
func TestOverloaded(t *testing.T) {
	// An unattached router (no driver draining it) with a one-slot queue.
	c := &Cluster{vocab: testVocab, cfg: Config{CacheRows: 0}.withDefaults()}
	r := newRouter(c, 0, 1)
	r.queue <- &request{} // fill the queue

	done := make(chan error, 1)
	go func() {
		_, err := r.Lookup(context.Background(), []int64{1})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("err = %v, want ErrOverloaded", err)
		}
	case <-time.After(time.Second):
		t.Fatal("overloaded admission blocked instead of failing fast")
	}
	if r.ctr.overloaded.Load() != 1 {
		t.Fatalf("overloaded counter = %d", r.ctr.overloaded.Load())
	}
}

// TestDeadlineSkipsExchange proves an admitted request whose deadline passes
// while it waits is answered ErrDeadline and never occupies an exchange
// slot: the batch it rode in triggers no cross-rank conscription.
func TestDeadlineSkipsExchange(t *testing.T) {
	m := nn.NewModel(7, testVocab, testDim, testHid)
	c, err := New(ckptOf(m, 1), Config{
		Ranks:       4,
		Partition:   PartRowHash,
		MaxBatch:    8,
		BatchWindow: 50 * time.Millisecond, // far longer than the deadline
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	// Id 1 is remote for rank 0 under row-hash with 4 ranks, so serving it
	// would require an exchange — unless the deadline drops it first.
	_, err = c.Lookup(ctx, []int64{1})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	st := c.Stats()
	if st.Expired != 1 {
		t.Errorf("expired = %d, want 1", st.Expired)
	}
	if st.Exchanges != 0 {
		t.Errorf("exchanges = %d, want 0 (expired request occupied an exchange slot)", st.Exchanges)
	}

	// An already-expired context is refused at admission, before the queue.
	expired, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	time.Sleep(time.Millisecond)
	if _, err := c.Lookup(expired, []int64{1}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("pre-expired err = %v, want ErrDeadline", err)
	}
}

// TestClosedCluster proves requests after Close fail with ErrClosed and that
// Close is idempotent.
func TestClosedCluster(t *testing.T) {
	m := nn.NewModel(8, testVocab, testDim, testHid)
	c, err := New(ckptOf(m, 1), Config{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // idempotent
	if _, err := c.Lookup(context.Background(), []int64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := c.Reload(ckptOf(m, 2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("reload err = %v, want ErrClosed", err)
	}
}

// TestBadRequests covers id validation and config validation.
func TestBadRequests(t *testing.T) {
	m := nn.NewModel(9, testVocab, testDim, testHid)
	if _, err := New(ckptOf(m, 1), Config{Partition: "diagonal"}); err == nil {
		t.Fatal("bogus partition accepted")
	}
	ck := ckptOf(m, 1)
	delete(ck.Params, "w2")
	if _, err := New(ck, Config{}); err == nil {
		t.Fatal("missing trunk param accepted")
	}

	c, err := New(ckptOf(m, 1), Config{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Lookup(context.Background(), []int64{-1}); err == nil {
		t.Fatal("negative id accepted")
	}
	if _, err := c.Lookup(context.Background(), []int64{testVocab}); err == nil {
		t.Fatal("out-of-vocab id accepted")
	}
	// Reload with a mismatched shape is rejected before any rank commits.
	if err := c.Reload(ckptOf(nn.NewModel(9, testVocab, testDim+2, testHid), 2)); err == nil {
		t.Fatal("shape-mismatched reload accepted")
	}
	if _, err := c.Lookup(context.Background(), []int64{1}); err != nil {
		t.Fatalf("cluster broken after rejected reload: %v", err)
	}
}

// TestCacheEviction bounds residency at CacheRows and counts evictions.
func TestCacheEviction(t *testing.T) {
	var ctr metrics.CacheCounters
	lru := newLRUCache(2, &ctr)
	lru.put(1, []float32{1})
	lru.put(2, []float32{2})
	lru.get(1) // promote 1; 2 is now coldest
	lru.put(3, []float32{3})
	if _, ok := lru.get(2); ok {
		t.Fatal("coldest entry survived eviction")
	}
	if _, ok := lru.get(1); !ok {
		t.Fatal("promoted entry evicted")
	}
	if lru.len() != 2 {
		t.Fatalf("len = %d", lru.len())
	}
	s := ctr.Snapshot()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d", s.Evictions)
	}
	lru.clear()
	if lru.len() != 0 {
		t.Fatal("clear left residents")
	}
	// Nil cache (disabled) is inert.
	var off *lruCache
	off.put(1, []float32{1})
	if _, ok := off.get(1); ok {
		t.Fatal("nil cache hit")
	}
}

// TestLoadGenerator smoke-tests the closed-loop generator and the stats
// surface it depends on.
func TestLoadGenerator(t *testing.T) {
	m := nn.NewModel(10, testVocab, testDim, testHid)
	c, err := New(ckptOf(m, 1), Config{
		Ranks:       2,
		CacheRows:   32,
		MaxBatch:    8,
		BatchWindow: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rep := RunLoad(c, LoadConfig{Clients: 3, Requests: 40, IDsPerRequest: 3, Seed: 42})
	if rep.Requests != 120 || rep.Errors != 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.QPS <= 0 || rep.Latency.Count != 120 {
		t.Fatalf("report %+v", rep)
	}
	st := c.Stats()
	if st.Requests != 120 || st.Lookups != 120 {
		t.Fatalf("stats %+v", st)
	}
	if st.Cache.Hits == 0 {
		t.Error("Zipf load produced no cache hits")
	}
	if st.Batches == 0 || st.Latency.Count != 120 {
		t.Fatalf("stats %+v", st)
	}
	// Predict workload too.
	rep = RunLoad(c, LoadConfig{Clients: 2, Requests: 10, IDsPerRequest: 4, Predict: true, Seed: 7})
	if rep.Errors != 0 || c.Stats().Predicts != 20 {
		t.Fatalf("predict load %+v", rep)
	}
}

// TestTraceSpans proves batches leave queue-wait/exchange/forward spans on
// the driver's recorder.
func TestTraceSpans(t *testing.T) {
	m := nn.NewModel(11, testVocab, testDim, testHid)
	c, err := New(ckptOf(m, 1), Config{
		Ranks:       2,
		Partition:   PartRowHash,
		MaxBatch:    4,
		BatchWindow: 100 * time.Microsecond,
		Trace:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, err := c.Predict(context.Background(), []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, sp := range c.Tracers()[0].Spans() {
		names[sp.Name] = true
	}
	for _, want := range []string{"serve/queue-wait", "serve/fwd"} {
		if !names[want] {
			t.Errorf("driver trace missing %q span (have %v)", want, names)
		}
	}
	// The exchange lane appears once a remote row is fetched.
	foundXchg := names["serve/xchg"]
	if !foundXchg {
		t.Errorf("driver trace missing serve/xchg span (have %v)", names)
	}
}
