// Package serve turns a training checkpoint into a multi-rank inference
// service — the serving counterpart of the trainer. The mechanisms are the
// paper's, repurposed: the embedding table is partitioned across ranks
// (row-hash, consistent-hash, or column-wise, §4.1.1), remote rows are
// resolved through the Communicator's sparse AlltoAll, and repeated ids
// within a micro-batch are deduplicated before the exchange — the serving
// analogue of Algorithm 1's gradient coalescing. The dense trunk is small
// and replicated, so only the sparse lookups cross ranks.
//
// Topology: a configurable driver set fronts the cluster. Each driver rank
// (ranks 0..Drivers-1) runs its own ingress — an independent admission
// queue, micro-batching window with dedup, and hot-row LRU — and conscripts
// the other ranks only when a batch misses rows it does not hold. The
// control protocol is the same stepped SPMD exchange whichever driver runs
// it: one []int64 AlltoAll of requested ids followed by one sparse AlltoAll
// of the rows under monotonically stepped (op, step) tags. Concurrent
// drivers never collide because each driver's exchanges live in their own
// tag plane: plane d's per-rank Communicators are built with
// collective.WithEpoch(d), so two drivers conscripting the same ranks at
// the same moment address disjoint (op, step) spaces. Every rank therefore
// runs one driver loop (if it is a driver) plus one follower loop per
// remote driver, all over the same Transport — the fabric can be the
// in-process world, real TCP sockets, or the chaos wrapper with no code
// change.
//
// On top of the driver set sits the hot-shard replication manager (hotSet):
// an access-frequency tracker promotes Zipf-hot rows into a replica set
// every ingress serves locally, so the popular head of the vocabulary never
// crosses the fabric regardless of which rank owns it or which driver
// admits the request.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"embrace/internal/checkpoint"
	"embrace/internal/collective"
	"embrace/internal/comm"
	"embrace/internal/metrics"
	"embrace/internal/nn"
	"embrace/internal/partition"
	"embrace/internal/tensor"
	"embrace/internal/trace"
)

// Partitioning schemes the serving shards support.
const (
	// PartRowHash shards full rows by token id modulo ranks: each lookup
	// touches one rank, but the Zipf head concentrates on whichever ranks
	// own hot rows.
	PartRowHash = "row-hash"
	// PartColumn shards every row's columns evenly: each lookup touches all
	// ranks and each contributes 1/n of the row — EmbRace's balanced layout.
	PartColumn = "column"
	// PartConsistent shards full rows on a consistent-hash ring
	// (partition.ConsistentHash): like row-hash, one owner per row, but
	// ownership is stable under resizing — growing the rank set moves only
	// the arcs the new rank captures instead of reshuffling everything.
	PartConsistent = "consistent-hash"
)

// Config parameterizes a serving cluster.
type Config struct {
	// Ranks is the number of serving ranks (default 1).
	Ranks int
	// Drivers is how many ranks front the cluster as ingresses (default 1,
	// clamped to Ranks). Ranks 0..Drivers-1 each run an independent
	// admission queue, micro-batcher, and hot-row LRU; their conscripted
	// exchanges ride per-driver tag planes so they never collide.
	Drivers int
	// Partition selects the embedding layout: PartRowHash (default),
	// PartColumn, or PartConsistent.
	Partition string
	// CacheRows bounds each driver's hot-row LRU cache; 0 disables caching.
	CacheRows int
	// HotRows bounds the replicated hot set shared by all drivers; 0
	// disables hot-shard replication. Rows accessed HotPromote times are
	// promoted into it and served by every ingress without touching the
	// fabric; reload invalidates every replica.
	HotRows int
	// HotPromote is how many accesses promote a row into the hot set
	// (default 3).
	HotPromote int
	// MaxBatch caps how many requests one micro-batch coalesces (default 32).
	MaxBatch int
	// BatchWindow is how long a driver waits for stragglers after the
	// first request of a batch arrives (default 200µs).
	BatchWindow time.Duration
	// QueueDepth bounds each driver's admission queue (default 256). A full
	// queue fails fast with ErrOverloaded.
	QueueDepth int
	// RecvTimeout bounds blocking receives on the fabric; 0 blocks forever.
	RecvTimeout time.Duration
	// TCP, when set, boots the cluster over real localhost TCP sockets
	// (comm.NewTCPWorld) instead of the in-process mailbox world — the
	// fabric the scale harness measures. Incompatible with Chaos.
	TCP bool
	// Chaos, when non-nil, builds the cluster over a fault-injecting fabric
	// (comm.NewChaosWorld) instead of the plain in-process world.
	Chaos *comm.FaultPlan
	// Trace enables per-rank trace.Recorder span collection.
	Trace bool
	// TraceClock overrides the trace clock (tests); nil uses wall time.
	TraceClock trace.Clock
	// Codec, when non-nil, compresses the row-fetch AlltoAll wire streams
	// between ranks (DESIGN.md §12). Lossless codecs keep responses
	// bit-identical to the raw wire; lossy ones would perturb served
	// embeddings and are rejected by the facade.
	Codec collective.SparseCodec
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.Drivers <= 0 {
		c.Drivers = 1
	}
	if c.Drivers > c.Ranks {
		c.Drivers = c.Ranks
	}
	if c.Partition == "" {
		c.Partition = PartRowHash
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	return c
}

// fabric abstracts the in-process worlds and the TCP world a cluster can
// run on.
type fabric interface {
	Rank(i int) comm.Transport
	Close()
}

// Cluster is a running serving deployment: N ranks over one fabric, a loaded
// checkpoint, and one router per driver. Create with New, stop with Close.
type Cluster struct {
	cfg   Config
	world fabric
	chaos *comm.ChaosWorld // == world when chaotic, for Injected()

	// routers holds one front end per driver; nextRouter round-robins the
	// cluster-level Lookup/Predict entry points across them.
	routers    []*Router
	nextRouter atomic.Int64

	// ranks holds each rank's shard and trunk, shared by every tag plane's
	// node on that rank and rebuilt in place on reload.
	ranks []*rankState

	// hot is the cluster-wide replication manager; nil when HotRows == 0.
	hot *hotSet

	vocab, embDim int

	// pending hands the next checkpoint to the reload rendezvous.
	pendingMu sync.Mutex
	pending   *checkpoint.Checkpoint

	// reloadMu serializes Reload calls; rv is the cluster-wide quiesce
	// point every plane member joins before the rebuild.
	reloadMu sync.Mutex
	rv       *rendezvous

	// Per-rank instrumentation, indexed by fabric rank and shared by that
	// rank's communicators across all tag planes (both are concurrency-safe).
	recs    []*metrics.OpRecorder
	tracers []*trace.Recorder

	// Cluster-level counters; per-driver counters live on each Router.
	packed, reloads atomic.Int64

	closeOnce sync.Once
	closeCh   chan struct{}
	wg        sync.WaitGroup

	// errMu guards the first fatal per-rank error.
	errMu sync.Mutex
	err   error
}

// counters is one driver's atomic stat block.
type counters struct {
	requests, lookups, predicts atomic.Int64
	batches, exchanges          atomic.Int64
	coalesced                   atomic.Int64
	localRows, remoteRows       atomic.Int64
	overloaded, expired         atomic.Int64
	cache                       metrics.CacheCounters
	latency                     *metrics.Histogram
	queueWait                   *metrics.Histogram
}

// Stats is a point-in-time snapshot of serving counters. Cluster.Stats
// returns the cluster-wide aggregate — per-driver counters summed, latency
// histograms merged exactly — and Cluster.DriverStats returns one ingress's
// own slice of it.
type Stats struct {
	// Drivers is how many ingresses the snapshot aggregates (1 for a
	// DriverStats view).
	Drivers int
	// Requests admitted, split into Lookups and Predicts.
	Requests, Lookups, Predicts int64
	// Batches processed; Exchanges is how many needed a cross-rank
	// conscription (a batch satisfied by cache + replicas + local shard
	// skips it).
	Batches, Exchanges int64
	// Coalesced counts duplicate ids removed by within-batch dedup.
	Coalesced int64
	// Packed counts rows packed into sparse exchange payloads across all
	// ranks and planes. Driver-owned and hot-replicated lookups resolve
	// straight from local storage and never pack, so a workload the
	// ingresses can satisfy alone keeps this 0.
	Packed int64
	// LocalRows and RemoteRows count rows resolved from a driver's own
	// shard versus fetched from peers.
	LocalRows, RemoteRows int64
	// Overloaded counts admissions refused with ErrOverloaded; Expired
	// counts admitted requests dropped at their deadline; Reloads counts
	// completed checkpoint swaps.
	Overloaded, Expired, Reloads int64
	// Cache aggregates the drivers' hot-row LRU hit/miss/eviction counts.
	Cache metrics.CacheStats
	// Hot is the hot-shard replication manager's snapshot (zero when
	// replication is disabled).
	Hot HotStats
	// Latency digests request latency (admission to reply); QueueWait the
	// time batches spent waiting for a driver. Aggregates are exact
	// histogram merges, not percentile averages.
	Latency, QueueWait metrics.Summary
	// CommPerOp folds per-op communication counters across all ranks.
	CommPerOp map[string]metrics.OpStats
}

// New boots a serving cluster from a checkpoint. The checkpoint must hold
// the facade's parameter set ("emb", "w1", "b1", "w2", "b2"); optimizer state
// is ignored. The returned cluster is live: its routers accept requests.
func New(ck *checkpoint.Checkpoint, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	switch cfg.Partition {
	case PartRowHash, PartColumn, PartConsistent:
	default:
		return nil, fmt.Errorf("serve: unknown partition %q (want %q, %q or %q)",
			cfg.Partition, PartRowHash, PartColumn, PartConsistent)
	}
	if err := ck.Validate(); err != nil {
		return nil, err
	}
	emb := ck.Params["emb"]
	if emb == nil || emb.Dims() != 2 {
		return nil, fmt.Errorf("serve: checkpoint has no [vocab x dim] %q table", "emb")
	}

	var world fabric
	var chaos *comm.ChaosWorld
	switch {
	case cfg.Chaos != nil && cfg.TCP:
		return nil, errors.New("serve: chaos injection over the TCP fabric is unsupported")
	case cfg.Chaos != nil:
		cw, err := comm.NewChaosWorld(cfg.Ranks, *cfg.Chaos)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		if cfg.RecvTimeout > 0 {
			cw.SetRecvTimeout(cfg.RecvTimeout)
		}
		world, chaos = cw, cw
	case cfg.TCP:
		w, err := comm.NewTCPWorld(cfg.Ranks)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		if cfg.RecvTimeout > 0 {
			w.SetRecvTimeout(cfg.RecvTimeout)
		}
		world = w
	default:
		w, err := comm.NewWorld(cfg.Ranks)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		if cfg.RecvTimeout > 0 {
			w.SetRecvTimeout(cfg.RecvTimeout)
		}
		world = w
	}

	c := &Cluster{
		cfg:     cfg,
		world:   world,
		chaos:   chaos,
		vocab:   emb.Dim(0),
		embDim:  emb.Dim(1),
		hot:     newHotSet(cfg.HotRows, cfg.HotPromote),
		ranks:   make([]*rankState, cfg.Ranks),
		rv:      newRendezvous(cfg.Drivers * cfg.Ranks),
		recs:    make([]*metrics.OpRecorder, cfg.Ranks),
		tracers: make([]*trace.Recorder, cfg.Ranks),
		closeCh: make(chan struct{}),
	}

	for r := 0; r < cfg.Ranks; r++ {
		rs := &rankState{}
		if err := rs.load(cfg, r, ck); err != nil {
			world.Close()
			return nil, err
		}
		c.ranks[r] = rs

		c.recs[r] = metrics.NewOpRecorder()
		if cfg.Trace {
			opts := []trace.RecorderOption{}
			if cfg.TraceClock != nil {
				opts = append(opts, trace.WithClock(cfg.TraceClock))
			}
			tr := trace.NewRecorder(r, opts...)
			tr.RouteOp("serve/req", trace.TrackNetwork)
			tr.RouteOp("serve/rows", trace.TrackNetwork)
			tr.RouteOp("serve/ctl", trace.TrackNetwork)
			c.tracers[r] = tr
		}
	}

	c.routers = make([]*Router, cfg.Drivers)
	for d := 0; d < cfg.Drivers; d++ {
		c.routers[d] = newRouter(c, d, cfg.QueueDepth)
	}

	// One node per (tag plane, rank): plane d's communicators carry world
	// epoch d, so driver d's stepped exchanges are invisible to every other
	// plane even though all planes share each rank's Transport.
	for d := 0; d < cfg.Drivers; d++ {
		for r := 0; r < cfg.Ranks; r++ {
			cm := collective.NewCommunicator(world.Rank(r),
				collective.WithEpoch(d),
				collective.WithObserver(collective.MultiObserver(c.recs[r], c.tracers[r])))
			node := c.buildNode(cm, d)
			c.wg.Add(1)
			if r == d {
				go func() { defer c.wg.Done(); c.driverLoop(node) }()
			} else {
				go func() { defer c.wg.Done(); c.followerLoop(node) }()
			}
		}
	}
	return c, nil
}

// Router returns the first driver's front end.
func (c *Cluster) Router() *Router { return c.routers[0] }

// RouterAt returns driver d's front end.
func (c *Cluster) RouterAt(d int) *Router { return c.routers[d] }

// Drivers returns the number of ingress drivers.
func (c *Cluster) Drivers() int { return len(c.routers) }

// route picks the next ingress round-robin — the cluster-level entry
// points' stand-in for an external load balancer.
func (c *Cluster) route() *Router {
	if len(c.routers) == 1 {
		return c.routers[0]
	}
	i := uint64(c.nextRouter.Add(1))
	return c.routers[i%uint64(len(c.routers))]
}

// Lookup resolves embedding rows via the next driver round-robin; see
// Router.Lookup.
func (c *Cluster) Lookup(ctx context.Context, ids []int64) ([][]float32, error) {
	return c.route().Lookup(ctx, ids)
}

// Predict runs the trunk over a pooled token window via the next driver
// round-robin; see Router.Predict.
func (c *Cluster) Predict(ctx context.Context, window []int64) (int64, float32, error) {
	return c.route().Predict(ctx, window)
}

// Stats snapshots the cluster-wide aggregate: every driver's counters
// summed, their latency histograms merged exactly (metrics.Histogram.Merge
// preserves percentile fidelity), plus the cluster-level packing, reload,
// and hot-set counters.
func (c *Cluster) Stats() Stats {
	agg := Stats{
		Drivers: len(c.routers),
		Packed:  c.packed.Load(),
		Reloads: c.reloads.Load(),
		Hot:     c.hot.snapshot(),
	}
	lat, qw := metrics.NewHistogram(), metrics.NewHistogram()
	for _, r := range c.routers {
		d := r.driverStats()
		agg.Requests += d.Requests
		agg.Lookups += d.Lookups
		agg.Predicts += d.Predicts
		agg.Batches += d.Batches
		agg.Exchanges += d.Exchanges
		agg.Coalesced += d.Coalesced
		agg.LocalRows += d.LocalRows
		agg.RemoteRows += d.RemoteRows
		agg.Overloaded += d.Overloaded
		agg.Expired += d.Expired
		agg.Cache.Hits += d.Cache.Hits
		agg.Cache.Misses += d.Cache.Misses
		agg.Cache.Evictions += d.Cache.Evictions
		lat.Merge(r.ctr.latency)
		qw.Merge(r.ctr.queueWait)
	}
	agg.Latency = lat.Summary()
	agg.QueueWait = qw.Summary()

	per := make(map[string]metrics.OpStats)
	for _, rec := range c.recs {
		for op, s := range rec.PerOp() {
			per[op] = per[op].Add(s)
		}
	}
	agg.CommPerOp = per
	return agg
}

// DriverStats snapshots one ingress's own counters: the per-driver slice of
// Stats. Cluster-level fields (Packed, Reloads, Hot, CommPerOp) are zero —
// they are not attributable to a single driver.
func (c *Cluster) DriverStats(d int) Stats {
	return c.routers[d].driverStats()
}

// Tracers returns the per-rank trace recorders (nil entries when tracing is
// off), for span inspection and Chrome-trace export.
func (c *Cluster) Tracers() []*trace.Recorder { return c.tracers }

// FaultsInjected reports the chaos fabric's injected-fault counts, or nil
// when the cluster runs on a fault-free fabric.
func (c *Cluster) FaultsInjected() map[string]int64 {
	if c.chaos == nil {
		return nil
	}
	return c.chaos.Injected()
}

// Err returns the first fatal rank error, if any.
func (c *Cluster) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

func (c *Cluster) fail(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
}

// Reload swaps in a new checkpoint with zero downtime: every driver finishes
// its in-flight batch, all planes quiesce at the reload rendezvous, every
// rank rebuilds its shard and trunk from the new snapshot, and every
// driver's LRU cache plus the whole replicated hot set are invalidated —
// after Reload returns, every response from every ingress is computed from
// the new checkpoint, exactly as a cold restart would compute it. The
// checkpoint is validated (shape agreement, same vocab/dim) before any rank
// commits to it.
func (c *Cluster) Reload(ck *checkpoint.Checkpoint) error {
	if err := ck.Validate(); err != nil {
		return err
	}
	emb := ck.Params["emb"]
	if emb == nil || emb.Dims() != 2 || emb.Dim(0) != c.vocab || emb.Dim(1) != c.embDim {
		return fmt.Errorf("serve: reload checkpoint shape mismatch (want [%d x %d] %q)", c.vocab, c.embDim, "emb")
	}
	for _, name := range []string{"w1", "b1", "w2", "b2"} {
		if ck.Params[name] == nil {
			return fmt.Errorf("serve: reload checkpoint missing trunk param %q", name)
		}
	}

	c.reloadMu.Lock()
	defer c.reloadMu.Unlock()
	c.pendingMu.Lock()
	c.pending = ck
	c.pendingMu.Unlock()

	// Fan the reload to every driver; each broadcasts ctlReload on its own
	// plane and joins the rendezvous, so every plane member quiesces.
	reqs := make([]*reloadReq, len(c.routers))
	for d, r := range c.routers {
		rr := &reloadReq{done: make(chan error, 1)}
		reqs[d] = rr
		select {
		case r.reloadCh <- rr:
		case <-c.closeCh:
			return ErrClosed
		}
	}
	var first error
	for _, rr := range reqs {
		select {
		case err := <-rr.done:
			if err != nil && first == nil {
				first = err
			}
		case <-c.closeCh:
			return ErrClosed
		}
	}
	return first
}

// Close shuts the cluster down: pending requests are answered with ErrClosed,
// followers are released, and the fabric is torn down. Idempotent.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		for _, r := range c.routers {
			r.close()
		}
		close(c.closeCh)
	})
	c.wg.Wait()
	c.world.Close()
}

// ---------------------------------------------------------------------------
// Per-rank state.
// ---------------------------------------------------------------------------

// rankState is one rank's shard and trunk replica, shared by every tag
// plane's node on that rank. Reads take the read lock; the reload rendezvous
// rebuilds under the write lock while every plane is quiesced, so the lock
// is uncontended on the serving path.
type rankState struct {
	mu    sync.RWMutex
	shard *shard
	trunk *nn.Trunk
}

// load (re)builds the rank's shard and trunk from a checkpoint. Everything
// is deep-copied so the caller's checkpoint stays untouched and two reloads
// never share tensors.
func (rs *rankState) load(cfg Config, rank int, ck *checkpoint.Checkpoint) error {
	for _, name := range []string{"w1", "b1", "w2", "b2"} {
		if ck.Params[name] == nil {
			return fmt.Errorf("serve: checkpoint missing trunk param %q", name)
		}
	}
	trunk := &nn.Trunk{
		W1: ck.Params["w1"].Clone(),
		B1: ck.Params["b1"].Clone(),
		W2: ck.Params["w2"].Clone(),
		B2: ck.Params["b2"].Clone(),
	}
	sh, err := newShard(ck.Params["emb"], cfg.Partition, cfg.Ranks, rank)
	if err != nil {
		return err
	}
	rs.mu.Lock()
	rs.shard, rs.trunk = sh, trunk
	rs.mu.Unlock()
	return nil
}

// node is one (tag plane, rank) participant: its epoch-tagged communicator,
// a pointer to the rank's shared state, plus the step counters that keep its
// (op, step) tags in lockstep with its plane's driver.
type node struct {
	cm    *collective.Communicator
	rank  int // fabric rank
	plane int // driver plane (== the driver's rank)
	rs    *rankState

	ctlSeq, xSeq, reloadSeq int

	// Exchange scratch, reused across conscriptions: the per-destination
	// packed row payloads and the receive arena of the sparse AlltoAll. Only
	// the node's own goroutine touches them.
	send     []tensor.Sparse
	sendPtrs []*tensor.Sparse
	arena    collective.SparseShards
}

// step folds a monotone sequence number into the Communicator's step range.
func step(seq int) int { return seq % (collective.MaxStep + 1) }

// buildNode wires one plane member to its rank's shared state.
func (c *Cluster) buildNode(cm *collective.Communicator, plane int) *node {
	n := &node{cm: cm, rank: cm.Rank(), plane: plane, rs: c.ranks[cm.Rank()]}
	n.send = make([]tensor.Sparse, c.cfg.Ranks)
	n.sendPtrs = make([]*tensor.Sparse, c.cfg.Ranks)
	for i := range n.send {
		n.sendPtrs[i] = &n.send[i]
	}
	return n
}

// ---------------------------------------------------------------------------
// Embedding shards.
// ---------------------------------------------------------------------------

// shard is one rank's slice of the embedding table. For the row schemes it
// holds the full rows it owns; for column-wise it holds every row's [lo, hi)
// column slice. fetch answers requests in request order so a driver can
// zip ids with rows positionally.
type shard struct {
	part    string
	ranks   int
	rank    int
	vocab   int
	dim     int // full embedding width
	lo, hi  int // owned column range (column-wise; [0, dim) for row schemes)
	rows    map[int64][]float32
	columns *tensor.Dense // [vocab x (hi-lo)] (column-wise)
}

// rowOwner returns the rank holding id's full row under a row scheme.
func rowOwner(part string, id int64, ranks int) int {
	if part == PartConsistent {
		return partition.ConsistentHash{}.Owner(id, ranks)
	}
	return (partition.RowHash{}).Owner(id, ranks)
}

func newShard(emb *tensor.Dense, part string, ranks, rank int) (*shard, error) {
	vocab, dim := emb.Dim(0), emb.Dim(1)
	s := &shard{part: part, ranks: ranks, rank: rank, vocab: vocab, dim: dim, lo: 0, hi: dim}
	switch part {
	case PartRowHash, PartConsistent:
		s.rows = make(map[int64][]float32)
		for tok := 0; tok < vocab; tok++ {
			if rowOwner(part, int64(tok), ranks) == rank {
				s.rows[int64(tok)] = append([]float32(nil), emb.Row(tok)...)
			}
		}
	case PartColumn:
		lo, hi := partition.ColumnWise{}.Range(dim, ranks, rank)
		s.lo, s.hi = lo, hi
		cols := tensor.NewDense(vocab, hi-lo)
		for tok := 0; tok < vocab; tok++ {
			copy(cols.Row(tok), emb.Row(tok)[lo:hi])
		}
		s.columns = cols
	default:
		return nil, fmt.Errorf("serve: unknown partition %q", part)
	}
	return s, nil
}

// width is the number of columns this shard contributes per row.
func (s *shard) width() int { return s.hi - s.lo }

// owner returns the rank holding id's full row (row schemes only).
func (s *shard) owner(id int64) int { return rowOwner(s.part, id, s.ranks) }

// payload returns the shard's stored values for one id without packing:
// a direct view into shard storage, valid until the next reload. Unowned or
// out-of-range ids are a protocol bug upstream (the router validates ids at
// admission) and error out rather than silently serving zeros.
func (s *shard) payload(id int64) ([]float32, error) {
	switch s.part {
	case PartRowHash, PartConsistent:
		row, ok := s.rows[id]
		if !ok {
			return nil, fmt.Errorf("serve: rank %d asked for row %d it does not own", s.rank, id)
		}
		return row, nil
	default: // PartColumn
		if id < 0 || id >= int64(s.vocab) {
			return nil, fmt.Errorf("serve: row %d outside vocab %d", id, s.vocab)
		}
		return s.columns.Row(int(id)), nil
	}
}

// fetchInto packs the shard's payload for the requested ids into dst, one
// sparse row per id in request order, reusing dst's backing arrays.
//
//embrace:hotpath
func (s *shard) fetchInto(ids []int64, dst *tensor.Sparse) error {
	dst.Reset()
	dst.NumRows, dst.Dim = s.vocab, s.width()
	for _, id := range ids {
		row, err := s.payload(id)
		if err != nil {
			return err
		}
		dst.Indices = append(dst.Indices, id)
		dst.Vals = append(dst.Vals, row...)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Control protocol.
// ---------------------------------------------------------------------------

// Control message kinds, sent driver -> followers under "serve/ctl" within
// one tag plane.
const (
	ctlExchange = iota // run one id/row AlltoAll pair
	ctlReload          // join the reload rendezvous, then barrier
	ctlShutdown        // exit the follower loop
)

// broadcastCtl tells every follower of this plane what happens next. One ctl
// sequence number is consumed per broadcast on every rank, keeping tags
// aligned. Every peer is attempted even after a send fails (the first error
// is returned): skipping survivors would desynchronize their ctl streams
// from the driver's, turning one dead rank into a wedged plane.
func (c *Cluster) broadcastCtl(n *node, kind int) error {
	st := step(n.ctlSeq)
	n.ctlSeq++
	var first error
	for p := 0; p < c.cfg.Ranks; p++ {
		if p == n.rank {
			continue
		}
		if err := n.cm.Send("serve/ctl", st, p, kind); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// exchange runs the two-phase sparse fetch on any plane member: an AlltoAll
// of requested ids, a local shard fetch into reused send scratch, and an
// arena AlltoAll of the resulting rows (self shard elided from the wire).
// The driver passes its per-rank request lists; followers pass empties. The
// returned arena holds the per-sender shards (request order preserved) and
// is valid until the node's next exchange.
//
//embrace:hotpath
//embrace:arena
func (c *Cluster) exchange(n *node, reqLists [][]int64) (*collective.SparseShards, error) {
	st := step(n.xSeq)
	n.xSeq++
	if reqLists == nil {
		reqLists = make([][]int64, c.cfg.Ranks) //embrace:allow hotalloc follower conscription is off the request fast path
	}
	got, err := collective.AllToAllVia(n.cm, "serve/req", st, reqLists)
	if err != nil {
		return nil, err
	}
	packed := 0
	n.rs.mu.RLock()
	for p := range n.send {
		if err := n.rs.shard.fetchInto(got[p], &n.send[p]); err != nil {
			n.rs.mu.RUnlock()
			return nil, err
		}
		packed += len(got[p])
	}
	n.rs.mu.RUnlock()
	c.packed.Add(int64(packed))
	if err := n.cm.AlltoAllSparseCodec("serve/rows", st, n.sendPtrs, &n.arena, c.cfg.Codec, collective.RowsWhole); err != nil {
		return nil, err
	}
	return &n.arena, nil
}

// reloadRendezvous quiesces this plane member at the cluster-wide
// rendezvous (the last arrival rebuilds every rank and invalidates the hot
// set), then barriers the plane so its tag stream resumes in lockstep.
// Called on every plane member, drivers included.
func (c *Cluster) reloadRendezvous(n *node) error {
	if err := c.rv.await(c.rebuildAll, c.closeCh); err != nil {
		return err
	}
	st := step(n.reloadSeq)
	n.reloadSeq++
	return n.cm.Barrier("serve/reload", st)
}

// rebuildAll swaps every rank onto the pending checkpoint and flushes the
// replicated hot set. It runs exactly once per reload, by the rendezvous's
// last arrival, while every driver and follower is parked — so no exchange
// can observe a half-rebuilt cluster.
func (c *Cluster) rebuildAll() error {
	c.pendingMu.Lock()
	ck := c.pending
	c.pendingMu.Unlock()
	if ck == nil {
		return errors.New("serve: reload signaled with no pending checkpoint")
	}
	for r, rs := range c.ranks {
		if err := rs.load(c.cfg, r, ck); err != nil {
			return err
		}
	}
	c.hot.invalidate()
	c.reloads.Add(1)
	return nil
}

// followerLoop is one plane member's life on a non-driver rank: wait for a
// control message from the plane's driver, obey it, repeat. Timeouts while
// idle (when a RecvTimeout is configured) are not errors — the rank just
// keeps listening.
func (c *Cluster) followerLoop(n *node) {
	for {
		st := step(n.ctlSeq)
		payload, err := n.cm.Recv("serve/ctl", st, n.plane)
		if err != nil {
			if errors.Is(err, comm.ErrTimeout) {
				continue // idle; same step, keep waiting
			}
			c.fail(fmt.Errorf("serve: rank %d plane %d ctl: %w", n.rank, n.plane, err))
			return
		}
		n.ctlSeq++
		kind, ok := payload.(int)
		if !ok {
			c.fail(fmt.Errorf("serve: rank %d plane %d: ctl payload %T", n.rank, n.plane, payload))
			return
		}
		switch kind {
		case ctlExchange:
			if _, err := c.exchange(n, nil); err != nil {
				c.fail(fmt.Errorf("serve: rank %d plane %d exchange: %w", n.rank, n.plane, err))
				return
			}
		case ctlReload:
			if err := c.reloadRendezvous(n); err != nil {
				c.fail(fmt.Errorf("serve: rank %d plane %d reload: %w", n.rank, n.plane, err))
				return
			}
		case ctlShutdown:
			return
		default:
			c.fail(fmt.Errorf("serve: rank %d plane %d: unknown ctl kind %d", n.rank, n.plane, kind))
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Reload rendezvous.
// ---------------------------------------------------------------------------

// rvGen is one generation of the rendezvous: a count of arrivals, a release
// channel, and the rebuild's outcome every participant reads after release.
type rvGen struct {
	arrived int
	done    chan struct{}
	err     error
}

// rendezvous is the cluster-wide quiesce point of the reload protocol:
// every plane member (Drivers x Ranks participants) arrives, the last
// arrival runs the rebuild while everyone else is parked, and the release
// publishes the rebuild happens-before every participant's next read — the
// cross-plane ordering the per-plane stepped protocol alone cannot provide,
// since concurrent drivers share no tag plane. Process-local by design: the
// ranks of a cluster are goroutines of one process on every fabric,
// including TCP.
type rendezvous struct {
	total int
	mu    sync.Mutex
	gen   *rvGen
}

func newRendezvous(total int) *rendezvous {
	return &rendezvous{total: total, gen: &rvGen{done: make(chan struct{})}}
}

// await blocks until all participants of the current generation arrive. The
// last arrival runs onLast and releases the rest; everyone returns onLast's
// error. abort (the cluster's close channel) unblocks waiters whose
// generation will never complete because the cluster is dying.
func (z *rendezvous) await(onLast func() error, abort <-chan struct{}) error {
	z.mu.Lock()
	g := z.gen
	g.arrived++
	last := g.arrived == z.total
	if last {
		z.gen = &rvGen{done: make(chan struct{})}
	}
	z.mu.Unlock()
	if last {
		g.err = onLast()
		close(g.done)
		return g.err
	}
	select {
	case <-g.done:
		return g.err
	case <-abort:
		return ErrClosed
	}
}
