// Package serve turns a training checkpoint into a multi-rank inference
// service — the serving counterpart of the trainer. The mechanisms are the
// paper's, repurposed: the embedding table is partitioned across ranks
// (row-hash or column-wise, §4.1.1), remote rows are resolved through the
// Communicator's sparse AlltoAll, and repeated ids within a micro-batch are
// deduplicated before the exchange — the serving analogue of Algorithm 1's
// gradient coalescing. The dense trunk is small and replicated, so only the
// sparse lookups cross ranks.
//
// Topology: rank 0 is the front-end driver. It owns the admission queue,
// micro-batches requests under a configurable window/size, serves the Zipf
// head from a hot-row LRU cache, and conscripts the other ranks — which sit
// in a control loop — only when a batch misses rows it does not hold. The
// control protocol is SPMD over the same Communicator the trainer uses:
// every conscripted exchange is one []int64 AlltoAll of requested ids
// followed by one sparse AlltoAll of the rows, under monotonically stepped
// (op, step) tags, so the fabric can be the in-process world, TCP, or the
// chaos wrapper with no code change.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"embrace/internal/checkpoint"
	"embrace/internal/collective"
	"embrace/internal/comm"
	"embrace/internal/metrics"
	"embrace/internal/nn"
	"embrace/internal/partition"
	"embrace/internal/tensor"
	"embrace/internal/trace"
)

// Partitioning schemes the serving shards support.
const (
	// PartRowHash shards full rows by token id hash: each lookup touches one
	// rank, but the Zipf head concentrates on whichever ranks own hot rows.
	PartRowHash = "row-hash"
	// PartColumn shards every row's columns evenly: each lookup touches all
	// ranks and each contributes 1/n of the row — EmbRace's balanced layout.
	PartColumn = "column"
)

// Config parameterizes a serving cluster.
type Config struct {
	// Ranks is the number of serving ranks (default 1). Rank 0 fronts the
	// cluster; the rest hold shards and answer exchanges.
	Ranks int
	// Partition selects the embedding layout: PartRowHash (default) or
	// PartColumn.
	Partition string
	// CacheRows bounds the front-end hot-row LRU cache; 0 disables caching.
	CacheRows int
	// MaxBatch caps how many requests one micro-batch coalesces (default 32).
	MaxBatch int
	// BatchWindow is how long the driver waits for stragglers after the
	// first request of a batch arrives (default 200µs).
	BatchWindow time.Duration
	// QueueDepth bounds the admission queue (default 256). A full queue
	// fails fast with ErrOverloaded.
	QueueDepth int
	// RecvTimeout bounds blocking receives on the fabric; 0 blocks forever.
	RecvTimeout time.Duration
	// Chaos, when non-nil, builds the cluster over a fault-injecting fabric
	// (comm.NewChaosWorld) instead of the plain in-process world.
	Chaos *comm.FaultPlan
	// Trace enables per-rank trace.Recorder span collection.
	Trace bool
	// TraceClock overrides the trace clock (tests); nil uses wall time.
	TraceClock trace.Clock
	// Codec, when non-nil, compresses the row-fetch AlltoAll wire streams
	// between ranks (DESIGN.md §12). Lossless codecs keep responses
	// bit-identical to the raw wire; lossy ones would perturb served
	// embeddings and are rejected by the facade.
	Codec collective.SparseCodec
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.Partition == "" {
		c.Partition = PartRowHash
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	return c
}

// fabric abstracts the two in-process worlds a cluster can run on.
type fabric interface {
	Rank(i int) comm.Transport
	Close()
}

// Cluster is a running serving deployment: N ranks over one fabric, a loaded
// checkpoint, and a front-end router. Create with New, stop with Close.
type Cluster struct {
	cfg    Config
	world  fabric
	chaos  *comm.ChaosWorld // == world when chaotic, for Injected()
	router *Router

	vocab, embDim int

	// pending hands the next checkpoint to every rank during a reload.
	pendingMu sync.Mutex
	pending   *checkpoint.Checkpoint

	// Per-rank instrumentation, indexed by rank.
	recs    []*metrics.OpRecorder
	tracers []*trace.Recorder

	stats counters

	closeOnce sync.Once
	closeCh   chan struct{}
	wg        sync.WaitGroup

	// errMu guards the first fatal per-rank error.
	errMu sync.Mutex
	err   error
}

// counters is the cluster's atomic stat block.
type counters struct {
	requests, lookups, predicts  atomic.Int64
	batches, exchanges           atomic.Int64
	coalesced, packed            atomic.Int64
	localRows, remoteRows        atomic.Int64
	overloaded, expired, reloads atomic.Int64
	cache                        metrics.CacheCounters
	latency                      *metrics.Histogram
	queueWait                    *metrics.Histogram
}

// Stats is a point-in-time snapshot of a cluster's serving counters.
type Stats struct {
	// Requests admitted, split into Lookups and Predicts.
	Requests, Lookups, Predicts int64
	// Batches processed; Exchanges is how many needed a cross-rank
	// conscription (a batch satisfied by cache + local shard skips it).
	Batches, Exchanges int64
	// Coalesced counts duplicate ids removed by within-batch dedup.
	Coalesced int64
	// Packed counts rows packed into sparse exchange payloads across all
	// ranks. Driver-owned lookups resolve straight from shard storage and
	// never pack, so a workload the driver can satisfy alone keeps this 0.
	Packed int64
	// LocalRows and RemoteRows count rows resolved from rank 0's own shard
	// versus fetched from peers.
	LocalRows, RemoteRows int64
	// Overloaded counts admissions refused with ErrOverloaded; Expired
	// counts admitted requests dropped at their deadline; Reloads counts
	// completed checkpoint swaps.
	Overloaded, Expired, Reloads int64
	// Cache is the hot-row cache's hit/miss/eviction snapshot.
	Cache metrics.CacheStats
	// Latency digests request latency (admission to reply); QueueWait the
	// time batches spent waiting for the driver.
	Latency, QueueWait metrics.Summary
	// CommPerOp folds per-op communication counters across all ranks.
	CommPerOp map[string]metrics.OpStats
}

// New boots a serving cluster from a checkpoint. The checkpoint must hold
// the facade's parameter set ("emb", "w1", "b1", "w2", "b2"); optimizer state
// is ignored. The returned cluster is live: its router accepts requests.
func New(ck *checkpoint.Checkpoint, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Partition != PartRowHash && cfg.Partition != PartColumn {
		return nil, fmt.Errorf("serve: unknown partition %q (want %q or %q)", cfg.Partition, PartRowHash, PartColumn)
	}
	if err := ck.Validate(); err != nil {
		return nil, err
	}
	emb := ck.Params["emb"]
	if emb == nil || emb.Dims() != 2 {
		return nil, fmt.Errorf("serve: checkpoint has no [vocab x dim] %q table", "emb")
	}

	var world fabric
	var chaos *comm.ChaosWorld
	if cfg.Chaos != nil {
		cw, err := comm.NewChaosWorld(cfg.Ranks, *cfg.Chaos)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		if cfg.RecvTimeout > 0 {
			cw.SetRecvTimeout(cfg.RecvTimeout)
		}
		world, chaos = cw, cw
	} else {
		w, err := comm.NewWorld(cfg.Ranks)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		if cfg.RecvTimeout > 0 {
			w.SetRecvTimeout(cfg.RecvTimeout)
		}
		world = w
	}

	c := &Cluster{
		cfg:     cfg,
		world:   world,
		chaos:   chaos,
		vocab:   emb.Dim(0),
		embDim:  emb.Dim(1),
		recs:    make([]*metrics.OpRecorder, cfg.Ranks),
		tracers: make([]*trace.Recorder, cfg.Ranks),
		closeCh: make(chan struct{}),
	}
	c.stats.latency = metrics.NewHistogram()
	c.stats.queueWait = metrics.NewHistogram()
	c.router = newRouter(c, cfg.QueueDepth)

	for r := 0; r < cfg.Ranks; r++ {
		c.recs[r] = metrics.NewOpRecorder()
		if cfg.Trace {
			opts := []trace.RecorderOption{}
			if cfg.TraceClock != nil {
				opts = append(opts, trace.WithClock(cfg.TraceClock))
			}
			tr := trace.NewRecorder(r, opts...)
			tr.RouteOp("serve/req", trace.TrackNetwork)
			tr.RouteOp("serve/rows", trace.TrackNetwork)
			tr.RouteOp("serve/ctl", trace.TrackNetwork)
			c.tracers[r] = tr
		}
	}

	for r := 0; r < cfg.Ranks; r++ {
		cm := collective.NewCommunicator(world.Rank(r),
			collective.WithObserver(collective.MultiObserver(c.recs[r], c.tracers[r])))
		node, err := c.buildNode(cm, ck)
		if err != nil {
			world.Close()
			return nil, err
		}
		c.wg.Add(1)
		if r == 0 {
			go func() { defer c.wg.Done(); c.driverLoop(node) }()
		} else {
			go func() { defer c.wg.Done(); c.followerLoop(node) }()
		}
	}
	return c, nil
}

// Router returns the cluster's front end.
func (c *Cluster) Router() *Router { return c.router }

// Lookup resolves embedding rows; see Router.Lookup.
func (c *Cluster) Lookup(ctx context.Context, ids []int64) ([][]float32, error) {
	return c.router.Lookup(ctx, ids)
}

// Predict runs the trunk over a pooled token window; see Router.Predict.
func (c *Cluster) Predict(ctx context.Context, window []int64) (int64, float32, error) {
	return c.router.Predict(ctx, window)
}

// Stats snapshots the cluster's counters.
func (c *Cluster) Stats() Stats {
	per := make(map[string]metrics.OpStats)
	for _, rec := range c.recs {
		for op, s := range rec.PerOp() {
			per[op] = per[op].Add(s)
		}
	}
	return Stats{
		Requests:   c.stats.requests.Load(),
		Lookups:    c.stats.lookups.Load(),
		Predicts:   c.stats.predicts.Load(),
		Batches:    c.stats.batches.Load(),
		Exchanges:  c.stats.exchanges.Load(),
		Coalesced:  c.stats.coalesced.Load(),
		Packed:     c.stats.packed.Load(),
		LocalRows:  c.stats.localRows.Load(),
		RemoteRows: c.stats.remoteRows.Load(),
		Overloaded: c.stats.overloaded.Load(),
		Expired:    c.stats.expired.Load(),
		Reloads:    c.stats.reloads.Load(),
		Cache:      c.stats.cache.Snapshot(),
		Latency:    c.stats.latency.Summary(),
		QueueWait:  c.stats.queueWait.Summary(),
		CommPerOp:  per,
	}
}

// Tracers returns the per-rank trace recorders (nil entries when tracing is
// off), for span inspection and Chrome-trace export.
func (c *Cluster) Tracers() []*trace.Recorder { return c.tracers }

// FaultsInjected reports the chaos fabric's injected-fault counts, or nil
// when the cluster runs on a fault-free fabric.
func (c *Cluster) FaultsInjected() map[string]int64 {
	if c.chaos == nil {
		return nil
	}
	return c.chaos.Injected()
}

// Err returns the first fatal rank error, if any.
func (c *Cluster) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

func (c *Cluster) fail(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
}

// Reload swaps in a new checkpoint with zero downtime: the swap happens
// between micro-batches, every rank rebuilds its shard and trunk from the
// new snapshot, and the hot-row cache is invalidated — after Reload returns,
// every response is computed from the new checkpoint, exactly as a cold
// restart would compute it. The checkpoint is validated (shape agreement,
// same vocab/dim) before any rank commits to it.
func (c *Cluster) Reload(ck *checkpoint.Checkpoint) error {
	if err := ck.Validate(); err != nil {
		return err
	}
	emb := ck.Params["emb"]
	if emb == nil || emb.Dims() != 2 || emb.Dim(0) != c.vocab || emb.Dim(1) != c.embDim {
		return fmt.Errorf("serve: reload checkpoint shape mismatch (want [%d x %d] %q)", c.vocab, c.embDim, "emb")
	}
	rr := &reloadReq{ck: ck, done: make(chan error, 1)}
	select {
	case c.router.reloadCh <- rr:
	case <-c.closeCh:
		return ErrClosed
	}
	select {
	case err := <-rr.done:
		return err
	case <-c.closeCh:
		return ErrClosed
	}
}

// Close shuts the cluster down: pending requests are answered with ErrClosed,
// followers are released, and the fabric is torn down. Idempotent.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		c.router.close()
		close(c.closeCh)
	})
	c.wg.Wait()
	c.world.Close()
}

// ---------------------------------------------------------------------------
// Per-rank state.
// ---------------------------------------------------------------------------

// node is one rank's live serving state: its communicator, embedding shard
// and trunk replica, plus the step counters that keep its (op, step) tags in
// lockstep with the driver's.
type node struct {
	cm    *collective.Communicator
	rank  int
	shard *shard
	trunk *nn.Trunk

	ctlSeq, xSeq, reloadSeq int

	// Exchange scratch, reused across conscriptions: the per-destination
	// packed row payloads and the receive arena of the sparse AlltoAll. Only
	// the rank's own serving goroutine touches them.
	send     []tensor.Sparse
	sendPtrs []*tensor.Sparse
	arena    collective.SparseShards
}

// step folds a monotone sequence number into the Communicator's step range.
func step(seq int) int { return seq % (collective.MaxStep + 1) }

// buildNode deep-copies rank r's slice of the checkpoint.
func (c *Cluster) buildNode(cm *collective.Communicator, ck *checkpoint.Checkpoint) (*node, error) {
	n := &node{cm: cm, rank: cm.Rank()}
	n.send = make([]tensor.Sparse, c.cfg.Ranks)
	n.sendPtrs = make([]*tensor.Sparse, c.cfg.Ranks)
	for i := range n.send {
		n.sendPtrs[i] = &n.send[i]
	}
	if err := n.load(c, ck); err != nil {
		return nil, err
	}
	return n, nil
}

// load (re)builds the node's shard and trunk from a checkpoint. Everything is
// deep-copied so the caller's checkpoint stays untouched and two reloads
// never share tensors.
func (n *node) load(c *Cluster, ck *checkpoint.Checkpoint) error {
	for _, name := range []string{"w1", "b1", "w2", "b2"} {
		if ck.Params[name] == nil {
			return fmt.Errorf("serve: checkpoint missing trunk param %q", name)
		}
	}
	n.trunk = &nn.Trunk{
		W1: ck.Params["w1"].Clone(),
		B1: ck.Params["b1"].Clone(),
		W2: ck.Params["w2"].Clone(),
		B2: ck.Params["b2"].Clone(),
	}
	sh, err := newShard(ck.Params["emb"], c.cfg.Partition, c.cfg.Ranks, n.rank)
	if err != nil {
		return err
	}
	n.shard = sh
	return nil
}

// ---------------------------------------------------------------------------
// Embedding shards.
// ---------------------------------------------------------------------------

// shard is one rank's slice of the embedding table. For row-hash it holds
// the full rows it owns; for column-wise it holds every row's [lo, hi)
// column slice. fetch answers requests in request order so the driver can
// zip ids with rows positionally.
type shard struct {
	part    string
	ranks   int
	rank    int
	vocab   int
	dim     int // full embedding width
	lo, hi  int // owned column range (column-wise; [0, dim) for row-hash)
	rows    map[int64][]float32
	columns *tensor.Dense // [vocab x (hi-lo)] (column-wise)
}

func newShard(emb *tensor.Dense, part string, ranks, rank int) (*shard, error) {
	vocab, dim := emb.Dim(0), emb.Dim(1)
	s := &shard{part: part, ranks: ranks, rank: rank, vocab: vocab, dim: dim, lo: 0, hi: dim}
	switch part {
	case PartRowHash:
		s.rows = make(map[int64][]float32)
		for tok := 0; tok < vocab; tok++ {
			if (partition.RowHash{}).Owner(int64(tok), ranks) == rank {
				s.rows[int64(tok)] = append([]float32(nil), emb.Row(tok)...)
			}
		}
	case PartColumn:
		lo, hi := partition.ColumnWise{}.Range(dim, ranks, rank)
		s.lo, s.hi = lo, hi
		cols := tensor.NewDense(vocab, hi-lo)
		for tok := 0; tok < vocab; tok++ {
			copy(cols.Row(tok), emb.Row(tok)[lo:hi])
		}
		s.columns = cols
	default:
		return nil, fmt.Errorf("serve: unknown partition %q", part)
	}
	return s, nil
}

// width is the number of columns this shard contributes per row.
func (s *shard) width() int { return s.hi - s.lo }

// owner returns the rank holding id's full row (row-hash layouts only).
func (s *shard) owner(id int64) int { return (partition.RowHash{}).Owner(id, s.ranks) }

// payload returns the shard's stored values for one id without packing:
// a direct view into shard storage, valid until the next reload. Unowned or
// out-of-range ids are a protocol bug upstream (the router validates ids at
// admission) and error out rather than silently serving zeros.
func (s *shard) payload(id int64) ([]float32, error) {
	switch s.part {
	case PartRowHash:
		row, ok := s.rows[id]
		if !ok {
			return nil, fmt.Errorf("serve: rank %d asked for row %d it does not own", s.rank, id)
		}
		return row, nil
	default: // PartColumn
		if id < 0 || id >= int64(s.vocab) {
			return nil, fmt.Errorf("serve: row %d outside vocab %d", id, s.vocab)
		}
		return s.columns.Row(int(id)), nil
	}
}

// fetchInto packs the shard's payload for the requested ids into dst, one
// sparse row per id in request order, reusing dst's backing arrays.
//
//embrace:hotpath
func (s *shard) fetchInto(ids []int64, dst *tensor.Sparse) error {
	dst.Reset()
	dst.NumRows, dst.Dim = s.vocab, s.width()
	for _, id := range ids {
		row, err := s.payload(id)
		if err != nil {
			return err
		}
		dst.Indices = append(dst.Indices, id)
		dst.Vals = append(dst.Vals, row...)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Control protocol.
// ---------------------------------------------------------------------------

// Control message kinds, sent rank 0 -> followers under "serve/ctl".
const (
	ctlExchange = iota // run one id/row AlltoAll pair
	ctlReload          // rebuild from Cluster.pending, then barrier
	ctlShutdown        // exit the follower loop
)

// broadcastCtl tells every follower what happens next. One ctl sequence
// number is consumed per broadcast on every rank, keeping tags aligned.
func (c *Cluster) broadcastCtl(n *node, kind int) error {
	st := step(n.ctlSeq)
	n.ctlSeq++
	for p := 1; p < c.cfg.Ranks; p++ {
		if err := n.cm.Send("serve/ctl", st, p, kind); err != nil {
			return err
		}
	}
	return nil
}

// exchange runs the two-phase sparse fetch on any rank: an AlltoAll of
// requested ids, a local shard fetch into reused send scratch, and an arena
// AlltoAll of the resulting rows (self shard elided from the wire). The
// driver passes its per-rank request lists; followers pass empties. The
// returned arena holds the per-sender shards (request order preserved) and
// is valid until the node's next exchange.
//
//embrace:hotpath
//embrace:arena
func (c *Cluster) exchange(n *node, reqLists [][]int64) (*collective.SparseShards, error) {
	st := step(n.xSeq)
	n.xSeq++
	if reqLists == nil {
		reqLists = make([][]int64, c.cfg.Ranks) //embrace:allow hotalloc follower conscription is off the request fast path
	}
	got, err := collective.AllToAllVia(n.cm, "serve/req", st, reqLists)
	if err != nil {
		return nil, err
	}
	packed := 0
	for p := range n.send {
		if err := n.shard.fetchInto(got[p], &n.send[p]); err != nil {
			return nil, err
		}
		packed += len(got[p])
	}
	c.stats.packed.Add(int64(packed))
	if err := n.cm.AlltoAllSparseCodec("serve/rows", st, n.sendPtrs, &n.arena, c.cfg.Codec, collective.RowsWhole); err != nil {
		return nil, err
	}
	return &n.arena, nil
}

// doReloadOn rebuilds this rank from the pending checkpoint and joins the
// reload barrier. Called on every rank, driver included.
func (c *Cluster) doReloadOn(n *node) error {
	c.pendingMu.Lock()
	ck := c.pending
	c.pendingMu.Unlock()
	if ck == nil {
		return errors.New("serve: reload signaled with no pending checkpoint")
	}
	if err := n.load(c, ck); err != nil {
		return err
	}
	st := step(n.reloadSeq)
	n.reloadSeq++
	return n.cm.Barrier("serve/reload", st)
}

// followerLoop is every non-zero rank's life: wait for a control message,
// obey it, repeat. Timeouts while idle (when a RecvTimeout is configured)
// are not errors — the rank just keeps listening.
func (c *Cluster) followerLoop(n *node) {
	for {
		st := step(n.ctlSeq)
		payload, err := n.cm.Recv("serve/ctl", st, 0)
		if err != nil {
			if errors.Is(err, comm.ErrTimeout) {
				continue // idle; same step, keep waiting
			}
			c.fail(fmt.Errorf("serve: rank %d ctl: %w", n.rank, err))
			return
		}
		n.ctlSeq++
		kind, ok := payload.(int)
		if !ok {
			c.fail(fmt.Errorf("serve: rank %d: ctl payload %T", n.rank, payload))
			return
		}
		switch kind {
		case ctlExchange:
			if _, err := c.exchange(n, nil); err != nil {
				c.fail(fmt.Errorf("serve: rank %d exchange: %w", n.rank, err))
				return
			}
		case ctlReload:
			if err := c.doReloadOn(n); err != nil {
				c.fail(fmt.Errorf("serve: rank %d reload: %w", n.rank, err))
				return
			}
		case ctlShutdown:
			return
		default:
			c.fail(fmt.Errorf("serve: rank %d: unknown ctl kind %d", n.rank, kind))
			return
		}
	}
}
