package serve

import (
	"sync"
	"sync/atomic"
)

// hotSet is the cluster's hot-shard replication manager. A Zipf workload
// concentrates lookups on a small head of the vocabulary (§2.1 — the same
// skew that makes sparse gradients sparse); the hotSet tracks per-row access
// frequency across every ingress and, once a row proves hot, replicates it
// so ALL drivers serve it locally — the Parallax observation (hot sparse
// parameters deserve different placement than the cold tail) applied to
// serving. A replicated row never crosses the fabric again: lookups hit the
// replica before the shards, so a hot-row-only workload keeps the cluster's
// Packed counter at zero no matter which driver admits it.
//
// The replica store is shared by all driver goroutines in this process —
// promotion "pushes" a row to every ingress by publishing it once. Rows are
// exact copies of checkpoint rows (promotion copies the resolved value, which
// itself is bit-exact shard state), so replica reads are bit-identical to
// shard reads. Reload invalidates everything: no stale row survives on any
// ingress.
//
// A nil *hotSet (replication disabled) is inert: gets miss without counting,
// touches and invalidations are no-ops.
type hotSet struct {
	cap     int // max replicated rows
	promote int // accesses before a row is promoted
	tracked int // max frequency-table entries before aging halves counts

	mu   sync.RWMutex
	freq map[int64]int64
	rows map[int64][]float32

	hits, misses             atomic.Int64
	promotions, demotions    atomic.Int64
	invalidations, residents atomic.Int64
}

// defaultHotPromote is the access count that promotes a row when
// Config.HotPromote is unset: three sightings separate the Zipf head from
// one-off tail lookups without warming up forever.
const defaultHotPromote = 3

func newHotSet(capacity, promote int) *hotSet {
	if capacity <= 0 {
		return nil
	}
	if promote <= 0 {
		promote = defaultHotPromote
	}
	return &hotSet{
		cap:     capacity,
		promote: promote,
		tracked: max(16*capacity, 1024),
		freq:    make(map[int64]int64),
		rows:    make(map[int64][]float32, capacity),
	}
}

// get returns the replicated row, if id is hot. The returned slice is owned
// by the hotSet; callers must copy before mutating or handing it out past
// the current batch.
func (h *hotSet) get(id int64) ([]float32, bool) {
	if h == nil {
		return nil, false
	}
	h.mu.RLock()
	row, ok := h.rows[id]
	h.mu.RUnlock()
	if ok {
		h.hits.Add(1)
		return row, true
	}
	h.misses.Add(1)
	return nil, false
}

// touchAll records one access per id (a batch's deduplicated id set, with
// every row value in hand) and promotes ids that cross the threshold. One
// write lock per batch, not per id, keeps the tracker off the per-request
// path even with many concurrent drivers.
func (h *hotSet) touchAll(ids []int64, rows map[int64][]float32) {
	if h == nil {
		return
	}
	h.mu.Lock()
	for _, id := range ids {
		h.freq[id]++
		if h.freq[id] < int64(h.promote) {
			continue
		}
		if _, resident := h.rows[id]; resident {
			continue
		}
		row := rows[id]
		if row == nil {
			continue
		}
		if len(h.rows) >= h.cap && !h.demoteColdestLocked(h.freq[id]) {
			continue // every resident is at least as hot; candidate waits
		}
		h.rows[id] = append([]float32(nil), row...)
		h.promotions.Add(1)
	}
	// Age the frequency table once it outgrows its budget: halve every
	// count and drop the zeros. Halving preserves the hot/cold ordering
	// while letting yesterday's head decay out of the way of today's.
	if len(h.freq) > h.tracked {
		for id, f := range h.freq {
			f /= 2
			if f == 0 {
				delete(h.freq, id)
			} else {
				h.freq[id] = f
			}
		}
	}
	h.residents.Store(int64(len(h.rows)))
	h.mu.Unlock()
}

// demoteColdestLocked evicts the least-frequent resident if it is strictly
// colder than a candidate with frequency candFreq. Called with mu held.
func (h *hotSet) demoteColdestLocked(candFreq int64) bool {
	var coldest int64
	var coldestFreq int64 = -1
	for id := range h.rows {
		f := h.freq[id] // absent entries (aged out) read as 0: maximally cold
		if coldestFreq < 0 || f < coldestFreq {
			coldest, coldestFreq = id, f
		}
	}
	if coldestFreq < 0 || coldestFreq >= candFreq {
		return false
	}
	delete(h.rows, coldest)
	h.demotions.Add(1)
	return true
}

// invalidate drops every replica and resets the frequency tracker — the
// reload path. After it returns, no ingress can serve a pre-reload row from
// the hot set.
func (h *hotSet) invalidate() {
	if h == nil {
		return
	}
	h.mu.Lock()
	clear(h.rows)
	clear(h.freq)
	h.residents.Store(0)
	h.mu.Unlock()
	h.invalidations.Add(1)
}

// resident reports how many rows are currently replicated.
func (h *hotSet) resident() int {
	if h == nil {
		return 0
	}
	return int(h.residents.Load())
}

// HotStats is a point-in-time snapshot of the replication manager.
type HotStats struct {
	// Hits and Misses count replica lookups (after the per-driver cache,
	// before the shards). HitRate is Hits over both.
	Hits, Misses int64
	// Resident is the replicated row count; Promotions and Demotions the
	// lifetime flow through the set; Invalidations counts reload flushes.
	Resident, Promotions, Demotions, Invalidations int64
}

// HitRate returns hits over lookups, or 0 with no lookups.
func (s HotStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// snapshot returns the current counters. Nil-safe (all zeros).
func (h *hotSet) snapshot() HotStats {
	if h == nil {
		return HotStats{}
	}
	return HotStats{
		Hits:          h.hits.Load(),
		Misses:        h.misses.Load(),
		Resident:      h.residents.Load(),
		Promotions:    h.promotions.Load(),
		Demotions:     h.demotions.Load(),
		Invalidations: h.invalidations.Load(),
	}
}
