package serve

import (
	"container/list"

	"embrace/internal/metrics"
)

// lruCache is the front end's hot-row cache. Zipf-distributed workloads
// concentrate lookups on a small head of the vocabulary (§2.1 — the same
// skew that makes sparse gradients sparse), so a bounded LRU in front of the
// shards absorbs most traffic without touching the fabric. It is accessed
// only from the driver goroutine, so it needs no locking; the hit/miss/
// eviction counters are atomics because Stats() reads them from outside.
type lruCache struct {
	cap   int
	ll    *list.List // front = most recently used
	items map[int64]*list.Element
	ctr   *metrics.CacheCounters
}

// cacheEntry is one resident row. The row slice is owned by the cache;
// readers must copy before handing it out.
type cacheEntry struct {
	id  int64
	row []float32
}

func newLRUCache(capacity int, ctr *metrics.CacheCounters) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[int64]*list.Element, capacity),
		ctr:   ctr,
	}
}

// get returns the cached row and promotes it. Nil caches miss everything
// silently (no counter noise from a disabled cache).
func (c *lruCache) get(id int64) ([]float32, bool) {
	if c == nil {
		return nil, false
	}
	if el, ok := c.items[id]; ok {
		c.ll.MoveToFront(el)
		c.ctr.Hit()
		return el.Value.(*cacheEntry).row, true
	}
	c.ctr.Miss()
	return nil, false
}

// put inserts (or refreshes) a row, evicting the coldest entry when full.
// The cache keeps its own copy so later reloads or caller mutations cannot
// alias into it.
func (c *lruCache) put(id int64, row []float32) {
	if c == nil {
		return
	}
	if el, ok := c.items[id]; ok {
		el.Value.(*cacheEntry).row = append([]float32(nil), row...)
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).id)
		c.ctr.Evict()
	}
	c.items[id] = c.ll.PushFront(&cacheEntry{id: id, row: append([]float32(nil), row...)})
}

// clear empties the cache — the reload invalidation.
func (c *lruCache) clear() {
	if c == nil {
		return
	}
	c.ll.Init()
	clear(c.items)
}

// len reports residency.
func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	return c.ll.Len()
}

// Cache plumbing on the Router: the driver goroutine is the only caller of
// cacheGet/cachePut/cacheClear, so the nil-safe lruCache needs no lock.

func (r *Router) cacheGet(id int64) ([]float32, bool) { return r.cache.get(id) }
func (r *Router) cachePut(id int64, row []float32)    { r.cache.put(id, row) }
func (r *Router) cacheClear()                         { r.cache.clear() }
