package simnet_test

import (
	"fmt"

	"embrace/internal/simnet"
)

// The Table-2 cost model: for a sparse tensor (α < 1) AlltoAll beats dense
// AllReduce and scales better than AllGather.
func ExampleAllToAllCost() {
	const (
		alpha = 0.1     // gradient density
		m     = 252.5e6 // GNMT-8 embedding bytes
		n     = 16      // workers
		b     = 12.5e9  // bytes/sec
		beta  = 15e-6   // message latency
	)
	fmt.Printf("AlltoAll  %.1fms\n", simnet.AllToAllCost(alpha, m, n, b, beta)*1e3)
	fmt.Printf("AllReduce %.1fms\n", simnet.AllReduceCost(m, n, b, beta)*1e3)
	fmt.Printf("AllGather %.1fms\n", simnet.AllGatherCost(alpha, m, n, b, beta)*1e3)
	// Output:
	// AlltoAll  4.2ms
	// AllReduce 38.3ms
	// AllGather 30.5ms
}
