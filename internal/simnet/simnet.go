// Package simnet models the cluster network of the paper's testbed.
//
// Two levels are provided. The Table-2 analytic formulas assume a uniform
// bandwidth B and startup latency β between any two workers, exactly as
// §4.1.2 does. The topology-aware Estimator refines them with the structure
// of the real clusters — n nodes × w workers, a fast intra-node path and a
// node NIC shared by all of a node's workers — which is what makes the
// Figure-4 crossovers appear at the sparsity the paper reports.
//
// All sizes are bytes, all rates bytes/second, all times seconds.
package simnet

import "fmt"

// Topology describes a GPU cluster as the paper configures it: n server
// nodes, w workers (GPUs) per node, 100 Gb/s InfiniBand between nodes and a
// faster shared-memory/PCIe path inside a node.
type Topology struct {
	// Nodes is the number of server nodes (the paper's n).
	Nodes int
	// WorkersPerNode is the number of GPUs per node (the paper's w).
	WorkersPerNode int
	// IntraBW is the point-to-point bandwidth between two workers of the
	// same node.
	IntraBW float64
	// InterBW is the node NIC bandwidth, shared by all the node's workers
	// for off-node traffic.
	InterBW float64
	// Latency is the startup cost β of a single message.
	Latency float64
	// HostBW is the effective throughput of a CPU parameter-server
	// process: RAM staging plus the server-side sparse update. The paper
	// blames exactly this for Parallax underperforming ("frequent memory
	// copy between GPU and CPU", §5.3). Zero disables host accounting
	// (pure-NIC analysis).
	HostBW float64
	// ShmBW is the shared-memory staging bandwidth BytePS uses for its
	// intra-node aggregation ("BytePS uses share memory to speed up
	// communication. In our hardware environment, the speed of RAMs is
	// slow and would damage the performance", §5.3). Zero disables it.
	ShmBW float64
}

// N returns the total worker count N = n·w.
func (t Topology) N() int { return t.Nodes * t.WorkersPerNode }

// Validate reports configuration errors.
func (t Topology) Validate() error {
	if t.Nodes <= 0 || t.WorkersPerNode <= 0 {
		return fmt.Errorf("simnet: need positive nodes (%d) and workers/node (%d)", t.Nodes, t.WorkersPerNode)
	}
	if t.IntraBW <= 0 || t.InterBW <= 0 {
		return fmt.Errorf("simnet: bandwidths must be positive (intra %g, inter %g)", t.IntraBW, t.InterBW)
	}
	if t.Latency < 0 {
		return fmt.Errorf("simnet: negative latency %g", t.Latency)
	}
	return nil
}

// String renders the topology like the paper's cluster captions, e.g.
// "2 nodes x 4 workers".
func (t Topology) String() string {
	return fmt.Sprintf("%d nodes x %d workers", t.Nodes, t.WorkersPerNode)
}

// ---------------------------------------------------------------------------
// Table 2: analytic costs with uniform bandwidth B and latency β.
// ---------------------------------------------------------------------------

// AllToAllCost is the Table-2 AlltoAll overhead 2(N-1)(αM/(N·B)+β): the
// EmbRace embedding exchange runs AlltoAll twice per step (lookup results
// forward, gradients backward), each moving a 1/N slice of the αM sparse
// payload to every peer.
func AllToAllCost(alpha, m float64, n int, b, beta float64) float64 {
	if n <= 1 {
		return 0
	}
	return 2 * float64(n-1) * (alpha*m/(float64(n)*b) + beta)
}

// AllReduceCost is the Table-2 ring AllReduce overhead 2(N-1)(M/(N·B)+β).
// AllReduce cannot exploit sparsity, so the full dense M travels.
func AllReduceCost(m float64, n int, b, beta float64) float64 {
	if n <= 1 {
		return 0
	}
	return 2 * float64(n-1) * (m/(float64(n)*b) + beta)
}

// PSCost is the Table-2 parameter-server overhead 2N(αM/(S·B)+β) with S
// servers; the paper's lower bound takes S = n (one server per node).
func PSCost(alpha, m float64, n, servers int, b, beta float64) float64 {
	if n <= 1 {
		return 0
	}
	if servers < 1 {
		servers = 1
	}
	return 2 * float64(n) * (alpha*m/(float64(servers)*b) + beta)
}

// AllGatherCost is the Table-2 AllGather overhead (N-1)(αM/B+β): every rank
// ships its whole αM sparse gradient to every peer, so transfer time grows
// linearly with N — the poor scalability §4.1.2 calls out.
func AllGatherCost(alpha, m float64, n int, b, beta float64) float64 {
	if n <= 1 {
		return 0
	}
	return float64(n-1) * (alpha*m/b + beta)
}

// ---------------------------------------------------------------------------
// Topology-aware estimator.
// ---------------------------------------------------------------------------

// Estimator computes collective completion times on a concrete Topology.
// The model charges each transfer pattern with its startup latencies plus
// the busiest resource: a node NIC (egress, capacity InterBW, shared by the
// node's w workers) or an intra-node link (capacity IntraBW).
type Estimator struct {
	Topo Topology
}

// NewEstimator validates the topology and returns an estimator over it.
func NewEstimator(t Topology) (*Estimator, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &Estimator{Topo: t}, nil
}

// AllToAll returns the time for one AlltoAll in which every worker holds
// sparseBytes of payload and exchanges a 1/N slice with each peer.
//
// Per node, the w local workers each push (N-w) remote slices of size
// sparseBytes/N through the shared NIC; intra-node slices ride the faster
// local path. With w=1 and IntraBW=InterBW this reduces to the Table-2 term
// (N-1)(αM/(N·B)+β).
func (e *Estimator) AllToAll(sparseBytes float64) float64 {
	t := e.Topo
	n := t.N()
	if n <= 1 {
		return 0
	}
	w := float64(t.WorkersPerNode)
	slice := sparseBytes / float64(n)
	interTime := 0.0
	if t.Nodes > 1 {
		nicBytes := w * float64(n-t.WorkersPerNode) * slice
		interTime = nicBytes / t.InterBW
	}
	intraTime := float64(t.WorkersPerNode-1) * slice / t.IntraBW
	return float64(n-1)*t.Latency + max(interTime, intraTime)
}

// AllToAllPair returns the per-step cost of EmbRace's two AlltoAll calls
// (embedding data out, embedding gradients back).
func (e *Estimator) AllToAllPair(sparseBytes float64) float64 {
	return 2 * e.AllToAll(sparseBytes)
}

// RingAllReduce returns the time for a ring AllReduce of denseBytes. The
// ring is laid out node-contiguously, so each of the 2(N-1) steps pushes one
// M/N chunk across each node boundary; the NIC carries a single flow per
// step and the ring therefore scales with N like Table 2 says.
func (e *Estimator) RingAllReduce(denseBytes float64) float64 {
	t := e.Topo
	n := t.N()
	if n <= 1 {
		return 0
	}
	chunk := denseBytes / float64(n)
	linkBW := t.IntraBW
	if t.Nodes > 1 {
		linkBW = min(t.IntraBW, t.InterBW)
	}
	return 2 * float64(n-1) * (chunk/linkBW + t.Latency)
}

// AllGather returns the time for a flat sparse AllGather in which every
// worker ships sparseBytes to each of the N-1 peers. The node NIC must carry
// w·(N-w)·sparseBytes, which is what destroys AllGather's scalability on
// multi-GPU nodes (§4.1.2, Figure 4a).
func (e *Estimator) AllGather(sparseBytes float64) float64 {
	t := e.Topo
	n := t.N()
	if n <= 1 {
		return 0
	}
	w := float64(t.WorkersPerNode)
	interTime := 0.0
	if t.Nodes > 1 {
		nicBytes := w * float64(n-t.WorkersPerNode) * sparseBytes
		interTime = nicBytes / t.InterBW
	}
	intraTime := float64(t.WorkersPerNode-1) * sparseBytes / t.IntraBW
	return float64(n-1)*t.Latency + max(interTime, intraTime)
}

// PS returns the round-trip time of a sharded parameter-server exchange of
// sparseBytes per worker with one server per node (S=n), the paper's
// lower-bound configuration. Each server NIC absorbs pushes and serves pulls
// from the N-w remote workers, plus message startup for the N/S clients it
// talks to in each direction.
func (e *Estimator) PS(sparseBytes float64) float64 {
	t := e.Topo
	n := t.N()
	if n <= 1 {
		return 0
	}
	s := float64(t.Nodes)
	shard := sparseBytes / s
	bw := t.InterBW
	if t.Nodes == 1 {
		bw = t.IntraBW
	}
	remote := float64(n - t.WorkersPerNode)
	if t.Nodes == 1 {
		remote = float64(n) // all workers hit the single local server
	}
	transfer := remote * shard / bw
	startup := 2 * float64(n) / s * t.Latency
	total := 2*transfer + startup
	// CPU-hosted servers stage every pushed and pulled byte through host
	// memory and run the sparse update there: 2 * N * (payload/S) bytes
	// per server.
	if t.HostBW > 0 {
		total += 2 * float64(n) * shard / t.HostBW
	}
	return total
}

// BytePSDense returns the round-trip time of BytePS's dense push-pull for a
// tensor of `bytes` per worker. BytePS first sums each node's w gradients in
// shared memory, so only one aggregated copy per node crosses RAM and the
// NIC; the shared-memory staging (2 shard-sized copies per server) is what
// slow RAM throttles (§5.3).
func (e *Estimator) BytePSDense(bytes float64) float64 {
	t := e.Topo
	n := t.N()
	if n <= 1 {
		return 0
	}
	s := float64(t.Nodes)
	shard := bytes / s
	bw := t.InterBW
	if t.Nodes == 1 {
		bw = t.IntraBW
	}
	// Each server exchanges its shard with the other n-1 node aggregates.
	transfer := (s - 1) * shard / bw
	startup := 2 * s * t.Latency
	total := 2*transfer + startup
	if t.ShmBW > 0 {
		total += 2 * float64(t.Nodes) * shard / t.ShmBW
	}
	// Workers still move the full tensor to/from node shared memory.
	total += 2 * bytes / t.IntraBW
	return total
}

// omniReduceRefMsg is the message size at which OmniReduce's bandwidth
// utilization reaches 50% in this model. OmniReduce ships only non-zero
// blocks, so at high sparsity its messages shrink and the NIC is driven far
// below line rate — the "insufficient bandwidth usage with excessive divided
// messages" behaviour of §4.1.2.
const omniReduceRefMsg = 1 << 20 // 1 MiB

// OmniReduce returns the time of a sparsity-aware AllReduce of a dense
// tensor of denseBytes with density alpha. Only the 1-GPU-per-node topology
// is supported, mirroring the OmniReduce limitation the paper notes under
// Figure 4.
func (e *Estimator) OmniReduce(denseBytes, alpha float64) (float64, error) {
	t := e.Topo
	if t.WorkersPerNode != 1 {
		return 0, fmt.Errorf("simnet: OmniReduce supports only 1 worker per node, topology has %d", t.WorkersPerNode)
	}
	n := t.N()
	if n <= 1 {
		return 0, nil
	}
	payload := alpha * denseBytes / float64(n)
	util := payload / (payload + omniReduceRefMsg)
	if util <= 0 {
		util = 1e-6
	}
	bw := t.InterBW
	return 2 * float64(n-1) * (payload/(bw*util) + t.Latency), nil
}
