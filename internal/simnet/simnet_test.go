package simnet

import (
	"math"
	"testing"
	"testing/quick"
)

const (
	gb = 1e9
	mb = 1e6
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol*math.Max(1, math.Abs(b)) }

func TestTopologyValidate(t *testing.T) {
	good := Topology{Nodes: 2, WorkersPerNode: 4, IntraBW: 10 * gb, InterBW: 12 * gb, Latency: 1e-5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.N() != 8 {
		t.Fatalf("N = %d", good.N())
	}
	bad := []Topology{
		{Nodes: 0, WorkersPerNode: 1, IntraBW: 1, InterBW: 1},
		{Nodes: 1, WorkersPerNode: 0, IntraBW: 1, InterBW: 1},
		{Nodes: 1, WorkersPerNode: 1, IntraBW: 0, InterBW: 1},
		{Nodes: 1, WorkersPerNode: 1, IntraBW: 1, InterBW: 1, Latency: -1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

// Pin the Table-2 formulas at hand-computed values.
func TestTable2FormulasPinned(t *testing.T) {
	const (
		alpha = 0.25
		m     = 8000.0
		n     = 4
		b     = 1000.0
		beta  = 0.001
	)
	// AlltoAll: 2*3*(0.25*8000/(4*1000)+0.001) = 6*(0.5+0.001) = 3.006
	if got := AllToAllCost(alpha, m, n, b, beta); !approx(got, 3.006, 1e-9) {
		t.Fatalf("AllToAllCost = %v", got)
	}
	// AllReduce: 2*3*(8000/4000+0.001) = 6*2.001 = 12.006
	if got := AllReduceCost(m, n, b, beta); !approx(got, 12.006, 1e-9) {
		t.Fatalf("AllReduceCost = %v", got)
	}
	// PS with S=2: 2*4*(2000/2000+0.001) = 8*1.001 = 8.008
	if got := PSCost(alpha, m, n, 2, b, beta); !approx(got, 8.008, 1e-9) {
		t.Fatalf("PSCost = %v", got)
	}
	// AllGather: 3*(2000/1000+0.001) = 3*2.001 = 6.003
	if got := AllGatherCost(alpha, m, n, b, beta); !approx(got, 6.003, 1e-9) {
		t.Fatalf("AllGatherCost = %v", got)
	}
}

func TestCostsZeroForSingleWorker(t *testing.T) {
	if AllToAllCost(0.5, 100, 1, 10, 1) != 0 ||
		AllReduceCost(100, 1, 10, 1) != 0 ||
		PSCost(0.5, 100, 1, 1, 10, 1) != 0 ||
		AllGatherCost(0.5, 100, 1, 10, 1) != 0 {
		t.Fatal("single-worker collectives must be free")
	}
}

// Property (§4.1.2): for sparse tensors (α<1), N>1, AlltoAll beats AllReduce.
func TestAllToAllBeatsAllReduceWhenSparse(t *testing.T) {
	f := func(seed int64) bool {
		// derive pseudo-random but valid parameters from the seed
		alpha := 0.05 + float64((seed%89+89)%89)/100.0 // in (0, 0.95]
		if alpha >= 1 {
			alpha = 0.9
		}
		n := int(seed%14+14)%14 + 2 // 2..15
		m := 1e6 + float64((seed%1000+1000)%1000)*1e4
		b, beta := 1e9, 5e-6
		return AllToAllCost(alpha, m, n, b, beta) <= AllReduceCost(m, n, b, beta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: AllGather transfer time grows ~linearly in N while AlltoAll's is
// ~flat, so for large N AlltoAll must win (the paper's scalability claim).
func TestAllToAllScalesBetterThanAllGather(t *testing.T) {
	const alpha, m, b, beta = 0.2, 250 * mb, 1e9, 5e-6
	small := AllGatherCost(alpha, m, 2, b, beta) / AllToAllCost(alpha, m, 2, b, beta)
	big := AllGatherCost(alpha, m, 16, b, beta) / AllToAllCost(alpha, m, 16, b, beta)
	if big <= small {
		t.Fatalf("AllGather/AlltoAll ratio must grow with N: %v -> %v", small, big)
	}
	if AllGatherCost(alpha, m, 16, b, beta) <= AllToAllCost(alpha, m, 16, b, beta) {
		t.Fatal("at N=16 AlltoAll must beat AllGather")
	}
}

func newTestEstimator(t *testing.T, topo Topology) *Estimator {
	t.Helper()
	e, err := NewEstimator(topo)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEstimatorRejectsBadTopology(t *testing.T) {
	if _, err := NewEstimator(Topology{}); err == nil {
		t.Fatal("expected error")
	}
}

// With 1 worker/node and IntraBW == InterBW, the topology-aware model must
// collapse to the Table-2 formulas.
func TestEstimatorReducesToAnalyticOnFlatTopology(t *testing.T) {
	topo := Topology{Nodes: 4, WorkersPerNode: 1, IntraBW: 1e9, InterBW: 1e9, Latency: 1e-5}
	e := newTestEstimator(t, topo)
	payload := 50 * mb // αM
	gotA2A := 2 * e.AllToAll(payload)
	wantA2A := AllToAllCost(1, payload, 4, 1e9, 1e-5)
	if !approx(gotA2A, wantA2A, 1e-9) {
		t.Fatalf("AllToAll %v vs Table-2 %v", gotA2A, wantA2A)
	}
	gotAG := e.AllGather(payload)
	wantAG := AllGatherCost(1, payload, 4, 1e9, 1e-5)
	if !approx(gotAG, wantAG, 1e-9) {
		t.Fatalf("AllGather %v vs Table-2 %v", gotAG, wantAG)
	}
	gotAR := e.RingAllReduce(payload)
	wantAR := AllReduceCost(payload, 4, 1e9, 1e-5)
	if !approx(gotAR, wantAR, 1e-9) {
		t.Fatalf("AllReduce %v vs Table-2 %v", gotAR, wantAR)
	}
}

func TestEstimatorSingleWorkerFree(t *testing.T) {
	e := newTestEstimator(t, Topology{Nodes: 1, WorkersPerNode: 1, IntraBW: 1e9, InterBW: 1e9})
	if e.AllToAll(mb) != 0 || e.AllGather(mb) != 0 || e.RingAllReduce(mb) != 0 || e.PS(mb) != 0 {
		t.Fatal("collectives on 1 worker must be free")
	}
}

func TestAllGatherNICPenaltyOnMultiGPUNodes(t *testing.T) {
	// Same N=8: 2 nodes x 4 GPUs vs 8 nodes x 1 GPU. The shared NIC must
	// make AllGather slower per Figure 4a's story, while AlltoAll suffers
	// much less (its per-peer slices are 1/N sized).
	shared := newTestEstimator(t, Topology{Nodes: 2, WorkersPerNode: 4, IntraBW: 10e9, InterBW: 12.5e9, Latency: 5e-6})
	flat := newTestEstimator(t, Topology{Nodes: 8, WorkersPerNode: 1, IntraBW: 10e9, InterBW: 12.5e9, Latency: 5e-6})
	payload := 25 * mb
	if shared.AllGather(payload) <= flat.AllGather(payload) {
		t.Fatal("shared NIC must slow down AllGather")
	}
	ratioAG := shared.AllGather(payload) / flat.AllGather(payload)
	ratioA2A := shared.AllToAll(payload) / flat.AllToAll(payload)
	if ratioA2A >= ratioAG {
		t.Fatalf("AlltoAll should degrade less than AllGather (%.3f vs %.3f)", ratioA2A, ratioAG)
	}
}

func TestRingAllReduceUsesBottleneckLink(t *testing.T) {
	fast := newTestEstimator(t, Topology{Nodes: 2, WorkersPerNode: 2, IntraBW: 50e9, InterBW: 12.5e9, Latency: 0})
	// chunk = M/4 over bottleneck 12.5 GB/s, 2*(4-1) steps
	m := 100 * mb
	want := 2 * 3 * (m / 4 / 12.5e9)
	if got := fast.RingAllReduce(m); !approx(got, want, 1e-9) {
		t.Fatalf("RingAllReduce = %v, want %v", got, want)
	}
	single := newTestEstimator(t, Topology{Nodes: 1, WorkersPerNode: 4, IntraBW: 50e9, InterBW: 12.5e9, Latency: 0})
	wantIntra := 2 * 3 * (m / 4 / 50e9)
	if got := single.RingAllReduce(m); !approx(got, wantIntra, 1e-9) {
		t.Fatalf("single-node RingAllReduce = %v, want %v", got, wantIntra)
	}
}

func TestPSScalesWithServers(t *testing.T) {
	two := newTestEstimator(t, Topology{Nodes: 2, WorkersPerNode: 4, IntraBW: 10e9, InterBW: 12.5e9, Latency: 5e-6})
	four := newTestEstimator(t, Topology{Nodes: 4, WorkersPerNode: 2, IntraBW: 10e9, InterBW: 12.5e9, Latency: 5e-6})
	payload := 25 * mb
	if four.PS(payload) >= two.PS(payload) {
		t.Fatal("more server nodes must not slow PS down")
	}
}

func TestOmniReduceModel(t *testing.T) {
	e := newTestEstimator(t, Topology{Nodes: 4, WorkersPerNode: 1, IntraBW: 10e9, InterBW: 12.5e9, Latency: 5e-6})
	dense := 252.5 * mb
	tDense, err := e.OmniReduce(dense, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	tSparse, err := e.OmniReduce(dense, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if tSparse >= tDense {
		t.Fatal("OmniReduce must get faster as sparsity rises")
	}
	// ...but never faster than AlltoAll on the same payload (Figure 4b).
	if tSparse <= 2*e.AllToAll(0.05*dense) {
		t.Fatalf("OmniReduce (%v) should stay above AlltoAll pair (%v)", tSparse, 2*e.AllToAll(0.05*dense))
	}
	multi := newTestEstimator(t, Topology{Nodes: 2, WorkersPerNode: 4, IntraBW: 10e9, InterBW: 12.5e9})
	if _, err := multi.OmniReduce(dense, 0.5); err == nil {
		t.Fatal("OmniReduce must reject multi-GPU nodes")
	}
}

// Property: all estimator times are non-negative and monotone in payload.
func TestEstimatorMonotoneInPayload(t *testing.T) {
	e := newTestEstimator(t, Topology{Nodes: 4, WorkersPerNode: 4, IntraBW: 10e9, InterBW: 12.5e9, Latency: 5e-6})
	f := func(seed int64) bool {
		s := float64((seed%1000+1000)%1000+1) * 1e4
		bigger := s * 2
		checks := []struct{ lo, hi float64 }{
			{e.AllToAll(s), e.AllToAll(bigger)},
			{e.AllGather(s), e.AllGather(bigger)},
			{e.RingAllReduce(s), e.RingAllReduce(bigger)},
			{e.PS(s), e.PS(bigger)},
		}
		for _, c := range checks {
			if c.lo < 0 || c.hi < c.lo {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
