package checkpoint

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"embrace/internal/optim"
	"embrace/internal/tensor"
)

// fixture builds a realistic checkpoint and its serialized bytes.
func fixture(t *testing.T) (*Checkpoint, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	emb := tensor.RandDense(rng, 1, 16, 8)
	w1 := tensor.RandDense(rng, 2, 8, 8)
	adam := optim.NewAdamDefault(emb, 0.01)
	g, _ := tensor.NewSparse(16, 8, []int64{3, 9}, make([]float32, 16))
	if err := adam.StepSparse(g); err != nil {
		t.Fatal(err)
	}
	st, err := optim.Snapshot(adam)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := &Checkpoint{
		Step:   42,
		Params: map[string]*tensor.Dense{"emb": emb, "w1": w1},
		Optim:  map[string]optim.State{"emb": st},
	}
	var buf bytes.Buffer
	if err := Save(&buf, ckpt); err != nil {
		t.Fatal(err)
	}
	return ckpt, buf.Bytes()
}

func TestLoadRejectsTruncation(t *testing.T) {
	_, raw := fixture(t)
	// Cutting the stream anywhere must produce a descriptive ErrCorrupt, not
	// a raw gob error and never a silently partial checkpoint.
	for _, n := range []int{0, 1, 10, len(raw) / 4, len(raw) / 2, len(raw) - 1} {
		_, err := Load(bytes.NewReader(raw[:n]))
		if err == nil {
			t.Fatalf("truncation at %d/%d accepted", n, len(raw))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: error %v does not wrap ErrCorrupt", n, err)
		}
		if !strings.Contains(err.Error(), "checkpoint:") {
			t.Fatalf("truncation at %d: undescriptive error %v", n, err)
		}
	}
}

func TestLoadRejectsBitFlips(t *testing.T) {
	_, raw := fixture(t)
	// Flip single bits well inside the sealed body: the CRC must catch every
	// one. (Header flips are caught separately by magic/version checks.)
	for _, off := range []int{len(raw) / 3, len(raw) / 2, 2 * len(raw) / 3, len(raw) - 2} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x01
		_, err := Load(bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("bit flip at %d/%d accepted", off, len(raw))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: error %v does not wrap ErrCorrupt", off, err)
		}
	}
	// The pristine stream still loads.
	if _, err := Load(bytes.NewReader(raw)); err != nil {
		t.Fatalf("pristine stream rejected: %v", err)
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(header{Magic: magic, Version: version + 1}); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&buf)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
	// Wrong version is a format mismatch, not file damage.
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("version mismatch misreported as corruption: %v", err)
	}
}

func TestValidateShapeAgreement(t *testing.T) {
	p := tensor.Full(1, 8)
	cases := []struct {
		name string
		ckpt Checkpoint
		want string
	}{
		{
			name: "optim without param",
			ckpt: Checkpoint{Optim: map[string]optim.State{"ghost": {Kind: "sgd"}}},
			want: "no matching param",
		},
		{
			name: "nil param",
			ckpt: Checkpoint{Params: map[string]*tensor.Dense{"emb": nil}},
			want: "is nil",
		},
		{
			name: "adam first moment shape",
			ckpt: Checkpoint{
				Params: map[string]*tensor.Dense{"emb": p},
				Optim:  map[string]optim.State{"emb": {Kind: "adam", M: tensor.NewDense(4), V: tensor.NewDense(8)}},
			},
			want: "first moment",
		},
		{
			name: "adam second moment missing",
			ckpt: Checkpoint{
				Params: map[string]*tensor.Dense{"emb": p},
				Optim:  map[string]optim.State{"emb": {Kind: "adam", M: tensor.NewDense(8)}},
			},
			want: "second moment",
		},
		{
			name: "adagrad accumulator shape",
			ckpt: Checkpoint{
				Params: map[string]*tensor.Dense{"emb": p},
				Optim:  map[string]optim.State{"emb": {Kind: "adagrad", Accum: tensor.NewDense(3)}},
			},
			want: "accumulator",
		},
		{
			name: "unknown kind",
			ckpt: Checkpoint{
				Params: map[string]*tensor.Dense{"emb": p},
				Optim:  map[string]optim.State{"emb": {Kind: "rmsprop"}},
			},
			want: "unknown optimizer kind",
		},
	}
	for _, tc := range cases {
		err := tc.ckpt.Validate()
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v (want ErrCorrupt containing %q)", tc.name, err, tc.want)
		}
	}
	// A consistent snapshot passes, including through Save/Load.
	good := Checkpoint{
		Params: map[string]*tensor.Dense{"emb": p},
		Optim:  map[string]optim.State{"emb": {Kind: "adam", M: tensor.NewDense(8), V: tensor.NewDense(8)}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("consistent snapshot rejected: %v", err)
	}
}

// TestLoadValidates proves a structurally inconsistent snapshot is rejected
// at Load even when its bytes are intact (checksum passes).
func TestLoadValidates(t *testing.T) {
	bad := &Checkpoint{
		Params: map[string]*tensor.Dense{"emb": tensor.NewDense(8)},
		Optim:  map[string]optim.State{"emb": {Kind: "adam", M: tensor.NewDense(4), V: tensor.NewDense(8)}},
	}
	var buf bytes.Buffer
	if err := Save(&buf, bad); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&buf)
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("inconsistent snapshot loaded: %v", err)
	}
}
