// Package checkpoint serializes training state — parameters and optimizer
// internals — so long sparse-model runs can stop and resume exactly. The
// format is self-contained gob with a version header; a resumed run is
// bit-identical to an uninterrupted one (tested).
package checkpoint

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"embrace/internal/optim"
	"embrace/internal/tensor"
)

// version is bumped on incompatible format changes.
const version = 1

// magic guards against feeding arbitrary files to Load.
const magic = "embrace-checkpoint"

// Checkpoint is a complete training snapshot.
type Checkpoint struct {
	// Step is the number of completed training steps.
	Step int
	// Params maps parameter names to their tensors (the embedding table
	// plus the trunk weights).
	Params map[string]*tensor.Dense
	// Optim maps parameter names to their optimizer state.
	Optim map[string]optim.State
}

// header leads every serialized checkpoint.
type header struct {
	Magic   string
	Version int
}

// Save writes the checkpoint to w.
func Save(w io.Writer, c *Checkpoint) error {
	if c == nil {
		return fmt.Errorf("checkpoint: nil checkpoint")
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: magic, Version: version}); err != nil {
		return fmt.Errorf("checkpoint: writing header: %w", err)
	}
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("checkpoint: writing body: %w", err)
	}
	return nil
}

// Load reads a checkpoint from r, validating the header.
func Load(r io.Reader) (*Checkpoint, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("checkpoint: reading header: %w", err)
	}
	if h.Magic != magic {
		return nil, fmt.Errorf("checkpoint: not a checkpoint file (magic %q)", h.Magic)
	}
	if h.Version != version {
		return nil, fmt.Errorf("checkpoint: version %d unsupported (want %d)", h.Version, version)
	}
	var c Checkpoint
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("checkpoint: reading body: %w", err)
	}
	return &c, nil
}

// SaveFile writes the checkpoint to path atomically (write to a temp file in
// the same directory, then rename), so a crash mid-save never corrupts an
// existing checkpoint.
func SaveFile(path string, c *Checkpoint) error {
	tmp, err := os.CreateTemp(dirOf(path), ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Save(tmp, c); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: committing: %w", err)
	}
	return nil
}

// LoadFile reads a checkpoint from path.
func LoadFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: opening: %w", err)
	}
	defer f.Close()
	return Load(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
