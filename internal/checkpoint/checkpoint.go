// Package checkpoint serializes training state — parameters and optimizer
// internals — so long sparse-model runs can stop and resume exactly. The
// format is self-contained gob with a version header and a CRC-sealed body;
// a resumed run is bit-identical to an uninterrupted one (tested), and a
// truncated or bit-flipped file is rejected with ErrCorrupt instead of
// whatever confusion a raw gob decoder would produce.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"embrace/internal/optim"
	"embrace/internal/partition"
	"embrace/internal/tensor"
)

// version is bumped on incompatible format changes. Version 2 seals the body
// in a checksummed envelope (see sealed).
const version = 2

// magic guards against feeding arbitrary files to Load.
const magic = "embrace-checkpoint"

// ErrCorrupt marks a checkpoint file that is damaged — truncated, bit-flipped,
// or structurally inconsistent. Callers distinguish it (errors.Is) from
// "wrong file" or I/O errors to decide between falling back to an older
// snapshot and failing loudly.
var ErrCorrupt = errors.New("corrupt checkpoint")

// Checkpoint is a complete training snapshot.
type Checkpoint struct {
	// Step is the number of completed training steps.
	Step int
	// Params maps parameter names to their tensors (the embedding table
	// plus the trunk weights).
	Params map[string]*tensor.Dense
	// Optim maps parameter names to their optimizer state.
	Optim map[string]optim.State
}

// header leads every serialized checkpoint.
type header struct {
	Magic   string
	Version int
}

// sealed wraps the gob-encoded Checkpoint body with a checksum. Nesting the
// body as one opaque byte field keeps the outer decoder from over-reading the
// stream and lets Load verify integrity before interpreting a single field —
// a flipped bit fails the CRC instead of surfacing as a cryptic gob error or,
// worse, silently corrupted weights.
type sealed struct {
	Body []byte
	CRC  uint32
}

// Save writes the checkpoint to w.
func Save(w io.Writer, c *Checkpoint) error {
	if c == nil {
		return fmt.Errorf("checkpoint: nil checkpoint")
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(c); err != nil {
		return fmt.Errorf("checkpoint: encoding body: %w", err)
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: magic, Version: version}); err != nil {
		return fmt.Errorf("checkpoint: writing header: %w", err)
	}
	env := sealed{Body: body.Bytes(), CRC: crc32.ChecksumIEEE(body.Bytes())}
	if err := enc.Encode(env); err != nil {
		return fmt.Errorf("checkpoint: writing body: %w", err)
	}
	return nil
}

// Load reads a checkpoint from r, verifying the header, the body checksum,
// and the structural consistency of the snapshot (see Validate). Damage is
// reported as an error wrapping ErrCorrupt with a description of what failed,
// never a raw gob decode error.
func Load(r io.Reader) (*Checkpoint, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("checkpoint: %w: unreadable header (truncated or not a checkpoint): %v", ErrCorrupt, err)
	}
	if h.Magic != magic {
		return nil, fmt.Errorf("checkpoint: not a checkpoint file (magic %q)", h.Magic)
	}
	if h.Version != version {
		return nil, fmt.Errorf("checkpoint: version %d unsupported (want %d)", h.Version, version)
	}
	var env sealed
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("checkpoint: %w: body truncated: %v", ErrCorrupt, err)
	}
	if got := crc32.ChecksumIEEE(env.Body); got != env.CRC {
		return nil, fmt.Errorf("checkpoint: %w: body checksum mismatch (got %08x, want %08x)", ErrCorrupt, got, env.CRC)
	}
	var c Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(env.Body)).Decode(&c); err != nil {
		return nil, fmt.Errorf("checkpoint: %w: undecodable body: %v", ErrCorrupt, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Validate checks the snapshot's internal consistency: every parameter tensor
// is present and non-empty, and every optimizer-state entry names an existing
// parameter whose shape agrees with the state it carries (Adam moments and
// Adagrad accumulators must match their parameter element-for-element).
// Load calls this; Reload paths that receive an in-memory Checkpoint should
// too, before swapping it in.
func (c *Checkpoint) Validate() error {
	if c == nil {
		return fmt.Errorf("checkpoint: nil checkpoint")
	}
	for name, p := range c.Params {
		if p == nil {
			return fmt.Errorf("checkpoint: %w: param %q is nil", ErrCorrupt, name)
		}
	}
	for name, st := range c.Optim {
		p, ok := c.Params[name]
		if !ok {
			return fmt.Errorf("checkpoint: %w: optimizer state for %q has no matching param", ErrCorrupt, name)
		}
		switch st.Kind {
		case "sgd":
			// Stateless; nothing to check.
		case "adagrad":
			if st.Accum == nil || st.Accum.Len() != p.Len() {
				return fmt.Errorf("checkpoint: %w: adagrad accumulator for %q has %d elems, param has %d",
					ErrCorrupt, name, accLen(st.Accum), p.Len())
			}
		case "adam":
			if st.M == nil || st.M.Len() != p.Len() {
				return fmt.Errorf("checkpoint: %w: adam first moment for %q has %d elems, param has %d",
					ErrCorrupt, name, accLen(st.M), p.Len())
			}
			if st.V == nil || st.V.Len() != p.Len() {
				return fmt.Errorf("checkpoint: %w: adam second moment for %q has %d elems, param has %d",
					ErrCorrupt, name, accLen(st.V), p.Len())
			}
		default:
			return fmt.Errorf("checkpoint: %w: unknown optimizer kind %q for %q", ErrCorrupt, st.Kind, name)
		}
	}
	return nil
}

// ColumnShard slices shard r's column-wise partition of the named 2-D
// parameter out of the snapshot, for a world of n shards — the per-rank
// restore primitive of an elastic world rebuild. The interval comes from
// partition.ColumnWise.Range, the same tiling the EmbRace workers shard
// with, so a rank restoring its shard from a checkpoint written at any
// world size gets exactly the columns the new layout assigns it. The
// returned tensor is a copy: many ranks can slice the same snapshot
// concurrently, and training on the shard never mutates the checkpoint.
func (c *Checkpoint) ColumnShard(name string, n, r int) (*tensor.Dense, error) {
	if c == nil {
		return nil, fmt.Errorf("checkpoint: nil checkpoint")
	}
	if n <= 0 || r < 0 || r >= n {
		return nil, fmt.Errorf("checkpoint: shard %d of %d out of range", r, n)
	}
	p, ok := c.Params[name]
	if !ok || p == nil {
		return nil, fmt.Errorf("checkpoint: no param %q to shard", name)
	}
	if p.Dims() != 2 {
		return nil, fmt.Errorf("checkpoint: param %q has %d dims, need 2 to column-shard", name, p.Dims())
	}
	rows, dim := p.Dim(0), p.Dim(1)
	lo, hi := partition.ColumnWise{}.Range(dim, n, r)
	out := tensor.NewDense(rows, hi-lo)
	for row := 0; row < rows; row++ {
		copy(out.Row(row), p.Row(row)[lo:hi])
	}
	return out, nil
}

// accLen is Len tolerant of nil, for error messages.
func accLen(d *tensor.Dense) int {
	if d == nil {
		return 0
	}
	return d.Len()
}

// SaveFile writes the checkpoint to path atomically (write to a temp file in
// the same directory, then rename), so a crash mid-save never corrupts an
// existing checkpoint.
func SaveFile(path string, c *Checkpoint) error {
	tmp, err := os.CreateTemp(dirOf(path), ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Save(tmp, c); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: committing: %w", err)
	}
	return nil
}

// LoadFile reads a checkpoint from path.
func LoadFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: opening: %w", err)
	}
	defer f.Close()
	return Load(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
