package checkpoint

import (
	"math/rand"
	"testing"

	"embrace/internal/partition"
	"embrace/internal/tensor"
)

// ColumnShard must slice exactly the ColumnWise tiling: reassembling every
// shard of any world size reproduces the full table bit-for-bit — the
// property the elastic restore leans on when a snapshot taken at world size
// N is redistributed to N-1 survivors.
func TestColumnShardReassemblesExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	full := tensor.RandDense(rng, 1, 10, 12)
	ckpt := &Checkpoint{Step: 3, Params: map[string]*tensor.Dense{"emb": full}}

	for _, n := range []int{1, 2, 3, 4, 6, 12} {
		got := tensor.NewDense(10, 12)
		for r := 0; r < n; r++ {
			shard, err := ckpt.ColumnShard("emb", n, r)
			if err != nil {
				t.Fatalf("n=%d r=%d: %v", n, r, err)
			}
			lo, hi := (partition.ColumnWise{}).Range(12, n, r)
			if shard.Dim(0) != 10 || shard.Dim(1) != hi-lo {
				t.Fatalf("n=%d r=%d: shard shape %v, want [10 x %d]", n, r, shard.Shape(), hi-lo)
			}
			for row := 0; row < 10; row++ {
				copy(got.Row(row)[lo:hi], shard.Row(row))
			}
		}
		if got.MaxAbsDiff(full) != 0 {
			t.Fatalf("n=%d: reassembled table differs from original", n)
		}
	}
}

// The shard is a copy, not a view: mutating it must not corrupt the
// snapshot a later rollback would restore from.
func TestColumnShardIsACopy(t *testing.T) {
	full := tensor.NewDense(2, 4)
	full.Fill(1)
	ckpt := &Checkpoint{Params: map[string]*tensor.Dense{"emb": full}}
	shard, err := ckpt.ColumnShard("emb", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	shard.Fill(9)
	if full.At(0, 0) != 1 {
		t.Fatal("mutating the shard wrote through to the checkpoint")
	}
}

func TestColumnShardErrors(t *testing.T) {
	ckpt := &Checkpoint{Params: map[string]*tensor.Dense{
		"emb": tensor.NewDense(4, 6),
		"b1":  tensor.NewDense(5),
	}}
	cases := []struct {
		name    string
		call    func() (*tensor.Dense, error)
		wantErr string
	}{
		{"nil checkpoint", func() (*tensor.Dense, error) { var c *Checkpoint; return c.ColumnShard("emb", 2, 0) }, "nil"},
		{"missing param", func() (*tensor.Dense, error) { return ckpt.ColumnShard("nope", 2, 0) }, "nope"},
		{"non-matrix param", func() (*tensor.Dense, error) { return ckpt.ColumnShard("b1", 2, 0) }, "b1"},
		{"zero shards", func() (*tensor.Dense, error) { return ckpt.ColumnShard("emb", 0, 0) }, "shard"},
		{"negative rank", func() (*tensor.Dense, error) { return ckpt.ColumnShard("emb", 2, -1) }, "shard"},
		{"rank out of range", func() (*tensor.Dense, error) { return ckpt.ColumnShard("emb", 2, 2) }, "shard"},
	}
	for _, tc := range cases {
		if _, err := tc.call(); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}
