package checkpoint

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"embrace/internal/data"
	"embrace/internal/nn"
	"embrace/internal/optim"
	"embrace/internal/tensor"
)

// windowsTargets mirrors trainer.WindowsTargets; inlined here because the
// trainer package now imports checkpoint (elastic restore), so the test
// cannot import it back without a cycle.
func windowsTargets(b *data.Batch, window int) ([][]int64, []int64) {
	windows := make([][]int64, len(b.Sentences))
	targets := make([]int64, len(b.Sentences))
	for i, s := range b.Sentences {
		windows[i] = s[:window]
		targets[i] = s[window]
	}
	return windows, targets
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := tensor.RandDense(rng, 1, 4, 3)
	adam := optim.NewAdamDefault(p, 0.01)
	g, _ := tensor.NewSparse(4, 3, []int64{1}, []float32{1, 2, 3})
	if err := adam.StepSparse(g); err != nil {
		t.Fatal(err)
	}
	st, err := optim.Snapshot(adam)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := &Checkpoint{
		Step:   1,
		Params: map[string]*tensor.Dense{"emb": p},
		Optim:  map[string]optim.State{"emb": st},
	}
	var buf bytes.Buffer
	if err := Save(&buf, ckpt); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 1 {
		t.Fatalf("step = %d", got.Step)
	}
	if !got.Params["emb"].AllClose(p, 0) {
		t.Fatal("params not preserved")
	}
	if got.Optim["emb"].Kind != "adam" || got.Optim["emb"].Step != 1 {
		t.Fatalf("optim state %+v", got.Optim["emb"])
	}
	if !got.Optim["emb"].M.AllClose(st.M, 0) {
		t.Fatal("adam moments not preserved")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("expected error")
	}
	// Valid gob but wrong magic.
	var buf bytes.Buffer
	if err := Save(&buf, &Checkpoint{Step: 1}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len("not")] ^= 0xff // corrupt somewhere in the header
	if _, err := Load(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected corruption error")
	}
}

func TestSaveNil(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	ckpt := &Checkpoint{Step: 7, Params: map[string]*tensor.Dense{"p": tensor.Full(2, 3)}}
	if err := SaveFile(path, ckpt); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 7 || got.Params["p"].Data()[0] != 2 {
		t.Fatalf("round trip %+v", got)
	}
	// Overwrite must leave no temp litter.
	ckpt.Step = 8
	if err := SaveFile(path, ckpt); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Fatal("expected open error")
	}
}

// snapshotModel checkpoints an nn.Model with per-parameter Adam optimizers.
func snapshotModel(t *testing.T, step int, m *nn.Model, opts map[string]optim.Optimizer) *Checkpoint {
	t.Helper()
	ckpt := &Checkpoint{
		Step:   step,
		Params: map[string]*tensor.Dense{"emb": m.Emb.Table.Clone()},
		Optim:  map[string]optim.State{},
	}
	for _, p := range m.Trunk.Params() {
		ckpt.Params[p.Name] = p.Tensor.Clone()
	}
	for name, o := range opts {
		st, err := optim.Snapshot(o)
		if err != nil {
			t.Fatal(err)
		}
		ckpt.Optim[name] = st
	}
	return ckpt
}

// The production guarantee: training S steps, checkpointing, and resuming
// for T more steps is bit-identical to training S+T steps straight through.
func TestResumeIsBitIdentical(t *testing.T) {
	const split, total = 6, 12
	cfg := data.Config{
		VocabSize: 50, BatchSentences: 6, MaxSeqLen: 8, MinSeqLen: 6,
		ZipfS: 1.5, ZipfV: 2,
	}

	train := func(m *nn.Model, opts map[string]optim.Optimizer, loader *data.Loader, steps int) {
		for s := 0; s < steps; s++ {
			batch := loader.Next()
			windows, targets := windowsTargets(batch, 4)
			_, embGrad, grads, err := m.Step(windows, targets)
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range grads.Dense() {
				if err := opts[g.Name].StepDense(g.Tensor); err != nil {
					t.Fatal(err)
				}
			}
			if err := opts["emb"].StepSparse(embGrad); err != nil {
				t.Fatal(err)
			}
		}
	}
	newOpts := func(m *nn.Model) map[string]optim.Optimizer {
		opts := map[string]optim.Optimizer{"emb": optim.NewAdamDefault(m.Emb.Table, 0.01)}
		for _, p := range m.Trunk.Params() {
			opts[p.Name] = optim.NewAdamDefault(p.Tensor, 0.01)
		}
		return opts
	}

	// Straight-through reference.
	ref := nn.NewModel(3, 50, 8, 8)
	refOpts := newOpts(ref)
	gen, err := data.NewGenerator(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	refLoader := data.NewLoader(gen)
	train(ref, refOpts, refLoader, total)

	// Interrupted run: train, checkpoint, rebuild everything, restore,
	// continue on a fresh loader advanced to the same position.
	m1 := nn.NewModel(3, 50, 8, 8)
	opts1 := newOpts(m1)
	gen1, _ := data.NewGenerator(cfg, 9)
	loader1 := data.NewLoader(gen1)
	train(m1, opts1, loader1, split)
	ckpt := snapshotModel(t, split, m1, opts1)

	var buf bytes.Buffer
	if err := Save(&buf, ckpt); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	m2 := nn.NewModel(99, 50, 8, 8) // different init: must be overwritten
	opts2 := newOpts(m2)
	copy(m2.Emb.Table.Data(), restored.Params["emb"].Data())
	for _, p := range m2.Trunk.Params() {
		copy(p.Tensor.Data(), restored.Params[p.Name].Data())
	}
	for name, o := range opts2 {
		if err := optim.Restore(o, restored.Optim[name]); err != nil {
			t.Fatal(err)
		}
	}
	gen2, _ := data.NewGenerator(cfg, 9)
	loader2 := data.NewLoader(gen2)
	for s := 0; s < split; s++ { // fast-forward the data stream
		loader2.Next()
	}
	train(m2, opts2, loader2, total-split)

	if !ref.Emb.Table.AllClose(m2.Emb.Table, 0) {
		t.Fatalf("resumed embedding diverged by %v", ref.Emb.Table.MaxAbsDiff(m2.Emb.Table))
	}
	if !ref.Trunk.W1.AllClose(m2.Trunk.W1, 0) || !ref.Trunk.W2.AllClose(m2.Trunk.W2, 0) {
		t.Fatal("resumed trunk diverged")
	}
}

func TestOptimStateMismatch(t *testing.T) {
	p := tensor.NewDense(4)
	adam := optim.NewAdamDefault(p, 0.01)
	if err := optim.Restore(adam, optim.State{Kind: "sgd"}); err == nil {
		t.Fatal("expected kind mismatch error")
	}
	sgd := optim.NewSGD(p, 0.1)
	if err := optim.Restore(sgd, optim.State{Kind: "adam"}); err == nil {
		t.Fatal("expected kind mismatch error")
	}
	ada := optim.NewAdagrad(p, 0.1, 1e-10)
	if err := optim.Restore(ada, optim.State{Kind: "adagrad", Accum: tensor.NewDense(5)}); err == nil {
		t.Fatal("expected shape mismatch error")
	}
	// Adagrad round trip.
	g := tensor.Full(1, 4)
	if err := ada.StepDense(g); err != nil {
		t.Fatal(err)
	}
	st, err := optim.Snapshot(ada)
	if err != nil {
		t.Fatal(err)
	}
	ada2 := optim.NewAdagrad(tensor.NewDense(4), 0.1, 1e-10)
	if err := optim.Restore(ada2, st); err != nil {
		t.Fatal(err)
	}
}
