package comm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Fatal("expected error for size 0")
	}
	if _, err := NewWorld(-3); err == nil {
		t.Fatal("expected error for negative size")
	}
	w, err := NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Size() != 4 {
		t.Fatalf("Size = %d", w.Size())
	}
	if w.Rank(2).Rank() != 2 || w.Rank(2).Size() != 4 {
		t.Fatal("rank endpoint misconfigured")
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	w, _ := NewWorld(2)
	defer w.Close()
	go func() {
		_ = w.Rank(0).Send(1, 7, "hello")
	}()
	got, err := w.Rank(1).Recv(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("got %v", got)
	}
}

func TestRecvBeforeSend(t *testing.T) {
	w, _ := NewWorld(2)
	defer w.Close()
	done := make(chan any, 1)
	go func() {
		v, _ := w.Rank(1).Recv(0, 1)
		done <- v
	}()
	time.Sleep(10 * time.Millisecond) // let the receiver block first
	if err := w.Rank(0).Send(1, 1, 42); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		if v != 42 {
			t.Fatalf("got %v", v)
		}
	case <-time.After(time.Second):
		t.Fatal("receiver never woke")
	}
}

func TestTagIsolation(t *testing.T) {
	// Messages with different tags must not cross, even from the same sender.
	w, _ := NewWorld(2)
	defer w.Close()
	go func() {
		_ = w.Rank(0).Send(1, 2, "tag2")
		_ = w.Rank(0).Send(1, 1, "tag1")
	}()
	v1, _ := w.Rank(1).Recv(0, 1)
	v2, _ := w.Rank(1).Recv(0, 2)
	if v1 != "tag1" || v2 != "tag2" {
		t.Fatalf("tags crossed: %v %v", v1, v2)
	}
}

func TestFIFOPerSenderTag(t *testing.T) {
	w, _ := NewWorld(2)
	defer w.Close()
	const n = 50
	go func() {
		for i := 0; i < n; i++ {
			_ = w.Rank(0).Send(1, 0, i)
		}
	}()
	for i := 0; i < n; i++ {
		v, err := w.Rank(1).Recv(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Fatalf("out of order: got %v at position %d", v, i)
		}
	}
}

func TestRankRangeErrors(t *testing.T) {
	w, _ := NewWorld(2)
	defer w.Close()
	if err := w.Rank(0).Send(5, 0, nil); !errors.Is(err, ErrRank) {
		t.Fatalf("Send out of range err = %v", err)
	}
	if _, err := w.Rank(0).Recv(-1, 0); !errors.Is(err, ErrRank) {
		t.Fatalf("Recv out of range err = %v", err)
	}
}

func TestCloseUnblocksReceivers(t *testing.T) {
	w, _ := NewWorld(2)
	errc := make(chan error, 1)
	go func() {
		_, err := w.Rank(1).Recv(0, 9)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not unblock receiver")
	}
	if err := w.Rank(0).Send(1, 0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after close err = %v", err)
	}
	w.Close() // double close must be safe
}

func TestConcurrentAllToAllExchange(t *testing.T) {
	// Every rank sends its rank number to every other rank and sums what it
	// receives; all must agree. Exercises concurrent mailbox creation.
	const n = 8
	err := RunRanks(n, func(tr Transport) error {
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			if p == tr.Rank() {
				continue
			}
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				_ = tr.Send(p, 3, tr.Rank())
			}(p)
		}
		sum := 0
		for p := 0; p < n; p++ {
			if p == tr.Rank() {
				continue
			}
			v, err := tr.Recv(p, 3)
			if err != nil {
				return err
			}
			sum += v.(int)
		}
		wg.Wait()
		want := n*(n-1)/2 - tr.Rank()
		if sum != want {
			return fmt.Errorf("rank %d sum %d, want %d", tr.Rank(), sum, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRanksPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := RunRanks(3, func(tr Transport) error {
		if tr.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestRunRanksRejectsBadSize(t *testing.T) {
	if err := RunRanks(0, func(Transport) error { return nil }); err == nil {
		t.Fatal("expected error")
	}
}
