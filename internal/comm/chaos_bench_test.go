package comm

import "testing"

// benchPingPong times b.N round-trips (2 sends + 2 receives each) between
// two ranks of a fresh in-process world, each endpoint passed through wrap.
// Comparing the wrapped and bare variants isolates the per-operation cost of
// the chaos layer's empty-plan fast path.
func benchPingPong(b *testing.B, wrap func(t Transport) Transport) {
	b.Helper()
	w, err := NewWorld(2)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	t0, t1 := wrap(w.Rank(0)), wrap(w.Rank(1))
	b.ReportAllocs()
	done := make(chan error, 1)
	b.ResetTimer()
	go func() {
		for i := 0; i < b.N; i++ {
			v, err := t1.Recv(0, 1)
			if err != nil {
				done <- err
				return
			}
			if err := t1.Send(0, 1, v); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < b.N; i++ {
		if err := t0.Send(1, 1, i); err != nil {
			b.Fatal(err)
		}
		if _, err := t0.Recv(1, 1); err != nil {
			b.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChaosOverheadBare is the baseline: an unwrapped in-process world.
func BenchmarkChaosOverheadBare(b *testing.B) {
	benchPingPong(b, func(t Transport) Transport { return t })
}

// BenchmarkChaosOverheadEmptyPlan wraps both endpoints with a chaos
// transport carrying no rules — the cost every non-chaos user of a wrapped
// fabric would pay. ns/op minus the bare baseline, divided by 4 (two sends,
// two receives per round-trip), is the per-operation wrapper tax recorded in
// EXPERIMENTS.md.
func BenchmarkChaosOverheadEmptyPlan(b *testing.B) {
	benchPingPong(b, func(t Transport) Transport {
		return WrapChaos(t, FaultPlan{Seed: 1})
	})
}
