// TCP transport: the same Transport contract as the in-process world, but
// carried over real sockets with gob framing. It exists to demonstrate that
// the collective algorithms are wire-ready — nothing in internal/collective
// or internal/strategies knows which fabric it runs on — and to exercise the
// serialization of every payload the trainer moves (gradients, sparse
// tensors, token batches).
//
// Topology: a full mesh. Rank i accepts connections from every lower rank
// and dials every higher rank, so each unordered pair shares exactly one
// TCP connection used in both directions. One reader goroutine per
// connection demultiplexes frames into the shared (sender, tag) mailboxes.
package comm

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Dial retry schedule for meshes whose processes start at different times:
// up to ~10 seconds of patience.
const (
	dialAttempts = 100
	dialBackoff  = 100 * time.Millisecond
)

// wireFrame is the on-the-wire envelope.
type wireFrame struct {
	From    int
	Tag     int
	Payload any
}

// RegisterWireType registers a concrete payload type for TCP transport.
// Types sent through TCPWorld must be registered by all processes; the
// common tensor and batch types are pre-registered by internal packages.
func RegisterWireType(v any) {
	gob.Register(v)
}

func init() {
	// Payload types every collective uses.
	RegisterWireType([]float32{})
	RegisterWireType([][]float32{})
	RegisterWireType([]int64{})
	RegisterWireType([][]int64{})
	RegisterWireType([]int{})
	RegisterWireType(0)
	RegisterWireType(0.0)
	RegisterWireType("")
	RegisterWireType(struct{}{})
	RegisterWireType(SeqFrame{})
}

// TCPWorld is a set of ranks connected all-to-all over loopback TCP. It is
// the single-process harness for the wire transport; the per-rank pieces
// (listener, mesh dialing, framed reader) are exactly what a multi-process
// deployment would run.
type TCPWorld struct {
	size   int
	ranks  []*tcpRank
	closed atomic.Bool
}

type tcpRank struct {
	id   int
	size int
	mail *mailboxSet

	listener net.Listener

	// shutdown distinguishes a local Close (readers stay quiet, receivers
	// get ErrClosed) from a peer dying underneath us (readers mark the peer
	// down, receivers get ErrPeerDown).
	shutdown atomic.Bool
	// left latches the first Leave so a failure cascade's repeat calls
	// cannot clobber the recorded reason or re-close connections.
	left atomic.Bool

	mu    sync.Mutex
	conns []*tcpConn // indexed by peer rank; nil for self
	errs  []error
	wg    sync.WaitGroup
}

// tcpConn is one duplex peer connection. Exactly one gob encoder and one
// gob decoder exist per connection for its whole lifetime — the handshake
// uses the same streams as the frames, because a second decoder on the same
// socket would lose bytes buffered by the first.
type tcpConn struct {
	conn  net.Conn
	encMu sync.Mutex
	enc   *gob.Encoder
	dec   *gob.Decoder
}

// newTCPConn wraps a socket with its lifetime encoder/decoder pair.
func newTCPConn(conn net.Conn) *tcpConn {
	return &tcpConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

// hello is the first frame on a dialed connection, identifying the dialer.
type hello struct {
	From int
}

// NewTCPWorld builds an n-rank world connected over 127.0.0.1 TCP sockets.
func NewTCPWorld(n int) (*TCPWorld, error) {
	if n <= 0 {
		return nil, fmt.Errorf("comm: tcp world size must be positive, got %d", n)
	}
	w := &TCPWorld{size: n, ranks: make([]*tcpRank, n)}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("comm: tcp listen: %w", err)
		}
		w.ranks[i] = &tcpRank{
			id:       i,
			size:     n,
			mail:     newMailboxSet(),
			listener: l,
			conns:    make([]*tcpConn, n),
		}
		addrs[i] = l.Addr().String()
	}

	// Accept from lower ranks (n-1-i connections each) concurrently with
	// dialing higher ranks.
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.ranks[i].connectMesh(addrs)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			w.Close()
			return nil, err
		}
	}
	for _, r := range w.ranks {
		r.startReaders()
	}
	return w, nil
}

// connectMesh dials every higher rank and accepts from every lower rank.
func (r *tcpRank) connectMesh(addrs []string) error {
	type dialRes struct {
		peer int
		conn *tcpConn
		err  error
	}
	dialCh := make(chan dialRes, r.size)
	dials := 0
	for peer := r.id + 1; peer < r.size; peer++ {
		dials++
		go func(peer int) {
			// In multi-process deployments peers start at slightly
			// different times; retry refused connections briefly.
			var conn net.Conn
			var err error
			for attempt := 0; attempt < dialAttempts; attempt++ {
				conn, err = net.Dial("tcp", addrs[peer])
				if err == nil {
					break
				}
				time.Sleep(dialBackoff)
			}
			var tc *tcpConn
			if err == nil {
				tc = newTCPConn(conn)
				err = tc.enc.Encode(hello{From: r.id})
			}
			dialCh <- dialRes{peer: peer, conn: tc, err: err}
		}(peer)
	}

	accepts := r.id // lower ranks dial us
	for accepts > 0 || dials > 0 {
		if accepts > 0 {
			conn, err := r.listener.Accept()
			if err != nil {
				return fmt.Errorf("comm: rank %d accept: %w", r.id, err)
			}
			tc := newTCPConn(conn)
			var h hello
			if err := tc.dec.Decode(&h); err != nil {
				return fmt.Errorf("comm: rank %d handshake: %w", r.id, err)
			}
			if h.From < 0 || h.From >= r.id {
				return fmt.Errorf("comm: rank %d got handshake from invalid rank %d", r.id, h.From)
			}
			r.setConn(h.From, tc)
			accepts--
			continue
		}
		res := <-dialCh
		if res.err != nil {
			return fmt.Errorf("comm: rank %d dial %d: %w", r.id, res.peer, res.err)
		}
		r.setConn(res.peer, res.conn)
		dials--
	}
	return nil
}

func (r *tcpRank) setConn(peer int, tc *tcpConn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.conns[peer] = tc
}

// startReaders launches one frame-demultiplexing goroutine per peer.
func (r *tcpRank) startReaders() {
	for peer, c := range r.conns {
		if c == nil {
			continue
		}
		r.wg.Add(1)
		go func(peer int, c *tcpConn) {
			defer r.wg.Done()
			for {
				var f wireFrame
				if err := c.dec.Decode(&f); err != nil {
					// Connection closed or broken. During a local shutdown
					// the mailboxes are about to deliver ErrClosed; a peer
					// dying on its own is a single-link failure the blocked
					// receivers must hear about now, not when the whole
					// world eventually closes.
					if !r.shutdown.Load() {
						r.mail.markDown(peer, fmt.Errorf("rank %d connection lost: %v", peer, err))
					}
					return
				}
				if f.From != peer {
					r.recordErr(fmt.Errorf("comm: rank %d: frame from %d on connection to %d", r.id, f.From, peer))
					return
				}
				r.mail.deliver(f.From, f.Tag, f.Payload)
			}
		}(peer, c)
	}
}

func (r *tcpRank) recordErr(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.errs = append(r.errs, err)
}

// Rank implements Transport.
func (r *tcpRank) Rank() int { return r.id }

// Size implements Transport.
func (r *tcpRank) Size() int { return r.size }

// Send implements Transport: frames the payload with gob and writes it to
// the peer connection. Self-sends short-circuit through the local mailbox.
func (r *tcpRank) Send(to, tag int, payload any) error {
	if to < 0 || to >= r.size {
		return fmt.Errorf("%w: send to %d in world of %d", ErrRank, to, r.size)
	}
	if to == r.id {
		if !r.mail.deliver(r.id, tag, payload) {
			return ErrClosed
		}
		return nil
	}
	r.mu.Lock()
	c := r.conns[to]
	r.mu.Unlock()
	if c == nil {
		return ErrClosed
	}
	c.encMu.Lock()
	defer c.encMu.Unlock()
	if err := c.enc.Encode(wireFrame{From: r.id, Tag: tag, Payload: payload}); err != nil {
		return fmt.Errorf("comm: rank %d send to %d: %w", r.id, to, err)
	}
	return nil
}

// Recv implements Transport.
func (r *tcpRank) Recv(from, tag int) (any, error) {
	if from < 0 || from >= r.size {
		return nil, fmt.Errorf("%w: recv from %d in world of %d", ErrRank, from, r.size)
	}
	return r.mail.receive(from, tag)
}

// SetRecvTimeout implements TimeoutSetter.
func (r *tcpRank) SetRecvTimeout(d time.Duration) { r.mail.setTimeout(d) }

// Leave implements Leaver: closing this rank's connections makes every
// peer's reader observe the breakage and mark this rank down. Idempotent:
// only the first call closes anything; repeats during a failure cascade are
// no-ops (the peers' recorded reason — their reader's first observation —
// is never rewritten).
func (r *tcpRank) Leave(reason error) {
	if r.left.Swap(true) {
		return
	}
	r.shutdown.Store(true)
	r.mu.Lock()
	for _, c := range r.conns {
		if c != nil {
			c.conn.Close()
		}
	}
	r.mu.Unlock()
}

// Readmit implements Readmitter for this rank's receive side: clears the
// local down marker for `peer`. The TCP connections a Leave or crash closed
// stay closed — readmission restores blocking semantics (ErrTimeout bounds
// them), not connectivity.
func (r *tcpRank) Readmit(peer int) { r.mail.readmit(peer) }

// Size returns the number of ranks.
func (w *TCPWorld) Size() int { return w.size }

// Rank returns the transport endpoint for rank i.
func (w *TCPWorld) Rank(i int) Transport { return w.ranks[i] }

// SetRecvTimeout bounds every rank's blocking receives; zero disables.
func (w *TCPWorld) SetRecvTimeout(d time.Duration) {
	for _, r := range w.ranks {
		if r != nil {
			r.mail.setTimeout(d)
		}
	}
}

// Close shuts down listeners, connections and mailboxes. Blocked receivers
// return ErrClosed.
func (w *TCPWorld) Close() {
	if w.closed.Swap(true) {
		return
	}
	for _, r := range w.ranks {
		if r != nil {
			r.shutdown.Store(true)
		}
	}
	for _, r := range w.ranks {
		if r == nil {
			continue
		}
		if r.listener != nil {
			r.listener.Close()
		}
		r.mu.Lock()
		for _, c := range r.conns {
			if c != nil {
				c.conn.Close()
			}
		}
		r.mu.Unlock()
	}
	for _, r := range w.ranks {
		if r == nil {
			continue
		}
		r.wg.Wait()
		r.mail.closeAll()
	}
}

// RunRanksTCP runs fn concurrently on every rank of a fresh TCP world and
// waits for all to finish — RunRanks over real sockets.
func RunRanksTCP(n int, fn func(t Transport) error) error {
	w, err := NewTCPWorld(n)
	if err != nil {
		return err
	}
	defer w.Close()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(w.Rank(i))
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}
