package comm

import (
	"errors"
	"testing"
	"time"
)

// Failure injection: abrupt TCP teardown must surface as ErrClosed on
// blocked receivers of the surviving side, never as a hang or panic.
func TestTCPAbruptPeerCloseUnblocksReceiver(t *testing.T) {
	w, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := w.Rank(1).Recv(0, 5) // will never be satisfied
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	w.Close() // tears down sockets under the blocked receiver
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("receiver hung after teardown")
	}
}

func TestSendAfterTCPCloseErrors(t *testing.T) {
	w, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := w.Rank(0).Send(1, 1, []float32{1}); err == nil {
		t.Fatal("expected error after close")
	}
}

func TestInProcessWorldSurvivesManyChurnCycles(t *testing.T) {
	// Worlds are created and torn down once per training job; leaking
	// goroutines or channels would show up over many cycles.
	for i := 0; i < 200; i++ {
		w, err := NewWorld(3)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Rank(0).Send(1, 1, i); err != nil {
			t.Fatal(err)
		}
		if v, err := w.Rank(1).Recv(0, 1); err != nil || v != i {
			t.Fatalf("cycle %d: %v %v", i, v, err)
		}
		w.Close()
	}
}
