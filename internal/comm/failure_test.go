package comm

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// dialMesh builds an n-node TCP mesh of per-process-style endpoints.
func dialMesh(t *testing.T, n int) []*TCPNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	nodes := make([]*TCPNode, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nodes[i], errs[i] = NewTCPNodeFromListener(i, listeners[i], addrs)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return nodes
}

// Failure injection: abrupt TCP teardown must surface as ErrClosed on
// blocked receivers of the surviving side, never as a hang or panic.
func TestTCPAbruptPeerCloseUnblocksReceiver(t *testing.T) {
	w, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := w.Rank(1).Recv(0, 5) // will never be satisfied
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	w.Close() // tears down sockets under the blocked receiver
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("receiver hung after teardown")
	}
}

func TestSendAfterTCPCloseErrors(t *testing.T) {
	w, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := w.Rank(0).Send(1, 1, []float32{1}); err == nil {
		t.Fatal("expected error after close")
	}
}

// A single peer dying is not the world shutting down: the survivor's blocked
// receives on the dead rank must fail fast with ErrPeerDown — attributed to
// that rank — while links between surviving ranks keep working.
func TestTCPSinglePeerDeathIsAttributed(t *testing.T) {
	nodes := dialMesh(t, 3)
	defer func() {
		for _, n := range nodes[1:] {
			n.Close()
		}
	}()

	errc := make(chan error, 1)
	go func() {
		_, err := nodes[1].Recv(0, 9) // never satisfied: rank 0 dies first
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	nodes[0].Close() // one process exits; the mesh stays up

	select {
	case err := <-errc:
		if !errors.Is(err, ErrPeerDown) {
			t.Fatalf("err = %v, want ErrPeerDown", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("receiver hung after single peer death")
	}

	// The surviving link is unaffected.
	if err := nodes[1].Send(2, 1, 42); err != nil {
		t.Fatalf("survivor link send: %v", err)
	}
	if v, err := nodes[2].Recv(1, 1); err != nil || v != 42 {
		t.Fatalf("survivor link recv: %v %v", v, err)
	}
}

// Leave is the voluntary version of death: peers observe ErrPeerDown without
// the leaver tearing down its mailboxes mid-use.
func TestTCPNodeLeaveWakesPeers(t *testing.T) {
	nodes := dialMesh(t, 2)
	defer nodes[0].Close()
	defer nodes[1].Close()

	errc := make(chan error, 1)
	go func() {
		_, err := nodes[1].Recv(0, 3)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	nodes[0].Leave(errors.New("done early"))

	select {
	case err := <-errc:
		if !errors.Is(err, ErrPeerDown) {
			t.Fatalf("err = %v, want ErrPeerDown", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("receiver hung after peer left")
	}
}

// With a receive timeout set, a silent peer costs bounded time, not a hang.
func TestTCPRecvTimeout(t *testing.T) {
	w, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.SetRecvTimeout(30 * time.Millisecond)
	if _, err := w.Rank(0).Recv(1, 5); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// A message that does arrive in time is unaffected.
	if err := w.Rank(1).Send(0, 6, 7); err != nil {
		t.Fatal(err)
	}
	if v, err := w.Rank(0).Recv(1, 6); err != nil || v != 7 {
		t.Fatalf("timely recv: %v %v", v, err)
	}
}

func TestInProcessWorldSurvivesManyChurnCycles(t *testing.T) {
	// Worlds are created and torn down once per training job; leaking
	// goroutines or channels would show up over many cycles.
	for i := 0; i < 200; i++ {
		w, err := NewWorld(3)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Rank(0).Send(1, 1, i); err != nil {
			t.Fatal(err)
		}
		if v, err := w.Rank(1).Recv(0, 1); err != nil || v != i {
			t.Fatalf("cycle %d: %v %v", i, v, err)
		}
		w.Close()
	}
}
