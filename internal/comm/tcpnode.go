// Multi-process TCP endpoints. TCPWorld wires all ranks inside one process;
// NewTCPNode is the per-process variant: each OS process owns one rank,
// binds its own listen address, and meshes with its peers — real distributed
// deployment, driven by cmd/embrace-worker.
package comm

import (
	"fmt"
	"net"
	"time"
)

// TCPNode is one process's rank endpoint in a multi-process TCP mesh. It
// implements Transport and must be Closed when the job ends.
type TCPNode struct {
	rank *tcpRank
}

// NewTCPNode creates rank `rank`'s endpoint of a len(addrs)-rank mesh,
// binding addrs[rank] and connecting to every peer. All processes must be
// started with the same address list; the call blocks until the mesh is
// fully connected, so start every worker before the handshake timeout of
// the underlying dials (the OS connect timeout).
//
// Dials to not-yet-started higher-ranked peers are retried by the OS-level
// connection backlog only; start lower ranks last or all ranks together.
func NewTCPNode(rank int, addrs []string) (*TCPNode, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("comm: empty address list")
	}
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("comm: rank %d out of range for %d addrs", rank, len(addrs))
	}
	l, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("comm: rank %d listen on %s: %w", rank, addrs[rank], err)
	}
	return NewTCPNodeFromListener(rank, l, addrs)
}

// NewTCPNodeFromListener is NewTCPNode with a caller-provided listener,
// useful when the caller binds port 0 first and distributes the resolved
// addresses (the pattern the tests use).
func NewTCPNodeFromListener(rank int, l net.Listener, addrs []string) (*TCPNode, error) {
	r := &tcpRank{
		id:       rank,
		size:     len(addrs),
		mail:     newMailboxSet(),
		listener: l,
		conns:    make([]*tcpConn, len(addrs)),
	}
	if err := r.connectMesh(addrs); err != nil {
		l.Close()
		return nil, err
	}
	r.startReaders()
	return &TCPNode{rank: r}, nil
}

// Rank implements Transport.
func (n *TCPNode) Rank() int { return n.rank.Rank() }

// Size implements Transport.
func (n *TCPNode) Size() int { return n.rank.Size() }

// Send implements Transport.
func (n *TCPNode) Send(to, tag int, payload any) error { return n.rank.Send(to, tag, payload) }

// Recv implements Transport.
func (n *TCPNode) Recv(from, tag int) (any, error) { return n.rank.Recv(from, tag) }

// SetRecvTimeout bounds this node's blocking receives; zero disables. With a
// timeout set, a receiver waiting on a silent peer returns ErrTimeout, and a
// receiver whose peer's connection died returns ErrPeerDown — the node never
// hangs until the whole mesh is torn down.
func (n *TCPNode) SetRecvTimeout(d time.Duration) { n.rank.SetRecvTimeout(d) }

// Leave announces this node's departure by closing its peer connections, so
// every peer's blocked receives on this rank fail fast with ErrPeerDown.
// Idempotent; only the first call acts.
func (n *TCPNode) Leave(reason error) { n.rank.Leave(reason) }

// Readmit clears this node's local down marker for `peer` after it
// recovers; see Readmitter for the connectivity caveat.
func (n *TCPNode) Readmit(peer int) { n.rank.Readmit(peer) }

// Close shuts the node down: listener, peer connections, mailboxes.
func (n *TCPNode) Close() {
	r := n.rank
	r.shutdown.Store(true)
	if r.listener != nil {
		r.listener.Close()
	}
	r.mu.Lock()
	for _, c := range r.conns {
		if c != nil {
			c.conn.Close()
		}
	}
	r.mu.Unlock()
	r.wg.Wait()
	r.mail.closeAll()
}

// Compile-time check.
var _ Transport = (*TCPNode)(nil)
