package comm

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// drainStream receives until `want` distinct payload values (ints 0..want-1)
// have arrived, tolerating duplicates, and returns the arrival order of the
// first copy of each value.
func drainStream(t *testing.T, tr Transport, from, tag, want int) []int {
	t.Helper()
	seen := make(map[int]bool)
	var order []int
	for len(seen) < want {
		payload, err := tr.Recv(from, tag)
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		v, ok := payload.(int)
		if !ok {
			t.Fatalf("payload %T", payload)
		}
		if !seen[v] {
			seen[v] = true
			order = append(order, v)
		}
	}
	return order
}

// chaosRun pushes n messages 0->1 under the plan, retrying transient
// failures, and returns (send-failure indices, first-copy arrival order).
func chaosRun(t *testing.T, plan FaultPlan, n int) (fails []int, order []int) {
	t.Helper()
	cw, err := NewChaosWorld(2, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer cw.Close()
	done := make(chan []int, 1)
	go func() { done <- drainStream(t, cw.Rank(1), 0, 7, n) }()
	s := cw.Rank(0)
	for i := 0; i < n; i++ {
		for {
			err := s.Send(1, 7, i)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrTransient) {
				t.Errorf("send %d: %v", i, err)
				return nil, nil
			}
			fails = append(fails, i)
		}
	}
	select {
	case order = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("receiver hung")
	}
	return fails, order
}

func TestChaosEmptyPlanIsTransparent(t *testing.T) {
	fails, order := chaosRun(t, FaultPlan{Seed: 1}, 50)
	if len(fails) != 0 {
		t.Fatalf("empty plan injected %d failures", len(fails))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("empty plan reordered: %v", order)
		}
	}
}

func TestChaosSameSeedSameFaults(t *testing.T) {
	plan := MaskableChaosPlan(42)
	f1, o1 := chaosRun(t, plan, 300)
	f2, o2 := chaosRun(t, plan, 300)
	if fmt.Sprint(f1) != fmt.Sprint(f2) {
		t.Fatalf("same seed, different transient failures:\n%v\n%v", f1, f2)
	}
	// Reordering involves real timers, so arrival order of delayed messages
	// can race; the *injected* decisions are what must replay. Compare the
	// failure schedule (above) and that both runs delivered everything.
	if len(o1) != 300 || len(o2) != 300 {
		t.Fatalf("lost messages: %d %d", len(o1), len(o2))
	}
	if len(f1) == 0 {
		t.Fatal("maskable plan injected no transient failures over 300 sends")
	}
}

func TestChaosDifferentSeedDifferentFaults(t *testing.T) {
	f1, _ := chaosRun(t, MaskableChaosPlan(1), 300)
	f2, _ := chaosRun(t, MaskableChaosPlan(2), 300)
	if fmt.Sprint(f1) == fmt.Sprint(f2) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestChaosTransientBurstBounded(t *testing.T) {
	// Rate-1 transient rule: every eligible send fails, but the grace send
	// after each burst must pass, so consecutive failures stay <= MaxBurst
	// and a bounded retry loop always gets through.
	plan := FaultPlan{Seed: 5, Rules: []FaultRule{Rule(FaultTransientSend, 1)}}
	cw, err := NewChaosWorld(2, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer cw.Close()
	s := cw.Rank(0)
	for i := 0; i < 50; i++ {
		attempts := 0
		for {
			attempts++
			if err := s.Send(1, 3, i); err == nil {
				break
			} else if !errors.Is(err, ErrTransient) {
				t.Fatal(err)
			}
			if attempts > DefaultMaxBurst+1 {
				t.Fatalf("message %d still failing after %d attempts", i, attempts)
			}
		}
	}
	if _, err := cw.Rank(1).Recv(0, 3); err != nil {
		t.Fatal(err)
	}
}

func TestChaosPartitionIsTypedAndTargeted(t *testing.T) {
	r := Rule(FaultPartition, 1)
	r.From, r.To = 0, 1
	cw, err := NewChaosWorld(3, FaultPlan{Seed: 9, Rules: []FaultRule{r}})
	if err != nil {
		t.Fatal(err)
	}
	defer cw.Close()
	if err := cw.Rank(0).Send(1, 1, "x"); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("partitioned send err = %v, want ErrPeerDown", err)
	}
	if err := cw.Rank(0).Send(2, 1, "x"); err != nil {
		t.Fatalf("unpartitioned link failed: %v", err)
	}
	if err := cw.Rank(1).Send(0, 1, "x"); err != nil {
		t.Fatalf("reverse direction failed: %v", err)
	}
	if got := cw.Injected()[FaultPartition.String()]; got != 1 {
		t.Fatalf("injected[partition] = %d, want 1", got)
	}
}

func TestChaosCrashKillsRankAndUnblocksPeers(t *testing.T) {
	// Rank 2 crashes on its 3rd send to rank 0. Its later operations fail,
	// and a peer blocked receiving from it is woken with ErrPeerDown
	// naming the crashed rank — no timeout needed.
	r := Rule(FaultCrash, 1)
	r.From = 2
	r.Match = func(pt FaultPoint) bool { return pt.Index >= 2 }
	cw, err := NewChaosWorld(3, FaultPlan{Seed: 3, Rules: []FaultRule{r}})
	if err != nil {
		t.Fatal(err)
	}
	defer cw.Close()

	blocked := make(chan error, 1)
	go func() {
		_, err := cw.Rank(0).Recv(2, 99) // never satisfied: rank 2 dies first
		blocked <- err
	}()

	s := cw.Rank(2)
	for i := 0; i < 2; i++ {
		if err := s.Send(0, 1, i); err != nil {
			t.Fatalf("pre-crash send %d: %v", i, err)
		}
	}
	if err := s.Send(0, 1, 2); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("crashing send err = %v, want ErrPeerDown", err)
	}
	if err := s.Send(1, 1, "late"); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("post-crash send err = %v, want ErrPeerDown", err)
	}
	if _, err := s.Recv(0, 1); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("post-crash recv err = %v, want ErrPeerDown", err)
	}

	select {
	case err := <-blocked:
		if !errors.Is(err, ErrPeerDown) {
			t.Fatalf("blocked peer err = %v, want ErrPeerDown", err)
		}
		if want := "rank 2"; !contains(err.Error(), want) {
			t.Fatalf("error %q does not attribute %q", err, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer stayed blocked after crash")
	}

	// Pre-crash messages must still be drainable: death never eats
	// already-delivered traffic.
	for i := 0; i < 2; i++ {
		v, err := cw.Rank(0).Recv(2, 1)
		if err != nil || v != i {
			t.Fatalf("pre-crash message %d: %v %v", i, v, err)
		}
	}
}

func TestChaosRecvTimeout(t *testing.T) {
	cw, err := NewChaosWorld(2, FaultPlan{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cw.Close()
	cw.SetRecvTimeout(30 * time.Millisecond)
	_, err = cw.Rank(0).Recv(1, 5)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestChaosPlanValidation(t *testing.T) {
	bad := []FaultPlan{
		{Rules: []FaultRule{{Kind: FaultKind(99), From: AnyRank, To: AnyRank}}},
		{Rules: []FaultRule{{Kind: FaultDelay, Rate: -0.5, From: AnyRank, To: AnyRank}}},
		{Rules: []FaultRule{{Kind: FaultDelay, From: 7, To: AnyRank}}},
	}
	for i, p := range bad {
		if _, err := NewChaosWorld(2, p); err == nil {
			t.Fatalf("plan %d: expected validation error", i)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
