package comm

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// recvWithGuard runs one Recv under a hang guard: elastic recovery depends
// on departed peers producing errors, never hangs.
func recvWithGuard(t *testing.T, tr Transport, from, tag int) (any, error) {
	t.Helper()
	type res struct {
		v   any
		err error
	}
	ch := make(chan res, 1)
	go func() {
		v, err := tr.Recv(from, tag)
		ch <- res{v, err}
	}()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-time.After(5 * time.Second):
		t.Fatal("Recv hung")
		return nil, nil
	}
}

// Leave must be idempotent with the FIRST reason winning: during a failure
// cascade, a rank's own Leave races peers' death notices and secondary
// observations ("peer down" seen while already tearing down). If a repeat
// call could rewrite the recorded reason, the fault the supervisor
// attributes would depend on goroutine scheduling.
func TestLeaveIdempotentFirstReasonWins(t *testing.T) {
	w, err := NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	w.Rank(0).(Leaver).Leave(errors.New("root cause"))
	w.Rank(0).(Leaver).Leave(errors.New("secondary observation"))

	for _, peer := range []int{1, 2} {
		_, err := recvWithGuard(t, w.Rank(peer), 0, 7)
		if !errors.Is(err, ErrPeerDown) {
			t.Fatalf("rank %d: err = %v, want ErrPeerDown", peer, err)
		}
		if !strings.Contains(err.Error(), "root cause") {
			t.Fatalf("rank %d: reason %q lost the first Leave's cause", peer, err)
		}
		if strings.Contains(err.Error(), "secondary observation") {
			t.Fatalf("rank %d: second Leave rewrote the reason: %q", peer, err)
		}
	}
}

// Concurrent repeats of Leave — the realistic cascade shape — must also
// collapse to one marking. Run with -race.
func TestLeaveConcurrentlyIdempotent(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w.Rank(0).(Leaver).Leave(errors.New("racing leave"))
		}(i)
	}
	wg.Wait()
	if _, err := recvWithGuard(t, w.Rank(1), 0, 1); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("err = %v, want ErrPeerDown", err)
	}
}

// The idempotence + readmission contract across all three fabrics: a double
// Leave is harmless, survivors observe ErrPeerDown, and Readmit restores
// the receive side — to working delivery on the in-process fabric (whose
// channels survive a Leave), to bounded ErrTimeout blocking on the TCP
// fabrics (whose connections do not).
func TestLeaveReadmitAcrossFabrics(t *testing.T) {
	cases := []struct {
		name string
		// build returns the three transports, a readmit-everywhere hook for
		// rank 0, whether delivery works again after readmission, and cleanup.
		build func(t *testing.T) (trs []Transport, readmit func(), reconnects bool, cleanup func())
	}{
		{
			name: "in-process",
			build: func(t *testing.T) ([]Transport, func(), bool, func()) {
				w, err := NewWorld(3)
				if err != nil {
					t.Fatal(err)
				}
				trs := []Transport{w.Rank(0), w.Rank(1), w.Rank(2)}
				return trs, func() { w.Readmit(0) }, true, w.Close
			},
		},
		{
			name: "tcp-loopback",
			build: func(t *testing.T) ([]Transport, func(), bool, func()) {
				w, err := NewTCPWorld(3)
				if err != nil {
					t.Fatal(err)
				}
				trs := []Transport{w.Rank(0), w.Rank(1), w.Rank(2)}
				readmit := func() {
					for _, tr := range trs[1:] {
						tr.(Readmitter).Readmit(0)
					}
				}
				return trs, readmit, false, w.Close
			},
		},
		{
			name: "tcp-node-mesh",
			build: func(t *testing.T) ([]Transport, func(), bool, func()) {
				nodes := dialMesh(t, 3)
				trs := []Transport{nodes[0], nodes[1], nodes[2]}
				readmit := func() {
					nodes[1].Readmit(0)
					nodes[2].Readmit(0)
				}
				cleanup := func() {
					for _, n := range nodes {
						n.Close()
					}
				}
				return trs, readmit, false, cleanup
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			trs, readmit, reconnects, cleanup := tc.build(t)
			defer cleanup()
			for _, tr := range trs {
				tr.(TimeoutSetter).SetRecvTimeout(200 * time.Millisecond)
			}

			// Double Leave: second call is a no-op, not a panic or re-mark.
			trs[0].(Leaver).Leave(errors.New("fault injection"))
			trs[0].(Leaver).Leave(errors.New("repeat"))

			for _, peer := range []int{1, 2} {
				if _, err := recvWithGuard(t, trs[peer], 0, 3); !errors.Is(err, ErrPeerDown) {
					t.Fatalf("rank %d pre-readmit: err = %v, want ErrPeerDown", peer, err)
				}
			}

			readmit()

			if reconnects {
				// In-process: delivery works again in both directions.
				if err := trs[0].Send(1, 4, 42); err != nil {
					t.Fatalf("post-readmit send: %v", err)
				}
				if v, err := recvWithGuard(t, trs[1], 0, 4); err != nil || v != 42 {
					t.Fatalf("post-readmit recv: %v %v", v, err)
				}
				// The Leave latch is re-armed: a fresh Leave marks down again.
				trs[0].(Leaver).Leave(errors.New("second life over"))
				if _, err := recvWithGuard(t, trs[1], 0, 5); !errors.Is(err, ErrPeerDown) {
					t.Fatalf("re-leave: err = %v, want ErrPeerDown", err)
				}
			} else {
				// TCP: connections stay closed; readmission restores bounded
				// blocking (ErrTimeout), not instant ErrPeerDown.
				for _, peer := range []int{1, 2} {
					if _, err := recvWithGuard(t, trs[peer], 0, 6); !errors.Is(err, ErrTimeout) {
						t.Fatalf("rank %d post-readmit: err = %v, want ErrTimeout", peer, err)
					}
				}
			}
		})
	}
}

// Readmitting a peer that was never down is a no-op, and readmission on one
// rank's receive side does not disturb another's pending down marker.
func TestReadmitScopedToReceiveSide(t *testing.T) {
	w, err := NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	w.Rank(1).(Readmitter).Readmit(0) // never down: no-op
	if err := w.Rank(0).Send(1, 1, "hi"); err != nil {
		t.Fatal(err)
	}
	if v, err := recvWithGuard(t, w.Rank(1), 0, 1); err != nil || v != "hi" {
		t.Fatalf("recv after no-op readmit: %v %v", v, err)
	}

	w.Rank(0).(Leaver).Leave(errors.New("gone"))
	w.Rank(1).(Readmitter).Readmit(0) // rank 1 forgives...
	w.Rank(1).(TimeoutSetter).SetRecvTimeout(50 * time.Millisecond)
	if _, err := recvWithGuard(t, w.Rank(1), 0, 2); !errors.Is(err, ErrTimeout) {
		t.Fatalf("rank 1 post-readmit: err = %v, want ErrTimeout", err)
	}
	// ...but rank 2's marker is untouched.
	if _, err := recvWithGuard(t, w.Rank(2), 0, 2); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("rank 2: err = %v, want ErrPeerDown", err)
	}
}
