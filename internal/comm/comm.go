// Package comm provides the message transport underneath the collective
// operations.
//
// The paper's testbed runs one training process per GPU and moves bytes with
// NCCL. Here every rank is a goroutine and the transport is an in-process
// mailbox fabric: Send/Recv pairs matched on (peer, tag). The collective
// algorithms in internal/collective are written against the Transport
// interface only, so their data-movement pattern is exactly what a wire
// implementation would perform.
package comm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Transport is the point-to-point fabric a single rank uses. Implementations
// must be safe for concurrent use: a rank may run several collectives at once
// (the communication thread of §5.1 overlaps sparse and dense ops) as long as
// each concurrent operation uses a distinct tag space.
type Transport interface {
	// Rank returns this participant's rank in [0, Size).
	Rank() int
	// Size returns the number of participants (the paper's N).
	Size() int
	// Send delivers payload to rank `to` under `tag`. It blocks only on
	// backpressure, never on the receiver being absent.
	Send(to, tag int, payload any) error
	// Recv blocks until a payload sent to this rank by `from` under `tag`
	// arrives, and returns it.
	Recv(from, tag int) (any, error)
}

// ErrClosed is returned by operations on a closed world.
var ErrClosed = errors.New("comm: world closed")

// ErrRank is returned when a peer rank is out of range.
var ErrRank = errors.New("comm: rank out of range")

// ErrPeerDown is returned when the counterpart of an operation is known to
// be dead: its process crashed, its connection broke, or it left the world
// after a failure. Unlike ErrClosed (the local world was shut down), the
// rest of the world is still alive, so callers can attribute the failure to
// the specific peer carried in the error message.
var ErrPeerDown = errors.New("comm: peer down")

// ErrTimeout is returned by Recv when a RecvTimeout is configured and no
// message arrived in time. It is the detector of last resort for peers that
// die without the transport noticing.
var ErrTimeout = errors.New("comm: receive timed out")

// ErrTransient is a retryable send failure: the message was not delivered,
// but an identical re-send may succeed. The chaos transport injects it;
// resilient senders (collective.Communicator) retry with backoff.
var ErrTransient = errors.New("comm: transient send failure")

// TimeoutSetter is implemented by transports whose blocking receives can be
// bounded. A zero duration disables the timeout (block forever).
type TimeoutSetter interface {
	SetRecvTimeout(d time.Duration)
}

// Leaver is implemented by transports that can announce their own departure:
// Leave marks this rank down for every peer, so receivers blocked on it fail
// fast with ErrPeerDown instead of hanging until the whole world closes.
// A rank that aborts a collective mid-protocol should Leave so the failure
// cascades cleanly instead of deadlocking the survivors. Leave is idempotent:
// the first call's reason wins, and later calls — its own Leave racing a
// peer's death notice during a failure cascade — are no-ops that neither
// re-wake receivers nor clobber the recorded reason.
type Leaver interface {
	Leave(reason error)
}

// Readmitter is implemented by transports that can clear a peer's down
// markers after it recovers: Readmit makes subsequent receives from the peer
// block normally again instead of failing fast with its stale death notice.
// It is receiver-side state only — re-establishing the peer's connectivity
// (if the fabric ever lost it) is a separate concern, so on the TCP fabrics
// a readmitted-but-unreachable peer surfaces as ErrTimeout rather than
// ErrPeerDown.
type Readmitter interface {
	Readmit(peer int)
}

// SeqFrame is the ordered-delivery envelope resilient senders wrap payloads
// in: a per-(sender, tag) sequence number plus the payload. The transport
// treats it as an opaque payload; the receiving Communicator uses Seq to
// drop duplicated frames and reorder delayed ones, and metrics unwraps it
// when sizing traffic. Exported so every layer (and gob) agrees on the one
// envelope type.
type SeqFrame struct {
	Seq     int64
	Payload any
}

// mailboxBuffer is the per-(sender, tag) channel capacity. Collectives never
// have more than a few in-flight messages per edge, but a generous buffer
// keeps senders from blocking on slow receivers.
const mailboxBuffer = 64

type mailboxKey struct {
	from, tag int
}

// mailboxSet is the demultiplexer shared by every transport implementation:
// messages are delivered per (sender, tag) channel in FIFO order, and
// receivers block on exactly their envelope. It also carries the local
// failure model: per-peer down markers (set when a peer is known dead) and
// an optional receive timeout, so a blocked receiver fails with ErrPeerDown
// or ErrTimeout instead of hanging until the whole world closes.
type mailboxSet struct {
	mu    sync.Mutex
	boxes map[mailboxKey]chan any
	peers map[int]*peerState

	// closedCh is closed by closeAll. Teardown signals through it instead of
	// closing the mailbox channels: an in-flight deliver (a chaos-delayed
	// send, a TCP reader landing a late frame) may be blocked in `ch <-` at
	// that very moment, and close-under-send is a data race. Selecting on
	// closedCh lets senders and receivers observe teardown without anyone
	// ever closing a channel someone else might be writing.
	closedCh chan struct{}

	// timeoutNS is the receive timeout in nanoseconds; zero blocks forever.
	timeoutNS atomic.Int64
}

// peerState tracks one sender's liveness as seen by this receiver. downCh is
// closed (after reason is set under the set's mutex) when the peer is marked
// down; the channel-close ordering makes reason safe to read afterwards.
type peerState struct {
	downCh chan struct{}
	down   bool
	reason error
}

func newMailboxSet() *mailboxSet {
	return &mailboxSet{
		boxes:    make(map[mailboxKey]chan any),
		peers:    make(map[int]*peerState),
		closedCh: make(chan struct{}),
	}
}

// box returns (creating if needed) the channel for (from, tag), or nil if
// the set has been closed.
func (m *mailboxSet) box(from, tag int) chan any {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.boxes == nil {
		return nil
	}
	key := mailboxKey{from: from, tag: tag}
	ch, ok := m.boxes[key]
	if !ok {
		ch = make(chan any, mailboxBuffer)
		m.boxes[key] = ch
	}
	return ch
}

// deliver enqueues payload for (from, tag). It reports false if the set is
// closed. A deliver blocked on a full mailbox unblocks (and drops) when the
// set closes underneath it — late stragglers observe teardown through
// closedCh rather than panicking on a closed channel.
func (m *mailboxSet) deliver(from, tag int, payload any) bool {
	ch := m.box(from, tag)
	if ch == nil {
		return false
	}
	select {
	case ch <- payload:
		return true
	case <-m.closedCh:
		return false
	}
}

// peer returns (creating if needed) the liveness record for `from`, or nil
// if the set has been closed.
func (m *mailboxSet) peer(from int) *peerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.peers == nil {
		return nil
	}
	ps, ok := m.peers[from]
	if !ok {
		ps = &peerState{downCh: make(chan struct{})}
		m.peers[from] = ps
	}
	return ps
}

// markDown records that `from` is dead for the given reason, waking every
// receiver blocked on it. Idempotent; the first reason wins.
func (m *mailboxSet) markDown(from int, reason error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.peers == nil {
		return // closed; receivers already unblocked with ErrClosed
	}
	ps, ok := m.peers[from]
	if !ok {
		ps = &peerState{downCh: make(chan struct{})}
		m.peers[from] = ps
	}
	if ps.down {
		return
	}
	ps.down = true
	if reason == nil {
		reason = ErrPeerDown
	} else if !errors.Is(reason, ErrPeerDown) {
		reason = fmt.Errorf("%w: %v", ErrPeerDown, reason)
	}
	ps.reason = reason
	close(ps.downCh)
}

// readmit clears `from`'s down marker by installing a fresh liveness record,
// so subsequent receives block normally again. A receiver that grabbed the
// old record before the swap still observes the stale death notice once —
// the benign race window of a between-steps readmission, closed by the
// barrier every world rebuild runs before new traffic flows.
func (m *mailboxSet) readmit(from int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.peers == nil {
		return // closed
	}
	if ps, ok := m.peers[from]; ok && ps.down {
		m.peers[from] = &peerState{downCh: make(chan struct{})}
	}
}

// setTimeout bounds every subsequent blocking receive; zero disables.
func (m *mailboxSet) setTimeout(d time.Duration) {
	m.timeoutNS.Store(int64(d))
}

// receive blocks until a payload for (from, tag) arrives, the sender is
// marked down (ErrPeerDown), the configured timeout elapses (ErrTimeout),
// or the set is closed (ErrClosed). Messages already queued are always
// drained before a down marker is honored, so a peer's final sends are
// never lost to its own death notice.
func (m *mailboxSet) receive(from, tag int) (any, error) {
	ch := m.box(from, tag)
	if ch == nil {
		return nil, ErrClosed
	}
	// Fast path: queued messages win over down markers and timeouts.
	select {
	case payload := <-ch:
		return payload, nil
	default:
	}
	ps := m.peer(from)
	if ps == nil {
		return nil, ErrClosed
	}
	var timeC <-chan time.Time
	if d := time.Duration(m.timeoutNS.Load()); d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		timeC = timer.C
	}
	select {
	case payload := <-ch:
		return payload, nil
	case <-ps.downCh:
		// A message may have raced in just before the down marker; prefer it.
		select {
		case payload := <-ch:
			return payload, nil
		default:
		}
		return nil, fmt.Errorf("recv from rank %d: %w", from, ps.reason)
	case <-m.closedCh:
		// Same drain preference on teardown: a queued message beats ErrClosed.
		select {
		case payload := <-ch:
			return payload, nil
		default:
		}
		return nil, ErrClosed
	case <-timeC:
		return nil, fmt.Errorf("%w: nothing from rank %d under tag %d within %v",
			ErrTimeout, from, tag, time.Duration(m.timeoutNS.Load()))
	}
}

// closeAll tears the set down, unblocking receivers with ErrClosed and
// blocked senders with a drop. The mailbox channels themselves are never
// closed — see closedCh.
func (m *mailboxSet) closeAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.boxes == nil {
		return
	}
	m.boxes = nil
	m.peers = nil
	close(m.closedCh)
}

// World is a set of N in-process ranks wired all-to-all.
//
// Create it once, hand each worker goroutine its Transport, and close it when
// the job ends. Messages are delivered per (sender, tag) in FIFO order, the
// same guarantee MPI offers for matching (source, tag) envelopes.
type World struct {
	size   int
	ranks  []*rank
	closed atomic.Bool
}

type rank struct {
	world *World
	id    int
	mail  *mailboxSet
	// left latches the first Leave so later calls of a failure cascade
	// cannot re-mark a readmitted rank down with a stale reason.
	left atomic.Bool
}

// NewWorld creates a fully connected in-process world of n ranks.
func NewWorld(n int) (*World, error) {
	if n <= 0 {
		return nil, fmt.Errorf("comm: world size must be positive, got %d", n)
	}
	w := &World{size: n, ranks: make([]*rank, n)}
	for i := range w.ranks {
		w.ranks[i] = &rank{world: w, id: i, mail: newMailboxSet()}
	}
	return w, nil
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Rank returns the transport endpoint for rank i.
func (w *World) Rank(i int) Transport {
	return w.ranks[i]
}

// Close tears the world down. Subsequent Sends fail with ErrClosed; Recvs on
// never-to-arrive messages would otherwise block forever, so Close also
// unblocks them with ErrClosed by closing every existing mailbox.
func (w *World) Close() {
	if w.closed.Swap(true) {
		return
	}
	for _, r := range w.ranks {
		r.mail.closeAll()
	}
}

// SetRecvTimeout bounds every rank's blocking receives; zero disables.
func (w *World) SetRecvTimeout(d time.Duration) {
	for _, r := range w.ranks {
		r.mail.setTimeout(d)
	}
}

// Readmit clears `peer`'s down markers in every other rank's mailboxes and
// re-arms its Leave latch — the world-level readmission of a recovered rank.
// The caller owns the protocol above it: readmit between steps, then barrier
// before the readmitted rank's traffic resumes.
func (w *World) Readmit(peer int) {
	if peer < 0 || peer >= w.size {
		return
	}
	w.ranks[peer].left.Store(false)
	for i, r := range w.ranks {
		if i == peer {
			continue
		}
		r.mail.readmit(peer)
	}
}

// markPeerDown records `peer` as dead (for the given reason) in every other
// rank's mailboxes, waking their blocked receives with ErrPeerDown.
func (w *World) markPeerDown(peer int, reason error) {
	if peer < 0 || peer >= w.size {
		return
	}
	for i, r := range w.ranks {
		if i == peer {
			continue
		}
		r.mail.markDown(peer, reason)
	}
}

func (r *rank) Rank() int { return r.id }
func (r *rank) Size() int { return r.world.size }

func (r *rank) Send(to, tag int, payload any) error {
	if r.world.closed.Load() {
		return ErrClosed
	}
	if to < 0 || to >= r.world.size {
		return fmt.Errorf("%w: send to %d in world of %d", ErrRank, to, r.world.size)
	}
	if !r.world.ranks[to].mail.deliver(r.id, tag, payload) {
		return ErrClosed
	}
	return nil
}

func (r *rank) Recv(from, tag int) (any, error) {
	if from < 0 || from >= r.world.size {
		return nil, fmt.Errorf("%w: recv from %d in world of %d", ErrRank, from, r.world.size)
	}
	return r.mail.receive(from, tag)
}

// SetRecvTimeout implements TimeoutSetter for this rank alone.
func (r *rank) SetRecvTimeout(d time.Duration) { r.mail.setTimeout(d) }

// Leave implements Leaver: it marks this rank down for every peer, so their
// blocked receives fail fast with ErrPeerDown instead of deadlocking on a
// participant that has abandoned the protocol. Only the first call acts;
// repeats (common during a failure cascade, where a rank's own Leave races
// peers' death notices) are no-ops, so a rank readmitted after recovery is
// not re-marked down by a stale second Leave.
func (r *rank) Leave(reason error) {
	if r.left.Swap(true) {
		return
	}
	r.world.markPeerDown(r.id, fmt.Errorf("rank %d left the world: %v", r.id, reason))
}

// Readmit implements Readmitter for this rank's receive side alone: clears
// the local down marker for `peer`, so this rank's receives from it block
// normally again.
func (r *rank) Readmit(peer int) { r.mail.readmit(peer) }

// RunRanks runs fn concurrently on every rank of a fresh world of size n and
// waits for all to finish, returning the first error encountered (all other
// results are discarded). It is the harness used by collectives tests and by
// the real-execution trainer.
func RunRanks(n int, fn func(t Transport) error) error {
	w, err := NewWorld(n)
	if err != nil {
		return err
	}
	defer w.Close()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(w.Rank(i))
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}
