// Package comm provides the message transport underneath the collective
// operations.
//
// The paper's testbed runs one training process per GPU and moves bytes with
// NCCL. Here every rank is a goroutine and the transport is an in-process
// mailbox fabric: Send/Recv pairs matched on (peer, tag). The collective
// algorithms in internal/collective are written against the Transport
// interface only, so their data-movement pattern is exactly what a wire
// implementation would perform.
package comm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Transport is the point-to-point fabric a single rank uses. Implementations
// must be safe for concurrent use: a rank may run several collectives at once
// (the communication thread of §5.1 overlaps sparse and dense ops) as long as
// each concurrent operation uses a distinct tag space.
type Transport interface {
	// Rank returns this participant's rank in [0, Size).
	Rank() int
	// Size returns the number of participants (the paper's N).
	Size() int
	// Send delivers payload to rank `to` under `tag`. It blocks only on
	// backpressure, never on the receiver being absent.
	Send(to, tag int, payload any) error
	// Recv blocks until a payload sent to this rank by `from` under `tag`
	// arrives, and returns it.
	Recv(from, tag int) (any, error)
}

// ErrClosed is returned by operations on a closed world.
var ErrClosed = errors.New("comm: world closed")

// ErrRank is returned when a peer rank is out of range.
var ErrRank = errors.New("comm: rank out of range")

// mailboxBuffer is the per-(sender, tag) channel capacity. Collectives never
// have more than a few in-flight messages per edge, but a generous buffer
// keeps senders from blocking on slow receivers.
const mailboxBuffer = 64

type mailboxKey struct {
	from, tag int
}

// mailboxSet is the demultiplexer shared by every transport implementation:
// messages are delivered per (sender, tag) channel in FIFO order, and
// receivers block on exactly their envelope.
type mailboxSet struct {
	mu    sync.Mutex
	boxes map[mailboxKey]chan any
}

func newMailboxSet() *mailboxSet {
	return &mailboxSet{boxes: make(map[mailboxKey]chan any)}
}

// box returns (creating if needed) the channel for (from, tag), or nil if
// the set has been closed.
func (m *mailboxSet) box(from, tag int) chan any {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.boxes == nil {
		return nil
	}
	key := mailboxKey{from: from, tag: tag}
	ch, ok := m.boxes[key]
	if !ok {
		ch = make(chan any, mailboxBuffer)
		m.boxes[key] = ch
	}
	return ch
}

// deliver enqueues payload for (from, tag). It reports false if the set is
// closed.
func (m *mailboxSet) deliver(from, tag int, payload any) bool {
	ch := m.box(from, tag)
	if ch == nil {
		return false
	}
	defer func() { recover() }() //nolint:errcheck // racing close surfaces as drop
	ch <- payload
	return true
}

// receive blocks until a payload for (from, tag) arrives.
func (m *mailboxSet) receive(from, tag int) (any, error) {
	ch := m.box(from, tag)
	if ch == nil {
		return nil, ErrClosed
	}
	payload, ok := <-ch
	if !ok {
		return nil, ErrClosed
	}
	return payload, nil
}

// closeAll closes every mailbox, unblocking receivers with ErrClosed.
func (m *mailboxSet) closeAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ch := range m.boxes {
		close(ch)
	}
	m.boxes = nil
}

// World is a set of N in-process ranks wired all-to-all.
//
// Create it once, hand each worker goroutine its Transport, and close it when
// the job ends. Messages are delivered per (sender, tag) in FIFO order, the
// same guarantee MPI offers for matching (source, tag) envelopes.
type World struct {
	size   int
	ranks  []*rank
	closed atomic.Bool
}

type rank struct {
	world *World
	id    int
	mail  *mailboxSet
}

// NewWorld creates a fully connected in-process world of n ranks.
func NewWorld(n int) (*World, error) {
	if n <= 0 {
		return nil, fmt.Errorf("comm: world size must be positive, got %d", n)
	}
	w := &World{size: n, ranks: make([]*rank, n)}
	for i := range w.ranks {
		w.ranks[i] = &rank{world: w, id: i, mail: newMailboxSet()}
	}
	return w, nil
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Rank returns the transport endpoint for rank i.
func (w *World) Rank(i int) Transport {
	return w.ranks[i]
}

// Close tears the world down. Subsequent Sends fail with ErrClosed; Recvs on
// never-to-arrive messages would otherwise block forever, so Close also
// unblocks them with ErrClosed by closing every existing mailbox.
func (w *World) Close() {
	if w.closed.Swap(true) {
		return
	}
	for _, r := range w.ranks {
		r.mail.closeAll()
	}
}

func (r *rank) Rank() int { return r.id }
func (r *rank) Size() int { return r.world.size }

func (r *rank) Send(to, tag int, payload any) error {
	if r.world.closed.Load() {
		return ErrClosed
	}
	if to < 0 || to >= r.world.size {
		return fmt.Errorf("%w: send to %d in world of %d", ErrRank, to, r.world.size)
	}
	if !r.world.ranks[to].mail.deliver(r.id, tag, payload) {
		return ErrClosed
	}
	return nil
}

func (r *rank) Recv(from, tag int) (any, error) {
	if from < 0 || from >= r.world.size {
		return nil, fmt.Errorf("%w: recv from %d in world of %d", ErrRank, from, r.world.size)
	}
	return r.mail.receive(from, tag)
}

// RunRanks runs fn concurrently on every rank of a fresh world of size n and
// waits for all to finish, returning the first error encountered (all other
// results are discarded). It is the harness used by collectives tests and by
// the real-execution trainer.
func RunRanks(n int, fn func(t Transport) error) error {
	w, err := NewWorld(n)
	if err != nil {
		return err
	}
	defer w.Close()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(w.Rank(i))
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}
