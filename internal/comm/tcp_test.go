package comm

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func TestNewTCPWorldValidation(t *testing.T) {
	if _, err := NewTCPWorld(0); err == nil {
		t.Fatal("expected error for size 0")
	}
}

func TestTCPSendRecvRoundTrip(t *testing.T) {
	w, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	go func() {
		_ = w.Rank(0).Send(1, 7, []float32{1, 2, 3})
	}()
	got, err := w.Rank(1).Recv(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	vs := got.([]float32)
	if len(vs) != 3 || vs[2] != 3 {
		t.Fatalf("got %v", vs)
	}
}

func TestTCPSelfSend(t *testing.T) {
	w, err := NewTCPWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Rank(0).Send(0, 1, 42); err != nil {
		t.Fatal(err)
	}
	v, err := w.Rank(0).Recv(0, 1)
	if err != nil || v != 42 {
		t.Fatalf("got %v err %v", v, err)
	}
}

func TestTCPTagIsolationAndFIFO(t *testing.T) {
	w, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const n = 30
	go func() {
		for i := 0; i < n; i++ {
			_ = w.Rank(0).Send(1, 5, i)
		}
		_ = w.Rank(0).Send(1, 9, "other-tag")
	}()
	for i := 0; i < n; i++ {
		v, err := w.Rank(1).Recv(0, 5)
		if err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Fatalf("out of order at %d: %v", i, v)
		}
	}
	if v, _ := w.Rank(1).Recv(0, 9); v != "other-tag" {
		t.Fatalf("tag crosstalk: %v", v)
	}
}

func TestTCPRankRangeErrors(t *testing.T) {
	w, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Rank(0).Send(5, 0, nil); !errors.Is(err, ErrRank) {
		t.Fatalf("err = %v", err)
	}
	if _, err := w.Rank(0).Recv(-1, 0); !errors.Is(err, ErrRank) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPCloseUnblocksReceivers(t *testing.T) {
	w, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := w.Rank(1).Recv(0, 99)
		errc <- err
	}()
	w.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	w.Close() // idempotent
}

func TestTCPFullMeshExchange(t *testing.T) {
	// Every rank sends to every other rank over real sockets concurrently.
	const n = 5
	err := RunRanksTCP(n, func(tr Transport) error {
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			if p == tr.Rank() {
				continue
			}
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				_ = tr.Send(p, 3, tr.Rank()*100+p)
			}(p)
		}
		for p := 0; p < n; p++ {
			if p == tr.Rank() {
				continue
			}
			v, err := tr.Recv(p, 3)
			if err != nil {
				return err
			}
			if v != p*100+tr.Rank() {
				return fmt.Errorf("rank %d from %d: got %v", tr.Rank(), p, v)
			}
		}
		wg.Wait()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRanksTCPPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := RunRanksTCP(3, func(tr Transport) error {
		if tr.Rank() == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPNodeMesh(t *testing.T) {
	// Multi-process-style nodes inside one test: bind ephemeral listeners
	// first, share the resolved addresses, then connect each node.
	const n = 3
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	nodes := make([]*TCPNode, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nodes[i], errs[i] = NewTCPNodeFromListener(i, listeners[i], addrs)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, node := range nodes {
			node.Close()
		}
	}()
	// Exchange across the mesh.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if err := nodes[i].Send(j, 1, i*10+j); err != nil {
				t.Fatal(err)
			}
		}
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if i == j {
				continue
			}
			v, err := nodes[j].Recv(i, 1)
			if err != nil {
				t.Fatal(err)
			}
			if v != i*10+j {
				t.Fatalf("node %d from %d: %v", j, i, v)
			}
		}
	}
}

func TestNewTCPNodeValidation(t *testing.T) {
	if _, err := NewTCPNode(0, nil); err == nil {
		t.Fatal("expected empty-addrs error")
	}
	if _, err := NewTCPNode(2, []string{"127.0.0.1:0"}); err == nil {
		t.Fatal("expected rank-range error")
	}
}

func TestNewTCPNodeDialRetry(t *testing.T) {
	// Rank 0 starts before rank 1's listener exists; the dial retry must
	// bridge the gap, as when processes start at different times.
	l0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{l0.Addr().String(), l1.Addr().String()}
	addr1 := l1.Addr().String()
	l1.Close() // rank 1 not up yet

	var node0 *TCPNode
	var err0 error
	done := make(chan struct{})
	go func() {
		defer close(done)
		node0, err0 = NewTCPNodeFromListener(0, l0, addrs)
	}()

	time.Sleep(300 * time.Millisecond) // let rank 0 hit refused dials
	l1b, err := net.Listen("tcp", addr1)
	if err != nil {
		t.Fatal(err)
	}
	node1, err := NewTCPNodeFromListener(1, l1b, addrs)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if err0 != nil {
		t.Fatal(err0)
	}
	defer node0.Close()
	defer node1.Close()
	if err := node0.Send(1, 1, "late-join"); err != nil {
		t.Fatal(err)
	}
	if v, _ := node1.Recv(0, 1); v != "late-join" {
		t.Fatalf("got %v", v)
	}
}
