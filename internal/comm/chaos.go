// Deterministic fault injection: a Transport wrapper that perturbs the
// message stream according to a seeded FaultPlan.
//
// The paper's training step is fully synchronous — one lost AlltoAll message
// stalls all N ranks — yet the clean transports in this package never fail.
// The chaos transport closes that gap for tests: it injects message delay,
// duplication, reordering, transient send failures, link partitions and full
// rank crashes, each drawn from a *seeded* generator so a failing run replays
// exactly from its seed. Faults are decided per (sender, receiver, tag)
// stream with a generator derived from (plan seed, stream identity), which
// keeps the injected sequence independent of goroutine interleaving across
// streams: the property suites in internal/collective rely on that to assert
// bit-identical results under every plan.
//
// Fault scheduling never reads the wall clock or the process-global rand
// (the determinism analyzer enforces this for the whole package); timers
// appear only to bound how long an already-decided delay or reorder holds a
// message.
package comm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// FaultKind enumerates the injectable fault classes.
type FaultKind int

const (
	// FaultDelay delivers the message late (bounded by the rule's MaxDelay)
	// instead of immediately. Maskable: sequence numbers restore order.
	FaultDelay FaultKind = iota
	// FaultDuplicate delivers the message twice. Maskable: the receiver
	// drops the second copy by sequence number.
	FaultDuplicate
	// FaultReorder holds the message and releases it after the stream's next
	// message (or a short timer when no successor comes). Maskable.
	FaultReorder
	// FaultTransientSend fails the send with ErrTransient without delivering;
	// a short burst of consecutive attempts fails too. Maskable by bounded
	// retry — the burst never exceeds the rule's MaxBurst.
	FaultTransientSend
	// FaultPartition fails matching sends with ErrPeerDown: the link between
	// the two ranks is cut. Not maskable; surfaces as a typed error.
	FaultPartition
	// FaultCrash kills the sending rank: this and every later operation it
	// attempts fails, and (in a ChaosWorld) every peer's blocked receive on
	// it returns ErrPeerDown. Not maskable.
	FaultCrash

	numFaultKinds
)

// String names the fault kind for stats maps and error messages.
func (k FaultKind) String() string {
	switch k {
	case FaultDelay:
		return "delay"
	case FaultDuplicate:
		return "duplicate"
	case FaultReorder:
		return "reorder"
	case FaultTransientSend:
		return "transient-send"
	case FaultPartition:
		return "partition"
	case FaultCrash:
		return "crash"
	default:
		return fmt.Sprintf("faultkind(%d)", int(k))
	}
}

// AnyRank in a FaultRule's From or To matches every rank.
const AnyRank = -1

// FaultPoint identifies one send as seen by the fault injector: the message
// envelope plus the send's ordinal within its (From, To, Tag) stream. Rules
// target specific collectives through it — Communicator tags are a pure
// function of (op, step), so a predicate can match e.g. "the AlltoAll of
// step 3" by tag.
type FaultPoint struct {
	From, To, Tag int
	// Index is the zero-based ordinal of this send within its stream.
	Index int64
}

// FaultRule arms one fault kind against a subset of the message stream.
// The zero value is inert; build rules with Rule and refine the fields.
type FaultRule struct {
	// Kind selects the fault class.
	Kind FaultKind
	// Rate is the firing probability per matching send, drawn from the
	// stream's seeded generator; values >= 1 always fire.
	Rate float64
	// From and To restrict the rule to one sender and/or receiver;
	// AnyRank (-1) matches all. Note the zero value pins rank 0 — use Rule.
	From, To int
	// MaxDelay bounds FaultDelay's injected latency; DefaultMaxDelay if zero.
	MaxDelay time.Duration
	// MaxBurst bounds FaultTransientSend's consecutive failed attempts;
	// DefaultMaxBurst if zero. Keep it below a resilient sender's retry
	// budget or the fault stops being maskable.
	MaxBurst int
	// Match further restricts the rule; nil matches every point.
	Match func(FaultPoint) bool
}

// Rule builds a FaultRule of the given kind and rate matching every rank
// pair; refine From/To/Match on the result to narrow it.
func Rule(kind FaultKind, rate float64) FaultRule {
	return FaultRule{Kind: kind, Rate: rate, From: AnyRank, To: AnyRank}
}

// matches reports whether the rule applies to the fault point.
func (r *FaultRule) matches(pt FaultPoint) bool {
	if r.From != AnyRank && r.From != pt.From {
		return false
	}
	if r.To != AnyRank && r.To != pt.To {
		return false
	}
	return r.Match == nil || r.Match(pt)
}

// Defaults for rule fields left zero.
const (
	// DefaultMaxDelay bounds injected message latency.
	DefaultMaxDelay = time.Millisecond
	// DefaultMaxBurst bounds consecutive transient send failures. The
	// Communicator's retry budget is deliberately larger.
	DefaultMaxBurst = 3
	// reorderFlush releases a held message when its stream never produces a
	// successor — liveness insurance, not a scheduling decision.
	reorderFlush = 2 * time.Millisecond
)

// FaultPlan is a seeded schedule of faults. The zero plan injects nothing
// and costs one branch per operation.
type FaultPlan struct {
	// Seed roots every stream's fault generator; the same plan and seed
	// reproduce the same faults at the same points (per stream).
	Seed int64
	// Rules are evaluated in order per send; the first rule that matches
	// and fires decides the send's fate (at most one fault per message).
	Rules []FaultRule
}

// Empty reports whether the plan can never inject a fault.
func (p FaultPlan) Empty() bool { return len(p.Rules) == 0 }

// validate rejects malformed plans before they produce confusing hangs.
func (p FaultPlan) validate(size int) error {
	for i, r := range p.Rules {
		if r.Kind < 0 || r.Kind >= numFaultKinds {
			return fmt.Errorf("comm: chaos rule %d: unknown fault kind %d", i, int(r.Kind))
		}
		if r.Rate < 0 {
			return fmt.Errorf("comm: chaos rule %d: negative rate %v", i, r.Rate)
		}
		for _, rk := range [2]int{r.From, r.To} {
			if rk != AnyRank && (rk < 0 || rk >= size) {
				return fmt.Errorf("comm: chaos rule %d: rank %d outside world of %d", i, rk, size)
			}
		}
		if r.MaxDelay < 0 || r.MaxBurst < 0 {
			return fmt.Errorf("comm: chaos rule %d: negative MaxDelay/MaxBurst", i)
		}
	}
	return nil
}

// MaskableChaosPlan is the standard all-pairs plan of every recoverable
// fault kind at moderate rates — the plan the chaos property suites sweep
// over seeds. Every fault it injects must be masked by a resilient sender
// and receiver (the Communicator), leaving results bit-identical.
func MaskableChaosPlan(seed int64) FaultPlan {
	return FaultPlan{
		Seed: seed,
		Rules: []FaultRule{
			Rule(FaultDelay, 0.08),
			Rule(FaultDuplicate, 0.08),
			Rule(FaultReorder, 0.08),
			Rule(FaultTransientSend, 0.08),
		},
	}
}

// ---------------------------------------------------------------------------
// Core shared state.
// ---------------------------------------------------------------------------

// chaosCore is the plan plus the cross-rank state one chaos domain shares:
// which ranks have crashed, how many faults of each kind were injected, and
// the WaitGroup that keeps Close leak-free by waiting out delayed deliveries
// and reorder flush timers.
type chaosCore struct {
	plan  FaultPlan
	world *World // non-nil only for NewChaosWorld: enables crash fan-out
	empty bool

	crashed  []atomic.Bool
	injected [numFaultKinds]atomic.Int64
	wg       sync.WaitGroup
}

func newChaosCore(plan FaultPlan, size int, w *World) *chaosCore {
	return &chaosCore{
		plan:    plan,
		world:   w,
		empty:   plan.Empty(),
		crashed: make([]atomic.Bool, size),
	}
}

func (c *chaosCore) count(k FaultKind) { c.injected[k].Add(1) }

func (c *chaosCore) isCrashed(rank int) bool {
	return rank >= 0 && rank < len(c.crashed) && c.crashed[rank].Load()
}

func (c *chaosCore) crashErr(rank int) error {
	return fmt.Errorf("%w: rank %d crashed (chaos fault)", ErrPeerDown, rank)
}

// crash marks rank dead and, inside a ChaosWorld, wakes every peer blocked
// on it with ErrPeerDown.
func (c *chaosCore) crash(rank int) error {
	if !c.crashed[rank].Swap(true) {
		c.count(FaultCrash)
		if c.world != nil {
			c.world.markPeerDown(rank, fmt.Errorf("rank %d crashed (chaos fault)", rank))
		}
	}
	return c.crashErr(rank)
}

// snapshot returns the per-kind injected-fault counts, skipping zeros.
func (c *chaosCore) snapshot() map[string]int64 {
	out := make(map[string]int64)
	for k := FaultKind(0); k < numFaultKinds; k++ {
		if n := c.injected[k].Load(); n > 0 {
			out[k.String()] = n
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// The wrapping transport.
// ---------------------------------------------------------------------------

// streamSeed derives a stream-local seed from the plan seed and the stream
// identity (splitmix64-style mixing), so fault decisions on one stream are
// independent of every other stream's traffic and of goroutine scheduling.
func streamSeed(seed int64, from, to, tag int) int64 {
	x := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, v := range [3]uint64{uint64(from), uint64(to), uint64(tag)} {
		x += v + 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return int64(x)
}

// chaosStream is the per-(receiver, tag) fault state of one sender: its
// seeded generator, send ordinal, the remaining length of a transient-send
// burst, and an at-most-one held message for reordering.
type chaosStream struct {
	mu        sync.Mutex
	rng       *rand.Rand
	index     int64
	failsLeft int
	// grace marks the first send after a transient burst: it must pass, so
	// a retry budget of MaxBurst+1 masks every burst deterministically
	// rather than probabilistically.
	grace     bool
	held      any
	heldValid bool
	heldGen   int64
}

// chaosTransport wraps a Transport with a FaultPlan. Not constructed
// directly — see NewChaosWorld and WrapChaos.
type chaosTransport struct {
	inner Transport
	core  *chaosCore
	self  int

	mu      sync.Mutex
	streams map[streamKey]*chaosStream
}

type streamKey struct{ to, tag int }

func newChaosTransport(inner Transport, core *chaosCore) *chaosTransport {
	return &chaosTransport{
		inner:   inner,
		core:    core,
		self:    inner.Rank(),
		streams: make(map[streamKey]*chaosStream),
	}
}

// Rank implements Transport.
func (c *chaosTransport) Rank() int { return c.inner.Rank() }

// Size implements Transport.
func (c *chaosTransport) Size() int { return c.inner.Size() }

// SetRecvTimeout forwards to the wrapped transport when it supports one.
func (c *chaosTransport) SetRecvTimeout(d time.Duration) {
	if ts, ok := c.inner.(TimeoutSetter); ok {
		ts.SetRecvTimeout(d)
	}
}

// Leave forwards to the wrapped transport when it supports departure.
func (c *chaosTransport) Leave(reason error) {
	if lv, ok := c.inner.(Leaver); ok {
		lv.Leave(reason)
	}
}

// Readmit forwards to the wrapped transport when it supports readmission.
// It clears receiver-side down markers only; the crash flag a FaultCrash set
// lives in the shared chaos core — use ChaosWorld.Readmit to clear both.
func (c *chaosTransport) Readmit(peer int) {
	if ra, ok := c.inner.(Readmitter); ok {
		ra.Readmit(peer)
	}
}

func (c *chaosTransport) stream(to, tag int) *chaosStream {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := streamKey{to: to, tag: tag}
	st, ok := c.streams[key]
	if !ok {
		st = &chaosStream{rng: rand.New(rand.NewSource(streamSeed(c.core.plan.Seed, c.self, to, tag)))}
		c.streams[key] = st
	}
	return st
}

// send actions decided under the stream lock, performed after it unlocks so
// no blocking transport call runs while a mutex is held.
const (
	actPass = iota
	actFailTransient
	actFailPartition
	actCrash
	actDup
	actDelay
	actHold
)

type decision struct {
	act     int
	delay   time.Duration
	heldGen int64
}

// Send implements Transport: it decides this message's fate from the
// stream's seeded generator, then performs the resulting deliveries.
func (c *chaosTransport) Send(to, tag int, payload any) error {
	if c.core.empty {
		return c.inner.Send(to, tag, payload)
	}
	if c.core.isCrashed(c.self) {
		return c.core.crashErr(c.self)
	}
	if c.core.isCrashed(to) {
		// The peer's process is gone: the message vanishes into the void,
		// exactly as an unacknowledged datagram to a dead host would.
		return nil
	}

	st := c.stream(to, tag)
	st.mu.Lock()
	pt := FaultPoint{From: c.self, To: to, Tag: tag, Index: st.index}
	st.index++

	// A send on a stream with a held message releases it: deliver the new
	// message first, then the held one — the reorder. The releasing message
	// itself is exempt from further faults (at most one fault in flight per
	// stream keeps the state machine small).
	if st.heldValid {
		held := st.held
		st.held, st.heldValid = nil, false
		st.heldGen++
		st.mu.Unlock()
		if err := c.inner.Send(to, tag, payload); err != nil {
			return err
		}
		return c.inner.Send(to, tag, held)
	}

	// Continue an armed transient-send burst before consulting the rules.
	if st.failsLeft > 0 {
		st.failsLeft--
		st.mu.Unlock()
		return fmt.Errorf("chaos: send %d->%d dropped: %w", c.self, to, ErrTransient)
	}

	d := c.decide(st, pt, payload)
	st.mu.Unlock()

	switch d.act {
	case actCrash:
		return c.core.crash(c.self)
	case actFailPartition:
		c.core.count(FaultPartition)
		return fmt.Errorf("chaos: link %d->%d partitioned: %w", c.self, to, ErrPeerDown)
	case actFailTransient:
		c.core.count(FaultTransientSend)
		return fmt.Errorf("chaos: send %d->%d dropped: %w", c.self, to, ErrTransient)
	case actDup:
		c.core.count(FaultDuplicate)
		if err := c.inner.Send(to, tag, payload); err != nil {
			return err
		}
		return c.inner.Send(to, tag, payload)
	case actDelay:
		c.core.count(FaultDelay)
		c.core.wg.Add(1)
		go func() {
			defer c.core.wg.Done()
			time.Sleep(d.delay)
			// Error discarded: by the time a delayed message lands the
			// world may legitimately be closed.
			_ = c.inner.Send(to, tag, payload)
		}()
		return nil
	case actHold:
		c.core.count(FaultReorder)
		c.core.wg.Add(1)
		go func(gen int64) {
			defer c.core.wg.Done()
			time.Sleep(reorderFlush)
			st.mu.Lock()
			if st.heldValid && st.heldGen == gen {
				held := st.held
				st.held, st.heldValid = nil, false
				st.heldGen++
				st.mu.Unlock()
				_ = c.inner.Send(to, tag, held)
				return
			}
			st.mu.Unlock()
		}(d.heldGen)
		return nil
	default:
		return c.inner.Send(to, tag, payload)
	}
}

// decide evaluates the plan's rules against one send under the stream lock.
// It mutates only stream-local state; blocking calls happen in Send after
// the lock is released.
func (c *chaosTransport) decide(st *chaosStream, pt FaultPoint, payload any) decision {
	for i := range c.core.plan.Rules {
		r := &c.core.plan.Rules[i]
		if !r.matches(pt) {
			continue
		}
		if r.Rate < 1 && st.rng.Float64() >= r.Rate {
			continue
		}
		switch r.Kind {
		case FaultCrash:
			return decision{act: actCrash}
		case FaultPartition:
			return decision{act: actFailPartition}
		case FaultTransientSend:
			if st.grace {
				// The send right after a burst always passes; without this
				// guarantee back-to-back bursts could outlast any bounded
				// retry budget.
				st.grace = false
				continue
			}
			burst := r.MaxBurst
			if burst <= 0 {
				burst = DefaultMaxBurst
			}
			st.failsLeft = st.rng.Intn(burst) // failures after this one
			st.grace = true
			return decision{act: actFailTransient}
		case FaultDelay:
			maxd := r.MaxDelay
			if maxd <= 0 {
				maxd = DefaultMaxDelay
			}
			return decision{act: actDelay, delay: time.Duration(1 + st.rng.Int63n(int64(maxd)))}
		case FaultDuplicate:
			return decision{act: actDup}
		case FaultReorder:
			st.held = payload
			st.heldValid = true
			st.heldGen++
			return decision{act: actHold, heldGen: st.heldGen}
		}
	}
	return decision{act: actPass}
}

// Recv implements Transport. Faults are injected on the send side; a
// receive fails only when this rank has crashed (every operation of a dead
// rank errors) — receives from crashed peers are unblocked by the
// ChaosWorld's down markers, or by the transport's RecvTimeout.
func (c *chaosTransport) Recv(from, tag int) (any, error) {
	if !c.core.empty && c.core.isCrashed(c.self) {
		return nil, c.core.crashErr(c.self)
	}
	return c.inner.Recv(from, tag)
}

// Compile-time checks.
var (
	_ Transport     = (*chaosTransport)(nil)
	_ TimeoutSetter = (*chaosTransport)(nil)
	_ Leaver        = (*chaosTransport)(nil)
	_ Readmitter    = (*chaosTransport)(nil)
	_ Readmitter    = (*rank)(nil)
	_ Readmitter    = (*tcpRank)(nil)
	_ Readmitter    = (*TCPNode)(nil)
)

// WrapChaos wraps a single rank's transport with a fault plan. Every rank of
// a world must be wrapped with the same plan for the faults to be coherent;
// prefer NewChaosWorld, which also fans rank crashes out to peers. With a
// bare WrapChaos, a peer of a crashed rank unblocks only through the
// transport's RecvTimeout.
func WrapChaos(t Transport, plan FaultPlan) Transport {
	return newChaosTransport(t, newChaosCore(plan, t.Size(), nil))
}

// ChaosWorld is an in-process world whose ranks all share one fault plan —
// the deterministic chaos harness of the test suites.
type ChaosWorld struct {
	world *World
	core  *chaosCore
	ranks []*chaosTransport
}

// NewChaosWorld builds an n-rank in-process world injecting faults per plan.
func NewChaosWorld(n int, plan FaultPlan) (*ChaosWorld, error) {
	if err := plan.validate(n); err != nil {
		return nil, err
	}
	w, err := NewWorld(n)
	if err != nil {
		return nil, err
	}
	cw := &ChaosWorld{world: w, core: newChaosCore(plan, n, w), ranks: make([]*chaosTransport, n)}
	for i := 0; i < n; i++ {
		cw.ranks[i] = newChaosTransport(w.Rank(i), cw.core)
	}
	return cw, nil
}

// Size returns the number of ranks.
func (cw *ChaosWorld) Size() int { return cw.world.Size() }

// Rank returns the fault-injecting transport endpoint for rank i.
func (cw *ChaosWorld) Rank(i int) Transport { return cw.ranks[i] }

// SetRecvTimeout bounds every rank's blocking receives; zero disables.
func (cw *ChaosWorld) SetRecvTimeout(d time.Duration) { cw.world.SetRecvTimeout(d) }

// Injected returns how many faults of each kind actually fired, keyed by
// FaultKind.String(). Tests use it to prove a plan exercised anything at
// all; zero-count kinds are omitted.
func (cw *ChaosWorld) Injected() map[string]int64 { return cw.core.snapshot() }

// Crashed returns the ranks FaultCrash has killed so far, ascending. The
// elastic supervisor reads it after a faulted epoch to decide how far the
// world must shrink.
func (cw *ChaosWorld) Crashed() []int {
	var out []int
	for i := range cw.core.crashed {
		if cw.core.crashed[i].Load() {
			out = append(out, i)
		}
	}
	return out
}

// Readmit returns a recovered rank to the world: the crash flag is cleared
// (its transport operates again, and peers' sends to it deliver again) and
// every rank's receiver-side down markers for it are reset. The caller
// readmits between steps and barriers before traffic resumes, like
// World.Readmit. Crash *rules* stay armed — they target tags, and a rebuilt
// world's Communicators run in a fresh epoch plane, so a once-fired
// step-targeted rule cannot re-fire on the readmitted rank.
func (cw *ChaosWorld) Readmit(rank int) {
	if rank < 0 || rank >= len(cw.core.crashed) {
		return
	}
	cw.core.crashed[rank].Store(false)
	cw.world.Readmit(rank)
}

// Close tears the world down and waits for every in-flight delayed delivery
// and reorder flush to finish, so chaos leaves no goroutines behind.
func (cw *ChaosWorld) Close() {
	cw.world.Close()
	cw.core.wg.Wait()
}

// RunRanksChaos is RunRanks over a ChaosWorld: fn runs concurrently on every
// rank of a fresh fault-injecting world, and the joined per-rank errors are
// returned. Maskable plans must leave fn's results identical to RunRanks;
// unmaskable plans surface as typed errors (ErrPeerDown, ErrTimeout).
func RunRanksChaos(n int, plan FaultPlan, fn func(t Transport) error) error {
	cw, err := NewChaosWorld(n, plan)
	if err != nil {
		return err
	}
	defer cw.Close()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(cw.Rank(i))
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}
