package trainer

import (
	"testing"

	"embrace/internal/data"
)

func seqJob() SeqJob {
	return SeqJob{
		Workers: 3,
		Steps:   6,
		Window:  5,
		Vocab:   60,
		EmbDim:  6,
		Hidden:  8,
		LR:      0.02,
		Seed:    21,
		Data: data.Config{
			VocabSize:      60,
			BatchSentences: 6,
			MaxSeqLen:      8,
			MinSeqLen:      6,
			ZipfS:          1.5,
			ZipfV:          3,
		},
		DataSeed: 77,
	}
}

func TestSeqJobValidate(t *testing.T) {
	if err := seqJob().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*SeqJob){
		func(j *SeqJob) { j.Workers = 0 },
		func(j *SeqJob) { j.Steps = 0 },
		func(j *SeqJob) { j.Window = 0 },
		func(j *SeqJob) { j.Window = 6 }, // >= MinSeqLen
		func(j *SeqJob) { j.Vocab = 61 },
		func(j *SeqJob) { j.EmbDim = 0 },
		func(j *SeqJob) { j.LR = 0 },
		func(j *SeqJob) { j.Data.ZipfS = 0.5 },
	}
	for i, mutate := range cases {
		j := seqJob()
		mutate(&j)
		if err := j.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestRunSeqTrains(t *testing.T) {
	j := seqJob()
	j.Steps = 25
	j.Vertical = true
	res, err := RunSeq(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != j.Steps || res.Embedding == nil {
		t.Fatal("missing results")
	}
	first := (res.Losses[0] + res.Losses[1]) / 2
	last := (res.Losses[j.Steps-1] + res.Losses[j.Steps-2]) / 2
	if last >= first {
		t.Fatalf("seq loss did not decrease: %v -> %v", first, last)
	}
	if res.Comm.PayloadBytes <= 0 || res.TokensTrained <= 0 {
		t.Fatalf("counters not populated: %+v", res.Comm)
	}
	for _, a := range res.Accuracies {
		if a < 0 || a > 1 {
			t.Fatalf("accuracy %v out of range", a)
		}
	}
}

// The §5.7 property on the recurrent model: vertical split with modified
// Adam must be bit-identical to whole updates.
func TestRunSeqVerticalEqualsWhole(t *testing.T) {
	whole := seqJob()
	res1, err := RunSeq(whole)
	if err != nil {
		t.Fatal(err)
	}
	split := seqJob()
	split.Vertical = true
	res2, err := RunSeq(split)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res1.Losses {
		if res1.Losses[i] != res2.Losses[i] {
			t.Fatalf("loss[%d]: %v vs %v", i, res1.Losses[i], res2.Losses[i])
		}
	}
	if !res1.Embedding.AllClose(res2.Embedding, 0) {
		t.Fatalf("split diverged by %v", res1.Embedding.MaxAbsDiff(res2.Embedding))
	}
}

func TestRunSeqOverTCP(t *testing.T) {
	j := seqJob()
	j.Steps = 3
	inproc, err := RunSeq(j)
	if err != nil {
		t.Fatal(err)
	}
	j.OverTCP = true
	tcp, err := RunSeq(j)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inproc.Losses {
		if inproc.Losses[i] != tcp.Losses[i] {
			t.Fatalf("loss[%d]: %v vs %v", i, inproc.Losses[i], tcp.Losses[i])
		}
	}
}

func TestRunSeqRejectsInvalid(t *testing.T) {
	j := seqJob()
	j.Window = 0
	if _, err := RunSeq(j); err == nil {
		t.Fatal("expected validation error")
	}
}

// realText is a tiny public-domain-style corpus with strong word reuse.
var realText = []string{
	"the old man went to the sea",
	"the sea was calm and the wind was cold",
	"the old man cast his net into the sea",
	"the net came back empty and the man waited",
	"the wind rose and the sea grew rough",
	"the man pulled the net from the rough sea",
	"the cold wind cut through the old net",
	"the sea gave the man a great fish",
	"the fish fought the net and the man",
	"the man brought the great fish to shore",
	"the shore was quiet and the wind was gone",
	"the old man slept by the calm sea",
}

func TestRunSeqOnRealText(t *testing.T) {
	j := SeqJob{
		Workers:   2,
		Steps:     30,
		Window:    5,
		Vocab:     64,
		EmbDim:    8,
		Hidden:    12,
		LR:        0.03,
		Vertical:  true,
		Seed:      13,
		Text:      realText,
		TextBatch: 3,
	}
	res, err := RunSeq(j)
	if err != nil {
		t.Fatal(err)
	}
	first := (res.Losses[0] + res.Losses[1]) / 2
	last := (res.Losses[28] + res.Losses[29]) / 2
	if last >= first {
		t.Fatalf("text training did not learn: %v -> %v", first, last)
	}
	// The tiny corpus repeats every few steps; the model should start
	// predicting next words well above chance.
	if res.Accuracies[29] < 0.2 {
		t.Fatalf("final accuracy %v suspiciously low", res.Accuracies[29])
	}
}

func TestRunSeqTextVerticalEqualsWhole(t *testing.T) {
	mk := func(vertical bool) SeqJob {
		return SeqJob{
			Workers: 2, Steps: 5, Window: 5,
			Vocab: 64, EmbDim: 8, Hidden: 12, LR: 0.03,
			Vertical: vertical, Seed: 13, Text: realText, TextBatch: 3,
		}
	}
	whole, err := RunSeq(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	split, err := RunSeq(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	for i := range whole.Losses {
		if whole.Losses[i] != split.Losses[i] {
			t.Fatalf("loss[%d]: %v vs %v", i, whole.Losses[i], split.Losses[i])
		}
	}
}

func TestRunSeqTextValidation(t *testing.T) {
	j := SeqJob{Workers: 2, Steps: 1, Window: 5, Vocab: 2, EmbDim: 4, Hidden: 4, LR: 0.01, Text: realText}
	if _, err := RunSeq(j); err == nil {
		t.Fatal("expected tiny-vocab error")
	}
	// Too few sentences for the shard.
	j2 := SeqJob{Workers: 8, Steps: 1, Window: 5, Vocab: 64, EmbDim: 4, Hidden: 4, LR: 0.01, Text: realText[:4], TextBatch: 3}
	if _, err := RunSeq(j2); err == nil {
		t.Fatal("expected shard-size error")
	}
}
