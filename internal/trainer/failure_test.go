package trainer

import (
	"strings"
	"testing"

	"embrace/internal/strategies"
)

// Misconfiguration must fail fast with a descriptive error — the job never
// starts a world it cannot finish.
func TestRankFailurePropagates(t *testing.T) {
	j := testJob(strategies.EmbRace, 4)
	j.Model.EmbDim = 9 // not divisible by 4 workers
	_, err := Run(j)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "divisible") {
		t.Fatalf("error %q should explain the divisibility constraint", err)
	}
}

func TestSeqRunWorkerCountMismatchFailsFast(t *testing.T) {
	j := seqJob()
	j.Workers = -1
	if _, err := RunSeq(j); err == nil {
		t.Fatal("expected validation error")
	}
}
