package trainer

import (
	"bytes"
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"

	"embrace/internal/strategies"
	"embrace/internal/trace"
)

// tracedJob returns the standard small test job with tracing enabled under
// the EmbRace 2D schedule, the configuration whose timeline exercises every
// span kind (lookup, exchanges, vertical split, background delayed lane).
func tracedJob(workers, steps int) Job {
	job := testJob(strategies.EmbRace, workers)
	job.Steps = steps
	job.Model.Sched = strategies.Sched2D
	job.Model.Optimizer = strategies.OptAdam
	job.Model.LR = 0.01
	job.Trace = true
	return job
}

// spansOf filters one recorder's spans by name.
func spansOf(r *trace.Recorder, name string) []trace.Span {
	var out []trace.Span
	for _, s := range r.Spans() {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

func TestTraceDisabledLeavesResultBare(t *testing.T) {
	job := testJob(strategies.EmbRace, 2)
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traces != nil || res.PhaseSeconds != nil {
		t.Fatalf("tracing off must leave Traces/PhaseSeconds nil, got %d traces", len(res.Traces))
	}
}

func TestTraceRunRecordsEveryRank(t *testing.T) {
	job := tracedJob(2, 4)
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 2 {
		t.Fatalf("%d traces, want 2", len(res.Traces))
	}
	for rank, r := range res.Traces {
		if r == nil {
			t.Fatalf("rank %d recorder missing", rank)
		}
		if r.Rank() != rank {
			t.Fatalf("trace slot %d holds rank %d", rank, r.Rank())
		}
		steps := spansOf(r, "step")
		if len(steps) != job.Steps {
			t.Fatalf("rank %d: %d step spans, want %d", rank, len(steps), job.Steps)
		}
	}
	for _, phase := range []string{"step", strategies.SpanFP, strategies.SpanBP,
		strategies.SpanPriorExchange, strategies.SpanDelayedExchange, strategies.SpanVSplit} {
		if res.PhaseSeconds[phase] <= 0 {
			t.Fatalf("PhaseSeconds[%q] = %g, want > 0", phase, res.PhaseSeconds[phase])
		}
	}
}

// TestTraceChromeExportGolden checks the exported JSON end to end: it
// parses, every complete event has positive duration, per-rank compute
// spans nest inside their step span, and the prior exchange of step k
// finishes before step k+1 harvests the delayed half — the ordering
// Algorithm 1 requires.
func TestTraceChromeExportGolden(t *testing.T) {
	job := tracedJob(2, 4)
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := trace.ExportRecorders(&buf, "golden", res.Traces); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	pids := map[float64]bool{}
	for _, e := range parsed.TraceEvents {
		if e["ph"] != "X" {
			continue
		}
		if e["dur"].(float64) <= 0 {
			t.Fatalf("non-positive duration: %v", e)
		}
		pids[e["pid"].(float64)] = true
	}
	if len(pids) != 2 {
		t.Fatalf("pids %v, want one process per rank", pids)
	}

	for rank, r := range res.Traces {
		// Every compute-track span of step k nests inside that step's
		// "step" span: the step loop Begins before the worker and Ends
		// after it, all on one goroutine and one clock.
		stepSpan := map[int]trace.Span{}
		for _, s := range spansOf(r, "step") {
			stepSpan[s.Step] = s
		}
		for _, s := range r.Spans() {
			if s.Track != trace.TrackCompute || s.Step < 0 || s.Name == "step" {
				continue
			}
			outer, ok := stepSpan[s.Step]
			if !ok {
				t.Fatalf("rank %d: span %q has step %d with no step span", rank, s.Name, s.Step)
			}
			if s.Start < outer.Start || s.End() > outer.End() {
				t.Fatalf("rank %d: %q [%v,%v] escapes step %d [%v,%v]",
					rank, s.Name, s.Start, s.End(), s.Step, outer.Start, outer.End())
			}
		}
		// Ordering: step k's prior exchange completes before step k+1
		// harvests the delayed remainder.
		prior := map[int]trace.Span{}
		for _, s := range spansOf(r, strategies.SpanPriorExchange) {
			prior[s.Step] = s
		}
		for _, h := range spansOf(r, strategies.SpanHarvestDelayed) {
			if h.Step < 1 {
				continue // the final FullEmbedding harvest runs outside the step loop
			}
			p, ok := prior[h.Step-1]
			if !ok {
				t.Fatalf("rank %d: harvest at step %d without prior exchange at %d", rank, h.Step, h.Step-1)
			}
			if p.End() > h.Start {
				t.Fatalf("rank %d: prior exchange of step %d ends %v, after harvest of step %d starts %v",
					rank, h.Step-1, p.End(), h.Step, h.Start)
			}
		}
	}
}

// TestTraceDelayedOverlapsNextStep is the acceptance criterion of §4.2.2
// made a test: on some rank, the background delayed-gradient AlltoAll span
// of step k overlaps a compute span of step k+1. The overlap depends on
// goroutine scheduling, so a few attempts are allowed before failing.
func TestTraceDelayedOverlapsNextStep(t *testing.T) {
	job := tracedJob(4, 8)
	// A heavier model keeps the background exchange in flight long enough
	// to reach into the next step.
	job.Model.Vocab = 400
	job.Data.VocabSize = 400
	job.Model.EmbDim = 32
	job.Model.Hidden = 16
	job.Data.BatchSentences = 16
	for attempt := 0; attempt < 3; attempt++ {
		res, err := Run(job)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Traces {
			for _, d := range spansOf(r, strategies.SpanDelayedExchange) {
				if d.Track != trace.TrackBackground {
					t.Fatalf("delayed exchange on track %d", d.Track)
				}
				for _, s := range r.Spans() {
					if s.Track == trace.TrackCompute && s.Step == d.Step+1 && d.Overlaps(s) {
						return // overlap observed: delayed comm hid behind next step's work
					}
				}
			}
		}
	}
	t.Fatal("no delayed-exchange span overlapped the following step's compute in 3 runs")
}

func TestTraceInjectedClock(t *testing.T) {
	var tick atomic.Int64
	job := tracedJob(2, 2)
	job.TraceClock = func() time.Duration {
		return time.Duration(tick.Add(1)) * time.Microsecond
	}
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Traces {
		for _, s := range r.Spans() {
			if s.Track != trace.TrackCompute {
				continue // observer spans mix in the collective's own timing
			}
			if s.Start%time.Microsecond != 0 {
				t.Fatalf("span %q start %v not on the injected tick grid", s.Name, s.Start)
			}
		}
	}
	if tick.Load() == 0 {
		t.Fatal("injected clock never consulted")
	}
}
