package trainer

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"embrace/internal/comm"
	"embrace/internal/strategies"
)

// sameResult asserts two runs are bit-identical: loss curve, accuracy curve,
// final embedding table and final trunk parameters.
func sameResult(t *testing.T, label string, ref, got *Result) {
	t.Helper()
	for i := range ref.Losses {
		if ref.Losses[i] != got.Losses[i] {
			t.Fatalf("%s: loss[%d] = %v, fault-free %v", label, i, got.Losses[i], ref.Losses[i])
		}
		if ref.Accuracies[i] != got.Accuracies[i] {
			t.Fatalf("%s: accuracy[%d] = %v, fault-free %v", label, i, got.Accuracies[i], ref.Accuracies[i])
		}
	}
	if !ref.Embedding.AllClose(got.Embedding, 0) {
		t.Fatalf("%s: final embedding differs by %v", label, ref.Embedding.MaxAbsDiff(got.Embedding))
	}
	refP, gotP := ref.Trunk.Params(), got.Trunk.Params()
	for i := range refP {
		if !refP[i].Tensor.AllClose(gotP[i].Tensor, 0) {
			t.Fatalf("%s: trunk param %s differs", label, refP[i].Name)
		}
	}
}

// An end-to-end training job under a maskable fault plan must converge to
// exactly the fault-free run: same losses at every step, same final
// parameters to the last bit. This is the paper's synchronous-training
// contract surviving a misbehaving fabric.
func TestTrainingUnderMaskableChaosIsBitIdentical(t *testing.T) {
	for _, name := range []strategies.Name{strategies.EmbRace, strategies.HorovodAllReduce} {
		job := testJob(name, 4)
		ref, err := Run(job)
		if err != nil {
			t.Fatalf("%s fault-free: %v", name, err)
		}
		for _, seed := range []int64{1, 2, 3} {
			chaosJob := job
			plan := comm.MaskableChaosPlan(seed)
			chaosJob.Chaos = &plan
			res, err := Run(chaosJob)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			sameResult(t, fmt.Sprintf("%s seed %d", name, seed), ref, res)
		}
	}
}

// Masked faults must show up in the aggregated communication stats — the
// run's own record that it trained through injected faults.
func TestTrainingRecordsMaskedFaults(t *testing.T) {
	job := testJob(strategies.EmbRace, 4)
	plan := comm.FaultPlan{Seed: 9, Rules: []comm.FaultRule{comm.Rule(comm.FaultDuplicate, 1)}}
	job.Chaos = &plan
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.FaultsMasked == 0 {
		t.Fatal("every message duplicated, yet FaultsMasked == 0")
	}
	if res.Comm.FaultsFatal != 0 {
		t.Fatalf("maskable plan produced %d fatal faults", res.Comm.FaultsFatal)
	}
}

// A crashed rank is not maskable: the job must fail fast — within a deadline,
// not a hang — with an error that names the crashed rank and unwraps to
// comm.ErrPeerDown, and at least one rank must report it as an attributed
// FaultError.
func TestTrainingRankCrashIsAttributed(t *testing.T) {
	job := testJob(strategies.EmbRace, 4)
	crash := comm.Rule(comm.FaultCrash, 1)
	crash.From = 2
	crash.Match = func(pt comm.FaultPoint) bool { return pt.Index >= 3 }
	job.Chaos = &comm.FaultPlan{Seed: 4, Rules: []comm.FaultRule{crash}}
	// Liveness backstop: even a rank blocked on a healthy-but-exited peer
	// must resolve; the Leave cascade should beat this by a wide margin.
	job.RecvTimeout = 5 * time.Second

	done := make(chan error, 1)
	go func() {
		_, err := Run(job)
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("job hung after rank crash")
	}
	if err == nil {
		t.Fatal("job succeeded despite a crashed rank")
	}
	if !errors.Is(err, comm.ErrPeerDown) {
		t.Fatalf("err = %v, want ErrPeerDown in the chain", err)
	}
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("no FaultError in the chain: %v", err)
	}
	if fe.Phase == "" {
		t.Fatalf("FaultError has no phase: %+v", fe)
	}
	if !strings.Contains(err.Error(), "rank 2 crashed") {
		t.Fatalf("error does not attribute the crashed rank: %v", err)
	}
}

// Chaos rides the in-process fabric only; asking for it over TCP is a
// configuration error, not a silent fallback.
func TestChaosOverTCPRejected(t *testing.T) {
	job := testJob(strategies.EmbRace, 4)
	plan := comm.MaskableChaosPlan(1)
	job.Chaos = &plan
	job.OverTCP = true
	if err := job.Validate(); err == nil {
		t.Fatal("expected validation error for Chaos+OverTCP")
	}
}
