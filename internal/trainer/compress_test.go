package trainer

import (
	"math"
	"testing"

	"embrace/internal/comm"
	"embrace/internal/compress"
	"embrace/internal/data"
	"embrace/internal/strategies"
)

// compressJob is the convergence-suite job for the compression tests:
// EmbDim 24 divides every tested world size {2, 3, 4, 8}, and 2D scheduling
// exercises both the prior and the delayed codec classes.
func compressJob(workers int, seed int64) Job {
	return Job{
		Strategy: strategies.EmbRace,
		Workers:  workers,
		Steps:    4,
		Window:   4,
		Model: strategies.Config{
			Seed:      seed,
			Vocab:     40,
			EmbDim:    24,
			Hidden:    6,
			Optimizer: strategies.OptAdam,
			LR:        0.05,
			Sched:     strategies.Sched2D,
			PSServers: 1,
		},
		Data: data.Config{
			VocabSize:      40,
			BatchSentences: 5,
			MaxSeqLen:      8,
			MinSeqLen:      5,
			ZipfS:          1.4,
			ZipfV:          2,
		},
		DataSeed: seed + 1,
	}
}

// Convergence neutrality, lossless: training with the delta-varint codec on
// the embedding AlltoAll is bit-identical — losses, accuracies, embedding
// table, and trunk parameters — to uncompressed training, across world
// sizes and seeds, while the wire actually carries compressed bytes.
func TestLosslessCompressedTrainingBitIdentical(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		for _, seed := range []int64{77, 2026, 31337} {
			ref, err := Run(compressJob(n, seed))
			if err != nil {
				t.Fatalf("n=%d seed=%d raw: %v", n, seed, err)
			}
			job := compressJob(n, seed)
			job.Model.Codec = compress.DeltaRaw{}
			got, err := Run(job)
			if err != nil {
				t.Fatalf("n=%d seed=%d lossless: %v", n, seed, err)
			}
			sameResult(t, "lossless compressed vs raw", ref, got)
			for _, op := range []string{strategies.OpEmbGrad, strategies.OpEmbDelayed} {
				st, ok := got.CommPerOp[op]
				if !ok {
					t.Fatalf("n=%d seed=%d: no traffic recorded for %q", n, seed, op)
				}
				if st.RawBytes == 0 {
					t.Errorf("n=%d seed=%d %s: codec never engaged (RawBytes=0)", n, seed, op)
				}
				if st.WireBytes >= st.RawBytes {
					t.Errorf("n=%d seed=%d %s: wire %d B >= raw %d B — no compression", n, seed, op, st.WireBytes, st.RawBytes)
				}
			}
			if raw := ref.CommPerOp[strategies.OpEmbGrad]; raw.RawBytes != 0 {
				t.Errorf("n=%d seed=%d: uncompressed run reports RawBytes=%d", n, seed, raw.RawBytes)
			}
		}
	}
}

// Convergence neutrality, lossy: dual-level quantized training still learns,
// and its final loss stays within a small relative tolerance of the
// uncompressed run's — the error bounds are tight enough not to disturb
// optimization on this workload.
func TestLossyCompressedTrainingLossWithinTolerance(t *testing.T) {
	const steps = 30
	job := compressJob(4, 77)
	job.Steps = steps
	ref, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	q, err := compress.NewDualQuant(1e-4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	lossy := compressJob(4, 77)
	lossy.Steps = steps
	lossy.Model.Codec = q
	got, err := Run(lossy)
	if err != nil {
		t.Fatal(err)
	}
	if got.Losses[steps-1] >= got.Losses[0] {
		t.Errorf("lossy run is not learning: loss %g -> %g", got.Losses[0], got.Losses[steps-1])
	}
	refFinal, gotFinal := ref.Losses[steps-1], got.Losses[steps-1]
	if rel := math.Abs(gotFinal-refFinal) / refFinal; rel > 0.02 {
		t.Errorf("lossy final loss %g deviates %.2f%% from uncompressed %g (tolerance 2%%)", gotFinal, rel*100, refFinal)
	} else {
		t.Logf("final loss: raw %.6f, lossy %.6f (%.4f%% apart)", refFinal, gotFinal, rel*100)
	}
	st := got.CommPerOp[strategies.OpEmbGrad]
	if st.RawBytes == 0 || st.WireBytes >= st.RawBytes {
		t.Errorf("lossy codec traffic looks wrong: raw=%d wire=%d", st.RawBytes, st.WireBytes)
	}
}

// The compressed exchange composes with the rest of the fault-tolerance
// matrix: lossless compressed training under a maskable chaos plan is
// bit-identical to the compressed fault-free run.
func TestLosslessCompressedTrainingUnderChaos(t *testing.T) {
	job := compressJob(4, 77)
	job.Model.Codec = compress.DeltaRaw{}
	ref, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		chaos := compressJob(4, 77)
		chaos.Model.Codec = compress.DeltaRaw{}
		plan := comm.MaskableChaosPlan(seed)
		chaos.Chaos = &plan
		got, err := Run(chaos)
		if err != nil {
			t.Fatalf("chaos seed %d: %v", seed, err)
		}
		sameResult(t, "compressed chaos vs compressed clean", ref, got)
	}
}
