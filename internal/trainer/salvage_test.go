package trainer

import (
	"errors"
	"testing"
	"time"

	"embrace/internal/collective"
	"embrace/internal/comm"
	"embrace/internal/strategies"
)

// runWithGuard runs a job under a hang deadline: fault-path tests must
// resolve via the Leave cascade or RecvTimeout, never block the suite.
func runWithGuard(t *testing.T, job Job) (*Result, error) {
	t.Helper()
	type out struct {
		res *Result
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := Run(job)
		ch <- out{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-time.After(60 * time.Second):
		t.Fatal("job hung")
		return nil, nil
	}
}

// The salvage regression: a faulted Run must return the partial Result
// ALONGSIDE the error — every loss and accuracy recorded before the fault
// step, bit-identical to a fault-free run's prefix — not nil. This is the
// contract the elastic supervisor's rollback is built on; it regressed once
// (Run returned nil, runErr) and the recorded progress was discarded.
func TestFaultedRunReturnsPartialResult(t *testing.T) {
	const faultStep = 3
	job := testJob(strategies.EmbRace, 4)
	job.Steps = 6
	job.RecvTimeout = 5 * time.Second

	ref, err := Run(job)
	if err != nil {
		t.Fatalf("fault-free: %v", err)
	}

	plan, err := CrashPlan(11, 3, faultStep)
	if err != nil {
		t.Fatal(err)
	}
	job.Chaos = &plan
	res, err := runWithGuard(t, job)
	if err == nil {
		t.Fatal("job succeeded despite a crashed rank")
	}
	if res == nil {
		t.Fatal("faulted Run returned nil Result; recorded progress discarded")
	}
	if len(FaultErrors(err)) == 0 {
		t.Fatalf("no attributed FaultError in: %v", err)
	}
	for s := 0; s < faultStep; s++ {
		if res.Losses[s] != ref.Losses[s] {
			t.Fatalf("salvaged loss[%d] = %v, fault-free %v", s, res.Losses[s], ref.Losses[s])
		}
		if res.Accuracies[s] != ref.Accuracies[s] {
			t.Fatalf("salvaged accuracy[%d] = %v, fault-free %v", s, res.Accuracies[s], ref.Accuracies[s])
		}
	}
	for s := faultStep; s < job.Steps; s++ {
		if res.Losses[s] != 0 {
			t.Fatalf("loss[%d] = %v past the fault step, want zero", s, res.Losses[s])
		}
	}
	if res.Comm.Messages == 0 {
		t.Fatal("partial Result lost its communication counters")
	}
}

// The attribution matrix: a crash targeted at each phase of the step loop
// must surface as a FaultError naming the crashed rank, the exact step, and
// the exact phase — the coordinates the elastic supervisor steers by.
// CrashPlan pins the crash to a (op, step) tag via collective.TagOf, so the
// phase hit is deterministic, not scheduling-dependent.
func TestFaultAttributionMatrix(t *testing.T) {
	const victim = 3
	cases := []struct {
		name      string
		op        string
		tagStep   int // step encoded in the targeted tag
		wantStep  int // FaultError.Step (-1 outside the step loop)
		wantPhase string
	}{
		// OpTokens opens every training step's exchange.
		{"train step", strategies.OpTokens, 2, 2, "train step"},
		// OpStats is sent by non-root ranks in the gather after the step.
		{"stats gather", strategies.OpStats, 2, 2, "stats gather"},
		// OpGatherEmb runs once, after the loop (Ticket 0), step -1.
		{"final embedding", strategies.OpGatherEmb, 0, -1, "final embedding"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			job := testJob(strategies.EmbRace, 4)
			job.RecvTimeout = 5 * time.Second
			plan, err := CrashPlan(7, victim, tc.tagStep)
			if err != nil {
				t.Fatal(err)
			}
			// Retarget the prepended crash rule at the phase's op.
			tag, err := collective.TagOf(tc.op, tc.tagStep)
			if err != nil {
				t.Fatal(err)
			}
			plan.Rules[0].Match = func(pt comm.FaultPoint) bool { return pt.Tag == tag }

			job.Chaos = &plan
			_, err = runWithGuard(t, job)
			if err == nil {
				t.Fatal("job succeeded despite a crashed rank")
			}
			if !errors.Is(err, comm.ErrPeerDown) {
				t.Fatalf("err = %v, want ErrPeerDown in the chain", err)
			}
			var got *FaultError
			for _, fe := range FaultErrors(err) {
				if fe.Rank == victim {
					got = fe
					break
				}
			}
			if got == nil {
				t.Fatalf("no FaultError attributed to rank %d in: %v", victim, err)
			}
			if got.Step != tc.wantStep {
				t.Fatalf("FaultError.Step = %d, want %d", got.Step, tc.wantStep)
			}
			if got.Phase != tc.wantPhase {
				t.Fatalf("FaultError.Phase = %q, want %q", got.Phase, tc.wantPhase)
			}
		})
	}
}

// FaultErrors must find every attributed fault in a joined error tree and
// none in trees without one.
func TestFaultErrorsWalk(t *testing.T) {
	fe1 := &FaultError{Rank: 1, Step: 2, Phase: "train step", Err: comm.ErrPeerDown}
	fe2 := &FaultError{Rank: 3, Step: -1, Phase: "final embedding", Err: comm.ErrTimeout}
	tree := errors.Join(
		errors.Join(fe1, errors.New("plain")),
		fe2,
	)
	got := FaultErrors(tree)
	if len(got) != 2 || got[0] != fe1 || got[1] != fe2 {
		t.Fatalf("FaultErrors = %v, want [fe1 fe2]", got)
	}
	if n := len(FaultErrors(errors.New("no faults here"))); n != 0 {
		t.Fatalf("found %d faults in a plain error", n)
	}
	if n := len(FaultErrors(nil)); n != 0 {
		t.Fatalf("found %d faults in nil", n)
	}
}
