package trainer

import (
	"errors"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"embrace/internal/collective"
	"embrace/internal/comm"
	"embrace/internal/strategies"
	"embrace/internal/tensor"
)

// elasticSeeds returns the chaos seed sweep, offset by EMBRACE_CHAOS_SEED so
// CI can run disjoint ranges without editing the test.
func elasticSeeds(n int) []int64 {
	base := int64(1)
	if s := os.Getenv("EMBRACE_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			base = v
		}
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds
}

// tickClock is a deterministic, race-safe clock: each call advances one
// millisecond. Injected so the elastic supervisor's recovery-latency
// accounting is testable and the trainer package stays wall-clock-free.
func tickClock() func() time.Duration {
	var tick atomic.Int64
	return func() time.Duration {
		return time.Duration(tick.Add(1)) * time.Millisecond
	}
}

// elasticJob is the canonical crash–shrink–rejoin scenario: W workers,
// 9 steps, snapshot every 3, rank W-1 crashes opening step 4, the shrunk
// world trains 2 steps then readmits. EmbDim must divide by both W and W-1.
func elasticJob(workers, embDim int) ElasticJob {
	job := testJob(strategies.EmbRace, workers)
	job.Steps = 9
	job.Model.EmbDim = embDim
	job.RecvTimeout = 10 * time.Second
	return ElasticJob{
		Job:             job,
		CheckpointEvery: 3,
		Rejoin:          true,
		RejoinAfter:     2,
		Clock:           tickClock(),
	}
}

// runElasticWithGuard bounds a whole supervised run: recovery must be
// driven by the Leave cascade and RecvTimeout, never by test patience.
func runElasticWithGuard(t *testing.T, job ElasticJob) (*ElasticResult, error) {
	t.Helper()
	type out struct {
		res *ElasticResult
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := RunElastic(job)
		ch <- out{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-time.After(120 * time.Second):
		t.Fatal("elastic run hung")
		return nil, nil
	}
}

// stitchedReference reproduces an elastic run's trajectory with plain,
// fault-free Runs: one per epoch segment, each at that epoch's world size,
// warm-started from the PREVIOUS segment's own final parameters (never from
// the elastic run's state) and fast-forwarded to the segment's start batch.
// Agreement therefore proves the elastic run's losses and final parameters
// are exactly those of uninterrupted training over the same effective batch
// schedule.
func stitchedReference(t *testing.T, job ElasticJob, epochs []EpochInfo) *Result {
	t.Helper()
	ref := &Result{
		Losses:     make([]float64, job.Steps),
		Accuracies: make([]float64, job.Steps),
	}
	var emb *tensor.Dense
	var trunk map[string]*tensor.Dense
	for _, ep := range epochs {
		if ep.EndStep == ep.StartStep {
			continue // epoch rolled back entirely
		}
		seg := job.Job
		seg.Workers = ep.Workers
		seg.Steps = ep.EndStep - ep.StartStep
		seg.SkipBatches = job.SkipBatches + ep.StartStep
		seg.Chaos = nil
		seg.Model.InitEmbedding = emb
		seg.Model.InitTrunk = trunk
		res, err := Run(seg)
		if err != nil {
			t.Fatalf("reference segment [%d,%d) at %d workers: %v", ep.StartStep, ep.EndStep, ep.Workers, err)
		}
		copy(ref.Losses[ep.StartStep:ep.EndStep], res.Losses)
		copy(ref.Accuracies[ep.StartStep:ep.EndStep], res.Accuracies)
		emb = res.Embedding
		trunk = make(map[string]*tensor.Dense)
		for _, p := range res.Trunk.Params() {
			trunk[p.Name] = p.Tensor
		}
		ref.Embedding = res.Embedding
		ref.Trunk = res.Trunk
	}
	return ref
}

// The tentpole proof: a seeded crash–shrink–rejoin run converges to the
// SAME loss trajectory — bit-identical on the lossless path — as
// uninterrupted training of the equal effective batch schedule, across
// world sizes and chaos seeds. Run with -race.
func TestElasticCrashShrinkRejoinBitIdentical(t *testing.T) {
	cases := []struct{ workers, embDim int }{
		{3, 6},   // EmbDim divides 3 and 2
		{4, 12},  // divides 4 and 3
		{8, 56},  // divides 8 and 7
	}
	for _, tc := range cases {
		for _, seed := range elasticSeeds(3) {
			job := elasticJob(tc.workers, tc.embDim)
			victim := tc.workers - 1
			plan, err := CrashPlan(seed, victim, 4)
			if err != nil {
				t.Fatal(err)
			}
			job.Chaos = &plan

			res, err := runElasticWithGuard(t, job)
			if err != nil {
				t.Fatalf("W=%d seed %d: %v", tc.workers, seed, err)
			}
			label := "W=" + strconv.Itoa(tc.workers) + " seed " + strconv.FormatInt(seed, 10)

			if res.Recoveries != 1 {
				t.Fatalf("%s: recoveries = %d, want 1", label, res.Recoveries)
			}
			if len(res.Epochs) != 3 {
				t.Fatalf("%s: %d epochs, want 3: %+v", label, len(res.Epochs), res.Epochs)
			}
			e0, e1, e2 := res.Epochs[0], res.Epochs[1], res.Epochs[2]
			if e0.End != EpochFault || e0.Workers != tc.workers || e0.StartStep != 0 || e0.EndStep != 3 {
				t.Fatalf("%s: epoch 0 = %+v, want fault [0,3) at %d workers", label, e0, tc.workers)
			}
			if len(e0.Crashed) != 1 || e0.Crashed[0] != victim {
				t.Fatalf("%s: crashed = %v, want [%d]", label, e0.Crashed, victim)
			}
			if e0.Fault == nil || e0.Fault.Rank != victim || e0.Fault.Step != 4 || e0.Fault.Phase != "train step" {
				t.Fatalf("%s: fault = %+v, want rank %d step 4 train step", label, e0.Fault, victim)
			}
			if e1.End != EpochRejoin || e1.Workers != tc.workers-1 || e1.StartStep != 3 || e1.EndStep != 5 {
				t.Fatalf("%s: epoch 1 = %+v, want rejoin [3,5) at %d workers", label, e1, tc.workers-1)
			}
			if len(e1.Moves) == 0 {
				t.Fatalf("%s: shrink epoch recorded no shard moves", label)
			}
			if e1.RecoverySeconds <= 0 {
				t.Fatalf("%s: shrink recovery latency %v, want > 0", label, e1.RecoverySeconds)
			}
			if e2.End != EpochCompleted || e2.Workers != tc.workers || e2.StartStep != 5 || e2.EndStep != 9 {
				t.Fatalf("%s: epoch 2 = %+v, want completed [5,9) at %d workers", label, e2, tc.workers)
			}
			if len(e2.Moves) == 0 || e2.RecoverySeconds <= 0 {
				t.Fatalf("%s: rejoin epoch moves/latency = %v/%v, want recorded", label, e2.Moves, e2.RecoverySeconds)
			}

			ref := stitchedReference(t, job, res.Epochs)
			sameResult(t, label, ref, &res.Result)
		}
	}
}

// A crash before the first snapshot rolls the whole epoch back: the shrunk
// world restarts from seed initialization — identical to a fresh fault-free
// run at the smaller size — and still completes and rejoins.
func TestElasticCrashBeforeFirstCheckpoint(t *testing.T) {
	job := elasticJob(4, 12)
	plan, err := CrashPlan(elasticSeeds(1)[0], 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	job.Chaos = &plan

	res, err := runElasticWithGuard(t, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs[0].EndStep != 0 {
		t.Fatalf("epoch 0 kept %d steps despite no snapshot", res.Epochs[0].EndStep)
	}
	ref := stitchedReference(t, job, res.Epochs)
	sameResult(t, "no-checkpoint crash", ref, &res.Result)
}

// The replicated-table strategies shrink too — no shard remap, just a
// full-table restore on the survivors.
func TestElasticShrinkAllReduceStrategy(t *testing.T) {
	job := elasticJob(4, 12)
	job.Strategy = strategies.HorovodAllReduce
	plan, err := CrashPlan(elasticSeeds(1)[0], 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// AllReduce never touches the token-routing op; aim the crash at the
	// embedding-gradient AllReduce of the same step instead.
	tag, err := collective.TagOf(strategies.OpEmbGrad, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan.Rules[0].Match = func(pt comm.FaultPoint) bool { return pt.Tag == tag }
	job.Chaos = &plan

	res, err := runElasticWithGuard(t, job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs[1].Moves) != 0 {
		t.Fatalf("replicated-table shrink planned moves: %v", res.Epochs[1].Moves)
	}
	ref := stitchedReference(t, job, res.Epochs)
	sameResult(t, "allreduce shrink", ref, &res.Result)
}

// Without Rejoin the run finishes at the shrunk size: two epochs, the
// second completing on W-1 ranks.
func TestElasticShrinkWithoutRejoin(t *testing.T) {
	job := elasticJob(4, 12)
	job.Rejoin = false
	plan, err := CrashPlan(elasticSeeds(1)[0], 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	job.Chaos = &plan

	res, err := runElasticWithGuard(t, job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 2 {
		t.Fatalf("%d epochs, want 2: %+v", len(res.Epochs), res.Epochs)
	}
	if res.Epochs[1].End != EpochCompleted || res.Epochs[1].Workers != 3 {
		t.Fatalf("final epoch = %+v, want completed at 3 workers", res.Epochs[1])
	}
	ref := stitchedReference(t, job, res.Epochs)
	sameResult(t, "no-rejoin shrink", ref, &res.Result)
}

// A fault the supervisor cannot recover from — the shrunk world size does
// not divide the embedding — surfaces the error WITH the salvaged prefix,
// never a nil result.
func TestElasticUnshrinkableWorldReturnsSalvage(t *testing.T) {
	job := elasticJob(4, 8) // 8 % 3 != 0: shrinking to 3 ranks must fail
	plan, err := CrashPlan(elasticSeeds(1)[0], 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	job.Chaos = &plan

	res, err := runElasticWithGuard(t, job)
	if err == nil {
		t.Fatal("expected an error when the world cannot shrink")
	}
	if res == nil {
		t.Fatal("partial result discarded on unshrinkable world")
	}
	if len(res.Epochs) != 1 || res.Epochs[0].End != EpochFault {
		t.Fatalf("epochs = %+v, want one faulted epoch", res.Epochs)
	}
	if res.Epochs[0].EndStep != 3 {
		t.Fatalf("salvage kept %d steps, want 3", res.Epochs[0].EndStep)
	}
	for s := 0; s < res.Epochs[0].EndStep; s++ {
		if res.Losses[s] == 0 {
			t.Fatalf("salvaged loss[%d] lost", s)
		}
	}
}

// Elastic configuration errors are rejected up front.
func TestElasticValidation(t *testing.T) {
	base := elasticJob(4, 12)
	cases := []struct {
		name   string
		mutate func(*ElasticJob)
	}{
		{"over tcp", func(j *ElasticJob) { j.OverTCP = true }},
		{"trace", func(j *ElasticJob) { j.Trace = true }},
		{"parameter server", func(j *ElasticJob) { j.Strategy = strategies.Parallax }},
		{"byteps", func(j *ElasticJob) { j.Strategy = strategies.BytePS }},
		{"bad base job", func(j *ElasticJob) { j.Workers = 0 }},
	}
	for _, tc := range cases {
		job := base
		tc.mutate(&job)
		if _, err := RunElastic(job); err == nil {
			t.Fatalf("%s: expected validation error", tc.name)
		}
	}
}

// A fault-free elastic run is just a plain run with snapshots: one
// completed epoch, zero recoveries, bit-identical to Run.
func TestElasticFaultFreeMatchesPlainRun(t *testing.T) {
	job := elasticJob(4, 12)
	ref, err := Run(job.Job)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runElasticWithGuard(t, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 0 || len(res.Epochs) != 1 || res.Epochs[0].End != EpochCompleted {
		t.Fatalf("fault-free elastic run reported %d recoveries, epochs %+v", res.Recoveries, res.Epochs)
	}
	sameResult(t, "fault-free elastic", ref, &res.Result)
	if errors.Is(err, nil) && res.Epochs[0].EndStep != job.Steps {
		t.Fatalf("epoch covers [%d,%d), want full run", res.Epochs[0].StartStep, res.Epochs[0].EndStep)
	}
}
