package trainer

import (
	"embrace/internal/comm"
	"fmt"
	"testing"

	"embrace/internal/data"
	"embrace/internal/strategies"
)

func testJob(name strategies.Name, workers int) Job {
	return Job{
		Strategy: name,
		Workers:  workers,
		Steps:    4,
		Window:   4,
		Model: strategies.Config{
			Seed:      77,
			Vocab:     40,
			EmbDim:    8,
			Hidden:    6,
			Optimizer: strategies.OptSGD,
			LR:        0.05,
			PSServers: 2,
		},
		Data: data.Config{
			VocabSize:      40,
			BatchSentences: 5,
			MaxSeqLen:      8,
			MinSeqLen:      5,
			ZipfS:          1.4,
			ZipfV:          2,
		},
		DataSeed: 1000,
	}
}

func TestJobValidate(t *testing.T) {
	good := testJob(strategies.EmbRace, 4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Job){
		func(j *Job) { j.Workers = 0 },
		func(j *Job) { j.Steps = 0 },
		func(j *Job) { j.Window = 0 },
		func(j *Job) { j.Window = 10 }, // >= MinSeqLen
		func(j *Job) { j.Data.VocabSize = 41 },
		func(j *Job) { j.Model.EmbDim = 9 }, // not divisible by workers
		func(j *Job) { j.Data.ZipfS = 0.5 },
	}
	for i, mutate := range cases {
		j := testJob(strategies.EmbRace, 4)
		mutate(&j)
		if err := j.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestWindowsTargets(t *testing.T) {
	b := &data.Batch{Sentences: [][]int64{{1, 2, 3, 4, 5, 0}, {7, 8, 9, 10, 11, 12}}}
	w, tg := WindowsTargets(b, 4)
	if len(w) != 2 || len(tg) != 2 {
		t.Fatalf("lens %d %d", len(w), len(tg))
	}
	if w[0][0] != 1 || w[0][3] != 4 || tg[0] != 5 {
		t.Fatalf("pair 0 = %v -> %d", w[0], tg[0])
	}
	if tg[1] != 11 {
		t.Fatalf("pair 1 target = %d", tg[1])
	}
}

func TestEveryStrategyRuns(t *testing.T) {
	for _, name := range strategies.AllNames() {
		res, err := Run(testJob(name, 4))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Losses) != 4 {
			t.Fatalf("%s: %d losses", name, len(res.Losses))
		}
		for i, l := range res.Losses {
			if l <= 0 {
				t.Fatalf("%s: loss[%d] = %v", name, i, l)
			}
		}
		if res.Embedding == nil || res.Trunk == nil {
			t.Fatalf("%s: missing final state", name)
		}
		if res.TokensTrained <= 0 {
			t.Fatalf("%s: tokens = %d", name, res.TokensTrained)
		}
	}
}

// The central correctness result: with identical seeds and data, every
// synchronous strategy — four baselines plus EmbRace's model-parallel
// AlltoAll — must produce the same final parameters, up to float32
// reduction-order noise.
func TestCrossStrategyEquivalenceSGD(t *testing.T) {
	ref, err := Run(testJob(strategies.HorovodAllGather, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range strategies.AllNames() {
		if name == strategies.HorovodAllGather {
			continue
		}
		res, err := Run(testJob(name, 4))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Embedding.AllClose(ref.Embedding, 1e-4) {
			t.Fatalf("%s embedding diverged by %v", name, res.Embedding.MaxAbsDiff(ref.Embedding))
		}
		if !res.Trunk.W1.AllClose(ref.Trunk.W1, 1e-4) || !res.Trunk.W2.AllClose(ref.Trunk.W2, 1e-4) {
			t.Fatalf("%s trunk diverged", name)
		}
	}
}

func TestCrossStrategyEquivalenceAdam(t *testing.T) {
	mk := func(name strategies.Name, sched strategies.SchedMode) Job {
		j := testJob(name, 4)
		j.Model.Optimizer = strategies.OptAdam
		j.Model.LR = 0.01
		j.Model.Sched = sched
		return j
	}
	ref, err := Run(mk(strategies.HorovodAllGather, strategies.SchedNone))
	if err != nil {
		t.Fatal(err)
	}
	// EmbRace with 2D scheduling splits every sparse update in two, yet the
	// modified Adam must keep it equivalent to the whole-update baselines.
	for _, sched := range []strategies.SchedMode{strategies.SchedNone, strategies.Sched2D} {
		res, err := Run(mk(strategies.EmbRace, sched))
		if err != nil {
			t.Fatalf("sched %v: %v", sched, err)
		}
		if !res.Embedding.AllClose(ref.Embedding, 1e-4) {
			t.Fatalf("sched %v: embedding diverged by %v", sched, res.Embedding.MaxAbsDiff(ref.Embedding))
		}
	}
}

func TestEmbRace2DEqualsWholeUpdateExactly(t *testing.T) {
	// The split itself (same strategy, same reduction orders) must be
	// bit-exact under the modified Adam, not merely close.
	mk := func(sched strategies.SchedMode) Job {
		j := testJob(strategies.EmbRace, 4)
		j.Model.Optimizer = strategies.OptAdam
		j.Model.LR = 0.01
		j.Model.Sched = sched
		return j
	}
	whole, err := Run(mk(strategies.SchedNone))
	if err != nil {
		t.Fatal(err)
	}
	split, err := Run(mk(strategies.Sched2D))
	if err != nil {
		t.Fatal(err)
	}
	if !whole.Embedding.AllClose(split.Embedding, 0) {
		t.Fatalf("2D split changed the update by %v", whole.Embedding.MaxAbsDiff(split.Embedding))
	}
}

func TestLossDecreasesOverTraining(t *testing.T) {
	j := testJob(strategies.EmbRace, 2)
	j.Steps = 30
	j.Model.Sched = strategies.Sched2D
	j.Model.Optimizer = strategies.OptAdam
	j.Model.LR = 0.02
	res, err := Run(j)
	if err != nil {
		t.Fatal(err)
	}
	first := (res.Losses[0] + res.Losses[1] + res.Losses[2]) / 3
	n := len(res.Losses)
	last := (res.Losses[n-1] + res.Losses[n-2] + res.Losses[n-3]) / 3
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestRunSingleWorker(t *testing.T) {
	// N=1 degenerates every collective to a no-op but must still train.
	j := testJob(strategies.EmbRace, 1)
	res, err := Run(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != j.Steps {
		t.Fatal("missing losses")
	}
}

func TestRunRejectsInvalidJob(t *testing.T) {
	j := testJob(strategies.EmbRace, 3) // EmbDim 8 not divisible by 3
	if _, err := Run(j); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestTrainingOverTCPMatchesInProcess(t *testing.T) {
	// The transport must be invisible to training results: the same job run
	// over loopback TCP sockets produces the same losses and parameters as
	// the in-process fabric.
	j := testJob(strategies.EmbRace, 4)
	j.Model.Sched = strategies.Sched2D
	inproc, err := Run(j)
	if err != nil {
		t.Fatal(err)
	}
	j.OverTCP = true
	tcp, err := Run(j)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inproc.Losses {
		d := inproc.Losses[i] - tcp.Losses[i]
		if d > 1e-6 || d < -1e-6 {
			t.Fatalf("loss[%d]: inproc %v vs tcp %v", i, inproc.Losses[i], tcp.Losses[i])
		}
	}
	if !inproc.Embedding.AllClose(tcp.Embedding, 1e-6) {
		t.Fatalf("embeddings diverged by %v", inproc.Embedding.MaxAbsDiff(tcp.Embedding))
	}
}

func TestAllStrategiesOverTCP(t *testing.T) {
	for _, name := range strategies.AllNames() {
		j := testJob(name, 2)
		j.Steps = 2
		j.OverTCP = true
		if _, err := Run(j); err != nil {
			t.Fatalf("%s over TCP: %v", name, err)
		}
	}
}

func TestEmbRaceMovesFewerEmbeddingBytesThanAllGather(t *testing.T) {
	// The real-mode counterpart of the Table-2 analysis: AllGather ships
	// each rank's whole embedding gradient to every peer, while EmbRace's
	// AlltoAll ships 1/N-width column slices — measured bytes on the real
	// transport must reflect it. A tiny trunk keeps dense traffic from
	// masking the embedding traffic.
	mk := func(name strategies.Name) Job {
		j := testJob(name, 4)
		j.Steps = 3
		j.Model.Vocab = 200
		j.Data.VocabSize = 200
		j.Model.EmbDim = 64
		j.Model.Hidden = 2
		j.Data.BatchSentences = 24
		if name == strategies.EmbRace {
			j.Model.Sched = strategies.Sched2D
		}
		return j
	}
	gather, err := Run(mk(strategies.HorovodAllGather))
	if err != nil {
		t.Fatal(err)
	}
	embrace, err := Run(mk(strategies.EmbRace))
	if err != nil {
		t.Fatal(err)
	}
	if embrace.Comm.PayloadBytes >= gather.Comm.PayloadBytes {
		t.Fatalf("EmbRace moved %d bytes, AllGather %d — hybrid comm should move less",
			embrace.Comm.PayloadBytes, gather.Comm.PayloadBytes)
	}
	ratio := float64(gather.Comm.PayloadBytes) / float64(embrace.Comm.PayloadBytes)
	if ratio < 1.5 {
		t.Fatalf("traffic reduction only %.2fx; expected a clear win on an embedding-dominated job", ratio)
	}
	if gather.Comm.Messages == 0 || embrace.Comm.RecvSeconds <= 0 {
		t.Fatalf("counters not populated: %+v", embrace.Comm)
	}
}

func TestRunWorkerMatchesRun(t *testing.T) {
	// Multi-process entry point driven in-process: RunWorker per rank over
	// a TCP world must reproduce Run's results exactly.
	j := testJob(strategies.EmbRace, 2)
	j.Model.Sched = strategies.Sched2D
	ref, err := Run(j)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*Result, 2)
	err = comm.RunRanksTCP(2, func(tr comm.Transport) error {
		res, err := RunWorker(j, tr)
		if err != nil {
			return err
		}
		results[tr.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := results[0] // rank 0 aggregates
	for i := range ref.Losses {
		d := got.Losses[i] - ref.Losses[i]
		if d > 1e-9 || d < -1e-9 {
			t.Fatalf("loss[%d] %v vs %v", i, got.Losses[i], ref.Losses[i])
		}
	}
	if !got.Embedding.AllClose(ref.Embedding, 1e-9) {
		t.Fatal("embedding diverged")
	}
}

func TestRunWorkerRejectsPSStrategies(t *testing.T) {
	j := testJob(strategies.Parallax, 2)
	err := comm.RunRanks(2, func(tr comm.Transport) error {
		if _, err := RunWorker(j, tr); err == nil {
			return fmt.Errorf("expected PS rejection")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// World-size mismatch.
	j2 := testJob(strategies.EmbRace, 4)
	err = comm.RunRanks(2, func(tr comm.Transport) error {
		if _, err := RunWorker(j2, tr); err == nil {
			return fmt.Errorf("expected size mismatch error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
