package trainer

import (
	"fmt"
	"sync"

	"embrace/internal/collective"
	"embrace/internal/comm"
	"embrace/internal/data"
	"embrace/internal/metrics"
	"embrace/internal/nn"
	"embrace/internal/optim"
	"embrace/internal/sched"
	"embrace/internal/strategies"
	"embrace/internal/tensor"
)

// SeqJob configures distributed training of the recurrent model
// (nn.SeqModel): per-token embedding lookup into a GRU, the gradient
// structure of the paper's translation models. Dense gradients ride ring
// AllReduce; the per-token sparse embedding gradient is aggregated with
// sparse AllGather, optionally through Algorithm 1's prior/delayed split
// with the modified Adam.
type SeqJob struct {
	// Workers is the world size; Steps the iteration count; Window the
	// BPTT length (each sentence contributes one window -> next-token
	// pair).
	Workers, Steps, Window int
	// Vocab, EmbDim, Hidden size the model.
	Vocab, EmbDim, Hidden int
	// LR is the Adam learning rate.
	LR float32
	// Vertical enables Algorithm 1 (split sparse updates, modified Adam).
	Vertical bool
	// Seed initializes parameters; DataSeed the per-rank corpora.
	Seed, DataSeed int64
	// Data describes the synthetic corpus; VocabSize must equal Vocab and
	// MinSeqLen must exceed Window. Ignored when Text is set.
	Data data.Config
	// Text, when non-empty, trains on real sentences instead of the
	// synthetic corpus: a Tokenizer is built over all sentences (capped at
	// Vocab ids), and rank r trains on every Workers-th sentence starting
	// at r. Each sentence must have at least Window+1 tokens after
	// truncation to Window+1.
	Text []string
	// TextBatch is the sentences per batch per worker for Text mode; zero
	// picks 8.
	TextBatch int
	// OverTCP runs ranks over loopback TCP sockets.
	OverTCP bool
	// ChunkBytes is the Communicator pipelining segment size; same
	// convention as Job.ChunkBytes (0 = DefaultChunkBytes, <0 = off).
	ChunkBytes int
}

// Validate reports configuration errors.
func (j SeqJob) Validate() error {
	if j.Workers <= 0 || j.Steps <= 0 {
		return fmt.Errorf("trainer: seq job needs positive workers (%d) and steps (%d)", j.Workers, j.Steps)
	}
	if j.EmbDim <= 0 || j.Hidden <= 0 {
		return fmt.Errorf("trainer: bad model dims emb=%d hidden=%d", j.EmbDim, j.Hidden)
	}
	if j.LR <= 0 {
		return fmt.Errorf("trainer: learning rate must be positive, got %g", j.LR)
	}
	if j.Window <= 0 {
		return fmt.Errorf("trainer: window %d must be positive", j.Window)
	}
	if len(j.Text) > 0 {
		if j.Vocab < 3 {
			return fmt.Errorf("trainer: text mode needs vocab >= 3, got %d", j.Vocab)
		}
		return nil
	}
	if j.Window >= j.Data.MinSeqLen {
		return fmt.Errorf("trainer: window %d must be below MinSeqLen %d", j.Window, j.Data.MinSeqLen)
	}
	if j.Vocab != j.Data.VocabSize {
		return fmt.Errorf("trainer: data vocab %d != model vocab %d", j.Data.VocabSize, j.Vocab)
	}
	return j.Data.Validate()
}

// batchStream is the prefetching contract both loaders satisfy.
type batchStream interface {
	Next() *data.Batch
	Peek() *data.Batch
}

// newSeqStream builds rank `rank`'s data stream for the job. In text mode
// the model's vocabulary is the tokenizer's (returned for model sizing).
func newSeqStream(j SeqJob, rank int) (batchStream, int, error) {
	if len(j.Text) == 0 {
		gen, err := data.NewGenerator(j.Data, j.DataSeed+int64(rank))
		if err != nil {
			return nil, 0, err
		}
		return data.NewLoader(gen), j.Vocab, nil
	}
	tok, err := data.BuildTokenizer(joinSentences(j.Text), j.Vocab)
	if err != nil {
		return nil, 0, err
	}
	batch := j.TextBatch
	if batch == 0 {
		batch = 8
	}
	loader, err := data.NewTextLoader(tok, j.Text, batch, j.Window+1, rank, j.Workers)
	if err != nil {
		return nil, 0, err
	}
	return loader, tok.VocabSize(), nil
}

func joinSentences(ss []string) string {
	total := 0
	for _, s := range ss {
		total += len(s) + 1
	}
	out := make([]byte, 0, total)
	for _, s := range ss {
		out = append(out, s...)
		out = append(out, ' ')
	}
	return string(out)
}

// RunSeq trains the recurrent model across the world and returns the
// aggregated result.
func RunSeq(job SeqJob) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Losses:     make([]float64, job.Steps),
		Accuracies: make([]float64, job.Steps),
	}
	var mu sync.Mutex
	runRanks := comm.RunRanks
	if job.OverTCP {
		runRanks = comm.RunRanksTCP
	}
	err := runRanks(job.Workers, func(raw comm.Transport) error {
		return runSeqRank(job, raw, res, &mu)
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func runSeqRank(job SeqJob, raw comm.Transport, res *Result, mu *sync.Mutex) error {
	rec := metrics.NewOpRecorder()
	cm := collective.NewCommunicator(raw,
		collective.WithChunkBytes(chunkBytesOf(job.ChunkBytes)),
		collective.WithObserver(rec))
	defer func() {
		mu.Lock()
		res.Comm = res.Comm.Add(rec.Total())
		res.addCommPerOp(rec.PerOp())
		mu.Unlock()
	}()

	loader, vocab, err := newSeqStream(job, cm.Rank())
	if err != nil {
		return err
	}
	model := nn.NewSeqModel(job.Seed, vocab, job.EmbDim, job.Hidden)
	opts := map[string]optim.Optimizer{}
	for _, p := range model.Params() {
		opts[p.Name] = optim.NewAdamDefault(p.Tensor, job.LR)
	}
	embOpt := optim.NewAdamDefault(model.Emb.Table, job.LR)

	for step := 0; step < job.Steps; step++ {
		batch := loader.Next()
		next := loader.Peek()
		windows, targets := WindowsTargets(batch, job.Window)

		stats, embGrad, dense, err := model.Step(windows, targets)
		if err != nil {
			return fmt.Errorf("rank %d step %d: %w", cm.Rank(), step, err)
		}

		for _, p := range model.Params() {
			g := dense[p.Name]
			if err := cm.AllReduce(strategies.OpDense(p.Name), step, g.Data()); err != nil {
				return fmt.Errorf("dense %s: %w", p.Name, err)
			}
			if err := opts[p.Name].StepDense(g); err != nil {
				return fmt.Errorf("dense %s update: %w", p.Name, err)
			}
		}

		if !job.Vertical {
			// Coalesce locally before shipping (as PyTorch does): fewer
			// wire bytes, and the same per-rank summation grouping the
			// vertical path uses, so both paths stay bit-identical.
			merged, err := cm.SparseAllGather(strategies.OpEmbGrad, step, embGrad.Coalesce())
			if err != nil {
				return fmt.Errorf("embedding allgather: %w", err)
			}
			if err := embOpt.StepSparse(merged); err != nil {
				return fmt.Errorf("embedding update: %w", err)
			}
		} else {
			// Algorithm 1 uses the GATHERED next batch: a row is "prior"
			// only with the same verdict on every rank, keeping the
			// merged prior and delayed parts disjoint (the modified-Adam
			// exactness condition).
			allNext, err := collective.AllGatherVia(cm, strategies.OpNextBatch, step, tensor.UniqueInt64(next.Tokens()))
			if err != nil {
				return fmt.Errorf("next-batch gather: %w", err)
			}
			var nextAll []int64
			for _, ns := range allNext {
				nextAll = append(nextAll, ns...)
			}
			prior, delayed := sched.VerticalSplit(embGrad, embGrad.UniqueIndices(),
				tensor.UniqueInt64(nextAll))
			mergedPrior, err := cm.SparseAllGather(strategies.OpEmbPrior, step, prior)
			if err != nil {
				return fmt.Errorf("prior allgather: %w", err)
			}
			if err := embOpt.StepSparsePartial(mergedPrior, false); err != nil {
				return fmt.Errorf("prior update: %w", err)
			}
			mergedDelayed, err := cm.SparseAllGather(strategies.OpEmbDelayed, step, delayed)
			if err != nil {
				return fmt.Errorf("delayed allgather: %w", err)
			}
			if err := embOpt.StepSparsePartial(mergedDelayed, true); err != nil {
				return fmt.Errorf("delayed update: %w", err)
			}
		}

		all, err := collective.GatherVia(cm, strategies.OpStats, step, 0, stats)
		if err != nil {
			return fmt.Errorf("stats gather: %w", err)
		}
		if cm.Rank() == 0 {
			var sum float64
			correct, count := 0, 0
			for _, s := range all {
				sum += s.Loss
				correct += s.Correct
				count += s.Count
			}
			mu.Lock()
			res.Losses[step] = sum / float64(len(all))
			if count > 0 {
				res.Accuracies[step] = float64(correct) / float64(count)
			}
			mu.Unlock()
		}
		mu.Lock()
		res.TokensTrained += batch.NonPad
		mu.Unlock()
	}
	if cm.Rank() == 0 {
		mu.Lock()
		res.Embedding = model.Emb.Table
		mu.Unlock()
	}
	return nil
}
