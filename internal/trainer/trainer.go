// Package trainer runs real-execution distributed training jobs: N rank
// goroutines, each owning a strategy worker and a deterministic data stream,
// training the nn model with genuine arithmetic and genuine collective data
// movement. It is the substrate of the convergence experiment (Figure 11)
// and of the cross-strategy equivalence tests.
package trainer

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"embrace/internal/collective"
	"embrace/internal/comm"
	"embrace/internal/data"
	"embrace/internal/metrics"
	"embrace/internal/nn"
	"embrace/internal/strategies"
	"embrace/internal/tensor"
	"embrace/internal/trace"
)

// Job configures one training run.
type Job struct {
	// Strategy selects the communication strategy.
	Strategy strategies.Name
	// Workers is the world size N.
	Workers int
	// Steps is the number of training iterations.
	Steps int
	// Window is the context window length; each sentence contributes one
	// (window -> next token) training pair.
	Window int
	// Model is the strategy/model configuration.
	Model strategies.Config
	// Data describes the synthetic corpus; VocabSize must match
	// Model.Vocab.
	Data data.Config
	// DataSeed offsets the per-rank data streams; rank r draws from
	// DataSeed + r. All strategies with the same DataSeed see identical
	// batches, which the equivalence tests require.
	DataSeed int64
	// OverTCP runs the ranks over real loopback TCP sockets instead of
	// the in-process mailbox fabric; the strategies are transport-
	// agnostic, so results are identical either way.
	OverTCP bool
	// SkipBatches fast-forwards every rank's data stream before training —
	// set to the number of already-trained steps when resuming from a
	// checkpoint, so the resumed run sees the batches an uninterrupted run
	// would.
	SkipBatches int
	// ChunkBytes is the Communicator's pipelining segment size for dense
	// ring collectives. Zero selects DefaultChunkBytes; negative disables
	// chunking (whole-chunk messages). Results are bit-identical for every
	// value — chunking splits element ranges, not summation order.
	ChunkBytes int
	// Chaos, when non-nil, runs the job over a fault-injecting transport
	// (comm.WrapChaos around the in-process fabric). Maskable plans leave
	// results bit-identical to a fault-free run; unmaskable ones surface as
	// FaultError. Incompatible with OverTCP.
	Chaos *comm.FaultPlan
	// RecvTimeout bounds every blocking receive (comm.ErrTimeout past it),
	// the liveness backstop that turns a silently hung peer into an
	// attributed error. Zero disables.
	RecvTimeout time.Duration
	// Trace records per-rank execution spans (step phases, exchanges, the
	// background delayed AlltoAll) into Result.Traces for Chrome trace
	// export. Off by default: the step loop then carries zero tracing
	// overhead beyond nil-recorder pointer checks.
	Trace bool
	// TraceClock overrides the recorders' time source — tests inject a
	// deterministic clock; nil uses the wall clock (confined to the trace
	// package, so instrumented code stays free of time.Now).
	TraceClock trace.Clock
}

// DefaultChunkBytes is the pipelining segment size training jobs use when
// none is configured: small enough to overlap transfer with reduction on
// multi-MB gradients, large enough to amortize per-message overhead.
const DefaultChunkBytes = 256 << 10

// chunkBytesOf resolves the ChunkBytes convention (0 = default, <0 = off).
func chunkBytesOf(configured int) int {
	if configured == 0 {
		return DefaultChunkBytes
	}
	if configured < 0 {
		return 0
	}
	return configured
}

// Validate reports configuration errors.
func (j Job) Validate() error {
	if j.Workers <= 0 {
		return fmt.Errorf("trainer: workers must be positive, got %d", j.Workers)
	}
	if j.Steps <= 0 {
		return fmt.Errorf("trainer: steps must be positive, got %d", j.Steps)
	}
	if j.Window <= 0 || j.Window >= j.Data.MinSeqLen {
		return fmt.Errorf("trainer: window %d must be in [1, MinSeqLen-1=%d]", j.Window, j.Data.MinSeqLen-1)
	}
	if j.Data.VocabSize != j.Model.Vocab {
		return fmt.Errorf("trainer: data vocab %d != model vocab %d", j.Data.VocabSize, j.Model.Vocab)
	}
	if j.Chaos != nil && j.OverTCP {
		return fmt.Errorf("trainer: chaos injection runs over the in-process fabric; drop OverTCP")
	}
	if err := j.Model.Validate(j.Workers); err != nil {
		return err
	}
	return j.Data.Validate()
}

// Result reports a completed run.
type Result struct {
	// Losses holds the mean (across ranks) training loss of each step.
	Losses []float64
	// Accuracies holds the per-step top-1 next-token accuracy across all
	// ranks — the score metric of the Figure-11(b) convergence panel.
	Accuracies []float64
	// Embedding is the final full embedding table as seen from rank 0.
	Embedding *tensor.Dense
	// Trunk is rank 0's final dense parameters.
	Trunk *nn.Trunk
	// TokensTrained counts non-pad tokens consumed across all ranks, the
	// numerator of the paper's tokens/sec metric.
	TokensTrained int
	// Comm aggregates measured communication counters over all ranks:
	// the real-execution analogue of the paper's traffic analysis.
	Comm metrics.Stats
	// CommPerOp breaks Comm down by logical operation name (summed over
	// ranks): which collective moved the bytes — the embedding AlltoAll,
	// the dense AllReduces, the stats gather — not just how many moved.
	CommPerOp map[string]metrics.OpStats
	// Traces holds each rank's span recorder when Job.Trace is set, indexed
	// by rank (nil entries for ranks this process did not run). Feed to
	// trace.ExportRecorders for a Chrome/Perfetto timeline.
	Traces []*trace.Recorder
	// PhaseSeconds sums span durations by phase name across ranks when
	// tracing — the measured per-phase time breakdown.
	PhaseSeconds map[string]float64
}

// addCommPerOp folds one rank's per-op counters into res under mu.
func (r *Result) addCommPerOp(per map[string]metrics.OpStats) {
	if r.CommPerOp == nil {
		r.CommPerOp = make(map[string]metrics.OpStats, len(per))
	}
	for op, s := range per {
		r.CommPerOp[op] = r.CommPerOp[op].Add(s)
	}
}

// addTrace folds one rank's recorder into res under mu.
func (r *Result) addTrace(tr *trace.Recorder) {
	for len(r.Traces) <= tr.Rank() {
		r.Traces = append(r.Traces, nil)
	}
	r.Traces[tr.Rank()] = tr
	if r.PhaseSeconds == nil {
		r.PhaseSeconds = make(map[string]float64)
	}
	for name, sec := range tr.PhaseSeconds() {
		r.PhaseSeconds[name] += sec
	}
}

// WindowsTargets converts a batch into training pairs: for every sentence,
// the first `window` tokens form the context and token `window` is the
// next-token target.
func WindowsTargets(b *data.Batch, window int) ([][]int64, []int64) {
	windows := make([][]int64, len(b.Sentences))
	targets := make([]int64, len(b.Sentences))
	for i, s := range b.Sentences {
		windows[i] = s[:window]
		targets[i] = s[window]
	}
	return windows, targets
}

func init() {
	// Per-step metrics cross the wire when training over TCP.
	comm.RegisterWireType(nn.StepStats{})
}

// Run executes the job and returns its result. When the job fails mid-run
// (an attributed FaultError, reachable via errors.As on the joined per-rank
// errors), the Result is still returned — it carries every loss, accuracy
// and communication counter recorded before the fault.
func Run(job Job) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	shared, err := strategies.NewShared(job.Strategy, job.Model, job.Workers)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Losses:     make([]float64, job.Steps),
		Accuracies: make([]float64, job.Steps),
	}
	var mu sync.Mutex

	runRanks := comm.RunRanks
	if job.OverTCP {
		runRanks = comm.RunRanksTCP
	}
	if job.Chaos != nil {
		plan := *job.Chaos
		runRanks = func(n int, fn func(t comm.Transport) error) error {
			return comm.RunRanksChaos(n, plan, fn)
		}
	}
	runErr := runRanks(job.Workers, func(raw comm.Transport) error {
		return runRank(job, raw, shared, res, &mu)
	})
	// On failure the partial Result is returned WITH the error: the losses,
	// accuracies and comm counters folded in before the fault are real
	// progress a caller (the elastic supervisor above all) salvages, not
	// state to discard. Entries past the fault step keep their zero values.
	return res, runErr
}

// FaultError attributes an unmaskable communication fault to where it
// surfaced: which rank observed it, at which training step, in which phase of
// the step. The underlying transport error (comm.ErrPeerDown, comm.ErrTimeout,
// an exhausted retry budget) is reachable through errors.Is/As.
type FaultError struct {
	Rank  int
	Step  int // -1 outside the step loop
	Phase string
	Err   error
}

// Error implements error.
func (e *FaultError) Error() string {
	if e.Step < 0 {
		return fmt.Sprintf("trainer: rank %d: %s: %v", e.Rank, e.Phase, e.Err)
	}
	return fmt.Sprintf("trainer: rank %d step %d: %s: %v", e.Rank, e.Step, e.Phase, e.Err)
}

// Unwrap exposes the transport error.
func (e *FaultError) Unwrap() error { return e.Err }

// isCommFault reports whether err is a transport-level fault worth
// attributing (as opposed to a logic or configuration error).
func isCommFault(err error) bool {
	return errors.Is(err, comm.ErrPeerDown) ||
		errors.Is(err, comm.ErrTimeout) ||
		errors.Is(err, comm.ErrTransient) ||
		errors.Is(err, comm.ErrClosed)
}

// attribute wraps a step-phase error: communication faults become clean
// attributed FaultErrors; everything else keeps the plain wrapping.
func attribute(rank, step int, phase string, err error) error {
	if isCommFault(err) {
		return &FaultError{Rank: rank, Step: step, Phase: phase, Err: err}
	}
	if step < 0 {
		return fmt.Errorf("rank %d %s: %w", rank, phase, err)
	}
	return fmt.Errorf("rank %d step %d: %s: %w", rank, step, phase, err)
}

// runRank executes one rank's training loop, folding its results into res
// under mu. A rank that fails announces its departure (comm.Leaver) so peers
// blocked on it fail fast with an attributed error instead of hanging until
// their own timeouts.
func runRank(job Job, raw comm.Transport, shared *strategies.Shared, res *Result, mu *sync.Mutex) error {
	if job.RecvTimeout > 0 {
		if ts, ok := raw.(comm.TimeoutSetter); ok {
			ts.SetRecvTimeout(job.RecvTimeout)
		}
	}
	err := runRankLoop(job, raw, shared, res, mu)
	if err != nil {
		if l, ok := raw.(comm.Leaver); ok {
			l.Leave(err)
		}
	}
	return err
}

func runRankLoop(job Job, raw comm.Transport, shared *strategies.Shared, res *Result, mu *sync.Mutex) error {
	rec := metrics.NewOpRecorder()
	obs := collective.Observer(rec)
	var tr *trace.Recorder
	if job.Trace {
		tr = trace.NewRecorder(raw.Rank(), trace.WithClock(job.TraceClock))
		// The delayed exchange runs in a background goroutine; route its
		// wire events to the background lane so the overlap with the next
		// step's foreground spans is visible instead of interleaved.
		tr.RouteOp(strategies.OpEmbDelayed, trace.TrackBackground)
		obs = collective.MultiObserver(rec, tr)
	}
	cm := collective.NewCommunicator(raw,
		collective.WithChunkBytes(chunkBytesOf(job.ChunkBytes)),
		collective.WithObserver(obs))
	defer func() {
		mu.Lock()
		res.Comm = res.Comm.Add(rec.Total())
		res.addCommPerOp(rec.PerOp())
		if tr != nil {
			res.addTrace(tr)
		}
		mu.Unlock()
	}()
	w, err := strategies.NewWorker(job.Strategy, cm, job.Model, shared, strategies.WithRecorder(tr))
	if err != nil {
		return err
	}
	gen, err := data.NewGenerator(job.Data, job.DataSeed+int64(cm.Rank()))
	if err != nil {
		return err
	}
	loader := data.NewLoader(gen)
	for skip := 0; skip < job.SkipBatches; skip++ {
		loader.Next()
	}
	for step := 0; step < job.Steps; step++ {
		batch := loader.Next()
		next := loader.Peek()
		windows, targets := WindowsTargets(batch, job.Window)
		sp := tr.Begin(trace.TrackCompute, "step", step)
		stats, err := w.Step(step, windows, targets, next.Tokens())
		sp.End()
		if err != nil {
			return attribute(cm.Rank(), step, "train step", err)
		}
		all, err := collective.GatherVia(cm, strategies.OpStats, step, 0, stats)
		if err != nil {
			return attribute(cm.Rank(), step, "stats gather", err)
		}
		if cm.Rank() == 0 {
			var sum float64
			correct, count := 0, 0
			for _, s := range all {
				sum += s.Loss
				correct += s.Correct
				count += s.Count
			}
			mu.Lock()
			res.Losses[step] = sum / float64(len(all))
			if count > 0 {
				res.Accuracies[step] = float64(correct) / float64(count)
			}
			mu.Unlock()
		}
		mu.Lock()
		res.TokensTrained += batch.NonPad
		mu.Unlock()
	}
	// Collect final state. FullEmbedding is collective for EmbRace, so
	// every rank participates; rank 0 keeps the result.
	emb, err := w.FullEmbedding()
	if err != nil {
		return attribute(cm.Rank(), -1, "final embedding", err)
	}
	if cm.Rank() == 0 {
		mu.Lock()
		res.Embedding = emb
		res.Trunk = w.Trunk()
		mu.Unlock()
	}
	return nil
}

// RunWorker runs one rank of a multi-process job over a caller-provided
// transport (typically a comm.TCPNode in its own OS process, started by
// cmd/embrace-worker). Parameter-server strategies need process-shared
// server state and are rejected; the collective strategies (Horovod
// AllReduce/AllGather, EmbRace) are fully peer-to-peer and supported. The
// returned Result carries this rank's view: only rank 0 aggregates losses
// and final parameters.
func RunWorker(job Job, t comm.Transport) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	if t.Size() != job.Workers {
		return nil, fmt.Errorf("trainer: transport world %d != job workers %d", t.Size(), job.Workers)
	}
	switch job.Strategy {
	case strategies.Parallax, strategies.BytePS:
		return nil, fmt.Errorf("trainer: %s needs process-shared parameter servers; use Run for single-process jobs", job.Strategy)
	}
	res := &Result{
		Losses:     make([]float64, job.Steps),
		Accuracies: make([]float64, job.Steps),
	}
	var mu sync.Mutex
	// Like Run, a fault returns the partial Result alongside the error.
	err := runRank(job, t, &strategies.Shared{}, res, &mu)
	return res, err
}
